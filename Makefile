# Tier-1 verification gate: static checks, a full build, the test
# suite under the race detector (the fault-tolerance layer is
# concurrency-heavy; -race is part of its acceptance criteria), and
# end-to-end smokes of the observability endpoints and the optimizer
# decision explainer.
.PHONY: verify test bench verify-perf obs-smoke explain-smoke verify-precision verify-async verify-attrib verify-dtrace verify-analysis fuzz

verify:
	go vet ./...
	go build ./...
	go test -race ./...
	$(MAKE) obs-smoke
	$(MAKE) explain-smoke
	$(MAKE) verify-precision
	$(MAKE) verify-async
	$(MAKE) verify-attrib
	$(MAKE) verify-dtrace
	$(MAKE) verify-analysis
	$(MAKE) fuzz

test:
	go test ./...

# End-to-end observability smoke: run a traced TCP cluster with the
# introspection server on an ephemeral port and have the process probe
# its own /healthz, /metrics and /trace (valid Chrome-trace JSON with
# events) before exiting. No curl or fixed port needed.
obs-smoke:
	go run ./cmd/rminode -sends 5 -obs-smoke

# Explain-pipeline smoke: compile every bundled example, emit the
# cormi-explain/1 decision report, and self-validate the schema
# invariants (a record per call site, witnesses on kept cycle checks,
# reuse verdicts on every value).
explain-smoke:
	go run ./cmd/rmic -explain-smoke

# Precision regression gate: run the full compiler over the MiniJP
# corpus (examples/minijp) and diff the per-site verdict matrix — and
# the context-insensitive baseline matrix — against the checked-in
# goldens, then re-prove the sensitivity gain in-process (strictly more
# elided cycle checks and reuse grants than the baseline). A precision
# regression fails; an intended improvement needs a reviewed golden
# update (UPDATE_GOLDEN=1 go test ./internal/harness -run TestVerdictMatrix).
verify-precision:
	go test -count=1 -run 'TestVerdictMatrix|TestPrecisionGain|TestContextBudgetBoundsBlowup|TestAnalysisDeterminism' ./internal/harness

# Async chaos gate: the chained futures + promise-pipelining workload
# must complete with exactly-once execution at every optimization
# level over a lossy (drop/dup/reorder/corrupt) interconnect, under
# the race detector. Proves a dropped producer frame is recovered by
# its waiter and a duplicated one cannot double-splice a promise.
verify-async:
	go test -race -count=1 -run 'TestChaosAsync' ./internal/harness

# Attribution gate: always-on tail-latency attribution must keep the
# traced hot path within its allocation budget with exemplar capture
# armed but not firing (the threshold floor is set astronomically high,
# so the armed comparison runs on every close and never trips); the
# log2 histogram merge must stay exact under the commutativity /
# associativity / quantile-preservation property tests; and the 3-node
# cluster scenario must blame the slow executor's execute phase and
# capture at least one slow-call exemplar through the real HTTP
# /snapshot -> /cluster pull path.
verify-attrib:
	go test -count=1 -run 'TestAttributionSteadyStateAllocs' ./internal/apps/micro
	go test -count=1 -run 'TestMerge|TestRunAttribBlamesSlowExecutor' ./internal/metrics ./internal/harness

# Distributed-tracing gate (DESIGN.md §15): head sampling must be free
# for the calls it does not pick (the armed untraced hot path holds the
# same 3-alloc budget as verify-attrib) and cheap for those it does
# (the sampled path's ceiling is pinned); and the 3-node harness
# scenario must reconstruct a pipelined depth-8 chain — through the
# real HTTP /traces -> /traces/<id>?peers= pull path — as exactly one
# tree with the topology's span/hop counts and a critical path
# accounting for the measured wall time.
verify-dtrace:
	go test -count=1 -run 'TestUntracedWithSamplingArmedAllocs|TestSampledPathAllocs' ./internal/apps/micro
	go test -count=1 -run 'TestDTraceChainReconstructsSingleTree|TestBuildTree' ./internal/harness ./internal/trace

# Analysis-at-scale gate (DESIGN.md §16): the 2k-function generated
# corpus must analyze inside the wall budget with the expected region
# structure and zero context-budget fallbacks; a one-function edit on a
# warm summary cache must re-analyze under 10% of the corpus and merge
# to a result bit-identical to a cold run; with >= 2 CPUs the parallel
# cold run must beat sequential by 2x (single-core machines skip the
# speedup measurement only). Incremental-invalidation edge cases
# (recursive SCCs, edge add/remove, corrupted cache files) are pinned
# by the unit tests in internal/heap and internal/heap/sched.
verify-analysis:
	go test -count=1 -run 'TestAnalysisCorpusGate|TestAnalysisIncrementalGate|TestAnalysisParallelSpeedup' ./internal/harness
	go test -count=1 -run 'TestIncremental|TestSummary' ./internal/heap ./internal/heap/sched ./internal/heap/gen

# Short native-fuzzing pass over the adversarial decode surfaces:
# the HELLO handshake decoder, the value/reference payload decoder,
# the wire trace-context codec, and the analysis summary-cache
# decoder. Each target always replays its
# checked-in seed corpus (testdata/fuzz/) and then mutates for a few
# seconds. Properties: no panics, typed ErrMalformedFrame on every
# rejection, balanced read-context pool. Longer runs: FUZZTIME=10m make fuzz.
FUZZTIME ?= 5s
fuzz:
	go test -run '^$$' -fuzz FuzzDecodeHello -fuzztime $(FUZZTIME) ./internal/wire
	go test -run '^$$' -fuzz FuzzTraceContext -fuzztime $(FUZZTIME) ./internal/wire
	go test -run '^$$' -fuzz FuzzReadValues -fuzztime $(FUZZTIME) ./internal/serial
	go test -run '^$$' -fuzz FuzzSummaryDecode -fuzztime $(FUZZTIME) ./internal/heap

# Regenerate the human-readable Go benchmarks and the machine-readable
# perf baseline consumed by benchdiff (commit BENCH_rmibench.json when
# a perf change is intentional).
bench:
	go test -bench=. -benchmem -count=5 ./...
	go run ./cmd/rmibench -json > BENCH_rmibench.json

# Opt-in perf gate: measure a fresh report and compare it against the
# committed baseline. Fails on >10% ns/op growth or any allocs/op
# regression on any workload × optimization level row.
verify-perf: verify
	go run ./cmd/rmibench -json > /tmp/BENCH_rmibench.fresh.json
	go run ./cmd/benchdiff BENCH_rmibench.json /tmp/BENCH_rmibench.fresh.json
	rm -f /tmp/BENCH_rmibench.fresh.json
