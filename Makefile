# Tier-1 verification gate: static checks, a full build, and the test
# suite under the race detector (the fault-tolerance layer is
# concurrency-heavy; -race is part of its acceptance criteria).
.PHONY: verify test bench verify-perf

verify:
	go vet ./...
	go build ./...
	go test -race ./...

test:
	go test ./...

# Regenerate the human-readable Go benchmarks and the machine-readable
# perf baseline consumed by benchdiff (commit BENCH_rmibench.json when
# a perf change is intentional).
bench:
	go test -bench=. -benchmem -count=5 ./...
	go run ./cmd/rmibench -json > BENCH_rmibench.json

# Opt-in perf gate: measure a fresh report and compare it against the
# committed baseline. Fails on >10% ns/op growth or any allocs/op
# regression on any workload × optimization level row.
verify-perf: verify
	go run ./cmd/rmibench -json > /tmp/BENCH_rmibench.fresh.json
	go run ./cmd/benchdiff BENCH_rmibench.json /tmp/BENCH_rmibench.fresh.json
	rm -f /tmp/BENCH_rmibench.fresh.json
