package cormi

// One testing.B benchmark per paper table (real wall-clock time of the
// full workload — the Go runtime shows the same relative gains the
// virtual-time tables report), plus ablation benchmarks for the design
// choices DESIGN.md calls out: dynamic vs planned serialization, cycle
// tables, reuse hits vs shape mismatches, and the two transports.

import (
	"fmt"
	"testing"

	"cormi/internal/apps/lu"
	"cormi/internal/apps/micro"
	"cormi/internal/apps/superopt"
	"cormi/internal/apps/webserver"
	"cormi/internal/core"
	"cormi/internal/model"
	"cormi/internal/rmi"
	"cormi/internal/serial"
	"cormi/internal/stats"
	"cormi/internal/transport"
	"cormi/internal/wire"
)

func levels(b *testing.B, f func(b *testing.B, level rmi.OptLevel)) {
	for _, level := range rmi.AllLevels {
		b.Run(level.String(), func(b *testing.B) { f(b, level) })
	}
}

// BenchmarkTable1LinkedList measures Table 1's workload: sending a
// 100-element linked list. Reported per send.
func BenchmarkTable1LinkedList(b *testing.B) {
	levels(b, func(b *testing.B, level rmi.OptLevel) {
		b.ReportAllocs()
		if _, err := micro.RunLinkedList(level, 100, b.N); err != nil {
			b.Fatal(err)
		}
	})
}

// BenchmarkTable2Array2D measures Table 2's workload: sending a 16×16
// double array. Reported per send.
func BenchmarkTable2Array2D(b *testing.B) {
	levels(b, func(b *testing.B, level rmi.OptLevel) {
		b.ReportAllocs()
		if _, err := micro.RunArray(level, 16, b.N); err != nil {
			b.Fatal(err)
		}
	})
}

// BenchmarkTable3LU measures Table 3's workload: a full distributed LU
// factorization (64×64, 16-blocks, 2 nodes) per iteration.
func BenchmarkTable3LU(b *testing.B) {
	levels(b, func(b *testing.B, level rmi.OptLevel) {
		for i := 0; i < b.N; i++ {
			out, err := lu.Run(level, 64, 16, 2)
			if err != nil {
				b.Fatal(err)
			}
			if out.MaxResidual > 1e-8 {
				b.Fatalf("residual %g", out.MaxResidual)
			}
		}
	})
}

// BenchmarkTable5Superopt measures Table 5's workload: one exhaustive
// ≤2-instruction search per iteration.
func BenchmarkTable5Superopt(b *testing.B) {
	levels(b, func(b *testing.B, level rmi.OptLevel) {
		p := superopt.DefaultParams()
		for i := 0; i < b.N; i++ {
			if _, err := superopt.Search(level, p); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkTable7Webserver measures Table 7's workload. Reported per
// page retrieval.
func BenchmarkTable7Webserver(b *testing.B) {
	levels(b, func(b *testing.B, level rmi.OptLevel) {
		p := webserver.DefaultParams()
		p.Requests = b.N
		b.ReportAllocs()
		if _, err := webserver.Run(level, p); err != nil {
			b.Fatal(err)
		}
	})
}

// --- ablation benchmarks ---------------------------------------------

// listFixture builds a 100-node list plus its compiled plan.
func listFixture(b *testing.B) (*model.Registry, *model.Object, *serial.Plan) {
	b.Helper()
	res, err := core.Compile(micro.LinkedListSrc)
	if err != nil {
		b.Fatal(err)
	}
	si := res.SitesOfCallee("Foo.send")[0]
	nodeClass, _ := res.ModelClass("LinkedList")
	var head *model.Object
	for i := 0; i < 100; i++ {
		x := model.New(nodeClass)
		x.Fields[0] = model.Ref(head)
		head = x
	}
	return res.Registry, head, si.ArgPlans[0]
}

// BenchmarkSerializeDynamicVsPlanned isolates §3.1: the same object
// graph through the per-class dynamic serializer vs the call-site plan.
func BenchmarkSerializeDynamicVsPlanned(b *testing.B) {
	reg, head, plan := listFixture(b)
	_ = reg
	var c stats.Counters
	run := func(b *testing.B, plans []*serial.Plan, cfg serial.Config) {
		m := wire.NewMessage(4096)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			m.Reset()
			if _, err := serial.WriteValues(m, []model.Value{model.Ref(head)}, plans, cfg, &c); err != nil {
				b.Fatal(err)
			}
		}
		b.SetBytes(int64(m.Len()))
	}
	b.Run("dynamic", func(b *testing.B) {
		run(b, nil, serial.Config{Mode: serial.ModeClass})
	})
	b.Run("planned", func(b *testing.B) {
		run(b, []*serial.Plan{plan}, serial.Config{Mode: serial.ModeSite})
	})
	b.Run("planned-nocycle", func(b *testing.B) {
		acyclic := *plan
		acyclic.NeedCycle = false
		run(b, []*serial.Plan{&acyclic}, serial.Config{Mode: serial.ModeSite, CycleElim: true})
	})
}

// BenchmarkReuseHitVsMismatch isolates §3.3's fast path (cached graph
// overwritten in place) against the Figure 13 resize path (shape
// mismatch forces allocation).
func BenchmarkReuseHitVsMismatch(b *testing.B) {
	reg, head, plan := listFixture(b)
	reusable := *plan
	reusable.Reusable = true
	cfg := serial.Config{Mode: serial.ModeSite, Reuse: true}
	var c stats.Counters
	m := wire.NewMessage(4096)
	if _, err := serial.WriteValues(m, []model.Value{model.Ref(head)}, []*serial.Plan{&reusable}, cfg, &c); err != nil {
		b.Fatal(err)
	}
	payload := m.Bytes()

	b.Run("hit", func(b *testing.B) {
		var cached []*model.Object
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			_, roots, _, err := serial.ReadValues(wire.FromBytes(payload), reg, 1,
				[]*serial.Plan{&reusable}, cfg, cached, &c)
			if err != nil {
				b.Fatal(err)
			}
			cached = roots
		}
	})
	b.Run("coldalloc", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, _, _, err := serial.ReadValues(wire.FromBytes(payload), reg, 1,
				[]*serial.Plan{&reusable}, cfg, nil, &c); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkTransports compares the in-process channel network with the
// TCP loopback network on an RMI round trip.
func BenchmarkTransports(b *testing.B) {
	bench := func(b *testing.B, nw transport.Network) {
		cluster := rmi.New(2, rmi.WithNetwork(nw))
		defer cluster.Close()
		svc := &rmi.Service{Name: "Echo", Methods: map[string]rmi.Method{
			"id": func(call *rmi.Call, args []model.Value) []model.Value { return args },
		}}
		ref := cluster.Node(1).Export(svc)
		cs := cluster.MustNewCallSite(rmi.LevelSite, rmi.SiteSpec{
			Name: "b.id", Method: "id",
			ArgPlans: []*serial.Plan{serial.PrimitivePlan("b", model.FInt)},
			RetPlans: []*serial.Plan{serial.PrimitivePlan("b", model.FInt)},
		})
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := cs.Invoke(cluster.Node(0), ref, []model.Value{model.Int(int64(i))}); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("channel", func(b *testing.B) {
		bench(b, transport.NewChannelNetwork(2, 256))
	})
	b.Run("tcp", func(b *testing.B) {
		nw, err := transport.NewTCPNetworkLocal(2)
		if err != nil {
			b.Fatal(err)
		}
		bench(b, nw)
	})
}

// BenchmarkCompiler measures the full compile pipeline (parse, check,
// SSA, heap analysis, codegen) on the LU sketch.
func BenchmarkCompiler(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := core.Compile(lu.Src); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkHeapAnalysisScaling checks that the fixpoint stays cheap as
// the program grows (many call sites of the Figure 3 shape).
func BenchmarkHeapAnalysisScaling(b *testing.B) {
	for _, sites := range []int{1, 8, 32} {
		b.Run(fmt.Sprintf("sites=%d", sites), func(b *testing.B) {
			src := "class Obj { Obj next; }\nremote class F {\n Obj foo(Obj a) { return a; }\n"
			for i := 0; i < sites; i++ {
				src += fmt.Sprintf(` static void zoo%d() {
					F me = new F();
					Obj t = new Obj();
					for (int i = 0; i < 10; i = i + 1) { t = me.foo(t); }
				}
`, i)
			}
			src += "}\n"
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := core.Compile(src); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
