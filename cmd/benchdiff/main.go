// Command benchdiff compares two rmibench perf reports and fails on
// regressions. It is the gate behind `make verify-perf`:
//
//	rmibench -json > /tmp/fresh.json
//	benchdiff BENCH_rmibench.json /tmp/fresh.json
//
// The first argument is the committed baseline, the second the fresh
// measurement. The exit status is nonzero when any workload × level
// row regresses: missing row, ns/op more than -ns-tol above baseline
// (default 10%), or allocs/op above baseline plus -alloc-eps.
//
// When both reports carry a decisions section, the optimizer
// verdict-count deltas (elided cycle checks, reuse grants) are printed
// alongside the perf result. Those deltas are informational; precision
// itself is gated by the verdict-matrix golden (`make
// verify-precision`).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"cormi/internal/harness"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is main minus the process exit, so tests can drive the CLI
// against fixture files. Exit codes: 0 clean, 1 regressions, 2 usage
// or unreadable/malformed input.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("benchdiff", flag.ContinueOnError)
	fs.SetOutput(stderr)
	opts := harness.DefaultDiffOpts()
	fs.Float64Var(&opts.NsTolerance, "ns-tol", opts.NsTolerance, "allowed fractional ns/op growth")
	fs.Float64Var(&opts.AllocEpsilon, "alloc-eps", opts.AllocEpsilon, "allowed absolute allocs/op growth")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() != 2 {
		fmt.Fprintln(stderr, "usage: benchdiff [flags] baseline.json fresh.json")
		return 2
	}

	load := func(path string) (*harness.BenchReport, bool) {
		data, err := os.ReadFile(path)
		if err != nil {
			fmt.Fprintf(stderr, "benchdiff: %v\n", err)
			return nil, false
		}
		r, err := harness.ParseBenchReport(data)
		if err != nil {
			fmt.Fprintf(stderr, "benchdiff: %s: %v\n", path, err)
			return nil, false
		}
		return r, true
	}
	base, ok := load(fs.Arg(0))
	if !ok {
		return 2
	}
	cur, ok := load(fs.Arg(1))
	if !ok {
		return 2
	}

	// Verdict-count deltas from the decisions sections are printed
	// first and never fail the run: precision is gated by the verdict
	// matrix golden, but a perf shift is easier to read next to the
	// optimizer-decision shift that explains it.
	if deltas := harness.CompareDecisions(base, cur); len(deltas) > 0 {
		fmt.Fprintf(stdout, "benchdiff: optimizer decisions changed vs %s:\n", fs.Arg(0))
		for _, d := range deltas {
			fmt.Fprintf(stdout, "  %s\n", d)
		}
	}

	// The chain section asserts protocol invariants (pipelined latency
	// at most half of sync, batched frames/op below one) in virtual
	// time, so it gates alongside the toleranced perf rows.
	if regs := harness.CompareChain(base, cur); len(regs) > 0 {
		fmt.Fprintf(stderr, "benchdiff: %d chain invariant failure(s) vs %s:\n", len(regs), fs.Arg(0))
		for _, r := range regs {
			fmt.Fprintf(stderr, "  %s\n", r)
		}
		return 1
	}

	// The attribution section asserts structural invariants of the
	// cluster tail-latency view (sites present, monotone quantiles, a
	// dominant blame phase, exemplars still captured).
	if regs := harness.CompareAttribution(base, cur); len(regs) > 0 {
		fmt.Fprintf(stderr, "benchdiff: %d attribution invariant failure(s) vs %s:\n", len(regs), fs.Arg(0))
		for _, r := range regs {
			fmt.Fprintf(stderr, "  %s\n", r)
		}
		return 1
	}

	// The tracing section asserts that cross-node trace reconstruction
	// stays whole (single root, exact span/hop counts, critical path
	// accounting for the measured wall time).
	if regs := harness.CompareTracing(base, cur); len(regs) > 0 {
		fmt.Fprintf(stderr, "benchdiff: %d tracing invariant failure(s) vs %s:\n", len(regs), fs.Arg(0))
		for _, r := range regs {
			fmt.Fprintf(stderr, "  %s\n", r)
		}
		return 1
	}

	// The cost section gates the analysis scheduler/cache economics:
	// deterministic counters exact-match the baseline, one edit must
	// re-analyze under 10% of the corpus, and cold wall time may not
	// blow up asymptotically.
	if regs := harness.CompareCost(base, cur); len(regs) > 0 {
		fmt.Fprintf(stderr, "benchdiff: %d analysis-cost failure(s) vs %s:\n", len(regs), fs.Arg(0))
		for _, r := range regs {
			fmt.Fprintf(stderr, "  %s\n", r)
		}
		return 1
	}

	if regs := harness.CompareBench(base, cur, opts); len(regs) > 0 {
		fmt.Fprintf(stderr, "benchdiff: %d regression(s) vs %s:\n", len(regs), fs.Arg(0))
		for _, r := range regs {
			fmt.Fprintf(stderr, "  %s\n", r)
		}
		return 1
	}
	fmt.Fprintf(stdout, "benchdiff: %d rows OK (ns/op within %.0f%%, allocs/op within +%.2f)\n",
		len(base.Rows), 100*opts.NsTolerance, opts.AllocEpsilon)
	return 0
}
