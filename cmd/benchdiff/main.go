// Command benchdiff compares two rmibench perf reports and fails on
// regressions. It is the gate behind `make verify-perf`:
//
//	rmibench -json > /tmp/fresh.json
//	benchdiff BENCH_rmibench.json /tmp/fresh.json
//
// The first argument is the committed baseline, the second the fresh
// measurement. The exit status is nonzero when any workload × level
// row regresses: missing row, ns/op more than -ns-tol above baseline
// (default 10%), or allocs/op above baseline plus -alloc-eps.
package main

import (
	"flag"
	"fmt"
	"os"

	"cormi/internal/harness"
)

func main() {
	opts := harness.DefaultDiffOpts()
	flag.Float64Var(&opts.NsTolerance, "ns-tol", opts.NsTolerance, "allowed fractional ns/op growth")
	flag.Float64Var(&opts.AllocEpsilon, "alloc-eps", opts.AllocEpsilon, "allowed absolute allocs/op growth")
	flag.Parse()
	if flag.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "usage: benchdiff [flags] baseline.json fresh.json")
		os.Exit(2)
	}

	load := func(path string) *harness.BenchReport {
		data, err := os.ReadFile(path)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchdiff: %v\n", err)
			os.Exit(2)
		}
		r, err := harness.ParseBenchReport(data)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchdiff: %s: %v\n", path, err)
			os.Exit(2)
		}
		return r
	}
	base, cur := load(flag.Arg(0)), load(flag.Arg(1))

	if regs := harness.CompareBench(base, cur, opts); len(regs) > 0 {
		fmt.Fprintf(os.Stderr, "benchdiff: %d regression(s) vs %s:\n", len(regs), flag.Arg(0))
		for _, r := range regs {
			fmt.Fprintf(os.Stderr, "  %s\n", r)
		}
		os.Exit(1)
	}
	fmt.Printf("benchdiff: %d rows OK (ns/op within %.0f%%, allocs/op within +%.2f)\n",
		len(base.Rows), 100*opts.NsTolerance, opts.AllocEpsilon)
}
