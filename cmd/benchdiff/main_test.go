package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"cormi/internal/harness"
)

// The CLI is exercised through run() against fixture files on disk —
// the same path `make verify-perf` takes — with special attention to
// baselines and fresh reports whose row sets disagree.

func writeReport(t *testing.T, dir, name string, r *harness.BenchReport) string {
	t.Helper()
	data, err := r.JSON()
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func row(table, level string, ns, allocs float64) harness.BenchRow {
	return harness.BenchRow{Table: table, Level: level, Iters: 100, NsPerOp: ns, BPerOp: 8, AllocsPerOp: allocs}
}

func runCLI(t *testing.T, args ...string) (code int, stdout, stderr string) {
	t.Helper()
	var out, errb strings.Builder
	code = run(args, &out, &errb)
	return code, out.String(), errb.String()
}

func TestIdenticalReportsPass(t *testing.T) {
	dir := t.TempDir()
	r := &harness.BenchReport{GoVersion: "go1.24.0", Rows: []harness.BenchRow{
		row("table1_linkedlist", "site", 1000, 0),
		row("table2_array2d", "site", 2000, 3),
	}}
	base := writeReport(t, dir, "base.json", r)
	cur := writeReport(t, dir, "cur.json", r)
	code, stdout, stderr := runCLI(t, base, cur)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, stderr)
	}
	if !strings.Contains(stdout, "2 rows OK") {
		t.Fatalf("stdout = %q", stdout)
	}
}

func TestMissingRowInFreshReportFails(t *testing.T) {
	// A row present in the committed baseline but absent from the
	// fresh run means a workload silently stopped being measured —
	// that must fail, not pass by vacuity.
	dir := t.TempDir()
	base := writeReport(t, dir, "base.json", &harness.BenchReport{Rows: []harness.BenchRow{
		row("table1_linkedlist", "site", 1000, 0),
		row("table2_array2d", "site", 2000, 3),
	}})
	cur := writeReport(t, dir, "cur.json", &harness.BenchReport{Rows: []harness.BenchRow{
		row("table1_linkedlist", "site", 1000, 0),
	}})
	code, _, stderr := runCLI(t, base, cur)
	if code != 1 {
		t.Fatalf("exit %d, want 1; stderr: %s", code, stderr)
	}
	if !strings.Contains(stderr, "table2_array2d/site: missing from new report") {
		t.Fatalf("stderr does not name the missing row: %s", stderr)
	}
}

func TestExtraRowInFreshReportPasses(t *testing.T) {
	// New workloads appear in fresh reports before the baseline is
	// regenerated; they are additions, not regressions.
	dir := t.TempDir()
	base := writeReport(t, dir, "base.json", &harness.BenchReport{Rows: []harness.BenchRow{
		row("table1_linkedlist", "site", 1000, 0),
	}})
	cur := writeReport(t, dir, "cur.json", &harness.BenchReport{Rows: []harness.BenchRow{
		row("table1_linkedlist", "site", 1000, 0),
		row("table9_new_workload", "site", 123456, 99),
	}})
	code, _, stderr := runCLI(t, base, cur)
	if code != 0 {
		t.Fatalf("exit %d (extra row treated as regression?); stderr: %s", code, stderr)
	}
}

func TestNsRegressionFails(t *testing.T) {
	dir := t.TempDir()
	base := writeReport(t, dir, "base.json", &harness.BenchReport{Rows: []harness.BenchRow{
		row("table1_linkedlist", "site", 1000, 0),
	}})
	cur := writeReport(t, dir, "cur.json", &harness.BenchReport{Rows: []harness.BenchRow{
		row("table1_linkedlist", "site", 1200, 0), // +20% > default 10%
	}})
	code, _, stderr := runCLI(t, base, cur)
	if code != 1 || !strings.Contains(stderr, "ns/op") {
		t.Fatalf("exit %d, stderr: %s", code, stderr)
	}
	// The same pair passes with a loosened tolerance flag.
	code, _, stderr = runCLI(t, "-ns-tol", "0.5", base, cur)
	if code != 0 {
		t.Fatalf("loosened tolerance still fails: exit %d, %s", code, stderr)
	}
}

func TestMalformedAndMissingInputs(t *testing.T) {
	dir := t.TempDir()
	bad := filepath.Join(dir, "bad.json")
	if err := os.WriteFile(bad, []byte("{not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	good := writeReport(t, dir, "good.json", &harness.BenchReport{Rows: []harness.BenchRow{
		row("table1_linkedlist", "site", 1000, 0),
	}})

	if code, _, stderr := runCLI(t, bad, good); code != 2 || !strings.Contains(stderr, "bad.json") {
		t.Fatalf("malformed baseline: exit %d, stderr: %s", code, stderr)
	}
	if code, _, _ := runCLI(t, good, filepath.Join(dir, "nope.json")); code != 2 {
		t.Fatalf("missing file should exit 2, got %d", code)
	}
	if code, _, stderr := runCLI(t, good); code != 2 || !strings.Contains(stderr, "usage") {
		t.Fatalf("one arg: exit %d, stderr: %s", code, stderr)
	}
}

func TestBaselineWithPhaseLatencySectionStillParses(t *testing.T) {
	// Reports written with -trace carry a phase_latency section; the
	// comparison must ignore it (and old baselines without it).
	dir := t.TempDir()
	withPhases := filepath.Join(dir, "phases.json")
	if err := os.WriteFile(withPhases, []byte(`{
		"go_version": "go1.24.0",
		"rows": [{"table":"table1_linkedlist","level":"site","iters":100,"ns_per_op":1000,"b_per_op":8,"allocs_per_op":0}],
		"phase_latency": [{"site":"Micro.send.1","phase":"execute","count":10,"mean_ns":5,"p50_ns":4,"p95_ns":9,"p99_ns":11}]
	}`), 0o644); err != nil {
		t.Fatal(err)
	}
	plain := writeReport(t, dir, "plain.json", &harness.BenchReport{Rows: []harness.BenchRow{
		row("table1_linkedlist", "site", 1000, 0),
	}})
	if code, _, stderr := runCLI(t, withPhases, plain); code != 0 {
		t.Fatalf("phase_latency baseline vs plain: exit %d, %s", code, stderr)
	}
	if code, _, stderr := runCLI(t, plain, withPhases); code != 0 {
		t.Fatalf("plain baseline vs phase_latency: exit %d, %s", code, stderr)
	}
}

func TestUnknownSectionsAreTolerated(t *testing.T) {
	// Reports now carry a decisions section (the per-workload explain
	// reports), and future runs may add more. benchdiff compares rows
	// only; a report with sections this binary has never heard of must
	// still parse and diff cleanly in either position — that forward
	// compatibility is what lets baselines and tools be regenerated on
	// independent schedules.
	dir := t.TempDir()
	withExtras := filepath.Join(dir, "extras.json")
	if err := os.WriteFile(withExtras, []byte(`{
		"go_version": "go1.24.0",
		"rows": [{"table":"table1_linkedlist","level":"site","iters":100,"ns_per_op":1000,"b_per_op":8,"allocs_per_op":0}],
		"decisions": [{"schema":"cormi-explain/1","source":"table1_linkedlist","sites":[]}],
		"future_section": {"nested": [1, 2, {"deep": true}]}
	}`), 0o644); err != nil {
		t.Fatal(err)
	}
	plain := writeReport(t, dir, "plain.json", &harness.BenchReport{Rows: []harness.BenchRow{
		row("table1_linkedlist", "site", 1000, 0),
	}})
	if code, _, stderr := runCLI(t, withExtras, plain); code != 0 {
		t.Fatalf("decisions+unknown baseline vs plain: exit %d, %s", code, stderr)
	}
	if code, _, stderr := runCLI(t, plain, withExtras); code != 0 {
		t.Fatalf("plain baseline vs decisions+unknown: exit %d, %s", code, stderr)
	}
}
