// Command rmibench regenerates the paper's evaluation tables
// (Tables 1–8 of "Compiler Optimized Remote Method Invocation").
//
// Usage:
//
//	rmibench               # all tables at test scale
//	rmibench -scale paper  # all tables at paper-like scale (slow)
//	rmibench -table 3      # only Table 3 (implies its stats twin)
//	rmibench -faults       # chaos mode: run the workloads over a lossy
//	                       # network and verify exactly-once completion
//	rmibench -faults -drop 0.1 -dup 0.05 -seed 7   # custom fault mix
//	rmibench -skew         # mixed-version mode: one node advertises
//	                       # skewed plan fingerprints; verify HELLO
//	                       # negotiation demotes to the class-level
//	                       # encoding with fully correct results
//	rmibench -chain 8      # chained-dependency workload: sync vs
//	                       # async vs pipelined vs batched, with
//	                       # virtual chain latency and frames/op
//	rmibench -json > BENCH_rmibench.json           # machine-readable
//	                       # perf report (ns/op, B/op, allocs/op per
//	                       # workload × optimization level) consumed by
//	                       # cmd/benchdiff / `make verify-perf`
//	rmibench -trace out.json   # traced micro pass: writes a
//	                       # Perfetto-loadable Chrome trace to out.json
//	                       # and prints per-phase p50/p95/p99 latencies
//	rmibench -faults -trace out.json   # chaos with the flight recorder
//	                       # attached: a timeout/partition auto-dumps
//	                       # the recent spans to out.json
//	rmibench -json -trace out.json     # perf report with a
//	                       # phase_latency section, plus the trace file
package main

import (
	"flag"
	"fmt"
	"os"

	"cormi/internal/harness"
	"cormi/internal/trace"
)

func main() {
	scaleName := flag.String("scale", "test", "workload scale: test | paper")
	table := flag.Int("table", 0, "single table to regenerate (1-8); 0 = all")
	scaling := flag.Bool("scaling", false, "run the multi-CPU scaling extension instead of the paper tables")
	faults := flag.Bool("faults", false, "chaos mode: run LU and the micro benchmarks over a faulty network")
	drop := flag.Float64("drop", -1, "chaos: packet drop probability (default from spec)")
	dup := flag.Float64("dup", -1, "chaos: packet duplication probability")
	reorder := flag.Float64("reorder", -1, "chaos: packet reordering probability")
	corrupt := flag.Float64("corrupt", -1, "chaos: payload corruption probability")
	seed := flag.Int64("seed", 42, "chaos: fault injection seed")
	skew := flag.Bool("skew", false, "mixed-version mode: run the workloads with one node's plan fingerprints skewed and verify negotiated fallback")
	jsonOut := flag.Bool("json", false, "emit the machine-readable perf report (for benchdiff) and exit")
	traceOut := flag.String("trace", "", "write a Perfetto-loadable Chrome trace to this file and print per-phase latency quantiles")
	chain := flag.Int("chain", 0, "chained-dependency workload at this depth (sync/async/pipelined/batched); with -json, overrides the report's chain depth")
	chains := flag.Int("chains", 100, "number of chains per mode for -chain")
	flag.Parse()

	if *jsonOut {
		spec := harness.DefaultBenchSpec()
		spec.TracePhases = *traceOut != ""
		if *chain > 0 {
			spec.ChainDepth = *chain
			spec.ChainCount = *chains
		}
		report, err := harness.RunBench(spec)
		if err != nil {
			fmt.Fprintf(os.Stderr, "rmibench: bench run failed: %v\n", err)
			os.Exit(1)
		}
		data, err := report.JSON()
		if err != nil {
			fmt.Fprintf(os.Stderr, "rmibench: %v\n", err)
			os.Exit(1)
		}
		fmt.Println(string(data))
		if *traceOut != "" {
			// The report already folded the quantiles in; the trace
			// file still wants the raw spans of a traced pass.
			writeTraceFile(*traceOut)
		}
		return
	}

	if *chain > 0 {
		rows, err := harness.RunChain(*chain, *chains)
		if err != nil {
			fmt.Fprintf(os.Stderr, "rmibench: chain run failed: %v\n", err)
			os.Exit(1)
		}
		fmt.Print(harness.FormatChain(rows))
		// The distributed-tracing counterpart of the chain workload:
		// the same pipelined chain, traced across three nodes and
		// reconstructed through /traces.
		dspec := harness.DefaultDTraceSpec()
		dspec.Depth = *chain
		trow, err := harness.RunDTrace(dspec)
		if err != nil {
			fmt.Fprintf(os.Stderr, "rmibench: dtrace run failed: %v\n", err)
			os.Exit(1)
		}
		fmt.Print(harness.FormatTracing(trow))
		return
	}

	if *skew {
		scale := harness.TestScale()
		if *scaleName == "paper" {
			scale = harness.PaperScale()
		}
		report, err := harness.VersionSkew(scale, 1)
		if report != nil {
			fmt.Println(report.Format())
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "rmibench: version-skew run failed: %v\n", err)
			os.Exit(1)
		}
		neg, err := harness.NegotiationProbe()
		if err != nil {
			fmt.Fprintf(os.Stderr, "rmibench: %v\n", err)
			os.Exit(1)
		}
		fmt.Println(harness.FormatNegotiation(neg))
		return
	}

	if *faults {
		spec := harness.DefaultChaosSpec(*seed)
		if *drop >= 0 {
			spec.Faults.Drop = *drop
		}
		if *dup >= 0 {
			spec.Faults.Dup = *dup
		}
		if *reorder >= 0 {
			spec.Faults.Reorder = *reorder
		}
		if *corrupt >= 0 {
			spec.Faults.Corrupt = *corrupt
		}
		var traceFile *os.File
		if *traceOut != "" {
			f, err := os.Create(*traceOut)
			if err != nil {
				fmt.Fprintf(os.Stderr, "rmibench: %v\n", err)
				os.Exit(1)
			}
			traceFile = f
			// One dump max: several concatenated JSON documents would
			// not load as a single Chrome trace.
			spec.Tracer = trace.New(trace.Config{RingSize: 4096, FailureDump: f, MaxDumps: 1})
		}
		report, err := harness.Chaos(harness.TestScale(), spec)
		if report != nil {
			fmt.Println(report.Format())
		}
		if traceFile != nil {
			if err == nil {
				// No failure dump fired — export the live flight
				// recorder instead so the file is always loadable.
				_ = trace.WriteChrome(traceFile, spec.Tracer.Recent(), "chaos")
			}
			traceFile.Close()
			fmt.Println(harness.FormatPhases(spec.Tracer.PhaseStats()))
			fmt.Printf("chrome trace written to %s (load in Perfetto / chrome://tracing)\n", *traceOut)
		}
		if err != nil {
			fmt.Fprintf(os.Stderr, "rmibench: chaos run failed: %v\n", err)
			os.Exit(1)
		}
		return
	}

	if *traceOut != "" {
		writeTraceFile(*traceOut)
		return
	}

	if *scaling {
		n, bs := 256, 32
		if *scaleName == "paper" {
			n = 1024
		}
		t, err := harness.LUScaling(n, bs, []int{1, 2, 4, 8})
		if err != nil {
			fmt.Fprintf(os.Stderr, "rmibench: %v\n", err)
			os.Exit(1)
		}
		fmt.Println(t.Format())
		return
	}

	var scale harness.Scale
	switch *scaleName {
	case "test":
		scale = harness.TestScale()
	case "paper":
		scale = harness.PaperScale()
	default:
		fmt.Fprintf(os.Stderr, "rmibench: unknown scale %q\n", *scaleName)
		os.Exit(2)
	}

	emit := func(tables ...*harness.Table) {
		for _, t := range tables {
			fmt.Println(t.Format())
		}
	}
	fail := func(err error) {
		if err != nil {
			fmt.Fprintf(os.Stderr, "rmibench: %v\n", err)
			os.Exit(1)
		}
	}

	switch *table {
	case 0:
		tables, err := harness.All(scale)
		fail(err)
		emit(tables...)
	case 1:
		t, err := harness.Table1(scale)
		fail(err)
		emit(t)
	case 2:
		t, err := harness.Table2(scale)
		fail(err)
		emit(t)
	case 3, 4:
		t3, t4, err := harness.Tables34(scale)
		fail(err)
		emit(t3, t4)
	case 5, 6:
		t5, t6, err := harness.Tables56(scale)
		fail(err)
		emit(t5, t6)
	case 7, 8:
		t7, t8, err := harness.Tables78(scale)
		fail(err)
		emit(t7, t8)
	default:
		fmt.Fprintf(os.Stderr, "rmibench: no table %d\n", *table)
		os.Exit(2)
	}
}

// writeTraceFile runs the traced micro pass, writes the Chrome trace,
// and prints the per-phase latency summary.
func writeTraceFile(path string) {
	rep, err := harness.RunTraced(harness.DefaultBenchSpec())
	if err != nil {
		fmt.Fprintf(os.Stderr, "rmibench: traced run failed: %v\n", err)
		os.Exit(1)
	}
	f, err := os.Create(path)
	if err != nil {
		fmt.Fprintf(os.Stderr, "rmibench: %v\n", err)
		os.Exit(1)
	}
	if err := trace.WriteChrome(f, rep.Spans, "rmibench"); err != nil {
		f.Close()
		fmt.Fprintf(os.Stderr, "rmibench: writing trace: %v\n", err)
		os.Exit(1)
	}
	f.Close()
	fmt.Print(harness.FormatPhases(rep.Phases))
	fmt.Printf("chrome trace written to %s (load in Perfetto / chrome://tracing)\n", path)
}
