// Command rmic is the optimizing RMI compiler driver: it parses a
// MiniJP source file, runs the heap analysis and the three
// optimizations, and dumps what the paper's figures show — the heap
// graph (Figure 2), the generated call-site-specific marshalers
// (Figures 6/13), the class-specific baseline serializers (Figure 7)
// and the SSA form.
//
// Usage:
//
//	rmic [flags] file.jp        # or -example to use a built-in sample
//	  -dump-code   generated marshaler pseudocode per call site (default)
//	  -dump-heap   heap graph per call site
//	  -dump-ssa    SSA dump of every function
//	  -dump-class  class-specific (baseline) serializers per class
//	  -sites       one-line analysis summary per call site
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"cormi/internal/core"
)

// exampleSrc is Figure 5 plus the Figure 12 array benchmark, so rmic
// without a file still demonstrates the analyses.
const exampleSrc = `
class Base { }
class Derived1 extends Base { int data; }
class Derived2 extends Base { Derived1 p; }
remote class Work {
	void foo(Base b) { }
	static void go() {
		Work w = new Work();
		Base b1 = new Derived1();
		w.foo(b1);
		Base b2 = new Derived2();
		w.foo(b2);
	}
}
remote class ArrayBench {
	void send(double[][] arr) { }
	static void benchmark() {
		double[][] arr = new double[16][16];
		ArrayBench f = new ArrayBench();
		f.send(arr);
	}
}
`

func main() {
	dumpCode := flag.Bool("dump-code", false, "dump generated marshaler pseudocode")
	dumpHeap := flag.Bool("dump-heap", false, "dump per-site heap graphs")
	dumpSSA := flag.Bool("dump-ssa", false, "dump SSA")
	dumpClass := flag.Bool("dump-class", false, "dump baseline class-specific serializers")
	sites := flag.Bool("sites", false, "summarize call-site verdicts")
	example := flag.Bool("example", false, "compile the built-in Figure 5 example")
	flag.Parse()

	src := exampleSrc
	switch {
	case *example:
	case flag.NArg() == 1:
		b, err := os.ReadFile(flag.Arg(0))
		if err != nil {
			fmt.Fprintf(os.Stderr, "rmic: %v\n", err)
			os.Exit(1)
		}
		src = string(b)
	default:
		fmt.Fprintln(os.Stderr, "rmic: need a source file or -example")
		os.Exit(2)
	}

	res, err := core.Compile(src)
	if err != nil {
		fmt.Fprintf(os.Stderr, "rmic: %v\n", err)
		os.Exit(1)
	}

	any := false
	if *sites {
		any = true
		for _, si := range res.Sites {
			if si.Dead {
				continue
			}
			reuse := "-"
			for i, r := range si.ArgReusable {
				if r {
					reuse = fmt.Sprintf("arg%d", i)
					break
				}
			}
			if si.RetReusable {
				reuse += "+ret"
			}
			fmt.Printf("%-24s -> %-24s cycle=%-5v ack=%-5v reuse=%s\n",
				si.Name, si.Callee.QualifiedName(), si.MayCycle, si.IgnoreRet, reuse)
		}
	}
	if *dumpHeap {
		any = true
		for _, si := range res.Sites {
			if si.Dead {
				continue
			}
			fmt.Printf("=== heap graph at %s ===\n%s\n", si.Name, res.DumpHeapForSite(si))
		}
	}
	if *dumpSSA {
		any = true
		fmt.Print(res.SSA())
	}
	if *dumpClass {
		any = true
		names := res.Registry.Names()
		sort.Strings(names)
		for _, n := range names {
			mc, _ := res.Registry.ByName(n)
			fmt.Println(core.ClassSpecificPseudocode(mc))
		}
	}
	if *dumpCode || !any {
		fmt.Print(res.DumpAll())
	}
}
