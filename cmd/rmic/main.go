// Command rmic is the optimizing RMI compiler driver: it parses a
// MiniJP source file, runs the heap analysis and the three
// optimizations, and dumps what the paper's figures show — the heap
// graph (Figure 2), the generated call-site-specific marshalers
// (Figures 6/13), the class-specific baseline serializers (Figure 7)
// and the SSA form.
//
// Usage:
//
//	rmic [flags] file.jp        # or -example to use a built-in sample
//	  -dump-code     generated marshaler pseudocode per call site (default)
//	  -dump-heap     heap graph per call site
//	  -dump-ssa      SSA dump of every function
//	  -dump-class    class-specific (baseline) serializers per class
//	  -sites         one-line analysis summary per call site
//	  -fingerprints  per-class plan fingerprints (the HELLO advertisement)
//	  -explain       per-call-site optimizer decision report (human text)
//	  -explain-json  the same report, machine readable (cormi-explain/1)
//	  -explain-smoke run the explain pipeline over every bundled example
//	                 and validate the reports (the `make explain-smoke` gate)
//	  -verdict-matrix DIR
//	                 compile every *.jp under DIR and print the per-site
//	                 verdict matrix plus the analysis-cost table (the human
//	                 view of the `make verify-precision` golden)
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"cormi/internal/apps/lu"
	"cormi/internal/apps/micro"
	"cormi/internal/apps/superopt"
	"cormi/internal/apps/webserver"
	"cormi/internal/core"
	"cormi/internal/harness"
	"cormi/internal/heap"
	"cormi/internal/model"
	"cormi/internal/serial"
)

// exampleSrc is Figure 5 plus the Figure 12 array benchmark, so rmic
// without a file still demonstrates the analyses.
const exampleSrc = `
class Base { }
class Derived1 extends Base { int data; }
class Derived2 extends Base { Derived1 p; }
remote class Work {
	void foo(Base b) { }
	static void go() {
		Work w = new Work();
		Base b1 = new Derived1();
		w.foo(b1);
		Base b2 = new Derived2();
		w.foo(b2);
	}
}
remote class ArrayBench {
	void send(double[][] arr) { }
	static void benchmark() {
		double[][] arr = new double[16][16];
		ArrayBench f = new ArrayBench();
		f.send(arr);
	}
}
`

func main() {
	dumpCode := flag.Bool("dump-code", false, "dump generated marshaler pseudocode")
	dumpHeap := flag.Bool("dump-heap", false, "dump per-site heap graphs")
	dumpSSA := flag.Bool("dump-ssa", false, "dump SSA")
	dumpClass := flag.Bool("dump-class", false, "dump baseline class-specific serializers")
	sites := flag.Bool("sites", false, "summarize call-site verdicts")
	example := flag.Bool("example", false, "compile the built-in Figure 5 example")
	explain := flag.Bool("explain", false, "print per-call-site optimizer decisions with denial witnesses")
	explainJSON := flag.Bool("explain-json", false, "print the decision report as JSON (schema "+core.ExplainSchema+")")
	explainSmoke := flag.Bool("explain-smoke", false, "self-validate the explain reports of every bundled example")
	fingerprints := flag.Bool("fingerprints", false, "print the per-class plan fingerprints the compiled program would advertise in its HELLO")
	verdictMatrix := flag.String("verdict-matrix", "", "compile every *.jp under the directory and print the verdict matrix")
	analysisStats := flag.Bool("analysis-stats", false, "print the analysis cost table (structure, precision effort, cache economics)")
	analysisStatsJSON := flag.Bool("analysis-stats-json", false, "print the analysis cost as JSON (schema "+heap.CostSchema+")")
	analysisCache := flag.String("analysis-cache", "", "persist/reuse region summaries under this directory (incremental analysis)")
	analysisWorkers := flag.Int("analysis-workers", 0, "analysis worker pool size (0 = GOMAXPROCS)")
	flag.Parse()

	if *explainSmoke {
		if err := smokeExplain(os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "rmic: explain smoke: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if *verdictMatrix != "" {
		m, err := harness.BuildVerdictMatrix(*verdictMatrix, core.Options{})
		if err != nil {
			fmt.Fprintf(os.Stderr, "rmic: verdict matrix: %v\n", err)
			os.Exit(1)
		}
		fmt.Print(m.Format())
		fmt.Println()
		fmt.Print(m.FormatCost())
		return
	}

	src := exampleSrc
	switch {
	case *example:
	case flag.NArg() == 1:
		b, err := os.ReadFile(flag.Arg(0))
		if err != nil {
			fmt.Fprintf(os.Stderr, "rmic: %v\n", err)
			os.Exit(1)
		}
		src = string(b)
	default:
		fmt.Fprintln(os.Stderr, "rmic: need a source file or -example")
		os.Exit(2)
	}

	label := "example"
	if flag.NArg() == 1 {
		label = flag.Arg(0)
	}

	copts := core.Options{}
	if *analysisCache != "" || *analysisWorkers != 0 {
		ho := heap.DefaultOptions()
		ho.CacheDir = *analysisCache
		ho.Workers = *analysisWorkers
		copts.HeapOpts = &ho
	}
	res, err := core.CompileOpts(src, model.NewRegistry(), copts)
	if err != nil {
		fmt.Fprintf(os.Stderr, "rmic: %v\n", err)
		os.Exit(1)
	}
	if n := res.Heap.Cost.BudgetFallbacks; n > 0 {
		fmt.Fprintf(os.Stderr, "rmic: warning: context budget demoted %d call sites to the merged context (%s); precision is degraded — see -analysis-stats\n",
			n, strings.Join(res.Heap.Cost.FallbackFuncs, ", "))
	}

	any := false
	if *sites {
		any = true
		for _, si := range res.Sites {
			if si.Dead {
				continue
			}
			reuse := "-"
			for i, r := range si.ArgReusable {
				if r {
					reuse = fmt.Sprintf("arg%d", i)
					break
				}
			}
			if si.RetReusable {
				reuse += "+ret"
			}
			fmt.Printf("%-24s -> %-24s cycle=%-5v ack=%-5v reuse=%s\n",
				si.Name, si.Callee.QualifiedName(), si.MayCycle, si.IgnoreRet, reuse)
		}
	}
	if *dumpHeap {
		any = true
		for _, si := range res.Sites {
			if si.Dead {
				continue
			}
			fmt.Printf("=== heap graph at %s ===\n%s\n", si.Name, res.DumpHeapForSite(si))
		}
	}
	if *dumpSSA {
		any = true
		fmt.Print(res.SSA())
	}
	if *dumpClass {
		any = true
		names := res.Registry.Names()
		sort.Strings(names)
		for _, n := range names {
			mc, _ := res.Registry.ByName(n)
			fmt.Println(core.ClassSpecificPseudocode(mc))
		}
	}
	if *fingerprints {
		any = true
		fps := serial.RegistryFingerprints(res.Registry)
		names := make([]string, 0, len(fps))
		for n := range fps {
			names = append(names, n)
		}
		sort.Strings(names)
		for _, n := range names {
			fmt.Printf("%-24s %016x\n", n, fps[n])
		}
	}
	if *analysisStats || *analysisStatsJSON {
		any = true
		if *analysisStatsJSON {
			b, err := res.Heap.Cost.JSON(label)
			if err != nil {
				fmt.Fprintf(os.Stderr, "rmic: %v\n", err)
				os.Exit(1)
			}
			fmt.Println(string(b))
		} else {
			fmt.Print(res.Heap.Cost.Format())
		}
	}
	if *explain || *explainJSON {
		any = true
		rep := res.Explain(label)
		if *explainJSON {
			enc := json.NewEncoder(os.Stdout)
			enc.SetIndent("", "  ")
			if err := enc.Encode(rep); err != nil {
				fmt.Fprintf(os.Stderr, "rmic: %v\n", err)
				os.Exit(1)
			}
		} else {
			fmt.Print(rep.Format())
		}
	}
	if *dumpCode || !any {
		fmt.Print(res.DumpAll())
	}
}

// smokeExamples are the bundled programs the explain gate runs over:
// the Figure 5 example plus every Table 1/2 workload source.
var smokeExamples = []struct {
	name string
	src  string
}{
	{"example", exampleSrc},
	{"webserver", webserver.Src},
	{"superopt", superopt.Src},
	{"lu", lu.Src},
	{"micro-linkedlist", micro.LinkedListSrc},
	{"micro-arraybench", micro.ArrayBenchSrc},
}

// smokeReport is the subset of the cormi-explain/1 schema the smoke
// gate validates after a JSON round trip.
type smokeReport struct {
	Schema string `json:"schema"`
	Sites  []struct {
		Site       string          `json:"site"`
		Dead       bool            `json:"dead"`
		CycleCheck smokeCycleCheck `json:"cycle_check"`
		Args       []smokeValue    `json:"args"`
		Ret        *smokeValue     `json:"ret"`
	} `json:"sites"`
}

type smokeCycleCheck struct {
	Elided  bool `json:"elided"`
	Witness *struct {
		Kind       string `json:"kind"`
		RepeatPath string `json:"repeat_path"`
	} `json:"witness"`
}

type smokeValue struct {
	PlanShape string `json:"plan_shape"`
	Reuse     struct {
		Applied    bool   `json:"applied"`
		DeniedRule string `json:"denied_rule"`
	} `json:"reuse"`
}

// smokeExplain compiles every bundled example, emits its explain
// report as JSON, re-parses it, and validates the schema invariants:
// a decision record for every call site, a plan shape and a reuse
// verdict (applied, or denied with a rule) for every value, and a
// heap-analysis witness on every kept cycle check. Across the corpus
// it must see at least one elided cycle check and at least one applied
// reuse decision — the optimizations the audit layer exists to
// explain.
func smokeExplain(w *os.File) error {
	var elided, reuseApplied int
	check := func(v smokeValue, where string) error {
		if v.PlanShape == "" {
			return fmt.Errorf("%s: missing plan_shape", where)
		}
		if v.Reuse.Applied {
			reuseApplied++
		} else if v.Reuse.DeniedRule == "" {
			return fmt.Errorf("%s: reuse neither applied nor denied with a rule", where)
		}
		return nil
	}
	for _, ex := range smokeExamples {
		res, err := core.Compile(ex.src)
		if err != nil {
			return fmt.Errorf("%s: %v", ex.name, err)
		}
		raw, err := json.Marshal(res.Explain(ex.name))
		if err != nil {
			return fmt.Errorf("%s: marshal: %v", ex.name, err)
		}
		var rep smokeReport
		if err := json.Unmarshal(raw, &rep); err != nil {
			return fmt.Errorf("%s: report does not re-parse: %v", ex.name, err)
		}
		if rep.Schema != core.ExplainSchema {
			return fmt.Errorf("%s: schema %q, want %q", ex.name, rep.Schema, core.ExplainSchema)
		}
		if len(rep.Sites) != len(res.Sites) {
			return fmt.Errorf("%s: %d decision records for %d call sites",
				ex.name, len(rep.Sites), len(res.Sites))
		}
		live := 0
		for _, d := range rep.Sites {
			if d.Site == "" {
				return fmt.Errorf("%s: decision record without site id", ex.name)
			}
			if d.Dead {
				continue
			}
			live++
			if d.CycleCheck.Elided {
				elided++
			} else if d.CycleCheck.Witness == nil ||
				d.CycleCheck.Witness.Kind == "" || d.CycleCheck.Witness.RepeatPath == "" {
				return fmt.Errorf("%s %s: kept cycle check carries no witness", ex.name, d.Site)
			}
			for i, a := range d.Args {
				if err := check(a, fmt.Sprintf("%s %s arg %d", ex.name, d.Site, i)); err != nil {
					return err
				}
			}
			if d.Ret != nil {
				if err := check(*d.Ret, fmt.Sprintf("%s %s ret", ex.name, d.Site)); err != nil {
					return err
				}
			}
		}
		fmt.Fprintf(w, "explain %-18s %d sites (%d live): schema + witnesses OK\n",
			ex.name, len(rep.Sites), live)
	}
	if elided == 0 {
		return fmt.Errorf("no elided cycle check anywhere in the corpus")
	}
	if reuseApplied == 0 {
		return fmt.Errorf("no applied reuse decision anywhere in the corpus")
	}
	fmt.Fprintf(w, "explain smoke OK: %d elided cycle checks, %d applied reuse decisions\n",
		elided, reuseApplied)
	return nil
}
