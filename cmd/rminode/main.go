// Command rminode demonstrates the distributed transport: it runs an
// n-node cluster whose nodes talk over real TCP sockets (loopback)
// instead of the in-process channel network, performs a round of
// remote calls at every optimization level, and prints the observed
// statistics. It is the deployment-shaped counterpart of the
// benchmarks: everything crosses a real network stack.
//
// Usage:
//
//	rminode [-nodes 2] [-sends 50]
package main

import (
	"flag"
	"fmt"
	"os"

	"cormi/internal/apps/appkit"
	"cormi/internal/core"
	"cormi/internal/model"
	"cormi/internal/rmi"
	"cormi/internal/transport"
)

const src = `
class Vector { double[] data; }
remote class Store {
	double put(Vector v) { return 0.0; }
}
class Main {
	static void main() {
		Store s = new Store();
		Vector v = new Vector();
		v.data = new double[256];
		double sum = s.put(v);
		double use = sum + 1.0;
	}
}
`

func main() {
	nodes := flag.Int("nodes", 2, "cluster size")
	sends := flag.Int("sends", 50, "RMIs per optimization level")
	flag.Parse()

	for _, level := range rmi.AllLevels {
		nw, err := transport.NewTCPNetworkLocal(*nodes)
		if err != nil {
			fail(err)
		}
		cluster := rmi.New(*nodes, rmi.WithNetwork(nw))
		res, err := core.CompileInto(src, cluster.Registry)
		if err != nil {
			fail(err)
		}
		si := res.SiteByName("Main.main.1")
		if si == nil {
			fail(fmt.Errorf("call site missing"))
		}
		cs, err := appkit.Register(cluster, level, si)
		if err != nil {
			fail(err)
		}

		vecClass, _ := res.ModelClass("Vector")
		svc := &rmi.Service{Name: "Store", Methods: map[string]rmi.Method{
			"put": func(call *rmi.Call, args []model.Value) []model.Value {
				var s float64
				for _, x := range args[0].O.Fields[0].O.Doubles {
					s += x
				}
				return []model.Value{model.Double(s)}
			},
		}}
		ref := cluster.Node(*nodes - 1).Export(svc)

		vec := model.New(vecClass)
		arr := model.NewArray(cluster.Registry.DoubleArray(), 256)
		for i := range arr.Doubles {
			arr.Doubles[i] = float64(i)
		}
		vec.Fields[0] = model.Ref(arr)

		want := float64(255 * 256 / 2)
		for i := 0; i < *sends; i++ {
			rets, err := cs.Invoke(cluster.Node(0), ref, []model.Value{model.Ref(vec)})
			if err != nil {
				fail(err)
			}
			if rets[0].D != want {
				fail(fmt.Errorf("sum over TCP = %g, want %g", rets[0].D, want))
			}
		}
		s := cluster.Counters.Snapshot()
		fmt.Printf("%-22s %d RMIs over TCP  wire=%6d B  serCalls=%4d  cycleLookups=%4d  reused=%4d\n",
			level, *sends, s.WireBytes, s.SerializerCalls, s.CycleLookups, s.ReusedObjs)
		cluster.Close()
	}
}

func fail(err error) {
	fmt.Fprintf(os.Stderr, "rminode: %v\n", err)
	os.Exit(1)
}
