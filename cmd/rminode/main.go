// Command rminode demonstrates the distributed transport: it runs an
// n-node cluster whose nodes talk over real TCP sockets (loopback)
// instead of the in-process channel network, performs a round of
// remote calls at every optimization level, and prints the observed
// statistics. It is the deployment-shaped counterpart of the
// benchmarks: everything crosses a real network stack.
//
// With -drop/-dup/-reorder/-corrupt the TCP network is wrapped in the
// seeded fault injector and calls run under a deadline/retry policy —
// a live demonstration that recovery works over a real network stack,
// not just the in-process transport.
//
// Usage:
//
//	rminode [-nodes 2] [-sends 50]
//	rminode -drop 0.1 -dup 0.05        # chaos over real TCP
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"cormi/internal/apps/appkit"
	"cormi/internal/core"
	"cormi/internal/model"
	"cormi/internal/rmi"
	"cormi/internal/transport"
)

const src = `
class Vector { double[] data; }
remote class Store {
	double put(Vector v) { return 0.0; }
}
class Main {
	static void main() {
		Store s = new Store();
		Vector v = new Vector();
		v.data = new double[256];
		double sum = s.put(v);
		double use = sum + 1.0;
	}
}
`

func main() {
	nodes := flag.Int("nodes", 2, "cluster size")
	sends := flag.Int("sends", 50, "RMIs per optimization level")
	drop := flag.Float64("drop", 0, "packet drop probability")
	dup := flag.Float64("dup", 0, "packet duplication probability")
	reorder := flag.Float64("reorder", 0, "packet reordering probability")
	corrupt := flag.Float64("corrupt", 0, "payload corruption probability")
	seed := flag.Int64("seed", 42, "fault injection seed")
	flag.Parse()

	faultCfg := transport.FaultConfig{
		Seed: *seed,
		FaultRates: transport.FaultRates{
			Drop: *drop, Dup: *dup, Reorder: *reorder, Corrupt: *corrupt,
		},
	}

	for _, level := range rmi.AllLevels {
		nw, err := transport.NewTCPNetworkLocal(*nodes)
		if err != nil {
			fail(err)
		}
		opts := []rmi.Option{rmi.WithNetwork(nw)}
		if faultCfg.Enabled() {
			opts = append(opts,
				rmi.WithFaults(faultCfg),
				rmi.WithCallPolicy(rmi.CallPolicy{
					Timeout: 200 * time.Millisecond, Retries: 12,
					Backoff: 2 * time.Millisecond, MaxBackoff: 20 * time.Millisecond,
				}))
		}
		cluster := rmi.New(*nodes, opts...)
		res, err := core.CompileInto(src, cluster.Registry)
		if err != nil {
			fail(err)
		}
		si := res.SiteByName("Main.main.1")
		if si == nil {
			fail(fmt.Errorf("call site missing"))
		}
		cs, err := appkit.Register(cluster, level, si)
		if err != nil {
			fail(err)
		}

		vecClass, _ := res.ModelClass("Vector")
		svc := &rmi.Service{Name: "Store", Methods: map[string]rmi.Method{
			"put": func(call *rmi.Call, args []model.Value) []model.Value {
				var s float64
				for _, x := range args[0].O.Fields[0].O.Doubles {
					s += x
				}
				return []model.Value{model.Double(s)}
			},
		}}
		ref := cluster.Node(*nodes - 1).Export(svc)

		vec := model.New(vecClass)
		arr := model.NewArray(cluster.Registry.DoubleArray(), 256)
		for i := range arr.Doubles {
			arr.Doubles[i] = float64(i)
		}
		vec.Fields[0] = model.Ref(arr)

		want := float64(255 * 256 / 2)
		for i := 0; i < *sends; i++ {
			rets, err := cs.Invoke(cluster.Node(0), ref, []model.Value{model.Ref(vec)})
			if err != nil {
				fail(err)
			}
			if rets[0].D != want {
				fail(fmt.Errorf("sum over TCP = %g, want %g", rets[0].D, want))
			}
		}
		s := cluster.Counters.Snapshot()
		fmt.Printf("%-22s %d RMIs over TCP  wire=%6d B  serCalls=%4d  cycleLookups=%4d  reused=%4d",
			level, *sends, s.WireBytes, s.SerializerCalls, s.CycleLookups, s.ReusedObjs)
		if faultCfg.Enabled() {
			fmt.Printf("  retries=%d dup-suppr=%d corrupt-drop=%d", s.Retries, s.DupSuppressed, s.CorruptDropped)
		}
		fmt.Println()
		cluster.Close()
	}
}

func fail(err error) {
	fmt.Fprintf(os.Stderr, "rminode: %v\n", err)
	os.Exit(1)
}
