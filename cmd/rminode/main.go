// Command rminode demonstrates the distributed transport: it runs an
// n-node cluster whose nodes talk over real TCP sockets (loopback)
// instead of the in-process channel network, performs a round of
// remote calls at every optimization level, and prints the observed
// statistics. It is the deployment-shaped counterpart of the
// benchmarks: everything crosses a real network stack.
//
// With -drop/-dup/-reorder/-corrupt the TCP network is wrapped in the
// seeded fault injector and calls run under a deadline/retry policy —
// a live demonstration that recovery works over a real network stack,
// not just the in-process transport.
//
// With -obs ADDR the node serves live introspection endpoints while it
// runs: Prometheus metrics on /metrics, the flight recorder as
// Perfetto-loadable Chrome-trace JSON on /trace, phase quantiles on
// /trace/stats, Go profiling on /debug/pprof/, and a liveness probe on
// /healthz. -obs-smoke probes those endpoints from inside the process
// after the run and exits nonzero if any is broken (the `make
// obs-smoke` gate, no curl needed).
//
// Usage:
//
//	rminode [-nodes 2] [-sends 50]
//	rminode -drop 0.1 -dup 0.05        # chaos over real TCP
//	rminode -obs :9090                 # live /metrics, /trace, /debug/pprof
//	rminode -obs-smoke                 # self-check the obs endpoints
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"sync"
	"time"

	"cormi/internal/apps/appkit"
	"cormi/internal/core"
	"cormi/internal/model"
	"cormi/internal/obs"
	"cormi/internal/rmi"
	"cormi/internal/stats"
	"cormi/internal/trace"
	"cormi/internal/transport"
)

const src = `
class Vector { double[] data; }
remote class Store {
	double put(Vector v) { return 0.0; }
}
class Main {
	static void main() {
		Store s = new Store();
		Vector v = new Vector();
		v.data = new double[256];
		double sum = s.put(v);
		double use = sum + 1.0;
	}
}
`

func main() {
	nodes := flag.Int("nodes", 2, "cluster size")
	sends := flag.Int("sends", 50, "RMIs per optimization level")
	drop := flag.Float64("drop", 0, "packet drop probability")
	dup := flag.Float64("dup", 0, "packet duplication probability")
	reorder := flag.Float64("reorder", 0, "packet reordering probability")
	corrupt := flag.Float64("corrupt", 0, "payload corruption probability")
	seed := flag.Int64("seed", 42, "fault injection seed")
	obsAddr := flag.String("obs", "", "serve observability endpoints (/metrics, /trace, /debug/pprof, /healthz) on this address, e.g. :9090")
	obsSmoke := flag.Bool("obs-smoke", false, "probe the -obs endpoints after the run and exit nonzero on failure")
	obsName := flag.String("obs-name", "rminode", "node name in /snapshot and /cluster documents")
	obsPeers := flag.String("obs-peers", "", "comma-separated peer obs addresses that /cluster merges by default")
	sample := flag.Int("sample", 64, "with -obs: head-sample every Nth root call into the distributed trace store (/traces; 0 disables)")
	flag.Parse()

	faultCfg := transport.FaultConfig{
		Seed: *seed,
		FaultRates: transport.FaultRates{
			Drop: *drop, Dup: *dup, Reorder: *reorder, Corrupt: *corrupt,
		},
	}

	// The tracer and the HTTP surface outlive the per-level clusters:
	// one flight recorder accumulates spans across the whole run, and
	// /callsites aggregates the per-site counters across clusters
	// (every level registers the same textual call site, so the
	// snapshots sharing a site id are summed).
	var tracer *trace.Tracer
	var server *obs.Server
	var csMu sync.Mutex
	var clusters []*rmi.Cluster
	siteStats := func() []stats.SiteStat {
		csMu.Lock()
		defer csMu.Unlock()
		idx := map[string]int{}
		var out []stats.SiteStat
		for _, c := range clusters {
			for _, s := range c.SiteStats() {
				if i, ok := idx[s.Site]; ok {
					out[i] = out[i].Add(s)
				} else {
					idx[s.Site] = len(out)
					out = append(out, s)
				}
			}
		}
		return out
	}
	// /links aggregates across the per-level clusters like /callsites:
	// every cluster negotiates the same (from, to) links, so rows
	// sharing a direction merge — fallbacks sum, the negotiated version
	// and demotion set (identical across clusters by construction) come
	// from the latest row. Merging keeps the labeled /metrics series
	// unique per direction.
	linkStats := func() []stats.LinkStat {
		csMu.Lock()
		defer csMu.Unlock()
		idx := map[[2]int]int{}
		var out []stats.LinkStat
		for _, c := range clusters {
			for _, l := range c.LinkStats() {
				key := [2]int{l.From, l.To}
				if i, ok := idx[key]; ok {
					l.Fallbacks += out[i].Fallbacks
					out[i] = l
				} else {
					idx[key] = len(out)
					out = append(out, l)
				}
			}
		}
		return out
	}
	// Backlog levels aggregate across the per-level clusters the same
	// way /callsites does: field-wise sums of each cluster's snapshot.
	overload := func() stats.OverloadStats {
		csMu.Lock()
		defer csMu.Unlock()
		var o stats.OverloadStats
		for _, c := range clusters {
			o = o.Add(c.Overload())
		}
		return o
	}
	if *obsSmoke && *obsAddr == "" {
		*obsAddr = "127.0.0.1:0"
	}
	if *obsAddr != "" {
		tracer = trace.New(trace.Config{RingSize: 4096, SampleEvery: int64(*sample)})
		var err error
		var peers []string
		for _, p := range strings.Split(*obsPeers, ",") {
			if p = strings.TrimSpace(p); p != "" {
				peers = append(peers, p)
			}
		}
		server, err = obs.Serve(*obsAddr, obs.Options{
			Tracer: tracer, SiteStats: siteStats, Links: linkStats,
			NodeName: *obsName, Peers: peers, Overload: overload,
		})
		if err != nil {
			fail(err)
		}
		defer server.Close()
		fmt.Printf("observability endpoints on http://%s (/metrics /callsites /trace /trace/stats /slow /snapshot /cluster /traces /debug/pprof /buildinfo /healthz)\n", server.Addr())
	}

	for _, level := range rmi.AllLevels {
		nw, err := transport.NewTCPNetworkLocal(*nodes)
		if err != nil {
			fail(err)
		}
		opts := []rmi.Option{rmi.WithNetwork(nw)}
		if tracer != nil {
			opts = append(opts, rmi.WithTracer(tracer))
		}
		if faultCfg.Enabled() {
			opts = append(opts,
				rmi.WithFaults(faultCfg),
				rmi.WithCallPolicy(rmi.CallPolicy{
					Timeout: 200 * time.Millisecond, Retries: 12,
					Backoff: 2 * time.Millisecond, MaxBackoff: 20 * time.Millisecond,
				}))
		}
		cluster := rmi.New(*nodes, opts...)
		csMu.Lock()
		clusters = append(clusters, cluster)
		csMu.Unlock()
		res, err := core.CompileInto(src, cluster.Registry)
		if err != nil {
			fail(err)
		}
		si := res.SiteByName("Main.main.1")
		if si == nil {
			fail(fmt.Errorf("call site missing"))
		}
		cs, err := appkit.Register(cluster, level, si)
		if err != nil {
			fail(err)
		}

		vecClass, _ := res.ModelClass("Vector")
		svc := &rmi.Service{Name: "Store", Methods: map[string]rmi.Method{
			"put": func(call *rmi.Call, args []model.Value) []model.Value {
				var s float64
				for _, x := range args[0].O.Fields[0].O.Doubles {
					s += x
				}
				return []model.Value{model.Double(s)}
			},
		}}
		ref := cluster.Node(*nodes - 1).Export(svc)

		vec := model.New(vecClass)
		arr := model.NewArray(cluster.Registry.DoubleArray(), 256)
		for i := range arr.Doubles {
			arr.Doubles[i] = float64(i)
		}
		vec.Fields[0] = model.Ref(arr)

		want := float64(255 * 256 / 2)
		for i := 0; i < *sends; i++ {
			rets, err := cs.Invoke(cluster.Node(0), ref, []model.Value{model.Ref(vec)})
			if err != nil {
				fail(err)
			}
			if rets[0].D != want {
				fail(fmt.Errorf("sum over TCP = %g, want %g", rets[0].D, want))
			}
		}
		s := cluster.Counters.Snapshot()
		fmt.Printf("%-22s %d RMIs over TCP  wire=%6d B  serCalls=%4d  cycleLookups=%4d  reused=%4d",
			level, *sends, s.WireBytes, s.SerializerCalls, s.CycleLookups, s.ReusedObjs)
		if faultCfg.Enabled() {
			fmt.Printf("  retries=%d dup-suppr=%d corrupt-drop=%d", s.Retries, s.DupSuppressed, s.CorruptDropped)
		}
		fmt.Println()
		cluster.Close()
	}

	if *obsSmoke {
		if err := smokeObs("http://"+server.Addr(), int64(*sends)); err != nil {
			fail(fmt.Errorf("obs smoke: %w", err))
		}
		fmt.Println("obs smoke OK: /healthz, /metrics, /callsites, /links, /buildinfo, /trace, /snapshot, /cluster, /slow and /traces all served valid payloads")
	}
}

// smokeObs validates the observability surface end to end: liveness,
// Prometheus exposition with the expected series, live per-call-site
// counters on /callsites, build provenance on /buildinfo, and a /trace
// payload that parses as a Chrome trace with events from the run.
func smokeObs(base string, sends int64) error {
	get := func(path string) (string, error) {
		resp, err := http.Get(base + path)
		if err != nil {
			return "", err
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			return "", err
		}
		if resp.StatusCode != http.StatusOK {
			return "", fmt.Errorf("GET %s: status %d", path, resp.StatusCode)
		}
		return string(body), nil
	}

	body, err := get("/healthz")
	if err != nil {
		return err
	}
	if !strings.Contains(body, "ok") {
		return fmt.Errorf("/healthz said %q", body)
	}

	body, err = get("/metrics")
	if err != nil {
		return err
	}
	for _, series := range []string{
		"cormi_trace_spans_started_total",
		"cormi_trace_exemplars_total",
		"cormi_wire_buf_outstanding",
		"cormi_serial_readctx_outstanding",
		"cormi_phase_latency_ns_bucket",
		"cormi_pending_calls",
		"cormi_promise_table",
		"cormi_promise_parked",
		"cormi_batch_queue_depth",
		"cormi_trace_store_retained",
		`cormi_site_calls{site="Main.main.1"}`,
		`cormi_site_wire_bytes{site="Main.main.1"}`,
		`cormi_link_negotiated_version{from="0",to="1"}`,
		`cormi_blame_wins_total{site="Main.main.1"`,
	} {
		if !strings.Contains(body, series) {
			return fmt.Errorf("/metrics missing series %s", series)
		}
	}

	body, err = get("/callsites")
	if err != nil {
		return err
	}
	var sites []stats.SiteStat
	if err := json.Unmarshal([]byte(body), &sites); err != nil {
		return fmt.Errorf("/callsites is not valid JSON: %w", err)
	}
	if len(sites) == 0 {
		return fmt.Errorf("/callsites empty after the run")
	}
	var main *stats.SiteStat
	for i := range sites {
		if sites[i].Site == "Main.main.1" {
			main = &sites[i]
		}
	}
	if main == nil {
		return fmt.Errorf("/callsites missing Main.main.1: %s", body)
	}
	// All five optimization levels drove the same textual site.
	if want := sends * int64(len(rmi.AllLevels)); main.Calls != want {
		return fmt.Errorf("/callsites Main.main.1 calls = %d, want %d", main.Calls, want)
	}
	if main.WireBytes <= 0 {
		return fmt.Errorf("/callsites Main.main.1 wire_bytes = %d, want > 0", main.WireBytes)
	}

	body, err = get("/links")
	if err != nil {
		return err
	}
	var links []stats.LinkStat
	if err := json.Unmarshal([]byte(body), &links); err != nil {
		return fmt.Errorf("/links is not valid JSON: %w", err)
	}
	if len(links) == 0 {
		return fmt.Errorf("/links empty after the run")
	}
	for _, l := range links {
		if l.Version < 1 {
			return fmt.Errorf("/links %d->%d negotiated version %d", l.From, l.To, l.Version)
		}
	}

	body, err = get("/buildinfo")
	if err != nil {
		return err
	}
	var bi struct {
		GoVersion string `json:"go_version"`
	}
	if err := json.Unmarshal([]byte(body), &bi); err != nil {
		return fmt.Errorf("/buildinfo is not valid JSON: %w", err)
	}
	if bi.GoVersion == "" {
		return fmt.Errorf("/buildinfo missing go_version: %s", body)
	}

	body, err = get("/trace")
	if err != nil {
		return err
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal([]byte(body), &doc); err != nil {
		return fmt.Errorf("/trace is not valid Chrome-trace JSON: %w", err)
	}
	if len(doc.TraceEvents) == 0 {
		return fmt.Errorf("/trace has no events after %d traced levels", len(rmi.AllLevels))
	}

	body, err = get("/snapshot")
	if err != nil {
		return err
	}
	var snap obs.NodeSnapshot
	if err := json.Unmarshal([]byte(body), &snap); err != nil {
		return fmt.Errorf("/snapshot is not valid JSON: %w", err)
	}
	if snap.Version != obs.SnapshotVersion {
		return fmt.Errorf("/snapshot version %d, want %d", snap.Version, obs.SnapshotVersion)
	}
	var attributed bool
	for _, sa := range snap.Sites {
		if sa.Site == "Main.main.1" && sa.Calls > 0 && len(sa.Blame) > 0 {
			attributed = true
		}
	}
	if !attributed {
		return fmt.Errorf("/snapshot missing Main.main.1 attribution: %s", body)
	}

	body, err = get("/cluster")
	if err != nil {
		return err
	}
	var cv obs.ClusterView
	if err := json.Unmarshal([]byte(body), &cv); err != nil {
		return fmt.Errorf("/cluster is not valid JSON: %w", err)
	}
	if cv.Version != obs.SnapshotVersion || len(cv.Nodes) == 0 {
		return fmt.Errorf("/cluster document malformed: %s", body)
	}
	var clustered bool
	for _, row := range cv.Sites {
		if row.Site == "Main.main.1" && row.Calls == uint64(sends)*int64Len(rmi.AllLevels) &&
			row.P50NS > 0 && row.TopBlame != "" {
			clustered = true
		}
	}
	if !clustered {
		return fmt.Errorf("/cluster missing a merged Main.main.1 row with quantiles and blame: %s", body)
	}

	body, err = get("/slow")
	if err != nil {
		return err
	}
	var exs []trace.Exemplar
	if err := json.Unmarshal([]byte(body), &exs); err != nil {
		return fmt.Errorf("/slow is not valid JSON: %w", err)
	}

	// Distributed tracing: head sampling is armed by default, so the
	// run must have retained at least one trace, and its merged tree
	// (single node here, but through the same pull path rmitop uses)
	// must reconstruct with spans and a root.
	body, err = get("/traces")
	if err != nil {
		return err
	}
	var tl obs.TraceList
	if err := json.Unmarshal([]byte(body), &tl); err != nil {
		return fmt.Errorf("/traces is not valid JSON: %w", err)
	}
	if tl.Version != obs.TracesVersion {
		return fmt.Errorf("/traces version %d, want %d", tl.Version, obs.TracesVersion)
	}
	if len(tl.Traces) == 0 {
		return fmt.Errorf("/traces empty with sampling armed")
	}
	body, err = get(fmt.Sprintf("/traces/%d?merge=1", tl.Traces[0].TraceID))
	if err != nil {
		return err
	}
	var tv obs.TraceView
	if err := json.Unmarshal([]byte(body), &tv); err != nil {
		return fmt.Errorf("/traces/<id> is not valid JSON: %w", err)
	}
	if tv.Version != obs.TracesVersion || tv.Tree == nil {
		return fmt.Errorf("/traces/<id> document malformed: %s", body)
	}
	if len(tv.Tree.Spans) == 0 || len(tv.Tree.Roots) == 0 {
		return fmt.Errorf("/traces/<id> tree empty for a retained trace: %s", body)
	}
	return nil
}

// int64Len is len() as uint64 for call-count arithmetic.
func int64Len[T any](s []T) uint64 { return uint64(len(s)) }

func fail(err error) {
	fmt.Fprintf(os.Stderr, "rminode: %v\n", err)
	os.Exit(1)
}
