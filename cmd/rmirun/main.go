// Command rmirun compiles a MiniJP program and executes its main
// method on an RMI cluster: the full Manta-JavaParty pipeline in one
// step. Remote class instances are placed round robin over the nodes
// and every remote call runs through the serializers the compiler
// generated for its call site.
//
// Usage:
//
//	rmirun [-nodes 2] [-level "site + reuse + cycle"] [-main Main] file.jp
//	rmirun -example     # run a built-in demo program
package main

import (
	"flag"
	"fmt"
	"os"

	"cormi/internal/core"
	"cormi/internal/interp"
	"cormi/internal/rmi"
	"cormi/internal/simtime"
)

const exampleSrc = `
// A distributed dot-product: two remote workers each own half of the
// vectors and compute partial sums that main combines.
remote class Worker {
	double[] a;
	double[] b;
	void load(double[] x, double[] y) {
		this.a = x;
		this.b = y;
	}
	double dot() {
		double s = 0.0;
		for (int i = 0; i < this.a.length; i = i + 1) {
			s = s + this.a[i] * this.b[i];
		}
		return s;
	}
}
class Main {
	static double[] ramp(int n, int off) {
		double[] v = new double[n];
		for (int i = 0; i < n; i = i + 1) {
			v[i] = i + off;
		}
		return v;
	}
	static double main() {
		Worker w0 = new Worker();
		Worker w1 = new Worker();
		w0.load(Main.ramp(100, 0), Main.ramp(100, 1));
		w1.load(Main.ramp(100, 100), Main.ramp(100, 101));
		return w0.dot() + w1.dot();
	}
}
`

func main() {
	nodes := flag.Int("nodes", 2, "cluster size")
	levelName := flag.String("level", "site + reuse + cycle", "optimization level")
	mainClass := flag.String("main", "Main", "class whose static main() runs")
	example := flag.Bool("example", false, "run the built-in demo")
	flag.Parse()

	var level rmi.OptLevel
	found := false
	for _, l := range rmi.AllLevels {
		if l.String() == *levelName {
			level = l
			found = true
		}
	}
	if !found {
		fmt.Fprintf(os.Stderr, "rmirun: unknown level %q (try one of: class, site, site + cycle, site + reuse, site + reuse + cycle)\n", *levelName)
		os.Exit(2)
	}

	src := exampleSrc
	switch {
	case *example:
	case flag.NArg() == 1:
		b, err := os.ReadFile(flag.Arg(0))
		if err != nil {
			fail(err)
		}
		src = string(b)
	default:
		fmt.Fprintln(os.Stderr, "rmirun: need a source file or -example")
		os.Exit(2)
	}

	cluster := rmi.New(*nodes)
	defer cluster.Close()
	res, err := core.CompileInto(src, cluster.Registry)
	if err != nil {
		fail(err)
	}
	machine, err := interp.New(res, cluster, level)
	if err != nil {
		fail(err)
	}
	v, err := machine.RunMain(*mainClass)
	if err != nil {
		fail(err)
	}
	fmt.Printf("%s.main() = %v\n", *mainClass, v)
	s := cluster.Counters.Snapshot()
	fmt.Printf("level: %s   rpcs: %d local / %d remote   virtual time: %.3f ms\n",
		level, s.LocalRPCs, s.RemoteRPCs, simtime.Seconds(cluster.MaxTime())*1e3)
	fmt.Printf("serializer calls: %d   cycle lookups: %d   reused objects: %d   wire: %d B\n",
		s.SerializerCalls, s.CycleLookups, s.ReusedObjs, s.WireBytes)
}

func fail(err error) {
	fmt.Fprintf(os.Stderr, "rmirun: %v\n", err)
	os.Exit(1)
}
