// Command rmitop is a live terminal view of cluster-wide tail-latency
// attribution: it polls one obs server's /cluster endpoint (which
// merges every peer's /snapshot) and renders a top-style table of
// sites × {call rate, p50, p99, dominant blame phase, exemplars}.
//
// Usage:
//
//	rmitop -cluster 127.0.0.1:9090                  # poll every 2s
//	rmitop -cluster 127.0.0.1:9090 -peers a:1,b:2   # override the
//	                       # aggregator's configured peer set
//	rmitop -cluster 127.0.0.1:9090 -once            # one frame, exit
//	                       # (scripting / smoke tests)
//
// The rate column derives from call-count deltas between polls, so the
// first frame shows "-". Slow-call exemplars are counted per site; pull
// the span trees themselves from the owning node's /slow endpoint.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"os"
	"strings"
	"time"

	"cormi/internal/obs"
)

func main() { os.Exit(run(os.Args[1:], os.Stdout, os.Stderr)) }

// run is main minus the process exit, so tests can drive the CLI
// against an httptest server. Exit codes: 0 clean, 1 poll failure (in
// -once / -frames mode), 2 usage.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("rmitop", flag.ContinueOnError)
	fs.SetOutput(stderr)
	cluster := fs.String("cluster", "127.0.0.1:9090", "aggregating node's obs address (host:port or URL)")
	peers := fs.String("peers", "", "comma-separated peer obs addresses (overrides the node's configured set)")
	interval := fs.Duration("interval", 2*time.Second, "poll interval")
	once := fs.Bool("once", false, "render one frame and exit")
	frames := fs.Int("frames", 0, "frames to render before exiting (0 = until interrupted)")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	target := *cluster
	if !strings.Contains(target, "://") {
		target = "http://" + target
	}
	target = strings.TrimRight(target, "/") + "/cluster"
	if *peers != "" {
		target += "?peers=" + url.QueryEscape(*peers)
	}

	limit := *frames
	if *once {
		limit = 1
	}
	client := &http.Client{Timeout: 5 * time.Second}
	prevCalls := map[string]uint64{}
	var prevAt time.Time
	for i := 0; limit == 0 || i < limit; i++ {
		if i > 0 {
			time.Sleep(*interval)
		}
		cv, err := fetchView(client, target)
		if err != nil {
			fmt.Fprintf(stderr, "rmitop: %v\n", err)
			if limit > 0 {
				return 1
			}
			continue
		}
		if limit == 0 {
			// Interactive top-style refresh: clear and home.
			fmt.Fprint(stdout, "\x1b[2J\x1b[H")
		}
		now := time.Now()
		render(stdout, cv, prevCalls, now.Sub(prevAt), !prevAt.IsZero())
		next := make(map[string]uint64, len(cv.Sites))
		for _, s := range cv.Sites {
			next[s.Site] = s.Calls
		}
		prevCalls, prevAt = next, now
	}
	return 0
}

// fetchView pulls and decodes one /cluster document.
func fetchView(client *http.Client, target string) (*obs.ClusterView, error) {
	resp, err := client.Get(target)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("GET %s: status %d", target, resp.StatusCode)
	}
	var cv obs.ClusterView
	if err := json.NewDecoder(resp.Body).Decode(&cv); err != nil {
		return nil, fmt.Errorf("decode cluster view: %w", err)
	}
	if cv.Version != obs.SnapshotVersion {
		return nil, fmt.Errorf("cluster view version %d, want %d", cv.Version, obs.SnapshotVersion)
	}
	return &cv, nil
}

// render writes one frame: the node roster, any peer errors, and the
// per-site attribution table.
func render(w io.Writer, cv *obs.ClusterView, prevCalls map[string]uint64, dt time.Duration, haveRate bool) {
	fmt.Fprintf(w, "rmitop — %d node(s): %s\n", len(cv.Nodes), strings.Join(cv.Nodes, ", "))
	for _, e := range cv.Errors {
		fmt.Fprintf(w, "  peer error: %s\n", e)
	}
	fmt.Fprintf(w, "%-28s %10s %9s %10s %10s %-14s %6s %9s\n",
		"site", "calls", "rate/s", "p50", "p99", "top_blame", "share", "exemplars")
	for _, s := range cv.Sites {
		rate := "-"
		if haveRate && dt > 0 {
			if prev, ok := prevCalls[s.Site]; ok {
				rate = fmt.Sprintf("%.1f", float64(s.Calls-prev)/dt.Seconds())
			}
		}
		blame := s.TopBlame
		if blame == "" {
			blame = "-"
		}
		fmt.Fprintf(w, "%-28s %10d %9s %10s %10s %-14s %5.0f%% %9d\n",
			s.Site, s.Calls, rate, fmtNS(s.P50NS), fmtNS(s.P99NS),
			blame, 100*s.TopBlameShare, s.Exemplars)
	}
}

// fmtNS renders nanoseconds at human scale.
func fmtNS(ns int64) string {
	switch {
	case ns <= 0:
		return "-"
	case ns < 1_000:
		return fmt.Sprintf("%dns", ns)
	case ns < 1_000_000:
		return fmt.Sprintf("%.1fµs", float64(ns)/1e3)
	case ns < 1_000_000_000:
		return fmt.Sprintf("%.2fms", float64(ns)/1e6)
	default:
		return fmt.Sprintf("%.2fs", float64(ns)/1e9)
	}
}
