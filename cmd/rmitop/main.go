// Command rmitop is a live terminal view of cluster-wide tail-latency
// attribution: it polls one obs server's /cluster endpoint (which
// merges every peer's /snapshot) and renders a top-style table of
// sites × {call rate, p50, p99, dominant blame phase, exemplars}.
//
// Usage:
//
//	rmitop -cluster 127.0.0.1:9090                  # poll every 2s
//	rmitop -cluster 127.0.0.1:9090 -peers a:1,b:2   # override the
//	                       # aggregator's configured peer set
//	rmitop -cluster 127.0.0.1:9090 -once            # one frame, exit
//	                       # (scripting / smoke tests)
//
// The rate column derives from call-count deltas between polls, so the
// first frame shows "-". Slow-call exemplars are counted per site; two
// drill-down modes follow one into its distributed trace:
//
//	rmitop -cluster 127.0.0.1:9090 -slow Attrib.echo.1   # worst slow
//	                       # exemplars for the site, then the full
//	                       # cross-node call tree of the worst sampled one
//	rmitop -cluster 127.0.0.1:9090 -trace 0x1f3a…        # one trace's
//	                       # reconstructed tree (/traces/<id>?peers=…)
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"os"
	"sort"
	"strings"
	"time"

	"cormi/internal/obs"
	"cormi/internal/trace"
)

func main() { os.Exit(run(os.Args[1:], os.Stdout, os.Stderr)) }

// run is main minus the process exit, so tests can drive the CLI
// against an httptest server. Exit codes: 0 clean, 1 poll failure (in
// -once / -frames mode), 2 usage.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("rmitop", flag.ContinueOnError)
	fs.SetOutput(stderr)
	cluster := fs.String("cluster", "127.0.0.1:9090", "aggregating node's obs address (host:port or URL)")
	peers := fs.String("peers", "", "comma-separated peer obs addresses (overrides the node's configured set)")
	interval := fs.Duration("interval", 2*time.Second, "poll interval")
	once := fs.Bool("once", false, "render one frame and exit")
	frames := fs.Int("frames", 0, "frames to render before exiting (0 = until interrupted)")
	traceID := fs.String("trace", "", "drill into one trace: render its reconstructed cross-node call tree and exit")
	slowSite := fs.String("slow", "", "drill into a site: list its worst slow-call exemplars, then the trace tree of the worst sampled one")
	if err := fs.Parse(args); err != nil {
		return 2
	}

	base := *cluster
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}
	base = strings.TrimRight(base, "/")

	if *traceID != "" || *slowSite != "" {
		client := &http.Client{Timeout: 5 * time.Second}
		return drill(client, base, *peers, *slowSite, *traceID, stdout, stderr)
	}

	target := base + "/cluster"
	if *peers != "" {
		target += "?peers=" + url.QueryEscape(*peers)
	}

	limit := *frames
	if *once {
		limit = 1
	}
	client := &http.Client{Timeout: 5 * time.Second}
	prevCalls := map[string]uint64{}
	var prevAt time.Time
	for i := 0; limit == 0 || i < limit; i++ {
		if i > 0 {
			time.Sleep(*interval)
		}
		cv, err := fetchView(client, target)
		if err != nil {
			fmt.Fprintf(stderr, "rmitop: %v\n", err)
			if limit > 0 {
				return 1
			}
			continue
		}
		if limit == 0 {
			// Interactive top-style refresh: clear and home.
			fmt.Fprint(stdout, "\x1b[2J\x1b[H")
		}
		now := time.Now()
		render(stdout, cv, prevCalls, now.Sub(prevAt), !prevAt.IsZero())
		next := make(map[string]uint64, len(cv.Sites))
		for _, s := range cv.Sites {
			next[s.Site] = s.Calls
		}
		prevCalls, prevAt = next, now
	}
	return 0
}

// fetchView pulls and decodes one /cluster document.
func fetchView(client *http.Client, target string) (*obs.ClusterView, error) {
	resp, err := client.Get(target)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("GET %s: status %d", target, resp.StatusCode)
	}
	var cv obs.ClusterView
	if err := json.NewDecoder(resp.Body).Decode(&cv); err != nil {
		return nil, fmt.Errorf("decode cluster view: %w", err)
	}
	if cv.Version != obs.SnapshotVersion {
		return nil, fmt.Errorf("cluster view version %d, want %d", cv.Version, obs.SnapshotVersion)
	}
	return &cv, nil
}

// render writes one frame: the node roster, any peer errors, and the
// per-site attribution table.
func render(w io.Writer, cv *obs.ClusterView, prevCalls map[string]uint64, dt time.Duration, haveRate bool) {
	fmt.Fprintf(w, "rmitop — %d node(s): %s\n", len(cv.Nodes), strings.Join(cv.Nodes, ", "))
	for _, e := range cv.Errors {
		fmt.Fprintf(w, "  peer error: %s\n", e)
	}
	fmt.Fprintf(w, "%-28s %10s %9s %10s %10s %-14s %6s %9s\n",
		"site", "calls", "rate/s", "p50", "p99", "top_blame", "share", "exemplars")
	for _, s := range cv.Sites {
		rate := "-"
		if haveRate && dt > 0 {
			if prev, ok := prevCalls[s.Site]; ok {
				rate = fmt.Sprintf("%.1f", float64(s.Calls-prev)/dt.Seconds())
			}
		}
		blame := s.TopBlame
		if blame == "" {
			blame = "-"
		}
		fmt.Fprintf(w, "%-28s %10d %9s %10s %10s %-14s %5.0f%% %9d\n",
			s.Site, s.Calls, rate, fmtNS(s.P50NS), fmtNS(s.P99NS),
			blame, 100*s.TopBlameShare, s.Exemplars)
	}
}

// drill renders the one-shot drill-down views: the slow-exemplar list
// for a site (and the tree of its worst sampled exemplar), or the tree
// of an explicitly named trace.
func drill(client *http.Client, base, peers, slowSite, traceID string, stdout, stderr io.Writer) int {
	id := traceID
	if slowSite != "" {
		exs, err := fetchSlow(client, base)
		if err != nil {
			fmt.Fprintf(stderr, "rmitop: %v\n", err)
			return 1
		}
		var rows []trace.Exemplar
		for _, ex := range exs {
			if ex.Site == slowSite {
				rows = append(rows, ex)
			}
		}
		if len(rows) == 0 {
			fmt.Fprintf(stdout, "no slow-call exemplars for %s\n", slowSite)
			return 0
		}
		sort.Slice(rows, func(i, j int) bool { return rows[i].TotalNS > rows[j].TotalNS })
		fmt.Fprintf(stdout, "%-28s %10s %10s %-14s %6s %18s\n",
			"site", "total", "threshold", "blame", "retry", "trace_id")
		for _, ex := range rows {
			tid := "-"
			if ex.TraceID != 0 {
				tid = fmt.Sprintf("0x%x", ex.TraceID)
			}
			fmt.Fprintf(stdout, "%-28s %10s %10s %-14s %6d %18s\n",
				ex.Site, fmtNS(ex.TotalNS), fmtNS(ex.ThresholdNS), ex.Blame, ex.Retries, tid)
		}
		// Drill into the worst exemplar that was head-sampled.
		for _, ex := range rows {
			if ex.TraceID != 0 {
				id = fmt.Sprintf("%d", ex.TraceID)
				break
			}
		}
		if id == "" {
			fmt.Fprintf(stdout, "\nno exemplar was head-sampled; no trace to drill into\n")
			return 0
		}
		fmt.Fprintln(stdout)
	}
	target := base + "/traces/" + url.PathEscape(id) + "?merge=1"
	if peers != "" {
		target += "&peers=" + url.QueryEscape(peers)
	}
	view, err := fetchTraceView(client, target)
	if err != nil {
		fmt.Fprintf(stderr, "rmitop: %v\n", err)
		return 1
	}
	renderTree(stdout, view)
	return 0
}

// fetchSlow pulls the aggregator's /slow exemplars.
func fetchSlow(client *http.Client, base string) ([]trace.Exemplar, error) {
	resp, err := client.Get(base + "/slow")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("GET /slow: status %d", resp.StatusCode)
	}
	var exs []trace.Exemplar
	if err := json.NewDecoder(resp.Body).Decode(&exs); err != nil {
		return nil, fmt.Errorf("decode exemplars: %w", err)
	}
	return exs, nil
}

// fetchTraceView pulls and decodes one merged /traces/<id> document.
func fetchTraceView(client *http.Client, target string) (*obs.TraceView, error) {
	resp, err := client.Get(target)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("GET %s: status %d", target, resp.StatusCode)
	}
	var view obs.TraceView
	if err := json.NewDecoder(resp.Body).Decode(&view); err != nil {
		return nil, fmt.Errorf("decode trace view: %w", err)
	}
	if view.Version != obs.TracesVersion {
		return nil, fmt.Errorf("trace view version %d, want %d", view.Version, obs.TracesVersion)
	}
	return &view, nil
}

// renderTree writes one reconstructed trace as an indented call tree
// with the per-hop breakdown and the critical-path summary.
func renderTree(w io.Writer, view *obs.TraceView) {
	t := view.Tree
	if t == nil || len(t.Spans) == 0 {
		fmt.Fprintln(w, "trace not retained by any reachable node")
		return
	}
	fmt.Fprintf(w, "trace 0x%x — %d span(s) across %s\n",
		t.TraceID, len(t.Spans), strings.Join(view.Nodes, ", "))
	for _, e := range view.Errors {
		fmt.Fprintf(w, "  peer error: %s\n", e)
	}
	var walk func(i, depth int)
	walk = func(i, depth int) {
		s := &t.Spans[i]
		mark := " "
		if s.Critical {
			mark = "*"
		}
		flags := ""
		if s.Orphan {
			flags += " orphan"
		}
		if s.OneWay {
			flags += " oneway"
		}
		if s.Err != "" {
			flags += " err=" + s.Err
		}
		fmt.Fprintf(w, "%s %s%-*s %s [%s] hop=%d @%s +%s dur=%s%s\n",
			mark, strings.Repeat("  ", depth), 28-2*depth, s.Site,
			s.Method, s.Kind, s.Hop, s.Node, fmtNS(s.StartNS-t.Spans[t.Roots[0]].StartNS), fmtNS(s.DurNS), flags)
		for _, c := range s.Children {
			walk(c, depth+1)
		}
	}
	for _, r := range t.Roots {
		walk(r, 0)
	}
	fmt.Fprintf(w, "end-to-end %s, critical path %s (%d hop(s)",
		fmtNS(t.EndToEndNS), fmtNS(t.CriticalPathNS), t.MaxHop)
	if t.Orphans > 0 || t.Duplicates > 0 {
		fmt.Fprintf(w, ", %d orphan(s), %d duplicate(s)", t.Orphans, t.Duplicates)
	}
	fmt.Fprintln(w, "); * marks the critical path")
}

// fmtNS renders nanoseconds at human scale.
func fmtNS(ns int64) string {
	switch {
	case ns <= 0:
		return "-"
	case ns < 1_000:
		return fmt.Sprintf("%dns", ns)
	case ns < 1_000_000:
		return fmt.Sprintf("%.1fµs", float64(ns)/1e3)
	case ns < 1_000_000_000:
		return fmt.Sprintf("%.2fms", float64(ns)/1e6)
	default:
		return fmt.Sprintf("%.2fs", float64(ns)/1e9)
	}
}
