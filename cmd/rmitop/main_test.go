package main

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"

	"cormi/internal/obs"
	"cormi/internal/trace"
)

// fakeCluster serves a /cluster document whose call count grows by
// step per request, so the rate column has something to measure.
func fakeCluster(t *testing.T, step uint64) *httptest.Server {
	t.Helper()
	var polls atomic.Uint64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/cluster" {
			http.NotFound(w, r)
			return
		}
		n := polls.Add(1)
		cv := obs.ClusterView{
			Version: obs.SnapshotVersion,
			Nodes:   []string{"n0", "n1", "n2"},
			Sites: []obs.ClusterSite{{
				Site:          "Attrib.echo.1",
				Calls:         step * n,
				P50NS:         1_200_000,
				P95NS:         4_000_000,
				P99NS:         9_500_000,
				TopBlame:      "execute",
				TopBlameShare: 0.85,
				Blame:         []trace.BlamePhase{{Phase: "execute", Wins: 10, SelfNS: 1000}},
				Exemplars:     3,
			}},
		}
		w.Header().Set("Content-Type", "application/json")
		_ = json.NewEncoder(w).Encode(cv)
	}))
	t.Cleanup(srv.Close)
	return srv
}

func TestOnceRendersClusterTable(t *testing.T) {
	srv := fakeCluster(t, 100)
	var out, errb bytes.Buffer
	if code := run([]string{"-cluster", srv.URL, "-once"}, &out, &errb); code != 0 {
		t.Fatalf("run = %d, stderr: %s", code, errb.String())
	}
	got := out.String()
	for _, want := range []string{
		"3 node(s): n0, n1, n2",
		"Attrib.echo.1",
		"1.20ms",  // p50
		"9.50ms",  // p99
		"execute", // top blame
		"85%",
		"3", // exemplars
	} {
		if !strings.Contains(got, want) {
			t.Errorf("output missing %q:\n%s", want, got)
		}
	}
	if strings.Contains(got, "\x1b[2J") {
		t.Error("-once frame should not clear the screen")
	}
}

func TestRateFromCallDeltas(t *testing.T) {
	srv := fakeCluster(t, 500)
	var out, errb bytes.Buffer
	if code := run([]string{"-cluster", srv.URL, "-frames", "2", "-interval", "10ms"}, &out, &errb); code != 0 {
		t.Fatalf("run = %d, stderr: %s", code, errb.String())
	}
	frames := strings.Split(out.String(), "rmitop — ")
	if len(frames) != 3 { // leading empty + two frames
		t.Fatalf("expected 2 frames, got %d:\n%s", len(frames)-1, out.String())
	}
	if !strings.Contains(frames[1], " - ") {
		t.Errorf("first frame should show no rate:\n%s", frames[1])
	}
	// Second frame: 500 new calls over ~10ms >> 0/s.
	if strings.Contains(frames[2], " - ") || !strings.Contains(frames[2], ".") {
		t.Errorf("second frame missing a computed rate:\n%s", frames[2])
	}
}

func TestPollFailure(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-cluster", "127.0.0.1:1", "-once"}, &out, &errb); code != 1 {
		t.Fatalf("run against dead server = %d, want 1", code)
	}
	if errb.Len() == 0 {
		t.Error("no error reported for dead server")
	}
}

func TestVersionSkewRejected(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		_ = json.NewEncoder(w).Encode(obs.ClusterView{Version: obs.SnapshotVersion + 1})
	}))
	t.Cleanup(srv.Close)
	var out, errb bytes.Buffer
	if code := run([]string{"-cluster", srv.URL, "-once"}, &out, &errb); code != 1 {
		t.Fatalf("run against skewed version = %d, want 1", code)
	}
	if !strings.Contains(errb.String(), "version") {
		t.Errorf("skew error not reported: %s", errb.String())
	}
}

func TestFmtNS(t *testing.T) {
	for ns, want := range map[int64]string{
		0:             "-",
		512:           "512ns",
		1_500:         "1.5µs",
		2_340_000:     "2.34ms",
		3_200_000_000: "3.20s",
	} {
		if got := fmtNS(ns); got != want {
			t.Errorf("fmtNS(%d) = %q, want %q", ns, got, want)
		}
	}
}

// fakeTraceServer serves /slow exemplars and a merged /traces/<id>
// view, mimicking an obs node with the tracing endpoints.
func fakeTraceServer(t *testing.T) *httptest.Server {
	t.Helper()
	tree := trace.BuildTree(0x1234, []trace.NodeSpans{
		{Node: "n0", Spans: []trace.SpanRecord{{
			Site: "Attrib.echo.1", Method: "echo", Kind: trace.KindCaller,
			Seq: 9, Start: 100, End: 5_000_100,
			TraceID: 0x1234, SpanID: 1, Hop: 0,
		}}},
		{Node: "n1", Spans: []trace.SpanRecord{{
			Site: "Attrib.echo.1", Method: "echo", Kind: trace.KindCallee,
			Seq: 9, Start: 1_000, End: 4_900_000,
			TraceID: 0x1234, SpanID: 2, ParentID: 1, Hop: 1,
		}}},
	})
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch {
		case r.URL.Path == "/slow":
			_ = json.NewEncoder(w).Encode([]trace.Exemplar{
				{Site: "Attrib.echo.1", TotalNS: 5_000_000, ThresholdNS: 1_000_000,
					Blame: "execute", TraceID: 0x1234},
				{Site: "Attrib.echo.1", TotalNS: 2_000_000, ThresholdNS: 1_000_000,
					Blame: "execute"},
				{Site: "Other.site.1", TotalNS: 9_000_000, ThresholdNS: 1_000_000,
					Blame: "serialize"},
			})
		case strings.HasPrefix(r.URL.Path, "/traces/"):
			_ = json.NewEncoder(w).Encode(obs.TraceView{
				Version: obs.TracesVersion, Nodes: []string{"n0", "n1"}, Tree: tree,
			})
		default:
			http.NotFound(w, r)
		}
	}))
	t.Cleanup(srv.Close)
	return srv
}

func TestTraceDrillDownRendersTree(t *testing.T) {
	srv := fakeTraceServer(t)
	var out, errb bytes.Buffer
	if code := run([]string{"-cluster", srv.URL, "-trace", "0x1234"}, &out, &errb); code != 0 {
		t.Fatalf("run = %d, stderr: %s", code, errb.String())
	}
	got := out.String()
	for _, want := range []string{
		"trace 0x1234",
		"n0, n1",
		"[caller] hop=0 @n0",
		"[callee] hop=1 @n1",
		"critical path",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("tree output missing %q:\n%s", want, got)
		}
	}
}

func TestSlowDrillDownFollowsWorstSampledExemplar(t *testing.T) {
	srv := fakeTraceServer(t)
	var out, errb bytes.Buffer
	if code := run([]string{"-cluster", srv.URL, "-slow", "Attrib.echo.1"}, &out, &errb); code != 0 {
		t.Fatalf("run = %d, stderr: %s", code, errb.String())
	}
	got := out.String()
	if strings.Contains(got, "Other.site.1") {
		t.Error("exemplars of other sites leaked into the drill-down")
	}
	for _, want := range []string{
		"0x1234",       // the sampled exemplar's trace link
		"trace 0x1234", // ...followed into the tree
		"[callee] hop=1 @n1",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("drill-down missing %q:\n%s", want, got)
		}
	}
}
