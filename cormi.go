// Package cormi (Compiler Optimized RMI) is the public face of this
// reproduction of Veldema & Philippsen, "Compiler Optimized Remote
// Method Invocation" (CLUSTER 2003). It ties together:
//
//   - the optimizing RMI compiler: MiniJP source in, per-call-site
//     serialization plans plus cycle-elimination and reuse verdicts out
//     (Compile);
//   - the RMI runtime: clusters of nodes with per-call-site stubs,
//     virtual-time clocks and runtime statistics (NewCluster,
//     Program.Register);
//   - the five optimization levels the paper evaluates (LevelClass …
//     LevelSiteReuseCycle).
//
// A minimal end-to-end use:
//
//	prog, _ := cormi.Compile(src)                  // run the compiler
//	c := cormi.NewCluster(2, cormi.WithRegistry(prog.Registry))
//	defer c.Close()
//	site, _ := prog.Register(c, cormi.LevelSiteReuseCycle, "Main.go.1")
//	ref := c.Node(1).Export(service)
//	rets, _ := site.Invoke(c.Node(0), ref, args)
//
// See examples/ for runnable programs and internal/harness for the
// regeneration of the paper's Tables 1–8.
package cormi

import (
	"fmt"

	"cormi/internal/apps/appkit"
	"cormi/internal/core"
	"cormi/internal/interp"
	"cormi/internal/model"
	"cormi/internal/rmi"
	"cormi/internal/transport"
)

// OptLevel names one of the paper's five optimization configurations.
type OptLevel = rmi.OptLevel

// The five configurations of the paper's tables.
const (
	LevelClass          = rmi.LevelClass
	LevelSite           = rmi.LevelSite
	LevelSiteCycle      = rmi.LevelSiteCycle
	LevelSiteReuse      = rmi.LevelSiteReuse
	LevelSiteReuseCycle = rmi.LevelSiteReuseCycle
)

// AllLevels lists the configurations in table order.
var AllLevels = rmi.AllLevels

// Runtime types re-exported from the internal runtime.
type (
	// Cluster is a set of RMI nodes sharing a transport and registry.
	Cluster = rmi.Cluster
	// Node is one machine of a cluster.
	Node = rmi.Node
	// Service is a remotely invokable method table.
	Service = rmi.Service
	// Method is one remotely invokable method implementation.
	Method = rmi.Method
	// Call is the per-invocation context passed to methods.
	Call = rmi.Call
	// Ref identifies an exported remote object.
	Ref = rmi.Ref
	// CallSite is a registered per-call-site stub.
	CallSite = rmi.CallSite
	// Option configures NewCluster.
	Option = rmi.Option
	// CallPolicy is a per-call deadline/retry policy.
	CallPolicy = rmi.CallPolicy

	// FaultConfig configures seeded fault injection (chaos mode).
	FaultConfig = transport.FaultConfig
	// FaultRates holds per-link fault probabilities.
	FaultRates = transport.FaultRates
	// FaultyNetwork is a fault-injecting network decorator; obtain the
	// cluster's instance via Cluster.Network() to partition/heal links.
	FaultyNetwork = transport.FaultyNetwork

	// Value is a runtime value (primitive, string or object graph).
	Value = model.Value
	// Object is a heap object with identity semantics.
	Object = model.Object
	// Class is a runtime class descriptor.
	Class = model.Class
	// Registry resolves classes during deserialization.
	Registry = model.Registry
)

// Value constructors.
var (
	Int    = model.Int
	Double = model.Double
	Bool   = model.Bool
	Str    = model.Str
	Null   = model.Null
	RefVal = model.Ref
)

// Object constructors.
var (
	// NewObject allocates a zeroed instance of an object class.
	NewObject = model.New
	// NewArray allocates an array object of the given length.
	NewArray = model.NewArray
)

// Cluster options.
var (
	WithNetwork    = rmi.WithNetwork
	WithCostModel  = rmi.WithCostModel
	WithRegistry   = rmi.WithRegistry
	WithCallPolicy = rmi.WithCallPolicy
	WithFaults     = rmi.WithFaults
	WithDedupCap   = rmi.WithDedupCap
)

// Failure sentinels of the fault-tolerant call path; test with
// errors.Is.
var (
	// ErrTimeout: the call's deadline and retry budget were exhausted.
	ErrTimeout = rmi.ErrTimeout
	// ErrPartitioned: the deadline expired across a known partition.
	ErrPartitioned = rmi.ErrPartitioned
	// ErrClusterClosed: the cluster shut down while the call was pending.
	ErrClusterClosed = rmi.ErrClusterClosed
)

// NewCluster starts an n-node cluster (in-process network by default).
func NewCluster(n int, opts ...Option) *Cluster { return rmi.New(n, opts...) }

// Program is a compiled MiniJP program: analysis results plus the
// runtime classes it registered.
type Program struct {
	res *core.Result
}

// Compile runs the optimizing compiler over MiniJP source.
func Compile(src string) (*Program, error) {
	res, err := core.Compile(src)
	if err != nil {
		return nil, err
	}
	return &Program{res: res}, nil
}

// CompileInto compiles, registering runtime classes into reg (use the
// cluster's registry so both sides agree on wire IDs).
func CompileInto(src string, reg *Registry) (*Program, error) {
	res, err := core.CompileInto(src, reg)
	if err != nil {
		return nil, err
	}
	return &Program{res: res}, nil
}

// Registry exposes the runtime classes the compiler registered.
func (p *Program) Registry() *Registry { return p.res.Registry }

// Class looks up a runtime class by MiniJP class name.
func (p *Program) Class(name string) (*Class, bool) { return p.res.ModelClass(name) }

// SiteNames lists the mangled names of all live remote call sites.
func (p *Program) SiteNames() []string {
	var out []string
	for _, s := range p.res.Sites {
		if !s.Dead {
			out = append(out, s.Name)
		}
	}
	return out
}

// Register installs the named call site on a cluster under the given
// optimization level and returns the runtime stub.
func (p *Program) Register(c *Cluster, level OptLevel, siteName string) (*CallSite, error) {
	si := p.res.SiteByName(siteName)
	if si == nil {
		return nil, fmt.Errorf("cormi: no call site %q (have %v)", siteName, p.SiteNames())
	}
	return appkit.Register(c, level, si)
}

// DumpSite renders the compiler's analysis and generated-marshaler
// pseudocode for one call site (Figures 6/13 style).
func (p *Program) DumpSite(siteName string) (string, error) {
	si := p.res.SiteByName(siteName)
	if si == nil {
		return "", fmt.Errorf("cormi: no call site %q", siteName)
	}
	return p.res.DumpSite(si), nil
}

// DumpAll renders analysis, heap graphs and generated code for every
// call site.
func (p *Program) DumpAll() string { return p.res.DumpAll() }

// SSA renders the lowered SSA form of every function.
func (p *Program) SSA() string { return p.res.SSA() }

// Run interprets the program's `class.main()` on the cluster: remote
// instances are placed round robin over the nodes and every remote
// call goes through the serializers compiled for its call site. The
// cluster must share the program's registry.
func (p *Program) Run(c *Cluster, level OptLevel, class string) (Value, error) {
	m, err := interp.New(p.res, c, level)
	if err != nil {
		return Value{}, err
	}
	return m.RunMain(class)
}
