package cormi

import "testing"

// TestFacadeRun exercises the full public pipeline: compile a MiniJP
// program and execute its main() on a cluster through the facade.
func TestFacadeRun(t *testing.T) {
	prog, err := Compile(`
remote class Counter {
	int n;
	int bump(int by) {
		this.n = this.n + by;
		return this.n;
	}
}
class Main {
	static int main() {
		Counter c = new Counter();
		int last = 0;
		for (int i = 1; i <= 5; i = i + 1) {
			last = c.bump(i);
		}
		return last;
	}
}`)
	if err != nil {
		t.Fatal(err)
	}
	for _, level := range AllLevels {
		cluster := NewCluster(2, WithRegistry(prog.Registry()))
		v, err := prog.Run(cluster, level, "Main")
		if err != nil {
			cluster.Close()
			t.Fatalf("%v: %v", level, err)
		}
		if v.I != 15 {
			cluster.Close()
			t.Fatalf("%v: main = %v, want 15", level, v)
		}
		cluster.Close()
	}
}

func TestFacadeRunSharedRegistryReuse(t *testing.T) {
	// Two machines over the same compiled program and registry must
	// not conflict (fresh clusters, fresh interpreters).
	prog, err := Compile(`
remote class W { int one() { return 1; } }
class Main {
	static int main() {
		W w = new W();
		int a = w.one();
		return a + 1;
	}
}`)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		cluster := NewCluster(1, WithRegistry(prog.Registry()))
		v, err := prog.Run(cluster, LevelSiteReuseCycle, "Main")
		cluster.Close()
		if err != nil || v.I != 2 {
			t.Fatalf("round %d: %v %v", i, v, err)
		}
	}
}
