package cormi

import (
	"strings"
	"testing"
)

const quickSrc = `
class Point { double x; double y; }
remote class Geometry {
	double norm2(Point p) { return 0.0; }
}
class Main {
	static void main() {
		Geometry g = new Geometry();
		Point p = new Point();
		p.x = 3.0;
		double n = g.norm2(p);
		double use = n + 1.0;
	}
}
`

func TestFacadeEndToEnd(t *testing.T) {
	prog, err := Compile(quickSrc)
	if err != nil {
		t.Fatal(err)
	}
	if names := prog.SiteNames(); len(names) != 1 || names[0] != "Main.main.1" {
		t.Fatalf("site names: %v", names)
	}

	cluster := NewCluster(2, WithRegistry(prog.Registry()))
	defer cluster.Close()

	svc := &Service{Name: "Geometry", Methods: map[string]Method{
		"norm2": func(call *Call, args []Value) []Value {
			p := args[0].O
			x, y := p.Get("x").D, p.Get("y").D
			return []Value{Double(x*x + y*y)}
		},
	}}
	ref := cluster.Node(1).Export(svc)

	site, err := prog.Register(cluster, LevelSiteReuseCycle, "Main.main.1")
	if err != nil {
		t.Fatal(err)
	}
	pointClass, ok := prog.Class("Point")
	if !ok {
		t.Fatal("Point class missing")
	}
	p := NewObject(pointClass)
	p.Set("x", Double(3))
	p.Set("y", Double(4))
	rets, err := site.Invoke(cluster.Node(0), ref, []Value{RefVal(p)})
	if err != nil {
		t.Fatal(err)
	}
	if rets[0].D != 25 {
		t.Fatalf("norm2 = %v", rets[0].D)
	}

	dump, err := prog.DumpSite("Main.main.1")
	if err != nil || !strings.Contains(dump, "marshaler_Main.main.1") {
		t.Fatalf("dump: %v\n%s", err, dump)
	}
	if !strings.Contains(prog.SSA(), "rcall Geometry.norm2") {
		t.Fatal("SSA dump missing remote call")
	}
	if !strings.Contains(prog.DumpAll(), "heap graph") {
		t.Fatal("DumpAll missing heap graph")
	}
}

func TestFacadeErrors(t *testing.T) {
	if _, err := Compile("class {"); err == nil {
		t.Fatal("bad source accepted")
	}
	prog, err := Compile(quickSrc)
	if err != nil {
		t.Fatal(err)
	}
	cluster := NewCluster(2, WithRegistry(prog.Registry()))
	defer cluster.Close()
	if _, err := prog.Register(cluster, LevelSite, "no.such.site"); err == nil {
		t.Fatal("unknown site accepted")
	}
	if _, err := prog.DumpSite("no.such.site"); err == nil {
		t.Fatal("unknown site dump accepted")
	}
}

func TestAllLevelsExported(t *testing.T) {
	if len(AllLevels) != 5 {
		t.Fatalf("AllLevels = %v", AllLevels)
	}
	if LevelClass.String() != "class" || LevelSiteReuseCycle.String() != "site + reuse + cycle" {
		t.Fatal("level names wrong")
	}
}
