package cormi_test

import (
	"fmt"
	"log"

	"cormi"
)

// Example compiles the Figure 12 array benchmark, registers its call
// site with all three optimizations, and performs one optimized RMI.
func Example() {
	prog, err := cormi.Compile(`
remote class ArrayBench {
	double send(double[][] arr) {
		double s = 0.0;
		for (int i = 0; i < arr.length; i++) {
			for (int j = 0; j < arr[i].length; j++) {
				s += arr[i][j];
			}
		}
		return s;
	}
}
class Main {
	static void main() {
		double[][] arr = new double[16][16];
		ArrayBench f = new ArrayBench();
		double s = f.send(arr);
		double use = s + 1.0;
	}
}`)
	if err != nil {
		log.Fatal(err)
	}

	cluster := cormi.NewCluster(2, cormi.WithRegistry(prog.Registry()))
	defer cluster.Close()

	site, err := prog.Register(cluster, cormi.LevelSiteReuseCycle, "Main.main.1")
	if err != nil {
		log.Fatal(err)
	}
	ref := cluster.Node(1).Export(&cormi.Service{
		Name: "ArrayBench",
		Methods: map[string]cormi.Method{
			"send": func(call *cormi.Call, args []cormi.Value) []cormi.Value {
				var s float64
				for _, row := range args[0].O.Refs {
					for _, v := range row.Doubles {
						s += v
					}
				}
				return []cormi.Value{cormi.Double(s)}
			},
		},
	})

	arr := cormi.NewArray(prog.Registry().MustByName("double[][]"), 2)
	for i := range arr.Refs {
		row := cormi.NewArray(prog.Registry().DoubleArray(), 2)
		row.Doubles[0], row.Doubles[1] = 1, 2
		arr.Refs[i] = row
	}
	rets, err := site.Invoke(cluster.Node(0), ref, []cormi.Value{cormi.RefVal(arr)})
	if err != nil {
		log.Fatal(err)
	}
	s := cluster.Counters.Snapshot()
	fmt.Printf("sum=%v cycleLookups=%d typeBytes=%d\n", rets[0].D, s.CycleLookups, s.TypeBytes)
	// Output: sum=6 cycleLookups=0 typeBytes=0
}

// ExampleProgram_Run executes a MiniJP program end to end on the
// cluster through the interpreter.
func ExampleProgram_Run() {
	prog, err := cormi.Compile(`
remote class Adder {
	int add(int a, int b) { return a + b; }
}
class Main {
	static int main() {
		Adder x = new Adder();
		return x.add(40, 2);
	}
}`)
	if err != nil {
		log.Fatal(err)
	}
	cluster := cormi.NewCluster(2, cormi.WithRegistry(prog.Registry()))
	defer cluster.Close()
	v, err := prog.Run(cluster, cormi.LevelSiteReuseCycle, "Main")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(v.I)
	// Output: 42
}
