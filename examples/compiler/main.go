// Compiler walkthrough: reproduces the paper's figures as compiler
// output — the heap graph of Figure 2, the call-site-specific
// marshalers of Figure 6, the class-specific baseline of Figure 7, and
// the all-optimizations array (un)marshaler of Figure 13.
package main

import (
	"fmt"
	"log"

	"cormi/internal/core"
)

const figure2 = `
class Bar { }
class Foo {
	Bar bar;
	double[][][] a;
	static void main() {
		Foo foo = new Foo();
		foo.bar = new Bar();
		foo.a = new double[2][3][];
	}
}
remote class Sink {
	void take(Foo f) { }
	static void drive() {
		Foo foo = new Foo();
		foo.bar = new Bar();
		foo.a = new double[2][3][];
		Sink s = new Sink();
		s.take(foo);
	}
}
`

const figure5 = `
class Base { }
class Derived1 extends Base { int data; }
class Derived2 extends Base { Derived1 p; }
remote class Work {
	void foo(Base b) { }
	static void go() {
		Work w = new Work();
		Base b1 = new Derived1();
		w.foo(b1);
		Base b2 = new Derived2();
		w.foo(b2);
	}
}
`

const figure12 = `
remote class ArrayBench {
	void send(double[][] arr) { }
	static void benchmark() {
		double[][] arr = new double[16][16];
		ArrayBench f = new ArrayBench();
		f.send(arr);
	}
}
`

func compile(src string) *core.Result {
	r, err := core.Compile(src)
	if err != nil {
		log.Fatal(err)
	}
	return r
}

func main() {
	fmt.Println("==== Figure 2: heap graph ====")
	r := compile(figure2)
	fmt.Println(r.DumpHeapForSite(r.SitesOfCallee("Sink.take")[0]))

	fmt.Println("==== Figure 6: call-site-specific marshalers for Figure 5 ====")
	r = compile(figure5)
	for _, si := range r.SitesOfCallee("Work.foo") {
		fmt.Println(si.ArgPlans[0].Pseudocode())
	}

	fmt.Println("==== Figure 7: class-specific (baseline) serializers ====")
	for _, name := range []string{"Derived1", "Derived2"} {
		mc, _ := r.ModelClass(name)
		fmt.Println(core.ClassSpecificPseudocode(mc))
	}

	fmt.Println("==== Figure 13: array benchmark with all optimizations ====")
	r = compile(figure12)
	si := r.SitesOfCallee("ArrayBench.send")[0]
	fmt.Println(r.DumpSite(si))

	fmt.Println("==== SSA form of ArrayBench.benchmark (§2 step 1) ====")
	fmt.Println(r.SSA())
}
