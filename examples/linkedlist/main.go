// LinkedList benchmark (Figure 14 / Table 1): sends a 100-element
// linked list between two nodes under each optimization level and
// prints the reproduced table.
package main

import (
	"fmt"
	"log"

	"cormi/internal/apps/micro"
	"cormi/internal/rmi"
)

func main() {
	const elems, iters = 100, 200
	fmt.Printf("LinkedList: %d elements, %d sends, 2 CPU's\n", elems, iters)
	fmt.Printf("%-22s %10s %9s %14s %12s %13s\n",
		"Compiler Optimization", "seconds", "gain", "cycle lookups", "reused objs", "alloc (KB)")
	var base float64
	for _, level := range rmi.AllLevels {
		out, err := micro.RunLinkedList(level, elems, iters)
		if err != nil {
			log.Fatal(err)
		}
		if out.ElementsSeen != elems {
			log.Fatalf("receiver saw %d elements", out.ElementsSeen)
		}
		if base == 0 {
			base = out.Seconds
		}
		fmt.Printf("%-22s %10.4f %8.1f%% %14d %12d %13.1f\n",
			level, out.Seconds, 100*(base-out.Seconds)/base,
			out.Stats.CycleLookups, out.Stats.ReusedObjs,
			float64(out.Stats.AllocBytes)/1024)
	}
	fmt.Println("\nThe list is conservatively flagged cyclic (one allocation site")
	fmt.Println("pointing to itself), so '+ cycle' cannot help — but reuse saves")
	fmt.Println("100 allocations per RMI, exactly as §5.1 describes.")
}
