// Distributed LU factorization (SPLASH-2, §5.2 / Tables 3-4): factors
// a matrix over a 2-node RMI cluster at every optimization level,
// verifies L·U against the original matrix, and prints the reproduced
// tables.
package main

import (
	"flag"
	"fmt"
	"log"

	"cormi/internal/apps/lu"
	"cormi/internal/rmi"
)

func main() {
	n := flag.Int("n", 128, "matrix size")
	bs := flag.Int("bs", 16, "block size")
	nodes := flag.Int("nodes", 2, "cluster size")
	flag.Parse()

	fmt.Printf("LU: %dx%d matrix, %d blocks, %d CPU's\n", *n, *n, (*n / *bs)*(*n / *bs), *nodes)
	fmt.Printf("%-22s %10s %9s %12s %13s %14s\n",
		"Compiler Optimization", "seconds", "gain", "rpcs (l/r)", "new (MBytes)", "cycle lookups")
	var base float64
	for _, level := range rmi.AllLevels {
		out, err := lu.Run(level, *n, *bs, *nodes)
		if err != nil {
			log.Fatal(err)
		}
		if out.MaxResidual > 1e-8 {
			log.Fatalf("factorization wrong: residual %g", out.MaxResidual)
		}
		if base == 0 {
			base = out.Seconds
		}
		fmt.Printf("%-22s %10.4f %8.1f%% %5d/%-6d %13.2f %14d\n",
			level, out.Seconds, 100*(base-out.Seconds)/base,
			out.Stats.LocalRPCs, out.Stats.RemoteRPCs,
			out.Stats.NewMBytes(), out.Stats.CycleLookups)
	}
	fmt.Println("\nEvery block fetch crosses the RMI machinery (fetches of locally")
	fmt.Println("owned operands become local RPCs, which deep-clone); the residual")
	fmt.Println("check proves the factorization is numerically correct at all levels.")
}
