// Quickstart: compile a MiniJP program, start a two-node cluster, and
// perform a compiler-optimized remote method invocation end to end.
package main

import (
	"fmt"
	"log"

	"cormi"
)

const src = `
class Point { double x; double y; }
remote class Geometry {
	double norm2(Point p) { return 0.0; }
}
class Main {
	static void main() {
		Geometry g = new Geometry();
		Point p = new Point();
		p.x = 3.0;
		p.y = 4.0;
		double n = g.norm2(p);
		double use = n + 1.0;
	}
}
`

func main() {
	// 1. Run the optimizing compiler: heap analysis, cycle
	//    elimination, escape analysis, call-site code generation.
	prog, err := cormi.Compile(src)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("compiled call sites:", prog.SiteNames())

	// 2. Start a cluster sharing the compiler's class registry.
	cluster := cormi.NewCluster(2, cormi.WithRegistry(prog.Registry()))
	defer cluster.Close()

	// 3. Implement and export the remote object on node 1.
	svc := &cormi.Service{Name: "Geometry", Methods: map[string]cormi.Method{
		"norm2": func(call *cormi.Call, args []cormi.Value) []cormi.Value {
			p := args[0].O
			x, y := p.Get("x").D, p.Get("y").D
			return []cormi.Value{cormi.Double(x*x + y*y)}
		},
	}}
	ref := cluster.Node(1).Export(svc)

	// 4. Register the compiled call site with all optimizations on and
	//    invoke it from node 0.
	site, err := prog.Register(cluster, cormi.LevelSiteReuseCycle, "Main.main.1")
	if err != nil {
		log.Fatal(err)
	}
	pointClass, _ := prog.Class("Point")
	for i := 0; i < 3; i++ {
		p := cormi.NewObject(pointClass)
		p.Set("x", cormi.Double(3))
		p.Set("y", cormi.Double(4))
		rets, err := site.Invoke(cluster.Node(0), ref, []cormi.Value{cormi.RefVal(p)})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("call %d: |(3,4)|² = %v\n", i+1, rets[0].D)
	}

	// 5. The runtime counted what the optimizations did.
	s := cluster.Counters.Snapshot()
	fmt.Printf("remote RPCs: %d   dynamic serializer calls: %d   cycle lookups: %d   reused objects: %d\n",
		s.RemoteRPCs, s.SerializerCalls, s.CycleLookups, s.ReusedObjs)
	fmt.Println("\ngenerated marshaler for the call site:")
	dump, _ := prog.DumpSite("Main.main.1")
	fmt.Println(dump)
}
