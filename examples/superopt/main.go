// Parallel superoptimizer (§5.3 / Tables 5-6): exhaustively searches
// for shorter equivalents of a target instruction sequence, shipping
// every candidate over RMI to tester threads, and prints both the
// found equivalences and the per-level search times.
package main

import (
	"flag"
	"fmt"
	"log"

	"cormi/internal/apps/superopt"
	"cormi/internal/rmi"
)

func main() {
	maxLen := flag.Int("len", 2, "maximum candidate sequence length")
	flag.Parse()

	p := superopt.DefaultParams()
	p.MaxLen = *maxLen

	fmt.Printf("Superoptimizer: target {%s}, sequences up to %d instructions\n", p.Target, p.MaxLen)

	out, err := superopt.Search(rmi.LevelSiteReuseCycle, p)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n%d sequences tested; equivalent sequences found:\n", out.Tested)
	for _, m := range out.Matches {
		fmt.Printf("  { %s }\n", m)
	}

	fmt.Printf("\n%-22s %10s %9s %14s\n", "Compiler Optimization", "seconds", "gain", "cycle lookups")
	var base float64
	for _, level := range rmi.AllLevels {
		o, err := superopt.Search(level, p)
		if err != nil {
			log.Fatal(err)
		}
		if base == 0 {
			base = o.Seconds
		}
		fmt.Printf("%-22s %10.4f %8.1f%% %14d\n",
			level, o.Seconds, 100*(base-o.Seconds)/base, o.Stats.CycleLookups)
	}
	fmt.Println("\nThe program graphs are proven cycle-free, so elimination of the")
	fmt.Println("dynamic cycle checks is the dominant gain (as in Table 5); queued")
	fmt.Println("programs escape the tester, so reuse contributes nothing.")
}
