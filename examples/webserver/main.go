// Parallel webserver (§5.4 / Tables 7-8): a master forwards page
// requests to page servers chosen by URL hash; prints µs/page per
// optimization level and the allocation behavior that reuse removes.
package main

import (
	"flag"
	"fmt"
	"log"

	"cormi/internal/apps/webserver"
	"cormi/internal/rmi"
)

func main() {
	requests := flag.Int("requests", 2000, "number of page retrievals")
	flag.Parse()

	p := webserver.DefaultParams()
	p.Requests = *requests

	fmt.Printf("Webserver: %d requests, %d pages/server, %d CPU's\n", p.Requests, p.Pages, p.Nodes)
	fmt.Printf("%-22s %15s %9s %13s %12s\n",
		"Compiler Optimization", "µs per Webpage", "gain", "new (MBytes)", "reused objs")
	var base float64
	for _, level := range rmi.AllLevels {
		out, err := webserver.Run(level, p)
		if err != nil {
			log.Fatal(err)
		}
		if base == 0 {
			base = out.MicrosPerPage
		}
		fmt.Printf("%-22s %15.2f %8.1f%% %13.2f %12d\n",
			level, out.MicrosPerPage, 100*(base-out.MicrosPerPage)/base,
			out.Stats.NewMBytes(), out.Stats.ReusedObjs)
	}
	fmt.Println("\nThe compiler proves the returned page cycle-free and reusable:")
	fmt.Println("with all optimizations no objects are allocated after the first")
	fmt.Println("page has been retrieved (Table 8).")
}
