module cormi

go 1.22
