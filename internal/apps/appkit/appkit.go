// Package appkit bridges the compiler's per-call-site analysis results
// (core.SiteInfo) to the RMI runtime (rmi.CallSite): each benchmark
// application compiles its MiniJP communication sketch, then registers
// the derived plans as runtime call sites under the optimization level
// being measured.
package appkit

import (
	"fmt"

	"cormi/internal/core"
	"cormi/internal/rmi"
	"cormi/internal/simtime"
	"cormi/internal/stats"
)

// RunResult is one benchmark execution's outcome: the virtual makespan
// plus the runtime statistics the paper's tables report.
type RunResult struct {
	Seconds float64
	Stats   stats.Snapshot
}

// Collect snapshots a cluster into a RunResult.
func Collect(c *rmi.Cluster) RunResult {
	return RunResult{
		Seconds: simtime.Seconds(c.MaxTime()),
		Stats:   c.Counters.Snapshot(),
	}
}

// SpecOf converts a compiled call site to a runtime site spec.
func SpecOf(si *core.SiteInfo) rmi.SiteSpec {
	return rmi.SiteSpec{
		Name:      si.Name,
		Method:    si.Callee.Name,
		ArgPlans:  si.ArgPlans,
		RetPlans:  si.RetPlans,
		NumRet:    si.NumRet,
		IgnoreRet: si.IgnoreRet,
	}
}

// Register registers a compiled call site on the cluster under the
// given optimization level.
func Register(c *rmi.Cluster, level rmi.OptLevel, si *core.SiteInfo) (*rmi.CallSite, error) {
	if si == nil {
		return nil, fmt.Errorf("appkit: nil call site")
	}
	if si.Dead {
		return nil, fmt.Errorf("appkit: call site %s is dead code", si.Name)
	}
	return c.NewCallSite(level, SpecOf(si))
}

// MustRegister is Register panicking on error (program start-up).
func MustRegister(c *rmi.Cluster, level rmi.OptLevel, si *core.SiteInfo) *rmi.CallSite {
	cs, err := Register(c, level, si)
	if err != nil {
		panic(err)
	}
	return cs
}

// SoleSite returns the unique call site of a callee, failing loudly if
// the sketch has zero or several.
func SoleSite(r *core.Result, qualified string) (*core.SiteInfo, error) {
	sites := r.SitesOfCallee(qualified)
	if len(sites) != 1 {
		return nil, fmt.Errorf("appkit: %d call sites for %s, want 1", len(sites), qualified)
	}
	return sites[0], nil
}
