package appkit

import (
	"testing"

	"cormi/internal/core"
	"cormi/internal/rmi"
)

const src = `
remote class F {
	int f(int x) { return x; }
	static void main() {
		F me = new F();
		int y = me.f(1);
		int use = y + 1;
	}
}
`

func TestSpecAndRegister(t *testing.T) {
	cluster := rmi.New(2)
	defer cluster.Close()
	res, err := core.CompileInto(src, cluster.Registry)
	if err != nil {
		t.Fatal(err)
	}
	si, err := SoleSite(res, "F.f")
	if err != nil {
		t.Fatal(err)
	}
	spec := SpecOf(si)
	if spec.Method != "f" || spec.Name != "F.main.1" || spec.NumRet != 1 || spec.IgnoreRet {
		t.Fatalf("spec: %+v", spec)
	}
	cs, err := Register(cluster, rmi.LevelSiteReuseCycle, si)
	if err != nil || cs == nil {
		t.Fatalf("register: %v", err)
	}
	if MustRegister(cluster, rmi.LevelClass, si) == nil {
		t.Fatal("MustRegister returned nil")
	}
}

func TestRegisterErrors(t *testing.T) {
	cluster := rmi.New(1)
	defer cluster.Close()
	if _, err := Register(cluster, rmi.LevelSite, nil); err == nil {
		t.Fatal("nil site accepted")
	}
	if _, err := Register(cluster, rmi.LevelSite, &core.SiteInfo{Dead: true, Name: "d"}); err == nil {
		t.Fatal("dead site accepted")
	}
	res, err := core.CompileInto(src, cluster.Registry)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := SoleSite(res, "F.nope"); err == nil {
		t.Fatal("missing callee accepted")
	}
}

func TestCollect(t *testing.T) {
	cluster := rmi.New(1)
	defer cluster.Close()
	cluster.Node(0).Clock.Advance(2_000_000_000)
	cluster.Counters.RemoteRPCs.Add(4)
	rr := Collect(cluster)
	if rr.Seconds != 2.0 || rr.Stats.RemoteRPCs != 4 {
		t.Fatalf("collect: %+v", rr)
	}
}
