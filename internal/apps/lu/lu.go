// Package lu implements the SPLASH-2 LU kernel of §5.2 (Tables 3/4):
// a blocked, pivot-free LU factorization of a dense n×n matrix
// distributed over the cluster. Blocks are scattered checkerboard
// style; every block an update needs is fetched through RMI (so
// accesses to locally owned operands become the paper's "local rpcs",
// which deep-clone), phases are separated by barriers on machine 0,
// and at the end every node flushes its blocks to machine 0 — "updates
// are flushed to machine 0 and a barrier is entered".
//
// The communication sketch is compiled by the optimizing compiler; its
// verdicts (block graphs are acyclic, fetched and flushed blocks are
// reusable, flush and barrier replies collapse to acks) drive the
// serializers at each optimization level.
package lu

import (
	"fmt"
	"sync"

	"cormi/internal/apps/appkit"
	"cormi/internal/core"
	"cormi/internal/model"
	"cormi/internal/rmi"
)

// Src is the MiniJP communication sketch: the remote surface of the LU
// program, written so the compiler sees exactly the call sites the Go
// driver below performs.
const Src = `
remote class BlockStore {
	double[][] blocks;
	void init(int nblocks, int bs) {
		this.blocks = new double[nblocks][];
		for (int i = 0; i < nblocks; i = i + 1) {
			this.blocks[i] = new double[bs * bs];
		}
	}
	double[] get_block(int idx) {
		return this.blocks[idx];
	}
	void flush_block(int idx, double[] b) {
		double[] mine = this.blocks[idx];
		for (int r = 0; r < b.length; r = r + 1) {
			mine[r] = b[r];
		}
	}
}
remote class Barrier {
	void await() { }
}
class Driver {
	static void interior(BlockStore po, BlockStore qo, int ia, int ib) {
		double[] a = po.get_block(ia);
		double[] b = qo.get_block(ib);
		double x = a[0] + b[0];
	}
	static void perimeter(BlockStore diago, int idiag) {
		double[] diag = diago.get_block(idiag);
		double x = diag[0];
	}
	static void main() {
		BlockStore s = new BlockStore();
		s.init(16, 16);
		Driver.perimeter(s, 0);
		Driver.interior(s, s, 1, 2);
		double[] blk = s.get_block(3);
		s.flush_block(3, blk);
		Barrier bar = new Barrier();
		bar.await();
	}
}
`

// FlopNS is the virtual cost of one fused multiply-add on the modeled
// 1 GHz Pentium III (calibrated so computation and communication have
// paper-like proportions at n=1024).
const FlopNS = 12

// Outcome is the benchmark result plus correctness witnesses.
type Outcome struct {
	appkit.RunResult
	// MaxResidual is max |(L·U)[i][j] - A[i][j]| over the matrix.
	MaxResidual float64
}

// Sites bundles the compiled call sites the driver uses.
type sites struct {
	perimGet *rmi.CallSite // Driver.perimeter's diag fetch
	intGetA  *rmi.CallSite // Driver.interior's first fetch
	intGetB  *rmi.CallSite // Driver.interior's second fetch
	mainGet  *rmi.CallSite // final gather fetch
	flush    *rmi.CallSite
	barrier  *rmi.CallSite
}

// Run factors an n×n matrix with block size bs over `nodes` machines
// at the given optimization level (the paper uses n=1024, 2 CPUs).
// Extra cluster options (fault injection, call policies) apply to the
// run.
func Run(level rmi.OptLevel, n, bs, nodes int, clusterOpts ...rmi.Option) (Outcome, error) {
	if n%bs != 0 {
		return Outcome{}, fmt.Errorf("lu: n=%d not divisible by bs=%d", n, bs)
	}
	B := n / bs

	cluster := rmi.New(nodes, clusterOpts...)
	defer cluster.Close()
	res, err := core.CompileInto(Src, cluster.Registry)
	if err != nil {
		return Outcome{}, err
	}

	var st sites
	for _, pick := range []struct {
		dst  **rmi.CallSite
		name string
	}{
		{&st.intGetA, "Driver.interior.1"},
		{&st.intGetB, "Driver.interior.2"},
		{&st.perimGet, "Driver.perimeter.1"},
		{&st.mainGet, "Driver.main.2"},
		{&st.flush, "Driver.main.3"},
		{&st.barrier, "Driver.main.4"},
	} {
		si := res.SiteByName(pick.name)
		if si == nil {
			return Outcome{}, fmt.Errorf("lu: sketch has no call site %s", pick.name)
		}
		cs, err := appkit.Register(cluster, level, si)
		if err != nil {
			return Outcome{}, err
		}
		*pick.dst = cs
	}

	// Deterministic diagonally dominant matrix (no pivoting needed).
	orig := make([][]float64, n)
	for i := range orig {
		orig[i] = make([]float64, n)
		for j := range orig[i] {
			orig[i][j] = synth(i, j)
			if i == j {
				orig[i][j] += float64(n)
			}
		}
	}

	// Scatter: each node materializes its owned blocks locally (the
	// SPLASH-2 initialization is node-local too).
	owner := func(I, J int) int { return (I + J) % nodes }
	stores := make([]*blockStore, nodes)
	refs := make([]rmi.Ref, nodes)
	for w := 0; w < nodes; w++ {
		stores[w] = newBlockStore(cluster.Registry, B)
		refs[w] = cluster.Node(w).Export(stores[w].service())
	}
	for I := 0; I < B; I++ {
		for J := 0; J < B; J++ {
			w := owner(I, J)
			// Blocks travel flattened (bs² doubles), as in SPLASH-2's
			// contiguous block layout.
			blk := model.NewArray(cluster.Registry.DoubleArray(), bs*bs)
			for r := 0; r < bs; r++ {
				copy(blk.Doubles[r*bs:(r+1)*bs], orig[I*bs+r][J*bs:(J+1)*bs])
			}
			stores[w].put(I*B+J, blk)
		}
	}
	barRef := cluster.Node(0).Export(rmi.NewBarrierService(nodes))

	// Workers: one driver goroutine per machine. On the first worker
	// failure the cluster is closed immediately: peers blocked in a
	// barrier or mid-invoke are unblocked (ErrClusterClosed / barrier
	// shutdown) instead of waiting forever for a party that already
	// gave up — the failure path under heavy loss must terminate too.
	var wg sync.WaitGroup
	errs := make(chan error, nodes)
	for w := 0; w < nodes; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			if err := worker(cluster, st, stores, refs, barRef, owner, w, B, bs, nodes); err != nil {
				errs <- fmt.Errorf("lu worker %d: %w", w, err)
			}
		}(w)
	}
	go func() { wg.Wait(); close(errs) }()
	var firstErr error
	for err := range errs {
		if firstErr == nil {
			firstErr = err
			cluster.Close()
		}
	}
	if firstErr != nil {
		return Outcome{}, firstErr
	}

	// Gather: every non-0 node flushes its blocks to machine 0, which
	// stores them into its own matrix image; then verify L·U = A.
	full := make([][]float64, n)
	for i := range full {
		full[i] = make([]float64, n)
	}
	node0 := cluster.Node(0)
	for I := 0; I < B; I++ {
		for J := 0; J < B; J++ {
			w := owner(I, J)
			var blk *model.Object
			if w == 0 {
				blk = stores[0].get(I*B + J)
			} else {
				rets, err := st.mainGet.Invoke(node0, refs[w], []model.Value{model.Int(int64(I*B + J))})
				if err != nil {
					return Outcome{}, err
				}
				blk = rets[0].O
				// Flush a copy back into machine 0's store, as the
				// paper's program does.
				if _, err := st.flush.Invoke(node0, refs[0], []model.Value{
					model.Int(int64(I*B + J)), model.Ref(blk)}); err != nil {
					return Outcome{}, err
				}
			}
			for r := 0; r < bs; r++ {
				copy(full[I*bs+r][J*bs:(J+1)*bs], blk.Doubles[r*bs:(r+1)*bs])
			}
		}
	}

	out := Outcome{RunResult: appkit.Collect(cluster)}
	out.MaxResidual = residual(orig, full, n)
	return out, nil
}

// synth is a deterministic pseudo-random matrix entry in [0,1).
func synth(i, j int) float64 {
	x := uint64(i)*2654435761 + uint64(j)*40503 + 12345
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	return float64(x%1000000) / 1000000
}

// residual computes max |(L·U)[i][j] - A[i][j]| from the packed
// factorization `lu` (unit lower L below the diagonal, U on and above).
func residual(a, lu [][]float64, n int) float64 {
	var worst float64
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			var s float64
			kmax := i
			if j < i {
				kmax = j
			}
			for k := 0; k < kmax; k++ {
				s += lu[i][k] * lu[k][j]
			}
			if j >= i {
				s += lu[i][j] // L[i][i] = 1
			} else {
				s += lu[i][j] * lu[j][j]
			}
			d := s - a[i][j]
			if d < 0 {
				d = -d
			}
			if d > worst {
				worst = d
			}
		}
	}
	return worst
}
