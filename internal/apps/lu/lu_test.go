package lu

import (
	"errors"
	"testing"
	"time"

	"cormi/internal/core"
	"cormi/internal/rmi"
	"cormi/internal/transport"
)

func TestSequentialBlockMathAgreesWithScalarLU(t *testing.T) {
	// Factor a small matrix with the block routines (one node path)
	// and with plain scalar LU; both must produce the same residual
	// behavior.
	const n = 32
	a := make([][]float64, n)
	for i := range a {
		a[i] = make([]float64, n)
		for j := range a[i] {
			a[i][j] = synth(i, j)
			if i == j {
				a[i][j] += n
			}
		}
	}
	luM := make([][]float64, n)
	for i := range luM {
		luM[i] = append([]float64(nil), a[i]...)
	}
	factorDiag(luM) // whole matrix as one block
	if r := residual(a, luM, n); r > 1e-9 {
		t.Fatalf("scalar LU residual %g", r)
	}
}

func TestCompiledSketchVerdicts(t *testing.T) {
	res, err := core.Compile(Src)
	if err != nil {
		t.Fatal(err)
	}
	get := res.SiteByName("Driver.interior.1")
	if get == nil {
		t.Fatal("no interior fetch site")
	}
	if get.RetMayCycle {
		t.Fatal("block graph misflagged cyclic")
	}
	if !get.RetReusable {
		t.Fatal("fetched block should be reusable")
	}
	if get.IgnoreRet {
		t.Fatal("fetch return is used")
	}
	flush := res.SiteByName("Driver.main.3")
	if flush == nil {
		t.Fatal("no flush site")
	}
	if !flush.IgnoreRet {
		t.Fatal("flush should be ack-only")
	}
	if !flush.ArgReusable[1] {
		t.Fatal("flushed block is copied element-wise and should be reusable")
	}
	if flush.MayCycle {
		t.Fatal("flush argument misflagged cyclic")
	}
}

func TestLUCorrectAtAllLevels(t *testing.T) {
	for _, level := range rmi.AllLevels {
		out, err := Run(level, 64, 16, 2)
		if err != nil {
			t.Fatalf("%v: %v", level, err)
		}
		if out.MaxResidual > 1e-8 {
			t.Fatalf("%v: residual %g", level, out.MaxResidual)
		}
		if out.Stats.RemoteRPCs == 0 || out.Stats.LocalRPCs == 0 {
			t.Fatalf("%v: rpc mix %d/%d", level, out.Stats.LocalRPCs, out.Stats.RemoteRPCs)
		}
	}
}

func TestLUTable3Shape(t *testing.T) {
	secs := map[rmi.OptLevel]float64{}
	var stats = map[rmi.OptLevel]int64{}
	alloc := map[rmi.OptLevel]int64{}
	for _, level := range rmi.AllLevels {
		out, err := Run(level, 96, 16, 2)
		if err != nil {
			t.Fatalf("%v: %v", level, err)
		}
		secs[level] = out.Seconds
		stats[level] = out.Stats.CycleLookups
		alloc[level] = out.Stats.AllocBytes
	}
	// Table 3 shape: every optimization row beats class; all-on wins.
	for _, level := range rmi.AllLevels[1:] {
		if !(secs[level] < secs[rmi.LevelClass]) {
			t.Fatalf("%v (%.4fs) not faster than class (%.4fs)", level, secs[level], secs[rmi.LevelClass])
		}
	}
	if !(secs[rmi.LevelSiteReuseCycle] < secs[rmi.LevelSite]) {
		t.Fatal("all optimizations should beat site alone")
	}
	// Table 4 shape: cycle elimination removes (essentially) all
	// lookups; reuse slashes deserialization allocation.
	if stats[rmi.LevelSiteCycle] != 0 || stats[rmi.LevelSiteReuseCycle] != 0 {
		t.Fatalf("cycle lookups with elimination: %d / %d",
			stats[rmi.LevelSiteCycle], stats[rmi.LevelSiteReuseCycle])
	}
	if stats[rmi.LevelClass] == 0 || stats[rmi.LevelSite] == 0 {
		t.Fatal("baseline rows should pay cycle lookups")
	}
	if !(alloc[rmi.LevelSiteReuse] < alloc[rmi.LevelSite]/2) {
		t.Fatalf("reuse should at least halve deserialization bytes: %d vs %d",
			alloc[rmi.LevelSiteReuse], alloc[rmi.LevelSite])
	}
}

func TestLUFourNodes(t *testing.T) {
	out, err := Run(rmi.LevelSiteReuseCycle, 64, 16, 4)
	if err != nil {
		t.Fatal(err)
	}
	if out.MaxResidual > 1e-8 {
		t.Fatalf("residual %g", out.MaxResidual)
	}
}

func TestBadBlockSize(t *testing.T) {
	if _, err := Run(rmi.LevelClass, 50, 16, 2); err == nil {
		t.Fatal("n not divisible by bs accepted")
	}
}

// TestLUTotalLossTerminates: under a link that delivers nothing, the
// run must fail with ErrTimeout in bounded time — the early worker
// waiting in the barrier is unblocked by the fail-fast cluster close,
// not left waiting forever for a party that already gave up.
func TestLUTotalLossTerminates(t *testing.T) {
	done := make(chan error, 1)
	go func() {
		_, err := Run(rmi.LevelSite, 64, 16, 2,
			rmi.WithFaults(transport.FaultConfig{
				Seed:       11,
				FaultRates: transport.FaultRates{Drop: 1},
			}),
			rmi.WithCallPolicy(rmi.CallPolicy{
				Timeout: 10 * time.Millisecond, Retries: 2, Backoff: time.Millisecond,
			}))
		done <- err
	}()
	select {
	case err := <-done:
		if !errors.Is(err, rmi.ErrTimeout) {
			t.Fatalf("err = %v, want ErrTimeout", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("LU hung under total packet loss")
	}
}
