package lu

import (
	"fmt"
	"sync"

	"cormi/internal/model"
	"cormi/internal/rmi"
)

// blockStore is one node's block storage, exported as the BlockStore
// remote service of the sketch.
type blockStore struct {
	mu     sync.RWMutex
	blocks map[int]*model.Object
	reg    *model.Registry
}

func newBlockStore(reg *model.Registry, b int) *blockStore {
	return &blockStore{blocks: make(map[int]*model.Object), reg: reg}
}

func (s *blockStore) put(idx int, blk *model.Object) {
	s.mu.Lock()
	s.blocks[idx] = blk
	s.mu.Unlock()
}

func (s *blockStore) get(idx int) *model.Object {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.blocks[idx]
}

// service exposes get_block and flush_block. flush copies element-wise
// into the existing local block — the incoming argument graph is not
// retained, which is what makes the compiler's reuse verdict sound.
func (s *blockStore) service() *rmi.Service {
	return &rmi.Service{
		Name: "BlockStore",
		Methods: map[string]rmi.Method{
			"get_block": func(call *rmi.Call, args []model.Value) []model.Value {
				blk := s.get(int(args[0].I))
				if blk == nil {
					panic(fmt.Sprintf("lu: no block %d on node %d", args[0].I, call.Node.ID))
				}
				return []model.Value{model.Ref(blk)}
			},
			"flush_block": func(call *rmi.Call, args []model.Value) []model.Value {
				idx := int(args[0].I)
				in := args[1].O
				dst := s.get(idx)
				if dst == nil {
					// First flush of this index: materialize storage.
					dst = model.NewArray(s.reg.DoubleArray(), len(in.Doubles))
					s.put(idx, dst)
				}
				copy(dst.Doubles, in.Doubles)
				return nil
			},
		},
	}
}

// view exposes a flattened bs²-double block as [][]float64 rows
// sharing the same backing storage.
func view(o *model.Object, bs int) [][]float64 {
	rows := make([][]float64, bs)
	for i := range rows {
		rows[i] = o.Doubles[i*bs : (i+1)*bs]
	}
	return rows
}

// worker drives machine w's share of the factorization.
func worker(cluster *rmi.Cluster, st sites, stores []*blockStore, refs []rmi.Ref,
	barRef rmi.Ref, owner func(int, int) int, w, B, bs, nodes int) error {

	node := cluster.Node(w)
	idx := func(I, J int) int { return I*B + J }
	fetch := func(cs *rmi.CallSite, I, J int) ([][]float64, error) {
		rets, err := cs.Invoke(node, refs[owner(I, J)], []model.Value{model.Int(int64(idx(I, J)))})
		if err != nil {
			return nil, err
		}
		return view(rets[0].O, bs), nil
	}
	// A barrier call legitimately blocks until every party arrives, so
	// its reply can trail the per-attempt deadline by design. Deepen the
	// retry budget instead of lengthening the timeout: spurious
	// retransmits are absorbed by the callee's dedup cache, while a
	// genuinely lost barrier call is still retransmitted promptly.
	barPol := cluster.CallPolicy()
	if barPol.Timeout > 0 {
		if barPol.Retries < 64 {
			barPol.Retries = 64
		}
		// A deep budget must not inherit unbounded doubling: cap the
		// backoff at one timeout so every retransmit in the budget
		// stays prompt.
		if barPol.MaxBackoff <= 0 || barPol.MaxBackoff > barPol.Timeout {
			barPol.MaxBackoff = barPol.Timeout
		}
	}
	barrier := func() error {
		_, err := st.barrier.InvokeWithPolicy(node, barRef, nil, barPol)
		return err
	}

	for K := 0; K < B; K++ {
		// Phase 1: factor the diagonal block.
		if owner(K, K) == w {
			factorDiag(view(stores[w].get(idx(K, K)), bs))
			node.Clock.Advance(int64(bs*bs*bs/3) * FlopNS)
		}
		if err := barrier(); err != nil {
			return err
		}

		// Phase 2: perimeter row and column updates need the diagonal.
		for J := K + 1; J < B; J++ {
			if owner(K, J) != w {
				continue
			}
			diag, err := fetch(st.perimGet, K, K)
			if err != nil {
				return err
			}
			rowUpdate(view(stores[w].get(idx(K, J)), bs), diag)
			node.Clock.Advance(int64(bs*bs*bs/2) * FlopNS)
		}
		for I := K + 1; I < B; I++ {
			if owner(I, K) != w {
				continue
			}
			diag, err := fetch(st.perimGet, K, K)
			if err != nil {
				return err
			}
			colUpdate(view(stores[w].get(idx(I, K)), bs), diag)
			node.Clock.Advance(int64(bs*bs*bs/2) * FlopNS)
		}
		if err := barrier(); err != nil {
			return err
		}

		// Phase 3: interior updates need one row block and one column
		// block (two distinct fetch call sites, as in the sketch's
		// Driver.interior).
		for I := K + 1; I < B; I++ {
			for J := K + 1; J < B; J++ {
				if owner(I, J) != w {
					continue
				}
				a, err := fetch(st.intGetA, I, K)
				if err != nil {
					return err
				}
				b, err := fetch(st.intGetB, K, J)
				if err != nil {
					return err
				}
				matmulSub(view(stores[w].get(idx(I, J)), bs), a, b)
				node.Clock.Advance(int64(2*bs*bs*bs) * FlopNS)
			}
		}
		if err := barrier(); err != nil {
			return err
		}
	}
	return nil
}

// factorDiag factors a diagonal block in place (unit lower L, U on and
// above the diagonal).
func factorDiag(a [][]float64) {
	n := len(a)
	for k := 0; k < n; k++ {
		for i := k + 1; i < n; i++ {
			a[i][k] /= a[k][k]
			f := a[i][k]
			for j := k + 1; j < n; j++ {
				a[i][j] -= f * a[k][j]
			}
		}
	}
}

// rowUpdate applies A = L(diag)⁻¹ · A for a block in the pivot row.
func rowUpdate(a [][]float64, diag [][]float64) {
	n := len(a)
	for k := 0; k < n; k++ {
		for i := k + 1; i < n; i++ {
			f := diag[i][k]
			for j := 0; j < n; j++ {
				a[i][j] -= f * a[k][j]
			}
		}
	}
}

// colUpdate applies A = A · U(diag)⁻¹ for a block in the pivot column.
func colUpdate(a [][]float64, diag [][]float64) {
	n := len(a)
	for k := 0; k < n; k++ {
		d := diag[k][k]
		for i := 0; i < n; i++ {
			a[i][k] /= d
		}
		for j := k + 1; j < n; j++ {
			f := diag[k][j]
			for i := 0; i < n; i++ {
				a[i][j] -= a[i][k] * f
			}
		}
	}
}

// matmulSub applies C -= A·B.
func matmulSub(c, a, b [][]float64) {
	n := len(c)
	for i := 0; i < n; i++ {
		for k := 0; k < n; k++ {
			f := a[i][k]
			if f == 0 {
				continue
			}
			row := b[k]
			ci := c[i]
			for j := 0; j < n; j++ {
				ci[j] -= f * row[j]
			}
		}
	}
}
