package micro

import (
	"testing"

	"cormi/internal/apps/appkit"
	"cormi/internal/core"
	"cormi/internal/model"
	"cormi/internal/race"
	"cormi/internal/rmi"
)

// steadyAllocBudget bounds per-invocation heap allocations on the full
// RMI path at site+reuse+cycle: what remains is the method-launch
// goroutine, the per-call Call struct and scheduler noise — the
// serialize/send/receive path itself is allocation free (see
// serial.TestPureHotPathZeroAllocs). A regression past this budget
// means pooling broke somewhere on the hot path.
const steadyAllocBudget = 8.0

func steadyState(t *testing.T, name string, invoke func()) {
	t.Helper()
	for i := 0; i < 50; i++ {
		invoke() // reach pool/reuse-cache steady state
	}
	avg := testing.AllocsPerRun(300, invoke)
	t.Logf("%s: %.2f allocs per invocation", name, avg)
	if avg > steadyAllocBudget {
		t.Fatalf("%s: %.2f allocs per steady-state invocation, budget %.1f", name, avg, steadyAllocBudget)
	}
}

// TestSteadyStateAllocs pins the allocation budget of the two paper
// micro-benchmarks under full optimization, with the cluster and call
// site set up once and invocations measured in isolation.
func TestSteadyStateAllocs(t *testing.T) {
	if race.Enabled {
		t.Skip("race instrumentation allocates on otherwise allocation-free paths")
	}
	t.Run("array2d", func(t *testing.T) {
		cluster := rmi.New(2)
		defer cluster.Close()
		res, err := core.CompileInto(ArrayBenchSrc, cluster.Registry)
		if err != nil {
			t.Fatal(err)
		}
		si, err := appkit.SoleSite(res, "ArrayBench.send")
		if err != nil {
			t.Fatal(err)
		}
		cs, err := appkit.Register(cluster, rmi.LevelSiteReuseCycle, si)
		if err != nil {
			t.Fatal(err)
		}
		ref := cluster.Node(1).Export(&rmi.Service{Name: "ArrayBench", Methods: map[string]rmi.Method{
			"send": func(call *rmi.Call, args []model.Value) []model.Value { return nil },
		}})

		arr := model.NewArray(cluster.Registry.MustByName("double[][]"), 16)
		for i := range arr.Refs {
			row := model.NewArray(cluster.Registry.DoubleArray(), 16)
			for j := range row.Doubles {
				row.Doubles[j] = float64(i + j)
			}
			arr.Refs[i] = row
		}

		caller := cluster.Node(0)
		argv := []model.Value{model.Ref(arr)}
		steadyState(t, "array2d", func() {
			if _, err := cs.Invoke(caller, ref, argv); err != nil {
				t.Fatal(err)
			}
		})
	})

	t.Run("linkedlist", func(t *testing.T) {
		cluster := rmi.New(2)
		defer cluster.Close()
		res, err := core.CompileInto(LinkedListSrc, cluster.Registry)
		if err != nil {
			t.Fatal(err)
		}
		si, err := appkit.SoleSite(res, "Foo.send")
		if err != nil {
			t.Fatal(err)
		}
		cs, err := appkit.Register(cluster, rmi.LevelSiteReuseCycle, si)
		if err != nil {
			t.Fatal(err)
		}
		ref := cluster.Node(1).Export(&rmi.Service{Name: "Foo", Methods: map[string]rmi.Method{
			"send": func(call *rmi.Call, args []model.Value) []model.Value { return nil },
		}})

		nodeClass, ok := res.ModelClass("LinkedList")
		if !ok {
			t.Fatal("LinkedList class missing")
		}
		var head *model.Object
		for i := 0; i < 100; i++ {
			x := model.New(nodeClass)
			x.Fields[0] = model.Ref(head)
			head = x
		}

		caller := cluster.Node(0)
		argv := []model.Value{model.Ref(head)}
		steadyState(t, "linkedlist", func() {
			if _, err := cs.Invoke(caller, ref, argv); err != nil {
				t.Fatal(err)
			}
		})
	})
}
