package micro

import (
	"testing"

	"cormi/internal/apps/appkit"
	"cormi/internal/core"
	"cormi/internal/model"
	"cormi/internal/race"
	"cormi/internal/rmi"
	"cormi/internal/trace"
)

// attribAllocBudget bounds per-invocation heap allocations on the full
// RMI path with a tracer attached and tail-latency attribution fully
// live: per-phase histograms, blame counters, the adaptive exemplar
// threshold armed (warmed up past ExemplarWarmup). The exemplar floor
// is set astronomically high so capture stays armed but never fires —
// the capture path is allowed to allocate precisely because crossing a
// p99 threshold is rare by construction; the always-on attribution
// accounting itself must stay allocation-free. The budget is the
// method-launch goroutine, the per-call Call struct, and the pooled
// span pair's lifecycle — `make verify-attrib` gates on it.
const attribAllocBudget = 3.0

// TestAttributionSteadyStateAllocs proves always-on attribution adds
// zero steady-state allocations to the hot path: blame classification,
// histogram observes and the threshold check all run on every call
// here, with exemplar capture armed but not firing.
func TestAttributionSteadyStateAllocs(t *testing.T) {
	if race.Enabled {
		t.Skip("race instrumentation allocates on otherwise allocation-free paths")
	}
	tr := trace.New(trace.Config{
		RingSize:       1024,
		ExemplarWarmup: 8,
		// A floor no real call reaches: the threshold arms (capture
		// stays live on every close) but never trips.
		ExemplarMinNS: 1 << 60,
	})
	cluster := rmi.New(2, rmi.WithTracer(tr))
	defer cluster.Close()
	res, err := core.CompileInto(LinkedListSrc, cluster.Registry)
	if err != nil {
		t.Fatal(err)
	}
	si, err := appkit.SoleSite(res, "Foo.send")
	if err != nil {
		t.Fatal(err)
	}
	cs, err := appkit.Register(cluster, rmi.LevelSiteReuseCycle, si)
	if err != nil {
		t.Fatal(err)
	}
	ref := cluster.Node(1).Export(&rmi.Service{Name: "Foo", Methods: map[string]rmi.Method{
		"send": func(call *rmi.Call, args []model.Value) []model.Value { return nil },
	}})

	nodeClass, ok := res.ModelClass("LinkedList")
	if !ok {
		t.Fatal("LinkedList class missing")
	}
	var head *model.Object
	for i := 0; i < 100; i++ {
		x := model.New(nodeClass)
		x.Fields[0] = model.Ref(head)
		head = x
	}

	caller := cluster.Node(0)
	argv := []model.Value{model.Ref(head)}
	invoke := func() {
		if _, err := cs.Invoke(caller, ref, argv); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 50; i++ {
		invoke() // steady state; also warms past ExemplarWarmup
	}
	avg := testing.AllocsPerRun(300, invoke)
	t.Logf("traced+attributed: %.2f allocs per invocation", avg)
	if avg > attribAllocBudget {
		t.Fatalf("traced hot path: %.2f allocs per steady-state invocation, budget %.1f",
			avg, attribAllocBudget)
	}

	// Prove the run exercised what it claims: the threshold armed at
	// the floor (capture live on every close) and never fired.
	var site *trace.SiteAttribution
	attr := tr.Attribution()
	for i := range attr {
		if attr[i].Calls > 0 {
			site = &attr[i]
		}
	}
	if site == nil {
		t.Fatal("no attributed site after the measured run")
	}
	if site.ThresholdNS != 1<<60 {
		t.Errorf("exemplar threshold = %d, want armed at the 1<<60 floor", site.ThresholdNS)
	}
	if tr.Exemplars() != 0 {
		t.Errorf("%d exemplars captured; the floor should keep capture silent", tr.Exemplars())
	}
	if len(site.Blame) == 0 {
		t.Error("no blame recorded by the measured calls")
	}
}
