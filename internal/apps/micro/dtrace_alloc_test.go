package micro

import (
	"testing"

	"cormi/internal/apps/appkit"
	"cormi/internal/core"
	"cormi/internal/model"
	"cormi/internal/race"
	"cormi/internal/rmi"
	"cormi/internal/trace"
)

// dtraceUntracedBudget bounds per-invocation heap allocations on the
// full RMI path with distributed-trace sampling ARMED but not firing:
// the head-sampling decision (one atomic tick + modulo) runs on every
// root call, and the trace-context branch of the frame writer is live
// but not taken. This is the same 3-alloc budget the attribution gate
// holds — arming sampling must not cost the untraced hot path anything.
// `make verify-dtrace` gates on it.
const dtraceUntracedBudget = 3.0

// dtraceSampledBudget bounds the sampled path: trace-ID allocation,
// span identity stamping, the 17-byte wire context on the call frame,
// and both spans' insertion into the bounded per-trace store. Bucket
// recycling makes the steady state match the untraced path's 2
// allocs/op (the FIFO order array reallocates only amortized); the
// budget leaves one alloc of headroom so real growth (a per-span copy,
// an unpooled buffer) still fails.
const dtraceSampledBudget = 4.0

// dtraceCluster builds the 2-node micro cluster used by both gates.
func dtraceCluster(t *testing.T, tr *trace.Tracer) (*rmi.Cluster, *rmi.CallSite, rmi.Ref, []model.Value) {
	t.Helper()
	cluster := rmi.New(2, rmi.WithTracer(tr))
	t.Cleanup(cluster.Close)
	res, err := core.CompileInto(LinkedListSrc, cluster.Registry)
	if err != nil {
		t.Fatal(err)
	}
	si, err := appkit.SoleSite(res, "Foo.send")
	if err != nil {
		t.Fatal(err)
	}
	cs, err := appkit.Register(cluster, rmi.LevelSiteReuseCycle, si)
	if err != nil {
		t.Fatal(err)
	}
	ref := cluster.Node(1).Export(&rmi.Service{Name: "Foo", Methods: map[string]rmi.Method{
		"send": func(call *rmi.Call, args []model.Value) []model.Value { return nil },
	}})

	nodeClass, ok := res.ModelClass("LinkedList")
	if !ok {
		t.Fatal("LinkedList class missing")
	}
	var head *model.Object
	for i := 0; i < 100; i++ {
		x := model.New(nodeClass)
		x.Fields[0] = model.Ref(head)
		head = x
	}
	return cluster, cs, ref, []model.Value{model.Ref(head)}
}

// TestUntracedWithSamplingArmedAllocs proves head sampling is free for
// the calls it does not pick: with SampleEvery set astronomically high,
// every steady-state call runs the sampling decision, skips the trace
// context, and must stay within the same 3-alloc budget as a tracer
// with no sampling configured at all.
func TestUntracedWithSamplingArmedAllocs(t *testing.T) {
	if race.Enabled {
		t.Skip("race instrumentation allocates on otherwise allocation-free paths")
	}
	tr := trace.New(trace.Config{
		RingSize: 1024,
		// Armed, near-never firing: the first root call samples (tick
		// 0), every call in the measured window does not.
		SampleEvery: 1 << 40,
	})
	cluster, cs, ref, argv := dtraceCluster(t, tr)
	_ = cluster
	caller := cluster.Node(0)
	invoke := func() {
		if _, err := cs.Invoke(caller, ref, argv); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 50; i++ {
		invoke()
	}
	avg := testing.AllocsPerRun(300, invoke)
	t.Logf("sampling armed, untraced: %.2f allocs per invocation", avg)
	if avg > dtraceUntracedBudget {
		t.Fatalf("untraced hot path with sampling armed: %.2f allocs per invocation, budget %.1f",
			avg, dtraceUntracedBudget)
	}
	// Prove arming worked: exactly the one head-sampled warmup trace.
	retained, _, _ := tr.TraceStoreStats()
	if retained != 1 {
		t.Errorf("%d traces retained, want exactly the first warmup call's", retained)
	}
}

// TestSampledPathAllocs pins the cost of the sampled path itself: with
// SampleEvery=1 every call allocates a trace, stamps both spans, ships
// the wire context, and lands two span records in the store. The
// ceiling has headroom for store bookkeeping noise but catches real
// per-span growth.
func TestSampledPathAllocs(t *testing.T) {
	if race.Enabled {
		t.Skip("race instrumentation allocates on otherwise allocation-free paths")
	}
	tr := trace.New(trace.Config{RingSize: 1024, SampleEvery: 1})
	cluster, cs, ref, argv := dtraceCluster(t, tr)
	caller := cluster.Node(0)
	invoke := func() {
		if _, err := cs.Invoke(caller, ref, argv); err != nil {
			t.Fatal(err)
		}
	}
	// Warm past the store's MaxTraces so measurement runs in the
	// steady state where eviction recycles buckets.
	for i := 0; i < 300; i++ {
		invoke()
	}
	avg := testing.AllocsPerRun(300, invoke)
	t.Logf("sampled: %.2f allocs per invocation", avg)
	if avg > dtraceSampledBudget {
		t.Fatalf("sampled path: %.2f allocs per invocation, budget %.1f",
			avg, dtraceSampledBudget)
	}
	retained, evicted, dropped := tr.TraceStoreStats()
	if retained == 0 || evicted == 0 {
		t.Errorf("store retained=%d evicted=%d; the measured run should cycle the FIFO", retained, evicted)
	}
	if dropped != 0 {
		t.Errorf("%d spans dropped; single-span traces should never hit the per-trace cap", dropped)
	}
}
