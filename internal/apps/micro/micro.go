// Package micro implements the paper's two micro-benchmarks (§5.1):
// transmitting a linked list of 100 elements (Figure 14, Table 1) and
// transmitting a 16×16 two-dimensional array of doubles (Figure 12,
// Table 2) between two nodes.
//
// Each benchmark embeds its MiniJP communication sketch, compiles it
// with the optimizing RMI compiler, and registers the derived
// call-site plans on the runtime at the requested optimization level —
// so the serializer behavior measured here is exactly what the
// compiler decided, not hand-written configuration.
package micro

import (
	"fmt"
	"sync/atomic"

	"cormi/internal/apps/appkit"
	"cormi/internal/core"
	"cormi/internal/model"
	"cormi/internal/rmi"
)

// LinkedListSrc is the Figure 14 program.
const LinkedListSrc = `
class LinkedList {
	LinkedList Next;
	LinkedList(LinkedList n) { this.Next = n; }
}
remote class Foo {
	void send(LinkedList l) { }
	static void benchmark() {
		LinkedList head = null;
		for (int i = 0; i < 100; i = i + 1) {
			head = new LinkedList(head);
		}
		Foo f = new Foo();
		f.send(head);
	}
}
`

// ArrayBenchSrc is the Figure 12 program.
const ArrayBenchSrc = `
remote class ArrayBench {
	void send(double[][] arr) { }
	static void benchmark() {
		double[][] arr = new double[16][16];
		ArrayBench f = new ArrayBench();
		f.send(arr);
	}
}
`

// LinkedListOutcome extends the run result with correctness witnesses.
type LinkedListOutcome struct {
	appkit.RunResult
	// ElementsSeen is the list length observed by the receiver on the
	// last invocation.
	ElementsSeen int64
	// Executions counts how many times the user method body actually
	// ran; under fault injection it must equal iters exactly — a
	// retransmitted call that re-executed would inflate it.
	Executions int64
}

// RunLinkedList transmits a linked list of elems nodes iters times
// from node 0 to node 1 under the given optimization level (Table 1
// uses elems=100). Extra cluster options (fault injection, call
// policies) apply to the run.
func RunLinkedList(level rmi.OptLevel, elems, iters int, clusterOpts ...rmi.Option) (LinkedListOutcome, error) {
	return runLinkedList(level, elems, iters, core.Options{}, clusterOpts...)
}

// RunLinkedListRefined is RunLinkedList with the linear-list
// refinement enabled — the paper's future-work fix for the list being
// conservatively flagged cyclic. With it, the '+ cycle' rows of
// Table 1 gain over their bases instead of matching them.
func RunLinkedListRefined(level rmi.OptLevel, elems, iters int, clusterOpts ...rmi.Option) (LinkedListOutcome, error) {
	return runLinkedList(level, elems, iters, core.Options{LinearListRefinement: true}, clusterOpts...)
}

func runLinkedList(level rmi.OptLevel, elems, iters int, opts core.Options, clusterOpts ...rmi.Option) (LinkedListOutcome, error) {
	cluster := rmi.New(2, clusterOpts...)
	defer cluster.Close()

	res, err := core.CompileOpts(LinkedListSrc, cluster.Registry, opts)
	if err != nil {
		return LinkedListOutcome{}, err
	}
	si, err := appkit.SoleSite(res, "Foo.send")
	if err != nil {
		return LinkedListOutcome{}, err
	}
	cs, err := appkit.Register(cluster, level, si)
	if err != nil {
		return LinkedListOutcome{}, err
	}

	var seen, execs atomic.Int64
	svc := &rmi.Service{Name: "Foo", Methods: map[string]rmi.Method{
		"send": func(call *rmi.Call, args []model.Value) []model.Value {
			execs.Add(1)
			var n int64
			for o := args[0].O; o != nil; o = o.Fields[0].O {
				n++
			}
			seen.Store(n)
			return nil
		},
	}}
	ref := cluster.Node(1).Export(svc)

	nodeClass, ok := res.ModelClass("LinkedList")
	if !ok {
		return LinkedListOutcome{}, fmt.Errorf("micro: LinkedList class missing")
	}
	var head *model.Object
	for i := 0; i < elems; i++ {
		x := model.New(nodeClass)
		x.Fields[0] = model.Ref(head)
		head = x
	}

	caller := cluster.Node(0)
	for i := 0; i < iters; i++ {
		if _, err := cs.Invoke(caller, ref, []model.Value{model.Ref(head)}); err != nil {
			return LinkedListOutcome{}, err
		}
	}
	return LinkedListOutcome{
		RunResult:    appkit.Collect(cluster),
		ElementsSeen: seen.Load(),
		Executions:   execs.Load(),
	}, nil
}

// ArrayOutcome extends the run result with correctness witnesses.
type ArrayOutcome struct {
	appkit.RunResult
	// SumSeen is the element sum observed by the receiver on the last
	// invocation.
	SumSeen float64
	// Executions counts user-method body executions (see
	// LinkedListOutcome.Executions).
	Executions int64
}

// RunArray transmits a size×size double array iters times from node 0
// to node 1 (Table 2 uses size=16). Extra cluster options (fault
// injection, call policies) apply to the run.
func RunArray(level rmi.OptLevel, size, iters int, clusterOpts ...rmi.Option) (ArrayOutcome, error) {
	cluster := rmi.New(2, clusterOpts...)
	defer cluster.Close()

	res, err := core.CompileInto(ArrayBenchSrc, cluster.Registry)
	if err != nil {
		return ArrayOutcome{}, err
	}
	si, err := appkit.SoleSite(res, "ArrayBench.send")
	if err != nil {
		return ArrayOutcome{}, err
	}
	cs, err := appkit.Register(cluster, level, si)
	if err != nil {
		return ArrayOutcome{}, err
	}

	sum := make(chan float64, 1)
	var execs atomic.Int64
	svc := &rmi.Service{Name: "ArrayBench", Methods: map[string]rmi.Method{
		"send": func(call *rmi.Call, args []model.Value) []model.Value {
			execs.Add(1)
			var s float64
			for _, row := range args[0].O.Refs {
				for _, v := range row.Doubles {
					s += v
				}
			}
			select {
			case <-sum:
			default:
			}
			sum <- s
			return nil
		},
	}}
	ref := cluster.Node(1).Export(svc)

	arr := model.NewArray(cluster.Registry.MustByName("double[][]"), size)
	var want float64
	for i := range arr.Refs {
		row := model.NewArray(cluster.Registry.DoubleArray(), size)
		for j := range row.Doubles {
			row.Doubles[j] = float64(i + j)
			want += row.Doubles[j]
		}
		arr.Refs[i] = row
	}

	caller := cluster.Node(0)
	for i := 0; i < iters; i++ {
		if _, err := cs.Invoke(caller, ref, []model.Value{model.Ref(arr)}); err != nil {
			return ArrayOutcome{}, err
		}
	}
	out := ArrayOutcome{RunResult: appkit.Collect(cluster), Executions: execs.Load()}
	select {
	case out.SumSeen = <-sum:
	default:
	}
	if iters > 0 && out.SumSeen != want {
		return out, fmt.Errorf("micro: receiver saw sum %g, want %g", out.SumSeen, want)
	}
	return out, nil
}
