package micro

import (
	"testing"

	"cormi/internal/rmi"
)

func TestLinkedListAllLevels(t *testing.T) {
	secs := map[rmi.OptLevel]float64{}
	for _, level := range rmi.AllLevels {
		out, err := RunLinkedList(level, 100, 20)
		if err != nil {
			t.Fatalf("%v: %v", level, err)
		}
		if out.ElementsSeen != 100 {
			t.Fatalf("%v: receiver saw %d elements", level, out.ElementsSeen)
		}
		if out.Stats.RemoteRPCs != 20 {
			t.Fatalf("%v: remote rpcs = %d", level, out.Stats.RemoteRPCs)
		}
		secs[level] = out.Seconds
	}
	// Table 1 shape: site beats class; reuse beats site; cycle rows
	// match their cycle-less counterparts (the list stays cyclic).
	if !(secs[rmi.LevelSite] < secs[rmi.LevelClass]) {
		t.Fatalf("site %.6f !< class %.6f", secs[rmi.LevelSite], secs[rmi.LevelClass])
	}
	if !(secs[rmi.LevelSiteReuse] < secs[rmi.LevelSite]) {
		t.Fatalf("site+reuse %.6f !< site %.6f", secs[rmi.LevelSiteReuse], secs[rmi.LevelSite])
	}
	relClose := func(a, b float64) bool {
		d := a - b
		if d < 0 {
			d = -d
		}
		return d/b < 0.02
	}
	if !relClose(secs[rmi.LevelSiteCycle], secs[rmi.LevelSite]) {
		t.Fatalf("cycle elimination changed the cyclic list: %.6f vs %.6f",
			secs[rmi.LevelSiteCycle], secs[rmi.LevelSite])
	}
	if !relClose(secs[rmi.LevelSiteReuseCycle], secs[rmi.LevelSiteReuse]) {
		t.Fatalf("cycle elimination changed the cyclic list (reuse rows): %.6f vs %.6f",
			secs[rmi.LevelSiteReuseCycle], secs[rmi.LevelSiteReuse])
	}
}

func TestLinkedListReuseStats(t *testing.T) {
	out, err := RunLinkedList(rmi.LevelSiteReuseCycle, 100, 10)
	if err != nil {
		t.Fatal(err)
	}
	// First call allocates 100, the other 9 reuse 100 each.
	if out.Stats.AllocObjects != 100 || out.Stats.ReusedObjs != 900 {
		t.Fatalf("alloc=%d reused=%d", out.Stats.AllocObjects, out.Stats.ReusedObjs)
	}
	// Cycle detection stays on for the (conservatively cyclic) list.
	if out.Stats.CycleTables == 0 {
		t.Fatal("cycle tables eliminated for a cyclic-flagged argument")
	}
}

func TestArrayAllLevels(t *testing.T) {
	secs := map[rmi.OptLevel]float64{}
	for _, level := range rmi.AllLevels {
		out, err := RunArray(level, 16, 20)
		if err != nil {
			t.Fatalf("%v: %v", level, err)
		}
		secs[level] = out.Seconds
	}
	// Table 2 shape: every optimization helps; all-enabled wins.
	if !(secs[rmi.LevelSite] < secs[rmi.LevelClass]) {
		t.Fatal("site not faster than class")
	}
	if !(secs[rmi.LevelSiteCycle] < secs[rmi.LevelSite]) {
		t.Fatal("cycle elimination did not help the acyclic array")
	}
	if !(secs[rmi.LevelSiteReuse] < secs[rmi.LevelSite]) {
		t.Fatal("reuse did not help")
	}
	if !(secs[rmi.LevelSiteReuseCycle] < secs[rmi.LevelSiteCycle]) ||
		!(secs[rmi.LevelSiteReuseCycle] < secs[rmi.LevelSiteReuse]) {
		t.Fatal("all optimizations together should win")
	}
}

func TestArrayCycleAndReuseStats(t *testing.T) {
	out, err := RunArray(rmi.LevelSiteReuseCycle, 16, 10)
	if err != nil {
		t.Fatal(err)
	}
	if out.Stats.CycleTables != 0 || out.Stats.CycleLookups != 0 {
		t.Fatalf("acyclic array still paid cycle work: %+v", out.Stats)
	}
	// 17 objects per message (outer + 16 rows): first call allocates,
	// the rest reuse.
	if out.Stats.AllocObjects != 17 || out.Stats.ReusedObjs != 9*17 {
		t.Fatalf("alloc=%d reused=%d", out.Stats.AllocObjects, out.Stats.ReusedObjs)
	}
	// Site mode sends no per-object type info.
	if out.Stats.TypeBytes != 0 {
		t.Fatalf("type bytes = %d", out.Stats.TypeBytes)
	}
}

func TestClassModeBaselineStats(t *testing.T) {
	out, err := RunArray(rmi.LevelClass, 16, 5)
	if err != nil {
		t.Fatal(err)
	}
	if out.Stats.TypeBytes == 0 || out.Stats.SerializerCalls == 0 {
		t.Fatalf("baseline missing its overhead: %+v", out.Stats)
	}
	if out.Stats.ReusedObjs != 0 {
		t.Fatal("baseline must not reuse")
	}
	if out.Stats.CycleTables == 0 {
		t.Fatal("baseline always creates cycle tables")
	}
}

func TestMismatchedSizesStillCorrect(t *testing.T) {
	// Different sizes across runs exercise the Figure 13 resize path.
	for _, size := range []int{4, 8, 16} {
		if _, err := RunArray(rmi.LevelSiteReuseCycle, size, 3); err != nil {
			t.Fatalf("size %d: %v", size, err)
		}
	}
}
