package micro

import (
	"testing"

	"cormi/internal/rmi"
)

// TestRefinedListDropsCycleWork validates the linear-list refinement
// end to end: with it, the conservatively-cyclic verdict of Table 1
// disappears and '+ cycle' actually helps the list benchmark.
func TestRefinedListDropsCycleWork(t *testing.T) {
	plain, err := RunLinkedList(rmi.LevelSiteCycle, 100, 10)
	if err != nil {
		t.Fatal(err)
	}
	refined, err := RunLinkedListRefined(rmi.LevelSiteCycle, 100, 10)
	if err != nil {
		t.Fatal(err)
	}
	if plain.Stats.CycleLookups == 0 {
		t.Fatal("unrefined list should still pay cycle lookups")
	}
	if refined.Stats.CycleLookups != 0 || refined.Stats.CycleTables != 0 {
		t.Fatalf("refined list still paid cycle work: %+v", refined.Stats)
	}
	if !(refined.Seconds < plain.Seconds) {
		t.Fatalf("refinement did not help: %.6f vs %.6f", refined.Seconds, plain.Seconds)
	}
	if refined.ElementsSeen != 100 {
		t.Fatalf("receiver saw %d elements", refined.ElementsSeen)
	}

	// Correctness is settings-independent: all levels still deliver
	// the full list.
	for _, level := range rmi.AllLevels {
		out, err := RunLinkedListRefined(level, 50, 3)
		if err != nil {
			t.Fatalf("%v: %v", level, err)
		}
		if out.ElementsSeen != 50 {
			t.Fatalf("%v: receiver saw %d elements", level, out.ElementsSeen)
		}
	}
}
