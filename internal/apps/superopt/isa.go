// Package superopt implements the parallel superoptimizer of §5.3
// (Tables 5/6), after Massalin: a producer thread enumerates all valid
// instruction sequences up to three instructions long and pushes them
// over RMI to tester threads (one per machine, fed round robin through
// bounded queues); testers execute each candidate and the target on
// the same random register states and record sequences whose final
// states always agree.
//
// A test sequence is shipped exactly as the paper describes: "a
// program object, an instruction array object, and one to three
// instruction objects each containing three operand objects" — an
// acyclic graph, so the compiler removes all dynamic cycle checks; the
// tester queues the received program, so the argument escapes and is
// not eligible for reuse.
package superopt

import "fmt"

// Op is a machine operation of the toy ISA.
type Op uint8

const (
	OpMov   Op = iota // dst = src
	OpAdd             // dst += src
	OpSub             // dst -= src
	OpAnd             // dst &= src
	OpOr              // dst |= src
	OpXor             // dst ^= src
	OpNot             // dst = ^dst
	OpNeg             // dst = -dst
	OpShl             // dst <<= 1
	OpShr             // dst >>= 1 (logical)
	OpLoadI           // dst = imm
)

var opNames = [...]string{"mov", "add", "sub", "and", "or", "xor", "not", "neg", "shl", "shr", "loadi"}

func (o Op) String() string {
	if int(o) < len(opNames) {
		return opNames[o]
	}
	return fmt.Sprintf("op%d", uint8(o))
}

// IsBinary reports whether the op reads a source register.
func (o Op) IsBinary() bool {
	switch o {
	case OpMov, OpAdd, OpSub, OpAnd, OpOr, OpXor:
		return true
	}
	return false
}

// IsImm reports whether the op takes an immediate.
func (o Op) IsImm() bool { return o == OpLoadI }

// Insn is one instruction.
type Insn struct {
	Op       Op
	Dst, Src int
	Imm      int64
}

func (i Insn) String() string {
	switch {
	case i.Op.IsBinary():
		return fmt.Sprintf("%s r%d, r%d", i.Op, i.Dst, i.Src)
	case i.Op.IsImm():
		return fmt.Sprintf("%s r%d, #%d", i.Op, i.Dst, i.Imm)
	default:
		return fmt.Sprintf("%s r%d", i.Op, i.Dst)
	}
}

// Seq is an instruction sequence.
type Seq []Insn

func (s Seq) String() string {
	out := ""
	for i, in := range s {
		if i > 0 {
			out += "; "
		}
		out += in.String()
	}
	return out
}

// Eval executes the sequence on regs in place.
func (s Seq) Eval(regs []int64) {
	for _, in := range s {
		switch in.Op {
		case OpMov:
			regs[in.Dst] = regs[in.Src]
		case OpAdd:
			regs[in.Dst] += regs[in.Src]
		case OpSub:
			regs[in.Dst] -= regs[in.Src]
		case OpAnd:
			regs[in.Dst] &= regs[in.Src]
		case OpOr:
			regs[in.Dst] |= regs[in.Src]
		case OpXor:
			regs[in.Dst] ^= regs[in.Src]
		case OpNot:
			regs[in.Dst] = ^regs[in.Dst]
		case OpNeg:
			regs[in.Dst] = -regs[in.Dst]
		case OpShl:
			regs[in.Dst] <<= 1
		case OpShr:
			regs[in.Dst] = int64(uint64(regs[in.Dst]) >> 1)
		case OpLoadI:
			regs[in.Dst] = in.Imm
		}
	}
}

// xorshift is a tiny deterministic PRNG so producers and testers agree
// on test vectors without sharing state.
type xorshift uint64

func (x *xorshift) next() int64 {
	v := uint64(*x)
	v ^= v << 13
	v ^= v >> 7
	v ^= v << 17
	*x = xorshift(v)
	return int64(v)
}

// Equivalent tests observational equivalence of two sequences on
// `trials` random register states over nregs registers.
func Equivalent(a, b Seq, nregs, trials int, seed uint64) bool {
	rng := xorshift(seed | 1)
	ra := make([]int64, nregs)
	rb := make([]int64, nregs)
	for t := 0; t < trials; t++ {
		for i := 0; i < nregs; i++ {
			v := rng.next()
			ra[i], rb[i] = v, v
		}
		a.Eval(ra)
		b.Eval(rb)
		for i := 0; i < nregs; i++ {
			if ra[i] != rb[i] {
				return false
			}
		}
	}
	return true
}

// Enumerate produces every valid single instruction over the given op
// set, register count and immediate pool.
func Enumerate(ops []Op, nregs int, imms []int64) []Insn {
	var out []Insn
	for _, op := range ops {
		for dst := 0; dst < nregs; dst++ {
			switch {
			case op.IsBinary():
				for src := 0; src < nregs; src++ {
					out = append(out, Insn{Op: op, Dst: dst, Src: src})
				}
			case op.IsImm():
				for _, imm := range imms {
					out = append(out, Insn{Op: op, Dst: dst, Imm: imm})
				}
			default:
				out = append(out, Insn{Op: op, Dst: dst})
			}
		}
	}
	return out
}
