package superopt

import (
	"fmt"
	"sort"
	"sync"

	"cormi/internal/apps/appkit"
	"cormi/internal/core"
	"cormi/internal/model"
	"cormi/internal/rmi"
)

// Src is the MiniJP communication sketch: the program/instruction/
// operand object graph and the producer→tester RMI surface.
const Src = `
class Operand { int kind; int val; }
class Instr {
	int op;
	Operand a;
	Operand b;
	Operand c;
}
class Program { Instr[] insns; }
remote class Tester {
	Program queued;
	void test(Program p) {
		this.queued = p;
	}
	int match_count() { return 0; }
}
class Generator {
	static void produce(Tester t) {
		Program p = new Program();
		p.insns = new Instr[3];
		for (int i = 0; i < 3; i = i + 1) {
			Instr ins = new Instr();
			ins.a = new Operand();
			ins.b = new Operand();
			ins.c = new Operand();
			p.insns[i] = ins;
		}
		t.test(p);
		int n = t.match_count();
		int use = n + 1;
	}
	static void main() {
		Tester t = new Tester();
		Generator.produce(t);
	}
}
`

// evalInsnNS is the virtual cost of interpreting one instruction
// during an equivalence trial.
const evalInsnNS = 400

// Params configures a search.
type Params struct {
	Target Seq
	MaxLen int
	Ops    []Op
	NRegs  int
	Imms   []int64
	Trials int
	Nodes  int
	// QueueDepth bounds each tester's queue; the producer blocks when
	// a queue is full, exactly as in the paper.
	QueueDepth int
}

// DefaultParams returns a search for a cheaper form of r0 = r0 + r0
// over two registers, matching the paper's ≤3-instruction exhaustive
// setup at a test-friendly scale.
func DefaultParams() Params {
	return Params{
		Target:     Seq{{Op: OpAdd, Dst: 0, Src: 0}},
		MaxLen:     2,
		Ops:        []Op{OpMov, OpAdd, OpSub, OpXor, OpShl, OpShr, OpLoadI},
		NRegs:      2,
		Imms:       []int64{0, 1},
		Trials:     8,
		Nodes:      2,
		QueueDepth: 32,
	}
}

// Outcome is the benchmark result plus the found equivalences.
type Outcome struct {
	appkit.RunResult
	Tested  int64
	Matches []string // canonical renderings of matching sequences
}

// Search runs the exhaustive search at the given optimization level.
func Search(level rmi.OptLevel, p Params) (Outcome, error) {
	if p.Nodes < 1 || p.MaxLen < 1 {
		return Outcome{}, fmt.Errorf("superopt: bad params")
	}
	cluster := rmi.New(p.Nodes)
	defer cluster.Close()
	res, err := core.CompileInto(Src, cluster.Registry)
	if err != nil {
		return Outcome{}, err
	}
	testSite := res.SiteByName("Generator.produce.1")
	countSite := res.SiteByName("Generator.produce.2")
	if testSite == nil || countSite == nil {
		return Outcome{}, fmt.Errorf("superopt: sketch sites missing")
	}
	csTest, err := appkit.Register(cluster, level, testSite)
	if err != nil {
		return Outcome{}, err
	}
	csCount, err := appkit.Register(cluster, level, countSite)
	if err != nil {
		return Outcome{}, err
	}

	enc := newCodec(res)

	// One tester per machine, as in the paper.
	testers := make([]*tester, p.Nodes)
	refs := make([]rmi.Ref, p.Nodes)
	for w := 0; w < p.Nodes; w++ {
		testers[w] = &tester{target: p.Target, trials: p.Trials, nregs: p.NRegs, codec: enc}
		refs[w] = cluster.Node(w).Export(testers[w].service())
	}

	// Per-tester bounded queues with feeder goroutines: the producer
	// blocks on a full queue, the feeder performs the actual RMI.
	queues := make([]chan Seq, p.Nodes)
	var wg sync.WaitGroup
	errs := make(chan error, p.Nodes)
	producerNode := cluster.Node(0)
	for w := 0; w < p.Nodes; w++ {
		queues[w] = make(chan Seq, p.QueueDepth)
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for seq := range queues[w] {
				prog := enc.encode(seq)
				if _, err := csTest.Invoke(producerNode, refs[w], []model.Value{model.Ref(prog)}); err != nil {
					errs <- err
					return
				}
			}
		}(w)
	}

	// The producer: exhaustive enumeration, round-robin distribution.
	insns := Enumerate(p.Ops, p.NRegs, p.Imms)
	var tested int64
	next := 0
	var emit func(prefix Seq)
	emit = func(prefix Seq) {
		if len(prefix) > 0 {
			queues[next] <- append(Seq(nil), prefix...)
			next = (next + 1) % p.Nodes
			tested++
		}
		if len(prefix) == p.MaxLen {
			return
		}
		for _, in := range insns {
			emit(append(prefix, in))
		}
	}
	emit(nil)
	for _, q := range queues {
		close(q)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		return Outcome{}, err
	}

	// Present the list of equal sequences at termination; the count is
	// fetched over RMI (the sketch's match_count site).
	var total int64
	var all []string
	for w := 0; w < p.Nodes; w++ {
		rets, err := csCount.Invoke(producerNode, refs[w], nil)
		if err != nil {
			return Outcome{}, err
		}
		total += rets[0].I
		all = append(all, testers[w].matchStrings()...)
	}
	if int(total) != len(all) {
		return Outcome{}, fmt.Errorf("superopt: RMI count %d != local matches %d", total, len(all))
	}
	sort.Strings(all)

	out := Outcome{RunResult: appkit.Collect(cluster), Tested: tested, Matches: all}
	return out, nil
}

// tester is one machine's tester thread state.
type tester struct {
	target  Seq
	trials  int
	nregs   int
	codec   *codec
	mu      sync.Mutex
	matches []Seq
}

func (t *tester) service() *rmi.Service {
	return &rmi.Service{
		Name: "Tester",
		Methods: map[string]rmi.Method{
			"test": func(call *rmi.Call, args []model.Value) []model.Value {
				seq := t.codec.decode(args[0].O)
				// Virtual cost of executing candidate + target over
				// the trial vectors.
				call.Compute(int64(t.trials*(len(seq)+len(t.target))) * evalInsnNS)
				if Equivalent(t.target, seq, t.nregs, t.trials, 0x9E3779B97F4A7C15) {
					t.mu.Lock()
					t.matches = append(t.matches, seq)
					t.mu.Unlock()
				}
				return nil
			},
			"match_count": func(call *rmi.Call, args []model.Value) []model.Value {
				t.mu.Lock()
				n := len(t.matches)
				t.mu.Unlock()
				return []model.Value{model.Int(int64(n))}
			},
		},
	}
}

func (t *tester) matchStrings() []string {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]string, len(t.matches))
	for i, m := range t.matches {
		out[i] = m.String()
	}
	return out
}

// codec translates between Go sequences and the MiniJP object graph
// (Program → Instr[] → Instr → 3 Operands).
type codec struct {
	program, instr, operand, instrArr *model.Class
}

func newCodec(res *core.Result) *codec {
	prog, _ := res.ModelClass("Program")
	ins, _ := res.ModelClass("Instr")
	op, _ := res.ModelClass("Operand")
	arr := res.Registry.ArrayOf(ins)
	return &codec{program: prog, instr: ins, operand: op, instrArr: arr}
}

func (c *codec) operandOf(kind, val int64) *model.Object {
	o := model.New(c.operand)
	o.Fields[0] = model.Int(kind)
	o.Fields[1] = model.Int(val)
	return o
}

func (c *codec) encode(seq Seq) *model.Object {
	p := model.New(c.program)
	arr := model.NewArray(c.instrArr, len(seq))
	for i, in := range seq {
		o := model.New(c.instr)
		o.Fields[0] = model.Int(int64(in.Op))
		o.Fields[1] = model.Ref(c.operandOf(0, int64(in.Dst)))
		o.Fields[2] = model.Ref(c.operandOf(0, int64(in.Src)))
		o.Fields[3] = model.Ref(c.operandOf(1, in.Imm))
		arr.Refs[i] = o
	}
	p.Fields[0] = model.Ref(arr)
	return p
}

func (c *codec) decode(p *model.Object) Seq {
	arr := p.Fields[0].O
	seq := make(Seq, len(arr.Refs))
	for i, o := range arr.Refs {
		seq[i] = Insn{
			Op:  Op(o.Fields[0].I),
			Dst: int(o.Fields[1].O.Fields[1].I),
			Src: int(o.Fields[2].O.Fields[1].I),
			Imm: o.Fields[3].O.Fields[1].I,
		}
	}
	return seq
}
