package superopt

import (
	"strings"
	"testing"

	"cormi/internal/core"
	"cormi/internal/rmi"
)

func TestISAEvalBasics(t *testing.T) {
	regs := []int64{3, 5}
	Seq{{Op: OpAdd, Dst: 0, Src: 1}}.Eval(regs)
	if regs[0] != 8 {
		t.Fatalf("add: %v", regs)
	}
	Seq{{Op: OpShl, Dst: 0}}.Eval(regs)
	if regs[0] != 16 {
		t.Fatalf("shl: %v", regs)
	}
	Seq{{Op: OpLoadI, Dst: 1, Imm: -7}, {Op: OpNeg, Dst: 1}}.Eval(regs)
	if regs[1] != 7 {
		t.Fatalf("loadi/neg: %v", regs)
	}
	Seq{{Op: OpNot, Dst: 1}, {Op: OpShr, Dst: 1}, {Op: OpMov, Dst: 0, Src: 1},
		{Op: OpSub, Dst: 0, Src: 1}, {Op: OpXor, Dst: 0, Src: 0},
		{Op: OpAnd, Dst: 0, Src: 1}, {Op: OpOr, Dst: 0, Src: 1}}.Eval(regs)
	if regs[0] != regs[1] {
		t.Fatalf("chain: %v", regs)
	}
}

func TestEquivalence(t *testing.T) {
	double := Seq{{Op: OpAdd, Dst: 0, Src: 0}}
	shl := Seq{{Op: OpShl, Dst: 0}}
	if !Equivalent(double, shl, 2, 16, 42) {
		t.Fatal("2*r0 and r0<<1 must be equivalent")
	}
	mov := Seq{{Op: OpMov, Dst: 0, Src: 1}}
	if Equivalent(double, mov, 2, 16, 42) {
		t.Fatal("mov misjudged equivalent")
	}
	// Sequences differing only in a scratch register must differ.
	clobber := Seq{{Op: OpShl, Dst: 0}, {Op: OpLoadI, Dst: 1, Imm: 0}}
	if Equivalent(double, clobber, 2, 16, 42) {
		t.Fatal("register clobber not observed")
	}
}

func TestEnumerate(t *testing.T) {
	insns := Enumerate([]Op{OpAdd, OpNot, OpLoadI}, 2, []int64{0, 1})
	// add: 2 dst × 2 src = 4; not: 2; loadi: 2 dst × 2 imm = 4.
	if len(insns) != 10 {
		t.Fatalf("enumerated %d, want 10", len(insns))
	}
}

func TestSketchVerdicts(t *testing.T) {
	res, err := core.Compile(Src)
	if err != nil {
		t.Fatal(err)
	}
	test := res.SiteByName("Generator.produce.1")
	if test == nil {
		t.Fatal("no test site")
	}
	if test.MayCycle {
		t.Fatal("program graph misflagged cyclic (the paper removes all dynamic cycle checks)")
	}
	if test.ArgReusable[0] {
		t.Fatal("queued program escapes; must not be reusable (paper: 'not eligible for reuse')")
	}
	if !test.IgnoreRet {
		t.Fatal("test is void; should be ack-only")
	}
	// The instruction array and operand fields are fully inlined.
	root := test.ArgPlans[0].Root
	if root == nil || root.Class.Name != "Program" {
		t.Fatalf("program plan: %+v", root)
	}
}

func TestSearchFindsShiftAtAllLevels(t *testing.T) {
	secs := map[rmi.OptLevel]float64{}
	var lookups = map[rmi.OptLevel]int64{}
	for _, level := range rmi.AllLevels {
		out, err := Search(level, DefaultParams())
		if err != nil {
			t.Fatalf("%v: %v", level, err)
		}
		found := false
		for _, m := range out.Matches {
			if m == "shl r0" {
				found = true
			}
		}
		if !found {
			t.Fatalf("%v: shl r0 not found among %d matches", level, len(out.Matches))
		}
		if out.Tested == 0 || out.Stats.RemoteRPCs == 0 || out.Stats.LocalRPCs == 0 {
			t.Fatalf("%v: tested=%d rpcs=%d/%d", level, out.Tested,
				out.Stats.LocalRPCs, out.Stats.RemoteRPCs)
		}
		secs[level] = out.Seconds
		lookups[level] = out.Stats.CycleLookups
	}
	// Table 5 shape: site helps some; cycle elimination is the big
	// win; reuse contributes (almost) nothing.
	if !(secs[rmi.LevelSite] < secs[rmi.LevelClass]) {
		t.Fatal("site not faster than class")
	}
	if !(secs[rmi.LevelSiteCycle] < secs[rmi.LevelSite]) {
		t.Fatal("cycle elimination should be the dominant gain")
	}
	gainCycle := secs[rmi.LevelSite] - secs[rmi.LevelSiteCycle]
	gainReuse := secs[rmi.LevelSite] - secs[rmi.LevelSiteReuse]
	if gainReuse > gainCycle/2 {
		t.Fatalf("reuse gain (%.6f) should be small next to cycle gain (%.6f)", gainReuse, gainCycle)
	}
	// Table 6 shape: cycle lookups collapse with elimination.
	if lookups[rmi.LevelSiteCycle] != 0 {
		t.Fatalf("cycle lookups with elimination = %d", lookups[rmi.LevelSiteCycle])
	}
	if lookups[rmi.LevelClass] == 0 {
		t.Fatal("baseline should pay cycle lookups")
	}
}

func TestSearchReuseStats(t *testing.T) {
	out, err := Search(rmi.LevelSiteReuseCycle, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	// Programs are queued at the tester (escape) — nothing reused.
	if out.Stats.ReusedObjs != 0 {
		t.Fatalf("reused objs = %d, want 0", out.Stats.ReusedObjs)
	}
}

func TestMatchesAreRealEquivalences(t *testing.T) {
	p := DefaultParams()
	out, err := Search(rmi.LevelSiteReuseCycle, p)
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Matches) == 0 {
		t.Fatal("no matches")
	}
	// Every reported match must contain "shl r0" or reproduce doubling
	// behavior; spot-check that none of them is a mov-only sequence.
	for _, m := range out.Matches {
		if strings.HasPrefix(m, "mov") && !strings.Contains(m, ";") {
			t.Fatalf("bogus single-mov match %q", m)
		}
	}
}
