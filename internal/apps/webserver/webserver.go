// Package webserver implements the parallel webserver of §5.4
// (Tables 7/8): a master accepts page requests and forwards each to a
// page server chosen by the URL's hash — the single RMI the paper
// says communication centers around:
//
//	page = server[url.hashCode()].get_page(url)
//
// Page servers run on every machine (including the master's), so
// roughly half the lookups are node-local RPCs and half remote,
// matching Table 8's local/remote split. The compiler proves the
// returned page graph cycle-free and reusable, so with all
// optimizations no objects are allocated after the first page has been
// retrieved.
package webserver

import (
	"fmt"
	"hash/fnv"
	"strings"

	"cormi/internal/apps/appkit"
	"cormi/internal/core"
	"cormi/internal/model"
	"cormi/internal/rmi"
)

// Src is the MiniJP communication sketch.
const Src = `
class Header {
	String contentType;
	int status;
}
class Page {
	Header hdr;
	String body;
}
remote class PageServer {
	Page[] table;
	void init(int n) {
		this.table = new Page[n];
		for (int i = 0; i < n; i = i + 1) {
			Page p = new Page();
			p.hdr = new Header();
			p.hdr.contentType = "text/html";
			p.hdr.status = 200;
			p.body = "page";
			this.table[i] = p;
		}
	}
	Page get_page(String url) {
		int h = url.hashCode();
		int n = this.table.length;
		return this.table[h % n];
	}
}
class Main {
	static void handle(PageServer s, String url) {
		Page page = s.get_page(url);
		int len = page.body.length();
		int use = len + 1;
	}
	static void main() {
		PageServer s = new PageServer();
		s.init(100);
		Main.handle(s, "/index.html");
	}
}
`

// lookupNS is the virtual cost of the slave's hash-table lookup.
const lookupNS = 900

// Outcome is the benchmark result plus correctness witnesses.
type Outcome struct {
	appkit.RunResult
	// MicrosPerPage is the virtual microseconds per page retrieval,
	// the metric of Table 7.
	MicrosPerPage float64
	// Requests is the number of pages served (and verified).
	Requests int
}

// Params configures a run.
type Params struct {
	Requests int
	Pages    int // distinct pages per server
	BodySize int // synthetic page body size in bytes
	Nodes    int
}

// DefaultParams matches the 2-CPU setup at test-friendly scale.
func DefaultParams() Params {
	return Params{Requests: 200, Pages: 64, BodySize: 1024, Nodes: 2}
}

// Run serves p.Requests requests at the given optimization level.
func Run(level rmi.OptLevel, p Params) (Outcome, error) {
	if p.Nodes < 1 || p.Requests < 0 {
		return Outcome{}, fmt.Errorf("webserver: bad params")
	}
	cluster := rmi.New(p.Nodes)
	defer cluster.Close()
	res, err := core.CompileInto(Src, cluster.Registry)
	if err != nil {
		return Outcome{}, err
	}
	getSite := res.SiteByName("Main.handle.1")
	if getSite == nil {
		return Outcome{}, fmt.Errorf("webserver: get_page site missing")
	}
	csGet, err := appkit.Register(cluster, level, getSite)
	if err != nil {
		return Outcome{}, err
	}

	pageClass, _ := res.ModelClass("Page")
	headerClass, _ := res.ModelClass("Header")

	// One page server per machine, each preloaded with its table.
	refs := make([]rmi.Ref, p.Nodes)
	for w := 0; w < p.Nodes; w++ {
		table := make(map[string]*model.Object, p.Pages)
		for i := 0; i < p.Pages; i++ {
			url := pageURL(w, i)
			pg := model.New(pageClass)
			hdr := model.New(headerClass)
			hdr.Set("contentType", model.Str("text/html"))
			hdr.Set("status", model.Int(200))
			pg.Set("hdr", model.Ref(hdr))
			pg.Set("body", model.Str(body(url, p.BodySize)))
			table[url] = pg
		}
		srv := &rmi.Service{Name: "PageServer", Methods: map[string]rmi.Method{
			"get_page": func(call *rmi.Call, args []model.Value) []model.Value {
				call.Compute(lookupNS)
				pg, ok := table[args[0].S]
				if !ok {
					panic(fmt.Sprintf("webserver: no page %q", args[0].S))
				}
				return []model.Value{model.Ref(pg)}
			},
		}}
		refs[w] = cluster.Node(w).Export(srv)
	}

	// The master: forward each request to server[hash(url) % nodes].
	master := cluster.Node(0)
	for r := 0; r < p.Requests; r++ {
		target := r % p.Nodes // deterministic even spread across servers
		url := pageURL(target, r%p.Pages)
		rets, err := csGet.Invoke(master, refs[target], []model.Value{model.Str(url)})
		if err != nil {
			return Outcome{}, err
		}
		pg := rets[0].O
		if pg == nil || pg.Class != pageClass {
			return Outcome{}, fmt.Errorf("webserver: bad page for %q", url)
		}
		got := pg.Get("body").S
		if !strings.HasPrefix(got, url+":") || len(got) != p.BodySize {
			return Outcome{}, fmt.Errorf("webserver: wrong body for %q (%d bytes)", url, len(got))
		}
		if pg.GetRef("hdr").Get("status").I != 200 {
			return Outcome{}, fmt.Errorf("webserver: bad header for %q", url)
		}
	}

	out := Outcome{RunResult: appkit.Collect(cluster), Requests: p.Requests}
	if p.Requests > 0 {
		out.MicrosPerPage = out.Seconds * 1e6 / float64(p.Requests)
	}
	return out, nil
}

func pageURL(server, i int) string {
	return fmt.Sprintf("/srv%d/page%04d.html", server, i)
}

// body builds a deterministic page body of exactly n bytes, prefixed
// with the URL so the master can verify what it received.
func body(url string, n int) string {
	var b strings.Builder
	b.WriteString(url)
	b.WriteByte(':')
	h := fnv.New64a()
	h.Write([]byte(url))
	fill := fmt.Sprintf("<html>%016x</html>", h.Sum64())
	for b.Len() < n {
		b.WriteString(fill)
	}
	return b.String()[:n]
}
