package webserver

import (
	"testing"

	"cormi/internal/core"
	"cormi/internal/rmi"
)

func TestSketchVerdicts(t *testing.T) {
	res, err := core.Compile(Src)
	if err != nil {
		t.Fatal(err)
	}
	get := res.SiteByName("Main.handle.1")
	if get == nil {
		t.Fatal("no get_page site")
	}
	if get.RetMayCycle {
		t.Fatal("page graph misflagged cyclic (paper: both proven cycle free)")
	}
	if !get.RetReusable {
		t.Fatal("returned page should be reusable (paper: 'determined to be reusable')")
	}
	if get.IgnoreRet {
		t.Fatal("page return is used")
	}
	p := get.RetPlans[0]
	if p.Root == nil || p.Root.Class.Name != "Page" {
		t.Fatalf("page plan: %+v", p.Root)
	}
	// Page.hdr is inlined as a known Header.
	found := false
	for _, s := range p.Root.Steps {
		if s.FieldName == "hdr" && s.Target != nil && s.Target.Class.Name == "Header" {
			found = true
		}
	}
	if !found {
		t.Fatalf("hdr not inlined: %+v", p.Root.Steps)
	}
}

func TestServeAllLevels(t *testing.T) {
	micros := map[rmi.OptLevel]float64{}
	for _, level := range rmi.AllLevels {
		out, err := Run(level, DefaultParams())
		if err != nil {
			t.Fatalf("%v: %v", level, err)
		}
		if out.Requests != 200 {
			t.Fatalf("%v: served %d", level, out.Requests)
		}
		// Table 8 split: servers on both machines → a local/remote mix.
		if out.Stats.LocalRPCs == 0 || out.Stats.RemoteRPCs == 0 {
			t.Fatalf("%v: rpc mix %d/%d", level, out.Stats.LocalRPCs, out.Stats.RemoteRPCs)
		}
		micros[level] = out.MicrosPerPage
	}
	// Table 7 shape: site < class; cycle elimination is the biggest
	// single step; all optimizations win overall.
	if !(micros[rmi.LevelSite] < micros[rmi.LevelClass]) {
		t.Fatal("site not faster than class")
	}
	if !(micros[rmi.LevelSiteCycle] < micros[rmi.LevelSite]) {
		t.Fatal("cycle elimination did not help")
	}
	if !(micros[rmi.LevelSiteReuseCycle] < micros[rmi.LevelSiteReuse]) ||
		!(micros[rmi.LevelSiteReuseCycle] < micros[rmi.LevelSiteCycle]) {
		t.Fatal("all optimizations should win")
	}
}

func TestReuseEliminatesAllocations(t *testing.T) {
	// Table 8: "with object reuse enabled no new objects are created
	// after the first webpage has been retrieved". Local RPCs clone
	// through the same serializers, so they reuse as well.
	p := DefaultParams()
	out, err := Run(rmi.LevelSiteReuseCycle, p)
	if err != nil {
		t.Fatal(err)
	}
	total := out.Stats.RemoteRPCs + out.Stats.LocalRPCs
	if out.Stats.ReusedObjs != 2*(total-1) {
		t.Fatalf("reused %d objects over %d rpcs", out.Stats.ReusedObjs, total)
	}
	if out.Stats.AllocObjects != 2 {
		t.Fatalf("allocated %d objects; only the first page should allocate", out.Stats.AllocObjects)
	}
	if out.Stats.CycleTables != 0 || out.Stats.CycleLookups != 0 {
		t.Fatalf("cycle work despite elimination: %+v", out.Stats)
	}

	// Baseline allocates on every retrieval and hashes every object.
	base, err := Run(rmi.LevelClass, p)
	if err != nil {
		t.Fatal(err)
	}
	if base.Stats.ReusedObjs != 0 || base.Stats.AllocBytes <= out.Stats.AllocBytes {
		t.Fatalf("baseline alloc %d vs optimized %d", base.Stats.AllocBytes, out.Stats.AllocBytes)
	}
	if base.Stats.CycleLookups == 0 {
		t.Fatal("baseline should pay cycle lookups")
	}
}

func TestSingleNodeAllLocal(t *testing.T) {
	p := DefaultParams()
	p.Nodes = 1
	p.Requests = 50
	out, err := Run(rmi.LevelSiteReuseCycle, p)
	if err != nil {
		t.Fatal(err)
	}
	if out.Stats.RemoteRPCs != 0 || out.Stats.LocalRPCs != 50 {
		t.Fatalf("rpc mix %d/%d", out.Stats.LocalRPCs, out.Stats.RemoteRPCs)
	}
}

func TestBodyDeterministic(t *testing.T) {
	a := body("/x.html", 512)
	b := body("/x.html", 512)
	if a != b || len(a) != 512 {
		t.Fatal("body not deterministic")
	}
	if body("/y.html", 512) == a {
		t.Fatal("distinct urls share bodies")
	}
}
