package core

import (
	"fmt"

	"cormi/internal/lang"
	"cormi/internal/model"
)

// defineModelClasses registers a runtime model.Class for every MiniJP
// class (supers first, so inheritance layouts flatten correctly).
// Static fields are runtime globals and not part of the serialized
// layout, so they are skipped.
func (r *Result) defineModelClasses() error {
	var define func(cd *lang.ClassDecl) (*model.Class, error)
	define = func(cd *lang.ClassDecl) (*model.Class, error) {
		if mc, ok := r.classOf[cd]; ok {
			return mc, nil
		}
		var super *model.Class
		if cd.Super != nil {
			s, err := define(cd.Super)
			if err != nil {
				return nil, err
			}
			super = s
		}
		// Reuse an existing registration (shared registries across
		// compiles of the same source).
		if existing, ok := r.Registry.ByName(cd.Name); ok {
			r.classOf[cd] = existing
			return existing, nil
		}
		mc, err := r.Registry.Define(cd.Name, super)
		if err != nil {
			return nil, err
		}
		r.classOf[cd] = mc
		return mc, nil
	}
	for _, cd := range r.Lang.File.Classes {
		if _, err := define(cd); err != nil {
			return err
		}
	}
	// Second pass: fields (self-referential classes need the class
	// object to exist first).
	for _, cd := range r.Lang.File.Classes {
		mc := r.classOf[cd]
		if len(mc.Fields) > 0 {
			continue // already populated via a shared registry
		}
		for _, fd := range cd.Fields {
			if fd.Static {
				continue
			}
			kind, class, err := r.modelType(fd.Type)
			if err != nil {
				return fmt.Errorf("field %s.%s: %w", cd.Name, fd.Name, err)
			}
			mc.Fields = append(mc.Fields, model.Field{Name: fd.Name, Kind: kind, Class: class})
		}
	}
	return nil
}

// modelType maps a MiniJP type to the runtime value model.
func (r *Result) modelType(t lang.Type) (model.FieldKind, *model.Class, error) {
	switch tt := t.(type) {
	case *lang.PrimType:
		switch tt.Kind {
		case lang.PInt:
			return model.FInt, nil, nil
		case lang.PDouble:
			return model.FDouble, nil, nil
		case lang.PBoolean:
			return model.FBool, nil, nil
		case lang.PString:
			return model.FString, nil, nil
		}
		return 0, nil, fmt.Errorf("type %s has no runtime representation", t)
	case *lang.ClassType:
		mc, ok := r.classOf[tt.Decl]
		if !ok {
			return 0, nil, fmt.Errorf("class %s not yet defined", tt.Decl.Name)
		}
		return model.FRef, mc, nil
	case *lang.ArrayType:
		mc, err := r.arrayClass(tt)
		if err != nil {
			return 0, nil, err
		}
		return model.FRef, mc, nil
	}
	return 0, nil, fmt.Errorf("unsupported type %s", t)
}

// arrayClass returns the model class for a MiniJP array type.
func (r *Result) arrayClass(t *lang.ArrayType) (*model.Class, error) {
	switch et := t.Elem.(type) {
	case *lang.PrimType:
		switch et.Kind {
		case lang.PDouble:
			return r.Registry.DoubleArray(), nil
		case lang.PInt:
			return r.Registry.IntArray(), nil
		case lang.PBoolean:
			return r.Registry.IntArray(), nil // booleans pack as ints
		default:
			return nil, fmt.Errorf("unsupported array element type %s", t.Elem)
		}
	case *lang.ClassType:
		mc, ok := r.classOf[et.Decl]
		if !ok {
			return nil, fmt.Errorf("class %s not yet defined", et.Decl.Name)
		}
		return r.Registry.ArrayOf(mc), nil
	case *lang.ArrayType:
		inner, err := r.arrayClass(et)
		if err != nil {
			return nil, err
		}
		return r.Registry.ArrayOf(inner), nil
	}
	return nil, fmt.Errorf("unsupported array type %s", t)
}

// langFields returns the flattened non-static field declarations in
// the same order as the model class layout (supers first).
func langFields(cd *lang.ClassDecl) []*lang.FieldDecl {
	var out []*lang.FieldDecl
	if cd.Super != nil {
		out = append(out, langFields(cd.Super)...)
	}
	for _, fd := range cd.Fields {
		if !fd.Static {
			out = append(out, fd)
		}
	}
	return out
}
