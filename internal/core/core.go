// Package core is the paper's primary contribution: the optimizing RMI
// compiler pass. It drives the pipeline
//
//	MiniJP source → checked AST → SSA IR → heap analysis (§2)
//
// and then derives, for every remote call site:
//
//   - a call-site-specific serialization plan per argument and return
//     value (§3.1) with inlined field operations and no per-object type
//     information for statically known referents;
//   - whether cycle detection can be eliminated (§3.2), by traversing
//     the argument heap graphs and flagging any allocation number seen
//     twice;
//   - whether the argument and return object graphs may be reused
//     across invocations (§3.3), by an RMI-specific escape analysis
//     over the cloned (callee-side) subgraphs;
//   - whether the return value is ignored at the call site, enabling
//     the ack-only reply optimization (§3.1).
//
// The output plugs directly into the runtime: serial.Plan objects plus
// model.Class definitions registered in a model.Registry.
package core

import (
	"fmt"

	"cormi/internal/heap"
	"cormi/internal/ir"
	"cormi/internal/lang"
	"cormi/internal/model"
	"cormi/internal/serial"
)

// SiteInfo carries everything the compiler derived about one remote
// call site.
type SiteInfo struct {
	SiteID int
	// Name is the mangled call-site name: containing function plus a
	// per-function sequence number, e.g. "Work.go.2" (§3.1 "function
	// names are mangled with the containing function name and a
	// sequence number").
	Name   string
	Callee *lang.MethodDecl
	Site   *ir.Instr // nil when the call site is unreachable code
	Dead   bool

	// MayCycle is the §3.2 verdict over all serialized arguments.
	MayCycle bool
	// IgnoreRet marks call sites whose result is unused (§3.1 ack
	// optimization).
	IgnoreRet bool
	// NumRet is 0 for void callees, 1 otherwise.
	NumRet int

	// ArgPlans has one plan per serialized argument (the remote
	// receiver is a reference, not an argument). RetPlans has one plan
	// per return value.
	ArgPlans []*serial.Plan
	RetPlans []*serial.Plan

	// ArgReusable and RetReusable are the §3.3 escape-analysis
	// verdicts (also baked into the plans' Reusable flags).
	ArgReusable []bool
	RetReusable bool
	// RetMayCycle is the cycle verdict for the returned graph.
	RetMayCycle bool

	// Audit provenance (the explain layer renders these):
	// CycleWitness/RetCycleWitness hold the §3.2 denial evidence when
	// the cycle table is kept (nil when elided); ArgReuseDenied (one
	// entry per serialized argument, nil where reuse applies or the
	// argument is primitive) and RetReuseDenied hold the §3.3 escape
	// witnesses; ArgNodes/RetNodes are the heap allocation-site sets
	// each plan was derived from.
	CycleWitness    *heap.CycleWitness
	RetCycleWitness *heap.CycleWitness
	ArgReuseDenied  []*EscapeWitness
	RetReuseDenied  *EscapeWitness
	ArgNodes        []heap.NodeSet
	RetNodes        heap.NodeSet
	// LinearRefined marks verdicts cleared by the opt-in linear-list
	// refinement rather than the base §3.2 traversal.
	LinearRefined bool
}

// Options selects optional compiler behaviors.
type Options struct {
	// LinearListRefinement enables the future-work refinement the
	// paper's conclusions describe: constructor-ordered linear chain
	// classes (linked lists) are recognized as cycle-free when they
	// are a message's only reference argument. See linear.go for the
	// soundness argument.
	LinearListRefinement bool

	// HeapOpts overrides the heap-analysis precision (nil means
	// heap.DefaultOptions: 1-call-site-sensitive with strong updates).
	// The verdict-matrix baseline compiles with
	// heap.InsensitiveOptions to quantify the precision gap.
	HeapOpts *heap.Options
}

func (o Options) heapOpts() heap.Options {
	if o.HeapOpts != nil {
		return *o.HeapOpts
	}
	return heap.DefaultOptions()
}

// Result is a compiled program with analysis results.
type Result struct {
	Lang     *lang.Program
	IR       *ir.Program
	Heap     *heap.Analysis
	Registry *model.Registry
	Sites    []*SiteInfo
	Opts     Options

	classOf map[*lang.ClassDecl]*model.Class
}

// Compile runs the full pipeline over src with a fresh class registry.
func Compile(src string) (*Result, error) {
	return CompileInto(src, model.NewRegistry())
}

// CompileInto runs the pipeline, registering runtime classes into reg
// (typically the registry shared with an rmi.Cluster).
func CompileInto(src string, reg *model.Registry) (*Result, error) {
	return CompileOpts(src, reg, Options{})
}

// CompileOpts is CompileInto with explicit compiler options.
func CompileOpts(src string, reg *model.Registry, opts Options) (*Result, error) {
	file, err := lang.Parse(src)
	if err != nil {
		return nil, fmt.Errorf("parse: %w", err)
	}
	prog, err := lang.Check(file)
	if err != nil {
		return nil, fmt.Errorf("check: %w", err)
	}
	irProg, err := ir.Lower(prog)
	if err != nil {
		return nil, fmt.Errorf("lower: %w", err)
	}
	if err := ir.Validate(irProg); err != nil {
		return nil, fmt.Errorf("ssa validation: %w", err)
	}
	r := &Result{
		Lang:     prog,
		IR:       irProg,
		Heap:     heap.AnalyzeOpts(irProg, opts.heapOpts()),
		Registry: reg,
		Opts:     opts,
		classOf:  make(map[*lang.ClassDecl]*model.Class),
	}
	if err := r.defineModelClasses(); err != nil {
		return nil, err
	}
	if err := r.buildSites(); err != nil {
		return nil, err
	}
	return r, nil
}

// SiteByName finds a call site by its mangled name.
func (r *Result) SiteByName(name string) *SiteInfo {
	for _, s := range r.Sites {
		if s.Name == name {
			return s
		}
	}
	return nil
}

// SitesOfCallee lists the call sites targeting a given method, in
// program order.
func (r *Result) SitesOfCallee(qualified string) []*SiteInfo {
	var out []*SiteInfo
	for _, s := range r.Sites {
		if s.Callee != nil && s.Callee.QualifiedName() == qualified {
			out = append(out, s)
		}
	}
	return out
}

// ModelClass returns the runtime class for a declared class name.
func (r *Result) ModelClass(name string) (*model.Class, bool) {
	cd, ok := r.Lang.Classes[name]
	if !ok {
		return nil, false
	}
	mc, ok := r.classOf[cd]
	return mc, ok
}
