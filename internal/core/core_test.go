package core

import (
	"strings"
	"testing"

	"cormi/internal/model"
	"cormi/internal/serial"
	"cormi/internal/stats"
	"cormi/internal/wire"
)

func compile(t *testing.T, src string) *Result {
	t.Helper()
	r, err := Compile(src)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	return r
}

const arrayBenchSrc = `
remote class ArrayBench {
	void send(double[][] arr) { }
	static void benchmark() {
		double[][] arr = new double[16][16];
		ArrayBench f = new ArrayBench();
		f.send(arr);
	}
}
`

func TestArrayBenchFigure13(t *testing.T) {
	r := compile(t, arrayBenchSrc)
	sites := r.SitesOfCallee("ArrayBench.send")
	if len(sites) != 1 {
		t.Fatalf("sites = %d", len(sites))
	}
	si := sites[0]
	if si.MayCycle {
		t.Fatal("array bench misflagged cyclic")
	}
	if !si.IgnoreRet {
		t.Fatal("void call should be ack-only")
	}
	if len(si.ArgPlans) != 1 || !si.ArgReusable[0] {
		t.Fatalf("arg not reusable: %+v", si.ArgReusable)
	}
	p := si.ArgPlans[0]
	if p.Root == nil || p.Root.Class.Name != "double[][]" || p.Root.Elem == nil ||
		p.Root.Elem.Class.Name != "double[]" {
		t.Fatalf("array plan wrong: %+v", p.Root)
	}
	if p.NeedCycle || !p.Reusable {
		t.Fatalf("plan flags wrong: %+v", p)
	}
	code := p.Pseudocode()
	if !strings.Contains(code, "append_double_array") {
		t.Fatalf("Figure 13 pseudocode missing bulk copy:\n%s", code)
	}
}

const linkedListSrc = `
class LinkedList {
	LinkedList Next;
	LinkedList(LinkedList n) { this.Next = n; }
}
remote class Foo {
	void send(LinkedList l) { }
	static void benchmark() {
		LinkedList head = null;
		for (int i = 0; i < 100; i = i + 1) {
			head = new LinkedList(head);
		}
		Foo f = new Foo();
		f.send(head);
	}
}
`

func TestLinkedListFigure14(t *testing.T) {
	r := compile(t, linkedListSrc)
	si := r.SitesOfCallee("Foo.send")[0]
	if !si.MayCycle {
		t.Fatal("linked list must keep cycle detection (paper's conservative verdict)")
	}
	if !si.ArgReusable[0] {
		t.Fatal("list argument should be reusable (does not escape send)")
	}
	p := si.ArgPlans[0]
	if p.Root == nil || p.Root.Class.Name != "LinkedList" {
		t.Fatalf("list plan: %+v", p.Root)
	}
	// The Next field must be an inlined recursive reference, not a
	// dynamic fallback: site-specific serialization removes the
	// per-node type info, which the paper credits for the gain.
	if len(p.Root.Steps) != 1 || p.Root.Steps[0].Op != serial.OpRef || p.Root.Steps[0].Target != p.Root {
		t.Fatalf("list plan steps: %+v", p.Root.Steps)
	}
}

const figure5Src = `
class Base { }
class Derived1 extends Base { int data; }
class Derived2 extends Base { Derived1 p; }
remote class Work {
	void foo(Base b) { }
	void go() {
		Base b1 = new Derived1();
		this.foo2(b1);
		Base b2 = new Derived2();
		this.foo2(b2);
	}
	void foo2(Base b) { }
	static void main() {
		Work w = new Work();
		Base b1 = new Derived1();
		w.foo(b1);
		Base b2 = new Derived2();
		w.foo(b2);
	}
}
`

func TestFigure5CallSiteSpecialization(t *testing.T) {
	r := compile(t, figure5Src)
	sites := r.SitesOfCallee("Work.foo")
	if len(sites) != 2 {
		t.Fatalf("Work.foo sites = %d", len(sites))
	}
	// Each call site sees exactly one derived class (Figure 6).
	s1, s2 := sites[0], sites[1]
	if s1.ArgPlans[0].Root == nil || s1.ArgPlans[0].Root.Class.Name != "Derived1" {
		t.Fatalf("site 1 inferred %v, want Derived1", s1.ArgPlans[0].Root)
	}
	if s2.ArgPlans[0].Root == nil || s2.ArgPlans[0].Root.Class.Name != "Derived2" {
		t.Fatalf("site 2 inferred %v, want Derived2", s2.ArgPlans[0].Root)
	}
	// Derived2.p inlines Derived1 (the paper: "copies the int field of
	// the object pointed to by p").
	steps := s2.ArgPlans[0].Root.Steps
	if len(steps) != 1 || steps[0].Op != serial.OpRef || steps[0].Target.Class.Name != "Derived1" {
		t.Fatalf("Derived2.p not inlined: %+v", steps)
	}
	// Site names are mangled with function + sequence number.
	if s1.Name != "Work.main.1" || s2.Name != "Work.main.2" {
		t.Fatalf("site names %q, %q", s1.Name, s2.Name)
	}

	// Mangled marshaler pseudocode mentions the inferred class.
	if code := s1.ArgPlans[0].Pseudocode(); !strings.Contains(code, "Derived1") {
		t.Fatalf("pseudocode:\n%s", code)
	}
}

func TestPolymorphicMergeFallsBack(t *testing.T) {
	// One call site receiving both derived classes cannot specialize.
	r := compile(t, `
class Base { }
class Derived1 extends Base { int data; }
class Derived2 extends Base { int data; }
remote class Work {
	void foo(Base b) { }
	static void main(boolean c) {
		Work w = new Work();
		Base b = new Derived1();
		if (c) { b = new Derived2(); }
		w.foo(b);
	}
}`)
	si := r.SitesOfCallee("Work.foo")[0]
	if si.ArgPlans[0].Root != nil {
		t.Fatalf("polymorphic site got a monomorphic plan for %s", si.ArgPlans[0].Root.Class)
	}
}

func TestFigure10EscapeCoverage(t *testing.T) {
	r := compile(t, `
remote class Foo {
	double sum;
	void foo(double[] a) {
		this.sum = a[0] + a[1];
	}
	static void main() {
		Foo f = new Foo();
		double[] a = new double[2];
		f.foo(a);
	}
}`)
	si := r.SitesOfCallee("Foo.foo")[0]
	if !si.ArgReusable[0] {
		t.Fatal("Figure 10: 'a' never escapes; the array object can be reused")
	}
}

func TestFigure11EscapeCoverage(t *testing.T) {
	r := compile(t, `
class Data { }
class Bar { Data d; }
remote class Foo {
	static Data d;
	void foo(Bar a) {
		Foo.d = a.d;
	}
	static void main() {
		Foo f = new Foo();
		Bar b = new Bar();
		b.d = new Data();
		f.foo(b);
	}
}`)
	si := r.SitesOfCallee("Foo.foo")[0]
	if si.ArgReusable[0] {
		t.Fatal("Figure 11: 'd' escapes, therefore 'a' escapes as well")
	}
}

func TestEscapeViaReceiverField(t *testing.T) {
	// Storing the argument into a field of the remote object keeps it
	// alive across invocations: not reusable.
	r := compile(t, `
class Data { }
remote class Foo {
	Data keep;
	void foo(Data a) {
		this.keep = a;
	}
	static void main() {
		Foo f = new Foo();
		f.foo(new Data());
	}
}`)
	si := r.SitesOfCallee("Foo.foo")[0]
	if si.ArgReusable[0] {
		t.Fatal("argument stored into receiver field must not be reusable")
	}
}

func TestEscapeViaReturn(t *testing.T) {
	r := compile(t, `
class Data { }
remote class Foo {
	Data foo(Data a) { return a; }
	static void main() {
		Foo f = new Foo();
		Data t = new Data();
		for (int i = 0; i < 100; i = i + 1) {
			t = f.foo(t);
		}
	}
}`)
	si := r.SitesOfCallee("Foo.foo")[0]
	if si.ArgReusable[0] {
		t.Fatal("returned argument must not be reusable")
	}
	if si.IgnoreRet {
		t.Fatal("return is used")
	}
}

func TestReturnValueReuseWebserverShape(t *testing.T) {
	r := compile(t, `
class Page { String body; }
remote class Server {
	Page get_page(String url) {
		Page p = new Page();
		p.body = "data";
		return p;
	}
}
remote class Master {
	void serve(Server s, String url) {
		Page page = s.get_page(url);
	}
}`)
	si := r.SitesOfCallee("Server.get_page")[0]
	if len(si.RetPlans) != 1 {
		t.Fatal("no return plan")
	}
	if si.RetMayCycle {
		t.Fatal("page graph misflagged cyclic")
	}
	if !si.RetReusable {
		t.Fatal("returned page should be reusable at the caller")
	}
	if si.RetPlans[0].Root == nil || si.RetPlans[0].Root.Class.Name != "Page" {
		t.Fatalf("return plan: %+v", si.RetPlans[0].Root)
	}
	// The URL string argument is a primitive plan.
	if si.ArgPlans[0].Kind != model.FString {
		t.Fatalf("url plan kind %v", si.ArgPlans[0].Kind)
	}
}

func TestIgnoredReturnDetected(t *testing.T) {
	r := compile(t, `
remote class F {
	int f() { return 1; }
	static void main() {
		F me = new F();
		me.f();
		int x = me.f();
		int y = x + 1;
	}
}`)
	sites := r.SitesOfCallee("F.f")
	if !sites[0].IgnoreRet || sites[1].IgnoreRet {
		t.Fatalf("ack verdicts: %v %v", sites[0].IgnoreRet, sites[1].IgnoreRet)
	}
}

// TestGeneratedPlansDriveRuntime ties the compiler to the runtime: a
// graph serialized under the compiled plan round-trips and honors the
// compile-time verdicts.
func TestGeneratedPlansDriveRuntime(t *testing.T) {
	r := compile(t, arrayBenchSrc)
	si := r.SitesOfCallee("ArrayBench.send")[0]
	plan := si.ArgPlans[0]

	arrClass, _ := r.Registry.ByName("double[][]")
	rowClass, _ := r.Registry.ByName("double[]")
	arr := model.NewArray(arrClass, 4)
	for i := range arr.Refs {
		row := model.NewArray(rowClass, 4)
		for j := range row.Doubles {
			row.Doubles[j] = float64(i*4 + j)
		}
		arr.Refs[i] = row
	}

	var c stats.Counters
	cfg := serial.Config{Mode: serial.ModeSite, CycleElim: true, Reuse: true}
	m := wire.NewMessage(0)
	if _, err := serial.WriteValues(m, []model.Value{model.Ref(arr)}, []*serial.Plan{plan}, cfg, &c); err != nil {
		t.Fatal(err)
	}
	got, roots, _, err := serial.ReadValues(wire.FromBytes(m.Bytes()), r.Registry, 1, []*serial.Plan{plan}, cfg, nil, &c)
	if err != nil {
		t.Fatal(err)
	}
	if !model.DeepEqual(arr, got[0].O) {
		t.Fatal("compiled-plan round trip mismatch")
	}
	s := c.Snapshot()
	if s.CycleTables != 0 || s.TypeBytes != 0 || s.SerializerCalls != 0 {
		t.Fatalf("compiled plan leaked baseline work: %+v", s)
	}

	// Second message reuses the deserialized graph per §3.3.
	m2 := wire.NewMessage(0)
	if _, err := serial.WriteValues(m2, []model.Value{model.Ref(arr)}, []*serial.Plan{plan}, cfg, &c); err != nil {
		t.Fatal(err)
	}
	got2, _, _, err := serial.ReadValues(wire.FromBytes(m2.Bytes()), r.Registry, 1, []*serial.Plan{plan}, cfg, roots, &c)
	if err != nil {
		t.Fatal(err)
	}
	if got2[0].O != got[0].O {
		t.Fatal("reuse verdict not honored by runtime")
	}
}

func TestDumpOutputs(t *testing.T) {
	r := compile(t, figure5Src)
	all := r.DumpAll()
	for _, frag := range []string{"Work.main.1", "Derived1", "may-cycle", "heap graph"} {
		if !strings.Contains(all, frag) {
			t.Fatalf("DumpAll missing %q", frag)
		}
	}
	ssa := r.SSA()
	if !strings.Contains(ssa, "func Work.main") || !strings.Contains(ssa, "rcall") {
		t.Fatalf("SSA dump:\n%s", ssa)
	}
	mc, _ := r.ModelClass("Derived2")
	classCode := ClassSpecificPseudocode(mc)
	if !strings.Contains(classCode, "write_type(this)") || !strings.Contains(classCode, "recursive dynamic call") {
		t.Fatalf("Figure 7 pseudocode:\n%s", classCode)
	}
}

func TestCompileErrors(t *testing.T) {
	for _, src := range []string{
		`class A {`,                          // parse error
		`class A { B b; }`,                   // check error
		`class A { void f() { return 1; } }`, // check error
	} {
		if _, err := Compile(src); err == nil {
			t.Fatalf("Compile(%q) should fail", src)
		}
	}
}

func TestSharedRegistryCompile(t *testing.T) {
	reg := model.NewRegistry()
	if _, err := CompileInto(arrayBenchSrc, reg); err != nil {
		t.Fatal(err)
	}
	// Compiling the same source into the same registry must not
	// attempt duplicate class registration.
	if _, err := CompileInto(arrayBenchSrc, reg); err != nil {
		t.Fatalf("recompile into shared registry: %v", err)
	}
}
