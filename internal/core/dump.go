package core

import (
	"fmt"
	"strings"

	"cormi/internal/heap"
	"cormi/internal/model"
)

// DumpSite renders one call site's analysis results and generated
// marshaler pseudocode (Figures 6 and 13).
func (r *Result) DumpSite(si *SiteInfo) string {
	var b strings.Builder
	fmt.Fprintf(&b, "=== call site %s -> %s ===\n", si.Name, si.Callee.QualifiedName())
	fmt.Fprintf(&b, "may-cycle: %v    return ignored: %v\n", si.MayCycle, si.IgnoreRet)
	for i, p := range si.ArgPlans {
		fmt.Fprintf(&b, "arg %d: reusable=%v\n%s", i, si.ArgReusable[i], p.Pseudocode())
	}
	for _, p := range si.RetPlans {
		fmt.Fprintf(&b, "return: reusable=%v may-cycle=%v\n%s", si.RetReusable, si.RetMayCycle, p.Pseudocode())
	}
	return b.String()
}

// DumpHeapForSite renders the heap graph of a call site's arguments in
// the style of Figure 2.
func (r *Result) DumpHeapForSite(si *SiteInfo) string {
	if si.Site == nil {
		return "(dead call site)\n"
	}
	roots := heap.NodeSet{}
	args := si.Site.Args
	if !si.Callee.Static {
		args = args[1:]
	}
	for _, a := range args {
		roots.AddAll(r.Heap.PointsTo(a))
	}
	return r.Heap.DumpGraph(roots)
}

// ClassSpecificPseudocode renders the baseline per-class serializer of
// a model class in the style of Figure 7 — the code the paper's
// optimization replaces: explicit type information, recursive dynamic
// serializer invocations.
func ClassSpecificPseudocode(mc *model.Class) string {
	var b strings.Builder
	fmt.Fprintf(&b, "// compiler inserts this method into class %s:\n", mc.Name)
	fmt.Fprintf(&b, "void %s.serialize(Message m) {\n", mc.Name)
	b.WriteString("    write_type(this); // explicit per-object type information\n")
	switch mc.Kind {
	case model.KObject:
		for _, f := range mc.AllFields() {
			switch f.Kind {
			case model.FRef:
				fmt.Fprintf(&b, "    this.%s.serialize(m); // note: recursive dynamic call\n", f.Name)
			default:
				fmt.Fprintf(&b, "    write_%s(this.%s);\n", f.Kind, f.Name)
			}
		}
	case model.KRefArray:
		b.WriteString("    write_int(this.length);\n")
		b.WriteString("    for (int i = 0; i < this.length; i++) {\n")
		b.WriteString("        this[i].serialize(m); // note: recursive dynamic call\n")
		b.WriteString("    }\n")
	default:
		fmt.Fprintf(&b, "    write_%s_payload(this);\n", mc.Kind)
	}
	b.WriteString("}\n")
	return b.String()
}

// DumpAll renders every live call site's analysis, heap graph and
// generated code: the rmic -dump-code output.
func (r *Result) DumpAll() string {
	var b strings.Builder
	for _, si := range r.Sites {
		if si.Dead {
			continue
		}
		b.WriteString(r.DumpSite(si))
		b.WriteString("heap graph at site:\n")
		b.WriteString(r.DumpHeapForSite(si))
		b.WriteByte('\n')
	}
	return b.String()
}

// SSA dumps all lowered functions (rmic -dump-ssa).
func (r *Result) SSA() string {
	var b strings.Builder
	for _, f := range r.IR.Funcs {
		b.WriteString(f.String())
		b.WriteByte('\n')
	}
	return b.String()
}
