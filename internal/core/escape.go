package core

import (
	"fmt"

	"cormi/internal/heap"
	"cormi/internal/ir"
)

// escapeState caches program-wide escape seeds shared by all per-site
// queries.
type escapeState struct {
	// globalReach is everything reachable from a static variable; any
	// overlap means the graph outlives the invocation (Figure 11).
	globalReach heap.NodeSet
}

func (r *Result) escapeState() *escapeState {
	return &escapeState{globalReach: r.Heap.Reach(r.Heap.GlobalSeeds())}
}

// Escape-denial rules. Each names the §3.3 condition that blocked
// reuse; the witness carries the offending heap node when one exists.
const (
	RuleGlobalReachable   = "global-reachable"
	RuleReceiverReachable = "receiver-reachable"
	RuleReturned          = "returned"
	RuleStoredOutside     = "stored-outside"
	RuleUnknownStore      = "unknown-store"
	RuleNoCalleeBody      = "no-callee-body"
	RuleUnanalyzedClones  = "unanalyzed-clones"
	RulePhiLive           = "phi-live"
)

// EscapeWitness is the provenance of a reuse denial: which escape rule
// fired and, when the rule concerns a concrete heap node, which
// allocation it was. A nil witness means the graph provably dies with
// its invocation and the buffer may be reused.
type EscapeWitness struct {
	Rule   string
	Node   heap.NodeID // offending node, -1 when the rule has no single node
	Alloc  int         // its logical allocation number, -1 when Node is -1
	Detail string
}

func (w *EscapeWitness) String() string {
	if w == nil {
		return "reusable"
	}
	s := w.Rule
	if w.Node >= 0 {
		s += fmt.Sprintf(" (allocation %d)", w.Alloc)
	}
	if w.Detail != "" {
		s += ": " + w.Detail
	}
	return s
}

func (r *Result) nodeWitness(rule string, id heap.NodeID, detail string) *EscapeWitness {
	return &EscapeWitness{Rule: rule, Node: id, Alloc: r.Heap.Nodes[id].Logical, Detail: detail}
}

// lifetimeRoot tags an extra escape seed set with the denial rule it
// stands for, so a hit can be reported precisely.
type lifetimeRoot struct {
	rule  string
	roots heap.NodeSet
}

// graphEscapeWitness implements the RMI-specific escape analysis of
// §3.3 for an object graph that should die when its invocation
// finishes: the graph escapes if any of its nodes
//
//   - is reachable from a static variable (stored to a global,
//     directly or transitively — Figure 11),
//   - is reachable from one of the extra lifetime roots (the remote
//     receiver's own object graph, or the callee's return value for
//     argument reuse: a returned argument flows back to the caller),
//   - or is stored into a field of any object outside the graph
//     (conservatively, the heap location may outlive the call).
//
// Note the recursive rule the paper highlights: an object escapes if
// anything it (transitively) references escapes — which holds here
// because `graph` is the full reachable set of the argument.
//
// The return value is the denial witness, nil when nothing escapes.
func (r *Result) graphEscapeWitness(es *escapeState, graph heap.NodeSet, extra []lifetimeRoot) *EscapeWitness {
	if len(graph) == 0 {
		return nil
	}
	for _, id := range graph.Sorted() {
		if es.globalReach.Has(id) {
			return r.nodeWitness(RuleGlobalReachable, id, "reachable from a static variable")
		}
	}
	for _, lr := range extra {
		reach := r.Heap.Reach(lr.roots)
		for _, id := range graph.Sorted() {
			if reach.Has(id) {
				return r.nodeWitness(lr.rule, id, "")
			}
		}
	}
	// Stored into a node outside the graph?
	for i := range r.Heap.Nodes {
		id := heap.NodeID(i)
		if graph.Has(id) {
			continue
		}
		for _, key := range fieldKeys(r.Heap, id) {
			for _, m := range r.Heap.Field(id, key).Sorted() {
				if graph.Has(m) {
					return r.nodeWitness(RuleStoredOutside, m,
						fmt.Sprintf("stored into %s of allocation %d", key, r.Heap.Nodes[id].Logical))
				}
			}
		}
	}
	// Stored through a reference with an empty points-to set (e.g. a
	// receiver no analyzed code ever allocates): the target is
	// unknowable, so assume the store escapes. The check runs per
	// analysis context: under 1-call-site sensitivity a target may be
	// known in one context and unknowable in another, and the merged
	// view would hide the unanalyzable store (the context-separated
	// analysis never materializes its field edge, so no other rule can
	// catch it).
	for _, f := range r.IR.Funcs {
		var w *EscapeWitness
		f.Instrs(func(in *ir.Instr) bool {
			var target, val *ir.Value
			switch in.Op {
			case ir.OpStore:
				target, val = in.Args[0], in.Args[1]
			case ir.OpStoreIdx:
				target, val = in.Args[0], in.Args[2]
			default:
				return true
			}
			for _, c := range r.Heap.Contexts(f) {
				if len(r.Heap.PointsToIn(target, c)) > 0 {
					continue
				}
				for _, id := range r.Heap.PointsToIn(val, c).Sorted() {
					if graph.Has(id) {
						w = r.nodeWitness(RuleUnknownStore, id,
							fmt.Sprintf("stored through an unanalyzable reference in %s", f.Name))
						return false
					}
				}
			}
			return true
		})
		if w != nil {
			return w
		}
	}
	return nil
}

func fieldKeys(a *heap.Analysis, id heap.NodeID) []string {
	var keys []string
	// The analysis exposes field sets only via Field(key); enumerate
	// via the node's recorded edges.
	for key := range a.FieldEdges(id) {
		keys = append(keys, key)
	}
	return keys
}

// argReuseDenial decides §3.3 for one serialized argument of a remote
// call site: the callee-side clone graph of this argument must not
// escape the callee. A nil result means the argument buffer is
// reusable; otherwise the witness says why not.
func (r *Result) argReuseDenial(es *escapeState, site *ir.Instr, argNodes heap.NodeSet) *EscapeWitness {
	callee, ok := r.IR.FuncOf[site.Callee]
	if !ok {
		// No body: cannot prove anything.
		return &EscapeWitness{Rule: RuleNoCalleeBody, Node: -1, Alloc: -1,
			Detail: site.Callee.QualifiedName() + " has no analyzable body"}
	}
	clones := r.Heap.CloneSetOf(heap.ArgCtx(site.Callee), argNodes)
	if len(clones) == 0 && len(argNodes) > 0 {
		return &EscapeWitness{Rule: RuleUnanalyzedClones, Node: -1, Alloc: -1,
			Detail: "no callee-side clone of the argument graph was analyzed"}
	}
	graph := r.Heap.Reach(clones)

	// Lifetime roots beyond globals: the receiver instance (storing an
	// argument into a field of the remote object keeps it alive across
	// calls) and the callee's returned graph (a returned argument
	// flows back to the caller).
	var extra []lifetimeRoot
	if !site.Callee.Static && len(callee.Params) > 0 {
		extra = append(extra, lifetimeRoot{RuleReceiverReachable, r.Heap.PointsTo(callee.Params[0])})
	}
	rets := heap.NodeSet{}
	for _, rv := range ir.ReturnValues(callee) {
		rets.AddAll(r.Heap.PointsTo(rv))
	}
	extra = append(extra, lifetimeRoot{RuleReturned, rets})

	return r.graphEscapeWitness(es, graph, extra)
}

// retReuseDenial decides §3.3 for the return value at the caller: the
// clone graph materialized at this call site must not escape the
// caller (it may, however, be re-sent over further RMIs — those copy).
//
// Beyond the heap-escape rules there is a temporal one: the next
// invocation of the same call site overwrites the cached graph, so the
// value must be dead by then. A same-site re-execution only happens
// through a loop back edge, so it suffices that the result value never
// flows into a phi (it does not survive a loop iteration or join).
func (r *Result) retReuseDenial(es *escapeState, site *ir.Instr, retNodes heap.NodeSet) *EscapeWitness {
	if site.Dst != nil {
		for _, u := range site.Dst.Uses {
			if u.Op == ir.OpPhi {
				return &EscapeWitness{Rule: RulePhiLive, Node: -1, Alloc: -1,
					Detail: "result flows into a phi, so it may survive a loop iteration"}
			}
		}
	}
	clones := r.Heap.CloneSetOf(heap.RetCtx(site.SiteID), retNodes)
	if len(clones) == 0 && len(retNodes) > 0 {
		return &EscapeWitness{Rule: RuleUnanalyzedClones, Node: -1, Alloc: -1,
			Detail: "no caller-side clone of the returned graph was analyzed"}
	}
	graph := r.Heap.Reach(clones)

	// If the CONTAINING function can return part of this graph, it
	// outlives the caller's frame. Only the containing function's
	// returns matter: the clones materialize in this frame, and every
	// other way out of it is covered by a different rule — reachability
	// from a static (global-reachable), a store into any object outside
	// the graph, including objects handed to or received from direct
	// callees (stored-outside / unknown-store), and surviving a loop
	// iteration (phi-live). A direct callee returning a node it was
	// passed merely flows it back into this same frame. The previous
	// any-function-returns rule was sound but defeated context
	// sensitivity: a pass-through helper's merged return summary always
	// contained the clone.
	caller := site.Block.Func
	rets := heap.NodeSet{}
	for _, rv := range ir.ReturnValues(caller) {
		rets.AddAll(r.Heap.PointsTo(rv))
	}
	extra := []lifetimeRoot{{RuleReturned, rets}}

	return r.graphEscapeWitness(es, graph, extra)
}
