package core

import (
	"cormi/internal/heap"
	"cormi/internal/ir"
)

// escapeState caches program-wide escape seeds shared by all per-site
// queries.
type escapeState struct {
	// globalReach is everything reachable from a static variable; any
	// overlap means the graph outlives the invocation (Figure 11).
	globalReach heap.NodeSet
}

func (r *Result) escapeState() *escapeState {
	return &escapeState{globalReach: r.Heap.Reach(r.Heap.GlobalSeeds())}
}

// graphEscapes implements the RMI-specific escape analysis of §3.3 for
// an object graph that should die when its invocation finishes: the
// graph escapes if any of its nodes
//
//   - is reachable from a static variable (stored to a global,
//     directly or transitively — Figure 11),
//   - is reachable from one of the extra lifetime roots (the remote
//     receiver's own object graph, or the callee's return value for
//     argument reuse: a returned argument flows back to the caller),
//   - or is stored into a field of any object outside the graph
//     (conservatively, the heap location may outlive the call).
//
// Note the recursive rule the paper highlights: an object escapes if
// anything it (transitively) references escapes — which holds here
// because `graph` is the full reachable set of the argument.
func (r *Result) graphEscapes(es *escapeState, graph heap.NodeSet, extraRoots []heap.NodeSet) bool {
	if len(graph) == 0 {
		return false
	}
	for id := range graph {
		if es.globalReach.Has(id) {
			return true
		}
	}
	for _, roots := range extraRoots {
		reach := r.Heap.Reach(roots)
		for id := range graph {
			if reach.Has(id) {
				return true
			}
		}
	}
	// Stored into a node outside the graph?
	for i := range r.Heap.Nodes {
		id := heap.NodeID(i)
		if graph.Has(id) {
			continue
		}
		for _, key := range fieldKeys(r.Heap, id) {
			for m := range r.Heap.Field(id, key) {
				if graph.Has(m) {
					return true
				}
			}
		}
	}
	// Stored through a reference with an empty points-to set (e.g. a
	// receiver no analyzed code ever allocates): the target is
	// unknowable, so assume the store escapes.
	for _, f := range r.IR.Funcs {
		escaped := false
		f.Instrs(func(in *ir.Instr) bool {
			var target, val *ir.Value
			switch in.Op {
			case ir.OpStore:
				target, val = in.Args[0], in.Args[1]
			case ir.OpStoreIdx:
				target, val = in.Args[0], in.Args[2]
			default:
				return true
			}
			if len(r.Heap.PointsTo(target)) > 0 {
				return true
			}
			for id := range r.Heap.PointsTo(val) {
				if graph.Has(id) {
					escaped = true
					return false
				}
			}
			return true
		})
		if escaped {
			return true
		}
	}
	return false
}

func fieldKeys(a *heap.Analysis, id heap.NodeID) []string {
	var keys []string
	// The analysis exposes field sets only via Field(key); enumerate
	// via the node's recorded edges.
	for key := range a.FieldEdges(id) {
		keys = append(keys, key)
	}
	return keys
}

// argReusable decides §3.3 for one serialized argument of a remote
// call site: the callee-side clone graph of this argument must not
// escape the callee.
func (r *Result) argReusable(es *escapeState, site *ir.Instr, argNodes heap.NodeSet) bool {
	callee, ok := r.IR.FuncOf[site.Callee]
	if !ok {
		return false // no body: cannot prove anything
	}
	clones := r.Heap.CloneSetOf(heap.ArgCtx(site.Callee), argNodes)
	if len(clones) == 0 && len(argNodes) > 0 {
		return false
	}
	graph := r.Heap.Reach(clones)

	// Lifetime roots beyond globals: the receiver instance (storing an
	// argument into a field of the remote object keeps it alive across
	// calls) and the callee's returned graph (a returned argument
	// flows back to the caller).
	var extra []heap.NodeSet
	if !site.Callee.Static && len(callee.Params) > 0 {
		extra = append(extra, r.Heap.PointsTo(callee.Params[0]))
	}
	rets := heap.NodeSet{}
	for _, rv := range ir.ReturnValues(callee) {
		rets.AddAll(r.Heap.PointsTo(rv))
	}
	extra = append(extra, rets)

	return !r.graphEscapes(es, graph, extra)
}

// retReusable decides §3.3 for the return value at the caller: the
// clone graph materialized at this call site must not escape the
// caller (it may, however, be re-sent over further RMIs — those copy).
//
// Beyond the heap-escape rules there is a temporal one: the next
// invocation of the same call site overwrites the cached graph, so the
// value must be dead by then. A same-site re-execution only happens
// through a loop back edge, so it suffices that the result value never
// flows into a phi (it does not survive a loop iteration or join).
func (r *Result) retReusable(es *escapeState, site *ir.Instr, retNodes heap.NodeSet) bool {
	if site.Dst != nil {
		for _, u := range site.Dst.Uses {
			if u.Op == ir.OpPhi {
				return false
			}
		}
	}
	clones := r.Heap.CloneSetOf(heap.RetCtx(site.SiteID), retNodes)
	if len(clones) == 0 && len(retNodes) > 0 {
		return false
	}
	graph := r.Heap.Reach(clones)

	// If any function can return part of this graph, it outlives the
	// caller's frame.
	var extra []heap.NodeSet
	rets := heap.NodeSet{}
	for _, f := range r.IR.Funcs {
		for _, rv := range ir.ReturnValues(f) {
			rets.AddAll(r.Heap.PointsTo(rv))
		}
	}
	extra = append(extra, rets)

	return !r.graphEscapes(es, graph, extra)
}
