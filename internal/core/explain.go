package core

import (
	"fmt"
	"sort"
	"strings"

	"cormi/internal/heap"
	"cormi/internal/model"
	"cormi/internal/serial"
)

// ExplainSchema identifies the machine-readable explain report format
// consumed by `rmic -explain-json` readers and the rmibench decisions
// section. Bump on incompatible change.
const ExplainSchema = "cormi-explain/1"

// ExplainReport is the audit-layer view of a compiled program: one
// Decision record per remote call site stating what the optimizer did
// and, where an optimization was denied, the heap-analysis witness
// that denied it.
type ExplainReport struct {
	Schema   string         `json:"schema"`
	Source   string         `json:"source,omitempty"`
	Analysis *AnalysisNote  `json:"analysis,omitempty"`
	Sites    []SiteDecision `json:"sites"`
}

// AnalysisNote summarizes how the heap analysis itself behaved on this
// program — in particular whether the context budget silently demoted
// any call sites to the merged context (a precision loss that would
// otherwise be invisible in the per-site decisions).
type AnalysisNote struct {
	Contexts        int      `json:"contexts"`
	BudgetFallbacks int      `json:"budget_fallbacks"`
	FallbackFuncs   []string `json:"fallback_funcs,omitempty"`
}

// SiteDecision is the per-call-site Decision record.
type SiteDecision struct {
	Site    string `json:"site"`
	Callee  string `json:"callee,omitempty"`
	Dead    bool   `json:"dead,omitempty"`
	AckOnly bool   `json:"ack_only"`

	CycleCheck    CycleDecision   `json:"cycle_check"`
	RetCycleCheck *CycleDecision  `json:"ret_cycle_check,omitempty"`
	Args          []ValueDecision `json:"args"`
	Ret           *ValueDecision  `json:"ret,omitempty"`
}

// CycleDecision records the §3.2 verdict for one message direction.
type CycleDecision struct {
	Elided        bool           `json:"elided"`
	LinearRefined bool           `json:"linear_refined,omitempty"`
	Witness       *WitnessDetail `json:"witness,omitempty"`
}

// WitnessDetail is the JSON form of a heap.CycleWitness: why the cycle
// table had to be kept.
type WitnessDetail struct {
	Kind          string `json:"kind"` // "cycle" or "shared"
	RepeatedAlloc int    `json:"repeated_alloc"`
	FirstPath     string `json:"first_path"`
	RepeatPath    string `json:"repeat_path"`
	Text          string `json:"text"`
}

// ValueDecision records the §3.1/§3.3 verdicts for one serialized
// argument or return value.
type ValueDecision struct {
	Index int    `json:"index"`
	Kind  string `json:"kind"`
	// PlanShape is "primitive", "inlined" (call-site-specific marshaler
	// with a statically known root class) or "dynamic" (polymorphic
	// fallback through the class-mode path).
	PlanShape     string `json:"plan_shape"`
	RootClass     string `json:"root_class,omitempty"`
	InlinedSteps  int    `json:"inlined_steps,omitempty"`
	DynamicFields int    `json:"dynamic_fields,omitempty"`
	// HeapAllocs lists the logical allocation numbers the plan was
	// derived from — the provenance link back to internal/heap.
	HeapAllocs []int         `json:"heap_allocs,omitempty"`
	Reuse      ReuseDecision `json:"reuse"`
}

// ReuseDecision records whether the §3.3 buffer reuse fired, and the
// escape witness when it did not.
type ReuseDecision struct {
	Applied    bool   `json:"applied"`
	DeniedRule string `json:"denied_rule,omitempty"`
	// DeniedAlloc is the logical allocation number of the escaping
	// node, when the denial rule concerns a concrete node.
	DeniedAlloc *int   `json:"denied_alloc,omitempty"`
	Detail      string `json:"detail,omitempty"`
}

// RulePrimitive marks non-reference values in reuse decisions: only
// reference graphs have reusable buffers, so the question does not
// arise.
const RulePrimitive = "primitive"

// Explain builds the audit report for a compiled program. source is a
// free-form label (file name, workload name) carried into the report.
// Sites are emitted in sorted name order (not compilation order) so
// the JSON form is byte-stable and diffable across runs and compiler
// versions.
func (r *Result) Explain(source string) *ExplainReport {
	rep := &ExplainReport{Schema: ExplainSchema, Source: source}
	if r.Heap != nil {
		note := &AnalysisNote{Contexts: r.Heap.AnalysisStats().Contexts}
		for name, n := range r.Heap.BudgetFallbacks {
			note.BudgetFallbacks += n
			note.FallbackFuncs = append(note.FallbackFuncs, name)
		}
		sort.Strings(note.FallbackFuncs)
		rep.Analysis = note
	}
	for _, si := range r.Sites {
		rep.Sites = append(rep.Sites, r.siteDecision(si))
	}
	sort.Slice(rep.Sites, func(i, j int) bool { return rep.Sites[i].Site < rep.Sites[j].Site })
	return rep
}

func (r *Result) siteDecision(si *SiteInfo) SiteDecision {
	d := SiteDecision{Site: si.Name, Dead: si.Dead, AckOnly: si.IgnoreRet}
	if si.Callee != nil {
		d.Callee = si.Callee.QualifiedName()
	}
	if si.Dead {
		// Unreachable code: nothing was generated, nothing to audit.
		d.CycleCheck = CycleDecision{Elided: true}
		return d
	}
	d.CycleCheck = cycleDecision(si.MayCycle, si.CycleWitness, si.LinearRefined)
	for i, plan := range si.ArgPlans {
		vd := valueDecision(i, plan)
		vd.HeapAllocs = allocNumbers(r.Heap, si.ArgNodes[i])
		vd.Reuse = reuseDecision(plan, si.ArgReusable[i], si.ArgReuseDenied[i])
		d.Args = append(d.Args, vd)
	}
	if len(d.Args) == 0 {
		d.Args = []ValueDecision{} // explicit empty list in JSON
	}
	if si.NumRet == 1 && len(si.RetPlans) == 1 {
		rc := cycleDecision(si.RetMayCycle, si.RetCycleWitness, si.LinearRefined)
		d.RetCycleCheck = &rc
		vd := valueDecision(0, si.RetPlans[0])
		vd.HeapAllocs = allocNumbers(r.Heap, si.RetNodes)
		vd.Reuse = reuseDecision(si.RetPlans[0], si.RetReusable, si.RetReuseDenied)
		d.Ret = &vd
	}
	return d
}

func cycleDecision(mayCycle bool, w *heap.CycleWitness, linear bool) CycleDecision {
	d := CycleDecision{Elided: !mayCycle, LinearRefined: linear}
	if w != nil {
		d.Witness = &WitnessDetail{
			Kind:          w.Kind,
			RepeatedAlloc: w.Alloc,
			FirstPath:     strings.Join(w.FirstPath, ""),
			RepeatPath:    strings.Join(w.Path, ""),
			Text:          w.String(),
		}
	}
	return d
}

func valueDecision(index int, p *serial.Plan) ValueDecision {
	vd := ValueDecision{Index: index, Kind: p.Kind.String()}
	if p.Kind != model.FRef {
		vd.PlanShape = "primitive"
		return vd
	}
	if p.Root == nil {
		vd.PlanShape = "dynamic"
		return vd
	}
	vd.PlanShape = "inlined"
	vd.RootClass = p.Root.Class.Name
	seen := map[*serial.NodePlan]bool{}
	var walk func(np *serial.NodePlan)
	walk = func(np *serial.NodePlan) {
		if np == nil {
			vd.DynamicFields++
			return
		}
		if seen[np] {
			return
		}
		seen[np] = true
		vd.InlinedSteps += len(np.Steps)
		for _, s := range np.Steps {
			switch s.Op {
			case serial.OpRef:
				walk(s.Target)
			case serial.OpRefDynamic:
				vd.DynamicFields++
			}
		}
		if np.Class.Kind == model.KRefArray {
			walk(np.Elem)
		}
	}
	walk(p.Root)
	return vd
}

func reuseDecision(p *serial.Plan, applied bool, denied *EscapeWitness) ReuseDecision {
	if applied {
		return ReuseDecision{Applied: true}
	}
	if p.Kind != model.FRef {
		return ReuseDecision{DeniedRule: RulePrimitive,
			Detail: "only reference graphs have reusable buffers"}
	}
	if denied == nil {
		return ReuseDecision{DeniedRule: "unknown"}
	}
	rd := ReuseDecision{DeniedRule: denied.Rule, Detail: denied.Detail}
	if denied.Node >= 0 {
		alloc := denied.Alloc
		rd.DeniedAlloc = &alloc
	}
	return rd
}

func allocNumbers(a *heap.Analysis, set heap.NodeSet) []int {
	if len(set) == 0 {
		return nil
	}
	var out []int
	for _, id := range set.Sorted() {
		out = append(out, a.Nodes[id].Logical)
	}
	sort.Ints(out)
	return out
}

// Format renders the report as the human-readable `rmic -explain`
// text, in the spirit of the rmic dump tools.
func (rep *ExplainReport) Format() string {
	var b strings.Builder
	if rep.Source != "" {
		fmt.Fprintf(&b, "== explain: %s ==\n", rep.Source)
	}
	if rep.Analysis != nil && rep.Analysis.BudgetFallbacks > 0 {
		fmt.Fprintf(&b, "analysis: %d call sites demoted by the context budget (%s)\n",
			rep.Analysis.BudgetFallbacks, strings.Join(rep.Analysis.FallbackFuncs, ", "))
	}
	for _, d := range rep.Sites {
		fmt.Fprintf(&b, "call site %s", d.Site)
		if d.Callee != "" {
			fmt.Fprintf(&b, " -> %s", d.Callee)
		}
		b.WriteString("\n")
		if d.Dead {
			b.WriteString("  dead code: no marshalers generated\n")
			continue
		}
		fmt.Fprintf(&b, "  reply: %s\n", ackWord(d.AckOnly))
		fmt.Fprintf(&b, "  cycle check (args): %s\n", d.CycleCheck.format())
		for _, a := range d.Args {
			fmt.Fprintf(&b, "  arg %d: %s\n", a.Index, a.format())
		}
		if d.Ret != nil {
			if d.RetCycleCheck != nil {
				fmt.Fprintf(&b, "  cycle check (ret): %s\n", d.RetCycleCheck.format())
			}
			fmt.Fprintf(&b, "  ret: %s\n", d.Ret.format())
		}
	}
	return b.String()
}

func ackWord(ack bool) string {
	if ack {
		return "ack-only (result ignored at the call site)"
	}
	return "full (result used)"
}

func (c CycleDecision) format() string {
	if c.Elided {
		s := "ELIDED — no allocation repeats"
		if c.LinearRefined {
			s = "ELIDED — linear-list refinement (constructor-ordered chain)"
		}
		return s
	}
	if c.Witness != nil {
		return "KEPT — " + c.Witness.Text
	}
	return "KEPT"
}

func (v ValueDecision) format() string {
	var parts []string
	switch v.PlanShape {
	case "primitive":
		parts = append(parts, v.Kind)
	case "dynamic":
		parts = append(parts, "polymorphic reference, dynamic (class mode) serializer")
	default:
		s := fmt.Sprintf("inlined marshaler for %s (%d steps", v.RootClass, v.InlinedSteps)
		if v.DynamicFields > 0 {
			s += fmt.Sprintf(", %d dynamic fields", v.DynamicFields)
		}
		s += ")"
		parts = append(parts, s)
	}
	if len(v.HeapAllocs) > 0 {
		nums := make([]string, len(v.HeapAllocs))
		for i, n := range v.HeapAllocs {
			nums[i] = fmt.Sprint(n)
		}
		parts = append(parts, "allocs {"+strings.Join(nums, ",")+"}")
	}
	r := v.Reuse
	switch {
	case r.Applied:
		parts = append(parts, "reuse APPLIED")
	case r.DeniedRule == RulePrimitive:
		// No reuse question for primitives; say nothing.
	default:
		s := "reuse DENIED [" + r.DeniedRule
		if r.DeniedAlloc != nil {
			s += fmt.Sprintf(", allocation %d", *r.DeniedAlloc)
		}
		s += "]"
		if r.Detail != "" {
			s += " " + r.Detail
		}
		parts = append(parts, s)
	}
	return strings.Join(parts, "; ")
}
