package core

import (
	"encoding/json"
	"os"
	"path/filepath"
	"sort"
	"testing"
)

// explainGoldenSrc exercises every decision field: a kept cycle check
// with a witness, elided checks, applied and denied reuse, primitive
// and inlined plan shapes, a return value, and two call sites whose
// compilation order differs from their sorted name order.
const explainGoldenSrc = `
class Leaf { int v; }
class Pair { Leaf l; Leaf r; }
remote class Sink {
	static Pair cache;
	int take(Pair p) { return p.l.v; }
	Pair stash(Pair p) { Sink.cache = p; return p; }
}
class Main {
	static int main() {
		Sink s = new Sink();
		Pair a = new Pair();
		a.l = new Leaf();
		a.r = a.l;
		int x = s.take(a);
		Pair b = new Pair();
		b.l = new Leaf();
		b.r = new Leaf();
		Pair c = s.stash(b);
		return x + c.l.v;
	}
}`

// TestExplainJSONGolden pins the byte-exact cormi-explain/1 wire form:
// the schema is consumed by rmic -explain-json readers and the
// rmibench decisions section, so field renames, ordering changes or
// accidental nondeterminism must show up as a reviewed golden diff.
// The golden also round-trips back through the decoder.
func TestExplainJSONGolden(t *testing.T) {
	r := compile(t, explainGoldenSrc)
	rep := r.Explain("explain_golden.jp")
	raw, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	raw = append(raw, '\n')

	path := filepath.Join("testdata", "explain_golden.json")
	if os.Getenv("UPDATE_GOLDEN") != "" {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, raw, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("no golden (run with UPDATE_GOLDEN=1 to create): %v", err)
	}
	if string(want) != string(raw) {
		t.Errorf("explain JSON drifted from golden (UPDATE_GOLDEN=1 to accept):\n--- got ---\n%s\n--- want ---\n%s",
			raw, want)
	}

	var back ExplainReport
	if err := json.Unmarshal(want, &back); err != nil {
		t.Fatalf("golden does not round-trip: %v", err)
	}
	if back.Schema != ExplainSchema {
		t.Errorf("schema = %q, want %q", back.Schema, ExplainSchema)
	}
	if len(back.Sites) != len(rep.Sites) {
		t.Errorf("round-trip lost sites: %d -> %d", len(rep.Sites), len(back.Sites))
	}
	reraw, err := json.MarshalIndent(&back, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if string(append(reraw, '\n')) != string(want) {
		t.Error("decode/encode round-trip is not the identity on the golden")
	}
}

// TestExplainSitesSorted pins the satellite fix: sites are emitted in
// sorted name order regardless of compilation order, and repeat runs
// are byte-identical.
func TestExplainSitesSorted(t *testing.T) {
	r := compile(t, explainGoldenSrc)
	rep := r.Explain("x")
	if !sort.SliceIsSorted(rep.Sites, func(i, j int) bool { return rep.Sites[i].Site < rep.Sites[j].Site }) {
		names := make([]string, len(rep.Sites))
		for i, d := range rep.Sites {
			names[i] = d.Site
		}
		t.Errorf("sites not sorted: %v", names)
	}
	a, _ := json.Marshal(rep)
	b, _ := json.Marshal(compile(t, explainGoldenSrc).Explain("x"))
	if string(a) != string(b) {
		t.Error("explain JSON differs between two identical compiles")
	}
}
