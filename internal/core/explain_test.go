package core

import (
	"encoding/json"
	"strings"
	"testing"
)

// cyclicSrc builds a genuine two-node cycle before the remote call, so
// the cycle check cannot be elided and the decision must carry the
// heap-analysis witness that kept it.
const cyclicSrc = `
class Node { Node next; int v; }
remote class Sink {
	void take(Node n) { }
	static void main() {
		Node a = new Node();
		Node b = new Node();
		a.next = b;
		b.next = a;
		Sink s = new Sink();
		s.take(a);
	}
}`

func explainSite(t *testing.T, src, callee string) SiteDecision {
	t.Helper()
	r := compile(t, src)
	sites := r.SitesOfCallee(callee)
	if len(sites) == 0 {
		t.Fatalf("no call sites of %s", callee)
	}
	rep := r.Explain("test")
	for _, d := range rep.Sites {
		if d.Site == sites[0].Name {
			return d
		}
	}
	t.Fatalf("no decision record for %s in %+v", sites[0].Name, rep.Sites)
	return SiteDecision{}
}

func TestExplainKeptCycleCheckCarriesWitness(t *testing.T) {
	d := explainSite(t, cyclicSrc, "Sink.take")
	if d.CycleCheck.Elided {
		t.Fatal("a genuine a->b->a cycle must keep the cycle check")
	}
	w := d.CycleCheck.Witness
	if w == nil {
		t.Fatal("kept cycle check without a witness explains nothing")
	}
	if w.Kind != "cycle" {
		t.Errorf("witness kind = %q, want %q", w.Kind, "cycle")
	}
	if w.RepeatPath == "" || w.Text == "" {
		t.Errorf("witness missing paths/text: %+v", w)
	}
}

func TestExplainElidedCheckAndAppliedReuse(t *testing.T) {
	// Figure 10 shape: the argument never escapes and cannot cycle, so
	// both optimizations fire and the record says so with provenance.
	d := explainSite(t, `
remote class Foo {
	double sum;
	void foo(double[] a) {
		this.sum = a[0] + a[1];
	}
	static void main() {
		Foo f = new Foo();
		double[] a = new double[2];
		f.foo(a);
	}
}`, "Foo.foo")
	if !d.CycleCheck.Elided {
		t.Error("acyclic double[] argument: cycle check should be elided")
	}
	if d.CycleCheck.Witness != nil {
		t.Errorf("elided check must not carry a witness: %+v", d.CycleCheck.Witness)
	}
	if len(d.Args) != 1 {
		t.Fatalf("got %d arg decisions, want 1", len(d.Args))
	}
	a := d.Args[0]
	if !a.Reuse.Applied {
		t.Errorf("reuse should be applied, denied by %q", a.Reuse.DeniedRule)
	}
	if a.PlanShape != "inlined" {
		t.Errorf("plan_shape = %q, want inlined", a.PlanShape)
	}
	if len(a.HeapAllocs) == 0 {
		t.Error("no heap allocation provenance on the argument decision")
	}
}

func TestExplainDenialNamesEscapeRuleAndAlloc(t *testing.T) {
	// Figure 11 shape: the argument graph reaches a static variable, so
	// reuse is denied and the record must name the rule and the
	// escaping allocation.
	d := explainSite(t, `
class Data { }
class Bar { Data d; }
remote class Foo {
	static Data d;
	void foo(Bar a) {
		Foo.d = a.d;
	}
	static void main() {
		Foo f = new Foo();
		Bar b = new Bar();
		b.d = new Data();
		f.foo(b);
	}
}`, "Foo.foo")
	a := d.Args[0]
	if a.Reuse.Applied {
		t.Fatal("globally reachable argument must not be reuse-applied")
	}
	if a.Reuse.DeniedRule != RuleGlobalReachable {
		t.Errorf("denied_rule = %q, want %q", a.Reuse.DeniedRule, RuleGlobalReachable)
	}
	if a.Reuse.DeniedAlloc == nil {
		t.Error("denial about a concrete node must name its allocation")
	}
}

func TestExplainJSONRoundTripAndFormat(t *testing.T) {
	r := compile(t, cyclicSrc)
	rep := r.Explain("cyclic.jp")
	raw, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	var back ExplainReport
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatalf("report does not round-trip: %v", err)
	}
	if back.Schema != ExplainSchema || back.Source != "cyclic.jp" {
		t.Errorf("round-trip lost header: %+v", back)
	}
	if len(back.Sites) != len(rep.Sites) {
		t.Errorf("round-trip lost sites: %d -> %d", len(rep.Sites), len(back.Sites))
	}
	text := rep.Format()
	for _, want := range []string{"cyclic.jp", "Sink.take", "KEPT"} {
		if !strings.Contains(text, want) {
			t.Errorf("Format() missing %q:\n%s", want, text)
		}
	}
}
