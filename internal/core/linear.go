package core

import (
	"cormi/internal/heap"
	"cormi/internal/ir"
	"cormi/internal/lang"
)

// The paper's conclusions name a precision limit of §3.2: "Currently
// linked lists (containing no dynamic cycles) are mistakenly
// identified as having cycles", because every list node comes from one
// allocation site whose heap-graph node points to itself. This file
// implements that future-work refinement as an opt-in analysis
// (Options.LinearListRefinement).
//
// The refinement is sound under three conditions, checked statically:
//
//  1. The argument's class C has exactly one reference field f, of
//     type C (a chain class).
//  2. f is constructor-ordered: every store to f in the whole program
//     occurs in a constructor of C, into `this`, from a constructor
//     parameter. A freshly constructed object can then only point to
//     objects that already existed, so following f strictly decreases
//     construction time — no runtime cycle can exist.
//  3. The object is the message's only reference argument. Each node
//     has exactly one outgoing reference, so the traversal from one
//     root is a simple path: no node can be reached twice, which means
//     dropping the cycle table cannot lose sharing either. (With two
//     list arguments a shared suffix would be duplicated instead of
//     shared, so the refinement must not apply — Figure 8 still
//     holds.)

// chainClass reports whether the argument's nodes are all one class C
// forming a linear chain (conditions 1 and 2).
func (r *Result) chainClass(nodes heap.NodeSet, declType lang.Type) bool {
	concrete := r.concreteType(nodes, declType)
	ct, ok := concrete.(*lang.ClassType)
	if !ok {
		return false
	}
	c := ct.Decl
	var refField *lang.FieldDecl
	for _, fd := range langFields(c) {
		if !lang.IsRef(fd.Type) {
			continue
		}
		if refField != nil {
			return false // more than one reference field
		}
		refField = fd
	}
	if refField == nil {
		return false // no recursion at all: the plain verdict suffices
	}
	ft, ok := refField.Type.(*lang.ClassType)
	if !ok || ft.Decl != c {
		return false
	}
	return r.constructorOrdered(refField)
}

// constructorOrdered checks condition 2 for one field.
func (r *Result) constructorOrdered(fd *lang.FieldDecl) bool {
	ordered := true
	for _, f := range r.IR.Funcs {
		if !ordered {
			break
		}
		f.Instrs(func(in *ir.Instr) bool {
			if in.Op != ir.OpStore || in.Field != fd {
				return true
			}
			// Must be inside a constructor of the owning class ...
			if !f.Method.IsCtor || f.Method.Class != fd.Owner {
				ordered = false
				return false
			}
			// ... storing into `this` ...
			if len(f.Params) == 0 || in.Args[0] != f.Params[0] {
				ordered = false
				return false
			}
			// ... from a constructor parameter (already existing).
			fromParam := false
			for _, p := range f.Params[1:] {
				if in.Args[1] == p {
					fromParam = true
					break
				}
			}
			if !fromParam {
				ordered = false
				return false
			}
			return true
		})
	}
	return ordered
}

// refineLinear clears a site's cycle verdicts where the refinement
// applies (condition 3 is checked here: exactly one reference value in
// the message).
func (r *Result) refineLinear(si *SiteInfo, argNodeSets []heap.NodeSet, argTypes []lang.Type, retNodes heap.NodeSet) {
	if si.MayCycle && len(argNodeSets) == 1 && r.chainClass(argNodeSets[0], argTypes[0]) {
		si.MayCycle = false
		si.CycleWitness = nil
		si.LinearRefined = true
		for _, p := range si.ArgPlans {
			p.NeedCycle = false
		}
	}
	if si.RetMayCycle && si.NumRet == 1 && si.Callee != nil &&
		r.chainClass(retNodes, si.Callee.Ret) {
		si.RetMayCycle = false
		si.RetCycleWitness = nil
		si.LinearRefined = true
		for _, p := range si.RetPlans {
			p.NeedCycle = false
		}
	}
}
