package core

import (
	"testing"

	"cormi/internal/model"
	"cormi/internal/serial"
	"cormi/internal/stats"
	"cormi/internal/wire"
)

func compileOpts(t *testing.T, src string, opts Options) *Result {
	t.Helper()
	r, err := CompileOpts(src, model.NewRegistry(), opts)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	return r
}

const orderedListSrc = `
class LinkedList {
	int v;
	LinkedList Next;
	LinkedList(LinkedList n) { this.Next = n; }
}
remote class Foo {
	void send(LinkedList l) { }
	static void benchmark() {
		LinkedList head = null;
		for (int i = 0; i < 100; i = i + 1) {
			head = new LinkedList(head);
		}
		Foo f = new Foo();
		f.send(head);
	}
}
`

func TestLinearRefinementClearsListVerdict(t *testing.T) {
	// Off (the paper's published behavior): flagged cyclic.
	r := compileOpts(t, orderedListSrc, Options{})
	if !r.SitesOfCallee("Foo.send")[0].MayCycle {
		t.Fatal("baseline should flag the list cyclic")
	}
	// On (the paper's future work): proven acyclic.
	r = compileOpts(t, orderedListSrc, Options{LinearListRefinement: true})
	si := r.SitesOfCallee("Foo.send")[0]
	if si.MayCycle {
		t.Fatal("constructor-ordered list should be proven acyclic")
	}
	if si.ArgPlans[0].NeedCycle {
		t.Fatal("plan still demands a cycle table")
	}
}

func TestLinearRefinementRejectsLateStores(t *testing.T) {
	// Next is reassigned outside the constructor: a ring becomes
	// possible, so the refinement must not apply.
	r := compileOpts(t, `
class LinkedList {
	LinkedList Next;
	LinkedList(LinkedList n) { this.Next = n; }
}
remote class Foo {
	void send(LinkedList l) { }
	static void benchmark() {
		LinkedList head = new LinkedList(null);
		LinkedList tail = new LinkedList(head);
		head.Next = tail;
		Foo f = new Foo();
		f.send(head);
	}
}`, Options{LinearListRefinement: true})
	if !r.SitesOfCallee("Foo.send")[0].MayCycle {
		t.Fatal("field store outside the constructor must keep cycle detection")
	}
}

func TestLinearRefinementRejectsCtorSelfStore(t *testing.T) {
	// The constructor stores something that is not a parameter (here:
	// this itself) — Figure 9 in constructor clothing.
	r := compileOpts(t, `
class LinkedList {
	LinkedList Next;
	LinkedList() { this.Next = this; }
}
remote class Foo {
	void send(LinkedList l) { }
	static void benchmark() {
		LinkedList head = new LinkedList();
		Foo f = new Foo();
		f.send(head);
	}
}`, Options{LinearListRefinement: true})
	if !r.SitesOfCallee("Foo.send")[0].MayCycle {
		t.Fatal("self-store in constructor must keep cycle detection")
	}
}

func TestLinearRefinementRejectsTwoRefArgs(t *testing.T) {
	// Two list arguments may share a suffix (Figure 8 with lists):
	// dropping the table would duplicate the shared tail.
	r := compileOpts(t, `
class LinkedList {
	LinkedList Next;
	LinkedList(LinkedList n) { this.Next = n; }
}
remote class Foo {
	void send2(LinkedList a, LinkedList b) { }
	static void benchmark() {
		LinkedList shared = new LinkedList(null);
		LinkedList a = new LinkedList(shared);
		LinkedList b = new LinkedList(shared);
		Foo f = new Foo();
		f.send2(a, b);
	}
}`, Options{LinearListRefinement: true})
	if !r.SitesOfCallee("Foo.send2")[0].MayCycle {
		t.Fatal("two reference arguments must keep cycle detection")
	}
}

func TestLinearRefinementRejectsTwoRefFields(t *testing.T) {
	// A binary tree node could share subtrees; only single-chain
	// classes qualify.
	r := compileOpts(t, `
class Tree {
	Tree l;
	Tree r;
	Tree(Tree a, Tree b) { this.l = a; this.r = b; }
}
remote class Foo {
	void send(Tree t) { }
	static void benchmark() {
		Tree leaf = new Tree(null, null);
		Tree root = new Tree(leaf, leaf);
		Foo f = new Foo();
		f.send(root);
	}
}`, Options{LinearListRefinement: true})
	if !r.SitesOfCallee("Foo.send")[0].MayCycle {
		t.Fatal("two reference fields must keep cycle detection")
	}
}

func TestLinearRefinementRoundTripsCorrectly(t *testing.T) {
	// End to end: serialize a 50-node list with the refined plan (no
	// cycle table at all) and verify the graph arrives intact.
	r := compileOpts(t, orderedListSrc, Options{LinearListRefinement: true})
	si := r.SitesOfCallee("Foo.send")[0]
	plan := si.ArgPlans[0]
	nodeClass, _ := r.ModelClass("LinkedList")
	var head *model.Object
	for i := 0; i < 50; i++ {
		x := model.New(nodeClass)
		x.Set("v", model.Int(int64(i)))
		x.Set("Next", model.Ref(head))
		head = x
	}
	var c stats.Counters
	cfg := serial.Config{Mode: serial.ModeSite, CycleElim: true}
	m := wire.NewMessage(0)
	if _, err := serial.WriteValues(m, []model.Value{model.Ref(head)}, []*serial.Plan{plan}, cfg, &c); err != nil {
		t.Fatal(err)
	}
	if s := c.Snapshot(); s.CycleTables != 0 || s.CycleLookups != 0 {
		t.Fatalf("refined list still paid cycle work: %+v", s)
	}
	got, _, _, err := serial.ReadValues(wire.FromBytes(m.Bytes()), r.Registry, 1, []*serial.Plan{plan}, cfg, nil, &c)
	if err != nil {
		t.Fatal(err)
	}
	if !model.DeepEqual(head, got[0].O) {
		t.Fatal("refined round trip mismatch")
	}
}

func TestLinearRefinementOnReturnValue(t *testing.T) {
	r := compileOpts(t, `
class LinkedList {
	LinkedList Next;
	LinkedList(LinkedList n) { this.Next = n; }
}
remote class Maker {
	LinkedList make(int n) {
		LinkedList head = null;
		for (int i = 0; i < n; i = i + 1) {
			head = new LinkedList(head);
		}
		return head;
	}
}
class Main {
	static void main() {
		Maker m = new Maker();
		LinkedList l = m.make(10);
		LinkedList use = l.Next;
	}
}`, Options{LinearListRefinement: true})
	si := r.SitesOfCallee("Maker.make")[0]
	if si.RetMayCycle {
		t.Fatal("returned ordered list should be proven acyclic")
	}
}
