package core

import (
	"fmt"
	"sort"

	"cormi/internal/heap"
	"cormi/internal/lang"
	"cormi/internal/model"
	"cormi/internal/serial"
)

// buildPlan derives the call-site-specific serialization plan for one
// argument or return value with static type declType whose possible
// heap nodes are nodes (§3.1). Where the heap analysis pins the exact
// class of a referent, the plan inlines it; where it cannot, the plan
// falls back to the dynamic (class-specific) path for that subtree —
// "it may be impossible to inline at another call site".
func (r *Result) buildPlan(siteName string, nodes heap.NodeSet, declType lang.Type) (*serial.Plan, error) {
	kind, _, err := r.modelType(declType)
	if err != nil {
		return nil, err
	}
	if kind != model.FRef {
		return serial.PrimitivePlan(siteName, kind), nil
	}
	memo := map[string]*serial.NodePlan{}
	root, err := r.buildNodePlan(nodes, declType, memo)
	if err != nil {
		return nil, err
	}
	p := &serial.Plan{Site: siteName, Kind: model.FRef, Root: root}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p, nil
}

// planKey canonicalizes (node set, static type) for recursion
// detection: a linked list's next field maps back to the same key and
// therefore to the same (self-referential) NodePlan.
func planKey(nodes heap.NodeSet, t lang.Type) string {
	return fmt.Sprintf("%s@%s", nodes, t)
}

// buildNodePlan returns the object plan for a reference whose runtime
// classes are those of nodes, or nil when the reference is polymorphic
// (several possible classes) and must stay on the dynamic path.
func (r *Result) buildNodePlan(nodes heap.NodeSet, declType lang.Type, memo map[string]*serial.NodePlan) (*serial.NodePlan, error) {
	// Determine the single concrete type, if any.
	concrete := r.concreteType(nodes, declType)
	if concrete == nil {
		return nil, nil // polymorphic: dynamic fallback
	}
	key := planKey(nodes, concrete)
	if np, ok := memo[key]; ok {
		return np, nil
	}

	switch t := concrete.(type) {
	case *lang.ArrayType:
		mc, err := r.arrayClass(t)
		if err != nil {
			return nil, err
		}
		np := &serial.NodePlan{Class: mc}
		memo[key] = np
		if mc.Kind == model.KRefArray {
			elems := heap.NodeSet{}
			for id := range nodes {
				elems.AddAll(r.Heap.Field(id, heap.ElemKey))
			}
			elem, err := r.buildNodePlan(elems, t.Elem, memo)
			if err != nil {
				return nil, err
			}
			np.Elem = elem
		}
		return np, nil

	case *lang.ClassType:
		mc, ok := r.classOf[t.Decl]
		if !ok {
			return nil, fmt.Errorf("class %s not defined in model", t.Decl.Name)
		}
		np := &serial.NodePlan{Class: mc}
		memo[key] = np
		for i, fd := range langFields(t.Decl) {
			step := serial.Step{Field: i, FieldName: fd.Name}
			switch ft := fd.Type.(type) {
			case *lang.PrimType:
				switch ft.Kind {
				case lang.PInt:
					step.Op = serial.OpInt
				case lang.PDouble:
					step.Op = serial.OpDouble
				case lang.PBoolean:
					step.Op = serial.OpBool
				case lang.PString:
					step.Op = serial.OpString
				default:
					return nil, fmt.Errorf("field %s.%s: bad type %s", t.Decl.Name, fd.Name, ft)
				}
			default:
				targets := heap.NodeSet{}
				for id := range nodes {
					targets.AddAll(r.Heap.Field(id, heap.FieldKey(fd)))
				}
				sub, err := r.buildNodePlan(targets, fd.Type, memo)
				if err != nil {
					return nil, err
				}
				if sub == nil {
					step.Op = serial.OpRefDynamic
				} else {
					step.Op = serial.OpRef
					step.Target = sub
				}
			}
			np.Steps = append(np.Steps, step)
		}
		return np, nil
	}
	return nil, nil
}

// concreteType returns the single runtime type of nodes, or — when the
// set is empty (only null, or values from unanalyzed code) — the
// declared type when that is safe to assume. A class type is safe
// because a runtime mismatch falls back dynamically; we still require
// the declared class itself (not an unknown subclass) to be the
// prediction. Returns nil when several distinct types are possible.
func (r *Result) concreteType(nodes heap.NodeSet, declType lang.Type) lang.Type {
	if len(nodes) == 0 {
		if lang.IsRef(declType) {
			return declType
		}
		return nil
	}
	var types []lang.Type
	for _, id := range nodes.Sorted() {
		t := r.Heap.Node(id).Type
		dup := false
		for _, u := range types {
			if lang.TypeEq(t, u) {
				dup = true
				break
			}
		}
		if !dup {
			types = append(types, t)
		}
	}
	if len(types) == 1 {
		return types[0]
	}
	// Multiple possible classes: polymorphic (the Figure 5 situation
	// merged at a single site).
	sort.Slice(types, func(i, j int) bool { return types[i].String() < types[j].String() })
	return nil
}
