package core

import (
	"fmt"

	"cormi/internal/heap"
	"cormi/internal/ir"
	"cormi/internal/lang"
	"cormi/internal/model"
)

// buildSites derives SiteInfo (plans + cycle + reuse + ack verdicts)
// for every remote call site in the program.
func (r *Result) buildSites() error {
	es := r.escapeState()
	seqPerFunc := map[*ir.Func]int{}
	for siteID, in := range r.IR.RemoteSites {
		si := &SiteInfo{SiteID: siteID}
		r.Sites = append(r.Sites, si)
		if in == nil {
			// Unreachable call site (code after return): nothing to
			// generate.
			si.Dead = true
			si.Name = fmt.Sprintf("dead.%d", siteID)
			continue
		}
		fn := in.Block.Func
		seqPerFunc[fn]++
		si.Name = fmt.Sprintf("%s.%d", fn.Name, seqPerFunc[fn])
		si.Callee = in.Callee
		si.Site = in
		si.IgnoreRet = ir.IgnoredReturn(in)
		if !lang.TypeEq(in.Callee.Ret, lang.VoidType) {
			si.NumRet = 1
		}

		// Serialized arguments: everything except the remote receiver.
		args := in.Args
		params := in.Callee.Params
		if !in.Callee.Static {
			args = args[1:]
		}
		var refArgSets []heap.NodeSet
		var refArgTypes []lang.Type
		for i, arg := range args {
			declType := arg.Type
			if i < len(params) {
				declType = params[i].Type
			}
			nodes := r.Heap.PointsTo(arg)
			plan, err := r.buildPlan(si.Name, nodes, declType)
			if err != nil {
				return fmt.Errorf("site %s arg %d: %w", si.Name, i, err)
			}
			si.ArgPlans = append(si.ArgPlans, plan)
			si.ArgNodes = append(si.ArgNodes, nodes)
			reusable := false
			var denied *EscapeWitness
			if lang.IsRef(declType) {
				refArgSets = append(refArgSets, nodes)
				refArgTypes = append(refArgTypes, declType)
				denied = r.argReuseDenial(es, in, nodes)
				reusable = denied == nil
			}
			si.ArgReusable = append(si.ArgReusable, reusable)
			si.ArgReuseDenied = append(si.ArgReuseDenied, denied)
			plan.Reusable = reusable
		}

		// §3.2: one shared traversal over all argument graphs decides
		// whether this message needs a cycle table.
		si.CycleWitness = r.Heap.CycleWitnessFrom(refArgSets)
		si.MayCycle = si.CycleWitness != nil
		for _, p := range si.ArgPlans {
			if p.Kind == model.FRef {
				p.NeedCycle = si.MayCycle
			}
		}

		// Return value.
		retNodes := heap.NodeSet{}
		if si.NumRet == 1 {
			if callee, ok := r.IR.FuncOf[in.Callee]; ok {
				for _, rv := range ir.ReturnValues(callee) {
					retNodes.AddAll(r.Heap.PointsTo(rv))
				}
			}
			plan, err := r.buildPlan(si.Name+".ret", retNodes, in.Callee.Ret)
			if err != nil {
				return fmt.Errorf("site %s return: %w", si.Name, err)
			}
			si.RetNodes = retNodes
			si.RetCycleWitness = r.Heap.CycleWitnessFrom([]heap.NodeSet{retNodes})
			si.RetMayCycle = si.RetCycleWitness != nil
			if lang.IsRef(in.Callee.Ret) {
				si.RetReuseDenied = r.retReuseDenial(es, in, retNodes)
				si.RetReusable = si.RetReuseDenied == nil
			}
			plan.NeedCycle = si.RetMayCycle
			plan.Reusable = si.RetReusable
			si.RetPlans = append(si.RetPlans, plan)
		}

		// Opt-in future-work refinement (linear.go).
		if r.Opts.LinearListRefinement {
			r.refineLinear(si, refArgSets, refArgTypes, retNodes)
		}
	}
	return nil
}
