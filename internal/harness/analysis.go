package harness

// The analysis-at-scale harness (ISSUE 10): generated MiniJP corpora
// large enough to exercise the parallel per-region scheduler and the
// incremental summary cache, priced by heap.CostStats. analysis_test.go
// gates the numbers in CI (`make verify-analysis`); RunAnalysisCost
// feeds the `cost` section of the rmibench JSON report.

import (
	"fmt"
	"os"

	"cormi/internal/heap"
	"cormi/internal/heap/gen"
	"cormi/internal/ir"
	"cormi/internal/lang"
)

// CompileCorpus front-ends a generated corpus down to IR.
func CompileCorpus(cfg gen.Config) (*ir.Program, error) {
	c := gen.Generate(cfg)
	f, err := lang.Parse(c.Source)
	if err != nil {
		return nil, fmt.Errorf("harness: corpus parse: %w", err)
	}
	cp, err := lang.Check(f)
	if err != nil {
		return nil, fmt.Errorf("harness: corpus check: %w", err)
	}
	p, err := ir.Lower(cp)
	if err != nil {
		return nil, fmt.Errorf("harness: corpus lower: %w", err)
	}
	return p, nil
}

// AnalyzeCorpus compiles and analyzes a generated corpus under the
// given analysis options.
func AnalyzeCorpus(cfg gen.Config, opts heap.Options) (*heap.Analysis, error) {
	p, err := CompileCorpus(cfg)
	if err != nil {
		return nil, err
	}
	return heap.AnalyzeOpts(p, opts), nil
}

// CostRow is the bench report's analysis-cost section: one pinned
// corpus measured cold (empty cache) and warm (after a one-function
// edit), so a baseline diff catches both scalability and incremental
// regressions.
type CostRow struct {
	// Corpus identifies the pinned generator config.
	Corpus string `json:"corpus"`

	// Deterministic structure and precision counters of the cold run
	// (equal on every machine; benchdiff matches them exactly).
	Functions   int `json:"functions"`
	SCCs        int `json:"sccs"`
	Components  int `json:"components"`
	Waves       int `json:"waves"`
	Contexts    int `json:"contexts"`
	Nodes       int `json:"nodes"`
	StrongKills int `json:"strong_kills"`
	Iterations  int `json:"iterations"`
	// BudgetFallbacks must stay 0 on the pinned corpus: its call
	// fan-in is designed under the context budget.
	BudgetFallbacks int `json:"budget_fallbacks"`

	// Wall times (environment-dependent; benchdiff allows a generous
	// tolerance).
	ColdWallNS int64 `json:"cold_wall_ns"`
	WarmWallNS int64 `json:"warm_wall_ns"`

	// Incremental behavior of the warm run after editing ONE function.
	WarmCacheHits     int `json:"warm_cache_hits"`
	WarmFuncsAnalyzed int `json:"warm_funcs_analyzed"`
	// ReanalyzedFraction = WarmFuncsAnalyzed / Functions; the CI gate
	// holds it under 0.10.
	ReanalyzedFraction float64 `json:"reanalyzed_fraction"`
}

// benchCorpus is the pinned config behind the bench cost section:
// large enough that scheduling matters, small enough for `make bench`.
var benchCorpus = gen.Config{Seed: 404, Components: 30, FuncsPerComponent: 10}

// benchEditFunc is the single function edited for the warm
// measurement (an arbitrary mid-chain helper).
const benchEditFunc = "C7App.f5"

// RunAnalysisCost measures the pinned corpus cold and warm and builds
// the cost section row.
func RunAnalysisCost() (*CostRow, error) {
	dir, err := os.MkdirTemp("", "cormi-cost-")
	if err != nil {
		return nil, fmt.Errorf("harness: cost cache dir: %w", err)
	}
	defer os.RemoveAll(dir)

	opts := heap.DefaultOptions()
	opts.CacheDir = dir
	cold, err := AnalyzeCorpus(benchCorpus, opts)
	if err != nil {
		return nil, err
	}

	edited := benchCorpus
	edited.Edits = map[string]int{benchEditFunc: 1}
	warm, err := AnalyzeCorpus(edited, opts)
	if err != nil {
		return nil, err
	}

	c := cold.Cost
	row := &CostRow{
		Corpus: fmt.Sprintf("gen(seed=%d,components=%d,funcs=%d)",
			benchCorpus.Seed, benchCorpus.Components, benchCorpus.FuncsPerComponent),
		Functions:          c.Functions,
		SCCs:               c.SCCs,
		Components:         c.Components,
		Waves:              c.Waves,
		Contexts:           c.Contexts,
		Nodes:              c.Nodes,
		StrongKills:        c.StrongKills,
		Iterations:         c.Iterations,
		BudgetFallbacks:    c.BudgetFallbacks,
		ColdWallNS:         c.WallNS,
		WarmWallNS:         warm.Cost.WallNS,
		WarmCacheHits:      warm.Cost.CacheHits,
		WarmFuncsAnalyzed:  warm.Cost.FuncsAnalyzed,
		ReanalyzedFraction: float64(warm.Cost.FuncsAnalyzed) / float64(warm.Cost.Functions),
	}
	return row, nil
}
