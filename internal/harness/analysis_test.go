package harness

import (
	"encoding/json"
	"runtime"
	"testing"
	"time"

	"cormi/internal/core"
	"cormi/internal/heap"
	"cormi/internal/heap/gen"
	"cormi/internal/model"
)

// The `make verify-analysis` gates (ISSUE 10): the 2k-function corpus
// must analyze inside the wall budget with zero silent precision loss,
// a one-function edit must re-analyze under 10% of the summaries, and
// the result must be bit-identical across worker counts, GOMAXPROCS
// settings, and cache states.

// gateCorpus is the pinned scalability corpus: 100 independent
// regions x 20 helpers (+2 service methods each) = 2200 bodied
// functions.
var gateCorpus = gen.Config{Seed: 2026, Components: 100, FuncsPerComponent: 20}

// analysisWallBudget caps the analysis driver's own wall time on the
// gate corpus. The corpus solves in ~30ms on an unloaded dev machine;
// the budget leaves two orders of magnitude for slow CI hardware while
// still catching an asymptotic regression (the pre-scheduler engine
// would iterate the whole program to fixpoint instead of per-region).
const analysisWallBudget = 5 * time.Second

func gateOpts(workers int, dir string) heap.Options {
	o := heap.DefaultOptions()
	o.Workers = workers
	o.CacheDir = dir
	return o
}

// TestAnalysisCorpusGate: the parallel cold run of the 2k-function
// corpus must finish inside the budget, discover the expected
// structure, and never fall back on the context budget (the corpus
// fan-in is designed under it — a fallback here means the bounded-
// context rule regressed).
func TestAnalysisCorpusGate(t *testing.T) {
	a, err := AnalyzeCorpus(gateCorpus, gateOpts(0, "")) // Workers 0 = GOMAXPROCS
	if err != nil {
		t.Fatal(err)
	}
	c := a.Cost
	if c.Functions != 2200 {
		t.Errorf("corpus has %d bodied functions, want 2200", c.Functions)
	}
	if c.Components != gateCorpus.Components {
		t.Errorf("scheduler found %d regions, want %d", c.Components, gateCorpus.Components)
	}
	if c.BudgetFallbacks != 0 {
		t.Errorf("%d context-budget fallbacks on the pinned corpus, want 0 (%v)",
			c.BudgetFallbacks, c.FallbackFuncs)
	}
	if wall := time.Duration(c.WallNS); wall > analysisWallBudget {
		t.Errorf("analysis wall time %v exceeds budget %v", wall, analysisWallBudget)
	}
	if c.FuncsAnalyzed != c.Functions {
		t.Errorf("cold uncached run analyzed %d of %d functions", c.FuncsAnalyzed, c.Functions)
	}
}

// TestAnalysisIncrementalGate: after a cold cache populate, editing
// ONE function must re-analyze strictly less than 10% of the corpus
// and still produce a result bit-identical to an uncached cold run of
// the edited program.
func TestAnalysisIncrementalGate(t *testing.T) {
	dir := t.TempDir()
	cold, err := AnalyzeCorpus(gateCorpus, gateOpts(0, dir))
	if err != nil {
		t.Fatal(err)
	}
	if cold.Cost.CacheMisses != gateCorpus.Components {
		t.Fatalf("cold populate: %d misses, want %d", cold.Cost.CacheMisses, gateCorpus.Components)
	}

	edited := gateCorpus
	edited.Edits = map[string]int{"C42App.f13": 1}
	warm, err := AnalyzeCorpus(edited, gateOpts(0, dir))
	if err != nil {
		t.Fatal(err)
	}
	frac := float64(warm.Cost.FuncsAnalyzed) / float64(warm.Cost.Functions)
	if frac >= 0.10 {
		t.Errorf("one-function edit re-analyzed %d/%d functions (%.1f%%), want < 10%%",
			warm.Cost.FuncsAnalyzed, warm.Cost.Functions, 100*frac)
	}
	if warm.Cost.CacheHits != gateCorpus.Components-1 {
		t.Errorf("warm run: %d hits, want %d (all but the edited region)",
			warm.Cost.CacheHits, gateCorpus.Components-1)
	}

	fresh, err := AnalyzeCorpus(edited, gateOpts(0, ""))
	if err != nil {
		t.Fatal(err)
	}
	if warm.Fingerprint() != fresh.Fingerprint() {
		t.Error("incremental warm result differs from uncached cold run of the edited program")
	}
}

// TestAnalysisParallelSpeedup: with real cores available, the parallel
// cold run must be at least 2x faster than the sequential one on the
// gate corpus (best of 3 each). Single-core machines skip: there is no
// parallelism to measure, and the determinism gates below still pin
// that workers>1 cannot change the result.
func TestAnalysisParallelSpeedup(t *testing.T) {
	if runtime.NumCPU() < 2 {
		t.Skipf("need >= 2 CPUs for a speedup measurement, have %d", runtime.NumCPU())
	}
	prog, err := CompileCorpus(gateCorpus)
	if err != nil {
		t.Fatal(err)
	}
	best := func(workers int) time.Duration {
		b := time.Duration(1<<62 - 1)
		for i := 0; i < 3; i++ {
			a := heap.AnalyzeOpts(prog, gateOpts(workers, ""))
			if d := time.Duration(a.Cost.WallNS); d < b {
				b = d
			}
		}
		return b
	}
	seq := best(1)
	par := best(runtime.NumCPU())
	if par*2 > seq {
		t.Errorf("parallel %v not 2x faster than sequential %v (%d CPUs)",
			par, seq, runtime.NumCPU())
	}
}

// TestAnalysisDeterminism: the merged analysis fingerprint, the
// verdict matrix bytes, and the explain JSON bytes must be identical
// at every GOMAXPROCS x workers x cache-state combination. This is
// the hard requirement the whole scheduler design serves.
func TestAnalysisDeterminism(t *testing.T) {
	// Smaller corpus than the gate: this test runs the analysis many
	// times over.
	cfg := gen.Config{Seed: 31, Components: 12, FuncsPerComponent: 8}
	dir := t.TempDir()

	type variant struct {
		name    string
		maxproc int
		workers int
		cache   string
	}
	variants := []variant{
		{"gomax1/seq/cold", 1, 1, ""},
		{"gomax1/par/cold", 1, 4, ""},
		{"gomax4/par/populate", 4, 4, dir},
		{"gomax4/par/warm", 4, 4, dir},
		{"gomax4/seq/warm", 4, 1, dir},
		{"gomaxN/par/cold", runtime.NumCPU(), 4, ""},
	}
	var want uint64
	for i, v := range variants {
		prev := runtime.GOMAXPROCS(v.maxproc)
		a, err := AnalyzeCorpus(cfg, gateOpts(v.workers, v.cache))
		runtime.GOMAXPROCS(prev)
		if err != nil {
			t.Fatal(err)
		}
		fp := a.Fingerprint()
		if i == 0 {
			want = fp
		} else if fp != want {
			t.Errorf("%s: fingerprint %016x differs from %s %016x",
				v.name, fp, variants[0].name, want)
		}
	}

	// The end-user artifacts over the real example corpus must also be
	// byte-stable across GOMAXPROCS.
	matrix := func(maxproc int) string {
		prev := runtime.GOMAXPROCS(maxproc)
		defer runtime.GOMAXPROCS(prev)
		m, err := BuildVerdictMatrix(corpusDir, core.Options{})
		if err != nil {
			t.Fatal(err)
		}
		return m.Format()
	}
	if matrix(1) != matrix(4) {
		t.Error("verdict matrix bytes differ between GOMAXPROCS 1 and 4")
	}

	explain := func(maxproc, workers int) []byte {
		prev := runtime.GOMAXPROCS(maxproc)
		defer runtime.GOMAXPROCS(prev)
		src := gen.Generate(cfg).Source
		ho := gateOpts(workers, "")
		res, err := core.CompileOpts(src, model.NewRegistry(), core.Options{HeapOpts: &ho})
		if err != nil {
			t.Fatal(err)
		}
		b, err := json.Marshal(res.Explain("determinism"))
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	if string(explain(1, 1)) != string(explain(4, 4)) {
		t.Error("explain JSON bytes differ across GOMAXPROCS/workers")
	}
}
