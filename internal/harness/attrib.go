package harness

// Cluster-wide tail-latency attribution scenario: N independent nodes
// (each its own RMI cluster, tracer, and obs server on a loopback
// port), all serving the same call site, one of them with a slow
// executor whose trailing calls spike past the site's adaptive p99
// threshold. The aggregation runs the production path end to end — one
// node's /cluster endpoint pulls every peer's /snapshot over real HTTP
// and merges them — so the returned rows are exactly what rmitop
// renders, and the scenario is the acceptance check for DESIGN.md §14:
// merged quantiles, blame shifted to execute, and at least one
// captured exemplar.

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"time"

	"cormi/internal/model"
	"cormi/internal/obs"
	"cormi/internal/rmi"
	"cormi/internal/serial"
	"cormi/internal/trace"
)

// attribSite is the call site every node of the scenario serves.
const attribSite = "Attrib.echo.1"

// AttribSpec sizes the attribution scenario. Zero fields take the
// defaults of DefaultAttribSpec.
type AttribSpec struct {
	// Nodes is the number of independent obs nodes (>= 3 exercises a
	// real multi-peer merge).
	Nodes int
	// Sends is the number of calls each node issues to its own service.
	Sends int
	// SlowNode is the index of the node whose executor sleeps SlowDelay
	// per call (clamped into range).
	SlowNode int
	// SlowDelay is the slow node's per-call executor sleep; its
	// trailing Spikes calls sleep 10x, guaranteeing capture once the
	// warmup has armed the threshold at the 1x level.
	SlowDelay time.Duration
	// Spikes is the number of trailing 10x-slow calls on the slow node.
	Spikes int
	// Warmup is the per-site exemplar warmup (calls before the adaptive
	// threshold arms); must be below Sends-Spikes so the spikes land on
	// an armed threshold.
	Warmup int64
}

// DefaultAttribSpec keeps the scenario under ~200ms of wall time.
func DefaultAttribSpec() AttribSpec {
	return AttribSpec{Nodes: 3, Sends: 24, SlowNode: 2, SlowDelay: time.Millisecond, Spikes: 2, Warmup: 8}
}

func (s AttribSpec) withDefaults() AttribSpec {
	d := DefaultAttribSpec()
	if s.Nodes <= 0 {
		s.Nodes = d.Nodes
	}
	if s.Sends <= 0 {
		s.Sends = d.Sends
	}
	if s.SlowDelay <= 0 {
		s.SlowDelay = d.SlowDelay
	}
	if s.Spikes <= 0 {
		s.Spikes = d.Spikes
	}
	if s.Warmup <= 0 {
		s.Warmup = d.Warmup
	}
	if s.SlowNode < 0 || s.SlowNode >= s.Nodes {
		s.SlowNode = s.Nodes - 1
	}
	return s
}

// AttribRow is one site's cluster-wide attribution summary — the
// `attribution` section of the bench report.
type AttribRow struct {
	Site          string  `json:"site"`
	Calls         uint64  `json:"calls"`
	P50NS         int64   `json:"p50_ns"`
	P95NS         int64   `json:"p95_ns"`
	P99NS         int64   `json:"p99_ns"`
	TopBlame      string  `json:"top_blame"`
	TopBlameShare float64 `json:"top_blame_share"`
	Exemplars     int64   `json:"exemplars"`
}

// RunAttrib drives the scenario and returns the merged per-site rows
// as served by the aggregating node's /cluster endpoint.
func RunAttrib(spec AttribSpec) ([]AttribRow, error) {
	spec = spec.withDefaults()

	servers := make([]*obs.Server, 0, spec.Nodes)
	defer func() {
		for _, s := range servers {
			_ = s.Close()
		}
	}()
	addrs := make([]string, 0, spec.Nodes)
	for i := 0; i < spec.Nodes; i++ {
		tr := trace.New(trace.Config{
			RingSize:       256,
			ExemplarWarmup: spec.Warmup,
		})
		c := rmi.New(2, rmi.WithTracer(tr))
		defer c.Close()
		srv, err := obs.Serve("127.0.0.1:0", obs.Options{
			Tracer:   tr,
			Counters: c.Counters,
			NodeName: fmt.Sprintf("n%d", i),
			Overload: c.Overload,
		})
		if err != nil {
			return nil, fmt.Errorf("harness: attrib obs node %d: %w", i, err)
		}
		servers = append(servers, srv)
		addrs = append(addrs, srv.Addr())

		delay := time.Duration(0)
		if i == spec.SlowNode {
			delay = spec.SlowDelay
		}
		if err := attribLoad(c, spec, delay); err != nil {
			return nil, fmt.Errorf("harness: attrib node %d: %w", i, err)
		}
	}

	// Aggregate through node 0's /cluster endpoint — the production
	// pull path, not an in-process merge.
	url := "http://" + addrs[0] + "/cluster?peers=" + strings.Join(addrs[1:], ",")
	resp, err := http.Get(url)
	if err != nil {
		return nil, fmt.Errorf("harness: attrib aggregate: %w", err)
	}
	defer resp.Body.Close()
	var cv obs.ClusterView
	if err := json.NewDecoder(resp.Body).Decode(&cv); err != nil {
		return nil, fmt.Errorf("harness: attrib aggregate decode: %w", err)
	}
	if cv.Version != obs.SnapshotVersion {
		return nil, fmt.Errorf("harness: attrib cluster version %d, want %d", cv.Version, obs.SnapshotVersion)
	}
	if len(cv.Errors) > 0 {
		return nil, fmt.Errorf("harness: attrib peers unreachable: %v", cv.Errors)
	}
	if len(cv.Nodes) != spec.Nodes {
		return nil, fmt.Errorf("harness: attrib merged %d nodes, want %d", len(cv.Nodes), spec.Nodes)
	}
	rows := make([]AttribRow, 0, len(cv.Sites))
	for _, s := range cv.Sites {
		rows = append(rows, AttribRow{
			Site: s.Site, Calls: s.Calls,
			P50NS: s.P50NS, P95NS: s.P95NS, P99NS: s.P99NS,
			TopBlame: s.TopBlame, TopBlameShare: s.TopBlameShare,
			Exemplars: s.Exemplars,
		})
	}
	return rows, nil
}

// attribLoad runs one node's share of the workload: Sends echo calls,
// the executor sleeping delay each — and, on the slow node, 10x delay
// for the trailing Spikes calls so they cross the armed threshold.
func attribLoad(c *rmi.Cluster, spec AttribSpec, delay time.Duration) error {
	ref := c.Node(1).Export(&rmi.Service{
		Name: "Attrib",
		Methods: map[string]rmi.Method{
			"echo": func(call *rmi.Call, args []model.Value) []model.Value {
				if d := time.Duration(args[1].I); d > 0 {
					time.Sleep(d)
				}
				return []model.Value{args[0]}
			},
		},
	})
	cs, err := c.NewCallSite(rmi.LevelSite, rmi.SiteSpec{
		Name: attribSite, Method: "echo",
		ArgPlans: []*serial.Plan{
			serial.PrimitivePlan(attribSite, model.FInt),
			serial.PrimitivePlan(attribSite, model.FInt),
		},
		RetPlans: []*serial.Plan{serial.PrimitivePlan(attribSite, model.FInt)},
		NumRet:   1,
	})
	if err != nil {
		return err
	}
	for i := 0; i < spec.Sends; i++ {
		d := delay
		if delay > 0 && i >= spec.Sends-spec.Spikes {
			d = 10 * delay
		}
		vals, err := cs.Invoke(c.Node(0), ref, []model.Value{model.Int(int64(i)), model.Int(int64(d))})
		if err != nil {
			return err
		}
		if vals[0].I != int64(i) {
			return fmt.Errorf("echo(%d) = %d", i, vals[0].I)
		}
	}
	return nil
}

// FormatAttrib renders attribution rows as an aligned summary table.
func FormatAttrib(rows []AttribRow) string {
	if len(rows) == 0 {
		return "no attribution rows\n"
	}
	var b []byte
	b = fmt.Appendf(b, "%-28s %8s %10s %10s %10s %-14s %6s %9s\n",
		"site", "calls", "p50_ns", "p95_ns", "p99_ns", "top_blame", "share", "exemplars")
	for _, r := range rows {
		b = fmt.Appendf(b, "%-28s %8d %10d %10d %10d %-14s %5.0f%% %9d\n",
			r.Site, r.Calls, r.P50NS, r.P95NS, r.P99NS, r.TopBlame, 100*r.TopBlameShare, r.Exemplars)
	}
	return string(b)
}
