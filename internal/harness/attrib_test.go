package harness

import (
	"strings"
	"testing"
	"time"
)

// The acceptance scenario for cluster-wide attribution: three nodes,
// one slow executor, aggregated over real HTTP. The merged row must
// carry every node's calls, monotone quantiles, blame shifted to
// execute by the slow node, and at least one captured exemplar.
func TestRunAttribBlamesSlowExecutor(t *testing.T) {
	spec := AttribSpec{Nodes: 3, Sends: 16, SlowNode: 2, SlowDelay: time.Millisecond, Spikes: 2, Warmup: 6}
	rows, err := RunAttrib(spec)
	if err != nil {
		t.Fatal(err)
	}
	var row *AttribRow
	for i := range rows {
		if rows[i].Site == attribSite {
			row = &rows[i]
		}
	}
	if row == nil {
		t.Fatalf("no %s row in %+v", attribSite, rows)
	}
	if want := uint64(spec.Nodes * spec.Sends); row.Calls != want {
		t.Errorf("merged calls = %d, want %d", row.Calls, want)
	}
	if row.P50NS <= 0 || row.P50NS > row.P95NS || row.P95NS > row.P99NS {
		t.Errorf("quantiles not monotone: p50=%d p95=%d p99=%d", row.P50NS, row.P95NS, row.P99NS)
	}
	// The slow node's 10x spikes put the cluster p99 at sleep scale.
	if row.P99NS < int64(spec.SlowDelay) {
		t.Errorf("cluster p99 = %dns, below the slow executor's %v sleep", row.P99NS, spec.SlowDelay)
	}
	if row.TopBlame != "execute" {
		t.Errorf("top blame = %q (share %.2f), want execute", row.TopBlame, row.TopBlameShare)
	}
	if row.TopBlameShare <= 0.5 {
		t.Errorf("execute blame share = %.2f, want dominant (> 0.5)", row.TopBlameShare)
	}
	if row.Exemplars < 1 {
		t.Errorf("exemplars = %d, want >= 1 (spikes cross the armed threshold)", row.Exemplars)
	}

	out := FormatAttrib(rows)
	for _, want := range []string{attribSite, "top_blame", "execute"} {
		if !strings.Contains(out, want) {
			t.Errorf("FormatAttrib missing %q:\n%s", want, out)
		}
	}
}

func TestCompareAttribution(t *testing.T) {
	base := &BenchReport{Attribution: []AttribRow{{
		Site: attribSite, Calls: 48, P50NS: 1000, P95NS: 2000, P99NS: 3000,
		TopBlame: "execute", TopBlameShare: 0.9, Exemplars: 2,
	}}}
	good := &BenchReport{Attribution: []AttribRow{{
		Site: attribSite, Calls: 10, P50NS: 500, P95NS: 900, P99NS: 4000,
		TopBlame: "execute", TopBlameShare: 0.8, Exemplars: 1,
	}}}
	if regs := CompareAttribution(base, good); len(regs) != 0 {
		t.Errorf("good report flagged: %v", regs)
	}

	// Either side missing the section compares empty (old baselines).
	if regs := CompareAttribution(&BenchReport{}, good); regs != nil {
		t.Errorf("missing base section flagged: %v", regs)
	}
	if regs := CompareAttribution(base, &BenchReport{}); regs != nil {
		t.Errorf("missing cur section flagged: %v", regs)
	}

	bad := &BenchReport{Attribution: []AttribRow{{
		Site: attribSite, Calls: 0, P50NS: 3000, P95NS: 2000, P99NS: 1000,
		TopBlame: "", Exemplars: 0,
	}}}
	regs := CompareAttribution(base, bad)
	for _, want := range []string{"no calls", "not monotone", "no dominant blame", "no exemplars"} {
		found := false
		for _, r := range regs {
			if strings.Contains(r, want) {
				found = true
			}
		}
		if !found {
			t.Errorf("CompareAttribution missed %q in %v", want, regs)
		}
	}
	if regs := CompareAttribution(base, &BenchReport{Attribution: []AttribRow{{Site: "other"}}}); len(regs) == 0 ||
		!strings.Contains(regs[0], "missing") {
		t.Errorf("missing site not flagged: %v", regs)
	}
}
