package harness

// Regression comparison between two BenchReports. A fresh report fails
// against the committed baseline when any row is missing, when wall
// time per op regresses by more than NsTolerance (default 10%), or
// when allocations per op regress beyond a small absolute epsilon.
// Allocation budgets are the tighter gate: the zero-allocation hot
// path (DESIGN.md §8) is an invariant, not a statistic, so any real
// growth fails even when ns/op still looks fine.

import "fmt"

// DiffOpts tunes the regression thresholds.
type DiffOpts struct {
	// NsTolerance is the allowed fractional ns/op growth (0.10 = 10%).
	NsTolerance float64
	// AllocEpsilon is the allowed absolute growth in allocs/op,
	// absorbing amortized one-off setup allocations that land on a
	// different side of an iteration boundary between runs. The
	// effective budget per row is AllocEpsilon plus 1% of the
	// baseline's allocs/op, so zero-allocation rows stay near-strict
	// while allocation-heavy class-mode rows tolerate their own noise.
	AllocEpsilon float64
}

// DefaultDiffOpts matches the thresholds used by `make verify-perf`.
func DefaultDiffOpts() DiffOpts {
	return DiffOpts{NsTolerance: 0.10, AllocEpsilon: 0.5}
}

// allocBudget is the allowed allocs/op for a row with baseline b.
func (o DiffOpts) allocBudget(b float64) float64 {
	return b + o.AllocEpsilon + 0.01*b
}

// CompareBench reports every regression of cur against base, one
// human-readable line each. An empty result means cur passes. Rows
// present only in cur (new workloads) are not regressions; rows
// missing from cur are.
func CompareBench(base, cur *BenchReport, opts DiffOpts) []string {
	var regressions []string
	for i := range base.Rows {
		b := &base.Rows[i]
		c := cur.Row(b.Table, b.Level)
		if c == nil {
			regressions = append(regressions,
				fmt.Sprintf("%s/%s: missing from new report", b.Table, b.Level))
			continue
		}
		if b.NsPerOp > 0 && c.NsPerOp > b.NsPerOp*(1+opts.NsTolerance) {
			regressions = append(regressions, fmt.Sprintf(
				"%s/%s: ns/op %.0f -> %.0f (+%.1f%%, tolerance %.0f%%)",
				b.Table, b.Level, b.NsPerOp, c.NsPerOp,
				100*(c.NsPerOp/b.NsPerOp-1), 100*opts.NsTolerance))
		}
		if budget := opts.allocBudget(b.AllocsPerOp); c.AllocsPerOp > budget {
			regressions = append(regressions, fmt.Sprintf(
				"%s/%s: allocs/op %.2f -> %.2f (budget %.2f)",
				b.Table, b.Level, b.AllocsPerOp, c.AllocsPerOp, budget))
		}
	}
	return regressions
}
