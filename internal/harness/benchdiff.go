package harness

// Regression comparison between two BenchReports. A fresh report fails
// against the committed baseline when any row is missing, when wall
// time per op regresses by more than NsTolerance (default 10%), or
// when allocations per op regress beyond a small absolute epsilon.
// Allocation budgets are the tighter gate: the zero-allocation hot
// path (DESIGN.md §8) is an invariant, not a statistic, so any real
// growth fails even when ns/op still looks fine.

import (
	"fmt"

	"cormi/internal/core"
)

// DiffOpts tunes the regression thresholds.
type DiffOpts struct {
	// NsTolerance is the allowed fractional ns/op growth (0.10 = 10%).
	NsTolerance float64
	// AllocEpsilon is the allowed absolute growth in allocs/op,
	// absorbing amortized one-off setup allocations that land on a
	// different side of an iteration boundary between runs. The
	// effective budget per row is AllocEpsilon plus 1% of the
	// baseline's allocs/op, so zero-allocation rows stay near-strict
	// while allocation-heavy class-mode rows tolerate their own noise.
	AllocEpsilon float64
}

// DefaultDiffOpts matches the thresholds used by `make verify-perf`.
func DefaultDiffOpts() DiffOpts {
	return DiffOpts{NsTolerance: 0.10, AllocEpsilon: 0.5}
}

// allocBudget is the allowed allocs/op for a row with baseline b.
func (o DiffOpts) allocBudget(b float64) float64 {
	return b + o.AllocEpsilon + 0.01*b
}

// CompareBench reports every regression of cur against base, one
// human-readable line each. An empty result means cur passes. Rows
// present only in cur (new workloads) are not regressions; rows
// missing from cur are.
func CompareBench(base, cur *BenchReport, opts DiffOpts) []string {
	var regressions []string
	for i := range base.Rows {
		b := &base.Rows[i]
		c := cur.Row(b.Table, b.Level)
		if c == nil {
			regressions = append(regressions,
				fmt.Sprintf("%s/%s: missing from new report", b.Table, b.Level))
			continue
		}
		if b.NsPerOp > 0 && c.NsPerOp > b.NsPerOp*(1+opts.NsTolerance) {
			regressions = append(regressions, fmt.Sprintf(
				"%s/%s: ns/op %.0f -> %.0f (+%.1f%%, tolerance %.0f%%)",
				b.Table, b.Level, b.NsPerOp, c.NsPerOp,
				100*(c.NsPerOp/b.NsPerOp-1), 100*opts.NsTolerance))
		}
		if budget := opts.allocBudget(b.AllocsPerOp); c.AllocsPerOp > budget {
			regressions = append(regressions, fmt.Sprintf(
				"%s/%s: allocs/op %.2f -> %.2f (budget %.2f)",
				b.Table, b.Level, b.AllocsPerOp, c.AllocsPerOp, budget))
		}
	}
	return regressions
}

// CompareChain gates the chained-dependency section: the pipelined
// chain must stay at or below half the sync chain's virtual latency,
// and the batched mode must keep physical frames per op below one.
// These are protocol properties measured in deterministic virtual
// time, so they are asserted as invariants rather than toleranced
// against the baseline. Either report missing the section (old
// baselines) compares empty.
func CompareChain(base, cur *BenchReport) []string {
	if len(base.Chain) == 0 || len(cur.Chain) == 0 {
		return nil
	}
	byMode := map[string]*ChainRow{}
	for i := range cur.Chain {
		byMode[cur.Chain[i].Mode] = &cur.Chain[i]
	}
	var lines []string
	sync, okS := byMode[string(ChainSync)]
	piped, okP := byMode[string(ChainPipelined)]
	batched, okB := byMode[string(ChainBatched)]
	if !okS || !okP || !okB {
		return []string{"chain: section present but missing sync/pipelined/batched modes"}
	}
	if piped.ChainLatencyNS*2 > sync.ChainLatencyNS {
		lines = append(lines, fmt.Sprintf(
			"chain: pipelined latency %dns exceeds half of sync %dns",
			piped.ChainLatencyNS, sync.ChainLatencyNS))
	}
	if batched.FramesPerOp >= 1 {
		lines = append(lines, fmt.Sprintf(
			"chain: batched frames/op %.3f not below 1", batched.FramesPerOp))
	}
	return lines
}

// CompareAttribution gates the cluster-attribution section. As with
// CompareChain these are structural invariants, not toleranced wall-
// clock comparisons (the scenario's latencies are real sleeps and
// therefore noisy): every site the baseline attributed must still be
// present with calls recorded, monotone quantiles, a dominant blame
// phase, and — when the baseline captured slow-call exemplars — at
// least one exemplar. Either report missing the section (old
// baselines) compares empty.
func CompareAttribution(base, cur *BenchReport) []string {
	if len(base.Attribution) == 0 || len(cur.Attribution) == 0 {
		return nil
	}
	bySite := map[string]*AttribRow{}
	for i := range cur.Attribution {
		bySite[cur.Attribution[i].Site] = &cur.Attribution[i]
	}
	var lines []string
	for i := range base.Attribution {
		b := &base.Attribution[i]
		c, ok := bySite[b.Site]
		if !ok {
			lines = append(lines, fmt.Sprintf("attribution: site %s missing from new report", b.Site))
			continue
		}
		if c.Calls == 0 {
			lines = append(lines, fmt.Sprintf("attribution: %s recorded no calls", c.Site))
		}
		if c.P50NS <= 0 || c.P50NS > c.P95NS || c.P95NS > c.P99NS {
			lines = append(lines, fmt.Sprintf(
				"attribution: %s quantiles not monotone: p50=%d p95=%d p99=%d",
				c.Site, c.P50NS, c.P95NS, c.P99NS))
		}
		if c.TopBlame == "" {
			lines = append(lines, fmt.Sprintf("attribution: %s has no dominant blame phase", c.Site))
		}
		if b.Exemplars > 0 && c.Exemplars == 0 {
			lines = append(lines, fmt.Sprintf(
				"attribution: %s captured no exemplars (baseline had %d)", c.Site, b.Exemplars))
		}
	}
	return lines
}

// CompareTracing gates the distributed-tracing section: cross-node
// reconstruction must stay whole. One trace per chain, exactly one
// root, the span and hop counts the three-node topology implies, no
// orphaned or duplicated spans, and a critical path that accounts for
// at least half of the measured wall time (the harness test asserts
// the tight 10% bound; the bench gate is looser because the bench
// machine may be loaded). Either report missing the section (old
// baselines) compares empty.
func CompareTracing(base, cur *BenchReport) []string {
	if base.Tracing == nil || cur.Tracing == nil {
		return nil
	}
	t := cur.Tracing
	var lines []string
	if t.Traces != t.Chains {
		lines = append(lines, fmt.Sprintf(
			"tracing: sampled %d traces for %d chains", t.Traces, t.Chains))
	}
	if t.Roots != 1 {
		lines = append(lines, fmt.Sprintf(
			"tracing: reconstructed tree has %d roots, want 1", t.Roots))
	}
	if want := 4 * t.Depth; t.SpansPerTrace != want {
		lines = append(lines, fmt.Sprintf(
			"tracing: %d spans per trace, want %d (4 per chain link)", t.SpansPerTrace, want))
	}
	if t.MaxHop != 2 {
		lines = append(lines, fmt.Sprintf(
			"tracing: max hop %d, want 2 (node0 -> node1 -> node2)", t.MaxHop))
	}
	if t.Orphans != 0 || t.Duplicates != 0 {
		lines = append(lines, fmt.Sprintf(
			"tracing: %d orphan and %d duplicate spans, want none", t.Orphans, t.Duplicates))
	}
	if t.CriticalPathNS <= 0 || t.CriticalPathNS > t.EndToEndNS {
		lines = append(lines, fmt.Sprintf(
			"tracing: critical path %dns outside (0, end-to-end %dns]",
			t.CriticalPathNS, t.EndToEndNS))
	}
	if t.CriticalPathRatio < 0.5 || t.CriticalPathRatio > 1.05 {
		lines = append(lines, fmt.Sprintf(
			"tracing: critical path is %.2f of wall time, want within [0.5, 1.05]",
			t.CriticalPathRatio))
	}
	return lines
}

// CompareCost gates the analysis-cost section. The structure and
// precision counters (functions, regions, contexts, nodes, kills,
// iterations) are deterministic functions of the pinned corpus and
// must match the baseline exactly — any drift means the analysis
// result itself changed. The incremental invariant (one edit
// re-analyzes under 10% of the corpus) is asserted absolutely, like
// the chain invariants. Cold wall time gets a deliberately generous
// 10x tolerance: it only exists to catch asymptotic blowups, not
// machine noise. Either report missing the section (old baselines)
// compares empty.
func CompareCost(base, cur *BenchReport) []string {
	if base.Cost == nil || cur.Cost == nil {
		return nil
	}
	b, c := base.Cost, cur.Cost
	var lines []string
	exact := []struct {
		name       string
		base, curv int
	}{
		{"functions", b.Functions, c.Functions},
		{"sccs", b.SCCs, c.SCCs},
		{"components", b.Components, c.Components},
		{"waves", b.Waves, c.Waves},
		{"contexts", b.Contexts, c.Contexts},
		{"nodes", b.Nodes, c.Nodes},
		{"strong_kills", b.StrongKills, c.StrongKills},
		{"iterations", b.Iterations, c.Iterations},
		{"budget_fallbacks", b.BudgetFallbacks, c.BudgetFallbacks},
	}
	for _, e := range exact {
		if e.base != e.curv {
			lines = append(lines, fmt.Sprintf(
				"cost: %s %d -> %d (deterministic counter must match baseline)",
				e.name, e.base, e.curv))
		}
	}
	if c.ReanalyzedFraction >= 0.10 {
		lines = append(lines, fmt.Sprintf(
			"cost: one-function edit re-analyzed %.1f%% of the corpus, want < 10%%",
			100*c.ReanalyzedFraction))
	}
	if b.ColdWallNS > 0 && c.ColdWallNS > 10*b.ColdWallNS {
		lines = append(lines, fmt.Sprintf(
			"cost: cold analysis wall %dns exceeds 10x baseline %dns",
			c.ColdWallNS, b.ColdWallNS))
	}
	return lines
}

// DecisionCounts are the verdict totals of one optimizer decision
// report: live call sites, elided cycle checks (argument and return
// directions both count), and buffer-reuse grants (arguments and
// returns both count). The same counting rule feeds the verdict
// matrix's TOTAL line, so benchdiff deltas and `make verify-precision`
// agree on what a "grant" is.
type DecisionCounts struct {
	Sites  int
	Elided int
	Grants int
}

// CountDecisions tallies one report.
func CountDecisions(rep *core.ExplainReport) DecisionCounts {
	var n DecisionCounts
	for _, d := range rep.Sites {
		if d.Dead {
			continue
		}
		n.Sites++
		if d.CycleCheck.Elided {
			n.Elided++
		}
		if d.RetCycleCheck != nil && d.RetCycleCheck.Elided {
			n.Elided++
		}
		for _, a := range d.Args {
			if a.Reuse.Applied {
				n.Grants++
			}
		}
		if d.Ret != nil && d.Ret.Reuse.Applied {
			n.Grants++
		}
	}
	return n
}

// CompareDecisions diffs the optimizer decision sections of two
// reports and renders one line per workload whose verdict counts
// moved, plus a trailing total when anything did. The deltas are
// informational, not a gate: the authoritative precision gate is the
// verdict-matrix golden diff (`make verify-precision`); here the same
// counts ride alongside the perf numbers so a ns/op shift and the
// analysis-precision shift that caused it appear in one place. Either
// section may be absent (old baselines): then there is nothing to
// compare and the result is empty.
func CompareDecisions(base, cur *BenchReport) []string {
	if len(base.Decisions) == 0 || len(cur.Decisions) == 0 {
		return nil
	}
	curBySource := map[string]*core.ExplainReport{}
	for _, rep := range cur.Decisions {
		curBySource[rep.Source] = rep
	}
	var lines []string
	var db, dc DecisionCounts
	for _, rep := range base.Decisions {
		b := CountDecisions(rep)
		c, ok := curBySource[rep.Source]
		if !ok {
			lines = append(lines, fmt.Sprintf(
				"%s: decisions missing from new report", rep.Source))
			continue
		}
		n := CountDecisions(c)
		db.Sites += b.Sites
		db.Elided += b.Elided
		db.Grants += b.Grants
		dc.Sites += n.Sites
		dc.Elided += n.Elided
		dc.Grants += n.Grants
		if n != b {
			lines = append(lines, fmt.Sprintf(
				"%s: sites %d -> %d, elided cycle checks %d -> %d (%+d), reuse grants %d -> %d (%+d)",
				rep.Source, b.Sites, n.Sites,
				b.Elided, n.Elided, n.Elided-b.Elided,
				b.Grants, n.Grants, n.Grants-b.Grants))
		}
	}
	if len(lines) > 0 {
		lines = append(lines, fmt.Sprintf(
			"total: elided cycle checks %d -> %d (%+d), reuse grants %d -> %d (%+d)",
			db.Elided, dc.Elided, dc.Elided-db.Elided,
			db.Grants, dc.Grants, dc.Grants-db.Grants))
	}
	return lines
}
