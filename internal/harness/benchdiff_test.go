package harness

import (
	"strings"
	"testing"

	"cormi/internal/core"
)

func report(rows ...BenchRow) *BenchReport {
	return &BenchReport{GoVersion: "gotest", Rows: rows}
}

func row(table, level string, ns, allocs float64) BenchRow {
	return BenchRow{Table: table, Level: level, Iters: 1000, NsPerOp: ns, BPerOp: 64, AllocsPerOp: allocs}
}

func TestCompareBenchPasses(t *testing.T) {
	base := report(row("table1_linkedlist", "site", 1000, 3), row("table2_array2d", "class", 500, 40))
	cur := report(
		row("table1_linkedlist", "site", 1080, 3.2), // +8% ns, +0.2 allocs: within thresholds
		row("table2_array2d", "class", 400, 35),     // improvement
		row("table9_new", "site", 9999, 99),         // extra rows are fine
	)
	if regs := CompareBench(base, cur, DefaultDiffOpts()); len(regs) != 0 {
		t.Fatalf("expected pass, got regressions: %v", regs)
	}
}

func TestCompareBenchNsRegression(t *testing.T) {
	base := report(row("table1_linkedlist", "site", 1000, 3))
	cur := report(row("table1_linkedlist", "site", 1200, 3))
	regs := CompareBench(base, cur, DefaultDiffOpts())
	if len(regs) != 1 || !strings.Contains(regs[0], "ns/op") {
		t.Fatalf("expected one ns/op regression, got %v", regs)
	}
}

func TestCompareBenchAllocRegression(t *testing.T) {
	base := report(row("table2_array2d", "site+reuse+cycle", 1000, 0.1))
	cur := report(row("table2_array2d", "site+reuse+cycle", 900, 2)) // faster but allocates
	regs := CompareBench(base, cur, DefaultDiffOpts())
	if len(regs) != 1 || !strings.Contains(regs[0], "allocs/op") {
		t.Fatalf("expected one allocs/op regression, got %v", regs)
	}
}

func TestCompareBenchMissingRow(t *testing.T) {
	base := report(row("table1_linkedlist", "site", 1000, 3), row("table1_linkedlist", "class", 2000, 50))
	cur := report(row("table1_linkedlist", "site", 1000, 3))
	regs := CompareBench(base, cur, DefaultDiffOpts())
	if len(regs) != 1 || !strings.Contains(regs[0], "missing") {
		t.Fatalf("expected one missing-row regression, got %v", regs)
	}
}

// decisionsReport builds a one-site explain report with the given
// verdicts for CompareDecisions tests.
func decisionsReport(source string, elided, reuse bool) *core.ExplainReport {
	site := core.SiteDecision{
		Site:       source + ".site1",
		CycleCheck: core.CycleDecision{Elided: elided},
		Args:       []core.ValueDecision{{Kind: "object"}},
	}
	site.Args[0].Reuse.Applied = reuse
	return &core.ExplainReport{Schema: core.ExplainSchema, Source: source,
		Sites: []core.SiteDecision{site}}
}

func TestCompareDecisionsReportsDeltas(t *testing.T) {
	base := report(row("t", "site", 1000, 3))
	base.Decisions = []*core.ExplainReport{
		decisionsReport("steady", true, true),
		decisionsReport("moved", false, false),
	}
	cur := report(row("t", "site", 1000, 3))
	cur.Decisions = []*core.ExplainReport{
		decisionsReport("steady", true, true),
		decisionsReport("moved", true, true), // sharpened: +1 elided, +1 grant
	}
	deltas := CompareDecisions(base, cur)
	if len(deltas) != 2 {
		t.Fatalf("want a per-workload line and a total, got %v", deltas)
	}
	if !strings.Contains(deltas[0], "moved") || !strings.Contains(deltas[0], "(+1)") {
		t.Errorf("per-workload delta line %q lacks the moved workload or its +1", deltas[0])
	}
	if !strings.Contains(deltas[1], "total") || !strings.Contains(deltas[1], "1 -> 2 (+1)") {
		t.Errorf("total line %q lacks the corpus-wide 1 -> 2 shift", deltas[1])
	}
}

func TestCompareDecisionsQuietWhenUnchangedOrAbsent(t *testing.T) {
	base := report(row("t", "site", 1000, 3))
	cur := report(row("t", "site", 1000, 3))
	if d := CompareDecisions(base, cur); len(d) != 0 {
		t.Fatalf("no decisions sections, want no deltas, got %v", d)
	}
	base.Decisions = []*core.ExplainReport{decisionsReport("w", true, false)}
	cur.Decisions = []*core.ExplainReport{decisionsReport("w", true, false)}
	if d := CompareDecisions(base, cur); len(d) != 0 {
		t.Fatalf("identical decisions, want no deltas, got %v", d)
	}
}

func TestBenchReportJSONRoundTrip(t *testing.T) {
	in := report(row("table1_linkedlist", "site+reuse", 1234.5, 0))
	data, err := in.JSON()
	if err != nil {
		t.Fatal(err)
	}
	out, err := ParseBenchReport(data)
	if err != nil {
		t.Fatal(err)
	}
	got := out.Row("table1_linkedlist", "site+reuse")
	if got == nil || got.NsPerOp != 1234.5 || got.Iters != 1000 {
		t.Fatalf("round trip mismatch: %+v", got)
	}
	if out.Row("table1_linkedlist", "class") != nil {
		t.Fatal("Row returned a match for an absent level")
	}
}

// TestRunBenchSmoke runs a tiny version of the measurement matrix and
// checks the report shape (all workloads × all levels, sane values).
func TestRunBenchSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("bench smoke is slow in -short mode")
	}
	spec := BenchSpec{MicroIters: 20, WebRequests: 20, SuperoptN: 1}
	rep, err := RunBench(spec)
	if err != nil {
		t.Fatal(err)
	}
	wantTables := []string{"table1_linkedlist", "table2_array2d", "table5_superopt", "table7_webserver"}
	wantLevels := []string{"class", "site", "site+cycle", "site+reuse", "site+reuse+cycle"}
	if len(rep.Rows) != len(wantTables)*len(wantLevels) {
		t.Fatalf("got %d rows, want %d", len(rep.Rows), len(wantTables)*len(wantLevels))
	}
	for _, tab := range wantTables {
		for _, lv := range wantLevels {
			r := rep.Row(tab, lv)
			if r == nil {
				t.Fatalf("missing row %s/%s", tab, lv)
			}
			if r.NsPerOp <= 0 {
				t.Fatalf("%s/%s: non-positive ns/op %v", tab, lv, r.NsPerOp)
			}
		}
	}
}
