package harness

// Machine-readable benchmark measurements for the perf-regression
// harness: each paper workload runs a fixed number of iterations per
// optimization level under real wall-clock time and allocator
// accounting (runtime.ReadMemStats), and the results serialize to JSON
// (BENCH_rmibench.json). benchdiff.go compares two such reports and
// flags regressions; `make verify-perf` wires the comparison against
// the committed baseline.

import (
	"encoding/json"
	"fmt"
	"runtime"
	"time"

	"cormi/internal/apps/micro"
	"cormi/internal/apps/superopt"
	"cormi/internal/apps/webserver"
	"cormi/internal/core"
	"cormi/internal/rmi"
	"cormi/internal/trace"
)

// BenchRow is one workload × optimization level measurement.
type BenchRow struct {
	Table string `json:"table"` // e.g. "table1_linkedlist"
	Level string `json:"level"` // e.g. "site+reuse+cycle"
	Iters int    `json:"iters"`
	// NsPerOp is real wall-clock nanoseconds per operation (one send,
	// one request, ... — fixed workload setup amortized over Iters).
	NsPerOp float64 `json:"ns_per_op"`
	// BPerOp / AllocsPerOp are heap bytes and allocations per
	// operation over the whole process (runtime.MemStats deltas).
	BPerOp      float64 `json:"b_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
}

// BenchReport is the full measurement set of one run.
type BenchReport struct {
	GoVersion string     `json:"go_version"`
	Rows      []BenchRow `json:"rows"`
	// Phases holds per-(call site, phase) latency quantiles from an
	// extra traced pass (BenchSpec.TracePhases). The untraced perf rows
	// above are measured first, so the committed ns/op baselines never
	// include tracing overhead; omitempty keeps old baselines
	// comparable.
	Phases []trace.PhaseStat `json:"phase_latency,omitempty"`
	// Decisions carries the compile-time optimizer decision report
	// (schema core.ExplainSchema) of each measured workload program:
	// the audit-layer link between the rows above and WHY each level
	// performs as it does. Readers that predate the section — and any
	// reader seeing future sections — must ignore unknown keys, which
	// encoding/json does by default; benchdiff has a test pinning that.
	Decisions []*core.ExplainReport `json:"decisions,omitempty"`
	// Negotiation carries the version-negotiation probe's evidence
	// (plan fallbacks, malformed-frame rejections, per-link state).
	// Like Decisions it is a new optional section: benchdiff compares
	// rows only, so baselines from before the section stay comparable.
	Negotiation *NegotiationReport `json:"negotiation,omitempty"`
	// Chain holds the chained-dependency workload (chain.go): virtual
	// chain latency and physical frames per op for the sync, async,
	// pipelined and batched modes. Optional section: benchdiff gates on
	// it only when both reports carry it.
	Chain []ChainRow `json:"chain,omitempty"`
	// Attribution holds the cluster-wide tail-latency scenario
	// (attrib.go): merged per-site quantiles, the dominant blame phase,
	// and the captured exemplar count from a 3-node obs cluster with a
	// slow executor. Optional section, gated by benchdiff only when
	// both reports carry it.
	Attribution []AttribRow `json:"attribution,omitempty"`
	// Tracing holds the distributed-tracing scenario (dtrace.go): the
	// structural and timing facts of cross-node trace reconstruction
	// over a pipelined three-node chain. Optional section, gated by
	// benchdiff only when both reports carry it.
	Tracing *TracingRow `json:"tracing,omitempty"`
	// Cost holds the analysis-cost measurement over the pinned
	// generated corpus (analysis.go): the scheduler/cache economics
	// behind `make verify-analysis`. Optional section, gated by
	// benchdiff only when both reports carry it.
	Cost *CostRow `json:"cost,omitempty"`
}

// Row finds a measurement by workload and level (nil if absent).
func (r *BenchReport) Row(table, level string) *BenchRow {
	for i := range r.Rows {
		if r.Rows[i].Table == table && r.Rows[i].Level == level {
			return &r.Rows[i]
		}
	}
	return nil
}

// JSON renders the report with stable formatting.
func (r *BenchReport) JSON() ([]byte, error) {
	return json.MarshalIndent(r, "", "  ")
}

// ParseBenchReport decodes a report produced by JSON.
func ParseBenchReport(data []byte) (*BenchReport, error) {
	var r BenchReport
	if err := json.Unmarshal(data, &r); err != nil {
		return nil, fmt.Errorf("harness: bad bench report: %w", err)
	}
	return &r, nil
}

// levelName is the stable (whitespace-free) spelling of a level used
// in report keys.
func levelName(l rmi.OptLevel) string {
	switch l {
	case rmi.LevelClass:
		return "class"
	case rmi.LevelSite:
		return "site"
	case rmi.LevelSiteCycle:
		return "site+cycle"
	case rmi.LevelSiteReuse:
		return "site+reuse"
	default:
		return "site+reuse+cycle"
	}
}

// measure runs f repeats times and keeps the best (minimum) wall time
// and allocator deltas per operation. The minimum, not the mean, is
// what regression tracking wants: scheduler and GC noise only ever
// inflates a run, so the fastest repeat is the closest estimate of the
// code's true cost.
func measure(table, level string, iters, repeats int, f func() error) (BenchRow, error) {
	row := BenchRow{Table: table, Level: level, Iters: iters}
	n := float64(iters)
	for r := 0; r < repeats; r++ {
		runtime.GC()
		var before, after runtime.MemStats
		runtime.ReadMemStats(&before)
		start := time.Now()
		err := f()
		elapsed := time.Since(start)
		runtime.ReadMemStats(&after)
		if err != nil {
			return BenchRow{}, fmt.Errorf("harness: bench %s/%s: %w", table, level, err)
		}
		ns := float64(elapsed.Nanoseconds()) / n
		bPer := float64(after.TotalAlloc-before.TotalAlloc) / n
		allocs := float64(after.Mallocs-before.Mallocs) / n
		if r == 0 || ns < row.NsPerOp {
			row.NsPerOp = ns
		}
		if r == 0 || bPer < row.BPerOp {
			row.BPerOp = bPer
		}
		if r == 0 || allocs < row.AllocsPerOp {
			row.AllocsPerOp = allocs
		}
	}
	return row, nil
}

// BenchSpec sizes the measured workloads.
type BenchSpec struct {
	MicroIters  int // sends per level for Tables 1 and 2
	WebRequests int // page retrievals per level for Table 7
	SuperoptN   int // exhaustive searches per level for Table 5
	Repeats     int // best-of-N repetitions per row
	// TracePhases adds a traced micro pass after the untraced perf
	// rows and folds its per-phase latency quantiles into the report.
	TracePhases bool
	// ChainDepth/ChainCount size the chained-dependency workload
	// (chain.go); ChainDepth <= 0 skips the section.
	ChainDepth int
	ChainCount int
}

// DefaultBenchSpec keeps the full matrix under a few seconds.
func DefaultBenchSpec() BenchSpec {
	return BenchSpec{MicroIters: 2000, WebRequests: 1500, SuperoptN: 3, Repeats: 5, ChainDepth: 8, ChainCount: 100}
}

// RunBench measures the perf-critical workloads at every optimization
// level and returns the machine-readable report.
func RunBench(spec BenchSpec) (*BenchReport, error) {
	report := &BenchReport{GoVersion: runtime.Version()}
	add := func(row BenchRow, err error) error {
		if err != nil {
			return err
		}
		report.Rows = append(report.Rows, row)
		return nil
	}
	repeats := spec.Repeats
	if repeats < 1 {
		repeats = 1
	}
	for _, level := range rmi.AllLevels {
		lv, name := level, levelName(level)
		if err := add(measure("table1_linkedlist", name, spec.MicroIters, repeats, func() error {
			_, err := micro.RunLinkedList(lv, 100, spec.MicroIters)
			return err
		})); err != nil {
			return nil, err
		}
		if err := add(measure("table2_array2d", name, spec.MicroIters, repeats, func() error {
			_, err := micro.RunArray(lv, 16, spec.MicroIters)
			return err
		})); err != nil {
			return nil, err
		}
		if err := add(measure("table5_superopt", name, spec.SuperoptN, repeats, func() error {
			p := superopt.DefaultParams()
			for i := 0; i < spec.SuperoptN; i++ {
				if _, err := superopt.Search(lv, p); err != nil {
					return err
				}
			}
			return nil
		})); err != nil {
			return nil, err
		}
		if err := add(measure("table7_webserver", name, spec.WebRequests, repeats, func() error {
			p := webserver.DefaultParams()
			p.Requests = spec.WebRequests
			_, err := webserver.Run(lv, p)
			return err
		})); err != nil {
			return nil, err
		}
	}
	// The decisions section: compile each measured workload's source
	// and attach its explain report, so the bench JSON carries not
	// just the numbers but the optimizer's reasoning behind them.
	for _, wl := range []struct{ name, src string }{
		{"table1_linkedlist", micro.LinkedListSrc},
		{"table2_array2d", micro.ArrayBenchSrc},
		{"table5_superopt", superopt.Src},
		{"table7_webserver", webserver.Src},
	} {
		res, err := core.Compile(wl.src)
		if err != nil {
			return nil, fmt.Errorf("harness: explain %s: %w", wl.name, err)
		}
		report.Decisions = append(report.Decisions, res.Explain(wl.name))
	}
	if spec.TracePhases {
		tr, err := RunTraced(spec)
		if err != nil {
			return nil, err
		}
		report.Phases = tr.Phases
	}
	neg, err := NegotiationProbe()
	if err != nil {
		return nil, err
	}
	report.Negotiation = neg
	if spec.ChainDepth > 0 {
		chains := spec.ChainCount
		if chains < 1 {
			chains = 100
		}
		rows, err := RunChain(spec.ChainDepth, chains)
		if err != nil {
			return nil, err
		}
		report.Chain = rows
	}
	attrib, err := RunAttrib(DefaultAttribSpec())
	if err != nil {
		return nil, err
	}
	report.Attribution = attrib
	dspec := DefaultDTraceSpec()
	if spec.ChainDepth > 0 {
		dspec.Depth = spec.ChainDepth
	}
	trow, err := RunDTrace(dspec)
	if err != nil {
		return nil, err
	}
	report.Tracing = trow
	cost, err := RunAnalysisCost()
	if err != nil {
		return nil, err
	}
	report.Cost = cost
	return report, nil
}

// TraceReport is the outcome of a traced benchmark pass: the latency
// quantiles per (call site, phase) plus the flight recorder's spans,
// exportable as Chrome-trace JSON with trace.WriteChrome.
type TraceReport struct {
	Phases []trace.PhaseStat
	Spans  []trace.SpanRecord
}

// RunTraced runs the micro workloads once per optimization level with
// a tracer attached — the observability counterpart of RunBench. It is
// deliberately separate from the perf rows: tracing adds clock reads
// per phase, so traced latencies are reported, never compared against
// the untraced ns/op baselines.
func RunTraced(spec BenchSpec) (*TraceReport, error) {
	tr := trace.New(trace.Config{RingSize: 4096})
	for _, level := range rmi.AllLevels {
		if _, err := micro.RunLinkedList(level, 100, spec.MicroIters, rmi.WithTracer(tr)); err != nil {
			return nil, fmt.Errorf("harness: traced linkedlist @ %s: %w", level, err)
		}
		if _, err := micro.RunArray(level, 16, spec.MicroIters, rmi.WithTracer(tr)); err != nil {
			return nil, fmt.Errorf("harness: traced array @ %s: %w", level, err)
		}
	}
	return &TraceReport{Phases: tr.PhaseStats(), Spans: tr.Recent()}, nil
}

// FormatPhases renders phase quantiles as an aligned summary table.
func FormatPhases(phases []trace.PhaseStat) string {
	if len(phases) == 0 {
		return "no traced phases recorded\n"
	}
	var b []byte
	b = fmt.Appendf(b, "%-28s %-18s %9s %10s %10s %10s %10s\n",
		"site", "phase", "count", "mean_ns", "p50_ns", "p95_ns", "p99_ns")
	for _, p := range phases {
		b = fmt.Appendf(b, "%-28s %-18s %9d %10.0f %10.0f %10.0f %10.0f\n",
			p.Site, p.Phase, p.Count, p.MeanNS, p.P50NS, p.P95NS, p.P99NS)
	}
	return string(b)
}
