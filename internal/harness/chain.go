package harness

// Chained-dependency workload for the asynchronous RMI layer: a depth-N
// chain of calls where each call's argument is the previous call's
// result. Synchronously the chain costs N round trips; with promise
// pipelining the caller ships every call immediately (arguments named
// by promise handle) and the whole chain costs one round trip. The
// workload measures both the virtual-time chain latency — the
// deterministic causal critical path, robust to scheduler noise — and
// the physical frames per operation, which the per-link batcher drives
// below one for small coalesced calls.

import (
	"fmt"

	"cormi/internal/model"
	"cormi/internal/rmi"
	"cormi/internal/serial"
	"cormi/internal/wire"
)

// ChainMode names one way of driving the dependent chain.
type ChainMode string

const (
	// ChainSync invokes each link synchronously: N round trips.
	ChainSync ChainMode = "sync"
	// ChainAsync uses futures with promise arguments over a link whose
	// peer did NOT negotiate pipelining: the runtime demotes to
	// resolve-then-send, so it behaves like sync and counts a
	// PipelineFallback per dependent call. This is the capability-
	// demotion control group.
	ChainAsync ChainMode = "async"
	// ChainPipelined uses futures with promise arguments over a fully
	// capable link: one round trip for the whole chain.
	ChainPipelined ChainMode = "pipelined"
	// ChainBatched is ChainPipelined plus the per-link frame batcher:
	// same virtual latency, fewer physical frames.
	ChainBatched ChainMode = "batched"
)

// AllChainModes lists the modes in report order.
var AllChainModes = []ChainMode{ChainSync, ChainAsync, ChainPipelined, ChainBatched}

// ChainRow is one measured mode of the chained workload.
type ChainRow struct {
	Mode   string `json:"mode"`
	Depth  int    `json:"depth"`
	Chains int    `json:"chains"`
	// ChainLatencyNS is the virtual-time cost of one depth-N chain:
	// deterministic, so ratios between modes are exact properties of
	// the protocol, not of the host machine.
	ChainLatencyNS int64 `json:"chain_latency_ns"`
	// FramesPerOp is physical network frames per call (calls + replies,
	// after batching). Unbatched request/response traffic sits at 2.0.
	FramesPerOp float64 `json:"frames_per_op"`
	// Fallbacks counts pipelined sends demoted to resolve-then-send
	// (nonzero only in async mode, where the capability is masked).
	Fallbacks int64 `json:"fallbacks,omitempty"`
}

// RunChainMode measures one mode of the depth-deep dependent chain,
// repeated chains times.
func RunChainMode(mode ChainMode, depth, chains int) (ChainRow, error) {
	if depth < 1 || chains < 1 {
		return ChainRow{}, fmt.Errorf("harness: chain needs depth and chains >= 1 (got %d, %d)", depth, chains)
	}
	var opts []rmi.Option
	switch mode {
	case ChainSync:
	case ChainAsync:
		// Mask the capability on the callee so the link negotiates
		// pipelining away and the async layer takes its fallback.
		opts = append(opts, rmi.WithoutCaps(1, wire.CapPipelining))
	case ChainPipelined:
	case ChainBatched:
		opts = append(opts, rmi.WithBatching(rmi.BatchConfig{}))
	default:
		return ChainRow{}, fmt.Errorf("harness: unknown chain mode %q", mode)
	}
	c := rmi.New(2, opts...)
	defer c.Close()

	const site = "Chain.step.1"
	cs, err := c.NewCallSite(rmi.LevelSite, rmi.SiteSpec{
		Name:     site,
		Method:   "step",
		ArgPlans: []*serial.Plan{serial.PrimitivePlan(site, model.FInt)},
		RetPlans: []*serial.Plan{serial.PrimitivePlan(site, model.FInt)},
		NumRet:   1,
	})
	if err != nil {
		return ChainRow{}, err
	}
	// step(x) = x + 1 with a fixed compute cost, so the virtual timeline
	// has an execution component as well as the flight legs.
	ref := c.Node(1).Export(&rmi.Service{
		Name: "Chain",
		Methods: map[string]rmi.Method{
			"step": func(call *rmi.Call, args []model.Value) []model.Value {
				call.Compute(500)
				return []model.Value{model.Int(args[0].I + 1)}
			},
		},
	})
	caller := c.Node(0)

	framesBefore := c.Counters.NetFrames.Load()
	virtBefore := c.MaxTime()
	for it := 0; it < chains; it++ {
		want := int64(it + depth)
		switch mode {
		case ChainSync:
			x := model.Int(int64(it))
			for d := 0; d < depth; d++ {
				vals, err := cs.Invoke(caller, ref, []model.Value{x})
				if err != nil {
					return ChainRow{}, fmt.Errorf("harness: chain sync: %w", err)
				}
				x = vals[0]
			}
			if x.I != want {
				return ChainRow{}, fmt.Errorf("harness: chain sync: got %d, want %d", x.I, want)
			}
		default:
			// One promised future per link; each subsequent call names
			// the previous future as its argument. In async mode the
			// runtime demotes every dependent send to resolve-then-send;
			// the program text is identical.
			futs := make([]*rmi.Future, depth)
			futs[0] = cs.InvokeAsync(caller, ref, []model.Value{model.Int(int64(it))}, rmi.AsyncOpts{Promised: true})
			for d := 1; d < depth; d++ {
				futs[d] = cs.InvokeAsync(caller, ref, []model.Value{{}}, rmi.AsyncOpts{
					Promised: d < depth-1,
					Promises: []rmi.PromiseArg{{Arg: 0, Fut: futs[d-1]}},
				})
			}
			vals, err := futs[depth-1].Wait()
			if err != nil {
				return ChainRow{}, fmt.Errorf("harness: chain %s: %w", mode, err)
			}
			if vals[0].I != want {
				return ChainRow{}, fmt.Errorf("harness: chain %s: got %d, want %d", mode, vals[0].I, want)
			}
			for _, f := range futs {
				f.Release()
			}
		}
	}
	c.FlushBatches()
	row := ChainRow{
		Mode:           string(mode),
		Depth:          depth,
		Chains:         chains,
		ChainLatencyNS: (c.MaxTime() - virtBefore) / int64(chains),
		FramesPerOp: float64(c.Counters.NetFrames.Load()-framesBefore) /
			float64(chains*depth),
		Fallbacks: c.Counters.PipelineFallbacks.Load(),
	}
	return row, nil
}

// RunChain measures every chain mode at the given depth.
func RunChain(depth, chains int) ([]ChainRow, error) {
	rows := make([]ChainRow, 0, len(AllChainModes))
	for _, mode := range AllChainModes {
		row, err := RunChainMode(mode, depth, chains)
		if err != nil {
			return nil, err
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// FormatChain renders chain rows as an aligned summary table.
func FormatChain(rows []ChainRow) string {
	if len(rows) == 0 {
		return "no chain rows\n"
	}
	var b []byte
	b = fmt.Appendf(b, "%-10s %6s %7s %18s %13s %10s\n",
		"mode", "depth", "chains", "chain_latency_ns", "frames_per_op", "fallbacks")
	for _, r := range rows {
		b = fmt.Appendf(b, "%-10s %6d %7d %18d %13.3f %10d\n",
			r.Mode, r.Depth, r.Chains, r.ChainLatencyNS, r.FramesPerOp, r.Fallbacks)
	}
	return string(b)
}
