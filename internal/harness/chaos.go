// Chaos mode: run the paper's workloads to completion over a lossy,
// duplicating, reordering, corrupting interconnect and verify that the
// fault-tolerance layer (checksums, deadlines, retries, callee-side
// dedup) preserves exactly-once method execution and correct results at
// every optimization level.

package harness

import (
	"fmt"
	"strings"
	"time"

	"cormi/internal/apps/lu"
	"cormi/internal/apps/micro"
	"cormi/internal/rmi"
	"cormi/internal/stats"
	"cormi/internal/trace"
	"cormi/internal/transport"
)

// ChaosSpec bundles the injected faults and the recovery policy for a
// chaos run.
type ChaosSpec struct {
	Faults transport.FaultConfig
	Policy rmi.CallPolicy
	// Tracer, when non-nil, is attached to every cluster in the run:
	// spans land in its flight recorder and a timeout or partition
	// auto-dumps the recent history to its configured FailureDump sink.
	Tracer *trace.Tracer
	// ClaimCheck (Every > 0) turns on the sampled runtime claim
	// checker on every cluster: the chaos matrix then doubles as the
	// audit layer's acceptance gate, proving the compiler's acyclicity
	// and reuse-shape claims hold while the transport misbehaves.
	ClaimCheck rmi.ClaimCheckPolicy
}

// DefaultChaosSpec returns the fault mix used by the chaos test and
// `rmibench -faults`: 5% drop, 3% duplication, 5% reordering, 2%
// corruption, up to 20 µs of extra virtual latency, recovered by a
// 50 ms per-attempt deadline with 12 retransmits.
func DefaultChaosSpec(seed int64) ChaosSpec {
	return ChaosSpec{
		Faults: transport.FaultConfig{
			Seed: seed,
			FaultRates: transport.FaultRates{
				Drop:    0.05,
				Dup:     0.03,
				Reorder: 0.05,
				Corrupt: 0.02,
				DelayNS: 20_000,
			},
		},
		Policy: rmi.CallPolicy{
			Timeout:    50 * time.Millisecond,
			Retries:    12,
			Backoff:    time.Millisecond,
			MaxBackoff: 8 * time.Millisecond,
		},
		// Audit every fourth tick: dense enough that every matrix row
		// re-verifies claims many times, sparse enough that the chaos
		// run still spends most of its calls on the unaudited hot path.
		ClaimCheck: rmi.ClaimCheckPolicy{Every: 4},
	}
}

// ChaosRow is one (workload, level) outcome under fault injection.
type ChaosRow struct {
	App     string
	Level   rmi.OptLevel
	Seconds float64
	Stats   stats.Snapshot
	Err     error
}

// ChaosReport collects a chaos run across workloads and levels.
type ChaosReport struct {
	Spec ChaosSpec
	Rows []ChaosRow
}

// Failed returns the first row-level error, if any.
func (r *ChaosReport) Failed() error {
	for _, row := range r.Rows {
		if row.Err != nil {
			return fmt.Errorf("%s @ %s: %w", row.App, row.Level, row.Err)
		}
	}
	return nil
}

// Format renders the report: per row the virtual makespan plus the
// recovery counters the fault layer exposes.
func (r *ChaosReport) Format() string {
	var b strings.Builder
	f := r.Spec.Faults
	fmt.Fprintf(&b, "Chaos run: drop=%.0f%% dup=%.0f%% reorder=%.0f%% corrupt=%.0f%% delay≤%dns seed=%d (timeout=%v, %d retries)\n",
		f.Drop*100, f.Dup*100, f.Reorder*100, f.Corrupt*100, f.DelayNS, f.Seed,
		r.Spec.Policy.Timeout, r.Spec.Policy.Retries)
	fmt.Fprintf(&b, "%-12s %-22s %10s %8s %9s %12s %13s %7s %8s %7s\n",
		"app", "optimization", "seconds", "retries", "timeouts", "dup-suppr.", "corrupt-drop", "audits", "violated", "result")
	for _, row := range r.Rows {
		result := "ok"
		if row.Err != nil {
			result = "FAIL: " + row.Err.Error()
		}
		fmt.Fprintf(&b, "%-12s %-22s %10.4f %8d %9d %12d %13d %7d %8d %7s\n",
			row.App, row.Level, row.Seconds,
			row.Stats.Retries, row.Stats.Timeouts, row.Stats.DupSuppressed, row.Stats.CorruptDropped,
			row.Stats.ClaimChecks, row.Stats.ClaimViolations,
			result)
	}
	return b.String()
}

// chaosOpts converts a spec into cluster options for one matrix row.
// Each row gets a distinct derived seed: fault rolls depend only on
// (seed, link, packet index), so rows with identical traffic patterns
// would otherwise replay the exact same fault sequence and the matrix
// would sample far fewer independent faults than its packet volume
// suggests.
func chaosOpts(spec ChaosSpec, row int) []rmi.Option {
	spec.Faults.Seed += int64(row) * 7919
	opts := []rmi.Option{rmi.WithFaults(spec.Faults), rmi.WithCallPolicy(spec.Policy)}
	if spec.Tracer != nil {
		opts = append(opts, rmi.WithTracer(spec.Tracer))
	}
	if spec.ClaimCheck.Every > 0 {
		opts = append(opts, rmi.WithClaimCheck(spec.ClaimCheck))
	}
	return opts
}

// Chaos runs the LU kernel and both micro benchmarks over a faulty
// network at every optimization level. Each row verifies its workload's
// correctness witness — LU's residual, the micro benchmarks' receiver
// observations — and that no user method body was re-executed despite
// drops, duplicates and retransmits.
func Chaos(s Scale, spec ChaosSpec) (*ChaosReport, error) {
	report := &ChaosReport{Spec: spec}
	row := 0
	nextOpts := func() []rmi.Option {
		o := chaosOpts(spec, row)
		row++
		return o
	}
	for _, level := range rmi.AllLevels {
		out, err := micro.RunLinkedList(level, s.ListElems, s.ListIters, nextOpts()...)
		if err == nil {
			err = verifyExactlyOnce("LinkedList", out.Executions, int64(s.ListIters))
			if err == nil && out.ElementsSeen != int64(s.ListElems) {
				err = fmt.Errorf("receiver saw %d elements, want %d", out.ElementsSeen, s.ListElems)
			}
		}
		report.Rows = append(report.Rows, ChaosRow{
			App: "LinkedList", Level: level, Seconds: out.Seconds, Stats: out.Stats, Err: err})
	}
	for _, level := range rmi.AllLevels {
		out, err := micro.RunArray(level, s.ArraySize, s.ArrayIters, nextOpts()...)
		if err == nil {
			err = verifyExactlyOnce("Array", out.Executions, int64(s.ArrayIters))
		}
		report.Rows = append(report.Rows, ChaosRow{
			App: "Array", Level: level, Seconds: out.Seconds, Stats: out.Stats, Err: err})
	}
	for _, level := range rmi.AllLevels {
		out, err := lu.Run(level, s.LUN, s.LUBS, s.Nodes, nextOpts()...)
		if err == nil && out.MaxResidual > 1e-6 {
			err = fmt.Errorf("LU residual %g under faults", out.MaxResidual)
		}
		report.Rows = append(report.Rows, ChaosRow{
			App: "LU", Level: level, Seconds: out.Seconds, Stats: out.Stats, Err: err})
	}
	return report, report.Failed()
}

func verifyExactlyOnce(app string, got, want int64) error {
	if got != want {
		return fmt.Errorf("%s method body executed %d times, want exactly %d", app, got, want)
	}
	return nil
}
