// Async chaos mode: drive the chained futures + promise-pipelining
// workload to completion over a lossy, duplicating, reordering,
// corrupting interconnect at every optimization level, and verify
// exactly-once execution of every link of every chain. This is the
// acceptance gate for the asynchronous layer's fault story: a dropped
// producer frame must be retransmitted by its future's waiter and
// unpark the dependent call at the callee, a duplicated frame must be
// absorbed by the (from, seq) dedup cache without re-splicing the
// promise, and a corrupted frame must be CRC-dropped and recovered.

package harness

import (
	"fmt"
	"sync/atomic"

	"cormi/internal/apps/appkit"
	"cormi/internal/model"
	"cormi/internal/rmi"
	"cormi/internal/serial"
)

// ChaosAsync runs the depth-deep dependent chain with promised futures
// over a faulty network at every optimization level. Every future is
// driven (Wait), because under loss retransmission of a dropped
// producer frame comes from that producer's own waiter; the chain is
// still fully pipelined on the happy path since all sends are issued
// before the first Wait.
func ChaosAsync(spec ChaosSpec, depth, chains int) (*ChaosReport, error) {
	report := &ChaosReport{Spec: spec}
	for row, level := range rmi.AllLevels {
		res, execs, err := chaosAsyncRow(level, spec, row, depth, chains)
		if err == nil {
			err = verifyExactlyOnce("AsyncChain", execs, int64(chains*depth))
		}
		report.Rows = append(report.Rows, ChaosRow{
			App: "AsyncChain", Level: level, Seconds: res.Seconds, Stats: res.Stats, Err: err})
	}
	return report, report.Failed()
}

// chaosAsyncRow runs one optimization level of the async chaos matrix
// and returns the cluster outcome plus the callee's execution count.
func chaosAsyncRow(level rmi.OptLevel, spec ChaosSpec, row, depth, chains int) (appkit.RunResult, int64, error) {
	c := rmi.New(2, chaosOpts(spec, row)...)
	defer c.Close()

	const site = "AsyncChain.step.1"
	cs, err := c.NewCallSite(level, rmi.SiteSpec{
		Name:     site,
		Method:   "step",
		ArgPlans: []*serial.Plan{serial.PrimitivePlan(site, model.FInt)},
		RetPlans: []*serial.Plan{serial.PrimitivePlan(site, model.FInt)},
		NumRet:   1,
	})
	if err != nil {
		return appkit.RunResult{}, 0, err
	}
	var execs atomic.Int64
	ref := c.Node(1).Export(&rmi.Service{
		Name: "AsyncChain",
		Methods: map[string]rmi.Method{
			"step": func(call *rmi.Call, args []model.Value) []model.Value {
				execs.Add(1)
				call.Compute(500)
				return []model.Value{model.Int(args[0].I + 1)}
			},
		},
	})
	caller := c.Node(0)

	for it := 0; it < chains; it++ {
		futs := make([]*rmi.Future, depth)
		futs[0] = cs.InvokeAsync(caller, ref, []model.Value{model.Int(int64(it))}, rmi.AsyncOpts{Promised: true})
		for d := 1; d < depth; d++ {
			futs[d] = cs.InvokeAsync(caller, ref, []model.Value{{}}, rmi.AsyncOpts{
				Promised: d < depth-1,
				Promises: []rmi.PromiseArg{{Arg: 0, Fut: futs[d-1]}},
			})
		}
		for d := 0; d < depth; d++ {
			vals, err := futs[d].Wait()
			if err != nil {
				return appkit.Collect(c), execs.Load(), fmt.Errorf("chain %d link %d: %w", it, d, err)
			}
			if want := int64(it + d + 1); vals[0].I != want {
				return appkit.Collect(c), execs.Load(), fmt.Errorf("chain %d link %d: got %d, want %d", it, d, vals[0].I, want)
			}
		}
		for _, f := range futs {
			f.Release()
		}
	}
	return appkit.Collect(c), execs.Load(), nil
}
