package harness

import (
	"testing"
)

// chaosScale is a reduced workload: fault recovery costs real time (a
// lost frame is only recovered after a deadline expiry), so the chaos
// matrix runs smaller problems than TestScale.
func chaosScale() Scale {
	s := TestScale()
	s.ListIters = 15
	s.ArrayIters = 15
	s.LUN, s.LUBS = 64, 16
	return s
}

// TestChaosAllLevels is the acceptance gate for the fault-tolerance
// layer: the LU and micro apps complete with correct results under
// seeded drop+dup+reorder+corrupt at all five optimization levels, and
// no user method body is executed more than once per logical call.
func TestChaosAllLevels(t *testing.T) {
	report, err := Chaos(chaosScale(), DefaultChaosSpec(42))
	if err != nil {
		t.Fatalf("chaos run failed: %v\n%s", err, report.Format())
	}
	// The fault mix must actually have exercised the recovery paths
	// somewhere in the matrix — otherwise this test proves nothing.
	var retries, dups, corrupt, claims int64
	for _, row := range report.Rows {
		retries += row.Stats.Retries
		dups += row.Stats.DupSuppressed
		corrupt += row.Stats.CorruptDropped
		claims += row.Stats.ClaimChecks
		// The audit layer's acceptance criterion: with the claim
		// checker sampling under chaos, no compile-time claim (elided
		// cycle check, reuse-cache shape) may be caught violated.
		if row.Stats.ClaimViolations != 0 {
			t.Errorf("%s @ %s: %d claim violations under chaos",
				row.App, row.Level, row.Stats.ClaimViolations)
		}
	}
	if claims == 0 {
		t.Error("no claim checks ran; ClaimCheck sampling seems inert")
	}
	if retries == 0 {
		t.Error("no retransmissions occurred; fault injection seems inert")
	}
	if dups == 0 {
		t.Error("no duplicates suppressed; dedup path not exercised")
	}
	if corrupt == 0 {
		t.Error("no corrupt frames dropped; checksum path not exercised")
	}
	t.Logf("\n%s", report.Format())
}

// TestChaosAsync is the acceptance gate for the asynchronous layer's
// fault story: the chained futures + promise-pipelining workload
// completes with correct results and exactly-once execution at every
// optimization level while the interconnect drops, duplicates,
// reorders and corrupts frames. A dropped producer frame must be
// retransmitted by its future's waiter and unpark the dependent call;
// a duplicated frame must be absorbed by dedup without re-splicing the
// promise.
func TestChaosAsync(t *testing.T) {
	report, err := ChaosAsync(DefaultChaosSpec(42), 6, 12)
	if err != nil {
		t.Fatalf("async chaos run failed: %v\n%s", err, report.Format())
	}
	var retries, dups, corrupt, piped int64
	for _, row := range report.Rows {
		retries += row.Stats.Retries
		dups += row.Stats.DupSuppressed
		corrupt += row.Stats.CorruptDropped
		piped += row.Stats.PipelinedCalls
	}
	if piped == 0 {
		t.Error("no pipelined calls executed; the promise path was not exercised")
	}
	if retries == 0 {
		t.Error("no retransmissions occurred; fault injection seems inert")
	}
	if dups == 0 {
		t.Error("no duplicates suppressed; dedup path not exercised")
	}
	if corrupt == 0 {
		t.Error("no corrupt frames dropped; checksum path not exercised")
	}
	t.Logf("\n%s", report.Format())
}
