package harness

// Distributed-tracing scenario (DESIGN.md §15): one cluster, three
// nodes with a tracer each (per-node trace stores, as three real
// machines would have), pipelined dependent chains from node 0 through
// a stepping service on node 1 whose executor makes a nested call to a
// leaf service on node 2. Every hop carries the wire trace context, so
// each chain becomes one head-sampled trace scattered across three
// stores. The verification runs the production pull path end to end —
// node 0's /traces lists the sampled traces, /traces/<id>?peers=...
// pulls every peer's spans over real HTTP and reconstructs the
// cross-node tree — and the returned row asserts the reconstruction is
// whole: a single root, the exact span and hop counts the topology
// implies, no orphans, and an end-to-end critical path that accounts
// for the measured wall latency of the chain.

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"time"

	"cormi/internal/model"
	"cormi/internal/obs"
	"cormi/internal/rmi"
	"cormi/internal/serial"
	"cormi/internal/trace"
)

// dtraceStepSite / dtraceLeafSite are the two call sites of the
// scenario: step is invoked remotely from node 0, leaf is the nested
// call step's executor makes from node 1 to node 2.
const (
	dtraceStepSite = "DTrace.step.1"
	dtraceLeafSite = "DTrace.leaf.1"
)

// dtraceSpansPerStep is the span count one chain link contributes:
// caller+callee for the step call, caller+callee for the nested leaf
// call.
const dtraceSpansPerStep = 4

// DTraceSpec sizes the distributed-tracing scenario. Zero fields take
// the defaults of DefaultDTraceSpec.
type DTraceSpec struct {
	// Depth is the pipelined chain depth (calls per chain).
	Depth int
	// Chains is the number of chains issued; each becomes one trace.
	Chains int
	// StepDelay is the step executor's sleep per call; LeafDelay the
	// leaf's. Real sleeps, so the reconstructed critical path is
	// comparable against measured wall time.
	StepDelay time.Duration
	LeafDelay time.Duration
}

// DefaultDTraceSpec keeps the scenario around ~30ms of wall time while
// keeping the sleeps large enough to dominate per-call overhead, so
// the critical-path-vs-wall ratio is stable.
func DefaultDTraceSpec() DTraceSpec {
	return DTraceSpec{Depth: 8, Chains: 3, StepDelay: time.Millisecond, LeafDelay: 200 * time.Microsecond}
}

func (s DTraceSpec) withDefaults() DTraceSpec {
	d := DefaultDTraceSpec()
	if s.Depth <= 0 {
		s.Depth = d.Depth
	}
	if s.Chains <= 0 {
		s.Chains = d.Chains
	}
	if s.StepDelay <= 0 {
		s.StepDelay = d.StepDelay
	}
	if s.LeafDelay <= 0 {
		s.LeafDelay = d.LeafDelay
	}
	return s
}

// TracingRow is the distributed-tracing section of the bench report:
// structural facts of the reconstructed trees (identical across the
// scenario's traces by construction, so asserted, not averaged) plus
// the mean timing facts.
type TracingRow struct {
	Depth  int `json:"depth"`
	Chains int `json:"chains"`
	// Traces is how many traces node 0's /traces listed (want Chains).
	Traces int `json:"traces"`
	// SpansPerTrace is the reconstructed span count per tree (want
	// 4*Depth: step caller+callee plus leaf caller+callee per link).
	SpansPerTrace int `json:"spans_per_trace"`
	// Roots is the maximum root count observed across trees (want 1: a
	// whole reconstruction has exactly one hop-0 root).
	Roots int `json:"roots"`
	// MaxHop is the deepest hop observed (want 2: node0 -> node1 ->
	// node2).
	MaxHop     int `json:"max_hop"`
	Orphans    int `json:"orphans"`
	Duplicates int `json:"duplicates"`
	// CriticalPathNS / EndToEndNS / WallNS are per-chain means: the
	// tree's end-to-end critical path, its root-to-last-span extent,
	// and the caller-measured wall time of issuing and draining the
	// chain.
	CriticalPathNS int64 `json:"critical_path_ns"`
	EndToEndNS     int64 `json:"end_to_end_ns"`
	WallNS         int64 `json:"wall_ns"`
	// CriticalPathRatio is CriticalPathNS / WallNS. The chain's cost is
	// real executor sleeps, so a whole reconstruction accounts for
	// nearly all of the measured wall time (ratio near 1).
	CriticalPathRatio float64 `json:"critical_path_ratio"`
}

// RunDTrace drives the scenario and returns the verified row.
func RunDTrace(spec DTraceSpec) (*TracingRow, error) {
	spec = spec.withDefaults()

	// Three tracers for three nodes: node 0 head-samples every root
	// call it originates; nodes 1 and 2 never originate roots — they
	// record spans for whatever sampled context arrives on the wire.
	tracers := [3]*trace.Tracer{}
	for i := range tracers {
		cfg := trace.Config{RingSize: 1024}
		if i == 0 {
			cfg.SampleEvery = 1
		}
		tracers[i] = trace.New(cfg)
	}
	c := rmi.New(3,
		rmi.WithNodeTracer(0, tracers[0]),
		rmi.WithNodeTracer(1, tracers[1]),
		rmi.WithNodeTracer(2, tracers[2]))
	defer c.Close()

	servers := make([]*obs.Server, 0, 3)
	defer func() {
		for _, s := range servers {
			_ = s.Close()
		}
	}()
	addrs := make([]string, 0, 3)
	for i, tr := range tracers {
		srv, err := obs.Serve("127.0.0.1:0", obs.Options{
			Tracer:   tr,
			Counters: c.Counters,
			NodeName: fmt.Sprintf("n%d", i),
		})
		if err != nil {
			return nil, fmt.Errorf("harness: dtrace obs node %d: %w", i, err)
		}
		servers = append(servers, srv)
		addrs = append(addrs, srv.Addr())
	}

	leafCS, err := c.NewCallSite(rmi.LevelSite, rmi.SiteSpec{
		Name: dtraceLeafSite, Method: "leaf",
		ArgPlans: []*serial.Plan{serial.PrimitivePlan(dtraceLeafSite, model.FInt)},
		RetPlans: []*serial.Plan{serial.PrimitivePlan(dtraceLeafSite, model.FInt)},
		NumRet:   1,
	})
	if err != nil {
		return nil, err
	}
	stepCS, err := c.NewCallSite(rmi.LevelSite, rmi.SiteSpec{
		Name: dtraceStepSite, Method: "step",
		ArgPlans: []*serial.Plan{serial.PrimitivePlan(dtraceStepSite, model.FInt)},
		RetPlans: []*serial.Plan{serial.PrimitivePlan(dtraceStepSite, model.FInt)},
		NumRet:   1,
	})
	if err != nil {
		return nil, err
	}

	leafRef := c.Node(2).Export(&rmi.Service{
		Name: "DTraceLeaf",
		Methods: map[string]rmi.Method{
			"leaf": func(call *rmi.Call, args []model.Value) []model.Value {
				time.Sleep(spec.LeafDelay)
				return []model.Value{model.Int(args[0].I + 1)}
			},
		},
	})
	// step(x) = leaf(x) forwarded through a nested same-trace call:
	// InvokeFrom threads the executing call's trace context, so the
	// leaf spans join the chain's tree at hop 2.
	var nestedErr error
	stepRef := c.Node(1).Export(&rmi.Service{
		Name: "DTraceStep",
		Methods: map[string]rmi.Method{
			"step": func(call *rmi.Call, args []model.Value) []model.Value {
				time.Sleep(spec.StepDelay)
				vals, err := leafCS.InvokeFrom(call, leafRef, []model.Value{args[0]})
				if err != nil {
					nestedErr = err
					return []model.Value{model.Int(-1)}
				}
				return vals
			},
		},
	})

	// The chains execute strictly one after another (every future is
	// waited before the next chain starts), so the per-chain wall times
	// and the traces' start stamps share one ordering.
	caller := c.Node(0)
	walls := make([]int64, 0, spec.Chains)
	for it := 0; it < spec.Chains; it++ {
		start := time.Now()
		futs := make([]*rmi.Future, spec.Depth)
		futs[0] = stepCS.InvokeAsync(caller, stepRef, []model.Value{model.Int(int64(it))}, rmi.AsyncOpts{Promised: spec.Depth > 1})
		for d := 1; d < spec.Depth; d++ {
			futs[d] = stepCS.InvokeAsync(caller, stepRef, []model.Value{{}}, rmi.AsyncOpts{
				Promised: d < spec.Depth-1,
				Promises: []rmi.PromiseArg{{Arg: 0, Fut: futs[d-1]}},
			})
		}
		// Wait every future — an unwaited promised future leaves its
		// caller span abandoned, which would (correctly) show up as a
		// failed span in the tree.
		for d := 0; d < spec.Depth; d++ {
			vals, err := futs[d].Wait()
			if err != nil {
				return nil, fmt.Errorf("harness: dtrace chain %d link %d: %w", it, d, err)
			}
			if d == spec.Depth-1 {
				if want := int64(it + spec.Depth); vals[0].I != want {
					return nil, fmt.Errorf("harness: dtrace chain %d: got %d, want %d", it, vals[0].I, want)
				}
			}
		}
		walls = append(walls, time.Since(start).Nanoseconds())
		for _, f := range futs {
			f.Release()
		}
	}
	if nestedErr != nil {
		return nil, fmt.Errorf("harness: dtrace nested leaf call: %w", nestedErr)
	}

	// Verification over the production pull path: node 0's /traces
	// lists what it sampled; each /traces/<id>?peers=... reconstructs
	// the cross-node tree from all three stores over real HTTP.
	list, err := fetchTraceList(addrs[0])
	if err != nil {
		return nil, err
	}
	if len(list.Traces) != spec.Chains {
		return nil, fmt.Errorf("harness: dtrace sampled %d traces, want %d", len(list.Traces), spec.Chains)
	}
	row := &TracingRow{Depth: spec.Depth, Chains: spec.Chains, Traces: len(list.Traces)}
	peerQ := strings.Join(addrs[1:], ",")
	var sumCrit, sumEnd int64
	for _, ts := range list.Traces {
		view, err := fetchTraceView(addrs[0], ts.TraceID, peerQ)
		if err != nil {
			return nil, err
		}
		if len(view.Errors) > 0 {
			return nil, fmt.Errorf("harness: dtrace trace %#x peers unreachable: %v", ts.TraceID, view.Errors)
		}
		tree := view.Tree
		if tree == nil {
			return nil, fmt.Errorf("harness: dtrace trace %#x: no tree in view", ts.TraceID)
		}
		if n := len(tree.Spans); n > row.SpansPerTrace {
			row.SpansPerTrace = n
		}
		if n := len(tree.Roots); n > row.Roots {
			row.Roots = n
		}
		if int(tree.MaxHop) > row.MaxHop {
			row.MaxHop = int(tree.MaxHop)
		}
		row.Orphans += tree.Orphans
		row.Duplicates += tree.Duplicates
		sumCrit += tree.CriticalPathNS
		sumEnd += tree.EndToEndNS
	}
	n := int64(spec.Chains)
	row.CriticalPathNS = sumCrit / n
	row.EndToEndNS = sumEnd / n
	var sumWall int64
	for _, w := range walls {
		sumWall += w
	}
	row.WallNS = sumWall / n
	if row.WallNS > 0 {
		row.CriticalPathRatio = float64(row.CriticalPathNS) / float64(row.WallNS)
	}
	return row, nil
}

// fetchTraceList pulls a node's /traces document.
func fetchTraceList(addr string) (*obs.TraceList, error) {
	resp, err := http.Get("http://" + addr + "/traces")
	if err != nil {
		return nil, fmt.Errorf("harness: dtrace list: %w", err)
	}
	defer resp.Body.Close()
	var list obs.TraceList
	if err := json.NewDecoder(resp.Body).Decode(&list); err != nil {
		return nil, fmt.Errorf("harness: dtrace list decode: %w", err)
	}
	if list.Version != obs.TracesVersion {
		return nil, fmt.Errorf("harness: dtrace list version %d, want %d", list.Version, obs.TracesVersion)
	}
	return &list, nil
}

// fetchTraceView pulls a merged /traces/<id>?peers=... view.
func fetchTraceView(addr string, id uint64, peers string) (*obs.TraceView, error) {
	url := fmt.Sprintf("http://%s/traces/%d?peers=%s", addr, id, peers)
	resp, err := http.Get(url)
	if err != nil {
		return nil, fmt.Errorf("harness: dtrace view: %w", err)
	}
	defer resp.Body.Close()
	var view obs.TraceView
	if err := json.NewDecoder(resp.Body).Decode(&view); err != nil {
		return nil, fmt.Errorf("harness: dtrace view decode: %w", err)
	}
	if view.Version != obs.TracesVersion {
		return nil, fmt.Errorf("harness: dtrace view version %d, want %d", view.Version, obs.TracesVersion)
	}
	return &view, nil
}

// FormatTracing renders the tracing row as an aligned summary table.
func FormatTracing(row *TracingRow) string {
	if row == nil {
		return "no tracing row\n"
	}
	var b []byte
	b = fmt.Appendf(b, "%6s %7s %7s %6s %6s %8s %17s %14s %11s %6s\n",
		"depth", "chains", "spans", "roots", "maxhop", "orphans",
		"critical_path_ns", "end_to_end_ns", "wall_ns", "ratio")
	b = fmt.Appendf(b, "%6d %7d %7d %6d %6d %8d %17d %14d %11d %6.2f\n",
		row.Depth, row.Chains, row.SpansPerTrace, row.Roots, row.MaxHop,
		row.Orphans, row.CriticalPathNS, row.EndToEndNS, row.WallNS,
		row.CriticalPathRatio)
	return string(b)
}
