package harness

import (
	"testing"

	"cormi/internal/race"
)

// TestDTraceChainReconstructsSingleTree is the acceptance check for
// DESIGN.md §15: a pipelined depth-8 chain across three traced nodes
// reconstructs — over the production /traces pull path — as exactly
// one tree per chain, with the span and hop counts the topology
// implies and a critical path accounting for the measured wall time.
func TestDTraceChainReconstructsSingleTree(t *testing.T) {
	spec := DefaultDTraceSpec()
	row, err := RunDTrace(spec)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("dtrace row: %+v", row)
	if row.Traces != spec.Chains {
		t.Errorf("sampled %d traces, want %d (one per chain)", row.Traces, spec.Chains)
	}
	if row.Roots != 1 {
		t.Errorf("reconstructed tree has %d roots, want exactly 1", row.Roots)
	}
	if want := dtraceSpansPerStep * spec.Depth; row.SpansPerTrace != want {
		t.Errorf("%d spans per trace, want %d (caller+callee for step and leaf per link)",
			row.SpansPerTrace, want)
	}
	if row.MaxHop != 2 {
		t.Errorf("max hop %d, want 2 (node0 -> node1 -> node2)", row.MaxHop)
	}
	if row.Orphans != 0 {
		t.Errorf("%d orphan spans, want none", row.Orphans)
	}
	if row.Duplicates != 0 {
		t.Errorf("%d duplicate spans, want none", row.Duplicates)
	}
	if row.CriticalPathNS <= 0 || row.CriticalPathNS > row.EndToEndNS {
		t.Errorf("critical path %dns outside (0, end-to-end %dns]",
			row.CriticalPathNS, row.EndToEndNS)
	}
	// The chain's cost is real executor sleeps, so the reconstructed
	// critical path must account for the caller's measured wall time.
	// Race instrumentation inflates the untraced overhead between the
	// sleeps, so the tight bound applies only to the plain build.
	lo := 0.90
	if race.Enabled {
		lo = 0.60
	}
	if row.CriticalPathRatio < lo || row.CriticalPathRatio > 1.05 {
		t.Errorf("critical path is %.3f of measured wall time, want within [%.2f, 1.05]",
			row.CriticalPathRatio, lo)
	}
}
