// Random MiniJP program generation for the soundness fuzzer: small
// straight-line programs over a two-pointer Cell class that link,
// unlink, alias, globalize, wrap (through a direct helper, exercising
// the context-sensitive summaries) and remotely ship random object
// graphs. The generator is deterministic in its *rand.Rand, never
// dereferences a possibly-null field, and never passes remote
// references — every generated program compiles and runs to
// completion, so a failure is always a real finding.

package harness

import (
	"fmt"
	"math/rand"
	"strings"
)

// fuzzHeader is the fixed part of every generated program. Sink's
// methods only read scalar fields of their (deep-copied) arguments;
// echo bounces its argument graph back through the return path.
const fuzzHeader = `class Cell { Cell a; Cell b; int v; }
remote class Sink {
	int eat(Cell x) {
		return x.v;
	}
	int pair(Cell x, Cell y) {
		return x.v + y.v;
	}
	Cell echo(Cell x) {
		return x;
	}
}
class Main {
	static Cell g;
	static Cell wrap(Cell c) {
		Cell o = new Cell();
		o.a = c;
		return o;
	}
`

// GenMiniJP emits one random program: 3-7 always-non-null Cell
// variables and 8-27 statements mixing field links (builds arbitrary
// graphs, including cycles and cross-variable sharing), null stores
// (kills links — strong-update bait), stores to a static (escape
// bait), direct wrap calls (context-sensitivity bait) and remote
// sends of one or two roots plus remote echoes.
func GenMiniJP(rng *rand.Rand) string {
	nv := 3 + rng.Intn(5)
	var b strings.Builder
	b.WriteString(fuzzHeader)
	b.WriteString("\tstatic int main() {\n")
	b.WriteString("\t\tSink s = new Sink();\n")
	b.WriteString("\t\tint r = 0;\n")
	v := func() string { return fmt.Sprintf("v%d", rng.Intn(nv)) }
	for i := 0; i < nv; i++ {
		fmt.Fprintf(&b, "\t\tCell v%d = new Cell();\n", i)
	}
	field := func() string {
		if rng.Intn(2) == 0 {
			return "a"
		}
		return "b"
	}
	ns := 8 + rng.Intn(20)
	for i := 0; i < ns; i++ {
		switch p := rng.Intn(100); {
		case p < 35: // link two graphs
			fmt.Fprintf(&b, "\t\t%s.%s = %s;\n", v(), field(), v())
		case p < 45: // sever a link
			fmt.Fprintf(&b, "\t\t%s.%s = null;\n", v(), field())
		case p < 50: // leak to a global
			fmt.Fprintf(&b, "\t\tMain.g = %s;\n", v())
		case p < 60: // box through the direct helper
			fmt.Fprintf(&b, "\t\t%s = Main.wrap(%s);\n", v(), v())
		case p < 75: // ship one root
			fmt.Fprintf(&b, "\t\tr = r + s.eat(%s);\n", v())
		case p < 85: // ship two roots in one message
			fmt.Fprintf(&b, "\t\tr = r + s.pair(%s, %s);\n", v(), v())
		default: // bounce a graph through the return path
			fmt.Fprintf(&b, "\t\t%s = s.echo(%s);\n", v(), v())
		}
	}
	b.WriteString("\t\treturn r;\n\t}\n}\n")
	return b.String()
}
