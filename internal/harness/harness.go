// Package harness regenerates the paper's evaluation tables (§5,
// Tables 1–8): each workload runs once per optimization level, and the
// results are formatted in the paper's layout — a seconds+gain table
// per application and a runtime-statistics table for LU, the
// superoptimizer and the webserver.
package harness

import (
	"fmt"
	"strings"

	"cormi/internal/apps/micro"
	"cormi/internal/rmi"
	"cormi/internal/stats"
)

// Scale sizes the workloads. The paper's sizes (1024 matrix, millions
// of RMIs) are reachable but slow in a single test run, so two presets
// exist.
type Scale struct {
	ListElems, ListIters  int
	ArraySize, ArrayIters int
	LUN, LUBS             int
	SuperoptMaxLen        int
	SuperoptThirdReg      bool
	WebRequests, WebPages int
	Nodes                 int
}

// TestScale finishes in well under a second per table.
func TestScale() Scale {
	return Scale{
		ListElems: 100, ListIters: 25,
		ArraySize: 16, ArrayIters: 25,
		LUN: 96, LUBS: 16,
		SuperoptMaxLen: 2,
		WebRequests:    300, WebPages: 64,
		Nodes: 2,
	}
}

// PaperScale approaches the paper's workload sizes (minutes of wall
// time across all tables).
func PaperScale() Scale {
	return Scale{
		ListElems: 100, ListIters: 2000,
		ArraySize: 16, ArrayIters: 2000,
		LUN: 1024, LUBS: 16,
		SuperoptMaxLen: 3, SuperoptThirdReg: true,
		WebRequests: 20000, WebPages: 512,
		Nodes: 2,
	}
}

// Row is one optimization level's measurement.
type Row struct {
	Level   rmi.OptLevel
	Value   float64 // seconds or µs/page
	Stats   stats.Snapshot
	Details string // extra correctness note
}

// Table is one reproduced paper table.
type Table struct {
	ID      int
	Title   string
	Unit    string // "seconds" or "µs per Webpage"
	Rows    []Row
	IsStats bool // render the runtime-statistics layout
	Caveats []string
}

// Gain returns the percentage gain of row i over the class baseline.
func (t *Table) Gain(i int) float64 {
	base := t.Rows[0].Value
	if base == 0 {
		return 0
	}
	return 100 * (base - t.Rows[i].Value) / base
}

// Format renders the table in the paper's layout.
func (t *Table) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table %d: %s\n", t.ID, t.Title)
	if t.IsStats {
		// "The columns denoted with 'invocations' tell how many calls
		// were made to serialization methods during the serialization
		// process" (§5.2).
		fmt.Fprintf(&b, "%-22s %12s %12s %12s %13s %14s %12s\n",
			"Optimization", "reused objs", "local rpcs", "remote rpcs", "new (MBytes)", "cycle lookups", "invocations")
		for _, r := range t.Rows {
			fmt.Fprintf(&b, "%-22s %12d %12d %12d %13.2f %14d %12d\n",
				r.Level, r.Stats.ReusedObjs, r.Stats.LocalRPCs, r.Stats.RemoteRPCs,
				r.Stats.NewMBytes(), r.Stats.CycleLookups, r.Stats.SerializerCalls)
		}
	} else {
		fmt.Fprintf(&b, "%-22s %12s %18s\n", "Compiler Optimization", t.Unit, "gain over 'class'")
		for i, r := range t.Rows {
			fmt.Fprintf(&b, "%-22s %12.2f %17.1f%%\n", r.Level, r.Value, t.Gain(i))
		}
	}
	for _, c := range t.Caveats {
		fmt.Fprintf(&b, "  note: %s\n", c)
	}
	return b.String()
}

// Table1 reproduces "LinkedList: 100 elements, 2 CPU's".
func Table1(s Scale) (*Table, error) {
	t := &Table{ID: 1, Unit: "seconds",
		Title: fmt.Sprintf("LinkedList: %d elements, %d CPU's (%d sends).", s.ListElems, s.Nodes, s.ListIters)}
	for _, level := range rmi.AllLevels {
		out, err := micro.RunLinkedList(level, s.ListElems, s.ListIters)
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, Row{Level: level, Value: out.Seconds, Stats: out.Stats})
	}
	t.Caveats = append(t.Caveats,
		"the list is conservatively flagged cyclic, so the '+ cycle' rows match their bases (as in the paper)")
	return t, nil
}

// Table2 reproduces "2D array transmission, 16x16, 2 CPU's".
func Table2(s Scale) (*Table, error) {
	t := &Table{ID: 2, Unit: "seconds",
		Title: fmt.Sprintf("2D array transmission, %dx%d, %d CPU's (%d sends).", s.ArraySize, s.ArraySize, s.Nodes, s.ArrayIters)}
	for _, level := range rmi.AllLevels {
		out, err := micro.RunArray(level, s.ArraySize, s.ArrayIters)
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, Row{Level: level, Value: out.Seconds, Stats: out.Stats})
	}
	return t, nil
}
