package harness

import (
	"strings"
	"testing"

	"cormi/internal/rmi"
)

func TestAllTablesGenerate(t *testing.T) {
	tables, err := All(TestScale())
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 8 {
		t.Fatalf("tables = %d", len(tables))
	}
	for i, tab := range tables {
		if tab.ID != i+1 {
			t.Fatalf("table %d has ID %d", i, tab.ID)
		}
		if len(tab.Rows) != len(rmi.AllLevels) {
			t.Fatalf("table %d has %d rows", tab.ID, len(tab.Rows))
		}
		out := tab.Format()
		if !strings.Contains(out, "class") || !strings.Contains(out, "site + reuse + cycle") {
			t.Fatalf("table %d formatting:\n%s", tab.ID, out)
		}
	}
	// Performance tables: all-optimizations row must beat baseline.
	for _, id := range []int{0, 1, 2, 4, 6} { // tables 1,2,3,5,7
		tab := tables[id]
		if tab.Gain(len(tab.Rows)-1) <= 0 {
			t.Fatalf("table %d: no overall gain:\n%s", tab.ID, tab.Format())
		}
	}
	// Statistics tables: cycle lookups vanish in the '+ cycle' rows.
	for _, id := range []int{3, 5, 7} { // tables 4,6,8
		tab := tables[id]
		if !tab.IsStats {
			t.Fatalf("table %d should be a statistics table", tab.ID)
		}
		if tab.Rows[2].Stats.CycleLookups != 0 || tab.Rows[4].Stats.CycleLookups != 0 {
			t.Fatalf("table %d: cycle rows still pay lookups:\n%s", tab.ID, tab.Format())
		}
		if tab.Rows[0].Stats.CycleLookups == 0 {
			t.Fatalf("table %d: baseline has no cycle lookups", tab.ID)
		}
	}
}

func TestGainFormatting(t *testing.T) {
	tab := &Table{ID: 1, Unit: "seconds", Title: "x",
		Rows: []Row{{Level: rmi.LevelClass, Value: 100}, {Level: rmi.LevelSite, Value: 87}}}
	if g := tab.Gain(1); g != 13 {
		t.Fatalf("gain = %g", g)
	}
	if tab.Gain(0) != 0 {
		t.Fatal("baseline gain nonzero")
	}
	zero := &Table{Rows: []Row{{Value: 0}, {Value: 0}}}
	if zero.Gain(1) != 0 {
		t.Fatal("division by zero")
	}
}
