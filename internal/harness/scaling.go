package harness

import (
	"fmt"
	"strings"

	"cormi/internal/apps/lu"
	"cormi/internal/rmi"
)

// ScalingRow is one node-count measurement of the scaling extension.
type ScalingRow struct {
	Nodes   int
	Seconds float64
	Speedup float64
}

// ScalingTable extends the paper's 2-CPU evaluation: the same workload
// at growing cluster sizes under all optimizations, reporting parallel
// speedup in virtual time. (The paper only reports 2 CPUs; this is the
// natural next question for a cluster system.)
type ScalingTable struct {
	Title string
	Rows  []ScalingRow
}

// Format renders the scaling table.
func (t *ScalingTable) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n%-8s %12s %10s\n", t.Title, "CPUs", "seconds", "speedup")
	for _, r := range t.Rows {
		fmt.Fprintf(&b, "%-8d %12.3f %9.2fx\n", r.Nodes, r.Seconds, r.Speedup)
	}
	return b.String()
}

// LUScaling runs LU at site+reuse+cycle over the given node counts.
func LUScaling(n, bs int, nodeCounts []int) (*ScalingTable, error) {
	t := &ScalingTable{Title: fmt.Sprintf("LU scaling: %d matrix (block size %d), all optimizations.", n, bs)}
	var base float64
	for _, nodes := range nodeCounts {
		out, err := lu.Run(rmi.LevelSiteReuseCycle, n, bs, nodes)
		if err != nil {
			return nil, err
		}
		if out.MaxResidual > 1e-6 {
			return nil, fmt.Errorf("harness: LU residual %g at %d nodes", out.MaxResidual, nodes)
		}
		if base == 0 {
			base = out.Seconds
		}
		t.Rows = append(t.Rows, ScalingRow{Nodes: nodes, Seconds: out.Seconds, Speedup: base / out.Seconds})
	}
	return t, nil
}
