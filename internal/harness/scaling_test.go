package harness

import "testing"

func TestLUScaling(t *testing.T) {
	tab, err := LUScaling(256, 32, []int{1, 2, 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(tab.Rows) != 3 {
		t.Fatalf("rows = %d", len(tab.Rows))
	}
	// More CPUs must not slow the virtual makespan down dramatically,
	// and 2 CPUs should beat 1.
	if !(tab.Rows[1].Seconds < tab.Rows[0].Seconds) {
		t.Fatalf("no speedup 1->2: %+v", tab.Rows)
	}
	out := tab.Format()
	if out == "" {
		t.Fatal("empty format")
	}
	t.Log("\n" + out)
}
