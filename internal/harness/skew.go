// Version-skew mode: run the paper's workloads across a cluster in
// which one node advertises plan fingerprints from a different program
// version, and verify that HELLO negotiation demotes the affected
// classes to the self-describing encoding — every result stays correct,
// nothing mis-decodes, and the demotions are visible in the fallback
// counters. This is the mixed-version acceptance scenario for the
// versioned wire protocol (DESIGN.md §12).

package harness

import (
	"fmt"
	"strings"
	"time"

	"cormi/internal/apps/lu"
	"cormi/internal/apps/micro"
	"cormi/internal/model"
	"cormi/internal/rmi"
	"cormi/internal/serial"
	"cormi/internal/stats"
	"cormi/internal/transport"
	"cormi/internal/wire"
)

// SkewRow is one (workload, level) outcome under version skew.
type SkewRow struct {
	App     string
	Level   rmi.OptLevel
	Seconds float64
	Stats   stats.Snapshot
	Err     error
}

// SkewReport collects a version-skew run across workloads and levels.
type SkewReport struct {
	SkewNode int
	Rows     []SkewRow
}

// Failed returns the first row-level error, if any.
func (r *SkewReport) Failed() error {
	for _, row := range r.Rows {
		if row.Err != nil {
			return fmt.Errorf("%s @ %s: %w", row.App, row.Level, row.Err)
		}
	}
	return nil
}

// Format renders the report: per row the makespan plus the negotiation
// counters proving the skewed links actually demoted.
func (r *SkewReport) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Version-skew run: node %d advertises skewed plan fingerprints\n", r.SkewNode)
	fmt.Fprintf(&b, "%-12s %-22s %10s %14s %10s %7s\n",
		"app", "optimization", "seconds", "planFallbacks", "malformed", "result")
	for _, row := range r.Rows {
		result := "ok"
		if row.Err != nil {
			result = "FAIL: " + row.Err.Error()
		}
		fmt.Fprintf(&b, "%-12s %-22s %10.4f %14d %10d %7s\n",
			row.App, row.Level, row.Seconds,
			row.Stats.PlanFallbacks, row.Stats.MalformedFrames, result)
	}
	return b.String()
}

// checkSkewRow verifies the negotiation outcome a row must show: levels
// that compile site plans must have demoted at least one object to the
// class-level encoding (the skew was real and was detected), while
// class mode — already on the universal encoding — must not count
// fallbacks. Malformed-frame rejections would mean a planned frame
// leaked through negotiation, so any count fails the row.
func checkSkewRow(level rmi.OptLevel, s stats.Snapshot) error {
	if s.MalformedFrames != 0 {
		return fmt.Errorf("%d malformed frames under pure version skew", s.MalformedFrames)
	}
	if level == rmi.LevelClass {
		if s.PlanFallbacks != 0 {
			return fmt.Errorf("class mode counted %d plan fallbacks", s.PlanFallbacks)
		}
		return nil
	}
	if s.PlanFallbacks == 0 {
		return fmt.Errorf("no plan fallbacks: skewed link kept using compiled plans")
	}
	return nil
}

// VersionSkew runs the micro benchmarks and the LU kernel at every
// optimization level with skewNode advertising version-skewed plan
// fingerprints, over a fault-free interconnect. Each row verifies the
// workload's correctness witness, exactly-once execution, and the
// negotiation evidence from checkSkewRow.
func VersionSkew(s Scale, skewNode int) (*SkewReport, error) {
	report := &SkewReport{SkewNode: skewNode}
	opts := func() []rmi.Option { return []rmi.Option{rmi.WithPlanSkew(skewNode)} }
	for _, level := range rmi.AllLevels {
		out, err := micro.RunLinkedList(level, s.ListElems, s.ListIters, opts()...)
		if err == nil {
			err = verifyExactlyOnce("LinkedList", out.Executions, int64(s.ListIters))
			if err == nil && out.ElementsSeen != int64(s.ListElems) {
				err = fmt.Errorf("receiver saw %d elements, want %d", out.ElementsSeen, s.ListElems)
			}
			if err == nil {
				err = checkSkewRow(level, out.Stats)
			}
		}
		report.Rows = append(report.Rows, SkewRow{
			App: "LinkedList", Level: level, Seconds: out.Seconds, Stats: out.Stats, Err: err})
	}
	for _, level := range rmi.AllLevels {
		out, err := micro.RunArray(level, s.ArraySize, s.ArrayIters, opts()...)
		if err == nil {
			err = verifyExactlyOnce("Array", out.Executions, int64(s.ArrayIters))
			if err == nil {
				err = checkSkewRow(level, out.Stats)
			}
		}
		report.Rows = append(report.Rows, SkewRow{
			App: "Array", Level: level, Seconds: out.Seconds, Stats: out.Stats, Err: err})
	}
	for _, level := range rmi.AllLevels {
		out, err := lu.Run(level, s.LUN, s.LUBS, s.Nodes, opts()...)
		if err == nil && out.MaxResidual > 1e-6 {
			err = fmt.Errorf("LU residual %g under version skew", out.MaxResidual)
		}
		if err == nil {
			err = checkSkewRow(level, out.Stats)
		}
		report.Rows = append(report.Rows, SkewRow{
			App: "LU", Level: level, Seconds: out.Seconds, Stats: out.Stats, Err: err})
	}
	return report, report.Failed()
}

// NegotiationReport is the rmibench negotiation section: evidence that
// the HELLO exchange, plan demotion and malformed-frame rejection all
// fired in one probe cluster.
type NegotiationReport struct {
	PlanFallbacks   int64            `json:"plan_fallbacks"`
	MalformedFrames int64            `json:"malformed_frames"`
	Links           []stats.LinkStat `json:"links"`
}

// NegotiationProbe runs a minimal two-node mixed-version cluster: node
// 1 advertises skewed fingerprints, a site-compiled echo call crosses
// the link (exercising demotion), and one deliberately malformed frame
// is injected at the transport (exercising the hardened decoder's
// typed rejection). It returns the resulting negotiation evidence.
func NegotiationProbe() (*NegotiationReport, error) {
	c := rmi.New(2, rmi.WithPlanSkew(1))
	defer c.Close()
	node := c.Registry.MustDefine("ProbeNode", nil, model.Field{Name: "v", Kind: model.FInt})
	np := &serial.NodePlan{Class: node}
	np.Steps = []serial.Step{{Op: serial.OpInt, Field: 0, FieldName: "v"}}
	plan := func(site string) *serial.Plan {
		return &serial.Plan{Site: site, Kind: model.FRef, Root: np}
	}
	ref := c.Node(1).Export(&rmi.Service{
		Name: "Echo",
		Methods: map[string]rmi.Method{
			"echo": func(call *rmi.Call, args []model.Value) []model.Value { return args },
		},
	})
	cs, err := c.NewCallSite(rmi.LevelSite, rmi.SiteSpec{
		Name: "probe.echo", Method: "echo",
		ArgPlans: []*serial.Plan{plan("probe.echo")},
		RetPlans: []*serial.Plan{plan("probe.echo.r")},
	})
	if err != nil {
		return nil, fmt.Errorf("harness: negotiation probe: %w", err)
	}
	for i := 0; i < 32; i++ {
		o := model.New(node)
		o.Set("v", model.Int(int64(i)))
		rets, err := cs.Invoke(c.Node(0), ref, []model.Value{model.Ref(o)})
		if err != nil {
			return nil, fmt.Errorf("harness: negotiation probe echo %d: %w", i, err)
		}
		if got := rets[0].O.Get("v").I; got != int64(i) {
			return nil, fmt.Errorf("harness: negotiation probe echo %d returned %d", i, got)
		}
	}
	if fb := c.Counters.PlanFallbacks.Load(); fb == 0 {
		return nil, fmt.Errorf("harness: negotiation probe: skewed link counted no plan fallbacks")
	}

	// Inject one hostile frame: a CRC-valid call frame whose header is
	// truncated after the message tag. The callee must reject it with
	// the typed malformed counter — not crash, not dedup-cache it.
	m := wire.Get()
	m.AppendByte(0) // msgCall tag, then nothing: header decode must fail
	m.SealFrame()
	if err := c.Network().Endpoint(0).Send(transport.Packet{To: 1, Payload: m.Detach()}); err != nil {
		return nil, fmt.Errorf("harness: negotiation probe inject: %w", err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for c.Counters.MalformedFrames.Load() == 0 {
		if time.Now().After(deadline) {
			return nil, fmt.Errorf("harness: negotiation probe: malformed frame was not counted")
		}
		time.Sleep(time.Millisecond)
	}
	return &NegotiationReport{
		PlanFallbacks:   c.Counters.PlanFallbacks.Load(),
		MalformedFrames: c.Counters.MalformedFrames.Load(),
		Links:           c.LinkStats(),
	}, nil
}

// FormatNegotiation renders the negotiation section for the text UI.
func FormatNegotiation(r *NegotiationReport) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Negotiation probe: planFallbacks=%d malformedFrames=%d\n",
		r.PlanFallbacks, r.MalformedFrames)
	fmt.Fprintf(&b, "%-6s %-6s %9s %10s %9s %10s\n", "from", "to", "version", "peerPlans", "demoted", "fallbacks")
	for _, l := range r.Links {
		fmt.Fprintf(&b, "%-6d %-6d %9d %10d %9d %10d\n",
			l.From, l.To, l.Version, l.PeerPlans, l.DemotedClasses, l.Fallbacks)
	}
	return b.String()
}
