package harness

import (
	"strings"
	"testing"

	"cormi/internal/rmi"
)

// TestVersionSkew is the mixed-version acceptance gate: a cluster with
// one skewed node completes every workload at every level with correct
// results, visible plan fallbacks on planned levels, and none in class
// mode.
func TestVersionSkew(t *testing.T) {
	s := TestScale()
	s.ListIters, s.ArrayIters = 10, 10
	s.LUN, s.LUBS = 32, 16
	rep, err := VersionSkew(s, 1)
	if err != nil {
		t.Fatalf("version skew run failed: %v\n%s", err, rep.Format())
	}
	if len(rep.Rows) != 3*len(rmi.AllLevels) {
		t.Fatalf("got %d rows, want %d", len(rep.Rows), 3*len(rmi.AllLevels))
	}
	if !strings.Contains(rep.Format(), "Version-skew run") {
		t.Fatal("report header missing")
	}
}

// TestNegotiationProbe checks the rmibench negotiation section end to
// end: fallbacks counted, the injected malformed frame rejected and
// counted, and both directed links reporting demoted classes.
func TestNegotiationProbe(t *testing.T) {
	rep, err := NegotiationProbe()
	if err != nil {
		t.Fatal(err)
	}
	if rep.PlanFallbacks == 0 {
		t.Error("no plan fallbacks recorded")
	}
	if rep.MalformedFrames == 0 {
		t.Error("injected malformed frame not counted")
	}
	var sawDemoted bool
	for _, l := range rep.Links {
		if l.Version != 1 {
			t.Errorf("link %d->%d negotiated version %d, want 1", l.From, l.To, l.Version)
		}
		if l.DemotedClasses > 0 {
			sawDemoted = true
		}
	}
	if !sawDemoted {
		t.Errorf("no link reports demoted classes: %+v", rep.Links)
	}
	out := FormatNegotiation(rep)
	if !strings.Contains(out, "Negotiation probe") {
		t.Fatalf("bad format output:\n%s", out)
	}
}
