// The soundness fuzzer cross-validates the sharpened heap analysis
// against concrete executions: every random program is compiled at
// full optimization and run in the interpreter, and at every remote
// invocation the caller-side argument graphs (and returned graphs) are
// walked object-by-object. A call site the compiler proved repeat-free
// (cycle table elided) must never be observed shipping a graph that
// reaches any object twice — one counterexample is an unsound elision
// that would hang or corrupt the wire format.

package harness

import (
	"math/rand"
	"testing"

	"cormi/internal/core"
	"cormi/internal/interp"
	"cormi/internal/model"
	"cormi/internal/rmi"
)

// repeatedObject walks the graphs rooted at vals with one shared seen
// set — exactly the contract of heap.MayCycleFrom, which flags both
// true cycles and DAG sharing — and reports whether any object is
// reached twice.
func repeatedObject(vals []model.Value) bool {
	seen := map[*model.Object]bool{}
	var visit func(o *model.Object) bool
	visit = func(o *model.Object) bool {
		if o == nil {
			return false
		}
		if seen[o] {
			return true
		}
		seen[o] = true
		switch o.Class.Kind {
		case model.KObject:
			for _, f := range o.Fields {
				if f.Kind == model.FRef && visit(f.O) {
					return true
				}
			}
		case model.KRefArray:
			for _, e := range o.Refs {
				if visit(e) {
					return true
				}
			}
		}
		return false
	}
	for _, val := range vals {
		if val.Kind == model.FRef && visit(val.O) {
			return true
		}
	}
	return false
}

func TestSoundnessFuzz(t *testing.T) {
	programs := 120
	if testing.Short() {
		programs = 25
	}
	checkedArgs, checkedRets := 0, 0
	for i := 0; i < programs; i++ {
		seed := int64(9000 + i)
		src := GenMiniJP(rand.New(rand.NewSource(seed)))
		cluster := rmi.New(2)
		res, err := core.CompileInto(src, cluster.Registry)
		if err != nil {
			cluster.Close()
			t.Fatalf("seed %d: generated program does not compile: %v\n%s", seed, err, src)
		}
		m, err := interp.New(res, cluster, rmi.LevelSiteReuseCycle)
		if err != nil {
			cluster.Close()
			t.Fatalf("seed %d: machine: %v", seed, err)
		}
		siteOf := map[int]*core.SiteInfo{}
		for _, si := range res.Sites {
			if !si.Dead {
				siteOf[si.SiteID] = si
			}
		}
		var violations []string
		m.OnRemoteArgs = func(id int, args []model.Value) {
			si := siteOf[id]
			if si == nil || si.MayCycle {
				return
			}
			checkedArgs++
			if repeatedObject(args) {
				violations = append(violations,
					si.Name+": argument graph repeats an object on a statically-proved-acyclic path")
			}
		}
		m.OnRemoteRet = func(id int, ret model.Value) {
			si := siteOf[id]
			if si == nil || si.RetMayCycle {
				return
			}
			checkedRets++
			if repeatedObject([]model.Value{ret}) {
				violations = append(violations,
					si.Name+": returned graph repeats an object on a statically-proved-acyclic path")
			}
		}
		if _, err := m.RunMain("Main"); err != nil {
			cluster.Close()
			t.Fatalf("seed %d: run: %v\n%s", seed, err, src)
		}
		cluster.Close()
		for _, viol := range violations {
			t.Errorf("seed %d: SOUNDNESS VIOLATION %s\n%s", seed, viol, src)
		}
		if t.Failed() {
			return
		}
	}
	// The fuzzer must have teeth: if no elided-check invocation was
	// ever observed, the generator or verdict plumbing regressed and
	// the test validates nothing.
	if checkedArgs == 0 || checkedRets == 0 {
		t.Errorf("vacuous fuzz run: %d proved-acyclic argument messages and %d returns observed, want both > 0",
			checkedArgs, checkedRets)
	}
}
