package harness

import (
	"fmt"

	"cormi/internal/apps/lu"
	"cormi/internal/apps/superopt"
	"cormi/internal/apps/webserver"
	"cormi/internal/rmi"
)

// Tables34 reproduces "LU: runtime" and "LU: runtime statistics" from
// one instrumented run per level (the paper gathered the statistics on
// a separate instrumented run; our counters are always on).
func Tables34(s Scale) (*Table, *Table, error) {
	t3 := &Table{ID: 3, Unit: "seconds",
		Title: fmt.Sprintf("LU: runtime %d matrix (block size %d), %d CPU's.", s.LUN, s.LUBS, s.Nodes)}
	t4 := &Table{ID: 4, IsStats: true,
		Title: fmt.Sprintf("LU: runtime statistics %d matrix, %d CPU's.", s.LUN, s.Nodes)}
	for _, level := range rmi.AllLevels {
		out, err := lu.Run(level, s.LUN, s.LUBS, s.Nodes)
		if err != nil {
			return nil, nil, err
		}
		if out.MaxResidual > 1e-6 {
			return nil, nil, fmt.Errorf("harness: LU residual %g at %v", out.MaxResidual, level)
		}
		t3.Rows = append(t3.Rows, Row{Level: level, Value: out.Seconds, Stats: out.Stats})
		t4.Rows = append(t4.Rows, Row{Level: level, Stats: out.Stats})
	}
	t4.Caveats = append(t4.Caveats,
		"with '+ reuse' only first-touch deserializations allocate; every identically-shaped block fetch after that reuses")
	return t3, t4, nil
}

// Tables56 reproduces the superoptimizer's search time and statistics.
func Tables56(s Scale) (*Table, *Table, error) {
	p := superopt.DefaultParams()
	p.MaxLen = s.SuperoptMaxLen
	p.Nodes = s.Nodes
	if s.SuperoptThirdReg {
		p.NRegs = 3
	}
	t5 := &Table{ID: 5, Unit: "seconds",
		Title: fmt.Sprintf("Superoptimizer: seconds for performing the exhaustive search (len<=%d), %d CPU's.", p.MaxLen, s.Nodes)}
	t6 := &Table{ID: 6, IsStats: true,
		Title: fmt.Sprintf("Superoptimizer: runtime statistics, %d CPU's.", s.Nodes)}
	var matches int
	for _, level := range rmi.AllLevels {
		out, err := superopt.Search(level, p)
		if err != nil {
			return nil, nil, err
		}
		if len(out.Matches) == 0 {
			return nil, nil, fmt.Errorf("harness: superoptimizer found no equivalences at %v", level)
		}
		if matches == 0 {
			matches = len(out.Matches)
		} else if matches != len(out.Matches) {
			return nil, nil, fmt.Errorf("harness: match count differs across levels (%d vs %d)", matches, len(out.Matches))
		}
		t5.Rows = append(t5.Rows, Row{Level: level, Value: out.Seconds, Stats: out.Stats,
			Details: fmt.Sprintf("%d sequences tested, %d equivalences", out.Tested, len(out.Matches))})
		t6.Rows = append(t6.Rows, Row{Level: level, Stats: out.Stats})
	}
	t6.Caveats = append(t6.Caveats,
		"programs are queued at the tester and therefore escape: reuse stays at 0 (paper: 2)")
	return t5, t6, nil
}

// Tables78 reproduces the webserver's per-page latency and statistics.
func Tables78(s Scale) (*Table, *Table, error) {
	p := webserver.DefaultParams()
	p.Requests = s.WebRequests
	p.Pages = s.WebPages
	p.Nodes = s.Nodes
	t7 := &Table{ID: 7, Unit: "µs per Webpage",
		Title: fmt.Sprintf("Webserver: µs per webpage retrieval (%d requests), %d CPU's.", p.Requests, s.Nodes)}
	t8 := &Table{ID: 8, IsStats: true,
		Title: fmt.Sprintf("Webserver: runtime statistics, %d CPU's.", s.Nodes)}
	for _, level := range rmi.AllLevels {
		out, err := webserver.Run(level, p)
		if err != nil {
			return nil, nil, err
		}
		t7.Rows = append(t7.Rows, Row{Level: level, Value: out.MicrosPerPage, Stats: out.Stats})
		t8.Rows = append(t8.Rows, Row{Level: level, Stats: out.Stats})
	}
	t8.Caveats = append(t8.Caveats,
		"with reuse, no objects are allocated by deserialization after the first page (paper: new MBytes -> 0.0)")
	return t7, t8, nil
}

// All regenerates every table.
func All(s Scale) ([]*Table, error) {
	t1, err := Table1(s)
	if err != nil {
		return nil, err
	}
	t2, err := Table2(s)
	if err != nil {
		return nil, err
	}
	t3, t4, err := Tables34(s)
	if err != nil {
		return nil, err
	}
	t5, t6, err := Tables56(s)
	if err != nil {
		return nil, err
	}
	t7, t8, err := Tables78(s)
	if err != nil {
		return nil, err
	}
	return []*Table{t1, t2, t3, t4, t5, t6, t7, t8}, nil
}
