// The verdict matrix: the precision regression gate of `make
// verify-precision`. It runs the full compiler over every MiniJP
// program in a corpus directory and renders one line per remote call
// site stating exactly what the optimizer decided — cycle table kept
// or elided (and the witness when kept), plan shape, and buffer reuse
// granted or denied (and the escape rule when denied). The rendered
// table is diffed against a checked-in golden: a precision REGRESSION
// fails CI, an IMPROVEMENT requires a reviewed golden update. A second
// golden, built with heap.InsensitiveOptions, pins the
// context-insensitive baseline the tentpole is measured against.

package harness

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"cormi/internal/core"
	"cormi/internal/heap"
	"cormi/internal/model"
)

// ProgramVerdicts is one corpus program's row group: the explain
// report it compiled to, plus analysis cost metrics.
type ProgramVerdicts struct {
	Program string
	Report  *core.ExplainReport
	Stats   heap.Stats
	// AnalysisNS is the wall time of the whole compile (parse through
	// plans; the heap analysis dominates). It is reported by
	// FormatCost but deliberately kept out of Format, the golden text.
	AnalysisNS int64

	Sites  int // non-dead remote call sites
	Elided int // elided cycle checks (argument + return directions)
	Grants int // reuse grants (arguments + returns)
}

// VerdictMatrix is the whole corpus run.
type VerdictMatrix struct {
	Opts     core.Options
	Programs []*ProgramVerdicts

	Sites  int
	Elided int
	Grants int
}

// BuildVerdictMatrix compiles every *.jp under dir (sorted by name)
// with the given compiler options and collects the verdicts.
func BuildVerdictMatrix(dir string, opts core.Options) (*VerdictMatrix, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range ents {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".jp") {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	if len(names) == 0 {
		return nil, fmt.Errorf("verdict matrix: no .jp programs under %s", dir)
	}
	m := &VerdictMatrix{Opts: opts}
	for _, name := range names {
		src, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			return nil, err
		}
		start := time.Now()
		res, err := core.CompileOpts(string(src), model.NewRegistry(), opts)
		if err != nil {
			return nil, fmt.Errorf("%s: %w", name, err)
		}
		pv := &ProgramVerdicts{
			Program:    name,
			Report:     res.Explain(name),
			Stats:      res.Heap.AnalysisStats(),
			AnalysisNS: time.Since(start).Nanoseconds(),
		}
		pv.count()
		m.Programs = append(m.Programs, pv)
		m.Sites += pv.Sites
		m.Elided += pv.Elided
		m.Grants += pv.Grants
	}
	return m, nil
}

func (pv *ProgramVerdicts) count() {
	for _, d := range pv.Report.Sites {
		if d.Dead {
			continue
		}
		pv.Sites++
		if d.CycleCheck.Elided {
			pv.Elided++
		}
		if d.RetCycleCheck != nil && d.RetCycleCheck.Elided {
			pv.Elided++
		}
		for _, a := range d.Args {
			if a.Reuse.Applied {
				pv.Grants++
			}
		}
		if d.Ret != nil && d.Ret.Reuse.Applied {
			pv.Grants++
		}
	}
}

// Format renders the golden table. Every piece of it is deterministic:
// sites are name-sorted by Explain, node numbering is fixed by the
// analysis's ordered iteration, and no timings appear.
func (m *VerdictMatrix) Format() string {
	var b strings.Builder
	b.WriteString("# cormi verdict matrix — one line per remote call site\n")
	fmt.Fprintf(&b, "# compiled with context-sensitive=%v strong-updates=%v\n",
		m.heapOpts().ContextSensitive, m.heapOpts().StrongUpdates)
	for _, pv := range m.Programs {
		for _, d := range pv.Report.Sites {
			if d.Dead {
				fmt.Fprintf(&b, "%s %s -> %s | dead\n", pv.Program, d.Site, d.Callee)
				continue
			}
			fmt.Fprintf(&b, "%s %s -> %s | args:%s ret:%s | %s | ret %s\n",
				pv.Program, d.Site, d.Callee,
				cycleVerdict(d.CycleCheck), retCycleVerdict(d.RetCycleCheck),
				argVerdicts(d.Args), retVerdict(d.Ret))
		}
		fmt.Fprintf(&b, "%s :: sites=%d elided=%d grants=%d contexts=%d nodes=%d peak-pts=%d strong-kills=%d iterations=%d\n",
			pv.Program, pv.Sites, pv.Elided, pv.Grants,
			pv.Stats.Contexts, pv.Stats.Nodes, pv.Stats.PeakPointsTo,
			pv.Stats.StrongKills, pv.Stats.Iterations)
	}
	fmt.Fprintf(&b, "TOTAL sites=%d elided=%d grants=%d\n", m.Sites, m.Elided, m.Grants)
	return b.String()
}

// FormatCost renders the per-program analysis cost (wall time included
// — for humans, not for the golden).
func (m *VerdictMatrix) FormatCost() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-22s %10s %9s %7s %9s %12s %11s\n",
		"program", "analysis", "contexts", "nodes", "peak-pts", "strong-kills", "iterations")
	for _, pv := range m.Programs {
		fmt.Fprintf(&b, "%-22s %10s %9d %7d %9d %12d %11d\n",
			pv.Program, time.Duration(pv.AnalysisNS).Round(time.Microsecond),
			pv.Stats.Contexts, pv.Stats.Nodes, pv.Stats.PeakPointsTo,
			pv.Stats.StrongKills, pv.Stats.Iterations)
	}
	return b.String()
}

func (m *VerdictMatrix) heapOpts() heap.Options {
	if m.Opts.HeapOpts != nil {
		return *m.Opts.HeapOpts
	}
	return heap.DefaultOptions()
}

func cycleVerdict(c core.CycleDecision) string {
	if c.Elided {
		if c.LinearRefined {
			return "ELIDED(linear)"
		}
		return "ELIDED"
	}
	if c.Witness != nil {
		return fmt.Sprintf("KEPT(%s@%d)", c.Witness.Kind, c.Witness.RepeatedAlloc)
	}
	return "KEPT"
}

func retCycleVerdict(c *core.CycleDecision) string {
	if c == nil {
		return "-"
	}
	return cycleVerdict(*c)
}

func argVerdicts(args []core.ValueDecision) string {
	if len(args) == 0 {
		return "no args"
	}
	parts := make([]string, len(args))
	for i, a := range args {
		parts[i] = fmt.Sprintf("a%d:%s", a.Index, valueVerdict(a))
	}
	return strings.Join(parts, " ")
}

func retVerdict(v *core.ValueDecision) string {
	if v == nil {
		return "-"
	}
	return valueVerdict(*v)
}

func valueVerdict(v core.ValueDecision) string {
	s := v.Kind + "/" + v.PlanShape
	if v.PlanShape == "primitive" {
		return s
	}
	if v.Reuse.Applied {
		return s + "/reuse=APPLIED"
	}
	return s + "/reuse=DENIED(" + v.Reuse.DeniedRule + ")"
}
