package harness

import (
	"os"
	"path/filepath"
	"testing"

	"cormi/internal/core"
	"cormi/internal/heap"
)

const corpusDir = "../../examples/minijp"

func buildMatrix(t *testing.T, opts core.Options) *VerdictMatrix {
	t.Helper()
	m, err := BuildVerdictMatrix(corpusDir, opts)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func insensitive() core.Options {
	o := heap.InsensitiveOptions()
	return core.Options{HeapOpts: &o}
}

// checkGolden diffs got against the checked-in golden file;
// UPDATE_GOLDEN=1 rewrites it instead (the reviewed-update workflow).
func checkGolden(t *testing.T, name, got string) {
	t.Helper()
	path := filepath.Join(corpusDir, name)
	if os.Getenv("UPDATE_GOLDEN") != "" {
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("no golden %s (run with UPDATE_GOLDEN=1 to create): %v", name, err)
	}
	if string(want) != got {
		t.Errorf("verdict matrix drifted from %s.\n"+
			"A precision REGRESSION must be fixed; an intended improvement needs a reviewed\n"+
			"golden update: UPDATE_GOLDEN=1 go test ./internal/harness -run TestVerdictMatrix\n"+
			"--- got ---\n%s\n--- want ---\n%s", name, got, string(want))
	}
}

func TestVerdictMatrixGolden(t *testing.T) {
	checkGolden(t, "VERDICTS.golden", buildMatrix(t, core.Options{}).Format())
}

func TestVerdictMatrixBaselineGolden(t *testing.T) {
	checkGolden(t, "VERDICTS_BASELINE.golden", buildMatrix(t, insensitive()).Format())
}

// TestPrecisionGain is the tentpole's acceptance criterion, checked
// in-process rather than against the goldens so it cannot be satisfied
// by editing text files: on the corpus, the context-sensitive analysis
// with strong updates must prove strictly more call sites acyclic AND
// grant strictly more buffer reuses than the insensitive baseline.
func TestPrecisionGain(t *testing.T) {
	sharp := buildMatrix(t, core.Options{})
	base := buildMatrix(t, insensitive())
	if sharp.Sites != base.Sites {
		t.Fatalf("site counts differ: sharp=%d base=%d (precision must not change the site list)",
			sharp.Sites, base.Sites)
	}
	if sharp.Elided <= base.Elided {
		t.Errorf("elided cycle checks: sharp=%d base=%d, want strictly more", sharp.Elided, base.Elided)
	}
	if sharp.Grants <= base.Grants {
		t.Errorf("reuse grants: sharp=%d base=%d, want strictly more", sharp.Grants, base.Grants)
	}
}

// TestVerdictMatrixDeterministic pins the witness-selection and
// node-numbering ordering work: two independent end-to-end runs must
// render byte-identical matrices.
func TestVerdictMatrixDeterministic(t *testing.T) {
	a := buildMatrix(t, core.Options{}).Format()
	b := buildMatrix(t, core.Options{}).Format()
	if a != b {
		t.Errorf("matrix differs between runs:\n--- run 1 ---\n%s\n--- run 2 ---\n%s", a, b)
	}
}

// TestContextBudgetBoundsBlowup asserts the bounded-context rules on
// the corpus: the recursive entry must collapse to the single merged
// context, and shrinking the budget below a helper's fan-in must do
// the same — context count, and with it analysis size, is bounded by
// the budget regardless of call-graph shape.
func TestContextBudgetBoundsBlowup(t *testing.T) {
	sharp := buildMatrix(t, core.Options{})
	for _, pv := range sharp.Programs {
		if pv.Program != "recursive.jp" {
			continue
		}
		if pv.Stats.Contexts != 1 {
			t.Errorf("recursive.jp: %d contexts, want 1 (recursion must fall back to the merged summary)",
				pv.Stats.Contexts)
		}
	}
	tiny := heap.DefaultOptions()
	tiny.ContextBudget = 1
	capped := buildMatrix(t, core.Options{HeapOpts: &tiny})
	for i, pv := range capped.Programs {
		if pv.Stats.Contexts > 2 {
			t.Errorf("%s: %d contexts under budget 1, want <= 2", pv.Program, pv.Stats.Contexts)
		}
		if pv.Stats.Nodes > sharp.Programs[i].Stats.Nodes {
			t.Errorf("%s: budget 1 grew the heap graph (%d > %d nodes)",
				pv.Program, pv.Stats.Nodes, sharp.Programs[i].Stats.Nodes)
		}
	}
}
