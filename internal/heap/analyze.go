package heap

import (
	"cormi/internal/ir"
	"cormi/internal/lang"
)

// maxIterations bounds the fixpoint loop; the (logical, physical)
// tuple memoization guarantees termination long before this, so hitting
// the bound indicates a bug rather than a big program.
const maxIterations = 10000

// Analyze runs the heap analysis to fixpoint over the whole program.
func Analyze(prog *ir.Program) *Analysis {
	a := &Analysis{
		Prog:       prog,
		pts:        make(map[*ir.Value]NodeSet),
		globals:    make(map[*lang.FieldDecl]NodeSet),
		allocNode:  make(map[*ir.Instr]NodeID),
		cloneMemo:  make(map[cloneKey]NodeID),
		clonePairs: make(map[clonePair]NodeID),
	}
	for {
		a.changed = false
		for _, f := range prog.Funcs {
			for _, b := range f.Blocks {
				for _, in := range b.Instrs {
					a.transfer(in)
				}
			}
		}
		a.mirrorCloneEdges()
		a.Iterations++
		if !a.changed {
			return a
		}
		if a.Iterations >= maxIterations {
			panic("heap: fixpoint did not terminate (tuple memoization broken)")
		}
	}
}

func (a *Analysis) set(v *ir.Value) NodeSet {
	s, ok := a.pts[v]
	if !ok {
		s = NodeSet{}
		a.pts[v] = s
	}
	return s
}

func (a *Analysis) fieldSet(n NodeID, key string) NodeSet {
	m := a.fields[n]
	s, ok := m[key]
	if !ok {
		s = NodeSet{}
		m[key] = s
	}
	return s
}

func (a *Analysis) globalSet(fd *lang.FieldDecl) NodeSet {
	s, ok := a.globals[fd]
	if !ok {
		s = NodeSet{}
		a.globals[fd] = s
	}
	return s
}

func (a *Analysis) note(changed bool) {
	if changed {
		a.changed = true
	}
}

// newNode appends a heap node.
func (a *Analysis) newNode(physical int, t lang.Type, site *ir.Instr, cloneOf NodeID, ctx string) *Node {
	n := &Node{
		ID:       NodeID(len(a.Nodes)),
		Logical:  len(a.Nodes),
		Physical: physical,
		Type:     t,
		Site:     site,
		CloneOf:  cloneOf,
		CloneCtx: ctx,
	}
	a.Nodes = append(a.Nodes, n)
	a.fields = append(a.fields, map[string]NodeSet{})
	a.changed = true
	return n
}

// nodeForAlloc returns (creating on first encounter) the original node
// of an allocation instruction.
func (a *Analysis) nodeForAlloc(in *ir.Instr) NodeID {
	if id, ok := a.allocNode[in]; ok {
		return id
	}
	n := a.newNode(in.AllocID, in.Dst.Type, in, -1, "")
	a.allocNode[in] = n.ID
	return n.ID
}

// cloneOf returns the clone of node id under ctx, creating it when this
// physical number first crosses the boundary (the §2 tuple rule).
func (a *Analysis) cloneOf(ctx string, id NodeID) NodeID {
	orig := a.Nodes[id]
	key := cloneKey{ctx: ctx, physical: orig.Physical}
	c, ok := a.cloneMemo[key]
	if !ok {
		n := a.newNode(orig.Physical, orig.Type, orig.Site, id, ctx)
		a.cloneMemo[key] = n.ID
		c = n.ID
	}
	pk := clonePair{ctx: ctx, orig: id}
	if _, seen := a.clonePairs[pk]; !seen {
		a.clonePairs[pk] = c
		a.changed = true
	}
	return c
}

// mirrorCloneEdges keeps clone subgraphs structurally parallel to their
// origins: whenever orig.f may point to m, clone.f may point to
// cloneOf(ctx, m).
func (a *Analysis) mirrorCloneEdges() {
	// Iterate over a snapshot: cloning children appends new pairs,
	// which the next fixpoint pass picks up.
	pairs := make([]clonePair, 0, len(a.clonePairs))
	for pk := range a.clonePairs {
		pairs = append(pairs, pk)
	}
	for _, pk := range pairs {
		c := a.clonePairs[pk]
		for fkey, set := range a.fields[pk.orig] {
			dst := a.fieldSet(c, fkey)
			for m := range set {
				a.note(dst.Add(a.cloneOf(pk.ctx, m)))
			}
		}
	}
}

// transfer applies one instruction's constraints.
func (a *Analysis) transfer(in *ir.Instr) {
	switch in.Op {
	case ir.OpNew, ir.OpNewArray:
		a.note(a.set(in.Dst).Add(a.nodeForAlloc(in)))

	case ir.OpPhi, ir.OpCopy:
		if in.Dst == nil || !lang.IsRef(in.Dst.Type) {
			return
		}
		dst := a.set(in.Dst)
		for _, arg := range in.Args {
			a.note(dst.AddAll(a.pts[arg]))
		}

	case ir.OpLoad:
		if !lang.IsRef(in.Dst.Type) {
			return
		}
		dst := a.set(in.Dst)
		key := FieldKey(in.Field)
		for n := range a.pts[in.Args[0]] {
			a.note(dst.AddAll(a.fields[n][key]))
		}

	case ir.OpStore:
		if !lang.IsRef(in.Field.Type) {
			return
		}
		key := FieldKey(in.Field)
		src := a.pts[in.Args[1]]
		for n := range a.pts[in.Args[0]] {
			a.note(a.fieldSet(n, key).AddAll(src))
		}

	case ir.OpLoadIdx:
		if !lang.IsRef(in.Dst.Type) {
			return
		}
		dst := a.set(in.Dst)
		for n := range a.pts[in.Args[0]] {
			a.note(dst.AddAll(a.fields[n][ElemKey]))
		}

	case ir.OpStoreIdx:
		if !lang.IsRef(in.Args[2].Type) {
			return
		}
		src := a.pts[in.Args[2]]
		for n := range a.pts[in.Args[0]] {
			a.note(a.fieldSet(n, ElemKey).AddAll(src))
		}

	case ir.OpLoadStatic:
		if !lang.IsRef(in.Field.Type) {
			return
		}
		a.note(a.set(in.Dst).AddAll(a.globals[in.Field]))

	case ir.OpStoreStatic:
		if !lang.IsRef(in.Field.Type) {
			return
		}
		a.note(a.globalSet(in.Field).AddAll(a.pts[in.Args[0]]))

	case ir.OpCall:
		a.transferCall(in, false)

	case ir.OpRemoteCall:
		a.transferCall(in, true)
	}
}

// transferCall binds arguments to parameters and returns to the call
// destination. Remote calls clone the argument and return graphs,
// reflecting RMI's by-copy semantics; the receiver (Args[0] / `this`)
// is a remote reference and is NOT copied.
func (a *Analysis) transferCall(in *ir.Instr, remote bool) {
	callee, ok := a.Prog.FuncOf[in.Callee]
	if !ok {
		return // bodiless method: no summary
	}
	argCtx := ArgCtx(in.Callee)
	for i, arg := range in.Args {
		if i >= len(callee.Params) {
			break
		}
		param := callee.Params[i]
		if !lang.IsRef(param.Type) || !lang.IsRef(arg.Type) {
			continue
		}
		src := a.pts[arg]
		if len(src) == 0 {
			continue
		}
		dst := a.set(param)
		receiver := i == 0 && !in.Callee.Static
		if !remote || receiver {
			a.note(dst.AddAll(src))
			continue
		}
		for n := range src {
			a.note(dst.Add(a.cloneOf(argCtx, n)))
		}
	}
	if in.Dst == nil || !lang.IsRef(in.Dst.Type) {
		return
	}
	retSet := NodeSet{}
	for _, rv := range ir.ReturnValues(callee) {
		retSet.AddAll(a.pts[rv])
	}
	if len(retSet) == 0 {
		return
	}
	dst := a.set(in.Dst)
	if !remote {
		a.note(dst.AddAll(retSet))
		return
	}
	retCtx := RetCtx(in.SiteID)
	for n := range retSet {
		a.note(dst.Add(a.cloneOf(retCtx, n)))
	}
}
