package heap

import (
	"sort"
	"time"

	"cormi/internal/heap/sched"
	"cormi/internal/ir"
	"cormi/internal/lang"
)

// maxIterations bounds the fixpoint loop; the (logical, physical)
// tuple memoization guarantees termination long before this, so hitting
// the bound indicates a bug rather than a big program.
const maxIterations = 10000

// Analyze runs the heap analysis to fixpoint over the whole program
// with the default precision (context-sensitive, strong updates).
func Analyze(prog *ir.Program) *Analysis {
	return AnalyzeOpts(prog, DefaultOptions())
}

// AnalyzeOpts is the scalable analysis driver (DESIGN.md §16). It
// partitions the program into independent analysis regions (weakly
// connected components of the call + shared-static graph, computed by
// internal/heap/sched), solves each region to fixpoint — concurrently
// across Options.Workers, loading regions whose content key hits the
// summary cache instead of re-solving them — and merges the parts
// into one program-wide Analysis.
//
// The merge is what makes parallelism and caching invisible: regions
// share no analysis state (facts flow only along call edges and
// shared statics, both region-internal by construction), each region
// is solved by the same deterministic sequential engine, and the
// merged node/context numbering depends only on the deterministic
// region order. A run at any worker count, cold or warm, is therefore
// bit-identical to the sequential cold run — the invariant `make
// verify-analysis` enforces.
func AnalyzeOpts(prog *ir.Program, opts Options) *Analysis {
	start := time.Now()
	plan := sched.BuildPlan(prog)
	nc := len(plan.Components)
	parts := make([]*Analysis, nc)
	loaded := make([]bool, nc)

	var cache *sched.Cache
	var hashes *sched.Hashes
	if opts.CacheDir != "" {
		cache = sched.Open(opts.CacheDir)
		hashes = plan.Hashes(opts.fingerprint())
	}
	workers := opts.workers()
	sched.Run(nc, workers, func(ci int) {
		if cache != nil {
			if payload, ok := cache.Load(hashes.Component[ci]); ok {
				if part := decodeComponent(prog, plan, ci, opts, payload); part != nil {
					parts[ci] = part
					loaded[ci] = true
					return
				}
			}
		}
		part := solveComponent(prog, plan, ci, opts)
		parts[ci] = part
		if cache != nil {
			cache.Store(hashes.Component[ci], encodeComponent(plan, ci, part))
		}
	})
	if cache != nil {
		cache.WriteManifest(plan, hashes)
	}

	a := mergeParts(prog, opts, parts)
	a.Cost = CostStats{
		Functions:  len(prog.Funcs),
		SCCs:       len(plan.SCCs),
		Components: nc,
		Waves:      plan.Waves,
		Workers:    workers,
	}
	for ci, comp := range plan.Components {
		if loaded[ci] {
			a.Cost.CacheHits++
			a.Cost.FuncsLoaded += len(comp.Funcs)
		} else {
			if cache != nil {
				a.Cost.CacheMisses++
			}
			a.Cost.FuncsAnalyzed += len(comp.Funcs)
		}
	}
	a.Cost.fillFromAnalysis(a)
	a.Cost.WallNS = time.Since(start).Nanoseconds()
	return a
}

// solveComponent solves one region with the sequential engine.
//
// With strong updates enabled the region runs in two passes: the
// first pass is a standard weak-update fixpoint; its final (sound,
// over-approximate) points-to sets justify a kill set of dead stores;
// the second pass re-runs the full fixpoint with killed stores
// skipped. The second pass only ever removes constraints, so its sets
// are subsets of the first pass's — every singleton that justified a
// kill stays a singleton (or shrinks to empty), keeping the kills
// justified against the final result.
func solveComponent(prog *ir.Program, plan *sched.Plan, ci int, opts Options) *Analysis {
	comp := plan.Components[ci]
	funcs := make([]*ir.Func, len(comp.Order))
	for i, fi := range comp.Order {
		funcs[i] = plan.Funcs[fi]
	}
	recursive := map[*ir.Func]bool{}
	for _, fi := range comp.Funcs {
		if plan.Recursive[fi] {
			recursive[plan.Funcs[fi]] = true
		}
	}
	a := runAnalysis(prog, opts, funcs, recursive, nil)
	if !opts.StrongUpdates {
		return a
	}
	kills := a.computeKills()
	if len(kills) == 0 {
		return a
	}
	b := runAnalysis(prog, opts, funcs, recursive, kills)
	b.StrongKills = len(kills)
	return b
}

// runAnalysis is one complete fixpoint run over one function subset:
// context prepass, then chaotic iteration over every (function, live
// context, instruction) triple until nothing changes. funcs is the
// region's bottom-up wave order — callees are visited before callers
// within each pass, so summaries usually stabilize in fewer passes
// than the old whole-program source order needed, and the order is a
// fixed input, keeping node discovery (and so all numbering)
// deterministic.
func runAnalysis(prog *ir.Program, opts Options, funcs []*ir.Func, recursive map[*ir.Func]bool, killed map[instrCtx]bool) *Analysis {
	a := &Analysis{
		Prog:       prog,
		Opts:       opts,
		funcs:      funcs,
		recursive:  recursive,
		pts:        make(map[valCtx]NodeSet),
		ptsAll:     make(map[*ir.Value]NodeSet),
		globals:    make(map[*lang.FieldDecl]NodeSet),
		allocNode:  make(map[allocKey]NodeID),
		cloneMemo:  make(map[cloneKey]NodeID),
		clonePairs: make(map[clonePair]NodeID),
		killed:     killed,
	}
	a.buildContexts()
	for {
		a.changed = false
		for _, f := range a.funcs {
			for _, c := range a.ctxsOf[f] {
				for _, b := range f.Blocks {
					for _, in := range b.Instrs {
						a.transfer(in, c)
					}
				}
			}
		}
		a.mirrorCloneEdges()
		a.Iterations++
		if !a.changed {
			return a
		}
		if a.Iterations >= maxIterations {
			panic("heap: fixpoint did not terminate (tuple memoization broken)")
		}
	}
}

// set returns (creating) the points-to set of v in context c, and the
// merged view that backs PointsTo.
func (a *Analysis) set(v *ir.Value, c Ctx) NodeSet {
	k := valCtx{v, c}
	s, ok := a.pts[k]
	if !ok {
		s = NodeSet{}
		a.pts[k] = s
	}
	return s
}

func (a *Analysis) allSet(v *ir.Value) NodeSet {
	s, ok := a.ptsAll[v]
	if !ok {
		s = NodeSet{}
		a.ptsAll[v] = s
	}
	return s
}

// addNode inserts id into v's context-c set, mirroring into the merged
// view and recording the change.
func (a *Analysis) addNode(v *ir.Value, c Ctx, id NodeID) {
	if a.set(v, c).Add(id) {
		a.changed = true
		a.allSet(v).Add(id)
	}
}

// addSet unions src into v's context-c set (and the merged view).
func (a *Analysis) addSet(v *ir.Value, c Ctx, src NodeSet) {
	if len(src) == 0 {
		return
	}
	dst := a.set(v, c)
	var all NodeSet
	for id := range src {
		if dst.Add(id) {
			a.changed = true
			if all == nil {
				all = a.allSet(v)
			}
			all.Add(id)
		}
	}
}

func (a *Analysis) fieldSet(n NodeID, key string) NodeSet {
	m := a.fields[n]
	s, ok := m[key]
	if !ok {
		s = NodeSet{}
		m[key] = s
	}
	return s
}

func (a *Analysis) globalSet(fd *lang.FieldDecl) NodeSet {
	s, ok := a.globals[fd]
	if !ok {
		s = NodeSet{}
		a.globals[fd] = s
	}
	return s
}

func (a *Analysis) note(changed bool) {
	if changed {
		a.changed = true
	}
}

// newNode appends a heap node.
func (a *Analysis) newNode(physical int, t lang.Type, site *ir.Instr, cloneOf NodeID, cloneCtx string, c Ctx, summary bool) *Node {
	n := &Node{
		ID:       NodeID(len(a.Nodes)),
		Logical:  len(a.Nodes),
		Physical: physical,
		Type:     t,
		Site:     site,
		Ctx:      c,
		Summary:  summary,
		CloneOf:  cloneOf,
		CloneCtx: cloneCtx,
	}
	a.Nodes = append(a.Nodes, n)
	a.fields = append(a.fields, map[string]NodeSet{})
	a.changed = true
	return n
}

// nodeForAlloc returns (creating on first encounter) the node of an
// allocation instruction in one analysis context. Merged-context nodes
// of called functions are summaries: the merged context stands for any
// number of unrelated activations, so strong updates must not fire on
// them.
func (a *Analysis) nodeForAlloc(in *ir.Instr, c Ctx) NodeID {
	k := allocKey{in, c}
	if id, ok := a.allocNode[k]; ok {
		return id
	}
	f := in.Block.Func
	summary := c == MergedCtx && a.hasCaller[f]
	n := a.newNode(in.AllocID, in.Dst.Type, in, -1, "", c, summary)
	a.allocNode[k] = n.ID
	return n.ID
}

// cloneOf returns the clone of node id under ctx, creating it when this
// physical number first crosses the boundary (the §2 tuple rule).
// Clones are always summaries: the memoization deliberately conflates
// every object with the same physical number that crosses the same
// boundary.
func (a *Analysis) cloneOf(ctx string, id NodeID) NodeID {
	orig := a.Nodes[id]
	key := cloneKey{ctx: ctx, physical: orig.Physical}
	c, ok := a.cloneMemo[key]
	if !ok {
		n := a.newNode(orig.Physical, orig.Type, orig.Site, id, ctx, MergedCtx, true)
		a.cloneMemo[key] = n.ID
		c = n.ID
	}
	pk := clonePair{ctx: ctx, orig: id}
	if _, seen := a.clonePairs[pk]; !seen {
		a.clonePairs[pk] = c
		a.changed = true
	}
	return c
}

// mirrorCloneEdges keeps clone subgraphs structurally parallel to their
// origins: whenever orig.f may point to m, clone.f may point to
// cloneOf(ctx, m).
func (a *Analysis) mirrorCloneEdges() {
	// Iterate over a sorted snapshot: cloning children appends new
	// pairs (picked up by the next fixpoint pass), and the ordering
	// makes clone node IDs — and so every witness — deterministic.
	pairs := make([]clonePair, 0, len(a.clonePairs))
	for pk := range a.clonePairs {
		pairs = append(pairs, pk)
	}
	sort.Slice(pairs, func(i, j int) bool {
		if pairs[i].ctx != pairs[j].ctx {
			return pairs[i].ctx < pairs[j].ctx
		}
		return pairs[i].orig < pairs[j].orig
	})
	for _, pk := range pairs {
		c := a.clonePairs[pk]
		fkeys := make([]string, 0, len(a.fields[pk.orig]))
		for fkey := range a.fields[pk.orig] {
			fkeys = append(fkeys, fkey)
		}
		sort.Strings(fkeys)
		for _, fkey := range fkeys {
			dst := a.fieldSet(c, fkey)
			for _, m := range a.fields[pk.orig][fkey].Sorted() {
				a.note(dst.Add(a.cloneOf(pk.ctx, m)))
			}
		}
	}
}

// transfer applies one instruction's constraints under one analysis
// context of its enclosing function.
func (a *Analysis) transfer(in *ir.Instr, c Ctx) {
	switch in.Op {
	case ir.OpNew, ir.OpNewArray:
		a.addNode(in.Dst, c, a.nodeForAlloc(in, c))

	case ir.OpPhi, ir.OpCopy:
		if in.Dst == nil || !lang.IsRef(in.Dst.Type) {
			return
		}
		for _, arg := range in.Args {
			a.addSet(in.Dst, c, a.pts[valCtx{arg, c}])
		}

	case ir.OpLoad:
		if !lang.IsRef(in.Dst.Type) {
			return
		}
		key := FieldKey(in.Field)
		for n := range a.pts[valCtx{in.Args[0], c}] {
			a.addSet(in.Dst, c, a.fields[n][key])
		}

	case ir.OpStore:
		if !lang.IsRef(in.Field.Type) {
			return
		}
		if a.killed[instrCtx{in, c}] {
			return // strongly updated by a later store in this block
		}
		key := FieldKey(in.Field)
		src := a.pts[valCtx{in.Args[1], c}]
		if len(src) == 0 {
			return
		}
		for n := range a.pts[valCtx{in.Args[0], c}] {
			a.note(a.fieldSet(n, key).AddAll(src))
		}

	case ir.OpLoadIdx:
		if !lang.IsRef(in.Dst.Type) {
			return
		}
		for n := range a.pts[valCtx{in.Args[0], c}] {
			a.addSet(in.Dst, c, a.fields[n][ElemKey])
		}

	case ir.OpStoreIdx:
		if !lang.IsRef(in.Args[2].Type) {
			return
		}
		src := a.pts[valCtx{in.Args[2], c}]
		if len(src) == 0 {
			return
		}
		for n := range a.pts[valCtx{in.Args[0], c}] {
			a.note(a.fieldSet(n, ElemKey).AddAll(src))
		}

	case ir.OpLoadStatic:
		if !lang.IsRef(in.Field.Type) {
			return
		}
		a.addSet(in.Dst, c, a.globals[in.Field])

	case ir.OpStoreStatic:
		if !lang.IsRef(in.Field.Type) {
			return
		}
		a.note(a.globalSet(in.Field).AddAll(a.pts[valCtx{in.Args[0], c}]))

	case ir.OpCall:
		a.transferCall(in, c, false)

	case ir.OpRemoteCall:
		a.transferCall(in, c, true)
	}
}

// transferCall binds arguments to parameters and returns to the call
// destination. Direct calls bind into the context the prepass assigned
// to this call site (a dedicated per-site summary, or MergedCtx for
// recursion/budget overflow); remote calls bind into the callee's
// merged context and clone the argument and return graphs, reflecting
// RMI's by-copy semantics. The receiver (Args[0] / `this`) of a remote
// call is a remote reference and is NOT copied.
func (a *Analysis) transferCall(in *ir.Instr, c Ctx, remote bool) {
	callee, ok := a.Prog.FuncOf[in.Callee]
	if !ok {
		return // bodiless method: no summary
	}
	calleeCtx := MergedCtx
	if !remote {
		calleeCtx = a.ctxOfCall[in]
	}
	argCtx := ArgCtx(in.Callee)
	for i, arg := range in.Args {
		if i >= len(callee.Params) {
			break
		}
		param := callee.Params[i]
		if !lang.IsRef(param.Type) || !lang.IsRef(arg.Type) {
			continue
		}
		src := a.pts[valCtx{arg, c}]
		if len(src) == 0 {
			continue
		}
		receiver := i == 0 && !in.Callee.Static
		if !remote || receiver {
			a.addSet(param, calleeCtx, src)
			continue
		}
		for _, n := range src.Sorted() {
			a.addNode(param, calleeCtx, a.cloneOf(argCtx, n))
		}
	}
	if in.Dst == nil || !lang.IsRef(in.Dst.Type) {
		return
	}
	retSet := NodeSet{}
	for _, rv := range ir.ReturnValues(callee) {
		retSet.AddAll(a.pts[valCtx{rv, calleeCtx}])
	}
	if len(retSet) == 0 {
		return
	}
	if !remote {
		a.addSet(in.Dst, c, retSet)
		return
	}
	retCtx := RetCtx(in.SiteID)
	for _, n := range retSet.Sorted() {
		a.addNode(in.Dst, c, a.cloneOf(retCtx, n))
	}
}
