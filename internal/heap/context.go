package heap

import (
	"cormi/internal/ir"
)

// buildContexts is the static context prepass of the 1-call-site-
// sensitive analysis. It decides, once and deterministically, which
// analysis context every call instruction binds its callee in:
//
//   - each direct call of a function with a body gets a dedicated
//     context (a fresh clone of the callee's points-to summary), so
//     the callee's facts are not merged across unrelated callers;
//   - calls to recursive functions (any function on a direct-call
//     cycle) bind the merged context MergedCtx — context cloning
//     cannot separate the unboundedly many activations anyway;
//   - calls to functions with more direct call sites than
//     Options.ContextBudget bind MergedCtx too, bounding the number of
//     contexts (and hence analysis cost) linearly in the budget;
//   - remote calls always bind MergedCtx: the RMI boundary already
//     separates call sites through per-site clone contexts (ArgCtx /
//     RetCtx), so a second separation would only duplicate nodes.
//
// Contexts are numbered in program order (function, block,
// instruction), which makes node IDs and therefore every downstream
// witness byte-stable across runs.
//
// A function's merged context is only analyzed when something can
// actually bind into it: the function has no in-program callers (an
// entry point such as main), it is invoked remotely, or some direct
// call falls back to MergedCtx. Skipping dead merged contexts is not
// just a cost saving — it prevents phantom parameter-less summaries
// from leaking spurious nodes into the merged PointsTo view.
func (a *Analysis) buildContexts() {
	prog := a.Prog
	a.ctxsOf = map[*ir.Func][]Ctx{}
	a.ctxOfCall = map[*ir.Instr]Ctx{}
	a.recursive = map[*ir.Func]bool{}
	a.hasCaller = map[*ir.Func]bool{}
	a.ctxSite = []*ir.Instr{nil} // MergedCtx has no call site

	directSites := map[*ir.Func]int{}
	remoteTarget := map[*ir.Func]bool{}
	edges := map[*ir.Func][]*ir.Func{}
	for _, f := range prog.Funcs {
		for _, b := range f.Blocks {
			for _, in := range b.Instrs {
				if in.Op != ir.OpCall && in.Op != ir.OpRemoteCall {
					continue
				}
				callee, ok := prog.FuncOf[in.Callee]
				if !ok {
					continue // bodiless method: no summary to specialize
				}
				a.hasCaller[callee] = true
				if in.Op == ir.OpRemoteCall {
					remoteTarget[callee] = true
					continue
				}
				directSites[callee]++
				edges[f] = append(edges[f], callee)
			}
		}
	}
	a.markRecursive(edges)

	budget := a.Opts.budget()
	mergedBound := map[*ir.Func]bool{}
	dedicated := map[*ir.Func][]Ctx{}
	for _, f := range prog.Funcs {
		for _, b := range f.Blocks {
			for _, in := range b.Instrs {
				if in.Op != ir.OpCall {
					continue
				}
				callee, ok := prog.FuncOf[in.Callee]
				if !ok {
					continue
				}
				if !a.Opts.ContextSensitive || a.recursive[callee] || directSites[callee] > budget {
					a.ctxOfCall[in] = MergedCtx
					mergedBound[callee] = true
					continue
				}
				c := Ctx(len(a.ctxSite))
				a.ctxSite = append(a.ctxSite, in)
				a.ctxOfCall[in] = c
				dedicated[callee] = append(dedicated[callee], c)
			}
		}
	}

	for _, f := range prog.Funcs {
		var ctxs []Ctx
		if !a.hasCaller[f] || remoteTarget[f] || mergedBound[f] {
			ctxs = append(ctxs, MergedCtx)
		}
		ctxs = append(ctxs, dedicated[f]...)
		a.ctxsOf[f] = ctxs
	}
}

// markRecursive flags every function on a direct-call cycle (Tarjan
// SCCs of size > 1, plus direct self-calls).
func (a *Analysis) markRecursive(edges map[*ir.Func][]*ir.Func) {
	index := map[*ir.Func]int{}
	low := map[*ir.Func]int{}
	onStack := map[*ir.Func]bool{}
	var stack []*ir.Func
	next := 0
	var strong func(f *ir.Func)
	strong = func(f *ir.Func) {
		index[f] = next
		low[f] = next
		next++
		stack = append(stack, f)
		onStack[f] = true
		for _, g := range edges[f] {
			if _, seen := index[g]; !seen {
				strong(g)
				if low[g] < low[f] {
					low[f] = low[g]
				}
			} else if onStack[g] && index[g] < low[f] {
				low[f] = index[g]
			}
		}
		if low[f] == index[f] {
			var scc []*ir.Func
			for {
				g := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[g] = false
				scc = append(scc, g)
				if g == f {
					break
				}
			}
			if len(scc) > 1 {
				for _, g := range scc {
					a.recursive[g] = true
				}
			}
		}
	}
	for _, f := range a.Prog.Funcs {
		if _, seen := index[f]; !seen {
			strong(f)
		}
	}
	for f, gs := range edges {
		for _, g := range gs {
			if g == f {
				a.recursive[f] = true
			}
		}
	}
}
