package heap

import (
	"cormi/internal/ir"
)

// buildContexts is the static context prepass of the 1-call-site-
// sensitive analysis. It decides, once and deterministically, which
// analysis context every call instruction binds its callee in:
//
//   - each direct call of a function with a body gets a dedicated
//     context (a fresh clone of the callee's points-to summary), so
//     the callee's facts are not merged across unrelated callers;
//   - calls to recursive functions (any function on a direct-call
//     cycle) bind the merged context MergedCtx — context cloning
//     cannot separate the unboundedly many activations anyway;
//   - calls to functions with more direct call sites than
//     Options.ContextBudget bind MergedCtx too, bounding the number of
//     contexts (and hence analysis cost) linearly in the budget. Each
//     such demotion is COUNTED in BudgetFallbacks: budget exhaustion
//     is a precision cliff and must be observable, not silent;
//   - remote calls always bind MergedCtx: the RMI boundary already
//     separates call sites through per-site clone contexts (ArgCtx /
//     RetCtx), so a second separation would only duplicate nodes.
//
// The prepass runs over a.funcs — one analysis region while solving —
// and contexts are numbered in the region's deterministic function
// order, which makes node IDs and therefore every downstream witness
// byte-stable across runs, worker counts, and cache states. Recursion
// flags come from the scheduler's whole-program plan (a.recursive is
// filled before this runs): a region sees every direct-call cycle it
// participates in, and cycles never span regions, so the per-region
// view equals the whole-program view.
//
// A function's merged context is only analyzed when something can
// actually bind into it: the function has no in-program callers (an
// entry point such as main), it is invoked remotely, or some direct
// call falls back to MergedCtx. Skipping dead merged contexts is not
// just a cost saving — it prevents phantom parameter-less summaries
// from leaking spurious nodes into the merged PointsTo view.
func (a *Analysis) buildContexts() {
	prog := a.Prog
	a.ctxsOf = map[*ir.Func][]Ctx{}
	a.ctxOfCall = map[*ir.Instr]Ctx{}
	a.hasCaller = map[*ir.Func]bool{}
	a.BudgetFallbacks = map[string]int{}
	a.ctxSite = []*ir.Instr{nil} // MergedCtx has no call site
	if a.recursive == nil {
		a.recursive = map[*ir.Func]bool{}
	}

	directSites := map[*ir.Func]int{}
	remoteTarget := map[*ir.Func]bool{}
	for _, f := range a.funcs {
		for _, b := range f.Blocks {
			for _, in := range b.Instrs {
				if in.Op != ir.OpCall && in.Op != ir.OpRemoteCall {
					continue
				}
				callee, ok := prog.FuncOf[in.Callee]
				if !ok {
					continue // bodiless method: no summary to specialize
				}
				a.hasCaller[callee] = true
				if in.Op == ir.OpRemoteCall {
					remoteTarget[callee] = true
					continue
				}
				directSites[callee]++
			}
		}
	}

	budget := a.Opts.budget()
	mergedBound := map[*ir.Func]bool{}
	dedicated := map[*ir.Func][]Ctx{}
	for _, f := range a.funcs {
		for _, b := range f.Blocks {
			for _, in := range b.Instrs {
				if in.Op != ir.OpCall {
					continue
				}
				callee, ok := prog.FuncOf[in.Callee]
				if !ok {
					continue
				}
				if !a.Opts.ContextSensitive || a.recursive[callee] || directSites[callee] > budget {
					a.ctxOfCall[in] = MergedCtx
					mergedBound[callee] = true
					if a.Opts.ContextSensitive && !a.recursive[callee] && directSites[callee] > budget {
						a.BudgetFallbacks[in.Callee.QualifiedName()]++
					}
					continue
				}
				c := Ctx(len(a.ctxSite))
				a.ctxSite = append(a.ctxSite, in)
				a.ctxOfCall[in] = c
				dedicated[callee] = append(dedicated[callee], c)
			}
		}
	}

	for _, f := range a.funcs {
		var ctxs []Ctx
		if !a.hasCaller[f] || remoteTarget[f] || mergedBound[f] {
			ctxs = append(ctxs, MergedCtx)
		}
		ctxs = append(ctxs, dedicated[f]...)
		a.ctxsOf[f] = ctxs
	}
}
