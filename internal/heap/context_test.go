package heap

import (
	"fmt"
	"testing"

	"cormi/internal/ir"
	"cormi/internal/lang"
)

func analyzeOpts(t *testing.T, src string, opts Options) (*Analysis, *ir.Program) {
	t.Helper()
	f, err := lang.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	cp, err := lang.Check(f)
	if err != nil {
		t.Fatalf("check: %v", err)
	}
	p, err := ir.Lower(cp)
	if err != nil {
		t.Fatalf("lower: %v", err)
	}
	return AnalyzeOpts(p, opts), p
}

func funcByName(t *testing.T, p *ir.Program, name string) *ir.Func {
	t.Helper()
	for _, f := range p.Funcs {
		if f.Name == name {
			return f
		}
	}
	t.Fatalf("no function %s", name)
	return nil
}

func remoteSites(p *ir.Program, callee string) []*ir.Instr {
	var out []*ir.Instr
	for _, s := range p.RemoteSites {
		if s != nil && s.Callee.QualifiedName() == callee {
			out = append(out, s)
		}
	}
	return out
}

// sharedHelperSrc is the shared-constructor shape: mk is called with
// two distinct leaves at remote site 1 and with the same leaf twice at
// remote site 2.
const sharedHelperSrc = `
class Leaf { int v; }
class Pair { Leaf l; Leaf r; }
remote class Sink {
	int take(Pair p) { return p.l.v + p.r.v; }
}
class Main {
	static Pair mk(Leaf a, Leaf b) {
		Pair p = new Pair();
		p.l = a;
		p.r = b;
		return p;
	}
	static int main() {
		Sink s = new Sink();
		Leaf x = new Leaf();
		Leaf y = new Leaf();
		Leaf z = new Leaf();
		int u = s.take(Main.mk(x, y));
		int w = s.take(Main.mk(z, z));
		return u + w;
	}
}`

func TestDedicatedContextPerCallSite(t *testing.T) {
	a, p := analyzeOpts(t, sharedHelperSrc, DefaultOptions())
	mk := funcByName(t, p, "Main.mk")
	ctxs := a.Contexts(mk)
	if len(ctxs) != 2 {
		t.Fatalf("mk analyzed in %d contexts %v, want 2 dedicated", len(ctxs), ctxs)
	}
	for _, c := range ctxs {
		if c == MergedCtx {
			t.Fatalf("mk's merged context is live (%v) though every caller has a dedicated context", ctxs)
		}
		if a.CtxCallSite(c) == nil {
			t.Errorf("dedicated context %d has no call site", c)
		}
		// Each per-site summary sees exactly one leaf per parameter.
		for _, param := range mk.Params {
			if got := len(a.PointsToIn(param, c)); got != 1 {
				t.Errorf("ctx %d: param %s points to %d nodes, want 1", c, param.Name, got)
			}
		}
	}
	// The merged view still unions the contexts (API compatibility).
	for _, param := range mk.Params {
		if got := len(a.PointsTo(param)); got != 2 {
			t.Errorf("merged view of param %s has %d nodes, want 2", param.Name, got)
		}
	}
}

func TestSharedHelperSeparatesCycleVerdicts(t *testing.T) {
	a, p := analyzeOpts(t, sharedHelperSrc, DefaultOptions())
	sites := remoteSites(p, "Sink.take")
	if len(sites) != 2 {
		t.Fatalf("got %d Sink.take sites, want 2", len(sites))
	}
	if a.MayCycleFrom(argSets(a, sites[0])) {
		t.Error("site 1 (distinct leaves) flagged: one pessimistic caller poisoned the helper summary")
	}
	w := a.CycleWitnessFrom(argSets(a, sites[1]))
	if w == nil {
		t.Fatal("site 2 (same leaf twice) not flagged")
	}
	if w.Kind != WitnessShared {
		t.Errorf("site 2 witness kind %q, want %q", w.Kind, WitnessShared)
	}

	// The insensitive baseline merges the callers and flags both.
	b, pb := analyzeOpts(t, sharedHelperSrc, InsensitiveOptions())
	for i, s := range remoteSites(pb, "Sink.take") {
		if !b.MayCycleFrom(argSets(b, s)) {
			t.Errorf("baseline: site %d unexpectedly proved acyclic", i+1)
		}
	}
}

func TestRecursiveHelperFallsBackToMerged(t *testing.T) {
	src := `
class Cell { Cell next; }
class Main {
	static Cell build(int n) {
		Cell c = new Cell();
		if (n > 0) { c.next = Main.build(n - 1); }
		return c;
	}
	static Cell ping(int n) { return Main.pong(n); }
	static Cell pong(int n) { return Main.ping(n - 1); }
	static void main() {
		Cell a = Main.build(3);
		Cell b = Main.ping(2);
	}
}`
	a, p := analyzeOpts(t, src, DefaultOptions())
	for _, name := range []string{"Main.build", "Main.ping", "Main.pong"} {
		f := funcByName(t, p, name)
		ctxs := a.Contexts(f)
		if len(ctxs) != 1 || ctxs[0] != MergedCtx {
			t.Errorf("%s (recursive) analyzed in %v, want merged context only", name, ctxs)
		}
	}
	// The merged self-edge is still found (soundness of the fallback).
	build := funcByName(t, p, "Main.build")
	rets := ir.ReturnValues(build)
	if len(rets) == 0 {
		t.Fatal("build has no return values")
	}
	roots := NodeSet{}
	for _, rv := range rets {
		roots.AddAll(a.PointsTo(rv))
	}
	if !a.MayCycleFrom([]NodeSet{roots}) {
		t.Error("recursive list builder not flagged as may-cycle under the merged fallback")
	}
}

func TestContextBudgetOverflowMerges(t *testing.T) {
	// One helper, three call sites: with budget 2 the fan-in exceeds
	// the budget and every site binds the merged summary.
	src := `
class Cell { Cell next; }
class Main {
	static Cell id(Cell c) { return c; }
	static void main() {
		Cell a = Main.id(new Cell());
		Cell b = Main.id(new Cell());
		Cell c = Main.id(new Cell());
	}
}`
	opts := DefaultOptions()
	opts.ContextBudget = 2
	a, p := analyzeOpts(t, src, opts)
	id := funcByName(t, p, "Main.id")
	ctxs := a.Contexts(id)
	if len(ctxs) != 1 || ctxs[0] != MergedCtx {
		t.Fatalf("over-budget helper analyzed in %v, want merged context only", ctxs)
	}
	if got := len(a.PointsTo(id.Params[0])); got != 3 {
		t.Errorf("merged param sees %d nodes, want 3", got)
	}

	// Within budget, each site gets its own context.
	opts.ContextBudget = 3
	a, p = analyzeOpts(t, src, opts)
	id = funcByName(t, p, "Main.id")
	if got := len(a.Contexts(id)); got != 3 {
		t.Errorf("within-budget helper analyzed in %d contexts, want 3", got)
	}
}

func TestDiamondSharingThroughSharedCallee(t *testing.T) {
	// Genuine sharing must survive context separation: both pack calls
	// box the SAME leaf, and the two boxes travel in one message.
	src := `
class Leaf { int v; }
class Box { Leaf d; }
remote class Sink {
	int both(Box a, Box b) { return a.d.v + b.d.v; }
}
class Main {
	static Box pack(Leaf l) {
		Box b = new Box();
		b.d = l;
		return b;
	}
	static int main() {
		Sink s = new Sink();
		Leaf common = new Leaf();
		Box b1 = Main.pack(common);
		Box b2 = Main.pack(common);
		return s.both(b1, b2);
	}
}`
	a, p := analyzeOpts(t, src, DefaultOptions())
	sites := remoteSites(p, "Sink.both")
	if len(sites) != 1 {
		t.Fatalf("got %d sites, want 1", len(sites))
	}
	w := a.CycleWitnessFrom(argSets(a, sites[0]))
	if w == nil {
		t.Fatal("diamond sharing through a shared callee was missed — unsound context separation")
	}
	if w.Kind != WitnessShared {
		t.Errorf("witness kind %q, want %q", w.Kind, WitnessShared)
	}
}

// TestAnalysisDeterministic pins node numbering and witness selection:
// repeated runs over a program with remote cloning and contexts must
// produce identical node tables and identical witnesses.
func TestAnalysisDeterministic(t *testing.T) {
	fingerprint := func() string {
		a, p := analyzeOpts(t, sharedHelperSrc, DefaultOptions())
		s := fmt.Sprintf("iters=%d kills=%d\n", a.Iterations, a.StrongKills)
		for _, n := range a.Nodes {
			s += n.String() + "\n"
			for _, id := range a.Reach(NodeSet{n.ID: {}}).Sorted() {
				s += fmt.Sprintf(" reach %d", id)
			}
			s += "\n"
		}
		for _, site := range p.RemoteSites {
			if site == nil {
				continue
			}
			s += a.CycleWitnessFrom(argSets(a, site)).String() + "\n"
		}
		return s
	}
	first := fingerprint()
	for i := 0; i < 5; i++ {
		if got := fingerprint(); got != first {
			t.Fatalf("run %d differs:\n--- first ---\n%s\n--- now ---\n%s", i+2, first, got)
		}
	}
}

func TestStatsReported(t *testing.T) {
	a, _ := analyzeOpts(t, sharedHelperSrc, DefaultOptions())
	st := a.AnalysisStats()
	if st.Contexts != 3 { // merged slot + two mk contexts
		t.Errorf("Contexts = %d, want 3", st.Contexts)
	}
	if st.Nodes != len(a.Nodes) || st.Nodes == 0 {
		t.Errorf("Nodes = %d, want %d (> 0)", st.Nodes, len(a.Nodes))
	}
	if st.PeakPointsTo < 1 {
		t.Errorf("PeakPointsTo = %d, want >= 1", st.PeakPointsTo)
	}
	if st.Iterations != a.Iterations {
		t.Errorf("Iterations = %d, want %d", st.Iterations, a.Iterations)
	}
}
