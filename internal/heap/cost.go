package heap

// The analysis cost model (ISSUE 10): every run of the driver prices
// itself — structure (functions, SCCs, regions, waves), precision
// effort (contexts, nodes, peak points-to, strong kills, iterations,
// budget fallbacks), cache economics (hits, misses, functions loaded
// vs analyzed), and wall time. CostStats is exported through
// `rmic -analysis-stats` (text and the cormi-cost/1 JSON document),
// rides in `rmibench -json` as the cost section, and is gated in CI
// by `make verify-analysis`.

import (
	"encoding/json"
	"fmt"
	"sort"
	"strings"
	"time"

	"cormi/internal/heap/sched"
	"cormi/internal/ir"
)

// CostSchema identifies the machine-readable cost document format.
const CostSchema = "cormi-cost/1"

// CostStats prices one analysis run. All fields except WallNS,
// Workers, and the cache counters are deterministic functions of the
// program and the precision options.
type CostStats struct {
	// WallNS is the end-to-end driver wall time (plan, cache, solve,
	// merge).
	WallNS int64 `json:"wall_ns"`
	// Functions is the program's bodied function count.
	Functions int `json:"functions"`
	// SCCs counts call-graph strongly connected components.
	SCCs int `json:"sccs"`
	// Components counts independent analysis regions.
	Components int `json:"components"`
	// Waves is the depth of the bottom-up SCC schedule.
	Waves int `json:"waves"`
	// Workers is the resolved worker-pool size of this run.
	Workers int `json:"workers"`

	// Contexts/Nodes/PeakPointsTo/StrongKills/Iterations mirror
	// Stats over the merged result.
	Contexts     int `json:"contexts"`
	Nodes        int `json:"nodes"`
	PeakPointsTo int `json:"peak_points_to"`
	StrongKills  int `json:"strong_kills"`
	Iterations   int `json:"iterations"`

	// BudgetFallbacks totals the direct call sites demoted to the
	// merged context by budget exhaustion; FallbackFuncs lists the
	// affected callees (sorted).
	BudgetFallbacks int      `json:"budget_fallbacks"`
	FallbackFuncs   []string `json:"fallback_funcs,omitempty"`

	// Cache economics. Hits+Misses = Components when a cache is
	// configured (both zero otherwise); FuncsLoaded/FuncsAnalyzed
	// partition Functions by whether their region came from the cache.
	CacheHits     int `json:"cache_hits"`
	CacheMisses   int `json:"cache_misses"`
	FuncsLoaded   int `json:"funcs_loaded"`
	FuncsAnalyzed int `json:"funcs_analyzed"`
}

// fillFromAnalysis copies the precision-effort counters out of the
// merged analysis.
func (c *CostStats) fillFromAnalysis(a *Analysis) {
	st := a.AnalysisStats()
	c.Contexts = st.Contexts
	c.Nodes = st.Nodes
	c.PeakPointsTo = st.PeakPointsTo
	c.StrongKills = st.StrongKills
	c.Iterations = st.Iterations
	for name, n := range a.BudgetFallbacks {
		c.BudgetFallbacks += n
		c.FallbackFuncs = append(c.FallbackFuncs, name)
	}
	sort.Strings(c.FallbackFuncs)
}

// CostDoc is the cormi-cost/1 envelope.
type CostDoc struct {
	Schema string `json:"schema"`
	Source string `json:"source,omitempty"`
	CostStats
}

// JSON renders the cormi-cost/1 document. source is a free-form label
// (file name, corpus name).
func (c CostStats) JSON(source string) ([]byte, error) {
	return json.MarshalIndent(CostDoc{Schema: CostSchema, Source: source, CostStats: c}, "", "  ")
}

// Format renders the human-readable cost table.
func (c CostStats) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "analysis wall time     %v\n", time.Duration(c.WallNS).Round(time.Microsecond))
	fmt.Fprintf(&b, "functions              %d\n", c.Functions)
	fmt.Fprintf(&b, "call-graph SCCs        %d\n", c.SCCs)
	fmt.Fprintf(&b, "analysis regions       %d (schedule depth %d, workers %d)\n", c.Components, c.Waves, c.Workers)
	fmt.Fprintf(&b, "contexts               %d\n", c.Contexts)
	fmt.Fprintf(&b, "heap nodes             %d\n", c.Nodes)
	fmt.Fprintf(&b, "peak points-to         %d\n", c.PeakPointsTo)
	fmt.Fprintf(&b, "strong kills           %d\n", c.StrongKills)
	fmt.Fprintf(&b, "fixpoint iterations    %d (max over regions)\n", c.Iterations)
	fmt.Fprintf(&b, "budget fallbacks       %d", c.BudgetFallbacks)
	if len(c.FallbackFuncs) > 0 {
		fmt.Fprintf(&b, " (%s)", strings.Join(c.FallbackFuncs, ", "))
	}
	b.WriteByte('\n')
	fmt.Fprintf(&b, "summary cache          %d hits, %d misses (%d funcs loaded, %d analyzed)\n",
		c.CacheHits, c.CacheMisses, c.FuncsLoaded, c.FuncsAnalyzed)
	return b.String()
}

// Fingerprint digests the complete observable analysis state — nodes,
// every points-to set, field and global edges, allocation and clone
// tables, context assignment, and the golden-visible counters. Two
// runs with equal fingerprints answer every query identically, so the
// determinism and incremental gates compare fingerprints instead of
// re-deriving all downstream artifacts. Cost (wall time, cache
// traffic, worker count) is deliberately excluded: it may differ
// between runs that must otherwise be bit-identical.
func (a *Analysis) Fingerprint() uint64 {
	coords := map[*ir.Instr][3]int{}
	valueOf := map[*ir.Value][2]int{}
	for fi, f := range a.Prog.Funcs {
		for bi, b := range f.Blocks {
			for ii, in := range b.Instrs {
				coords[in] = [3]int{fi, bi, ii}
			}
		}
		for vi, v := range valuesOf(f) {
			valueOf[v] = [2]int{fi, vi}
		}
	}
	instr := func(h *sched.Hasher, in *ir.Instr) {
		c := coords[in]
		h.Uint(uint64(c[0]))
		h.Uint(uint64(c[1]))
		h.Uint(uint64(c[2]))
	}
	set := func(h *sched.Hasher, s NodeSet) {
		ids := s.Sorted()
		h.Uint(uint64(len(ids)))
		for _, id := range ids {
			h.Uint(uint64(id))
		}
	}

	h := sched.NewHasher()
	h.Uint(uint64(len(a.Nodes)))
	for _, n := range a.Nodes {
		h.Uint(uint64(n.ID))
		h.Uint(uint64(n.Logical))
		h.Uint(uint64(n.Physical))
		h.Uint(uint64(n.Ctx))
		h.Bool(n.Summary)
		h.Uint(uint64(n.CloneOf + 1))
		h.String(n.CloneCtx)
		h.String(n.Type.String())
		instr(&h, n.Site)
	}

	type ptsLine struct {
		fi, vi, c int
		s         NodeSet
	}
	var lines []ptsLine
	for k, s := range a.pts {
		if len(s) == 0 {
			continue
		}
		vc := valueOf[k.v]
		lines = append(lines, ptsLine{vc[0], vc[1], int(k.c), s})
	}
	sort.Slice(lines, func(i, j int) bool {
		if lines[i].fi != lines[j].fi {
			return lines[i].fi < lines[j].fi
		}
		if lines[i].vi != lines[j].vi {
			return lines[i].vi < lines[j].vi
		}
		return lines[i].c < lines[j].c
	})
	h.Uint(uint64(len(lines)))
	for _, l := range lines {
		h.Uint(uint64(l.fi))
		h.Uint(uint64(l.vi))
		h.Uint(uint64(l.c))
		set(&h, l.s)
	}

	for _, m := range a.fields {
		keys := make([]string, 0, len(m))
		for k, s := range m {
			if len(s) > 0 {
				keys = append(keys, k)
			}
		}
		sort.Strings(keys)
		h.Uint(uint64(len(keys)))
		for _, k := range keys {
			h.String(k)
			set(&h, m[k])
		}
	}

	type named struct {
		name string
		s    NodeSet
	}
	var globals []named
	for fd, s := range a.globals {
		if len(s) > 0 {
			globals = append(globals, named{FieldKey(fd), s})
		}
	}
	sort.Slice(globals, func(i, j int) bool { return globals[i].name < globals[j].name })
	h.Uint(uint64(len(globals)))
	for _, g := range globals {
		h.String(g.name)
		set(&h, g.s)
	}

	type allocLine struct {
		alloc, c int
		id       NodeID
	}
	var allocs []allocLine
	for k, id := range a.allocNode {
		allocs = append(allocs, allocLine{k.in.AllocID, int(k.c), id})
	}
	sort.Slice(allocs, func(i, j int) bool {
		if allocs[i].alloc != allocs[j].alloc {
			return allocs[i].alloc < allocs[j].alloc
		}
		return allocs[i].c < allocs[j].c
	})
	h.Uint(uint64(len(allocs)))
	for _, l := range allocs {
		h.Uint(uint64(l.alloc))
		h.Uint(uint64(l.c))
		h.Uint(uint64(l.id))
	}

	type cloneLine struct {
		ctx string
		n   int
		id  NodeID
	}
	hashClones := func(ls []cloneLine) {
		sort.Slice(ls, func(i, j int) bool {
			if ls[i].ctx != ls[j].ctx {
				return ls[i].ctx < ls[j].ctx
			}
			return ls[i].n < ls[j].n
		})
		h.Uint(uint64(len(ls)))
		for _, l := range ls {
			h.String(l.ctx)
			h.Uint(uint64(l.n))
			h.Uint(uint64(l.id))
		}
	}
	var memo, pairs []cloneLine
	for k, id := range a.cloneMemo {
		memo = append(memo, cloneLine{k.ctx, k.physical, id})
	}
	for k, id := range a.clonePairs {
		pairs = append(pairs, cloneLine{k.ctx, int(k.orig), id})
	}
	hashClones(memo)
	hashClones(pairs)

	h.Uint(uint64(len(a.ctxSite)))
	for _, in := range a.ctxSite[1:] {
		instr(&h, in)
	}
	for fi, f := range a.Prog.Funcs {
		cs := a.ctxsOf[f]
		h.Uint(uint64(fi))
		h.Uint(uint64(len(cs)))
		for _, c := range cs {
			h.Uint(uint64(c))
		}
	}
	type callLine struct {
		co [3]int
		c  Ctx
	}
	var calls []callLine
	for in, c := range a.ctxOfCall {
		calls = append(calls, callLine{coords[in], c})
	}
	sort.Slice(calls, func(i, j int) bool {
		a, b := calls[i].co, calls[j].co
		if a[0] != b[0] {
			return a[0] < b[0]
		}
		if a[1] != b[1] {
			return a[1] < b[1]
		}
		return a[2] < b[2]
	})
	h.Uint(uint64(len(calls)))
	for _, l := range calls {
		h.Uint(uint64(l.co[0]))
		h.Uint(uint64(l.co[1]))
		h.Uint(uint64(l.co[2]))
		h.Uint(uint64(l.c))
	}

	var fbs []string
	for name := range a.BudgetFallbacks {
		fbs = append(fbs, name)
	}
	sort.Strings(fbs)
	h.Uint(uint64(len(fbs)))
	for _, name := range fbs {
		h.String(name)
		h.Uint(uint64(a.BudgetFallbacks[name]))
	}

	h.Uint(uint64(a.StrongKills))
	h.Uint(uint64(a.Iterations))
	return h.Sum()
}
