// Package gen produces seeded MiniJP corpora for the analysis
// scalability gates (DESIGN.md §16). A corpus is a deterministic
// function of its Config: the same seed always yields byte-identical
// source, and an entry in Edits changes exactly one function body (a
// salt constant) without moving any call edge — the shape the
// incremental-invalidation tests need. ExtraCalls is the structural
// counterpart: it adds one call edge out of a chosen function, for the
// edge add/remove rewiring tests.
//
// Each component k is a self-contained class family (CkNode, remote
// CkSvc, CkApp) whose functions never reference another component, so
// the scheduler must discover exactly Components independent regions.
// Within a component the helpers form a call chain with seeded
// cross-links, a mutually recursive pair (f1/f2), a remote call, and a
// static-field escape — every analysis feature the cache must
// serialize.
package gen

import (
	"fmt"
	"math/rand"
	"strings"
)

// Config selects a corpus. Structure (call edges) depends only on
// Seed, Components, FuncsPerComponent, and ExtraCalls; Edits perturbs
// single function bodies without changing structure.
type Config struct {
	Seed              int64
	Components        int
	FuncsPerComponent int
	// Edits bumps the named function's salt constant by the given
	// delta ("CkApp.fi" -> delta). The zero map is the pristine corpus.
	Edits map[string]int
	// ExtraCalls adds one extra call edge (to the component's leaf
	// function) out of each named mid-chain function.
	ExtraCalls map[string]bool
}

// Corpus is a generated program plus its editable-function inventory.
type Corpus struct {
	Source string
	// Funcs lists the app helper functions ("CkApp.fi") in component
	// order — the names Edits and ExtraCalls accept.
	Funcs []string
}

// minFuncs is the smallest chain the component template supports
// (root, recursive pair, one mid, leaf).
const minFuncs = 5

// Generate builds the corpus for cfg. Deterministic: structure is
// drawn from a private PRNG seeded with cfg.Seed only.
func Generate(cfg Config) Corpus {
	if cfg.Components < 1 {
		cfg.Components = 1
	}
	if cfg.FuncsPerComponent < minFuncs {
		cfg.FuncsPerComponent = minFuncs
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	var b strings.Builder
	var corpus Corpus
	for k := 0; k < cfg.Components; k++ {
		genComponent(&b, &corpus, cfg, rng, k)
	}
	corpus.Source = b.String()
	return corpus
}

func genComponent(b *strings.Builder, corpus *Corpus, cfg Config, rng *rand.Rand, k int) {
	m := cfg.FuncsPerComponent
	node := fmt.Sprintf("C%dNode", k)
	svc := fmt.Sprintf("C%dSvc", k)
	app := fmt.Sprintf("C%dApp", k)
	name := func(i int) string { return fmt.Sprintf("%s.f%d", app, i) }
	salt := func(i int) int { return 100*k + 7*i + cfg.Edits[name(i)] }
	leaf := m - 1

	fmt.Fprintf(b, "class %s { %s next; int v; }\n", node, node)
	fmt.Fprintf(b, "remote class %s {\n", svc)
	fmt.Fprintf(b, "\tint take(%s n) {\n\t\tint t = 0;\n\t\t%s p = n;\n\t\twhile (p != null) {\n\t\t\tt = t + p.v;\n\t\t\tp = p.next;\n\t\t}\n\t\treturn t;\n\t}\n", node, node)
	fmt.Fprintf(b, "\t%s get() {\n\t\t%s n = new %s();\n\t\tn.v = %d;\n\t\treturn n;\n\t}\n", node, node, node, 100*k+3)
	fmt.Fprintf(b, "}\n")

	fmt.Fprintf(b, "class %s {\n", app)
	fmt.Fprintf(b, "\tstatic %s keep;\n", node)
	for i := 0; i < m; i++ {
		corpus.Funcs = append(corpus.Funcs, name(i))
		switch {
		case i == 0:
			// Root: drives the recursive pair and the chain, parks a
			// node in the static, and exercises the remote boundary.
			fmt.Fprintf(b, "\tstatic int f0(int d) {\n")
			fmt.Fprintf(b, "\t\tint salt = %d;\n", salt(0))
			fmt.Fprintf(b, "\t\t%s s = new %s();\n", svc, svc)
			fmt.Fprintf(b, "\t\t%s n = %s.f1(d + salt);\n", node, app)
			if m > minFuncs {
				fmt.Fprintf(b, "\t\tn.next = %s.f3(d);\n", app)
			}
			fmt.Fprintf(b, "\t\t%s.keep = n;\n", app)
			fmt.Fprintf(b, "\t\tint r = s.take(n);\n")
			fmt.Fprintf(b, "\t\t%s g = s.get();\n", node)
			fmt.Fprintf(b, "\t\treturn r + g.v;\n\t}\n")
		case i == 1 || i == 2:
			// Mutually recursive pair: a direct-call SCC of size 2, so
			// editing either member must invalidate both.
			other := 3 - i
			fmt.Fprintf(b, "\tstatic %s f%d(int d) {\n", node, i)
			fmt.Fprintf(b, "\t\tint salt = %d;\n", salt(i))
			fmt.Fprintf(b, "\t\tif (d > salt) {\n\t\t\treturn %s.f%d(d - 1);\n\t\t}\n", app, other)
			fmt.Fprintf(b, "\t\treturn %s.f%d(d);\n\t}\n", app, leaf)
		case i == leaf:
			// Leaf: the component's only helper allocation site.
			fmt.Fprintf(b, "\tstatic %s f%d(int d) {\n", node, i)
			fmt.Fprintf(b, "\t\t%s n = new %s();\n", node, node)
			fmt.Fprintf(b, "\t\tn.v = d + %d;\n", salt(i))
			fmt.Fprintf(b, "\t\treturn n;\n\t}\n")
		default:
			// Mid-chain: pass-through to the next helper, with a
			// seeded optional cross-link deeper into the chain.
			next := i + 1
			fmt.Fprintf(b, "\tstatic %s f%d(int d) {\n", node, i)
			fmt.Fprintf(b, "\t\tint salt = %d;\n", salt(i))
			fmt.Fprintf(b, "\t\t%s n = %s.f%d(d + salt);\n", node, app, next)
			if cross := i + 2; cross < leaf && rng.Intn(2) == 0 {
				fmt.Fprintf(b, "\t\tn.next = %s.f%d(d);\n", app, cross)
			}
			if cfg.ExtraCalls[name(i)] {
				fmt.Fprintf(b, "\t\tn.next = %s.f%d(d + 1);\n", app, leaf)
			}
			fmt.Fprintf(b, "\t\treturn n;\n\t}\n")
		}
	}
	fmt.Fprintf(b, "}\n")
}
