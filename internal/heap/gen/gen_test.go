package gen

import (
	"strings"
	"testing"

	"cormi/internal/ir"
	"cormi/internal/lang"
)

func compile(t *testing.T, src string) *ir.Program {
	t.Helper()
	f, err := lang.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	cp, err := lang.Check(f)
	if err != nil {
		t.Fatalf("check: %v", err)
	}
	p, err := ir.Lower(cp)
	if err != nil {
		t.Fatalf("lower: %v", err)
	}
	return p
}

// The generated corpus must be valid MiniJP at every scale the gates
// use, and deterministic for a fixed config.
func TestGenerateCompilesAndIsDeterministic(t *testing.T) {
	cfg := Config{Seed: 42, Components: 5, FuncsPerComponent: 8}
	c1 := Generate(cfg)
	c2 := Generate(cfg)
	if c1.Source != c2.Source {
		t.Fatal("same config produced different sources")
	}
	p := compile(t, c1.Source)
	// 8 app helpers + take + get per component.
	if want := 5 * (8 + 2); len(p.Funcs) != want {
		t.Fatalf("got %d bodied funcs, want %d", len(p.Funcs), want)
	}
	if len(c1.Funcs) != 5*8 {
		t.Fatalf("got %d listed funcs, want %d", len(c1.Funcs), 5*8)
	}
}

// An edit must change exactly one function body and nothing else.
func TestEditIsSingleFunction(t *testing.T) {
	cfg := Config{Seed: 7, Components: 3, FuncsPerComponent: 8}
	base := Generate(cfg)
	cfg.Edits = map[string]int{"C1App.f4": 1000}
	edited := Generate(cfg)
	if base.Source == edited.Source {
		t.Fatal("edit did not change the source")
	}
	bl := strings.Split(base.Source, "\n")
	el := strings.Split(edited.Source, "\n")
	if len(bl) != len(el) {
		t.Fatalf("edit changed line count: %d vs %d", len(bl), len(el))
	}
	diff := 0
	for i := range bl {
		if bl[i] != el[i] {
			diff++
		}
	}
	if diff != 1 {
		t.Fatalf("edit changed %d lines, want exactly 1", diff)
	}
	compile(t, edited.Source)
}

// ExtraCalls must add a call edge and still compile.
func TestExtraCallCompiles(t *testing.T) {
	cfg := Config{
		Seed: 7, Components: 2, FuncsPerComponent: 8,
		ExtraCalls: map[string]bool{"C0App.f4": true},
	}
	c := Generate(cfg)
	if !strings.Contains(c.Source, "C0App.f7(d + 1)") {
		t.Fatal("extra call edge missing from source")
	}
	compile(t, c.Source)
}
