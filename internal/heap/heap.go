// Package heap implements the paper's RMI-aware heap analysis (§2):
// an allocation-site-based, inclusion-style points-to analysis over SSA
// form, extended to model RMI's deep-copy parameter semantics.
//
// Every allocation site becomes a heap node; data flow propagates node
// sets through assignments, phis, field stores/loads and calls until a
// fixpoint. At remote call boundaries the reachable argument subgraph
// is cloned — each node's *logical* allocation number is fresh while
// its *physical* allocation number is inherited from the original.
// Cloning is memoized per (context, physical) pair, which is exactly
// the paper's termination fix for the data-flow loop of Figure 3/4:
// once a physical number has been propagated into a remote function, no
// further clone is created, so the node sets stop growing.
//
// Two precision refinements sit on top of the base analysis (both on by
// default, both switchable through Options — the verdict-matrix
// baseline compiles with them off):
//
//  1. 1-call-site sensitivity: every direct call site of a function
//     with a body gets its own clone of the callee's points-to summary
//     (its own Ctx), so one pessimistic caller no longer poisons the
//     verdicts of every other caller of a shared helper. Recursive
//     functions (any call-graph SCC) and callees whose dedicated
//     context count would exceed Options.ContextBudget fall back to
//     the merged summary context 0 — the bounded-context rule that
//     keeps the analysis linear in the number of call sites.
//
//  2. Flow-sensitive strong updates: a store through an SSA value
//     whose points-to set is a singleton non-summary allocation node
//     is *killed* when a later store in the same basic block
//     overwrites the same field of the same base value with no
//     potentially-observing instruction (load or call) in between.
//     The analysis runs twice: the first pass computes the kill set
//     from its final (over-approximate) points-to sets, the second
//     re-runs the fixpoint with killed stores skipped. Because the
//     second pass only removes constraints, its sets shrink, so every
//     kill stays justified.
package heap

import (
	"fmt"
	"runtime"
	"sort"
	"strings"

	"cormi/internal/heap/sched"
	"cormi/internal/ir"
	"cormi/internal/lang"
)

// NodeID identifies a heap node. The NodeID doubles as the logical
// allocation number.
type NodeID int

// Ctx identifies one analysis context of a function. Context 0 is the
// merged (context-insensitive) summary every function has; contexts
// > 0 are per-direct-call-site clones of one callee's summary.
type Ctx int

// MergedCtx is the shared fallback context: entry functions, remote
// invocations, recursive callees and budget overflow all bind here.
const MergedCtx Ctx = 0

// DefaultContextBudget bounds the dedicated contexts per callee: a
// function with more direct call sites than this sees the overflow
// sites through its merged summary instead.
const DefaultContextBudget = 16

// Options selects the analysis precision/cost trade-offs, plus the
// scheduling knobs of the parallel/incremental driver. Only the
// precision fields may influence analysis RESULTS; Workers and
// CacheDir are pure accelerators, and the determinism gate
// (`make verify-analysis`) pins that they change nothing observable.
type Options struct {
	// ContextSensitive enables 1-call-site-sensitive interprocedural
	// analysis (per-call-site callee summaries).
	ContextSensitive bool
	// StrongUpdates enables the flow-sensitive same-block store-kill
	// refinement.
	StrongUpdates bool
	// ContextBudget caps dedicated contexts per callee (0 means
	// DefaultContextBudget).
	ContextBudget int
	// Workers bounds the worker pool solving independent analysis
	// regions concurrently (0 means GOMAXPROCS, 1 forces sequential).
	Workers int
	// CacheDir, when non-empty, enables the persistent summary cache
	// (conventionally a `.cormi-cache` directory): regions whose
	// content key matches a cached summary are loaded instead of
	// re-solved.
	CacheDir string
}

// DefaultOptions is the production configuration: both refinements on.
func DefaultOptions() Options {
	return Options{ContextSensitive: true, StrongUpdates: true, ContextBudget: DefaultContextBudget}
}

// InsensitiveOptions is the context-insensitive, weak-update baseline
// the precision gate compares against.
func InsensitiveOptions() Options { return Options{} }

func (o Options) budget() int {
	if o.ContextBudget <= 0 {
		return DefaultContextBudget
	}
	return o.ContextBudget
}

// workers resolves the effective worker-pool size.
func (o Options) workers() int {
	if o.Workers > 0 {
		return o.Workers
	}
	return runtime.GOMAXPROCS(0)
}

// fingerprint digests the result-affecting options only — the summary
// cache must be oblivious to Workers and CacheDir, which by the
// determinism contract cannot change any analysis fact.
func (o Options) fingerprint() uint64 {
	h := sched.NewHasher()
	h.Bool(o.ContextSensitive)
	h.Bool(o.StrongUpdates)
	h.Uint(uint64(o.budget()))
	return h.Sum()
}

// ElemKey is the pseudo-field naming array element edges (the "[]"
// edges of Figure 2).
const ElemKey = "[]"

// Node is one heap-graph node: an allocation site (in one analysis
// context) or a clone of one.
type Node struct {
	ID       NodeID
	Logical  int
	Physical int
	Type     lang.Type
	// Site is the allocation instruction this node (or its clone
	// origin) came from.
	Site *ir.Instr
	// Ctx is the analysis context the node was allocated in (MergedCtx
	// for context-insensitive nodes and clones).
	Ctx Ctx
	// Summary marks nodes that may stand for objects from several
	// merged call paths: merged-context nodes of functions that have
	// direct callers, and all remote-boundary clones (memoized per
	// physical number). Strong updates never fire on summary nodes.
	Summary bool
	// CloneOf is the node this one was cloned from (-1 for originals)
	// and CloneCtx the remote-boundary context that caused the clone.
	CloneOf  NodeID
	CloneCtx string
}

// IsClone reports whether the node is an RMI-boundary clone.
func (n *Node) IsClone() bool { return n.CloneOf >= 0 }

func (n *Node) String() string {
	c := ""
	if n.IsClone() {
		c = fmt.Sprintf(" clone-of=%d ctx=%s", n.CloneOf, n.CloneCtx)
	} else if n.Ctx != MergedCtx {
		c = fmt.Sprintf(" callctx=%d", n.Ctx)
	}
	return fmt.Sprintf("node%d(log=%d, phys=%d, %s%s)", n.ID, n.Logical, n.Physical, n.Type, c)
}

// NodeSet is a set of heap nodes.
type NodeSet map[NodeID]struct{}

// Add inserts id, reporting whether the set changed.
func (s NodeSet) Add(id NodeID) bool {
	if _, ok := s[id]; ok {
		return false
	}
	s[id] = struct{}{}
	return true
}

// AddAll unions t into s, reporting whether s changed.
func (s NodeSet) AddAll(t NodeSet) bool {
	changed := false
	for id := range t {
		if s.Add(id) {
			changed = true
		}
	}
	return changed
}

// Has reports membership.
func (s NodeSet) Has(id NodeID) bool {
	_, ok := s[id]
	return ok
}

// Sorted returns the ids in ascending order.
func (s NodeSet) Sorted() []NodeID {
	ids := make([]NodeID, 0, len(s))
	for id := range s {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

func (s NodeSet) String() string {
	parts := make([]string, 0, len(s))
	for _, id := range s.Sorted() {
		parts = append(parts, fmt.Sprintf("%d", id))
	}
	return "{" + strings.Join(parts, ",") + "}"
}

type cloneKey struct {
	ctx      string
	physical int
}

type clonePair struct {
	ctx  string
	orig NodeID
}

// valCtx keys a value's points-to set in one analysis context.
type valCtx struct {
	v *ir.Value
	c Ctx
}

// allocKey keys an allocation instruction's node in one context.
type allocKey struct {
	in *ir.Instr
	c  Ctx
}

// instrCtx names one instruction under one analysis context (the key
// of the strong-update kill set).
type instrCtx struct {
	in *ir.Instr
	c  Ctx
}

// Analysis is the computed heap graph. During solving each analysis
// region (sched.Component) is one private Analysis with local node and
// context numbering; mergeParts stitches the parts into the single
// program-wide Analysis callers see, with numbering that depends only
// on the deterministic region order — never on scheduling.
type Analysis struct {
	Prog *ir.Program
	Opts Options

	// funcs is the function subset this Analysis covers, in fixpoint
	// iteration order (one region's bottom-up wave order while
	// solving; prog.Funcs after the merge).
	funcs []*ir.Func

	Nodes []*Node

	pts       map[valCtx]NodeSet
	ptsAll    map[*ir.Value]NodeSet // union over contexts, kept in sync
	fields    []map[string]NodeSet  // by NodeID
	globals   map[*lang.FieldDecl]NodeSet
	allocNode map[allocKey]NodeID

	cloneMemo  map[cloneKey]NodeID
	clonePairs map[clonePair]NodeID

	// Context machinery (filled by the static prepass).
	ctxsOf    map[*ir.Func][]Ctx // live contexts, MergedCtx (if live) first
	ctxOfCall map[*ir.Instr]Ctx  // direct call instr -> callee context
	ctxSite   []*ir.Instr        // by Ctx (nil for MergedCtx)
	recursive map[*ir.Func]bool
	hasCaller map[*ir.Func]bool

	// killed stores (strong updates), decided by the first pass.
	killed map[instrCtx]bool
	// StrongKills counts the stores the final pass skipped because a
	// later same-block store strongly updates the same field.
	StrongKills int

	changed bool
	// Iterations records how many fixpoint passes were needed (a
	// termination witness for the Figure 3/4 scenario). After the
	// merge it is the maximum over regions — the critical-path pass
	// count, which is what a parallel run actually waits for.
	Iterations int

	// BudgetFallbacks counts, per callee qualified name, the direct
	// call sites demoted to MergedCtx because the callee's dedicated-
	// context count exceeded Options.ContextBudget (satellite fix of
	// ISSUE 10: budget exhaustion used to be silent). Recursion and
	// ContextSensitive=false demotions are NOT counted — those are
	// semantic, not budget pressure.
	BudgetFallbacks map[string]int

	// Cost is the driver's cost model for the whole run (CostStats is
	// exported through `rmic -analysis-stats` and gated in CI).
	Cost CostStats
}

// Stats summarizes the analysis cost for the verdict matrix.
type Stats struct {
	Nodes       int // heap nodes (originals, context clones, RMI clones)
	Contexts    int // total analysis contexts (incl. the merged one)
	PeakPointsTo int // largest per-context value points-to set
	StrongKills int // stores removed by strong updates
	Iterations  int // fixpoint passes of the final run
}

// AnalysisStats reports the cost metrics of the finished analysis.
func (a *Analysis) AnalysisStats() Stats {
	st := Stats{
		Nodes:       len(a.Nodes),
		Contexts:    len(a.ctxSite),
		StrongKills: a.StrongKills,
		Iterations:  a.Iterations,
	}
	for _, s := range a.pts {
		if len(s) > st.PeakPointsTo {
			st.PeakPointsTo = len(s)
		}
	}
	return st
}

// Contexts returns the analysis contexts of a function, MergedCtx
// first, in deterministic order.
func (a *Analysis) Contexts(f *ir.Func) []Ctx { return a.ctxsOf[f] }

// CtxCallSite returns the direct call instruction a dedicated context
// stands for (nil for MergedCtx).
func (a *Analysis) CtxCallSite(c Ctx) *ir.Instr {
	if int(c) >= len(a.ctxSite) {
		return nil
	}
	return a.ctxSite[c]
}

// PointsTo returns the node set an SSA value may refer to across all
// of its function's contexts (nil-safe) — the sound merged view.
func (a *Analysis) PointsTo(v *ir.Value) NodeSet {
	if v == nil {
		return nil
	}
	return a.ptsAll[v]
}

// PointsToIn returns the points-to set of v in one specific context
// (nil-safe; nil when the context never bound v).
func (a *Analysis) PointsToIn(v *ir.Value, c Ctx) NodeSet {
	if v == nil {
		return nil
	}
	return a.pts[valCtx{v, c}]
}

// NodeOfAlloc returns the heap node of an allocation instruction in
// the given context, if the context ever executed it.
func (a *Analysis) NodeOfAlloc(in *ir.Instr, c Ctx) (NodeID, bool) {
	id, ok := a.allocNode[allocKey{in, c}]
	return id, ok
}

// Field returns the points-to set of node.field.
func (a *Analysis) Field(n NodeID, key string) NodeSet {
	return a.fields[n][key]
}

// FieldEdges returns all outgoing field edges of a node, keyed by
// field name. The returned map is the analysis's own storage; treat it
// as read-only.
func (a *Analysis) FieldEdges(n NodeID) map[string]NodeSet {
	return a.fields[n]
}

// FieldKey names a declared field edge.
func FieldKey(fd *lang.FieldDecl) string {
	return fd.Owner.Name + "." + fd.Name
}

// Node returns the node by id.
func (a *Analysis) Node(id NodeID) *Node { return a.Nodes[id] }

// GlobalSeeds returns the union of all static-variable points-to sets:
// everything directly reachable from a global (the escape-analysis
// seed set).
func (a *Analysis) GlobalSeeds() NodeSet {
	out := NodeSet{}
	for _, s := range a.globals {
		out.AddAll(s)
	}
	return out
}

// Global returns the points-to set of one static field.
func (a *Analysis) Global(fd *lang.FieldDecl) NodeSet { return a.globals[fd] }

// Reach returns roots plus everything transitively reachable through
// field edges.
func (a *Analysis) Reach(roots NodeSet) NodeSet {
	out := NodeSet{}
	var stack []NodeID
	for id := range roots {
		if out.Add(id) {
			stack = append(stack, id)
		}
	}
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, set := range a.fields[n] {
			for m := range set {
				if out.Add(m) {
					stack = append(stack, m)
				}
			}
		}
	}
	return out
}

// CloneSetOf maps a caller-side node set to its clones under ctx,
// returning only nodes that were actually cloned (memo hits).
func (a *Analysis) CloneSetOf(ctx string, orig NodeSet) NodeSet {
	out := NodeSet{}
	for id := range orig {
		if c, ok := a.clonePairs[clonePair{ctx: ctx, orig: id}]; ok {
			out.Add(c)
		}
	}
	return out
}

// ArgCtx is the cloning context for arguments of a remote function
// ("checked if the physical allocation number has already been
// propagated to that remote function").
func ArgCtx(callee *lang.MethodDecl) string { return "arg:" + callee.QualifiedName() }

// RetCtx is the cloning context for return values, per call site.
func RetCtx(siteID int) string { return fmt.Sprintf("ret:site%d", siteID) }
