// Package heap implements the paper's RMI-aware heap analysis (§2):
// an allocation-site-based, inclusion-style points-to analysis over SSA
// form, extended to model RMI's deep-copy parameter semantics.
//
// Every allocation site becomes a heap node; data flow propagates node
// sets through assignments, phis, field stores/loads and calls until a
// fixpoint. At remote call boundaries the reachable argument subgraph
// is cloned — each node's *logical* allocation number is fresh while
// its *physical* allocation number is inherited from the original.
// Cloning is memoized per (context, physical) pair, which is exactly
// the paper's termination fix for the data-flow loop of Figure 3/4:
// once a physical number has been propagated into a remote function, no
// further clone is created, so the node sets stop growing.
package heap

import (
	"fmt"
	"sort"
	"strings"

	"cormi/internal/ir"
	"cormi/internal/lang"
)

// NodeID identifies a heap node. The NodeID doubles as the logical
// allocation number.
type NodeID int

// ElemKey is the pseudo-field naming array element edges (the "[]"
// edges of Figure 2).
const ElemKey = "[]"

// Node is one heap-graph node: an allocation site or a clone of one.
type Node struct {
	ID       NodeID
	Logical  int
	Physical int
	Type     lang.Type
	// Site is the allocation instruction this node (or its clone
	// origin) came from.
	Site *ir.Instr
	// CloneOf is the node this one was cloned from (-1 for originals)
	// and CloneCtx the remote-boundary context that caused the clone.
	CloneOf  NodeID
	CloneCtx string
}

// IsClone reports whether the node is an RMI-boundary clone.
func (n *Node) IsClone() bool { return n.CloneOf >= 0 }

func (n *Node) String() string {
	c := ""
	if n.IsClone() {
		c = fmt.Sprintf(" clone-of=%d ctx=%s", n.CloneOf, n.CloneCtx)
	}
	return fmt.Sprintf("node%d(log=%d, phys=%d, %s%s)", n.ID, n.Logical, n.Physical, n.Type, c)
}

// NodeSet is a set of heap nodes.
type NodeSet map[NodeID]struct{}

// Add inserts id, reporting whether the set changed.
func (s NodeSet) Add(id NodeID) bool {
	if _, ok := s[id]; ok {
		return false
	}
	s[id] = struct{}{}
	return true
}

// AddAll unions t into s, reporting whether s changed.
func (s NodeSet) AddAll(t NodeSet) bool {
	changed := false
	for id := range t {
		if s.Add(id) {
			changed = true
		}
	}
	return changed
}

// Has reports membership.
func (s NodeSet) Has(id NodeID) bool {
	_, ok := s[id]
	return ok
}

// Sorted returns the ids in ascending order.
func (s NodeSet) Sorted() []NodeID {
	ids := make([]NodeID, 0, len(s))
	for id := range s {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

func (s NodeSet) String() string {
	parts := make([]string, 0, len(s))
	for _, id := range s.Sorted() {
		parts = append(parts, fmt.Sprintf("%d", id))
	}
	return "{" + strings.Join(parts, ",") + "}"
}

type cloneKey struct {
	ctx      string
	physical int
}

type clonePair struct {
	ctx  string
	orig NodeID
}

// Analysis is the computed heap graph.
type Analysis struct {
	Prog  *ir.Program
	Nodes []*Node

	pts       map[*ir.Value]NodeSet
	fields    []map[string]NodeSet // by NodeID
	globals   map[*lang.FieldDecl]NodeSet
	allocNode map[*ir.Instr]NodeID

	cloneMemo  map[cloneKey]NodeID
	clonePairs map[clonePair]NodeID

	changed bool
	// Iterations records how many fixpoint passes were needed (a
	// termination witness for the Figure 3/4 scenario).
	Iterations int
}

// PointsTo returns the node set an SSA value may refer to (nil-safe).
func (a *Analysis) PointsTo(v *ir.Value) NodeSet {
	if v == nil {
		return nil
	}
	return a.pts[v]
}

// Field returns the points-to set of node.field.
func (a *Analysis) Field(n NodeID, key string) NodeSet {
	return a.fields[n][key]
}

// FieldEdges returns all outgoing field edges of a node, keyed by
// field name. The returned map is the analysis's own storage; treat it
// as read-only.
func (a *Analysis) FieldEdges(n NodeID) map[string]NodeSet {
	return a.fields[n]
}

// FieldKey names a declared field edge.
func FieldKey(fd *lang.FieldDecl) string {
	return fd.Owner.Name + "." + fd.Name
}

// Node returns the node by id.
func (a *Analysis) Node(id NodeID) *Node { return a.Nodes[id] }

// GlobalSeeds returns the union of all static-variable points-to sets:
// everything directly reachable from a global (the escape-analysis
// seed set).
func (a *Analysis) GlobalSeeds() NodeSet {
	out := NodeSet{}
	for _, s := range a.globals {
		out.AddAll(s)
	}
	return out
}

// Global returns the points-to set of one static field.
func (a *Analysis) Global(fd *lang.FieldDecl) NodeSet { return a.globals[fd] }

// Reach returns roots plus everything transitively reachable through
// field edges.
func (a *Analysis) Reach(roots NodeSet) NodeSet {
	out := NodeSet{}
	var stack []NodeID
	for id := range roots {
		if out.Add(id) {
			stack = append(stack, id)
		}
	}
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, set := range a.fields[n] {
			for m := range set {
				if out.Add(m) {
					stack = append(stack, m)
				}
			}
		}
	}
	return out
}

// CloneSetOf maps a caller-side node set to its clones under ctx,
// returning only nodes that were actually cloned (memo hits).
func (a *Analysis) CloneSetOf(ctx string, orig NodeSet) NodeSet {
	out := NodeSet{}
	for id := range orig {
		if c, ok := a.clonePairs[clonePair{ctx: ctx, orig: id}]; ok {
			out.Add(c)
		}
	}
	return out
}

// ArgCtx is the cloning context for arguments of a remote function
// ("checked if the physical allocation number has already been
// propagated to that remote function").
func ArgCtx(callee *lang.MethodDecl) string { return "arg:" + callee.QualifiedName() }

// RetCtx is the cloning context for return values, per call site.
func RetCtx(siteID int) string { return fmt.Sprintf("ret:site%d", siteID) }
