package heap

import (
	"strings"
	"testing"

	"cormi/internal/ir"
	"cormi/internal/lang"
)

func analyze(t *testing.T, src string) (*Analysis, *ir.Program) {
	t.Helper()
	f, err := lang.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	cp, err := lang.Check(f)
	if err != nil {
		t.Fatalf("check: %v", err)
	}
	p, err := ir.Lower(cp)
	if err != nil {
		t.Fatalf("lower: %v", err)
	}
	if err := ir.Validate(p); err != nil {
		t.Fatalf("validate: %v", err)
	}
	return Analyze(p), p
}

// argSets returns the caller-side points-to sets of a remote site's
// serialized arguments (receiver excluded).
func argSets(a *Analysis, site *ir.Instr) []NodeSet {
	var sets []NodeSet
	for i, arg := range site.Args {
		if i == 0 && !site.Callee.Static {
			continue
		}
		if lang.IsRef(arg.Type) {
			sets = append(sets, a.PointsTo(arg))
		}
	}
	return sets
}

const figure2Src = `
class Bar { }
class Foo {
	Bar bar;
	double[][][] a;
	static void main() {
		Foo foo = new Foo();
		foo.bar = new Bar();
		foo.a = new double[2][3][];
	}
}
`

func TestFigure2HeapGraph(t *testing.T) {
	a, p := analyze(t, figure2Src)
	// Find the Foo allocation node.
	var fooNode NodeID = -1
	for _, in := range p.AllocSites {
		if in != nil && in.Op == ir.OpNew && in.Class.Name == "Foo" {
			if id, ok := a.NodeOfAlloc(in, MergedCtx); ok {
				fooNode = id
			}
		}
	}
	if fooNode < 0 {
		t.Fatal("no Foo node")
	}
	barSet := a.Field(fooNode, "Foo.bar")
	if len(barSet) != 1 {
		t.Fatalf("foo.bar points to %s", barSet)
	}
	aSet := a.Field(fooNode, "Foo.a")
	if len(aSet) != 1 {
		t.Fatalf("foo.a points to %s", aSet)
	}
	// The 3-dim array: outer node has "[]" edge to middle node; the
	// innermost dimension is unsized so the chain stops there.
	for outer := range aSet {
		mid := a.Field(outer, ElemKey)
		if len(mid) != 1 {
			t.Fatalf("outer[] points to %s", mid)
		}
		if a.Nodes[outer].Type.String() != "double[][][]" {
			t.Fatalf("outer type %s", a.Nodes[outer].Type)
		}
		for m := range mid {
			if a.Nodes[m].Type.String() != "double[][]" {
				t.Fatalf("middle type %s", a.Nodes[m].Type)
			}
		}
	}
	// Dump must mention the allocations and the "[]" edge (Figure 2).
	dump := a.DumpGraph(NodeSet{fooNode: struct{}{}})
	for _, frag := range []string{"Foo", "Bar", "double[][][]", `"[]"`} {
		if !strings.Contains(dump, frag) {
			t.Fatalf("dump missing %q:\n%s", frag, dump)
		}
	}
	// No cycles in this graph.
	if a.MayCycleFrom([]NodeSet{{fooNode: struct{}{}}}) {
		t.Fatal("Figure 2 graph misflagged as cyclic")
	}
}

const figure3Src = `
class Obj { }
remote class Foo {
	Obj foo(Obj a) { return a; }
	static void zoo() {
		Foo me = new Foo();
		Obj t = new Obj();
		for (int i = 0; i < 100; i = i + 1) {
			t = me.foo(t);
		}
	}
}
`

func TestFigure3TerminationAndTuples(t *testing.T) {
	a, p := analyze(t, figure3Src)
	if a.Iterations >= 100 {
		t.Fatalf("fixpoint took %d iterations; cloning loop not damped", a.Iterations)
	}
	site := p.RemoteSites[0]
	// t's final set: the original Obj allocation plus exactly one
	// clone from the return (the Figure 4 behavior: {(2,2),(4,2)}).
	tSet := a.PointsTo(site.Args[1])
	if len(tSet) != 2 {
		t.Fatalf("t points to %s, want exactly {orig, one clone}", tSet)
	}
	var orig, clone *Node
	for id := range tSet {
		n := a.Nodes[id]
		if n.IsClone() {
			clone = n
		} else {
			orig = n
		}
	}
	if orig == nil || clone == nil {
		t.Fatalf("t's set should mix original and clone: %s", tSet)
	}
	if clone.Physical != orig.Physical {
		t.Fatalf("clone physical %d != original physical %d", clone.Physical, orig.Physical)
	}
	if clone.Logical == orig.Logical {
		t.Fatal("clone did not get a fresh logical number")
	}
	// The callee parameter sees only clones (by-copy semantics).
	callee := p.FuncOf[site.Callee]
	for id := range a.PointsTo(callee.Params[1]) {
		if !a.Nodes[id].IsClone() {
			t.Fatalf("callee param sees original node %s", a.Nodes[id])
		}
	}
}

func TestFigure8SameObjectTwiceMayCycle(t *testing.T) {
	a, p := analyze(t, `
class Base { }
remote class W {
	void bar(Base x, Base y) { }
	static void foo() {
		W w = new W();
		Base b = new Base();
		w.bar(b, b);
	}
}`)
	if !a.MayCycleFrom(argSets(a, p.RemoteSites[0])) {
		t.Fatal("same object passed twice must require cycle detection (Figure 8)")
	}
}

func TestFigure9SelfReferenceMayCycle(t *testing.T) {
	a, p := analyze(t, `
class Base { Base self; }
remote class W {
	void bar(Base x) { }
	static void foo() {
		W w = new W();
		Base b = new Base();
		b.self = b;
		w.bar(b);
	}
}`)
	if !a.MayCycleFrom(argSets(a, p.RemoteSites[0])) {
		t.Fatal("self reference must require cycle detection (Figure 9)")
	}
}

func TestLinkedListFlaggedCyclic(t *testing.T) {
	// The paper notes linked lists are (conservatively) misidentified
	// as having cycles: all nodes share one allocation site.
	a, p := analyze(t, `
class LinkedList {
	LinkedList Next;
	LinkedList(LinkedList n) { this.Next = n; }
}
remote class F {
	void send(LinkedList l) { }
	static void benchmark() {
		LinkedList head = null;
		for (int i = 0; i < 100; i = i + 1) {
			head = new LinkedList(head);
		}
		F f = new F();
		f.send(head);
	}
}`)
	if !a.MayCycleFrom(argSets(a, p.RemoteSites[0])) {
		t.Fatal("linked list should be conservatively flagged cyclic")
	}
}

func TestArrayBenchAcyclic(t *testing.T) {
	a, p := analyze(t, `
remote class F {
	void send(double[][] arr) { }
	static void benchmark() {
		double[][] arr = new double[16][16];
		F f = new F();
		f.send(arr);
	}
}`)
	if a.MayCycleFrom(argSets(a, p.RemoteSites[0])) {
		t.Fatal("2D double array misflagged as cyclic")
	}
}

func TestDistinctSiblingsNotCyclic(t *testing.T) {
	a, p := analyze(t, `
class Leaf { }
class Pair { Leaf l; Leaf r; }
remote class W {
	void take(Pair p) { }
	static void go() {
		Pair p = new Pair();
		p.l = new Leaf();
		p.r = new Leaf();
		W w = new W();
		w.take(p);
	}
}`)
	if a.MayCycleFrom(argSets(a, p.RemoteSites[0])) {
		t.Fatal("tree with distinct leaves misflagged as cyclic")
	}
}

func TestSharedLeafFlagged(t *testing.T) {
	a, p := analyze(t, `
class Leaf { }
class Pair { Leaf l; Leaf r; }
remote class W {
	void take(Pair p) { }
	static void go() {
		Pair p = new Pair();
		Leaf shared = new Leaf();
		p.l = shared;
		p.r = shared;
		W w = new W();
		w.take(p);
	}
}`)
	if !a.MayCycleFrom(argSets(a, p.RemoteSites[0])) {
		t.Fatal("shared leaf (DAG) must be conservatively flagged")
	}
}

func TestCloneSubgraphMirrored(t *testing.T) {
	a, p := analyze(t, `
class Inner { }
class Outer { Inner in; }
remote class W {
	void take(Outer o) { }
	static void go() {
		Outer o = new Outer();
		o.in = new Inner();
		W w = new W();
		w.take(o);
	}
}`)
	site := p.RemoteSites[0]
	callee := p.FuncOf[site.Callee]
	paramSet := a.PointsTo(callee.Params[1])
	if len(paramSet) != 1 {
		t.Fatalf("param set %s", paramSet)
	}
	for id := range paramSet {
		n := a.Nodes[id]
		if !n.IsClone() {
			t.Fatal("param node is not a clone")
		}
		inner := a.Field(id, "Outer.in")
		if len(inner) != 1 {
			t.Fatalf("clone field edges not mirrored: %s", inner)
		}
		for m := range inner {
			if !a.Nodes[m].IsClone() {
				t.Fatal("clone points to original child (graph not cloned deeply)")
			}
			if a.Nodes[m].Type.String() != "Inner" {
				t.Fatalf("mirrored child type %s", a.Nodes[m].Type)
			}
		}
	}
}

func TestStaticsTracked(t *testing.T) {
	a, p := analyze(t, `
class Data { }
class Holder {
	static Data d;
	static void set() {
		Holder.d = new Data();
	}
	static Data get() {
		return Holder.d;
	}
}`)
	seeds := a.GlobalSeeds()
	if len(seeds) != 1 {
		t.Fatalf("global seeds %s", seeds)
	}
	// get()'s return must include the global node.
	get := p.FuncOf[p.Lang.Classes["Holder"].MethodByName("get")]
	rvs := ir.ReturnValues(get)
	if len(rvs) != 1 {
		t.Fatal("get has no return")
	}
	got := a.PointsTo(rvs[0])
	for id := range seeds {
		if !got.Has(id) {
			t.Fatalf("get() return %s missing global node %d", got, id)
		}
	}
}

func TestInterproceduralFlow(t *testing.T) {
	a, p := analyze(t, `
class Box { Box inner; }
class Lib {
	static Box wrap(Box b) {
		Box w = new Box();
		w.inner = b;
		return w;
	}
	static void main() {
		Box leaf = new Box();
		Box w = Lib.wrap(leaf);
	}
}`)
	main := p.FuncOf[p.Lang.Classes["Lib"].MethodByName("main")]
	// Find w's value: the OpCall dst.
	var callDst *ir.Value
	main.Instrs(func(in *ir.Instr) bool {
		if in.Op == ir.OpCall && in.Dst != nil {
			callDst = in.Dst
		}
		return true
	})
	set := a.PointsTo(callDst)
	if len(set) != 1 {
		t.Fatalf("w points to %s, want exactly the wrapper alloc", set)
	}
	for id := range set {
		inner := a.Field(id, "Box.inner")
		if len(inner) != 1 {
			t.Fatalf("wrapper.inner = %s", inner)
		}
	}
}

func TestNodeSetOps(t *testing.T) {
	s := NodeSet{}
	if !s.Add(3) || s.Add(3) {
		t.Fatal("Add change reporting")
	}
	t2 := NodeSet{}
	t2.Add(3)
	t2.Add(5)
	if !s.AddAll(t2) || s.AddAll(t2) {
		t.Fatal("AddAll change reporting")
	}
	if got := s.String(); got != "{3,5}" {
		t.Fatalf("String = %s", got)
	}
	if !s.Has(5) || s.Has(4) {
		t.Fatal("Has")
	}
}
