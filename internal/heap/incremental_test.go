package heap

import (
	"os"
	"path/filepath"
	"testing"

	"cormi/internal/heap/gen"
)

// The incremental-mode invariants (ISSUE 10 satellite 3): an edit
// re-analyzes exactly the edited function's region (recursive SCCs and
// all), edge changes rewire the invalidation cone, stale or mangled
// cache entries read as misses, and every warm result is bit-identical
// to a cold run of the same program.

func cachedOpts(dir string, workers int) Options {
	o := DefaultOptions()
	o.CacheDir = dir
	o.Workers = workers
	return o
}

// run compiles a generated corpus and analyzes it with the given
// options, returning the merged analysis.
func run(t *testing.T, cfg gen.Config, opts Options) *Analysis {
	t.Helper()
	a, _ := analyzeOpts(t, gen.Generate(cfg).Source, opts)
	return a
}

// An edit to one member of a recursive pair must invalidate exactly
// that component — the whole SCC re-analyzes, everything else loads.
func TestIncrementalRecursiveSCCEdit(t *testing.T) {
	cfg := gen.Config{Seed: 11, Components: 4, FuncsPerComponent: 8}
	dir := t.TempDir()

	cold := run(t, cfg, cachedOpts(dir, 1))
	if cold.Cost.CacheMisses != 4 || cold.Cost.CacheHits != 0 {
		t.Fatalf("cold: hits=%d misses=%d, want 0/4", cold.Cost.CacheHits, cold.Cost.CacheMisses)
	}

	// C2App.f1 is one half of the component-2 recursive pair.
	cfg.Edits = map[string]int{"C2App.f1": 5000}
	warm := run(t, cfg, cachedOpts(dir, 1))
	if warm.Cost.CacheHits != 3 || warm.Cost.CacheMisses != 1 {
		t.Fatalf("warm: hits=%d misses=%d, want 3/1", warm.Cost.CacheHits, warm.Cost.CacheMisses)
	}
	// The component has 8 helpers + take + get bodied functions.
	if warm.Cost.FuncsAnalyzed != 10 {
		t.Fatalf("warm re-analyzed %d funcs, want 10 (the edited region)", warm.Cost.FuncsAnalyzed)
	}

	fresh := run(t, cfg, DefaultOptions())
	if warm.Fingerprint() != fresh.Fingerprint() {
		t.Fatal("warm incremental result differs from cold uncached run")
	}
}

// Editing a leaf must invalidate its callers' summaries (the hash
// propagates bottom-up), observed here as the whole region missing.
func TestIncrementalLeafEditInvalidatesCone(t *testing.T) {
	cfg := gen.Config{Seed: 13, Components: 3, FuncsPerComponent: 6}
	dir := t.TempDir()
	run(t, cfg, cachedOpts(dir, 1))

	cfg.Edits = map[string]int{"C0App.f5": 9000} // leaf of component 0
	warm := run(t, cfg, cachedOpts(dir, 1))
	if warm.Cost.CacheHits != 2 || warm.Cost.CacheMisses != 1 {
		t.Fatalf("warm: hits=%d misses=%d, want 2/1", warm.Cost.CacheHits, warm.Cost.CacheMisses)
	}
	fresh := run(t, cfg, DefaultOptions())
	if warm.Fingerprint() != fresh.Fingerprint() {
		t.Fatal("warm result differs from cold run of edited program")
	}
}

// Adding a call edge is a miss for the owning region; removing it
// again must hit the ORIGINAL cold entry still sitting in the cache.
func TestIncrementalEdgeAddRemove(t *testing.T) {
	base := gen.Config{Seed: 17, Components: 3, FuncsPerComponent: 8}
	dir := t.TempDir()
	run(t, base, cachedOpts(dir, 1))

	added := base
	added.ExtraCalls = map[string]bool{"C1App.f4": true}
	warm := run(t, added, cachedOpts(dir, 1))
	if warm.Cost.CacheHits != 2 || warm.Cost.CacheMisses != 1 {
		t.Fatalf("edge add: hits=%d misses=%d, want 2/1", warm.Cost.CacheHits, warm.Cost.CacheMisses)
	}
	fresh := run(t, added, DefaultOptions())
	if warm.Fingerprint() != fresh.Fingerprint() {
		t.Fatal("edge-add warm result differs from cold run")
	}

	back := run(t, base, cachedOpts(dir, 1))
	if back.Cost.CacheHits != 3 || back.Cost.CacheMisses != 0 {
		t.Fatalf("edge remove: hits=%d misses=%d, want 3/0", back.Cost.CacheHits, back.Cost.CacheMisses)
	}
	freshBase := run(t, base, DefaultOptions())
	if back.Fingerprint() != freshBase.Fingerprint() {
		t.Fatal("edge-remove warm result differs from cold run")
	}
}

// Precision options are part of the cache key: a run with different
// options must not load summaries produced under the old ones.
func TestIncrementalOptionsKeyedSeparately(t *testing.T) {
	cfg := gen.Config{Seed: 19, Components: 2, FuncsPerComponent: 6}
	dir := t.TempDir()
	run(t, cfg, cachedOpts(dir, 1))

	insens := InsensitiveOptions()
	insens.CacheDir = dir
	insens.Workers = 1
	a, _ := analyzeOpts(t, gen.Generate(cfg).Source, insens)
	if a.Cost.CacheHits != 0 {
		t.Fatalf("insensitive run hit %d sensitive summaries", a.Cost.CacheHits)
	}
	fresh, _ := analyzeOpts(t, gen.Generate(cfg).Source, InsensitiveOptions())
	if a.Fingerprint() != fresh.Fingerprint() {
		t.Fatal("insensitive cached run differs from uncached")
	}
}

// Mangled cache files must behave exactly like a cold start: all
// misses, identical result, and the bad entries rewritten.
func TestIncrementalCorruptedCacheIsColdStart(t *testing.T) {
	cfg := gen.Config{Seed: 23, Components: 3, FuncsPerComponent: 6}
	dir := t.TempDir()
	cold := run(t, cfg, cachedOpts(dir, 1))

	sums, err := filepath.Glob(filepath.Join(dir, "*.sum"))
	if err != nil || len(sums) != 3 {
		t.Fatalf("want 3 summary files, got %d (%v)", len(sums), err)
	}
	for i, path := range sums {
		raw, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		switch i % 3 {
		case 0: // truncate mid-payload
			raw = raw[:len(raw)/2]
		case 1: // flip a payload byte (checksum must catch it)
			raw[len(raw)/2] ^= 0x20
		case 2: // empty file
			raw = nil
		}
		if err := os.WriteFile(path, raw, 0o644); err != nil {
			t.Fatal(err)
		}
	}

	warm := run(t, cfg, cachedOpts(dir, 1))
	if warm.Cost.CacheHits != 0 || warm.Cost.CacheMisses != 3 {
		t.Fatalf("corrupted cache: hits=%d misses=%d, want 0/3", warm.Cost.CacheHits, warm.Cost.CacheMisses)
	}
	if warm.Fingerprint() != cold.Fingerprint() {
		t.Fatal("recovery run differs from original cold run")
	}

	// The rewritten entries must serve the next run.
	again := run(t, cfg, cachedOpts(dir, 1))
	if again.Cost.CacheHits != 3 {
		t.Fatalf("post-recovery run: hits=%d, want 3", again.Cost.CacheHits)
	}
}

// Worker count and cache state must never shift the result: sequential
// cold, parallel cold, and parallel warm all share one fingerprint.
func TestIncrementalWorkersBitIdentity(t *testing.T) {
	cfg := gen.Config{Seed: 29, Components: 6, FuncsPerComponent: 6}
	dir := t.TempDir()

	seq := run(t, cfg, DefaultOptions()) // Workers 0 = GOMAXPROCS, no cache
	one := run(t, cfg, cachedOpts(dir, 1))
	par := run(t, cfg, cachedOpts(t.TempDir(), 4))
	warmPar := run(t, cfg, cachedOpts(dir, 4))

	want := seq.Fingerprint()
	for name, a := range map[string]*Analysis{"workers=1 cold": one, "workers=4 cold": par, "workers=4 warm": warmPar} {
		if got := a.Fingerprint(); got != want {
			t.Errorf("%s: fingerprint %016x != sequential %016x", name, got, want)
		}
	}
	if warmPar.Cost.CacheHits != 6 {
		t.Fatalf("warm parallel run: hits=%d, want 6", warmPar.Cost.CacheHits)
	}
}
