package heap

import (
	"cormi/internal/ir"
	"cormi/internal/lang"
)

// mergeParts stitches the per-region analyses into the program-wide
// Analysis. Each part carries region-local node IDs (dense from 0)
// and context numbers (MergedCtx plus dense dedicated contexts from
// 1); the merge relocates both by cumulative offsets in region order.
// Because region order (minimum member function index) and each
// part's internal numbering are deterministic, the merged numbering
// is a pure function of the program — independent of worker count,
// scheduling, and cache state.
//
// No key can collide across parts: points-to keys are per-function
// SSA values, allocation keys are per-instruction, static fields
// couple all their users into one region, and clone contexts embed a
// callee qualified name or a program-unique remote site number, both
// owned by exactly one region.
func mergeParts(prog *ir.Program, opts Options, parts []*Analysis) *Analysis {
	a := &Analysis{
		Prog:            prog,
		Opts:            opts,
		funcs:           prog.Funcs,
		pts:             make(map[valCtx]NodeSet),
		ptsAll:          make(map[*ir.Value]NodeSet),
		globals:         make(map[*lang.FieldDecl]NodeSet),
		allocNode:       make(map[allocKey]NodeID),
		cloneMemo:       make(map[cloneKey]NodeID),
		clonePairs:      make(map[clonePair]NodeID),
		ctxsOf:          map[*ir.Func][]Ctx{},
		ctxOfCall:       map[*ir.Instr]Ctx{},
		recursive:       map[*ir.Func]bool{},
		hasCaller:       map[*ir.Func]bool{},
		BudgetFallbacks: map[string]int{},
		ctxSite:         []*ir.Instr{nil},
	}
	nodeBase, ctxBase := 0, 0
	for _, p := range parts {
		remapCtx := func(c Ctx) Ctx {
			if c == MergedCtx {
				return MergedCtx
			}
			return c + Ctx(ctxBase)
		}
		remapNode := func(id NodeID) NodeID { return id + NodeID(nodeBase) }
		remapSet := func(s NodeSet) NodeSet {
			out := make(NodeSet, len(s))
			for id := range s {
				out[remapNode(id)] = struct{}{}
			}
			return out
		}
		// The parts are private to this merge (freshly solved or
		// freshly decoded), so their nodes are relocated in place.
		for _, n := range p.Nodes {
			n.ID = remapNode(n.ID)
			n.Logical += nodeBase
			if n.CloneOf >= 0 {
				n.CloneOf = remapNode(n.CloneOf)
			}
			n.Ctx = remapCtx(n.Ctx)
			a.Nodes = append(a.Nodes, n)
		}
		for _, m := range p.fields {
			nm := make(map[string]NodeSet, len(m))
			for key, s := range m {
				nm[key] = remapSet(s)
			}
			a.fields = append(a.fields, nm)
		}
		for k, s := range p.pts {
			a.pts[valCtx{k.v, remapCtx(k.c)}] = remapSet(s)
		}
		for v, s := range p.ptsAll {
			a.ptsAll[v] = remapSet(s)
		}
		for fd, s := range p.globals {
			a.globals[fd] = remapSet(s)
		}
		for k, id := range p.allocNode {
			a.allocNode[allocKey{k.in, remapCtx(k.c)}] = remapNode(id)
		}
		for k, id := range p.cloneMemo {
			a.cloneMemo[k] = remapNode(id)
		}
		for k, id := range p.clonePairs {
			a.clonePairs[clonePair{ctx: k.ctx, orig: remapNode(k.orig)}] = remapNode(id)
		}
		a.ctxSite = append(a.ctxSite, p.ctxSite[1:]...)
		for f, cs := range p.ctxsOf {
			out := make([]Ctx, len(cs))
			for i, c := range cs {
				out[i] = remapCtx(c)
			}
			a.ctxsOf[f] = out
		}
		for in, c := range p.ctxOfCall {
			a.ctxOfCall[in] = remapCtx(c)
		}
		for f, r := range p.recursive {
			if r {
				a.recursive[f] = true
			}
		}
		for f, h := range p.hasCaller {
			if h {
				a.hasCaller[f] = true
			}
		}
		for name, n := range p.BudgetFallbacks {
			a.BudgetFallbacks[name] += n
		}
		a.StrongKills += p.StrongKills
		if p.Iterations > a.Iterations {
			a.Iterations = p.Iterations
		}
		nodeBase += len(p.Nodes)
		ctxBase += len(p.ctxSite) - 1
	}
	return a
}
