package heap

import (
	"fmt"
	"sort"
	"strings"
)

// MayCycleFrom implements the conservative cycle check of §3.2: the
// heap graphs rooted at all arguments of a call are traversed with one
// shared seen-set, and any allocation number encountered twice flags a
// potential cycle. Passing the same object twice (Figure 8), a
// self-reference (Figure 9) and a linked list all trip the check;
// trees and nested arrays do not.
func (a *Analysis) MayCycleFrom(rootSets []NodeSet) bool {
	return a.CycleWitnessFrom(rootSets) != nil
}

// Witness kinds. A "cycle" witness repeats a node along its own DFS
// path (a true back edge: traversal without a cycle table would not
// terminate). A "shared" witness reaches the same node along two
// distinct paths (a DAG, e.g. a diamond over ONE allocation): safe to
// traverse, but the cycle table is still required to preserve object
// identity on the wire, so both kinds trip MayCycleFrom.
const (
	WitnessCycle  = "cycle"
	WitnessShared = "shared"
)

// CycleWitness explains why MayCycleFrom flagged a root set: the first
// allocation encountered twice, how it repeated (Kind), and the two
// field paths that reached it. A nil witness means the traversal
// proved the graphs repeat-free and the cycle table can be elided.
type CycleWitness struct {
	Node      NodeID   // repeated heap node
	Alloc     int      // its logical allocation number (Figure 2 numbering)
	Kind      string   // WitnessCycle or WitnessShared
	FirstPath []string // root+field labels of the first encounter
	Path      []string // root+field labels of the repeat encounter
}

func (w *CycleWitness) String() string {
	if w == nil {
		return "acyclic"
	}
	return fmt.Sprintf("%s: allocation %d reached via %s and again via %s",
		w.Kind, w.Alloc, strings.Join(w.FirstPath, ""), strings.Join(w.Path, ""))
}

// edgeLabel renders one field key as a path segment: "Foo.bar" becomes
// ".bar", the array-element key stays "[]".
func edgeLabel(k string) string {
	if k == ElemKey {
		return "[]"
	}
	if i := strings.IndexByte(k, '.'); i >= 0 {
		return "." + k[i+1:]
	}
	return "." + k
}

// CycleWitnessFrom runs the MayCycleFrom traversal and materializes
// the denial evidence: the exact same walk (one shared seen-set over
// all root sets, deterministic order), but recording the path to each
// node so the first repeat can be reported with both routes to it.
func (a *Analysis) CycleWitnessFrom(rootSets []NodeSet) *CycleWitness {
	first := map[NodeID][]string{} // path at first visit
	onPath := map[NodeID]bool{}    // currently on the DFS stack
	var path []string
	var w *CycleWitness
	var visit func(NodeID)
	visit = func(n NodeID) {
		if w != nil {
			return
		}
		if prior, ok := first[n]; ok {
			kind := WitnessShared
			if onPath[n] {
				kind = WitnessCycle
			}
			w = &CycleWitness{
				Node:      n,
				Alloc:     a.Nodes[n].Logical,
				Kind:      kind,
				FirstPath: append([]string(nil), prior...),
				Path:      append([]string(nil), path...),
			}
			return
		}
		first[n] = append([]string(nil), path...)
		onPath[n] = true
		keys := make([]string, 0, len(a.fields[n]))
		for k := range a.fields[n] {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			for _, m := range a.fields[n][k].Sorted() {
				path = append(path, edgeLabel(k))
				visit(m)
				path = path[:len(path)-1]
				if w != nil {
					return
				}
			}
		}
		onPath[n] = false
	}
	for i, roots := range rootSets {
		for _, n := range roots.Sorted() {
			path = append(path, fmt.Sprintf("root%d", i))
			visit(n)
			path = path[:len(path)-1]
			if w != nil {
				return w
			}
		}
	}
	return nil
}

// DumpGraph renders the subgraph reachable from roots in the style of
// Figure 2: one line per node with its allocation numbers and type,
// then its field edges.
func (a *Analysis) DumpGraph(roots NodeSet) string {
	reach := a.Reach(roots)
	var b strings.Builder
	for _, id := range reach.Sorted() {
		n := a.Nodes[id]
		fmt.Fprintf(&b, "Allocation %d", n.Logical)
		if n.IsClone() {
			fmt.Fprintf(&b, " (physical %d, clone via %s)", n.Physical, n.CloneCtx)
		}
		fmt.Fprintf(&b, ": %s\n", n.Type)
		keys := make([]string, 0, len(a.fields[id]))
		for k := range a.fields[id] {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			set := a.fields[id][k]
			if len(set) == 0 {
				continue
			}
			label := k
			if i := strings.IndexByte(k, '.'); i >= 0 {
				label = "." + k[i+1:]
			}
			fmt.Fprintf(&b, "  %q -> %s\n", label, set)
		}
	}
	return b.String()
}
