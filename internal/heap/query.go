package heap

import (
	"fmt"
	"sort"
	"strings"
)

// MayCycleFrom implements the conservative cycle check of §3.2: the
// heap graphs rooted at all arguments of a call are traversed with one
// shared seen-set, and any allocation number encountered twice flags a
// potential cycle. Passing the same object twice (Figure 8), a
// self-reference (Figure 9) and a linked list all trip the check;
// trees and nested arrays do not.
func (a *Analysis) MayCycleFrom(rootSets []NodeSet) bool {
	seen := NodeSet{}
	may := false
	var visit func(NodeID)
	visit = func(n NodeID) {
		if may {
			return
		}
		if seen.Has(n) {
			may = true
			return
		}
		seen.Add(n)
		// Deterministic order keeps diagnostics stable.
		keys := make([]string, 0, len(a.fields[n]))
		for k := range a.fields[n] {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			for _, m := range a.fields[n][k].Sorted() {
				visit(m)
			}
		}
	}
	for _, roots := range rootSets {
		for _, n := range roots.Sorted() {
			visit(n)
		}
	}
	return may
}

// DumpGraph renders the subgraph reachable from roots in the style of
// Figure 2: one line per node with its allocation numbers and type,
// then its field edges.
func (a *Analysis) DumpGraph(roots NodeSet) string {
	reach := a.Reach(roots)
	var b strings.Builder
	for _, id := range reach.Sorted() {
		n := a.Nodes[id]
		fmt.Fprintf(&b, "Allocation %d", n.Logical)
		if n.IsClone() {
			fmt.Fprintf(&b, " (physical %d, clone via %s)", n.Physical, n.CloneCtx)
		}
		fmt.Fprintf(&b, ": %s\n", n.Type)
		keys := make([]string, 0, len(a.fields[id]))
		for k := range a.fields[id] {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			set := a.fields[id][k]
			if len(set) == 0 {
				continue
			}
			label := k
			if i := strings.IndexByte(k, '.'); i >= 0 {
				label = "." + k[i+1:]
			}
			fmt.Fprintf(&b, "  %q -> %s\n", label, set)
		}
	}
	return b.String()
}
