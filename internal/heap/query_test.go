package heap

import (
	"strings"
	"testing"
)

func TestCloneSetOfAndReach(t *testing.T) {
	a, p := analyze(t, `
class Inner { }
class Outer { Inner in; }
remote class W {
	void take(Outer o) { }
	static void go() {
		Outer o = new Outer();
		o.in = new Inner();
		W w = new W();
		w.take(o);
	}
}`)
	site := p.RemoteSites[0]
	argNodes := a.PointsTo(site.Args[1])
	clones := a.CloneSetOf(ArgCtx(site.Callee), argNodes)
	if len(clones) != 1 {
		t.Fatalf("clones = %s", clones)
	}
	// Reach from the clone covers the mirrored child.
	reach := a.Reach(clones)
	if len(reach) != 2 {
		t.Fatalf("clone reach = %s", reach)
	}
	// An unrelated context yields nothing.
	if got := a.CloneSetOf("arg:Nothing.here", argNodes); len(got) != 0 {
		t.Fatalf("bogus ctx clones = %s", got)
	}
	// Node stringers mention clone provenance.
	for id := range clones {
		s := a.Node(id).String()
		if !strings.Contains(s, "clone-of") {
			t.Fatalf("clone node string %q", s)
		}
		if !a.Node(id).IsClone() {
			t.Fatal("IsClone false for clone")
		}
	}
	// DumpGraph over clones renders the physical provenance.
	dump := a.DumpGraph(clones)
	if !strings.Contains(dump, "clone via arg:W.take") {
		t.Fatalf("clone dump:\n%s", dump)
	}
}

func TestGlobalOfSingleField(t *testing.T) {
	a, p := analyze(t, `
class Data { }
class H {
	static Data d;
	static void set() { H.d = new Data(); }
}`)
	fd := p.Lang.Classes["H"].FieldByName("d")
	if fd == nil {
		t.Fatal("field missing")
	}
	if got := a.Global(fd); len(got) != 1 {
		t.Fatalf("Global(d) = %s", got)
	}
}

func TestMayCycleEmptyRoots(t *testing.T) {
	a, _ := analyze(t, `class A { }`)
	if a.MayCycleFrom(nil) || a.MayCycleFrom([]NodeSet{{}}) {
		t.Fatal("empty roots flagged cyclic")
	}
}

func TestIterationsReported(t *testing.T) {
	a, _ := analyze(t, `
class A {
	static void f() {
		A x = new A();
	}
}`)
	if a.Iterations < 1 {
		t.Fatalf("iterations = %d", a.Iterations)
	}
}
