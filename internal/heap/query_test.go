package heap

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"testing"

	"cormi/internal/ir"
)

func TestCloneSetOfAndReach(t *testing.T) {
	a, p := analyze(t, `
class Inner { }
class Outer { Inner in; }
remote class W {
	void take(Outer o) { }
	static void go() {
		Outer o = new Outer();
		o.in = new Inner();
		W w = new W();
		w.take(o);
	}
}`)
	site := p.RemoteSites[0]
	argNodes := a.PointsTo(site.Args[1])
	clones := a.CloneSetOf(ArgCtx(site.Callee), argNodes)
	if len(clones) != 1 {
		t.Fatalf("clones = %s", clones)
	}
	// Reach from the clone covers the mirrored child.
	reach := a.Reach(clones)
	if len(reach) != 2 {
		t.Fatalf("clone reach = %s", reach)
	}
	// An unrelated context yields nothing.
	if got := a.CloneSetOf("arg:Nothing.here", argNodes); len(got) != 0 {
		t.Fatalf("bogus ctx clones = %s", got)
	}
	// Node stringers mention clone provenance.
	for id := range clones {
		s := a.Node(id).String()
		if !strings.Contains(s, "clone-of") {
			t.Fatalf("clone node string %q", s)
		}
		if !a.Node(id).IsClone() {
			t.Fatal("IsClone false for clone")
		}
	}
	// DumpGraph over clones renders the physical provenance.
	dump := a.DumpGraph(clones)
	if !strings.Contains(dump, "clone via arg:W.take") {
		t.Fatalf("clone dump:\n%s", dump)
	}
}

func TestGlobalOfSingleField(t *testing.T) {
	a, p := analyze(t, `
class Data { }
class H {
	static Data d;
	static void set() { H.d = new Data(); }
}`)
	fd := p.Lang.Classes["H"].FieldByName("d")
	if fd == nil {
		t.Fatal("field missing")
	}
	if got := a.Global(fd); len(got) != 1 {
		t.Fatalf("Global(d) = %s", got)
	}
}

func TestDiamondDistinctAllocationsNotFlagged(t *testing.T) {
	// The diamond-sharing case: the CLASS graph is a diamond (Top
	// reaches D via two fields), but each field holds its own
	// allocation, so the object graph is a tree. The check must not
	// trip — only repeated allocations require the cycle table, not
	// repeated classes.
	a, p := analyze(t, `
class D { }
class Mid { D d; }
class Top { Mid a; Mid b; }
remote class W {
	void take(Top t) { }
	static void go() {
		Top t = new Top();
		t.a = new Mid();
		t.b = new Mid();
		t.a.d = new D();
		t.b.d = new D();
		W w = new W();
		w.take(t);
	}
}`)
	sets := argSets(a, p.RemoteSites[0])
	if w := a.CycleWitnessFrom(sets); w != nil {
		t.Fatalf("diamond over distinct allocations flagged: %v", w)
	}
	if a.MayCycleFrom(sets) {
		t.Fatal("MayCycleFrom disagrees with nil witness")
	}
}

func TestCycleWitnessKinds(t *testing.T) {
	// A genuinely shared single allocation is a DAG: witness kind
	// "shared" (identity preservation, not termination, is at stake).
	a, p := analyze(t, `
class Leaf { }
class Pair { Leaf l; Leaf r; }
remote class W {
	void take(Pair p) { }
	static void go() {
		Pair p = new Pair();
		Leaf shared = new Leaf();
		p.l = shared;
		p.r = shared;
		W w = new W();
		w.take(p);
	}
}`)
	w := a.CycleWitnessFrom(argSets(a, p.RemoteSites[0]))
	if w == nil || w.Kind != WitnessShared {
		t.Fatalf("shared leaf witness = %v, want kind %q", w, WitnessShared)
	}
	if len(w.FirstPath) == 0 || len(w.Path) == 0 ||
		!strings.HasPrefix(w.FirstPath[0], "root") || !strings.HasPrefix(w.Path[0], "root") {
		t.Fatalf("witness paths malformed: %v / %v", w.FirstPath, w.Path)
	}
	if strings.Join(w.FirstPath, "") == strings.Join(w.Path, "") {
		t.Fatalf("witness paths identical: %v", w.Path)
	}

	// A self-reference is a true back edge: kind "cycle", and the
	// repeat path names the field that closes the loop.
	a2, p2 := analyze(t, `
class Base { Base self; }
remote class W {
	void bar(Base x) { }
	static void foo() {
		W w = new W();
		Base b = new Base();
		b.self = b;
		w.bar(b);
	}
}`)
	w2 := a2.CycleWitnessFrom(argSets(a2, p2.RemoteSites[0]))
	if w2 == nil || w2.Kind != WitnessCycle {
		t.Fatalf("self reference witness = %v, want kind %q", w2, WitnessCycle)
	}
	if got := strings.Join(w2.Path, ""); !strings.Contains(got, ".self") {
		t.Fatalf("cycle path %q does not name the closing field", got)
	}
	if w2.Alloc != a2.Nodes[w2.Node].Logical {
		t.Fatalf("witness alloc %d != node logical %d", w2.Alloc, a2.Nodes[w2.Node].Logical)
	}
}

// TestCycleWitnessPropertyRandomGraphs is the satellite property test:
// random binary trees of distinct allocations never trip the check;
// adding one extra edge trips it with a witness whose kind matches the
// graph shape (back edge to an ancestor-or-self → "cycle", second
// parent elsewhere → "shared") and whose repeated node is the target
// of that extra edge.
func TestCycleWitnessPropertyRandomGraphs(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	type slot struct {
		from  int
		field string
	}
	for iter := 0; iter < 60; iter++ {
		k := 2 + rng.Intn(6)
		parent := make([]int, k)
		free := []slot{{0, "a"}, {0, "b"}}
		type edge struct {
			from  int
			field string
			to    int
		}
		var edges []edge
		for i := 1; i < k; i++ {
			j := rng.Intn(len(free))
			s := free[j]
			free = append(free[:j], free[j+1:]...)
			edges = append(edges, edge{s.from, s.field, i})
			parent[i] = s.from
			free = append(free, slot{i, "a"}, slot{i, "b"})
		}

		mutate := iter%2 == 1
		var extraTo int
		wantKind := ""
		if mutate {
			j := rng.Intn(len(free))
			s := free[j]
			extraTo = rng.Intn(k)
			edges = append(edges, edge{s.from, s.field, extraTo})
			// Kind prediction: extraTo ancestor-or-self of the edge
			// source means a back edge (cycle); otherwise a second
			// parent (shared).
			wantKind = WitnessShared
			for u := s.from; ; u = parent[u] {
				if u == extraTo {
					wantKind = WitnessCycle
					break
				}
				if u == 0 {
					break
				}
			}
		}

		var b strings.Builder
		b.WriteString("class N { N a; N b; }\nremote class W {\n\tvoid take(N x) { }\n\tstatic void go() {\n")
		for i := 0; i < k; i++ {
			fmt.Fprintf(&b, "\t\tN n%d = new N();\n", i)
		}
		for _, e := range edges {
			fmt.Fprintf(&b, "\t\tn%d.%s = n%d;\n", e.from, e.field, e.to)
		}
		b.WriteString("\t\tW w = new W();\n\t\tw.take(n0);\n\t}\n}\n")

		a, p := analyze(t, b.String())
		sets := argSets(a, p.RemoteSites[0])
		w := a.CycleWitnessFrom(sets)
		if got := a.MayCycleFrom(sets); got != (w != nil) {
			t.Fatalf("iter %d: MayCycleFrom=%v but witness=%v", iter, got, w)
		}
		if !mutate {
			if w != nil {
				t.Fatalf("iter %d: tree flagged: %v\n%s", iter, w, b.String())
			}
			continue
		}
		if w == nil {
			t.Fatalf("iter %d: extra edge to n%d not flagged\n%s", iter, extraTo, b.String())
		}
		if w.Kind != wantKind {
			t.Fatalf("iter %d: witness kind %q, want %q (%v)\n%s", iter, w.Kind, wantKind, w, b.String())
		}
		// The repeated allocation must be the extra edge's target: map
		// node indices to NodeIDs via the N allocations in logical
		// (program) order.
		var nIDs []NodeID
		for _, in := range p.AllocSites {
			if in != nil && in.Op == ir.OpNew && in.Class != nil && in.Class.Name == "N" {
				if id, ok := a.NodeOfAlloc(in, MergedCtx); ok {
					nIDs = append(nIDs, id)
				}
			}
		}
		sort.Slice(nIDs, func(i, j int) bool {
			return a.Nodes[nIDs[i]].Logical < a.Nodes[nIDs[j]].Logical
		})
		if len(nIDs) != k {
			t.Fatalf("iter %d: found %d N allocations, want %d", iter, len(nIDs), k)
		}
		if w.Node != nIDs[extraTo] {
			t.Fatalf("iter %d: witness node %d (alloc %d), want n%d (node %d)\n%s",
				iter, w.Node, w.Alloc, extraTo, nIDs[extraTo], b.String())
		}
	}
}

func TestMayCycleEmptyRoots(t *testing.T) {
	a, _ := analyze(t, `class A { }`)
	if a.MayCycleFrom(nil) || a.MayCycleFrom([]NodeSet{{}}) {
		t.Fatal("empty roots flagged cyclic")
	}
}

func TestIterationsReported(t *testing.T) {
	a, _ := analyze(t, `
class A {
	static void f() {
		A x = new A();
	}
}`)
	if a.Iterations < 1 {
		t.Fatalf("iterations = %d", a.Iterations)
	}
}
