package sched

// The persistent summary cache: one file per analysis region under a
// `.cormi-cache` directory, named by the region's content key. The
// file framing is deliberately paranoid — magic, length prefix, and a
// trailing FNV-1a checksum over the payload — and every violation is
// reported as a plain miss: a corrupted, truncated, or foreign file
// can cost a re-analysis but never an incorrect one. The payload
// itself is opaque here; internal/heap's summary codec owns it (and
// re-validates everything structurally on decode).

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
)

// cacheMagic brands summary files; bump with summaryFormat.
var cacheMagic = []byte("CORMISC1")

// maxSummaryBytes caps a plausible summary file. Anything larger is
// rejected unread (a length-prefix bomb, not a summary).
const maxSummaryBytes = 1 << 28

// Cache is a summary store rooted at one directory. The zero value is
// unusable; Open creates the directory eagerly so Store failures
// surface once, not per entry.
type Cache struct {
	dir string
	ok  bool
}

// Open returns a cache rooted at dir, creating it if needed. An
// unusable directory yields a cache whose Load always misses and
// whose Store is a no-op — the analysis degrades to cold, never
// fails.
func Open(dir string) *Cache {
	c := &Cache{dir: dir}
	if err := os.MkdirAll(dir, 0o755); err == nil {
		c.ok = true
	}
	return c
}

// Dir returns the cache root.
func (c *Cache) Dir() string { return c.dir }

func (c *Cache) path(key uint64) string {
	return filepath.Join(c.dir, fmt.Sprintf("%016x.sum", key))
}

// Load returns the payload stored under key, or ok=false on any
// problem whatsoever (absent, unreadable, short, bad magic, bad
// length, bad checksum).
func (c *Cache) Load(key uint64) ([]byte, bool) {
	if c == nil || !c.ok {
		return nil, false
	}
	data, err := os.ReadFile(c.path(key))
	if err != nil {
		return nil, false
	}
	const header = 8 + 8 // magic + payload length
	if len(data) < header+8 {
		return nil, false
	}
	for i, b := range cacheMagic {
		if data[i] != b {
			return nil, false
		}
	}
	n := binary.BigEndian.Uint64(data[8:16])
	if n > maxSummaryBytes || int(n) != len(data)-header-8 {
		return nil, false
	}
	payload := data[header : header+int(n)]
	sum := binary.BigEndian.Uint64(data[header+int(n):])
	if HashBytes(payload) != sum {
		return nil, false
	}
	return payload, true
}

// Store writes payload under key, atomically (temp file + rename) so
// a crashed writer leaves either the old entry or none — never a
// torn file. Errors are swallowed: the cache is an accelerator, not a
// dependency.
func (c *Cache) Store(key uint64, payload []byte) {
	if c == nil || !c.ok || len(payload) > maxSummaryBytes {
		return
	}
	buf := make([]byte, 0, len(cacheMagic)+16+len(payload))
	buf = append(buf, cacheMagic...)
	buf = binary.BigEndian.AppendUint64(buf, uint64(len(payload)))
	buf = append(buf, payload...)
	buf = binary.BigEndian.AppendUint64(buf, HashBytes(payload))
	tmp, err := os.CreateTemp(c.dir, "*.sum.tmp")
	if err != nil {
		return
	}
	name := tmp.Name()
	_, werr := tmp.Write(buf)
	cerr := tmp.Close()
	if werr != nil || cerr != nil {
		os.Remove(name)
		return
	}
	if err := os.Rename(name, c.path(key)); err != nil {
		os.Remove(name)
	}
}

// Manifest is the informational dependency-graph sidecar
// (cormi-cache/1): which functions each cached region covers and the
// hashes that key it. Nothing reads it back — invalidation always
// recomputes keys from the current program — but it makes `.cormi-
// cache` auditable and gives the incremental tests a stable record to
// assert against.
type Manifest struct {
	Schema     string              `json:"schema"`
	Components []ManifestComponent `json:"components"`
}

// ManifestComponent describes one region.
type ManifestComponent struct {
	Key   string         `json:"key"`
	Funcs []ManifestFunc `json:"funcs"`
}

// ManifestFunc is one member function's hash record.
type ManifestFunc struct {
	Name        string `json:"name"`
	IRHash      string `json:"ir_hash"`
	SummaryHash string `json:"summary_hash"`
}

// ManifestSchema identifies the manifest format.
const ManifestSchema = "cormi-cache/1"

// WriteManifest renders the plan's current dependency graph to
// manifest.json in the cache directory (best effort).
func (c *Cache) WriteManifest(p *Plan, hs *Hashes) {
	if c == nil || !c.ok {
		return
	}
	m := Manifest{Schema: ManifestSchema}
	for ci, comp := range p.Components {
		mc := ManifestComponent{Key: fmt.Sprintf("%016x", hs.Component[ci])}
		for _, f := range comp.Funcs {
			mc.Funcs = append(mc.Funcs, ManifestFunc{
				Name:        p.Funcs[f].Method.QualifiedName(),
				IRHash:      fmt.Sprintf("%016x", hs.IR[f]),
				SummaryHash: fmt.Sprintf("%016x", hs.Summary[f]),
			})
		}
		m.Components = append(m.Components, mc)
	}
	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return
	}
	tmp, err := os.CreateTemp(c.dir, "manifest.*.tmp")
	if err != nil {
		return
	}
	name := tmp.Name()
	_, werr := tmp.Write(append(data, '\n'))
	cerr := tmp.Close()
	if werr != nil || cerr != nil {
		os.Remove(name)
		return
	}
	if err := os.Rename(name, filepath.Join(c.dir, "manifest.json")); err != nil {
		os.Remove(name)
	}
}
