// Package sched is the scalability layer of the heap analysis
// (DESIGN.md §16): it condenses the program call graph into strongly
// connected components, groups SCCs into independent analysis regions
// (weakly connected components of the call + shared-static coupling
// graph), orders each region's functions into bottom-up
// reverse-topological waves, and provides the bounded worker pool and
// the persistent summary cache the analysis driver schedules over.
//
// The partitioning invariant the whole layer rests on: the points-to
// constraint graph never crosses a region boundary. Facts flow between
// two functions only through a call edge (arguments down, returns up,
// RMI clones both ways) or through a shared static field, and both
// edge kinds are region edges by construction. Regions can therefore
// be solved concurrently with zero shared mutable state, and a cached
// region summary can be reused verbatim when nothing inside the
// region changed — which is what makes parallel and incremental runs
// bit-identical to a sequential cold run.
package sched

import (
	"sort"

	"cormi/internal/ir"
	"cormi/internal/lang"
)

// Plan is the precomputed schedule of one whole-program analysis:
// the condensed call graph, the independent regions, and the content
// hashes that key the summary cache.
type Plan struct {
	Prog  *ir.Program
	Funcs []*ir.Func
	Index map[*ir.Func]int

	// CallEdges is the directed (caller -> bodied callee) adjacency,
	// direct and remote calls combined, deduplicated and sorted.
	CallEdges [][]int
	// Recursive marks functions on a direct-call cycle (SCCs of size
	// > 1 over direct edges only, plus direct self-calls) — exactly
	// the bounded-context rule's recursion predicate.
	Recursive []bool

	// SCCOf/SCCs is the condensation of the combined call graph;
	// SCC ids are assigned in order of each SCC's minimum function
	// index, so they are deterministic.
	SCCOf []int
	SCCs  [][]int
	// WaveOf is each SCC's bottom-up wave: 0 for SCCs with no bodied
	// callees outside themselves, else 1 + max over callee SCCs.
	WaveOf []int
	// Waves is the wave count (max depth + 1; 0 for an empty program).
	Waves int

	// Components are the independent analysis regions in deterministic
	// order (by minimum member function index).
	Components []Component
}

// Component is one independent analysis region.
type Component struct {
	// Funcs are the member function indices in program order.
	Funcs []int
	// Order are the same members in solve order: bottom-up by SCC
	// wave, ties broken by SCC minimum index, then program order
	// within an SCC.
	Order []int
}

// BuildPlan analyzes prog's call structure. It is purely syntactic
// (no points-to facts involved) and deterministic.
func BuildPlan(prog *ir.Program) *Plan {
	n := len(prog.Funcs)
	p := &Plan{
		Prog:  prog,
		Funcs: prog.Funcs,
		Index: make(map[*ir.Func]int, n),
	}
	for i, f := range prog.Funcs {
		p.Index[f] = i
	}

	direct := make([][]int, n)
	combined := make([][]int, n)
	selfDirect := make([]bool, n)
	// Static coupling: every function touching a static field joins
	// the field's group; groups merge into components below.
	staticUsers := map[*lang.FieldDecl][]int{}
	for i, f := range prog.Funcs {
		for _, b := range f.Blocks {
			for _, in := range b.Instrs {
				switch in.Op {
				case ir.OpCall, ir.OpRemoteCall:
					callee, ok := prog.FuncOf[in.Callee]
					if !ok {
						continue // bodiless method: no constraints
					}
					j := p.Index[callee]
					combined[i] = append(combined[i], j)
					if in.Op == ir.OpCall {
						direct[i] = append(direct[i], j)
						if i == j {
							selfDirect[i] = true
						}
					}
				case ir.OpLoadStatic, ir.OpStoreStatic:
					staticUsers[in.Field] = append(staticUsers[in.Field], i)
				}
			}
		}
	}
	for i := range combined {
		direct[i] = dedupSorted(direct[i])
		combined[i] = dedupSorted(combined[i])
	}
	p.CallEdges = combined

	// Recursion: direct-call cycles only (matches the context
	// prepass's bounded-context rule).
	p.Recursive = make([]bool, n)
	for _, scc := range tarjan(n, direct) {
		if len(scc) > 1 {
			for _, f := range scc {
				p.Recursive[f] = true
			}
		}
	}
	for i, s := range selfDirect {
		if s {
			p.Recursive[i] = true
		}
	}

	// Condensation of the combined graph, with SCC ids renumbered by
	// minimum member index so downstream ordering is deterministic.
	raw := tarjan(n, combined)
	sort.Slice(raw, func(a, b int) bool { return minOf(raw[a]) < minOf(raw[b]) })
	p.SCCs = make([][]int, len(raw))
	p.SCCOf = make([]int, n)
	for id, scc := range raw {
		sort.Ints(scc)
		p.SCCs[id] = scc
		for _, f := range scc {
			p.SCCOf[f] = id
		}
	}

	// Bottom-up waves over the SCC DAG: wave(S) = 0 for leaves (no
	// bodied callees outside S), else 1 + max over callee SCCs. The
	// DAG is walked in reverse dependency order via an explicit
	// stack (no recursion: chains thousands of functions deep must
	// not overflow the goroutine stack).
	p.WaveOf = make([]int, len(p.SCCs))
	sccCallees := make([][]int, len(p.SCCs))
	for id, scc := range p.SCCs {
		var out []int
		for _, f := range scc {
			for _, g := range combined[f] {
				if t := p.SCCOf[g]; t != id {
					out = append(out, t)
				}
			}
		}
		sccCallees[id] = dedupSorted(out)
	}
	waveDone := make([]bool, len(p.SCCs))
	for id := range p.SCCs {
		if waveDone[id] {
			continue
		}
		stack := []int{id}
		for len(stack) > 0 {
			s := stack[len(stack)-1]
			if waveDone[s] {
				stack = stack[:len(stack)-1]
				continue
			}
			ready := true
			for _, t := range sccCallees[s] {
				if !waveDone[t] {
					stack = append(stack, t)
					ready = false
				}
			}
			if !ready {
				continue
			}
			w := 0
			for _, t := range sccCallees[s] {
				if p.WaveOf[t]+1 > w {
					w = p.WaveOf[t] + 1
				}
			}
			p.WaveOf[s] = w
			waveDone[s] = true
			stack = stack[:len(stack)-1]
			if w+1 > p.Waves {
				p.Waves = w + 1
			}
		}
	}

	p.buildComponents(staticUsers)
	return p
}

// buildComponents unions functions connected by call edges (either
// direction) or by use of the same static field, then materializes
// the regions in deterministic order.
func (p *Plan) buildComponents(staticUsers map[*lang.FieldDecl][]int) {
	n := len(p.Funcs)
	uf := newUnionFind(n)
	for i, outs := range p.CallEdges {
		for _, j := range outs {
			uf.union(i, j)
		}
	}
	for _, users := range staticUsers {
		for _, u := range users[1:] {
			uf.union(users[0], u)
		}
	}
	members := map[int][]int{}
	for i := 0; i < n; i++ {
		r := uf.find(i)
		members[r] = append(members[r], i)
	}
	roots := make([]int, 0, len(members))
	for r := range members {
		roots = append(roots, r)
	}
	// members lists are built in ascending i, so members[r][0] is the
	// minimum function index of the region.
	sort.Slice(roots, func(a, b int) bool { return members[roots[a]][0] < members[roots[b]][0] })
	for _, r := range roots {
		c := Component{Funcs: members[r]}
		c.Order = append([]int(nil), c.Funcs...)
		sort.Slice(c.Order, func(a, b int) bool {
			fa, fb := c.Order[a], c.Order[b]
			sa, sb := p.SCCOf[fa], p.SCCOf[fb]
			if p.WaveOf[sa] != p.WaveOf[sb] {
				return p.WaveOf[sa] < p.WaveOf[sb]
			}
			if sa != sb {
				return sa < sb
			}
			return fa < fb
		})
		p.Components = append(p.Components, c)
	}
}

// tarjan computes SCCs of the directed graph iteratively (explicit
// stacks — the generated corpora contain call chains far deeper than
// a comfortable recursion depth). SCC order is the standard Tarjan
// pop order; callers renumber it deterministically.
func tarjan(n int, adj [][]int) [][]int {
	const unvisited = -1
	index := make([]int, n)
	low := make([]int, n)
	onStack := make([]bool, n)
	for i := range index {
		index[i] = unvisited
	}
	var (
		sccs    [][]int
		stack   []int
		next    int
		callers []int // DFS frames: node
		edgePos []int // DFS frames: next adjacency offset
	)
	for start := 0; start < n; start++ {
		if index[start] != unvisited {
			continue
		}
		callers = append(callers[:0], start)
		edgePos = append(edgePos[:0], 0)
		index[start] = next
		low[start] = next
		next++
		stack = append(stack, start)
		onStack[start] = true
		for len(callers) > 0 {
			v := callers[len(callers)-1]
			if edgePos[len(callers)-1] < len(adj[v]) {
				w := adj[v][edgePos[len(callers)-1]]
				edgePos[len(callers)-1]++
				if index[w] == unvisited {
					index[w] = next
					low[w] = next
					next++
					stack = append(stack, w)
					onStack[w] = true
					callers = append(callers, w)
					edgePos = append(edgePos, 0)
				} else if onStack[w] && index[w] < low[v] {
					low[v] = index[w]
				}
				continue
			}
			callers = callers[:len(callers)-1]
			edgePos = edgePos[:len(edgePos)-1]
			if len(callers) > 0 {
				parent := callers[len(callers)-1]
				if low[v] < low[parent] {
					low[parent] = low[v]
				}
			}
			if low[v] == index[v] {
				var scc []int
				for {
					w := stack[len(stack)-1]
					stack = stack[:len(stack)-1]
					onStack[w] = false
					scc = append(scc, w)
					if w == v {
						break
					}
				}
				sccs = append(sccs, scc)
			}
		}
	}
	return sccs
}

type unionFind struct {
	parent []int
	rank   []int
}

func newUnionFind(n int) *unionFind {
	uf := &unionFind{parent: make([]int, n), rank: make([]int, n)}
	for i := range uf.parent {
		uf.parent[i] = i
	}
	return uf
}

func (uf *unionFind) find(x int) int {
	for uf.parent[x] != x {
		uf.parent[x] = uf.parent[uf.parent[x]]
		x = uf.parent[x]
	}
	return x
}

func (uf *unionFind) union(a, b int) {
	ra, rb := uf.find(a), uf.find(b)
	if ra == rb {
		return
	}
	if uf.rank[ra] < uf.rank[rb] {
		ra, rb = rb, ra
	}
	uf.parent[rb] = ra
	if uf.rank[ra] == uf.rank[rb] {
		uf.rank[ra]++
	}
}

func dedupSorted(xs []int) []int {
	if len(xs) < 2 {
		return xs
	}
	sort.Ints(xs)
	out := xs[:1]
	for _, x := range xs[1:] {
		if x != out[len(out)-1] {
			out = append(out, x)
		}
	}
	return out
}

func minOf(xs []int) int {
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}
