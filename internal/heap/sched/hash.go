package sched

// Content hashing for the incremental summary cache (DESIGN.md §16).
// Three layers, each deterministic and purely syntactic:
//
//   - irHash(f): FNV-1a over the function's printed SSA plus its
//     signature. The SSA rendering embeds allocation-site and
//     remote-call-site numbers (@N / site=N), so a program edit that
//     renumbers either — even in an untouched function — changes that
//     function's irHash and invalidates its region.
//   - summaryHash(f): computed bottom-up over the SCC condensation:
//     an SCC's hash covers its members' (name, irHash) pairs and the
//     summary hashes of every callee SCC, so a function's summary
//     hash transitively covers its whole dependency cone (the
//     "IR hash + callee summary hashes" key of ISSUE 10).
//   - ComponentKey: the cache key of one region — format version,
//     options fingerprint, the program-wide class-table fingerprint
//     (field layouts feed points-to transfer, so any class edit
//     invalidates everything; sound and cheap), and the members'
//     (name, summaryHash) pairs in deterministic order.

import "sort"

// Hashes holds every layer's digests for one plan.
type Hashes struct {
	// IR and Summary are per-function, indexed like Plan.Funcs.
	IR      []uint64
	Summary []uint64
	TypesFP uint64
	// Component are the cache keys, indexed like Plan.Components.
	Component []uint64
}

// summaryFormat names the cache payload format; bump on any change to
// the summary codec, the numbering discipline, or the hash recipe.
const summaryFormat = "cormi-sum/1"

// Hasher is FNV-1a 64, hand-rolled so the hashing layer needs no
// allocation and no hash.Hash plumbing.
type Hasher uint64

// NewHasher returns the FNV-1a offset basis.
func NewHasher() Hasher { return 14695981039346656037 }

const fnvPrime = 1099511628211

// Byte mixes one byte.
func (h *Hasher) Byte(b byte) {
	*h = (*h ^ Hasher(b)) * fnvPrime
}

// String mixes a length-prefixed string (the prefix keeps "ab","c"
// distinct from "a","bc").
func (h *Hasher) String(s string) {
	h.Uint(uint64(len(s)))
	for i := 0; i < len(s); i++ {
		h.Byte(s[i])
	}
}

// Uint mixes a fixed-width integer.
func (h *Hasher) Uint(v uint64) {
	for i := 0; i < 8; i++ {
		h.Byte(byte(v))
		v >>= 8
	}
}

// Bool mixes a flag.
func (h *Hasher) Bool(b bool) {
	if b {
		h.Byte(1)
	} else {
		h.Byte(0)
	}
}

// Sum returns the digest.
func (h Hasher) Sum() uint64 { return uint64(h) }

// HashBytes is the one-shot FNV-1a of a raw payload (cache file
// checksums).
func HashBytes(data []byte) uint64 {
	h := NewHasher()
	for _, b := range data {
		h.Byte(b)
	}
	return h.Sum()
}

// Hashes computes the full hash set for the plan's program. optsFP is
// the caller's fingerprint of the analysis options (precision knobs
// only — never the worker count or cache location, which must not
// affect results).
func (p *Plan) Hashes(optsFP uint64) *Hashes {
	n := len(p.Funcs)
	hs := &Hashes{IR: make([]uint64, n), Summary: make([]uint64, n)}

	for i, f := range p.Funcs {
		h := NewHasher()
		h.String(summaryFormat)
		m := f.Method
		h.String(m.QualifiedName())
		h.Bool(m.Static)
		h.Bool(m.IsCtor)
		h.Bool(m.Class.Remote)
		h.String(m.Ret.String())
		h.Uint(uint64(len(m.Params)))
		for _, prm := range m.Params {
			h.String(prm.Type.String())
		}
		h.String(f.String())
		hs.IR[i] = h.Sum()
	}

	hs.TypesFP = p.typesFingerprint()

	// SCC ids are topological enough for a bottom-up sweep when taken
	// in wave order; WaveOf guarantees every callee SCC has a smaller
	// wave, so one pass over SCCs sorted by (wave, id) sees callees
	// first.
	order := make([]int, len(p.SCCs))
	for i := range order {
		order[i] = i
	}
	sortSCCsByWave(order, p.WaveOf)
	sccHash := make([]uint64, len(p.SCCs))
	for _, id := range order {
		h := NewHasher()
		h.String(summaryFormat)
		for _, f := range p.SCCs[id] { // members sorted by func index
			h.String(p.Funcs[f].Method.QualifiedName())
			h.Uint(hs.IR[f])
		}
		for _, callee := range p.sccCalleesOf(id) {
			h.Uint(sccHash[callee])
		}
		sccHash[id] = h.Sum()
		for _, f := range p.SCCs[id] {
			hs.Summary[f] = sccHash[id]
		}
	}

	hs.Component = make([]uint64, len(p.Components))
	for ci, c := range p.Components {
		h := NewHasher()
		h.String(summaryFormat)
		h.Uint(optsFP)
		h.Uint(hs.TypesFP)
		h.Uint(uint64(len(c.Funcs)))
		for _, f := range c.Funcs {
			h.String(p.Funcs[f].Method.QualifiedName())
			h.Uint(hs.Summary[f])
		}
		hs.Component[ci] = h.Sum()
	}
	return hs
}

// typesFingerprint digests every class declaration (name, remoteness,
// inheritance, field layout incl. static flags) in source order.
func (p *Plan) typesFingerprint() uint64 {
	h := NewHasher()
	h.String(summaryFormat)
	if p.Prog.Lang == nil || p.Prog.Lang.File == nil {
		return h.Sum()
	}
	for _, cd := range p.Prog.Lang.File.Classes {
		h.String(cd.Name)
		h.Bool(cd.Remote)
		h.String(cd.Extends)
		h.Uint(uint64(len(cd.Fields)))
		for _, fd := range cd.Fields {
			h.String(fd.Name)
			h.Bool(fd.Static)
			h.String(fd.Type.String())
		}
	}
	return h.Sum()
}

// sccCalleesOf recomputes the callee SCC set of one SCC (sorted,
// deduplicated) — small enough to not be worth caching on the Plan.
func (p *Plan) sccCalleesOf(id int) []int {
	var out []int
	for _, f := range p.SCCs[id] {
		for _, g := range p.CallEdges[f] {
			if t := p.SCCOf[g]; t != id {
				out = append(out, t)
			}
		}
	}
	return dedupSorted(out)
}

func sortSCCsByWave(order []int, waveOf []int) {
	sort.Slice(order, func(i, j int) bool {
		a, b := order[i], order[j]
		if waveOf[a] != waveOf[b] {
			return waveOf[a] < waveOf[b]
		}
		return a < b
	})
}
