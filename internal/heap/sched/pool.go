package sched

import (
	"sync"
	"sync/atomic"
)

// Run executes fn(0..n-1) across a bounded worker pool. With workers
// <= 1 (or a single task) it degenerates to a plain loop on the
// calling goroutine — the sequential mode the parallel modes must be
// bit-identical to. Task results must not depend on execution order;
// the scheduler makes no ordering promise beyond "each index exactly
// once".
func Run(n, workers int, fn func(int)) {
	if n <= 0 {
		return
	}
	if workers > n {
		workers = n
	}
	if workers <= 1 || n == 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}
