package sched

import (
	"os"
	"path/filepath"
	"sync/atomic"
	"testing"

	"cormi/internal/ir"
	"cormi/internal/lang"
)

func compile(t *testing.T, src string) *ir.Program {
	t.Helper()
	f, err := lang.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	cp, err := lang.Check(f)
	if err != nil {
		t.Fatalf("check: %v", err)
	}
	p, err := ir.Lower(cp)
	if err != nil {
		t.Fatalf("lower: %v", err)
	}
	return p
}

func funcIdx(t *testing.T, p *Plan, name string) int {
	t.Helper()
	for i, f := range p.Funcs {
		if f.Method.QualifiedName() == name {
			return i
		}
	}
	t.Fatalf("no function %q in plan", name)
	return -1
}

// Two disjoint class families with a mutually recursive pair in the
// first: the plan must find the SCC, flag only the pair recursive,
// order waves bottom-up, and split the program into two regions.
const planSrc = `
class ANode { int v; }
class A {
	static int leaf(int d) { return d + 1; }
	static int r1(int d) {
		if (d > 0) { return A.r2(d - 1); }
		return A.leaf(d);
	}
	static int r2(int d) {
		if (d > 0) { return A.r1(d - 1); }
		return A.leaf(d);
	}
	static int root(int d) { return A.r1(d); }
}
class B {
	static int other(int d) { return d * 2; }
}
`

func TestBuildPlanSCCsWavesComponents(t *testing.T) {
	p := BuildPlan(compile(t, planSrc))
	leaf := funcIdx(t, p, "A.leaf")
	r1 := funcIdx(t, p, "A.r1")
	r2 := funcIdx(t, p, "A.r2")
	root := funcIdx(t, p, "A.root")
	other := funcIdx(t, p, "B.other")

	if p.SCCOf[r1] != p.SCCOf[r2] {
		t.Errorf("r1/r2 in different SCCs (%d, %d)", p.SCCOf[r1], p.SCCOf[r2])
	}
	for _, i := range []int{leaf, root, other} {
		if p.SCCOf[i] == p.SCCOf[r1] {
			t.Errorf("%s wrongly joined the recursive SCC", p.Funcs[i].Method.QualifiedName())
		}
	}
	for i, want := range map[int]bool{leaf: false, r1: true, r2: true, root: false, other: false} {
		if p.Recursive[i] != want {
			t.Errorf("Recursive[%s] = %v, want %v", p.Funcs[i].Method.QualifiedName(), p.Recursive[i], want)
		}
	}
	// Bottom-up: leaf below the pair, the pair below root.
	if !(p.WaveOf[p.SCCOf[leaf]] < p.WaveOf[p.SCCOf[r1]] && p.WaveOf[p.SCCOf[r1]] < p.WaveOf[p.SCCOf[root]]) {
		t.Errorf("waves not bottom-up: leaf=%d pair=%d root=%d",
			p.WaveOf[p.SCCOf[leaf]], p.WaveOf[p.SCCOf[r1]], p.WaveOf[p.SCCOf[root]])
	}
	if len(p.Components) != 2 {
		t.Fatalf("got %d components, want 2", len(p.Components))
	}
	// Each component's Order must be a permutation of its Funcs with
	// waves ascending.
	for ci, c := range p.Components {
		if len(c.Order) != len(c.Funcs) {
			t.Fatalf("component %d: order/funcs length mismatch", ci)
		}
		for i := 1; i < len(c.Order); i++ {
			if p.WaveOf[p.SCCOf[c.Order[i-1]]] > p.WaveOf[p.SCCOf[c.Order[i]]] {
				t.Errorf("component %d: solve order not wave-ascending", ci)
			}
		}
	}
}

// A shared static field must couple otherwise unrelated functions into
// one region: facts flow through the static.
func TestSharedStaticCouplesComponents(t *testing.T) {
	src := `
class Node { int v; }
class A {
	static Node keep;
	static void put() { A.keep = new Node(); }
}
class B {
	static Node take() { return A.keep; }
}
`
	p := BuildPlan(compile(t, src))
	if len(p.Components) != 1 {
		t.Fatalf("got %d components, want 1 (static-coupled)", len(p.Components))
	}
}

func TestSelfRecursionFlagged(t *testing.T) {
	src := `
class A {
	static int f(int d) {
		if (d > 0) { return A.f(d - 1); }
		return d;
	}
}
`
	p := BuildPlan(compile(t, src))
	if !p.Recursive[funcIdx(t, p, "A.f")] {
		t.Error("direct self-call not flagged recursive")
	}
}

func TestPoolRunCoversAllOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 7} {
		var hits [100]atomic.Int32
		Run(len(hits), workers, func(i int) { hits[i].Add(1) })
		for i := range hits {
			if got := hits[i].Load(); got != 1 {
				t.Fatalf("workers=%d: index %d ran %d times", workers, i, got)
			}
		}
	}
}

func TestCacheRoundTripAndCorruption(t *testing.T) {
	dir := t.TempDir()
	c := Open(dir)
	payload := []byte("region summary payload")
	const key = 0xdeadbeef

	if _, ok := c.Load(key); ok {
		t.Fatal("hit on empty cache")
	}
	c.Store(key, payload)
	got, ok := c.Load(key)
	if !ok || string(got) != string(payload) {
		t.Fatalf("round trip: ok=%v got=%q", ok, got)
	}

	// Any mutilation of the file must read as a miss, never an error.
	path := filepath.Join(dir, "00000000deadbeef.sum")
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	mutations := map[string][]byte{
		"empty":     {},
		"truncated": raw[:len(raw)-3],
		"badmagic":  append([]byte("XXXXXXXX"), raw[8:]...),
		"flipped": func() []byte {
			b := append([]byte(nil), raw...)
			b[len(b)/2] ^= 0x40
			return b
		}(),
	}
	for name, b := range mutations {
		if err := os.WriteFile(path, b, 0o644); err != nil {
			t.Fatal(err)
		}
		if _, ok := c.Load(key); ok {
			t.Errorf("%s file read as a hit", name)
		}
	}
}

func TestCacheOpenFailureIsNoop(t *testing.T) {
	// A file where the directory should be: Open degrades to an
	// always-miss cache instead of failing the analysis.
	file := filepath.Join(t.TempDir(), "occupied")
	if err := os.WriteFile(file, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	c := Open(filepath.Join(file, "sub"))
	c.Store(1, []byte("x"))
	if _, ok := c.Load(1); ok {
		t.Error("degraded cache returned a hit")
	}
}

// Editing one function must change its IR hash, its SCC's summary
// hash, and the summary hash of every transitive caller — and nothing
// else. This is the invalidation cone the incremental mode rests on.
func TestSummaryHashPropagation(t *testing.T) {
	src := func(leafConst int) string {
		return `
class A {
	static int leaf(int d) { return d + ` + string(rune('0'+leafConst)) + `; }
	static int mid(int d) { return A.leaf(d); }
	static int root(int d) { return A.mid(d); }
	static int lone(int d) { return d; }
}
`
	}
	p1 := BuildPlan(compile(t, src(1)))
	p2 := BuildPlan(compile(t, src(2)))
	h1 := p1.Hashes(0)
	h2 := p2.Hashes(0)
	changed := map[string]bool{"A.leaf": true, "A.mid": true, "A.root": true, "A.lone": false}
	for name, want := range changed {
		i1, i2 := funcIdx(t, p1, name), funcIdx(t, p2, name)
		if (h1.IR[i1] != h2.IR[i2]) != (name == "A.leaf") {
			t.Errorf("%s: IR hash changed=%v, want %v", name, h1.IR[i1] != h2.IR[i2], name == "A.leaf")
		}
		if got := h1.Summary[p1.SCCOf[i1]] != h2.Summary[p2.SCCOf[i2]]; got != want {
			t.Errorf("%s: summary hash changed=%v, want %v", name, got, want)
		}
	}
	// The component key covers all members, so it must change too.
	if h1.Component[0] == h2.Component[0] {
		t.Error("component key did not change on a member edit")
	}
	// Precision options are part of every key.
	if p1.Hashes(1).Component[0] == h1.Component[0] {
		t.Error("component key ignores the options fingerprint")
	}
}
