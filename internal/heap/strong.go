package heap

import (
	"cormi/internal/ir"
	"cormi/internal/lang"
)

// computeKills finds reference stores that are strongly updated: a
// later OpStore in the SAME basic block overwrites the SAME field of
// the SAME base SSA value, with no potentially-observing instruction in
// between. For any concrete execution of the block, the object the
// base value names receives both stores back to back, so the first
// store's field edge can never be observed — the constraint is dead
// and the re-run analysis skips it.
//
// The guard rails, per the singleton/summary rule:
//
//   - the base value's points-to set (in this context) must be a
//     singleton non-summary allocation node, so the killed edge is
//     attributed to exactly one node that stands for one call-path's
//     objects (merged-context summaries of called functions and RMI
//     boundary clones conflate several paths and are never killed);
//   - any OpLoad/OpLoadIdx (a field could be read through an alias)
//     or any call (the callee could read anything reachable) between
//     the two stores vetoes the kill;
//   - only scalar field stores participate: an array store (OpStoreIdx
//     through ElemKey) summarizes every slot of the array, so a later
//     store never provably overwrites an earlier one.
//
// Kills are justified by the finished first-pass (weak) fixpoint: the
// second pass only removes constraints, so its points-to sets are
// subsets of the first pass's and every singleton stays a singleton.
func (a *Analysis) computeKills() map[instrCtx]bool {
	kills := map[instrCtx]bool{}
	for _, f := range a.funcs {
		for _, c := range a.ctxsOf[f] {
			for _, b := range f.Blocks {
				a.killsInBlock(b, c, kills)
			}
		}
	}
	return kills
}

func (a *Analysis) killsInBlock(b *ir.Block, c Ctx, kills map[instrCtx]bool) {
	for i, in := range b.Instrs {
		if in.Op != ir.OpStore || !lang.IsRef(in.Field.Type) {
			continue
		}
		if !a.strongBase(in.Args[0], c) {
			continue
		}
	scan:
		for _, later := range b.Instrs[i+1:] {
			switch later.Op {
			case ir.OpLoad, ir.OpLoadIdx, ir.OpCall, ir.OpRemoteCall:
				break scan // a potential observer: the edge may be seen
			case ir.OpStore:
				if later.Field == in.Field && later.Args[0] == in.Args[0] {
					kills[instrCtx{in, c}] = true
					break scan
				}
			}
		}
	}
}

// strongBase reports whether stores through v (in context c) may be
// strongly updated: v must name exactly one non-summary allocation
// node.
func (a *Analysis) strongBase(v *ir.Value, c Ctx) bool {
	s := a.pts[valCtx{v, c}]
	if len(s) != 1 {
		return false
	}
	for id := range s {
		return !a.Nodes[id].Summary
	}
	return false
}
