package heap

import (
	"testing"
)

// weakOnly is context sensitivity without strong updates — the control
// group for every kill test.
func weakOnly() Options {
	o := DefaultOptions()
	o.StrongUpdates = false
	return o
}

const selfLinkSrc = `
class Cell { Cell next; int v; }
remote class Sink {
	int send(Cell c) { return c.v; }
}
class Main {
	static int main() {
		Sink s = new Sink();
		Cell t = new Cell();
		t.next = t;
		t.next = null;
		return s.send(t);
	}
}`

func sendRoots(t *testing.T, src string, opts Options) (*Analysis, []NodeSet) {
	t.Helper()
	a, p := analyzeOpts(t, src, opts)
	sites := remoteSites(p, "Sink.send")
	if len(sites) != 1 {
		t.Fatalf("got %d Sink.send sites, want 1", len(sites))
	}
	return a, argSets(a, sites[0])
}

func TestStrongUpdateKillsOverwrittenSelfLink(t *testing.T) {
	a, roots := sendRoots(t, selfLinkSrc, DefaultOptions())
	if a.StrongKills != 1 {
		t.Errorf("StrongKills = %d, want 1", a.StrongKills)
	}
	if w := a.CycleWitnessFrom(roots); w != nil {
		t.Errorf("severed self-link still flagged: %v", w)
	}

	b, broots := sendRoots(t, selfLinkSrc, weakOnly())
	if b.StrongKills != 0 {
		t.Errorf("weak analysis reports %d kills", b.StrongKills)
	}
	w := b.CycleWitnessFrom(broots)
	if w == nil {
		t.Fatal("weak updates must keep the self-link")
	}
	if w.Kind != WitnessCycle {
		t.Errorf("weak witness kind %q, want %q", w.Kind, WitnessCycle)
	}
}

func TestNoKillAcrossObserver(t *testing.T) {
	// A load between the two stores may observe the transient link
	// (here through an alias), so the kill must not fire.
	src := `
class Cell { Cell next; int v; }
remote class Sink {
	int send(Cell c) { return c.v; }
}
class Main {
	static int main() {
		Sink s = new Sink();
		Cell t = new Cell();
		t.next = t;
		Cell seen = t.next;
		t.next = null;
		seen.v = 9;
		return s.send(t);
	}
}`
	a, roots := sendRoots(t, src, DefaultOptions())
	if a.StrongKills != 0 {
		t.Errorf("StrongKills = %d, want 0 (a load observes the transient edge)", a.StrongKills)
	}
	if !a.MayCycleFrom(roots) {
		t.Error("observed self-link was dropped")
	}
}

func TestNoKillAcrossCall(t *testing.T) {
	// The callee might traverse the graph, so a call is an observer.
	src := `
class Cell { Cell next; int v; }
remote class Sink {
	int send(Cell c) { return c.v; }
}
class Main {
	static int peek(Cell c) { return c.next.v; }
	static int main() {
		Sink s = new Sink();
		Cell t = new Cell();
		t.next = t;
		int x = Main.peek(t);
		t.next = null;
		return s.send(t) + x;
	}
}`
	a, roots := sendRoots(t, src, DefaultOptions())
	if a.StrongKills != 0 {
		t.Errorf("StrongKills = %d, want 0 (a call may observe the edge)", a.StrongKills)
	}
	if !a.MayCycleFrom(roots) {
		t.Error("call-observed self-link was dropped")
	}
}

func TestNoKillAcrossBlockBoundary(t *testing.T) {
	// The overwriting store is conditional: the transient link survives
	// the else path, so same-block is a hard requirement.
	src := `
class Cell { Cell next; int v; }
remote class Sink {
	int send(Cell c) { return c.v; }
}
class Main {
	static int main() {
		Sink s = new Sink();
		Cell t = new Cell();
		t.next = t;
		if (t.v > 0) {
			t.next = null;
		}
		return s.send(t);
	}
}`
	a, roots := sendRoots(t, src, DefaultOptions())
	if a.StrongKills != 0 {
		t.Errorf("StrongKills = %d, want 0 (overwrite is conditional)", a.StrongKills)
	}
	if !a.MayCycleFrom(roots) {
		t.Error("conditionally-severed self-link was dropped")
	}
}

func TestNoKillThroughDifferentBase(t *testing.T) {
	// Same field, different base values: u's store says nothing about
	// t's edge even though both are singletons.
	src := `
class Cell { Cell next; int v; }
remote class Sink {
	int send(Cell c) { return c.v; }
}
class Main {
	static int main() {
		Sink s = new Sink();
		Cell t = new Cell();
		Cell u = new Cell();
		t.next = t;
		u.next = null;
		return s.send(t);
	}
}`
	a, roots := sendRoots(t, src, DefaultOptions())
	if a.StrongKills != 0 {
		t.Errorf("StrongKills = %d, want 0 (different base values)", a.StrongKills)
	}
	if !a.MayCycleFrom(roots) {
		t.Error("self-link dropped by an unrelated store")
	}
}

func TestNoKillOnSummaryNode(t *testing.T) {
	// The transient link lives in a remote method body: its allocation
	// is a merged-context summary node (the method has callers), so the
	// singleton/summary guard vetoes the kill.
	src := `
class Cell { Cell next; int v; }
remote class Sink {
	int send(Cell c) { return c.v; }
	int stir() {
		Cell t = new Cell();
		t.next = t;
		t.next = null;
		return t.v;
	}
}
class Main {
	static int main() {
		Sink s = new Sink();
		int x = s.stir();
		Cell u = new Cell();
		return s.send(u) + x;
	}
}`
	a, _ := analyzeOpts(t, src, DefaultOptions())
	if a.StrongKills != 0 {
		t.Errorf("StrongKills = %d, want 0 (summary-node base must not be strongly updated)", a.StrongKills)
	}
}

func TestNoKillOnArrayElements(t *testing.T) {
	// Element stores summarize every slot; overwriting arr[i] proves
	// nothing about arr[j], so index stores never participate.
	src := `
class Cell { Cell next; int v; }
remote class Sink {
	int send(Cell[] c) { return c.length; }
}
class Main {
	static int main() {
		Sink s = new Sink();
		Cell[] arr = new Cell[2];
		Cell t = new Cell();
		arr[0] = t;
		arr[1] = null;
		return s.send(arr);
	}
}`
	a, roots := sendRoots(t, src, DefaultOptions())
	if a.StrongKills != 0 {
		t.Errorf("StrongKills = %d, want 0 (array stores are weak)", a.StrongKills)
	}
	if len(roots) != 1 {
		t.Fatalf("got %d root sets, want 1", len(roots))
	}
	for id := range a.Reach(roots[0]) {
		if a.Nodes[id].Type.String() == "Cell" {
			return // t is still reachable through the array
		}
	}
	t.Error("array element edge was dropped")
}
