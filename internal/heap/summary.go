package heap

// The summary codec: one cache payload per analysis region. Only the
// DYNAMIC analysis state is serialized — node table, points-to sets,
// field/global/clone edges, allocation bindings, and the two golden-
// visible counters. Everything the context prepass derives
// deterministically from the program (context tables, caller flags,
// budget-fallback counts) is recomputed on decode, which keeps the
// payload small and leaves less room for a stale file to disagree
// with the program.
//
// Pointers are encoded as stable coordinates within the region:
// functions by their position in the region's solve order, SSA values
// by (function, enumeration index) where the enumeration is params
// followed by instruction destinations, instructions by (function,
// block, instruction), and static fields by "Owner.name". Node IDs
// are region-local and dense, so plain integers round-trip.
//
// decodeComponent trusts nothing: every index is bounds-checked,
// every count is validated against the remaining payload, node sets
// must be strictly ascending, and any violation rejects the whole
// payload — the driver then re-solves the region from scratch. A
// corrupted cache can never panic the compiler or change a result;
// FuzzSummaryDecode pins that.

import (
	"encoding/binary"
	"sort"
	"strings"

	"cormi/internal/heap/sched"
	"cormi/internal/ir"
	"cormi/internal/lang"
)

// summaryVersion is the payload format version (bump with the codec).
const summaryVersion = 1

// maxSummaryString caps any string inside a payload (clone contexts
// and field keys are short; anything longer is garbage).
const maxSummaryString = 1 << 12

// valuesOf enumerates a function's SSA values in the stable order the
// codec and the fingerprint agree on: parameters first, then every
// instruction destination in block order.
func valuesOf(f *ir.Func) []*ir.Value {
	out := append([]*ir.Value(nil), f.Params...)
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			if in.Dst != nil {
				out = append(out, in.Dst)
			}
		}
	}
	return out
}

type sumWriter struct{ buf []byte }

func (w *sumWriter) uint(v uint64) { w.buf = binary.AppendUvarint(w.buf, v) }

func (w *sumWriter) str(s string) {
	w.uint(uint64(len(s)))
	w.buf = append(w.buf, s...)
}

func (w *sumWriter) bool(b bool) {
	if b {
		w.buf = append(w.buf, 1)
	} else {
		w.buf = append(w.buf, 0)
	}
}

func (w *sumWriter) set(s NodeSet) {
	ids := s.Sorted()
	w.uint(uint64(len(ids)))
	for _, id := range ids {
		w.uint(uint64(id))
	}
}

// sumReader decodes with a sticky error flag; every accessor returns
// a safe zero once the payload has gone bad.
type sumReader struct {
	data []byte
	pos  int
	bad  bool
}

func (r *sumReader) fail() { r.bad = true }

func (r *sumReader) uint() uint64 {
	if r.bad {
		return 0
	}
	v, n := binary.Uvarint(r.data[r.pos:])
	if n <= 0 {
		r.fail()
		return 0
	}
	r.pos += n
	return v
}

// count reads an element count and rejects any value that could not
// possibly fit in the remaining payload at itemMin bytes per element
// — the cheap defense against length-bomb allocations.
func (r *sumReader) count(itemMin int) int {
	v := r.uint()
	if r.bad || v > uint64(len(r.data)-r.pos)/uint64(itemMin)+1 {
		r.fail()
		return 0
	}
	return int(v)
}

// index reads a bounded index in [0, limit).
func (r *sumReader) index(limit int) int {
	v := r.uint()
	if r.bad || v >= uint64(limit) {
		r.fail()
		return 0
	}
	return int(v)
}

func (r *sumReader) str() string {
	n := r.uint()
	if r.bad || n > maxSummaryString || int(n) > len(r.data)-r.pos {
		r.fail()
		return ""
	}
	s := string(r.data[r.pos : r.pos+int(n)])
	r.pos += int(n)
	return s
}

func (r *sumReader) bool() bool {
	if r.bad || r.pos >= len(r.data) {
		r.fail()
		return false
	}
	b := r.data[r.pos]
	r.pos++
	if b > 1 {
		r.fail()
		return false
	}
	return b == 1
}

// setIn reads a node set whose members must be strictly ascending and
// below nNodes (the canonical encoding — also what makes re-encoding
// byte-identical).
func (r *sumReader) setIn(nNodes int) NodeSet {
	n := r.count(1)
	s := make(NodeSet, n)
	prev := -1
	for i := 0; i < n; i++ {
		id := r.index(nNodes)
		if r.bad || id <= prev {
			r.fail()
			return nil
		}
		s[NodeID(id)] = struct{}{}
		prev = id
	}
	return s
}

// componentFuncs materializes one region's solve order and recursion
// flags from the plan (shared by solve and decode so both construct
// identical analyses).
func componentFuncs(plan *sched.Plan, ci int) ([]*ir.Func, map[*ir.Func]bool) {
	comp := plan.Components[ci]
	funcs := make([]*ir.Func, len(comp.Order))
	for i, fi := range comp.Order {
		funcs[i] = plan.Funcs[fi]
	}
	recursive := map[*ir.Func]bool{}
	for _, fi := range comp.Funcs {
		if plan.Recursive[fi] {
			recursive[plan.Funcs[fi]] = true
		}
	}
	return funcs, recursive
}

// encodeComponent serializes one solved region. The part's numbering
// is region-local, so the payload is position-independent: it decodes
// identically no matter what the rest of the program looks like —
// which is exactly why an unchanged region's cache entry stays valid
// across edits elsewhere.
func encodeComponent(plan *sched.Plan, ci int, a *Analysis) []byte {
	instrCo := map[*ir.Instr][3]int{}
	valueCo := map[*ir.Value][2]int{}
	for fi, f := range a.funcs {
		for bi, b := range f.Blocks {
			for ii, in := range b.Instrs {
				instrCo[in] = [3]int{fi, bi, ii}
			}
		}
		for vi, v := range valuesOf(f) {
			valueCo[v] = [2]int{fi, vi}
		}
	}
	w := &sumWriter{}
	w.uint(summaryVersion)
	w.uint(uint64(len(a.funcs)))
	w.uint(uint64(a.StrongKills))
	w.uint(uint64(a.Iterations))

	w.uint(uint64(len(a.Nodes)))
	for _, n := range a.Nodes {
		co := instrCo[n.Site]
		w.uint(uint64(co[0]))
		w.uint(uint64(co[1]))
		w.uint(uint64(co[2]))
		w.uint(uint64(n.Ctx))
		w.bool(n.Summary)
		w.uint(uint64(n.CloneOf + 1))
		w.str(n.CloneCtx)
	}

	type ptsLine struct {
		fi, vi, c int
		s         NodeSet
	}
	var pts []ptsLine
	for k, s := range a.pts {
		if len(s) == 0 {
			continue
		}
		vc := valueCo[k.v]
		pts = append(pts, ptsLine{vc[0], vc[1], int(k.c), s})
	}
	sort.Slice(pts, func(i, j int) bool {
		if pts[i].fi != pts[j].fi {
			return pts[i].fi < pts[j].fi
		}
		if pts[i].vi != pts[j].vi {
			return pts[i].vi < pts[j].vi
		}
		return pts[i].c < pts[j].c
	})
	w.uint(uint64(len(pts)))
	for _, l := range pts {
		w.uint(uint64(l.fi))
		w.uint(uint64(l.vi))
		w.uint(uint64(l.c))
		w.set(l.s)
	}

	for _, m := range a.fields {
		keys := make([]string, 0, len(m))
		for k, s := range m {
			if len(s) > 0 {
				keys = append(keys, k)
			}
		}
		sort.Strings(keys)
		w.uint(uint64(len(keys)))
		for _, k := range keys {
			w.str(k)
			w.set(m[k])
		}
	}

	type named struct {
		key string
		s   NodeSet
	}
	var globals []named
	for fd, s := range a.globals {
		if len(s) > 0 {
			globals = append(globals, named{FieldKey(fd), s})
		}
	}
	sort.Slice(globals, func(i, j int) bool { return globals[i].key < globals[j].key })
	w.uint(uint64(len(globals)))
	for _, g := range globals {
		w.str(g.key)
		w.set(g.s)
	}

	type allocLine struct {
		co [3]int
		c  Ctx
		id NodeID
	}
	var allocs []allocLine
	for k, id := range a.allocNode {
		allocs = append(allocs, allocLine{instrCo[k.in], k.c, id})
	}
	sort.Slice(allocs, func(i, j int) bool {
		a, b := allocs[i], allocs[j]
		if a.co != b.co {
			return a.co[0] < b.co[0] ||
				(a.co[0] == b.co[0] && (a.co[1] < b.co[1] ||
					(a.co[1] == b.co[1] && a.co[2] < b.co[2])))
		}
		return a.c < b.c
	})
	w.uint(uint64(len(allocs)))
	for _, l := range allocs {
		w.uint(uint64(l.co[0]))
		w.uint(uint64(l.co[1]))
		w.uint(uint64(l.co[2]))
		w.uint(uint64(l.c))
		w.uint(uint64(l.id))
	}

	type cloneLine struct {
		ctx string
		n   int
		id  NodeID
	}
	writeClones := func(ls []cloneLine) {
		sort.Slice(ls, func(i, j int) bool {
			if ls[i].ctx != ls[j].ctx {
				return ls[i].ctx < ls[j].ctx
			}
			return ls[i].n < ls[j].n
		})
		w.uint(uint64(len(ls)))
		for _, l := range ls {
			w.str(l.ctx)
			w.uint(uint64(l.n))
			w.uint(uint64(l.id))
		}
	}
	var memo, pairs []cloneLine
	for k, id := range a.cloneMemo {
		memo = append(memo, cloneLine{k.ctx, k.physical, id})
	}
	for k, id := range a.clonePairs {
		pairs = append(pairs, cloneLine{k.ctx, int(k.orig), id})
	}
	writeClones(memo)
	writeClones(pairs)
	return w.buf
}

// decodeComponent reconstructs one region from a cache payload, or
// returns nil if the payload is structurally invalid in any way. The
// context tables are recomputed by the same prepass a fresh solve
// runs, so a successful decode is indistinguishable from a solve.
func decodeComponent(prog *ir.Program, plan *sched.Plan, ci int, opts Options, payload []byte) (result *Analysis) {
	// The reader bounds-checks everything, but a defense-in-depth
	// recover keeps a codec bug from escalating a corrupt file into a
	// compiler crash: any panic is a miss.
	defer func() {
		if recover() != nil {
			result = nil
		}
	}()
	funcs, recursive := componentFuncs(plan, ci)
	a := &Analysis{
		Prog:       prog,
		Opts:       opts,
		funcs:      funcs,
		recursive:  recursive,
		pts:        make(map[valCtx]NodeSet),
		ptsAll:     make(map[*ir.Value]NodeSet),
		globals:    make(map[*lang.FieldDecl]NodeSet),
		allocNode:  make(map[allocKey]NodeID),
		cloneMemo:  make(map[cloneKey]NodeID),
		clonePairs: make(map[clonePair]NodeID),
	}
	a.buildContexts()

	r := &sumReader{data: payload}
	if r.uint() != summaryVersion {
		return nil
	}
	if r.index(len(funcs)+1) != len(funcs) {
		return nil
	}
	a.StrongKills = int(r.uint())
	a.Iterations = int(r.uint())
	if r.bad || a.StrongKills > 1<<24 || a.Iterations < 1 || a.Iterations > maxIterations {
		return nil
	}

	values := make([][]*ir.Value, len(funcs))
	for i, f := range funcs {
		values[i] = valuesOf(f)
	}
	siteAt := func() *ir.Instr {
		f := funcs[r.index(len(funcs))]
		if r.bad {
			return nil
		}
		b := f.Blocks[r.index(len(f.Blocks))]
		if r.bad {
			return nil
		}
		in := b.Instrs[r.index(len(b.Instrs))]
		if r.bad {
			return nil
		}
		return in
	}

	nNodes := r.count(7)
	for i := 0; i < nNodes; i++ {
		site := siteAt()
		c := Ctx(r.index(len(a.ctxSite)))
		summary := r.bool()
		cloneOf := NodeID(r.uint()) - 1
		cloneCtx := r.str()
		if r.bad || site == nil ||
			(site.Op != ir.OpNew && site.Op != ir.OpNewArray) || site.Dst == nil {
			return nil
		}
		if cloneOf < -1 || cloneOf >= NodeID(i) || (cloneOf >= 0) != (cloneCtx != "") {
			return nil
		}
		a.Nodes = append(a.Nodes, &Node{
			ID:       NodeID(i),
			Logical:  i,
			Physical: site.AllocID,
			Type:     site.Dst.Type,
			Site:     site,
			Ctx:      c,
			Summary:  summary,
			CloneOf:  cloneOf,
			CloneCtx: cloneCtx,
		})
		a.fields = append(a.fields, map[string]NodeSet{})
	}

	nPts := r.count(4)
	for i := 0; i < nPts; i++ {
		fi := r.index(len(funcs))
		if r.bad {
			return nil
		}
		v := values[fi][r.index(len(values[fi]))]
		c := Ctx(r.index(len(a.ctxSite)))
		s := r.setIn(nNodes)
		if r.bad {
			return nil
		}
		k := valCtx{v, c}
		if _, dup := a.pts[k]; dup {
			return nil
		}
		a.pts[k] = s
		a.allSet(v).AddAll(s)
	}

	for i := 0; i < nNodes; i++ {
		nKeys := r.count(2)
		for j := 0; j < nKeys; j++ {
			key := r.str()
			s := r.setIn(nNodes)
			if r.bad || key == "" {
				return nil
			}
			if _, dup := a.fields[i][key]; dup {
				return nil
			}
			a.fields[i][key] = s
		}
	}

	nGlobals := r.count(2)
	for i := 0; i < nGlobals; i++ {
		key := r.str()
		s := r.setIn(nNodes)
		if r.bad {
			return nil
		}
		fd := staticFieldByKey(prog, key)
		if fd == nil {
			return nil
		}
		if _, dup := a.globals[fd]; dup {
			return nil
		}
		a.globals[fd] = s
	}

	nAllocs := r.count(5)
	for i := 0; i < nAllocs; i++ {
		site := siteAt()
		c := Ctx(r.index(len(a.ctxSite)))
		id := NodeID(r.index(nNodes))
		if r.bad || site == nil ||
			(site.Op != ir.OpNew && site.Op != ir.OpNewArray) {
			return nil
		}
		k := allocKey{site, c}
		if _, dup := a.allocNode[k]; dup {
			return nil
		}
		a.allocNode[k] = id
	}

	nMemo := r.count(3)
	for i := 0; i < nMemo; i++ {
		ctx := r.str()
		phys := int(r.uint())
		id := NodeID(r.index(nNodes))
		if r.bad || ctx == "" || phys > 1<<30 {
			return nil
		}
		k := cloneKey{ctx: ctx, physical: phys}
		if _, dup := a.cloneMemo[k]; dup {
			return nil
		}
		a.cloneMemo[k] = id
	}

	nPairs := r.count(3)
	for i := 0; i < nPairs; i++ {
		ctx := r.str()
		orig := NodeID(r.index(nNodes))
		id := NodeID(r.index(nNodes))
		if r.bad || ctx == "" {
			return nil
		}
		k := clonePair{ctx: ctx, orig: orig}
		if _, dup := a.clonePairs[k]; dup {
			return nil
		}
		a.clonePairs[k] = id
	}

	if r.bad || r.pos != len(payload) {
		return nil
	}
	return a
}

// staticFieldByKey resolves "Owner.name" to the declaring class's
// static field, or nil.
func staticFieldByKey(prog *ir.Program, key string) *lang.FieldDecl {
	owner, name, ok := strings.Cut(key, ".")
	if !ok || prog.Lang == nil {
		return nil
	}
	cd, ok := prog.Lang.Classes[owner]
	if !ok {
		return nil
	}
	for _, fd := range cd.Fields {
		if fd.Name == name && fd.Static {
			return fd
		}
	}
	return nil
}
