package heap

import (
	"sync"
	"testing"

	"cormi/internal/heap/gen"
	"cormi/internal/heap/sched"
	"cormi/internal/ir"
	"cormi/internal/lang"
)

// fuzzProg is built once: a small generated component with recursion,
// a remote call, and a static escape, so the decoder's every branch is
// reachable from the fuzzed payload.
var fuzzOnce struct {
	sync.Once
	prog *ir.Program
	plan *sched.Plan
	seed []byte
}

func fuzzSetup(f *testing.F) (*ir.Program, *sched.Plan, []byte) {
	f.Helper()
	fuzzOnce.Do(func() {
		src := gen.Generate(gen.Config{Seed: 1, Components: 1, FuncsPerComponent: 6}).Source
		file, err := lang.Parse(src)
		if err != nil {
			f.Fatalf("parse: %v", err)
		}
		cp, err := lang.Check(file)
		if err != nil {
			f.Fatalf("check: %v", err)
		}
		prog, err := ir.Lower(cp)
		if err != nil {
			f.Fatalf("lower: %v", err)
		}
		plan := sched.BuildPlan(prog)
		if len(plan.Components) != 1 {
			f.Fatalf("fuzz program has %d components, want 1", len(plan.Components))
		}
		part := solveComponent(prog, plan, 0, DefaultOptions())
		fuzzOnce.prog = prog
		fuzzOnce.plan = plan
		fuzzOnce.seed = encodeComponent(plan, 0, part)
	})
	return fuzzOnce.prog, fuzzOnce.plan, fuzzOnce.seed
}

// FuzzSummaryDecode feeds arbitrary bytes to the region-summary
// decoder. The contract: decodeComponent either returns a structurally
// valid part or nil — it never panics, whatever the cache file held.
// Seeded with a genuine encoding so mutations explore the deep paths.
func FuzzSummaryDecode(f *testing.F) {
	prog, plan, seed := fuzzSetup(f)
	f.Add(seed)
	f.Add([]byte{})
	f.Add(seed[:len(seed)/2])
	f.Fuzz(func(t *testing.T, payload []byte) {
		a := decodeComponent(prog, plan, 0, DefaultOptions(), payload)
		if a == nil {
			return
		}
		// A successful decode must be internally consistent enough for
		// the merge: node IDs dense, clone targets in range.
		for i, n := range a.Nodes {
			if int(n.ID) != i {
				t.Fatalf("decoded node %d has ID %d", i, n.ID)
			}
			if n.CloneOf >= NodeID(len(a.Nodes)) {
				t.Fatalf("node %d clones out-of-range %d", i, n.CloneOf)
			}
		}
	})
}

// TestSummaryRoundTrip pins the decoder against the encoder: a decoded
// part must merge into the same fingerprint as the solved one.
func TestSummaryRoundTrip(t *testing.T) {
	src := gen.Generate(gen.Config{Seed: 3, Components: 1, FuncsPerComponent: 7}).Source
	_, prog := analyzeOpts(t, src, DefaultOptions())
	plan := sched.BuildPlan(prog)
	opts := DefaultOptions()

	solved := solveComponent(prog, plan, 0, opts)
	decoded := decodeComponent(prog, plan, 0, opts, encodeComponent(plan, 0, solved))
	if decoded == nil {
		t.Fatal("round trip failed to decode")
	}
	// Re-solve for the merge: solved was mutated in place by its merge.
	a1 := mergeParts(prog, opts, []*Analysis{solveComponent(prog, plan, 0, opts)})
	a2 := mergeParts(prog, opts, []*Analysis{decoded})
	if a1.Fingerprint() != a2.Fingerprint() {
		t.Fatal("decoded part merges to a different fingerprint than the solved part")
	}
}
