package interp

import (
	"fmt"

	"cormi/internal/ir"
	"cormi/internal/lang"
	"cormi/internal/model"
	"cormi/internal/rmi"
)

// maxSteps bounds one method activation, turning runaway MiniJP loops
// into errors instead of hangs.
const maxSteps = 20_000_000

// exec interprets one SSA function on the given node.
func (m *Machine) exec(node *rmi.Node, fn *ir.Func, args []value) (value, error) {
	if len(args) != len(fn.Params) {
		return value{}, fmt.Errorf("interp: %s: %d args for %d params", fn.Name, len(args), len(fn.Params))
	}
	frame := make(map[*ir.Value]value, 16)
	for i, p := range fn.Params {
		frame[p] = coerce(args[i], p.Type)
	}

	block := fn.Entry()
	var prev *ir.Block
	steps := 0
	for {
		// Phis first, evaluated simultaneously from the predecessor.
		var phiVals []value
		nphi := 0
		for _, in := range block.Instrs {
			if in.Op != ir.OpPhi {
				break
			}
			nphi++
			picked := false
			for i, pb := range in.PhiPreds {
				if pb == prev {
					phiVals = append(phiVals, frame[in.Args[i]])
					picked = true
					break
				}
			}
			if !picked {
				return value{}, fmt.Errorf("interp: %s: phi without edge from b%d", fn.Name, prevID(prev))
			}
		}
		for i := 0; i < nphi; i++ {
			frame[block.Instrs[i].Dst] = phiVals[i]
		}

		for _, in := range block.Instrs[nphi:] {
			steps++
			if steps > maxSteps {
				return value{}, fmt.Errorf("interp: %s: step limit exceeded", fn.Name)
			}
			switch in.Op {
			case ir.OpRet:
				if len(in.Args) == 1 {
					return coerce(frame[in.Args[0]], fn.Method.Ret), nil
				}
				return value{}, nil
			case ir.OpJump:
				// fallthrough to next block below
			case ir.OpBranch:
				// handled below
			default:
				v, err := m.step(node, fn, in, frame)
				if err != nil {
					return value{}, err
				}
				if in.Dst != nil {
					frame[in.Dst] = v
				}
			}
		}

		t := block.Terminator()
		if t == nil {
			return value{}, fmt.Errorf("interp: %s: block b%d falls off", fn.Name, block.ID)
		}
		prev = block
		switch t.Op {
		case ir.OpJump:
			block = t.Targets[0]
		case ir.OpBranch:
			if frame[t.Args[0]].v.AsBool() {
				block = t.Targets[0]
			} else {
				block = t.Targets[1]
			}
		case ir.OpRet:
			// already returned above
			return value{}, nil
		}
	}
}

func prevID(b *ir.Block) int {
	if b == nil {
		return -1
	}
	return b.ID
}

// step executes one non-control instruction.
func (m *Machine) step(node *rmi.Node, fn *ir.Func, in *ir.Instr, frame map[*ir.Value]value) (value, error) {
	switch in.Op {
	case ir.OpConst:
		if in.ConstIsNull {
			return plain(model.Null()), nil
		}
		switch in.ConstKind {
		case lang.PInt:
			return plain(model.Int(in.ConstInt)), nil
		case lang.PDouble:
			return plain(model.Double(in.ConstFloat)), nil
		case lang.PBoolean:
			return plain(model.Bool(in.ConstBool)), nil
		case lang.PString:
			return plain(model.Str(in.ConstStr)), nil
		}
		return plain(model.Int(in.ConstInt)), nil

	case ir.OpBin:
		return binop(in.BinOp, frame[in.Args[0]], frame[in.Args[1]])

	case ir.OpUn:
		x := frame[in.Args[0]]
		switch in.BinOp {
		case "-":
			if x.v.Kind == model.FDouble {
				return plain(model.Double(-x.v.D)), nil
			}
			return plain(model.Int(-x.v.I)), nil
		case "!":
			return plain(model.Bool(!x.v.AsBool())), nil
		}
		return value{}, fmt.Errorf("interp: bad unary %q", in.BinOp)

	case ir.OpNew:
		if in.Class.Remote {
			r, err := m.placeRemote(in.Class)
			if err != nil {
				return value{}, err
			}
			return value{r: r}, nil
		}
		mc, ok := m.res.ModelClass(in.Class.Name)
		if !ok {
			return value{}, fmt.Errorf("interp: no model class %s", in.Class.Name)
		}
		return plain(model.Ref(model.New(mc))), nil

	case ir.OpNewArray:
		n := frame[in.Args[0]].v.I
		if n < 0 {
			return value{}, fmt.Errorf("interp: negative array size %d", n)
		}
		at, ok := in.Dst.Type.(*lang.ArrayType)
		if !ok {
			return value{}, fmt.Errorf("interp: newarray of %s", in.Dst.Type)
		}
		mc, err := m.arrayClass(at)
		if err != nil {
			return value{}, err
		}
		return plain(model.Ref(model.NewArray(mc, int(n)))), nil

	case ir.OpLoad:
		o, err := object(frame[in.Args[0]])
		if err != nil {
			return value{}, err
		}
		return plain(o.Get(in.Field.Name)), nil

	case ir.OpStore:
		o, err := object(frame[in.Args[0]])
		if err != nil {
			return value{}, err
		}
		v := coerce(frame[in.Args[1]], in.Field.Type)
		if v.r != nil {
			return value{}, fmt.Errorf("interp: cannot store remote reference into field %s", in.Field.Name)
		}
		o.Set(in.Field.Name, v.v)
		return value{}, nil

	case ir.OpLoadStatic:
		m.staticMu.Lock()
		v, ok := m.statics[in.Field]
		m.staticMu.Unlock()
		if !ok {
			return plain(zeroOf(in.Field.Type)), nil
		}
		return v, nil

	case ir.OpStoreStatic:
		m.staticMu.Lock()
		m.statics[in.Field] = coerce(frame[in.Args[0]], in.Field.Type)
		m.staticMu.Unlock()
		return value{}, nil

	case ir.OpLoadIdx:
		return loadIdx(frame[in.Args[0]], frame[in.Args[1]])

	case ir.OpStoreIdx:
		return value{}, storeIdx(frame[in.Args[0]], frame[in.Args[1]], frame[in.Args[2]])

	case ir.OpArrayLen:
		o, err := object(frame[in.Args[0]])
		if err != nil {
			return value{}, err
		}
		return plain(model.Int(int64(o.Len()))), nil

	case ir.OpStrBuiltin:
		s := frame[in.Args[0]].v.S
		switch in.Builtin {
		case "hashCode":
			return plain(model.Int(hashString(s))), nil
		case "length":
			return plain(model.Int(int64(len(s)))), nil
		}
		return value{}, fmt.Errorf("interp: bad builtin %s", in.Builtin)

	case ir.OpCall:
		args := make([]value, len(in.Args))
		for i, a := range in.Args {
			args[i] = frame[a]
		}
		if !in.Callee.Static && args[0].r != nil {
			return value{}, fmt.Errorf("interp: direct call %s on a remote reference", in.Callee.QualifiedName())
		}
		return m.callDirect(node, in.Callee, args)

	case ir.OpRemoteCall:
		recv := frame[in.Args[0]]
		if recv.r == nil {
			if recv.v.IsNull() {
				return value{}, fmt.Errorf("interp: remote call %s on null", in.Callee.QualifiedName())
			}
			return value{}, fmt.Errorf("interp: remote call %s on non-remote value", in.Callee.QualifiedName())
		}
		cs := m.sites[in.SiteID]
		if cs == nil {
			return value{}, fmt.Errorf("interp: call site %d not registered", in.SiteID)
		}
		params := in.Callee.Params
		argVals := make([]model.Value, 0, len(in.Args)-1)
		for i, a := range in.Args[1:] {
			av := frame[a]
			if av.r != nil {
				return value{}, fmt.Errorf("interp: remote reference argument to %s is not supported", in.Callee.QualifiedName())
			}
			if i < len(params) {
				av = coerce(av, params[i].Type)
			}
			argVals = append(argVals, av.v)
		}
		if m.OnRemoteArgs != nil {
			m.OnRemoteArgs(in.SiteID, argVals)
		}
		rets, err := cs.Invoke(node, recv.r.ref, argVals)
		if err != nil {
			return value{}, err
		}
		if m.OnRemoteRet != nil && len(rets) > 0 {
			m.OnRemoteRet(in.SiteID, rets[0])
		}
		if in.Dst == nil || len(rets) == 0 {
			return value{}, nil
		}
		return plain(rets[0]), nil
	}
	return value{}, fmt.Errorf("interp: unhandled op %v", in.Op)
}

// arrayClass maps a MiniJP array type to its runtime class.
func (m *Machine) arrayClass(at *lang.ArrayType) (*model.Class, error) {
	switch et := at.Elem.(type) {
	case *lang.PrimType:
		switch et.Kind {
		case lang.PDouble:
			return m.res.Registry.DoubleArray(), nil
		case lang.PInt, lang.PBoolean:
			return m.res.Registry.IntArray(), nil
		}
		return nil, fmt.Errorf("interp: unsupported array %s", at)
	case *lang.ClassType:
		mc, ok := m.res.ModelClass(et.Decl.Name)
		if !ok {
			return nil, fmt.Errorf("interp: no model class %s", et.Decl.Name)
		}
		return m.res.Registry.ArrayOf(mc), nil
	case *lang.ArrayType:
		inner, err := m.arrayClass(et)
		if err != nil {
			return nil, err
		}
		return m.res.Registry.ArrayOf(inner), nil
	}
	return nil, fmt.Errorf("interp: unsupported array %s", at)
}

func object(v value) (*model.Object, error) {
	if v.r != nil {
		return nil, fmt.Errorf("interp: field/array access through a remote reference")
	}
	if v.v.O == nil {
		return nil, fmt.Errorf("interp: null dereference")
	}
	return v.v.O, nil
}

func loadIdx(av, iv value) (value, error) {
	o, err := object(av)
	if err != nil {
		return value{}, err
	}
	i := int(iv.v.I)
	if i < 0 || i >= o.Len() {
		return value{}, fmt.Errorf("interp: index %d out of bounds [0,%d)", i, o.Len())
	}
	switch o.Class.Kind {
	case model.KDoubleArray:
		return plain(model.Double(o.Doubles[i])), nil
	case model.KIntArray:
		return plain(model.Int(o.Ints[i])), nil
	case model.KByteArray:
		return plain(model.Int(int64(o.Bytes[i]))), nil
	case model.KRefArray:
		return plain(model.Ref(o.Refs[i])), nil
	}
	return value{}, fmt.Errorf("interp: indexing non-array %s", o.Class.Name)
}

func storeIdx(av, iv, vv value) error {
	o, err := object(av)
	if err != nil {
		return err
	}
	i := int(iv.v.I)
	if i < 0 || i >= o.Len() {
		return fmt.Errorf("interp: index %d out of bounds [0,%d)", i, o.Len())
	}
	switch o.Class.Kind {
	case model.KDoubleArray:
		if vv.v.Kind == model.FInt {
			o.Doubles[i] = float64(vv.v.I)
		} else {
			o.Doubles[i] = vv.v.D
		}
	case model.KIntArray:
		o.Ints[i] = vv.v.I
	case model.KByteArray:
		o.Bytes[i] = byte(vv.v.I)
	case model.KRefArray:
		if vv.r != nil {
			return fmt.Errorf("interp: cannot store remote reference into array")
		}
		o.Refs[i] = vv.v.O
	default:
		return fmt.Errorf("interp: indexing non-array %s", o.Class.Name)
	}
	return nil
}

// coerce widens int to double where the static type demands it.
func coerce(v value, t lang.Type) value {
	if v.r != nil {
		return v
	}
	if p, ok := t.(*lang.PrimType); ok && p.Kind == lang.PDouble && v.v.Kind == model.FInt {
		return plain(model.Double(float64(v.v.I)))
	}
	return v
}

func zeroOf(t lang.Type) model.Value {
	switch tt := t.(type) {
	case *lang.PrimType:
		switch tt.Kind {
		case lang.PInt:
			return model.Int(0)
		case lang.PDouble:
			return model.Double(0)
		case lang.PBoolean:
			return model.Bool(false)
		case lang.PString:
			return model.Str("")
		}
	}
	return model.Null()
}

// binop evaluates a binary operation with Java-style int→double
// promotion.
func binop(op string, l, r value) (value, error) {
	// Reference equality (objects, remote refs, null).
	if op == "==" || op == "!=" {
		if l.r != nil || r.r != nil {
			eq := l.r != nil && r.r != nil && l.r.ref == r.r.ref
			if op == "!=" {
				eq = !eq
			}
			return plain(model.Bool(eq)), nil
		}
		if l.v.Kind == model.FRef || r.v.Kind == model.FRef {
			eq := l.v.O == r.v.O
			if op == "!=" {
				eq = !eq
			}
			return plain(model.Bool(eq)), nil
		}
	}
	switch op {
	case "&&":
		return plain(model.Bool(l.v.AsBool() && r.v.AsBool())), nil
	case "||":
		return plain(model.Bool(l.v.AsBool() || r.v.AsBool())), nil
	}

	dbl := l.v.Kind == model.FDouble || r.v.Kind == model.FDouble
	if dbl {
		lf, rf := asF(l.v), asF(r.v)
		switch op {
		case "+":
			return plain(model.Double(lf + rf)), nil
		case "-":
			return plain(model.Double(lf - rf)), nil
		case "*":
			return plain(model.Double(lf * rf)), nil
		case "/":
			return plain(model.Double(lf / rf)), nil
		case "<":
			return plain(model.Bool(lf < rf)), nil
		case "<=":
			return plain(model.Bool(lf <= rf)), nil
		case ">":
			return plain(model.Bool(lf > rf)), nil
		case ">=":
			return plain(model.Bool(lf >= rf)), nil
		case "==":
			return plain(model.Bool(lf == rf)), nil
		case "!=":
			return plain(model.Bool(lf != rf)), nil
		}
	} else {
		li, ri := l.v.I, r.v.I
		switch op {
		case "+":
			return plain(model.Int(li + ri)), nil
		case "-":
			return plain(model.Int(li - ri)), nil
		case "*":
			return plain(model.Int(li * ri)), nil
		case "/":
			if ri == 0 {
				return value{}, fmt.Errorf("interp: division by zero")
			}
			return plain(model.Int(li / ri)), nil
		case "%":
			if ri == 0 {
				return value{}, fmt.Errorf("interp: division by zero")
			}
			return plain(model.Int(li % ri)), nil
		case "<":
			return plain(model.Bool(li < ri)), nil
		case "<=":
			return plain(model.Bool(li <= ri)), nil
		case ">":
			return plain(model.Bool(li > ri)), nil
		case ">=":
			return plain(model.Bool(li >= ri)), nil
		case "==":
			return plain(model.Bool(li == ri)), nil
		case "!=":
			return plain(model.Bool(li != ri)), nil
		}
	}
	return value{}, fmt.Errorf("interp: bad operator %q", op)
}

func asF(v model.Value) float64 {
	if v.Kind == model.FInt {
		return float64(v.I)
	}
	return v.D
}
