// Package interp executes compiled MiniJP programs on the RMI
// cluster, completing the Manta-JavaParty reproduction: the same
// program that the optimizing compiler analyzed actually *runs*
// distributed — `new RemoteClass()` places instances round-robin over
// the nodes, every remote call site goes through the runtime stub
// built from its compiled serialization plans, and remote method
// bodies execute on the owning node (advancing that node's virtual
// clock).
//
// The interpreter works directly on the SSA IR, which doubles as a
// semantic check of the lowering (the benchmark tables never execute
// MiniJP; the examples and tests here do).
//
// Known deviations from full JavaParty, documented here once:
//   - static fields live in one machine-wide table (a single logical
//     JVM image) rather than on a home node;
//   - remote references can be held in locals and passed to *local*
//     calls, but not serialized as RMI arguments or stored into object
//     fields (our wire format has no stub encoding).
package interp

import (
	"fmt"
	"hash/fnv"
	"sync"

	"cormi/internal/apps/appkit"
	"cormi/internal/core"
	"cormi/internal/lang"
	"cormi/internal/model"
	"cormi/internal/rmi"
)

// value is an interpreter value: either a plain runtime value or a
// remote reference.
type value struct {
	v model.Value
	r *remoteRef
}

type remoteRef struct {
	ref   rmi.Ref
	class *lang.ClassDecl
}

func plain(v model.Value) value { return value{v: v} }

// Machine runs one compiled program on one cluster.
type Machine struct {
	res     *core.Result
	cluster *rmi.Cluster
	level   rmi.OptLevel

	sites []*rmi.CallSite // indexed by SiteID; nil for dead sites

	staticMu sync.Mutex
	statics  map[*lang.FieldDecl]value

	placeMu  sync.Mutex
	nextTurn int

	// OnRemoteArgs and OnRemoteRet, when non-nil, observe every remote
	// invocation the interpreter performs: the serialized argument
	// values just before the call-site stub runs, and the returned
	// value just after. The soundness fuzzer uses them to check the
	// compiler's static verdicts (e.g. proved-acyclic argument graphs)
	// against the concrete object graphs that actually cross the wire.
	// Hooks run on the caller's goroutine; they must not mutate the
	// values.
	OnRemoteArgs func(siteID int, args []model.Value)
	OnRemoteRet  func(siteID int, ret model.Value)
}

// New prepares a machine: it registers every live remote call site of
// the compiled program on the cluster at the given optimization level.
// The cluster must share the compile's registry.
func New(res *core.Result, cluster *rmi.Cluster, level rmi.OptLevel) (*Machine, error) {
	m := &Machine{
		res:     res,
		cluster: cluster,
		level:   level,
		sites:   make([]*rmi.CallSite, len(res.Sites)),
		statics: make(map[*lang.FieldDecl]value),
	}
	for i, si := range res.Sites {
		if si.Dead {
			continue
		}
		cs, err := appkit.Register(cluster, level, si)
		if err != nil {
			return nil, err
		}
		m.sites[i] = cs
	}
	return m, nil
}

// RunMain interprets the static, parameterless method main of the
// named class on node 0 and returns its value (zero Value for void).
func (m *Machine) RunMain(class string) (model.Value, error) {
	cd, ok := m.res.Lang.Classes[class]
	if !ok {
		return model.Value{}, fmt.Errorf("interp: no class %s", class)
	}
	md := cd.MethodByName("main")
	if md == nil || !md.Static || len(md.Params) != 0 {
		return model.Value{}, fmt.Errorf("interp: %s has no static main()", class)
	}
	v, err := m.callDirect(m.cluster.Node(0), md, nil)
	if err != nil {
		return model.Value{}, err
	}
	return v.v, nil
}

// placeRemote allocates a remote instance on the next node round
// robin, exporting an interpreter-backed service for it.
func (m *Machine) placeRemote(cd *lang.ClassDecl) (*remoteRef, error) {
	m.placeMu.Lock()
	node := m.cluster.Node(m.nextTurn % m.cluster.Size())
	m.nextTurn++
	m.placeMu.Unlock()

	mc, ok := m.res.ModelClass(cd.Name)
	if !ok {
		return nil, fmt.Errorf("interp: no model class for %s", cd.Name)
	}
	self := model.New(mc) // the remote instance's field storage
	methods := make(map[string]rmi.Method)
	for c := cd; c != nil; c = c.Super {
		for _, md := range c.Methods {
			md := md
			if md.IsCtor || md.Static || md.Body == nil {
				continue
			}
			if _, dup := methods[md.Name]; dup {
				continue
			}
			methods[md.Name] = func(call *rmi.Call, args []model.Value) []model.Value {
				vals := make([]value, 0, len(args)+1)
				vals = append(vals, plain(model.Ref(self)))
				for _, a := range args {
					vals = append(vals, plain(a))
				}
				ret, err := m.exec(call.Node, m.res.IR.FuncOf[md], vals)
				if err != nil {
					panic(fmt.Sprintf("interp: %s: %v", md.QualifiedName(), err))
				}
				if lang.TypeEq(md.Ret, lang.VoidType) {
					return nil
				}
				return []model.Value{ret.v}
			}
		}
	}
	ref := node.Export(&rmi.Service{Name: cd.Name, Methods: methods})
	return &remoteRef{ref: ref, class: cd}, nil
}

// callDirect interprets a (static or local) method on the given node.
func (m *Machine) callDirect(node *rmi.Node, md *lang.MethodDecl, args []value) (value, error) {
	fn, ok := m.res.IR.FuncOf[md]
	if !ok {
		return value{}, fmt.Errorf("interp: %s has no body", md.QualifiedName())
	}
	return m.exec(node, fn, args)
}

// hashString reproduces the deterministic String.hashCode builtin.
func hashString(s string) int64 {
	h := fnv.New32a()
	h.Write([]byte(s))
	return int64(int32(h.Sum32()))
}
