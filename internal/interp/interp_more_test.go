package interp

import (
	"strings"
	"testing"

	"cormi/internal/core"
	"cormi/internal/model"
	"cormi/internal/rmi"
)

func mustMachine(t *testing.T, src string, level rmi.OptLevel, nodes int) (*Machine, *rmi.Cluster) {
	t.Helper()
	cluster := rmi.New(nodes)
	t.Cleanup(cluster.Close)
	res, err := core.CompileInto(src, cluster.Registry)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	m, err := New(res, cluster, level)
	if err != nil {
		t.Fatalf("machine: %v", err)
	}
	return m, cluster
}

func wantRunErr(t *testing.T, src, frag string) {
	t.Helper()
	m, _ := mustMachine(t, src, rmi.LevelSite, 2)
	_, err := m.RunMain("Main")
	if err == nil || !strings.Contains(err.Error(), frag) {
		t.Fatalf("want error containing %q, got %v", frag, err)
	}
}

func TestRemoteCallOnNull(t *testing.T) {
	wantRunErr(t, `
remote class W { void f() { } }
class Main {
	static void main() {
		W w = null;
		w.f();
	}
}`, "on null")
}

func TestRemoteRefFieldStoreRejected(t *testing.T) {
	wantRunErr(t, `
remote class W { void f() { } }
class Holder { W w; }
class Main {
	static void main() {
		Holder h = new Holder();
		h.w = new W();
	}
}`, "remote reference")
}

func TestRemoteRefAsRMIArgumentRejected(t *testing.T) {
	wantRunErr(t, `
remote class W {
	void take(W other) { }
}
class Main {
	static void main() {
		W a = new W();
		W b = new W();
		a.take(b);
	}
}`, "not supported")
}

func TestRemoteCtorRunsViaLocalPathError(t *testing.T) {
	// Constructors on remote classes would need to run on the remote
	// node; the interpreter rejects the direct call on the reference.
	wantRunErr(t, `
remote class W {
	int x;
	W(int v) { this.x = v; }
	void f() { }
}
class Main {
	static void main() {
		W w = new W(3);
		w.f();
	}
}`, "remote reference")
}

func TestNegativeArraySize(t *testing.T) {
	wantRunErr(t, `
class Main {
	static void main() {
		int n = 0 - 4;
		int[] a = new int[n];
	}
}`, "negative array size")
}

func TestBooleanAndStringOps(t *testing.T) {
	v, _ := run(t, `
class Main {
	static boolean main() {
		boolean a = true;
		boolean b = !a;
		boolean c = a && !b || false;
		String s = "x";
		String u = "x";
		return c && s.length() == u.length() && 1 <= 2 && 2 >= 2 && 1 != 2;
	}
}`, "Main", rmi.LevelSite, 1)
	if !v.AsBool() {
		t.Fatalf("main = %v", v)
	}
}

func TestDoubleArithmeticAndUnary(t *testing.T) {
	v, _ := run(t, `
class Main {
	static double main() {
		double a = 7.5;
		double b = -a;
		double c = a * 2.0 / 3.0 - 0.5 + b;
		if (c < 0.0) { c = -c; }
		return c;
	}
}`, "Main", rmi.LevelSite, 1)
	want := 7.5*2.0/3.0 - 0.5 - 7.5
	if want < 0 {
		want = -want
	}
	if v.D != want {
		t.Fatalf("main = %v want %v", v.D, want)
	}
}

func TestObjectIdentityEquality(t *testing.T) {
	v, _ := run(t, `
class P { int x; }
class Main {
	static boolean main() {
		P a = new P();
		P b = new P();
		P c = a;
		return a == c && a != b && b != null;
	}
}`, "Main", rmi.LevelSite, 1)
	if !v.AsBool() {
		t.Fatalf("identity equality wrong: %v", v)
	}
}

func TestIntArraysAndModulo(t *testing.T) {
	v, _ := run(t, `
class Main {
	static int main() {
		int[] a = new int[10];
		for (int i = 0; i < 10; i = i + 1) { a[i] = i * i; }
		int s = 0;
		for (int i = 0; i < 10; i = i + 1) {
			if (a[i] % 2 == 0) { s = s + a[i]; }
		}
		return s;
	}
}`, "Main", rmi.LevelSite, 1)
	if v.I != 0+4+16+36+64 {
		t.Fatalf("main = %v", v)
	}
}

func TestVirtualTimeAccountedForRemoteWork(t *testing.T) {
	_, cluster := run(t, `
remote class W {
	double[] work(double[] a) { return a; }
}
class Main {
	static void main() {
		W w = new W();
		W w2 = new W();
		double[] d = new double[512];
		double[] r = w2.work(d);
		double use = r[0];
	}
}`, "Main", rmi.LevelSiteReuseCycle, 2)
	// One remote RMI with a 4KB payload each way: the makespan must at
	// least cover two message flights.
	min := 2 * cluster.Cost.MessageNS(4096)
	if cluster.MaxTime() < min {
		t.Fatalf("makespan %d below causal minimum %d", cluster.MaxTime(), min)
	}
}

// TestInterpStatsMatchDirectDriver cross-checks the interpreter against
// the hand-driven micro benchmark: the Figure 14 program interpreted
// end to end produces the same reuse counters as the Go driver.
func TestInterpStatsMatchDirectDriver(t *testing.T) {
	src := `
class LinkedList {
	LinkedList Next;
	LinkedList(LinkedList n) { this.Next = n; }
}
remote class Foo {
	void send(LinkedList l) { }
}
class Main {
	static void main() {
		LinkedList head = null;
		for (int i = 0; i < 100; i = i + 1) {
			head = new LinkedList(head);
		}
		Foo f = new Foo();
		// One textual call site invoked three times: the reuse cache
		// is per site, so three separate textual calls would each
		// allocate their own cache graph.
		for (int k = 0; k < 3; k = k + 1) {
			f.send(head);
		}
	}
}`
	m, cluster := mustMachine(t, src, rmi.LevelSiteReuseCycle, 2)
	if _, err := m.RunMain("Main"); err != nil {
		t.Fatal(err)
	}
	s := cluster.Counters.Snapshot()
	total := s.LocalRPCs + s.RemoteRPCs
	if total != 3 {
		t.Fatalf("rpcs = %d", total)
	}
	// 3 sends of 100 nodes: first allocates, two reuse.
	if s.AllocObjects != 100 || s.ReusedObjs != 200 {
		t.Fatalf("alloc=%d reused=%d", s.AllocObjects, s.ReusedObjs)
	}
}

func TestModelValueZeroDefaults(t *testing.T) {
	v, _ := run(t, `
class P { int i; double d; boolean b; String s; P next; }
class Main {
	static boolean main() {
		P p = new P();
		return p.i == 0 && p.d == 0.0 && !p.b && p.s.length() == 0 && p.next == null;
	}
}`, "Main", rmi.LevelSite, 1)
	if !v.AsBool() {
		t.Fatalf("zero defaults wrong: %v", v)
	}
	_ = model.Value{}
}

func TestIncrementOperatorsExecute(t *testing.T) {
	v, _ := run(t, `
class Main {
	static int main() {
		int s = 0;
		for (int i = 0; i < 10; i++) {
			s += i;
		}
		s -= 3;
		int j = 4;
		j--;
		int[] a = new int[2];
		a[0]++;
		a[0]++;
		return s + j + a[0];
	}
}`, "Main", rmi.LevelSite, 1)
	if v.I != 45-3+3+2 {
		t.Fatalf("main = %v", v)
	}
}
