package interp

import (
	"strings"
	"testing"

	"cormi/internal/core"
	"cormi/internal/model"
	"cormi/internal/rmi"
)

// run compiles src and interprets Class.main on a fresh cluster at the
// given optimization level, returning main's value and the cluster.
func run(t *testing.T, src, class string, level rmi.OptLevel, nodes int) (model.Value, *rmi.Cluster) {
	t.Helper()
	cluster := rmi.New(nodes)
	t.Cleanup(cluster.Close)
	res, err := core.CompileInto(src, cluster.Registry)
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	m, err := New(res, cluster, level)
	if err != nil {
		t.Fatalf("machine: %v", err)
	}
	v, err := m.RunMain(class)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	return v, cluster
}

func TestArithmeticAndControlFlow(t *testing.T) {
	v, _ := run(t, `
class Main {
	static int main() {
		int s = 0;
		for (int i = 1; i <= 10; i = i + 1) {
			if (i % 2 == 0) { s = s + i; } else { s = s - 1; }
		}
		int j = 0;
		while (j < 3) { j = j + 1; s = s * 2; }
		return s;
	}
}`, "Main", rmi.LevelSiteReuseCycle, 1)
	// sum evens 2..10 = 30, minus 5 odds = 25, *8 = 200.
	if v.I != 200 {
		t.Fatalf("main = %v", v)
	}
}

func TestObjectsFieldsAndDoubles(t *testing.T) {
	v, _ := run(t, `
class Point { double x; double y; }
class Main {
	static double main() {
		Point p = new Point();
		p.x = 3;
		p.y = 4.0;
		return p.x * p.x + p.y * p.y;
	}
}`, "Main", rmi.LevelSiteReuseCycle, 1)
	if v.D != 25 {
		t.Fatalf("main = %v", v)
	}
}

func TestArraysIncludingMultiDim(t *testing.T) {
	v, _ := run(t, `
class Main {
	static double main() {
		double[][] m = new double[3][4];
		for (int i = 0; i < m.length; i = i + 1) {
			for (int j = 0; j < m[i].length; j = j + 1) {
				m[i][j] = i * 10 + j;
			}
		}
		double s = 0.0;
		for (int i = 0; i < 3; i = i + 1) {
			for (int j = 0; j < 4; j = j + 1) {
				s = s + m[i][j];
			}
		}
		return s;
	}
}`, "Main", rmi.LevelSiteReuseCycle, 1)
	// sum of i*10+j over 3x4 = 10*(0+1+2)*4 + (0+1+2+3)*3 = 120+18.
	if v.D != 138 {
		t.Fatalf("main = %v", v)
	}
}

func TestMultiDimArrayRowsAreDistinct(t *testing.T) {
	// The analysis-era lowering shared one inner array; the executable
	// lowering must fill every slot with a fresh row.
	v, _ := run(t, `
class Main {
	static double main() {
		double[][] m = new double[4][4];
		m[0][0] = 7.0;
		return m[1][0] + m[2][0] + m[3][0];
	}
}`, "Main", rmi.LevelSiteReuseCycle, 1)
	if v.D != 0 {
		t.Fatalf("rows share storage: %v", v)
	}
}

func TestConstructorsAndLinkedList(t *testing.T) {
	v, _ := run(t, `
class LinkedList {
	int v;
	LinkedList Next;
	LinkedList(LinkedList n, int x) { this.Next = n; this.v = x; }
}
class Main {
	static int main() {
		LinkedList head = null;
		for (int i = 0; i < 10; i = i + 1) {
			head = new LinkedList(head, i);
		}
		int s = 0;
		while (head != null) {
			s = s + head.v;
			head = head.Next;
		}
		return s;
	}
}`, "Main", rmi.LevelSiteReuseCycle, 1)
	if v.I != 45 {
		t.Fatalf("main = %v", v)
	}
}

func TestStaticsAndStrings(t *testing.T) {
	v, _ := run(t, `
class Main {
	static int counter;
	static void bump() { Main.counter = Main.counter + 1; }
	static int main() {
		for (int i = 0; i < 5; i = i + 1) { Main.bump(); }
		String s = "hello";
		return counter + s.length();
	}
}`, "Main", rmi.LevelSiteReuseCycle, 1)
	if v.I != 10 {
		t.Fatalf("main = %v", v)
	}
}

func TestRemoteInvocationEndToEnd(t *testing.T) {
	// The Figure 12 array benchmark, actually executed: the remote
	// send sums the matrix it received.
	src := `
remote class ArrayBench {
	double sum;
	double send(double[][] arr) {
		double s = 0.0;
		for (int i = 0; i < arr.length; i = i + 1) {
			for (int j = 0; j < arr[i].length; j = j + 1) {
				s = s + arr[i][j];
			}
		}
		this.sum = s;
		return s;
	}
}
class Main {
	static double main() {
		double[][] arr = new double[16][16];
		for (int i = 0; i < 16; i = i + 1) {
			for (int j = 0; j < 16; j = j + 1) {
				arr[i][j] = i + j;
			}
		}
		ArrayBench f = new ArrayBench();
		double total = 0.0;
		for (int k = 0; k < 5; k = k + 1) {
			total = total + f.send(arr);
		}
		return total;
	}
}`
	want := 0.0
	for i := 0; i < 16; i++ {
		for j := 0; j < 16; j++ {
			want += float64(i + j)
		}
	}
	for _, level := range rmi.AllLevels {
		v, cluster := run(t, src, "Main", level, 2)
		if v.D != 5*want {
			t.Fatalf("%v: main = %v, want %v", level, v.D, 5*want)
		}
		s := cluster.Counters.Snapshot()
		if s.RemoteRPCs+s.LocalRPCs != 5 {
			t.Fatalf("%v: rpcs = %d", level, s.RemoteRPCs+s.LocalRPCs)
		}
	}
}

func TestRemoteObjectGraphArgument(t *testing.T) {
	// A linked list crosses the wire into a remote method, which
	// mutates its copy; the caller's list must be unaffected
	// (cloning/serialization semantics).
	v, _ := run(t, `
class Node { int v; Node next; Node(Node n, int x) { this.next = n; this.v = x; } }
remote class Acc {
	int sum(Node head) {
		int s = 0;
		Node cur = head;
		while (cur != null) {
			s = s + cur.v;
			cur.v = 0;
			cur = cur.next;
		}
		return s;
	}
}
class Main {
	static int main() {
		Node head = null;
		for (int i = 1; i <= 4; i = i + 1) { head = new Node(head, i); }
		Acc a = new Acc();
		int first = a.sum(head);
		int second = a.sum(head);
		return first + second;
	}
}`, "Main", rmi.LevelSiteReuseCycle, 2)
	if v.I != 20 {
		t.Fatalf("mutation leaked across the RMI boundary: %v", v)
	}
}

func TestRemotePlacementRoundRobin(t *testing.T) {
	_, cluster := run(t, `
remote class W { int id() { return 1; } }
class Main {
	static int main() {
		int s = 0;
		W a = new W();
		W b = new W();
		W c = new W();
		s = s + a.id() + b.id() + c.id();
		return s;
	}
}`, "Main", rmi.LevelSite, 2)
	st := cluster.Counters.Snapshot()
	// Three instances over two nodes: at least one local, one remote.
	if st.RemoteRPCs == 0 || st.LocalRPCs == 0 {
		t.Fatalf("placement not distributed: %+v", st)
	}
}

func TestFigure3LoopProgramRuns(t *testing.T) {
	// The very program that motivated the tuple fix, executed.
	v, _ := run(t, `
class Obj { int x; }
remote class Foo {
	Obj foo(Obj a) {
		a.x = a.x + 1;
		return a;
	}
}
class Main {
	static int main() {
		Foo me = new Foo();
		Obj t = new Obj();
		for (int i = 0; i < 100; i = i + 1) {
			t = me.foo(t);
		}
		return t.x;
	}
}`, "Main", rmi.LevelSiteReuseCycle, 2)
	if v.I != 100 {
		t.Fatalf("loop result = %v", v)
	}
}

func TestHashCodeBuiltinDeterministic(t *testing.T) {
	v1, _ := run(t, `
class Main { static int main() { String s = "/index.html"; return s.hashCode(); } }`,
		"Main", rmi.LevelSite, 1)
	v2, _ := run(t, `
class Main { static int main() { String s = "/index.html"; return s.hashCode(); } }`,
		"Main", rmi.LevelSite, 1)
	if v1.I != v2.I {
		t.Fatal("hashCode not deterministic")
	}
}

func TestRuntimeErrors(t *testing.T) {
	cases := []struct{ src, frag string }{
		{`class Main { static int main() { int[] a = new int[2]; return a[5]; } }`, "out of bounds"},
		{`class Main { static int main() { int x = 1; int y = 0; return x / y; } }`, "division by zero"},
		{`class P { int x; } class Main { static int main() { P p = null; return p.x; } }`, "null dereference"},
		{`class Main { static int main() { while (true) { int x = 1; } return 0; } }`, "step limit"},
	}
	for _, tc := range cases {
		cluster := rmi.New(1)
		res, err := core.CompileInto(tc.src, cluster.Registry)
		if err != nil {
			t.Fatalf("compile: %v", err)
		}
		m, err := New(res, cluster, rmi.LevelSite)
		if err != nil {
			t.Fatal(err)
		}
		_, err = m.RunMain("Main")
		if err == nil || !strings.Contains(err.Error(), tc.frag) {
			t.Fatalf("want error containing %q, got %v", tc.frag, err)
		}
		cluster.Close()
	}
}

func TestNoMainError(t *testing.T) {
	cluster := rmi.New(1)
	defer cluster.Close()
	res, err := core.CompileInto(`class A { void f() { } }`, cluster.Registry)
	if err != nil {
		t.Fatal(err)
	}
	m, err := New(res, cluster, rmi.LevelSite)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.RunMain("A"); err == nil {
		t.Fatal("missing main accepted")
	}
	if _, err := m.RunMain("Nope"); err == nil {
		t.Fatal("missing class accepted")
	}
}
