package ir

// Dominators computes the immediate-dominator tree of f with the
// Cooper–Harvey–Kennedy iterative algorithm. The result maps each
// reachable block to its immediate dominator (the entry maps to
// itself). Unreachable blocks are absent.
func Dominators(f *Func) map[*Block]*Block {
	order := postorder(f)
	// Reverse postorder numbering.
	num := make(map[*Block]int, len(order))
	for i, b := range order {
		num[b] = len(order) - 1 - i
	}
	rpo := make([]*Block, len(order))
	for _, b := range order {
		rpo[num[b]] = b
	}

	idom := make(map[*Block]*Block, len(order))
	entry := f.Entry()
	idom[entry] = entry

	intersect := func(a, b *Block) *Block {
		for a != b {
			for num[a] > num[b] {
				a = idom[a]
			}
			for num[b] > num[a] {
				b = idom[b]
			}
		}
		return a
	}

	for changed := true; changed; {
		changed = false
		for _, b := range rpo {
			if b == entry {
				continue
			}
			var newIdom *Block
			for _, p := range b.Preds {
				if _, ok := idom[p]; !ok {
					continue // unreachable or not yet processed
				}
				if newIdom == nil {
					newIdom = p
				} else {
					newIdom = intersect(p, newIdom)
				}
			}
			if newIdom == nil {
				continue
			}
			if idom[b] != newIdom {
				idom[b] = newIdom
				changed = true
			}
		}
	}
	return idom
}

// postorder returns the reachable blocks of f in DFS postorder.
func postorder(f *Func) []*Block {
	var order []*Block
	seen := make(map[*Block]bool)
	var walk func(*Block)
	walk = func(b *Block) {
		if seen[b] {
			return
		}
		seen[b] = true
		for _, s := range b.Succs {
			walk(s)
		}
		order = append(order, b)
	}
	walk(f.Entry())
	return order
}

// Dominates reports whether a dominates b under the given idom tree
// (reflexively).
func Dominates(idom map[*Block]*Block, a, b *Block) bool {
	for {
		if a == b {
			return true
		}
		next, ok := idom[b]
		if !ok || next == b {
			return false
		}
		b = next
	}
}
