// Package ir is the compiler's intermediate representation: a
// three-address, control-flow-graph form in SSA (§2 step 1 of the
// paper requires SSA before the heap analysis). SSA is built directly
// during lowering with the sealed-block algorithm of Braun et al.;
// dominators are computed separately and used to validate the result.
package ir

import (
	"fmt"

	"cormi/internal/lang"
)

// Op enumerates instruction operations.
type Op int

const (
	// OpConst materializes a literal (int, double, boolean, String or
	// null, per the Const* fields).
	OpConst Op = iota
	// OpBin is a binary operation (BinOp field).
	OpBin
	// OpUn is unary - or !.
	OpUn
	// OpNew allocates a class instance (Class, AllocID).
	OpNew
	// OpNewArray allocates one array level (AllocID, the result type
	// is Dst.Type).
	OpNewArray
	// OpLoad reads Args[0].Field.
	OpLoad
	// OpStore writes Args[1] into Args[0].Field.
	OpStore
	// OpLoadStatic reads a static field.
	OpLoadStatic
	// OpStoreStatic writes Args[0] into a static field.
	OpStoreStatic
	// OpLoadIdx reads Args[0][Args[1]].
	OpLoadIdx
	// OpStoreIdx writes Args[2] into Args[0][Args[1]].
	OpStoreIdx
	// OpArrayLen reads Args[0].length.
	OpArrayLen
	// OpCall is a direct (non-RMI) call; Args holds the receiver
	// first for instance methods and constructors.
	OpCall
	// OpRemoteCall is an RMI call site (SiteID); Args[0] is the remote
	// receiver.
	OpRemoteCall
	// OpStrBuiltin is a String builtin (hashCode/length) on Args[0].
	OpStrBuiltin
	// OpRet returns Args[0] if present.
	OpRet
	// OpJump transfers to Targets[0].
	OpJump
	// OpBranch tests Args[0] and transfers to Targets[0] (true) or
	// Targets[1] (false).
	OpBranch
	// OpPhi merges Args[i] flowing in from PhiPreds[i].
	OpPhi
	// OpCopy is a plain move (used for parameter passing summaries).
	OpCopy
)

var opNames = map[Op]string{
	OpConst: "const", OpBin: "bin", OpUn: "un", OpNew: "new",
	OpNewArray: "newarray", OpLoad: "load", OpStore: "store",
	OpLoadStatic: "loadstatic", OpStoreStatic: "storestatic",
	OpLoadIdx: "loadidx", OpStoreIdx: "storeidx", OpArrayLen: "arraylen",
	OpCall: "call", OpRemoteCall: "rcall", OpStrBuiltin: "strbuiltin",
	OpRet: "ret", OpJump: "jump", OpBranch: "branch", OpPhi: "phi",
	OpCopy: "copy",
}

func (o Op) String() string { return opNames[o] }

// Value is an SSA value.
type Value struct {
	ID   int
	Def  *Instr // nil for parameters
	Type lang.Type
	Name string // debug name
	Uses []*Instr
}

func (v *Value) String() string {
	if v == nil {
		return "_"
	}
	if v.Name != "" {
		return fmt.Sprintf("v%d(%s)", v.ID, v.Name)
	}
	return fmt.Sprintf("v%d", v.ID)
}

// Instr is one instruction.
type Instr struct {
	Op    Op
	Block *Block
	Dst   *Value
	Args  []*Value

	// Literal payloads for OpConst.
	ConstInt    int64
	ConstFloat  float64
	ConstBool   bool
	ConstStr    string
	ConstIsNull bool
	ConstKind   lang.PrimKind

	BinOp    string           // OpBin/OpUn operator text
	Class    *lang.ClassDecl  // OpNew
	AllocID  int              // OpNew/OpNewArray allocation site number
	Field    *lang.FieldDecl  // field/static ops
	Callee   *lang.MethodDecl // OpCall/OpRemoteCall
	SiteID   int              // OpRemoteCall call-site number
	Builtin  string           // OpStrBuiltin
	Targets  []*Block         // OpJump/OpBranch
	PhiPreds []*Block         // OpPhi, aligned with Args
}

// Block is a basic block.
type Block struct {
	ID     int
	Func   *Func
	Instrs []*Instr
	Preds  []*Block
	Succs  []*Block

	// SSA construction state (Braun et al.).
	sealed         bool
	defs           map[int]*Value // variable key -> current definition
	incompletePhis map[int]*Instr
}

// Terminator returns the block's final control instruction, or nil.
func (b *Block) Terminator() *Instr {
	if len(b.Instrs) == 0 {
		return nil
	}
	t := b.Instrs[len(b.Instrs)-1]
	switch t.Op {
	case OpJump, OpBranch, OpRet:
		return t
	}
	return nil
}

// Func is one lowered method.
type Func struct {
	Name   string
	Method *lang.MethodDecl
	// Params are the SSA parameter values; for instance methods and
	// constructors Params[0] is the receiver ("this").
	Params []*Value
	Blocks []*Block

	nextValue int
}

// Entry returns the entry block.
func (f *Func) Entry() *Block { return f.Blocks[0] }

// Instrs iterates all instructions of f in block order.
func (f *Func) Instrs(yield func(*Instr) bool) {
	for _, b := range f.Blocks {
		for _, in := range b.Instrs {
			if !yield(in) {
				return
			}
		}
	}
}

// Program is the lowered compilation unit.
type Program struct {
	Lang  *lang.Program
	Funcs []*Func
	// FuncOf maps declarations with bodies to their lowered form.
	FuncOf map[*lang.MethodDecl]*Func
	// RemoteSites indexes the OpRemoteCall instructions by SiteID.
	RemoteSites []*Instr
	// AllocSites indexes OpNew/OpNewArray instructions by AllocID
	// (entries may be nil for allocation sites in bodiless methods).
	AllocSites []*Instr
}
