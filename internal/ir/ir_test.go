package ir

import (
	"strings"
	"testing"

	"cormi/internal/lang"
)

func lower(t *testing.T, src string) *Program {
	t.Helper()
	f, err := lang.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	cp, err := lang.Check(f)
	if err != nil {
		t.Fatalf("check: %v", err)
	}
	p, err := Lower(cp)
	if err != nil {
		t.Fatalf("lower: %v", err)
	}
	if err := Validate(p); err != nil {
		t.Fatalf("validate: %v\n%s", err, dumpFuncs(p))
	}
	return p
}

func dumpFuncs(p *Program) string {
	var b strings.Builder
	for _, f := range p.Funcs {
		b.WriteString(f.String())
	}
	return b.String()
}

func fn(t *testing.T, p *Program, name string) *Func {
	t.Helper()
	for _, f := range p.Funcs {
		if f.Name == name {
			return f
		}
	}
	t.Fatalf("no function %s", name)
	return nil
}

func countOps(f *Func, op Op) int {
	n := 0
	f.Instrs(func(in *Instr) bool {
		if in.Op == op {
			n++
		}
		return true
	})
	return n
}

func TestStraightLineLowering(t *testing.T) {
	p := lower(t, `
class A {
	int x;
	static void f() {
		A a = new A();
		a.x = 3;
		int y = a.x + 1;
	}
}`)
	f := fn(t, p, "A.f")
	if len(f.Blocks) != 1 {
		t.Fatalf("blocks = %d", len(f.Blocks))
	}
	if countOps(f, OpNew) != 1 || countOps(f, OpStore) != 1 || countOps(f, OpLoad) != 1 ||
		countOps(f, OpBin) != 1 || countOps(f, OpRet) != 1 {
		t.Fatalf("op mix wrong:\n%s", f.String())
	}
	if len(p.AllocSites) != 1 || p.AllocSites[0] == nil || p.AllocSites[0].Op != OpNew {
		t.Fatal("alloc site not recorded")
	}
}

func TestIfElsePhi(t *testing.T) {
	p := lower(t, `
class A {
	static int f(boolean c) {
		int x = 0;
		if (c) { x = 1; } else { x = 2; }
		return x;
	}
}`)
	f := fn(t, p, "A.f")
	if n := countOps(f, OpPhi); n != 1 {
		t.Fatalf("phis = %d, want 1:\n%s", n, f.String())
	}
	phi := findOp(f, OpPhi)
	if len(phi.Args) != 2 {
		t.Fatalf("phi arity = %d", len(phi.Args))
	}
	// The return must use the phi.
	ret := findOp(f, OpRet)
	if len(ret.Args) != 1 || ret.Args[0] != phi.Dst {
		t.Fatalf("return does not use phi:\n%s", f.String())
	}
}

func findOp(f *Func, op Op) *Instr {
	var found *Instr
	f.Instrs(func(in *Instr) bool {
		if in.Op == op {
			found = in
			return false
		}
		return true
	})
	return found
}

func TestLoopPhi(t *testing.T) {
	p := lower(t, `
class A {
	static int sum(int n) {
		int s = 0;
		for (int i = 0; i < n; i = i + 1) {
			s = s + i;
		}
		return s;
	}
}`)
	f := fn(t, p, "A.sum")
	// Loop header needs phis for s and i.
	if n := countOps(f, OpPhi); n != 2 {
		t.Fatalf("phis = %d, want 2:\n%s", n, f.String())
	}
	// Each phi must have exactly 2 operands (entry + back edge).
	f.Instrs(func(in *Instr) bool {
		if in.Op == OpPhi && len(in.Args) != 2 {
			t.Fatalf("phi arity %d:\n%s", len(in.Args), f.String())
		}
		return true
	})
}

func TestWhileAndNestedLoops(t *testing.T) {
	p := lower(t, `
class A {
	static int f(int n) {
		int total = 0;
		int i = 0;
		while (i < n) {
			int j = 0;
			while (j < i) {
				total = total + 1;
				j = j + 1;
			}
			i = i + 1;
		}
		return total;
	}
}`)
	f := fn(t, p, "A.f")
	if countOps(f, OpBranch) != 2 {
		t.Fatalf("branches = %d:\n%s", countOps(f, OpBranch), f.String())
	}
}

func TestReturnTerminatesLowering(t *testing.T) {
	p := lower(t, `
class A {
	static int f(boolean c) {
		if (c) { return 1; }
		return 2;
	}
}`)
	f := fn(t, p, "A.f")
	if n := countOps(f, OpRet); n != 2 {
		t.Fatalf("returns = %d:\n%s", n, f.String())
	}
}

func TestRemoteCallSiteAndIgnoredReturn(t *testing.T) {
	p := lower(t, `
remote class F {
	int f() { return 1; }
	static void go() {
		F me = new F();
		me.f();
		int used = me.f();
		int sink = used + 1;
		F other = new F();
		int dead = other.f();
	}
}`)
	if len(p.RemoteSites) != 3 {
		t.Fatalf("remote sites = %d", len(p.RemoteSites))
	}
	if !IgnoredReturn(p.RemoteSites[0]) {
		t.Fatal("bare call should have ignored return")
	}
	if IgnoredReturn(p.RemoteSites[1]) {
		t.Fatal("used call misclassified")
	}
	if !IgnoredReturn(p.RemoteSites[2]) {
		t.Fatal("dead-assignment call should count as ignored")
	}
}

func TestConstructorLowering(t *testing.T) {
	p := lower(t, `
class LinkedList {
	LinkedList Next;
	LinkedList(LinkedList n) { this.Next = n; }
	static LinkedList build(int n) {
		LinkedList head = null;
		for (int i = 0; i < n; i = i + 1) {
			head = new LinkedList(head);
		}
		return head;
	}
}`)
	build := fn(t, p, "LinkedList.build")
	// new + constructor call.
	if countOps(build, OpNew) != 1 || countOps(build, OpCall) != 1 {
		t.Fatalf("ctor lowering wrong:\n%s", build.String())
	}
	ctor := fn(t, p, "LinkedList.LinkedList")
	if len(ctor.Params) != 2 {
		t.Fatalf("ctor params = %d (this + n)", len(ctor.Params))
	}
	if countOps(ctor, OpStore) != 1 {
		t.Fatalf("ctor store missing:\n%s", ctor.String())
	}
}

func TestMultiDimArrayLowering(t *testing.T) {
	p := lower(t, `
class A {
	static double[][] mk() {
		double[][] m = new double[16][16];
		m[0][0] = 1.5;
		return m;
	}
}`)
	f := fn(t, p, "A.mk")
	// Two allocation levels (outer double[][], inner double[]) plus a
	// store linking them.
	if countOps(f, OpNewArray) != 2 {
		t.Fatalf("array allocs = %d:\n%s", countOps(f, OpNewArray), f.String())
	}
	if countOps(f, OpStoreIdx) != 2 { // link store + user store
		t.Fatalf("storeidx = %d:\n%s", countOps(f, OpStoreIdx), f.String())
	}
	if len(p.AllocSites) != 2 {
		t.Fatalf("alloc sites = %d", len(p.AllocSites))
	}
}

func TestStaticsAndBuiltins(t *testing.T) {
	p := lower(t, `
class A {
	static A cache;
	static int f(String s) {
		A.cache = new A();
		A x = cache;
		return s.hashCode() + s.length();
	}
}`)
	f := fn(t, p, "A.f")
	if countOps(f, OpStoreStatic) != 1 || countOps(f, OpLoadStatic) != 1 {
		t.Fatalf("static ops wrong:\n%s", f.String())
	}
	if countOps(f, OpStrBuiltin) != 2 {
		t.Fatalf("builtins = %d:\n%s", countOps(f, OpStrBuiltin), f.String())
	}
}

func TestDominators(t *testing.T) {
	p := lower(t, `
class A {
	static int f(boolean c, int n) {
		int x = 0;
		if (c) { x = 1; } else { x = 2; }
		for (int i = 0; i < n; i = i + 1) { x = x + 1; }
		return x;
	}
}`)
	f := fn(t, p, "A.f")
	idom := Dominators(f)
	entry := f.Entry()
	if idom[entry] != entry {
		t.Fatal("entry must self-dominate")
	}
	for b := range idom {
		if !Dominates(idom, entry, b) {
			t.Fatalf("entry does not dominate block %d", b.ID)
		}
	}
	// A block never dominates its dominator (except entry).
	for b, d := range idom {
		if b != entry && Dominates(idom, b, d) && b != d {
			t.Fatalf("block %d dominates its idom %d", b.ID, d.ID)
		}
	}
}

func TestUnreachableJoinAfterBothReturn(t *testing.T) {
	lower(t, `
class A {
	static int f(boolean c) {
		if (c) { return 1; } else { return 2; }
	}
}`)
}

func TestValidateCatchesBrokenSSA(t *testing.T) {
	p := lower(t, `
class A { static int f() { int x = 1; return x; } }`)
	f := p.Funcs[0]
	// Corrupt: duplicate destination assignment.
	c := findOp(f, OpConst)
	ret := findOp(f, OpRet)
	bad := &Instr{Op: OpConst, Block: f.Entry(), Dst: c.Dst}
	f.Entry().Instrs = []*Instr{c, bad, ret}
	if err := ValidateFunc(f); err == nil {
		t.Fatal("duplicate assignment accepted")
	}
}

func TestReturnValuesCollection(t *testing.T) {
	p := lower(t, `
class A {
	static int f(boolean c) {
		if (c) { return 1; }
		return 2;
	}
}`)
	f := fn(t, p, "A.f")
	if len(ReturnValues(f)) != 2 {
		t.Fatalf("return values = %d", len(ReturnValues(f)))
	}
}

func TestPrintSmoke(t *testing.T) {
	p := lower(t, `
remote class F {
	F f(F a) { return a; }
	static void go() {
		F me = new F();
		F t = me.f(me);
	}
}`)
	out := dumpFuncs(p)
	for _, frag := range []string{"func F.go", "rcall F.f site=0", "new F @"} {
		if !strings.Contains(out, frag) {
			t.Fatalf("dump missing %q:\n%s", frag, out)
		}
	}
}
