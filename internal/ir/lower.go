package ir

import (
	"fmt"

	"cormi/internal/lang"
)

// Lower converts a checked program to SSA IR.
func Lower(p *lang.Program) (*Program, error) {
	prog := &Program{
		Lang:        p,
		FuncOf:      make(map[*lang.MethodDecl]*Func),
		RemoteSites: make([]*Instr, len(p.RemoteCalls)),
		AllocSites:  make([]*Instr, p.NumAllocSites),
	}
	for _, cd := range p.File.Classes {
		for _, m := range cd.Methods {
			if m.Body == nil {
				continue
			}
			fn, err := lowerFunc(prog, m)
			if err != nil {
				return nil, err
			}
			prog.Funcs = append(prog.Funcs, fn)
			prog.FuncOf[m] = fn
		}
	}
	return prog, nil
}

type builder struct {
	prog *Program
	fn   *Func
	cur  *Block // nil while lowering unreachable code

	scopes   []map[string]int // name -> variable key
	varTypes []lang.Type      // indexed by variable key
}

func lowerFunc(prog *Program, m *lang.MethodDecl) (fn *Func, err error) {
	defer func() {
		if r := recover(); r != nil {
			if e, ok := r.(*lowerPanic); ok {
				err = e.err
				return
			}
			panic(r)
		}
	}()
	b := &builder{prog: prog, fn: &Func{Name: m.QualifiedName(), Method: m}}
	entry := b.newBlock()
	entry.sealed = true
	b.cur = entry
	b.pushScope()

	if !m.Static {
		this := b.newValue(&lang.ClassType{Decl: m.Class}, "this")
		b.fn.Params = append(b.fn.Params, this)
	}
	for _, p := range m.Params {
		v := b.newValue(p.Type, p.Name)
		b.fn.Params = append(b.fn.Params, v)
		key := b.declare(p.Name, p.Type)
		b.writeVar(key, b.cur, v)
	}
	b.block(m.Body)
	// Implicit return at the end of void bodies.
	if b.cur != nil {
		b.emit(&Instr{Op: OpRet})
		b.cur = nil
	}
	b.popScope()
	return b.fn, nil
}

type lowerPanic struct{ err error }

func (b *builder) fail(pos lang.Pos, format string, args ...interface{}) {
	panic(&lowerPanic{err: fmt.Errorf("%s: %s", pos, fmt.Sprintf(format, args...))})
}

// --- construction primitives ----------------------------------------

func (b *builder) newValue(t lang.Type, name string) *Value {
	v := &Value{ID: b.fn.nextValue, Type: t, Name: name}
	b.fn.nextValue++
	return v
}

func (b *builder) newBlock() *Block {
	blk := &Block{
		ID:             len(b.fn.Blocks),
		Func:           b.fn,
		defs:           make(map[int]*Value),
		incompletePhis: make(map[int]*Instr),
	}
	b.fn.Blocks = append(b.fn.Blocks, blk)
	return blk
}

func (b *builder) emit(in *Instr) *Instr {
	if b.cur == nil {
		return in // unreachable code: drop
	}
	in.Block = b.cur
	b.cur.Instrs = append(b.cur.Instrs, in)
	for _, a := range in.Args {
		a.Uses = append(a.Uses, in)
	}
	if in.Dst != nil {
		in.Dst.Def = in
	}
	return in
}

func connect(from, to *Block) {
	from.Succs = append(from.Succs, to)
	to.Preds = append(to.Preds, from)
}

// jumpTo ends the current block with a jump to target (if live).
func (b *builder) jumpTo(target *Block) {
	if b.cur == nil {
		return
	}
	from := b.cur
	b.emit(&Instr{Op: OpJump, Targets: []*Block{target}})
	connect(from, target)
	b.cur = nil
}

func (b *builder) branchTo(cond *Value, t, f *Block) {
	from := b.cur
	b.emit(&Instr{Op: OpBranch, Args: []*Value{cond}, Targets: []*Block{t, f}})
	connect(from, t)
	connect(from, f)
	b.cur = nil
}

// --- scoped variables and Braun-style SSA ----------------------------

func (b *builder) pushScope() { b.scopes = append(b.scopes, map[string]int{}) }
func (b *builder) popScope()  { b.scopes = b.scopes[:len(b.scopes)-1] }

func (b *builder) declare(name string, t lang.Type) int {
	key := len(b.varTypes)
	b.varTypes = append(b.varTypes, t)
	b.scopes[len(b.scopes)-1][name] = key
	return key
}

func (b *builder) varKey(name string) (int, bool) {
	for i := len(b.scopes) - 1; i >= 0; i-- {
		if k, ok := b.scopes[i][name]; ok {
			return k, true
		}
	}
	return 0, false
}

func (b *builder) writeVar(key int, blk *Block, v *Value) {
	blk.defs[key] = v
}

func (b *builder) readVar(key int, blk *Block) *Value {
	if v, ok := blk.defs[key]; ok {
		return v
	}
	var v *Value
	switch {
	case !blk.sealed:
		// Incomplete CFG (loop header): placeholder phi, operands
		// filled in when the block is sealed.
		phi := &Instr{Op: OpPhi, Block: blk, Dst: b.newValue(b.varTypes[key], "")}
		phi.Dst.Def = phi
		blk.Instrs = append([]*Instr{phi}, blk.Instrs...)
		blk.incompletePhis[key] = phi
		v = phi.Dst
	case len(blk.Preds) == 1:
		v = b.readVar(key, blk.Preds[0])
	case len(blk.Preds) == 0:
		// Unreachable join or use before any definition: a typed zero.
		v = b.zeroValueIn(blk, b.varTypes[key])
	default:
		phi := &Instr{Op: OpPhi, Block: blk, Dst: b.newValue(b.varTypes[key], "")}
		phi.Dst.Def = phi
		blk.Instrs = append([]*Instr{phi}, blk.Instrs...)
		b.writeVar(key, blk, phi.Dst)
		v = b.addPhiOperands(key, phi)
	}
	b.writeVar(key, blk, v)
	return v
}

func (b *builder) addPhiOperands(key int, phi *Instr) *Value {
	for _, pred := range phi.Block.Preds {
		v := b.readVar(key, pred)
		phi.Args = append(phi.Args, v)
		phi.PhiPreds = append(phi.PhiPreds, pred)
		v.Uses = append(v.Uses, phi)
	}
	return b.tryRemoveTrivialPhi(phi)
}

// tryRemoveTrivialPhi removes phis of the form v = phi(v, x, x, ...)
// per Braun et al., rerouting uses to the single real operand and
// recursing into phi users that may have become trivial.
func (b *builder) tryRemoveTrivialPhi(phi *Instr) *Value {
	var same *Value
	for _, op := range phi.Args {
		if op == same || op == phi.Dst {
			continue
		}
		if same != nil {
			return phi.Dst // merges at least two values: keep
		}
		same = op
	}
	if same == nil {
		// Unreachable or self-only phi: a typed zero.
		same = b.zeroValueIn(phi.Block, phi.Dst.Type)
	}

	// Unlink phi from its operands' use lists.
	for _, op := range phi.Args {
		op.Uses = removeUse(op.Uses, phi)
	}
	// Remove the phi instruction from its block.
	blk := phi.Block
	for i, in := range blk.Instrs {
		if in == phi {
			blk.Instrs = append(blk.Instrs[:i], blk.Instrs[i+1:]...)
			break
		}
	}
	// Reroute all uses of the phi to `same`.
	users := phi.Dst.Uses
	phi.Dst.Uses = nil
	for _, u := range users {
		if u == phi {
			continue
		}
		for i, a := range u.Args {
			if a == phi.Dst {
				u.Args[i] = same
				same.Uses = append(same.Uses, u)
			}
		}
	}
	// Variable maps may still name the removed phi.
	for _, bb := range b.fn.Blocks {
		for k, v := range bb.defs {
			if v == phi.Dst {
				bb.defs[k] = same
			}
		}
		for k, p := range bb.incompletePhis {
			if p == phi {
				delete(bb.incompletePhis, k)
			}
		}
	}
	// Phi users may have become trivial in turn.
	for _, u := range users {
		if u != phi && u.Op == OpPhi {
			b.tryRemoveTrivialPhi(u)
		}
	}
	return same
}

func removeUse(uses []*Instr, in *Instr) []*Instr {
	out := uses[:0]
	for _, u := range uses {
		if u != in {
			out = append(out, u)
		}
	}
	return out
}

func (b *builder) seal(blk *Block) {
	if blk.sealed {
		return
	}
	blk.sealed = true
	for key, phi := range blk.incompletePhis {
		b.addPhiOperands(key, phi)
	}
	blk.incompletePhis = nil
}

// zeroValueIn emits a typed zero constant into blk.
func (b *builder) zeroValueIn(blk *Block, t lang.Type) *Value {
	in := &Instr{Op: OpConst, Block: blk, Dst: b.newValue(t, "")}
	in.Dst.Def = in
	if lang.IsRef(t) {
		in.ConstIsNull = true
	} else if p, ok := t.(*lang.PrimType); ok {
		in.ConstKind = p.Kind
	}
	// Insert after any leading phis.
	i := 0
	for i < len(blk.Instrs) && blk.Instrs[i].Op == OpPhi {
		i++
	}
	blk.Instrs = append(blk.Instrs[:i], append([]*Instr{in}, blk.Instrs[i:]...)...)
	return in.Dst
}

// --- statements -------------------------------------------------------

func (b *builder) block(blk *lang.Block) {
	b.pushScope()
	for _, s := range blk.Stmts {
		if b.cur == nil {
			break // code after return
		}
		b.stmt(s)
	}
	b.popScope()
}

func (b *builder) stmt(s lang.Stmt) {
	switch st := s.(type) {
	case *lang.Block:
		b.block(st)
	case *lang.VarDecl:
		key := b.declare(st.Name, st.Type)
		var v *Value
		if st.Init != nil {
			v = b.expr(st.Init)
		} else {
			v = b.zeroConst(st.Type)
		}
		b.writeVar(key, b.cur, v)
	case *lang.If:
		cond := b.expr(st.Cond)
		thenB := b.newBlock()
		joinB := b.newBlock()
		elseB := joinB
		if st.Else != nil {
			elseB = b.newBlock()
		}
		b.branchTo(cond, thenB, elseB)
		b.seal(thenB)
		if elseB != joinB {
			b.seal(elseB)
		}
		b.cur = thenB
		b.stmt(st.Then)
		b.jumpTo(joinB)
		if st.Else != nil {
			b.cur = elseB
			b.stmt(st.Else)
			b.jumpTo(joinB)
		}
		b.seal(joinB)
		b.cur = joinB
	case *lang.While:
		header := b.newBlock()
		b.jumpTo(header)
		b.cur = header
		cond := b.expr(st.Cond)
		body := b.newBlock()
		exit := b.newBlock()
		b.branchTo(cond, body, exit)
		b.seal(body)
		b.cur = body
		b.stmt(st.Body)
		b.jumpTo(header)
		b.seal(header)
		b.seal(exit)
		b.cur = exit
	case *lang.For:
		b.pushScope()
		if st.Init != nil {
			b.stmt(st.Init)
		}
		header := b.newBlock()
		b.jumpTo(header)
		b.cur = header
		var cond *Value
		if st.Cond != nil {
			cond = b.expr(st.Cond)
		} else {
			in := b.emit(&Instr{Op: OpConst, ConstKind: lang.PBoolean, ConstBool: true,
				Dst: b.newValue(lang.BooleanType, "")})
			cond = in.Dst
		}
		body := b.newBlock()
		exit := b.newBlock()
		b.branchTo(cond, body, exit)
		b.seal(body)
		b.cur = body
		b.stmt(st.Body)
		if b.cur != nil && st.Post != nil {
			b.expr(st.Post)
		}
		b.jumpTo(header)
		b.seal(header)
		b.seal(exit)
		b.cur = exit
		b.popScope()
	case *lang.Return:
		in := &Instr{Op: OpRet}
		if st.Value != nil {
			in.Args = []*Value{b.expr(st.Value)}
		}
		b.emit(in)
		b.cur = nil
	case *lang.ExprStmt:
		b.exprForEffect(st.X)
	default:
		b.fail(lang.Pos{}, "unhandled statement %T", s)
	}
}

func (b *builder) zeroConst(t lang.Type) *Value {
	in := &Instr{Op: OpConst, Dst: b.newValue(t, "")}
	if lang.IsRef(t) {
		in.ConstIsNull = true
	} else if p, ok := t.(*lang.PrimType); ok {
		in.ConstKind = p.Kind
	}
	b.emit(in)
	return in.Dst
}
