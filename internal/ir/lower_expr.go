package ir

import (
	"fmt"

	"cormi/internal/lang"
)

// exprForEffect lowers an expression statement, discarding the value.
func (b *builder) exprForEffect(e lang.Expr) {
	b.expr(e)
}

// expr lowers one expression to an SSA value.
func (b *builder) expr(e lang.Expr) *Value {
	switch ex := e.(type) {
	case *lang.IntLit:
		in := b.emit(&Instr{Op: OpConst, ConstKind: lang.PInt, ConstInt: ex.Value,
			Dst: b.newValue(lang.IntType, "")})
		return in.Dst
	case *lang.DoubleLit:
		in := b.emit(&Instr{Op: OpConst, ConstKind: lang.PDouble, ConstFloat: ex.Value,
			Dst: b.newValue(lang.DoubleType, "")})
		return in.Dst
	case *lang.BoolLit:
		in := b.emit(&Instr{Op: OpConst, ConstKind: lang.PBoolean, ConstBool: ex.Value,
			Dst: b.newValue(lang.BooleanType, "")})
		return in.Dst
	case *lang.StringLit:
		in := b.emit(&Instr{Op: OpConst, ConstKind: lang.PString, ConstStr: ex.Value,
			Dst: b.newValue(lang.StringType, "")})
		return in.Dst
	case *lang.NullLit:
		in := b.emit(&Instr{Op: OpConst, ConstIsNull: true,
			Dst: b.newValue(lang.NullType, "")})
		return in.Dst
	case *lang.This:
		return b.fn.Params[0]
	case *lang.Ident:
		return b.identValue(ex)
	case *lang.FieldAccess:
		return b.fieldLoad(ex)
	case *lang.Index:
		arr := b.expr(ex.X)
		idx := b.expr(ex.I)
		in := b.emit(&Instr{Op: OpLoadIdx, Args: []*Value{arr, idx},
			Dst: b.newValue(ex.TypeOf(), "")})
		return in.Dst
	case *lang.Call:
		return b.call(ex)
	case *lang.New:
		return b.newObject(ex)
	case *lang.NewArray:
		return b.newArray(ex)
	case *lang.Binary:
		l := b.expr(ex.L)
		r := b.expr(ex.R)
		in := b.emit(&Instr{Op: OpBin, BinOp: ex.Op, Args: []*Value{l, r},
			Dst: b.newValue(ex.TypeOf(), "")})
		return in.Dst
	case *lang.Unary:
		x := b.expr(ex.X)
		in := b.emit(&Instr{Op: OpUn, BinOp: ex.Op, Args: []*Value{x},
			Dst: b.newValue(ex.TypeOf(), "")})
		return in.Dst
	case *lang.Assign:
		return b.assign(ex)
	default:
		b.fail(e.ExprPos(), "unhandled expression %T", e)
		return nil
	}
}

func (b *builder) identValue(ex *lang.Ident) *Value {
	switch ex.Kind {
	case lang.IdentLocal:
		key, ok := b.varKey(ex.Name)
		if !ok {
			b.fail(ex.Pos, "internal: unbound local %s", ex.Name)
		}
		return b.readVar(key, b.cur)
	case lang.IdentField:
		if ex.Field.Static {
			in := b.emit(&Instr{Op: OpLoadStatic, Field: ex.Field,
				Dst: b.newValue(ex.Field.Type, ex.Name)})
			return in.Dst
		}
		in := b.emit(&Instr{Op: OpLoad, Field: ex.Field, Args: []*Value{b.fn.Params[0]},
			Dst: b.newValue(ex.Field.Type, ex.Name)})
		return in.Dst
	default:
		b.fail(ex.Pos, "class name %s used as value", ex.Name)
		return nil
	}
}

func (b *builder) fieldLoad(ex *lang.FieldAccess) *Value {
	if ex.IsLen {
		arr := b.expr(ex.X)
		in := b.emit(&Instr{Op: OpArrayLen, Args: []*Value{arr},
			Dst: b.newValue(lang.IntType, "")})
		return in.Dst
	}
	if ex.Field.Static {
		in := b.emit(&Instr{Op: OpLoadStatic, Field: ex.Field,
			Dst: b.newValue(ex.Field.Type, ex.Name)})
		return in.Dst
	}
	obj := b.expr(ex.X)
	in := b.emit(&Instr{Op: OpLoad, Field: ex.Field, Args: []*Value{obj},
		Dst: b.newValue(ex.Field.Type, ex.Name)})
	return in.Dst
}

func (b *builder) call(ex *lang.Call) *Value {
	// String builtins.
	if ex.Method == nil {
		recv := b.expr(ex.Recv)
		in := b.emit(&Instr{Op: OpStrBuiltin, Builtin: ex.Name, Args: []*Value{recv},
			Dst: b.newValue(lang.IntType, "")})
		return in.Dst
	}

	var args []*Value
	if !ex.Method.Static {
		switch {
		case ex.Recv == nil:
			args = append(args, b.fn.Params[0]) // implicit this
		default:
			if id, ok := ex.Recv.(*lang.Ident); ok && id.Kind == lang.IdentClass {
				b.fail(ex.Pos, "instance method via class name")
			}
			args = append(args, b.expr(ex.Recv))
		}
	}
	for _, a := range ex.Args {
		args = append(args, b.expr(a))
	}

	in := &Instr{Op: OpCall, Callee: ex.Method, Args: args}
	if ex.Remote {
		in.Op = OpRemoteCall
		in.SiteID = ex.SiteID
	}
	if !lang.TypeEq(ex.Method.Ret, lang.VoidType) {
		in.Dst = b.newValue(ex.Method.Ret, "")
	}
	b.emit(in)
	if ex.Remote && b.cur != nil {
		b.prog.RemoteSites[ex.SiteID] = in
	}
	return in.Dst
}

func (b *builder) newObject(ex *lang.New) *Value {
	in := b.emit(&Instr{Op: OpNew, Class: ex.Class, AllocID: ex.AllocID,
		Dst: b.newValue(ex.TypeOf(), "")})
	if b.cur != nil {
		b.prog.AllocSites[ex.AllocID] = in
	}
	if ex.Ctor != nil {
		args := []*Value{in.Dst}
		for _, a := range ex.Args {
			args = append(args, b.expr(a))
		}
		b.emit(&Instr{Op: OpCall, Callee: ex.Ctor, Args: args})
	}
	return in.Dst
}

func (b *builder) newArray(ex *lang.NewArray) *Value {
	// Java evaluates every dimension expression once, up front.
	lens := make([]*Value, len(ex.Lens))
	for i := range ex.Lens {
		lens[i] = b.expr(ex.Lens[i])
	}
	return b.buildArray(ex, lens, ex.AllocIDs, ex.TypeOf())
}

// buildArray allocates one array level and, for nested sized
// dimensions, emits a real loop filling every slot with a fresh inner
// array. The loop body contains one OpNewArray per level — the same
// one allocation site per dimension the heap analysis expects
// (Figure 2's per-level nodes) — while the executable semantics stay
// faithful (the interpreter runs these loops for real).
func (b *builder) buildArray(ex *lang.NewArray, lens []*Value, allocIDs []int, t lang.Type) *Value {
	arr := b.emit(&Instr{Op: OpNewArray, AllocID: allocIDs[0],
		Args: []*Value{lens[0]}, Dst: b.newValue(t, "")})
	if b.cur != nil {
		b.prog.AllocSites[allocIDs[0]] = arr
	}
	if len(lens) == 1 {
		return arr.Dst
	}
	at, ok := t.(*lang.ArrayType)
	if !ok {
		b.fail(ex.Pos, "internal: array type mismatch")
	}
	if b.cur == nil {
		return arr.Dst // unreachable code
	}

	// for ($i = 0; $i < lens[0]; $i = $i + 1) { arr[$i] = <inner> }
	b.pushScope()
	iKey := b.declare(fmt.Sprintf("$arr%d", allocIDs[0]), lang.IntType)
	zero := b.emit(&Instr{Op: OpConst, ConstKind: lang.PInt,
		Dst: b.newValue(lang.IntType, "")})
	b.writeVar(iKey, b.cur, zero.Dst)

	header := b.newBlock()
	b.jumpTo(header)
	b.cur = header
	iv := b.readVar(iKey, header)
	cond := b.emit(&Instr{Op: OpBin, BinOp: "<", Args: []*Value{iv, lens[0]},
		Dst: b.newValue(lang.BooleanType, "")})
	body := b.newBlock()
	exit := b.newBlock()
	b.branchTo(cond.Dst, body, exit)
	b.seal(body)

	b.cur = body
	inner := b.buildArray(ex, lens[1:], allocIDs[1:], at.Elem)
	b.emit(&Instr{Op: OpStoreIdx, Args: []*Value{arr.Dst, b.readVar(iKey, b.cur), inner}})
	one := b.emit(&Instr{Op: OpConst, ConstKind: lang.PInt, ConstInt: 1,
		Dst: b.newValue(lang.IntType, "")})
	next := b.emit(&Instr{Op: OpBin, BinOp: "+",
		Args: []*Value{b.readVar(iKey, b.cur), one.Dst},
		Dst:  b.newValue(lang.IntType, "")})
	b.writeVar(iKey, b.cur, next.Dst)
	b.jumpTo(header)
	b.seal(header)
	b.seal(exit)
	b.cur = exit
	b.popScope()
	return arr.Dst
}

func (b *builder) assign(ex *lang.Assign) *Value {
	switch lhs := ex.LHS.(type) {
	case *lang.Ident:
		switch lhs.Kind {
		case lang.IdentLocal:
			rhs := b.expr(ex.RHS)
			key, ok := b.varKey(lhs.Name)
			if !ok {
				b.fail(lhs.Pos, "internal: unbound local %s", lhs.Name)
			}
			b.writeVar(key, b.cur, rhs)
			return rhs
		case lang.IdentField:
			rhs := b.expr(ex.RHS)
			if lhs.Field.Static {
				b.emit(&Instr{Op: OpStoreStatic, Field: lhs.Field, Args: []*Value{rhs}})
			} else {
				b.emit(&Instr{Op: OpStore, Field: lhs.Field, Args: []*Value{b.fn.Params[0], rhs}})
			}
			return rhs
		}
	case *lang.FieldAccess:
		if lhs.Field.Static {
			rhs := b.expr(ex.RHS)
			b.emit(&Instr{Op: OpStoreStatic, Field: lhs.Field, Args: []*Value{rhs}})
			return rhs
		}
		obj := b.expr(lhs.X)
		rhs := b.expr(ex.RHS)
		b.emit(&Instr{Op: OpStore, Field: lhs.Field, Args: []*Value{obj, rhs}})
		return rhs
	case *lang.Index:
		arr := b.expr(lhs.X)
		idx := b.expr(lhs.I)
		rhs := b.expr(ex.RHS)
		b.emit(&Instr{Op: OpStoreIdx, Args: []*Value{arr, idx, rhs}})
		return rhs
	}
	b.fail(ex.Pos, "internal: bad assignment target")
	return nil
}
