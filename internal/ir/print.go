package ir

import (
	"fmt"
	"strings"
)

// String renders the function as readable SSA text, for rmic dumps and
// test diagnostics.
func (f *Func) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "func %s(", f.Name)
	for i, p := range f.Params {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%s %s", p, p.Type)
	}
	b.WriteString(") {\n")
	for _, blk := range f.Blocks {
		fmt.Fprintf(&b, "b%d:", blk.ID)
		if len(blk.Preds) > 0 {
			b.WriteString(" ; preds:")
			for _, p := range blk.Preds {
				fmt.Fprintf(&b, " b%d", p.ID)
			}
		}
		b.WriteByte('\n')
		for _, in := range blk.Instrs {
			b.WriteString("    ")
			b.WriteString(in.String())
			b.WriteByte('\n')
		}
	}
	b.WriteString("}\n")
	return b.String()
}

// String renders one instruction.
func (in *Instr) String() string {
	var b strings.Builder
	if in.Dst != nil {
		fmt.Fprintf(&b, "%s = ", in.Dst)
	}
	b.WriteString(in.Op.String())
	switch in.Op {
	case OpConst:
		switch {
		case in.ConstIsNull:
			b.WriteString(" null")
		case in.ConstStr != "":
			fmt.Fprintf(&b, " %q", in.ConstStr)
		case in.ConstFloat != 0:
			fmt.Fprintf(&b, " %g", in.ConstFloat)
		case in.ConstBool:
			b.WriteString(" true")
		default:
			fmt.Fprintf(&b, " %d", in.ConstInt)
		}
	case OpBin, OpUn:
		fmt.Fprintf(&b, " %q", in.BinOp)
	case OpNew:
		fmt.Fprintf(&b, " %s @%d", in.Class.Name, in.AllocID)
	case OpNewArray:
		fmt.Fprintf(&b, " %s @%d", in.Dst.Type, in.AllocID)
	case OpLoad, OpStore:
		fmt.Fprintf(&b, " .%s", in.Field.Name)
	case OpLoadStatic, OpStoreStatic:
		fmt.Fprintf(&b, " %s.%s", in.Field.Owner.Name, in.Field.Name)
	case OpCall:
		fmt.Fprintf(&b, " %s", in.Callee.QualifiedName())
	case OpRemoteCall:
		fmt.Fprintf(&b, " %s site=%d", in.Callee.QualifiedName(), in.SiteID)
	case OpStrBuiltin:
		fmt.Fprintf(&b, " %s", in.Builtin)
	}
	if len(in.Args) > 0 {
		b.WriteString(" [")
		for i, a := range in.Args {
			if i > 0 {
				b.WriteString(", ")
			}
			b.WriteString(a.String())
			if in.Op == OpPhi {
				fmt.Fprintf(&b, " from b%d", in.PhiPreds[i].ID)
			}
		}
		b.WriteString("]")
	}
	if len(in.Targets) > 0 {
		b.WriteString(" ->")
		for _, t := range in.Targets {
			fmt.Fprintf(&b, " b%d", t.ID)
		}
	}
	return b.String()
}
