package ir

import "fmt"

// Validate checks the SSA invariants of every function in the program:
// single assignment, definitions dominating uses (phi uses checked at
// the matching predecessor), terminated blocks, consistent CFG edges
// and well-formed phis.
func Validate(p *Program) error {
	for _, f := range p.Funcs {
		if err := ValidateFunc(f); err != nil {
			return fmt.Errorf("%s: %w", f.Name, err)
		}
	}
	return nil
}

// ValidateFunc checks one function.
func ValidateFunc(f *Func) error {
	if len(f.Blocks) == 0 {
		return fmt.Errorf("no blocks")
	}
	idom := Dominators(f)
	reachable := make(map[*Block]bool, len(idom))
	for b := range idom {
		reachable[b] = true
	}

	defBlock := make(map[*Value]*Block)
	for _, prm := range f.Params {
		defBlock[prm] = f.Entry()
	}
	for _, b := range f.Blocks {
		for i, in := range b.Instrs {
			if in.Block != b {
				return fmt.Errorf("block %d: instruction has wrong block pointer", b.ID)
			}
			if in.Dst != nil {
				if _, dup := defBlock[in.Dst]; dup {
					return fmt.Errorf("block %d: value %s assigned twice", b.ID, in.Dst)
				}
				defBlock[in.Dst] = b
				if in.Dst.Def != in {
					return fmt.Errorf("block %d: %s has stale Def", b.ID, in.Dst)
				}
			}
			if in.Op == OpPhi {
				if len(in.Args) != len(in.PhiPreds) {
					return fmt.Errorf("block %d: phi arity mismatch", b.ID)
				}
				if len(in.Args) != len(b.Preds) {
					return fmt.Errorf("block %d: phi has %d operands for %d preds", b.ID, len(in.Args), len(b.Preds))
				}
				// Phis must lead the block.
				if i > 0 && b.Instrs[i-1].Op != OpPhi {
					return fmt.Errorf("block %d: phi after non-phi", b.ID)
				}
			}
			if t := in.Op; (t == OpJump || t == OpBranch || t == OpRet) && i != len(b.Instrs)-1 {
				return fmt.Errorf("block %d: terminator mid-block", b.ID)
			}
		}
		if reachable[b] && b.Terminator() == nil {
			return fmt.Errorf("block %d: missing terminator", b.ID)
		}
		// CFG consistency.
		if t := b.Terminator(); t != nil {
			want := map[Op]int{OpJump: 1, OpBranch: 2, OpRet: 0}[t.Op]
			if len(t.Targets) != want {
				return fmt.Errorf("block %d: %v with %d targets", b.ID, t.Op, len(t.Targets))
			}
			if len(b.Succs) != want {
				return fmt.Errorf("block %d: %d successors for %v", b.ID, len(b.Succs), t.Op)
			}
			for i, s := range b.Succs {
				if t.Targets[i] != s {
					return fmt.Errorf("block %d: successor %d mismatch", b.ID, i)
				}
				found := false
				for _, pp := range s.Preds {
					if pp == b {
						found = true
					}
				}
				if !found {
					return fmt.Errorf("block %d: successor %d missing back edge", b.ID, i)
				}
			}
		}
	}

	// Dominance of uses.
	for _, b := range f.Blocks {
		if !reachable[b] {
			continue
		}
		for _, in := range b.Instrs {
			for ai, a := range in.Args {
				db, ok := defBlock[a]
				if !ok {
					return fmt.Errorf("block %d: use of undefined value %s", b.ID, a)
				}
				if !reachable[db] {
					continue
				}
				if in.Op == OpPhi {
					pred := in.PhiPreds[ai]
					if reachable[pred] && !Dominates(idom, db, pred) {
						return fmt.Errorf("block %d: phi operand %s not dominated via pred %d", b.ID, a, pred.ID)
					}
					continue
				}
				if db == b {
					continue // same-block ordering is by construction
				}
				if !Dominates(idom, db, b) {
					return fmt.Errorf("block %d: use of %s not dominated by def in block %d", b.ID, a, db.ID)
				}
			}
		}
	}
	return nil
}

// IgnoredReturn reports whether a remote call's result is unused
// (dead), enabling the §3.1 ack-only optimization at that site.
func IgnoredReturn(site *Instr) bool {
	if site.Dst == nil {
		return true
	}
	return len(site.Dst.Uses) == 0
}

// ReturnValues collects the values returned by f.
func ReturnValues(f *Func) []*Value {
	var vals []*Value
	for _, b := range f.Blocks {
		if t := b.Terminator(); t != nil && t.Op == OpRet && len(t.Args) == 1 {
			vals = append(vals, t.Args[0])
		}
	}
	return vals
}
