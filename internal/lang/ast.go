package lang

// File is a parsed MiniJP compilation unit.
type File struct {
	Classes []*ClassDecl
}

// ClassDecl declares a (possibly remote) class.
type ClassDecl struct {
	Pos     Pos
	Name    string
	Remote  bool
	Extends string // "" for none
	Fields  []*FieldDecl
	Methods []*MethodDecl

	Super *ClassDecl // resolved by the checker
}

// FieldByName finds a field in the class chain.
func (c *ClassDecl) FieldByName(name string) *FieldDecl {
	for x := c; x != nil; x = x.Super {
		for _, f := range x.Fields {
			if f.Name == name {
				return f
			}
		}
	}
	return nil
}

// MethodByName finds a method in the class chain.
func (c *ClassDecl) MethodByName(name string) *MethodDecl {
	for x := c; x != nil; x = x.Super {
		for _, m := range x.Methods {
			if m.Name == name {
				return m
			}
		}
	}
	return nil
}

// IsSubclassOf reports whether c is t or a subclass of t.
func (c *ClassDecl) IsSubclassOf(t *ClassDecl) bool {
	for x := c; x != nil; x = x.Super {
		if x == t {
			return true
		}
	}
	return false
}

// TypeExpr is a syntactic type reference, resolved by the checker.
type TypeExpr struct {
	Pos  Pos
	Name string // "int", "double", "boolean", "String", "void" or a class name
	Dims int    // trailing [] pairs
}

func (t TypeExpr) String() string {
	s := t.Name
	for i := 0; i < t.Dims; i++ {
		s += "[]"
	}
	return s
}

// FieldDecl declares a field.
type FieldDecl struct {
	Pos    Pos
	Name   string
	Static bool
	TypeX  TypeExpr
	Type   Type // resolved

	Owner *ClassDecl
}

// MethodDecl declares a method or constructor (IsCtor).
type MethodDecl struct {
	Pos    Pos
	Name   string
	Static bool
	IsCtor bool
	Params []*Param
	RetX   TypeExpr
	Ret    Type // VoidType for void and constructors
	Body   *Block

	Class *ClassDecl
}

// QualifiedName is Class.method.
func (m *MethodDecl) QualifiedName() string { return m.Class.Name + "." + m.Name }

// Param is a formal parameter.
type Param struct {
	Pos   Pos
	Name  string
	TypeX TypeExpr
	Type  Type // resolved
}

// --- statements -----------------------------------------------------

// Stmt is a statement node.
type Stmt interface{ stmtNode() }

// Block is { stmt* }.
type Block struct {
	Pos   Pos
	Stmts []Stmt
}

// VarDecl is `T x = init;`.
type VarDecl struct {
	Pos   Pos
	Name  string
	TypeX TypeExpr
	Type  Type // resolved
	Init  Expr // may be nil
}

// If is if/else.
type If struct {
	Pos  Pos
	Cond Expr
	Then Stmt
	Else Stmt // may be nil
}

// While is a while loop.
type While struct {
	Pos  Pos
	Cond Expr
	Body Stmt
}

// For is for(init; cond; post).
type For struct {
	Pos  Pos
	Init Stmt // VarDecl or ExprStmt, may be nil
	Cond Expr // may be nil
	Post Expr // may be nil
	Body Stmt
}

// Return is `return e?;`.
type Return struct {
	Pos   Pos
	Value Expr // may be nil
}

// ExprStmt is an expression used as a statement (call or assignment).
type ExprStmt struct {
	Pos Pos
	X   Expr
}

func (*Block) stmtNode()    {}
func (*VarDecl) stmtNode()  {}
func (*If) stmtNode()       {}
func (*While) stmtNode()    {}
func (*For) stmtNode()      {}
func (*Return) stmtNode()   {}
func (*ExprStmt) stmtNode() {}

// --- expressions ------------------------------------------------------

// Expr is an expression node; the checker fills in T.
type Expr interface {
	exprNode()
	TypeOf() Type
	ExprPos() Pos
}

type exprBase struct {
	Pos Pos
	T   Type
}

func (e *exprBase) exprNode()      {}
func (e *exprBase) TypeOf() Type   { return e.T }
func (e *exprBase) ExprPos() Pos   { return e.Pos }
func (e *exprBase) setType(t Type) { e.T = t }

// IntLit is an integer literal.
type IntLit struct {
	exprBase
	Value int64
}

// DoubleLit is a floating-point literal.
type DoubleLit struct {
	exprBase
	Value float64
}

// BoolLit is true/false.
type BoolLit struct {
	exprBase
	Value bool
}

// StringLit is a string literal.
type StringLit struct {
	exprBase
	Value string
}

// NullLit is null.
type NullLit struct{ exprBase }

// This is the receiver.
type This struct {
	exprBase
	Class *ClassDecl // resolved
}

// IdentKind classifies what a bare identifier resolved to.
type IdentKind int

const (
	IdentLocal IdentKind = iota
	IdentField           // implicit this.f or static field of the class
	IdentClass           // class name (receiver of a static call/field)
)

// Ident is a bare identifier.
type Ident struct {
	exprBase
	Name string

	Kind  IdentKind
	Field *FieldDecl // IdentField
	Class *ClassDecl // IdentClass
}

// FieldAccess is x.f.
type FieldAccess struct {
	exprBase
	X    Expr
	Name string

	Field *FieldDecl // resolved; nil for array .length
	IsLen bool       // x.length on an array
}

// Index is x[i].
type Index struct {
	exprBase
	X Expr
	I Expr
}

// Call is x.m(args), Class.m(args) or m(args).
type Call struct {
	exprBase
	Recv Expr // nil for bare/static-on-own-class calls
	Name string
	Args []Expr

	Method *MethodDecl // resolved
	// Remote reports whether the callee's class is remote and the
	// call is therefore an RMI.
	Remote bool
	// SiteID is a program-unique id for this textual call site,
	// assigned by the checker (the unit of the paper's call-site
	// specific code generation).
	SiteID int
}

// New is `new C(args)`.
type New struct {
	exprBase
	ClassName string
	Args      []Expr

	Class *ClassDecl
	Ctor  *MethodDecl // may be nil (default constructor)
	// AllocID is a program-unique allocation site number, assigned by
	// the checker (the paper's §2 step 2).
	AllocID int
}

// NewArray is `new T[e1][e2]...[]...`.
type NewArray struct {
	exprBase
	ElemX TypeExpr // base element type name (no dims)
	Elem  Type     // resolved base element type
	Lens  []Expr   // sized dimensions
	Dims  int      // total dimensions (len(Lens) + unsized trailing)

	// AllocIDs has one allocation site number per sized dimension
	// (outermost first): `new double[16][16]` is two allocation sites,
	// matching Figure 2's separate nodes per array level.
	AllocIDs []int
}

// Binary is a binary operation.
type Binary struct {
	exprBase
	Op   string
	L, R Expr
}

// Unary is -x or !x.
type Unary struct {
	exprBase
	Op string
	X  Expr
}

// Assign is lhs = rhs (lhs: Ident, FieldAccess or Index).
type Assign struct {
	exprBase
	LHS Expr
	RHS Expr
}
