package lang

// Program is a checked compilation unit: types resolved, allocation
// sites and remote call sites numbered.
type Program struct {
	File    *File
	Classes map[string]*ClassDecl

	// NumAllocSites is the count of allocation site numbers handed out
	// (§2 step 2 assigns each object allocation site a unique number).
	NumAllocSites int
	// RemoteCalls lists every remote call site in program order; the
	// index order matches the assigned SiteIDs.
	RemoteCalls []*Call
}

// ClassType returns the ClassType for a declared class name.
func (p *Program) ClassType(name string) *ClassType {
	if c, ok := p.Classes[name]; ok {
		return &ClassType{Decl: c}
	}
	return nil
}

// Check resolves names and types in f and numbers allocation and
// remote call sites.
func Check(f *File) (*Program, error) {
	c := &checker{
		prog: &Program{File: f, Classes: make(map[string]*ClassDecl)},
	}
	if err := c.collect(); err != nil {
		return nil, err
	}
	if err := c.resolveSignatures(); err != nil {
		return nil, err
	}
	for _, cd := range f.Classes {
		for _, m := range cd.Methods {
			if err := c.checkMethod(m); err != nil {
				return nil, err
			}
		}
	}
	return c.prog, nil
}

type checker struct {
	prog *Program

	method *MethodDecl
	scopes []map[string]Type
}

func (c *checker) collect() error {
	for _, cd := range c.prog.File.Classes {
		if _, dup := c.prog.Classes[cd.Name]; dup {
			return errf(cd.Pos, "duplicate class %s", cd.Name)
		}
		c.prog.Classes[cd.Name] = cd
	}
	for _, cd := range c.prog.File.Classes {
		if cd.Extends == "" {
			continue
		}
		sup, ok := c.prog.Classes[cd.Extends]
		if !ok {
			return errf(cd.Pos, "class %s extends unknown class %s", cd.Name, cd.Extends)
		}
		cd.Super = sup
	}
	// Detect inheritance cycles.
	for _, cd := range c.prog.File.Classes {
		slow, fast := cd, cd.Super
		for fast != nil {
			if slow == fast {
				return errf(cd.Pos, "inheritance cycle through %s", cd.Name)
			}
			slow = slow.Super
			fast = fast.Super
			if fast != nil {
				fast = fast.Super
			}
		}
	}
	return nil
}

func (c *checker) resolveType(te TypeExpr) (Type, error) {
	var base Type
	switch te.Name {
	case "int":
		base = IntType
	case "double":
		base = DoubleType
	case "boolean":
		base = BooleanType
	case "String":
		base = StringType
	case "void":
		base = VoidType
	default:
		cd, ok := c.prog.Classes[te.Name]
		if !ok {
			return nil, errf(te.Pos, "unknown type %s", te.Name)
		}
		base = &ClassType{Decl: cd}
	}
	if te.Dims > 0 && TypeEq(base, VoidType) {
		return nil, errf(te.Pos, "void array")
	}
	for i := 0; i < te.Dims; i++ {
		base = &ArrayType{Elem: base}
	}
	return base, nil
}

func (c *checker) resolveSignatures() error {
	for _, cd := range c.prog.File.Classes {
		seenFields := map[string]bool{}
		for _, fd := range cd.Fields {
			if seenFields[fd.Name] {
				return errf(fd.Pos, "duplicate field %s.%s", cd.Name, fd.Name)
			}
			seenFields[fd.Name] = true
			t, err := c.resolveType(fd.TypeX)
			if err != nil {
				return err
			}
			if TypeEq(t, VoidType) {
				return errf(fd.Pos, "void field %s", fd.Name)
			}
			fd.Type = t
		}
		seenMethods := map[string]bool{}
		for _, m := range cd.Methods {
			if seenMethods[m.Name] && !m.IsCtor {
				return errf(m.Pos, "duplicate method %s.%s (no overloading)", cd.Name, m.Name)
			}
			seenMethods[m.Name] = true
			rt, err := c.resolveType(m.RetX)
			if err != nil {
				return err
			}
			m.Ret = rt
			for _, pa := range m.Params {
				pt, err := c.resolveType(pa.TypeX)
				if err != nil {
					return err
				}
				if TypeEq(pt, VoidType) {
					return errf(pa.Pos, "void parameter %s", pa.Name)
				}
				pa.Type = pt
			}
		}
	}
	return nil
}

// --- scopes ----------------------------------------------------------

func (c *checker) push() { c.scopes = append(c.scopes, map[string]Type{}) }
func (c *checker) pop()  { c.scopes = c.scopes[:len(c.scopes)-1] }

func (c *checker) define(pos Pos, name string, t Type) error {
	top := c.scopes[len(c.scopes)-1]
	if _, dup := top[name]; dup {
		return errf(pos, "redeclared variable %s", name)
	}
	top[name] = t
	return nil
}

func (c *checker) lookupLocal(name string) (Type, bool) {
	for i := len(c.scopes) - 1; i >= 0; i-- {
		if t, ok := c.scopes[i][name]; ok {
			return t, true
		}
	}
	return nil, false
}

// --- statements -------------------------------------------------------

func (c *checker) checkMethod(m *MethodDecl) error {
	if m.Body == nil {
		return nil
	}
	c.method = m
	c.scopes = nil
	c.push()
	for _, p := range m.Params {
		if err := c.define(p.Pos, p.Name, p.Type); err != nil {
			return err
		}
	}
	return c.checkBlock(m.Body)
}

func (c *checker) checkBlock(b *Block) error {
	c.push()
	defer c.pop()
	for _, s := range b.Stmts {
		if err := c.checkStmt(s); err != nil {
			return err
		}
	}
	return nil
}

func (c *checker) checkStmt(s Stmt) error {
	switch st := s.(type) {
	case *Block:
		return c.checkBlock(st)
	case *VarDecl:
		t, err := c.resolveType(st.TypeX)
		if err != nil {
			return err
		}
		if TypeEq(t, VoidType) {
			return errf(st.Pos, "void variable %s", st.Name)
		}
		st.Type = t
		if st.Init != nil {
			it, err := c.checkExpr(st.Init)
			if err != nil {
				return err
			}
			if !Assignable(t, it) {
				return errf(st.Pos, "cannot assign %s to %s %s", it, t, st.Name)
			}
		}
		return c.define(st.Pos, st.Name, t)
	case *If:
		if err := c.wantBool(st.Cond); err != nil {
			return err
		}
		if err := c.checkStmt(st.Then); err != nil {
			return err
		}
		if st.Else != nil {
			return c.checkStmt(st.Else)
		}
		return nil
	case *While:
		if err := c.wantBool(st.Cond); err != nil {
			return err
		}
		return c.checkStmt(st.Body)
	case *For:
		c.push()
		defer c.pop()
		if st.Init != nil {
			if err := c.checkStmt(st.Init); err != nil {
				return err
			}
		}
		if st.Cond != nil {
			if err := c.wantBool(st.Cond); err != nil {
				return err
			}
		}
		if st.Post != nil {
			if _, err := c.checkExpr(st.Post); err != nil {
				return err
			}
		}
		return c.checkStmt(st.Body)
	case *Return:
		ret := c.method.Ret
		if st.Value == nil {
			if !TypeEq(ret, VoidType) {
				return errf(st.Pos, "%s must return %s", c.method.QualifiedName(), ret)
			}
			return nil
		}
		if TypeEq(ret, VoidType) {
			return errf(st.Pos, "void method %s returns a value", c.method.QualifiedName())
		}
		vt, err := c.checkExpr(st.Value)
		if err != nil {
			return err
		}
		if !Assignable(ret, vt) {
			return errf(st.Pos, "cannot return %s from %s method", vt, ret)
		}
		return nil
	case *ExprStmt:
		switch st.X.(type) {
		case *Call, *Assign, *New:
			_, err := c.checkExpr(st.X)
			return err
		default:
			return errf(st.Pos, "expression statement must be a call or assignment")
		}
	}
	return errf(Pos{}, "unhandled statement %T", s)
}

func (c *checker) wantBool(e Expr) error {
	t, err := c.checkExpr(e)
	if err != nil {
		return err
	}
	if !TypeEq(t, BooleanType) {
		return errf(e.ExprPos(), "condition must be boolean, got %s", t)
	}
	return nil
}
