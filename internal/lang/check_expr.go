package lang

// checkExpr resolves and types one expression, returning its type.
func (c *checker) checkExpr(e Expr) (Type, error) {
	switch ex := e.(type) {
	case *IntLit:
		ex.setType(IntType)
	case *DoubleLit:
		ex.setType(DoubleType)
	case *BoolLit:
		ex.setType(BooleanType)
	case *StringLit:
		ex.setType(StringType)
	case *NullLit:
		ex.setType(NullType)
	case *This:
		if c.method.Static {
			return nil, errf(ex.Pos, "this in static method %s", c.method.QualifiedName())
		}
		ex.Class = c.method.Class
		ex.setType(&ClassType{Decl: c.method.Class})
	case *Ident:
		t, err := c.resolveIdent(ex, false)
		if err != nil {
			return nil, err
		}
		ex.setType(t)
	case *FieldAccess:
		return c.checkFieldAccess(ex)
	case *Index:
		xt, err := c.checkExpr(ex.X)
		if err != nil {
			return nil, err
		}
		at, ok := xt.(*ArrayType)
		if !ok {
			return nil, errf(ex.Pos, "indexing non-array %s", xt)
		}
		it, err := c.checkExpr(ex.I)
		if err != nil {
			return nil, err
		}
		if !TypeEq(it, IntType) {
			return nil, errf(ex.Pos, "array index must be int, got %s", it)
		}
		ex.setType(at.Elem)
	case *Call:
		return c.checkCall(ex)
	case *New:
		return c.checkNew(ex)
	case *NewArray:
		return c.checkNewArray(ex)
	case *Binary:
		return c.checkBinary(ex)
	case *Unary:
		xt, err := c.checkExpr(ex.X)
		if err != nil {
			return nil, err
		}
		switch ex.Op {
		case "-":
			if !IsNumeric(xt) {
				return nil, errf(ex.Pos, "unary - on %s", xt)
			}
			ex.setType(xt)
		case "!":
			if !TypeEq(xt, BooleanType) {
				return nil, errf(ex.Pos, "unary ! on %s", xt)
			}
			ex.setType(BooleanType)
		}
	case *Assign:
		return c.checkAssign(ex)
	default:
		return nil, errf(e.ExprPos(), "unhandled expression %T", e)
	}
	return e.TypeOf(), nil
}

// resolveIdent binds a bare identifier: local, field of the enclosing
// class, or (when asReceiver) a class name.
func (c *checker) resolveIdent(ex *Ident, asReceiver bool) (Type, error) {
	if t, ok := c.lookupLocal(ex.Name); ok {
		ex.Kind = IdentLocal
		return t, nil
	}
	if f := c.method.Class.FieldByName(ex.Name); f != nil {
		if c.method.Static && !f.Static {
			return nil, errf(ex.Pos, "instance field %s in static method", ex.Name)
		}
		ex.Kind = IdentField
		ex.Field = f
		return f.Type, nil
	}
	if cd, ok := c.prog.Classes[ex.Name]; ok && asReceiver {
		ex.Kind = IdentClass
		ex.Class = cd
		return nil, nil
	}
	return nil, errf(ex.Pos, "undefined: %s", ex.Name)
}

func (c *checker) checkFieldAccess(ex *FieldAccess) (Type, error) {
	// Class-name receiver: static field.
	if id, ok := ex.X.(*Ident); ok {
		if _, lok := c.lookupLocal(id.Name); !lok {
			if c.method.Class.FieldByName(id.Name) == nil {
				if cd, cok := c.prog.Classes[id.Name]; cok {
					id.Kind = IdentClass
					id.Class = cd
					f := cd.FieldByName(ex.Name)
					if f == nil || !f.Static {
						return nil, errf(ex.Pos, "%s has no static field %s", cd.Name, ex.Name)
					}
					ex.Field = f
					ex.setType(f.Type)
					return f.Type, nil
				}
			}
		}
	}
	xt, err := c.checkExpr(ex.X)
	if err != nil {
		return nil, err
	}
	if at, ok := xt.(*ArrayType); ok {
		_ = at
		if ex.Name == "length" {
			ex.IsLen = true
			ex.setType(IntType)
			return IntType, nil
		}
		return nil, errf(ex.Pos, "array has no field %s", ex.Name)
	}
	ct, ok := xt.(*ClassType)
	if !ok {
		return nil, errf(ex.Pos, "field access on non-object %s", xt)
	}
	f := ct.Decl.FieldByName(ex.Name)
	if f == nil {
		return nil, errf(ex.Pos, "%s has no field %s", ct.Decl.Name, ex.Name)
	}
	ex.Field = f
	ex.setType(f.Type)
	return f.Type, nil
}

func (c *checker) checkCall(ex *Call) (Type, error) {
	var recvType Type
	var class *ClassDecl
	static := false

	switch {
	case ex.Recv == nil:
		class = c.method.Class
	default:
		if id, ok := ex.Recv.(*Ident); ok {
			// Try class-name receiver first (static call).
			if _, lok := c.lookupLocal(id.Name); !lok && c.method.Class.FieldByName(id.Name) == nil {
				if _, err := c.resolveIdent(id, true); err == nil && id.Kind == IdentClass {
					class = id.Class
					static = true
				}
			}
		}
		if class == nil {
			rt, err := c.checkExpr(ex.Recv)
			if err != nil {
				return nil, err
			}
			recvType = rt
			// String builtins.
			if TypeEq(rt, StringType) {
				switch ex.Name {
				case "hashCode":
					if len(ex.Args) != 0 {
						return nil, errf(ex.Pos, "hashCode takes no arguments")
					}
					ex.setType(IntType)
					return IntType, nil
				case "length":
					if len(ex.Args) != 0 {
						return nil, errf(ex.Pos, "length takes no arguments")
					}
					ex.setType(IntType)
					return IntType, nil
				default:
					return nil, errf(ex.Pos, "String has no method %s", ex.Name)
				}
			}
			ct, ok := rt.(*ClassType)
			if !ok {
				return nil, errf(ex.Pos, "method call on non-object %s", rt)
			}
			class = ct.Decl
		}
	}

	m := class.MethodByName(ex.Name)
	if m == nil || m.IsCtor {
		return nil, errf(ex.Pos, "%s has no method %s", class.Name, ex.Name)
	}
	if static && !m.Static {
		return nil, errf(ex.Pos, "instance method %s called statically", m.QualifiedName())
	}
	if len(ex.Args) != len(m.Params) {
		return nil, errf(ex.Pos, "%s takes %d arguments, got %d", m.QualifiedName(), len(m.Params), len(ex.Args))
	}
	for i, a := range ex.Args {
		at, err := c.checkExpr(a)
		if err != nil {
			return nil, err
		}
		if !Assignable(m.Params[i].Type, at) {
			return nil, errf(a.ExprPos(), "argument %d of %s: cannot assign %s to %s",
				i+1, m.QualifiedName(), at, m.Params[i].Type)
		}
	}
	ex.Method = m

	// An instance call through a reference to a remote class is an
	// RMI; calls through `this` and static calls are direct.
	_, viaThis := ex.Recv.(*This)
	if ex.Recv != nil && !viaThis && !static && !m.Static {
		if ct, ok := recvType.(*ClassType); ok && ct.Decl.Remote {
			ex.Remote = true
			ex.SiteID = len(c.prog.RemoteCalls)
			c.prog.RemoteCalls = append(c.prog.RemoteCalls, ex)
		}
	}
	ex.setType(m.Ret)
	return m.Ret, nil
}

func (c *checker) checkNew(ex *New) (Type, error) {
	cd, ok := c.prog.Classes[ex.ClassName]
	if !ok {
		return nil, errf(ex.Pos, "unknown class %s", ex.ClassName)
	}
	ex.Class = cd
	// Find a constructor.
	for _, m := range cd.Methods {
		if m.IsCtor {
			ex.Ctor = m
			break
		}
	}
	if ex.Ctor == nil {
		if len(ex.Args) != 0 {
			return nil, errf(ex.Pos, "%s has no constructor taking %d arguments", cd.Name, len(ex.Args))
		}
	} else {
		if len(ex.Args) != len(ex.Ctor.Params) {
			return nil, errf(ex.Pos, "constructor %s takes %d arguments, got %d",
				cd.Name, len(ex.Ctor.Params), len(ex.Args))
		}
		for i, a := range ex.Args {
			at, err := c.checkExpr(a)
			if err != nil {
				return nil, err
			}
			if !Assignable(ex.Ctor.Params[i].Type, at) {
				return nil, errf(a.ExprPos(), "constructor argument %d: cannot assign %s to %s",
					i+1, at, ex.Ctor.Params[i].Type)
			}
		}
	}
	ex.AllocID = c.prog.NumAllocSites
	c.prog.NumAllocSites++
	t := &ClassType{Decl: cd}
	ex.setType(t)
	return t, nil
}

func (c *checker) checkNewArray(ex *NewArray) (Type, error) {
	elem, err := c.resolveType(ex.ElemX)
	if err != nil {
		return nil, err
	}
	if TypeEq(elem, VoidType) {
		return nil, errf(ex.Pos, "void array")
	}
	ex.Elem = elem
	if len(ex.Lens) == 0 {
		return nil, errf(ex.Pos, "new array needs at least one sized dimension")
	}
	for _, l := range ex.Lens {
		lt, err := c.checkExpr(l)
		if err != nil {
			return nil, err
		}
		if !TypeEq(lt, IntType) {
			return nil, errf(l.ExprPos(), "array length must be int, got %s", lt)
		}
	}
	// One allocation site per sized dimension, outermost first
	// (Figure 2: double[][][] has separate heap nodes per level).
	ex.AllocIDs = make([]int, len(ex.Lens))
	for i := range ex.AllocIDs {
		ex.AllocIDs[i] = c.prog.NumAllocSites
		c.prog.NumAllocSites++
	}
	t := elem
	for i := 0; i < ex.Dims; i++ {
		t = &ArrayType{Elem: t}
	}
	ex.setType(t)
	return t, nil
}

func (c *checker) checkBinary(ex *Binary) (Type, error) {
	lt, err := c.checkExpr(ex.L)
	if err != nil {
		return nil, err
	}
	rt, err := c.checkExpr(ex.R)
	if err != nil {
		return nil, err
	}
	switch ex.Op {
	case "+", "-", "*", "/", "%":
		if !IsNumeric(lt) || !IsNumeric(rt) {
			return nil, errf(ex.Pos, "arithmetic on %s and %s", lt, rt)
		}
		if ex.Op == "%" && (!TypeEq(lt, IntType) || !TypeEq(rt, IntType)) {
			return nil, errf(ex.Pos, "%% needs int operands")
		}
		if TypeEq(lt, DoubleType) || TypeEq(rt, DoubleType) {
			ex.setType(DoubleType)
		} else {
			ex.setType(IntType)
		}
	case "<", "<=", ">", ">=":
		if !IsNumeric(lt) || !IsNumeric(rt) {
			return nil, errf(ex.Pos, "comparison of %s and %s", lt, rt)
		}
		ex.setType(BooleanType)
	case "==", "!=":
		if !Assignable(lt, rt) && !Assignable(rt, lt) {
			return nil, errf(ex.Pos, "incomparable types %s and %s", lt, rt)
		}
		ex.setType(BooleanType)
	case "&&", "||":
		if !TypeEq(lt, BooleanType) || !TypeEq(rt, BooleanType) {
			return nil, errf(ex.Pos, "logical op on %s and %s", lt, rt)
		}
		ex.setType(BooleanType)
	default:
		return nil, errf(ex.Pos, "unknown operator %s", ex.Op)
	}
	return ex.TypeOf(), nil
}

func (c *checker) checkAssign(ex *Assign) (Type, error) {
	var lt Type
	switch lhs := ex.LHS.(type) {
	case *Ident:
		t, err := c.resolveIdent(lhs, false)
		if err != nil {
			return nil, err
		}
		lhs.setType(t)
		lt = t
	case *FieldAccess:
		t, err := c.checkFieldAccess(lhs)
		if err != nil {
			return nil, err
		}
		if lhs.IsLen {
			return nil, errf(lhs.Pos, "cannot assign to array length")
		}
		lt = t
	case *Index:
		t, err := c.checkExpr(lhs)
		if err != nil {
			return nil, err
		}
		lt = t
	default:
		return nil, errf(ex.Pos, "invalid assignment target")
	}
	rt, err := c.checkExpr(ex.RHS)
	if err != nil {
		return nil, err
	}
	if !Assignable(lt, rt) {
		return nil, errf(ex.Pos, "cannot assign %s to %s", rt, lt)
	}
	ex.setType(lt)
	return lt, nil
}
