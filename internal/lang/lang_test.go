package lang

import (
	"strings"
	"testing"
)

func mustCheck(t *testing.T, src string) *Program {
	t.Helper()
	f, err := Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	p, err := Check(f)
	if err != nil {
		t.Fatalf("check: %v", err)
	}
	return p
}

func wantErr(t *testing.T, src, frag string) {
	t.Helper()
	f, err := Parse(src)
	if err == nil {
		_, err = Check(f)
	}
	if err == nil {
		t.Fatalf("expected error containing %q, got none", frag)
	}
	if !strings.Contains(err.Error(), frag) {
		t.Fatalf("error %q does not contain %q", err, frag)
	}
}

func TestLexBasics(t *testing.T) {
	toks, err := Lex(`class Foo { int x; } // comment
/* block
comment */ "str\n" 1 2.5 1e3 <= && !`)
	if err != nil {
		t.Fatal(err)
	}
	var kinds []TokKind
	var texts []string
	for _, tk := range toks {
		kinds = append(kinds, tk.Kind)
		texts = append(texts, tk.Text)
	}
	want := []string{"class", "Foo", "{", "int", "x", ";", "}", "str\n", "1", "2.5", "1e3", "<=", "&&", "!", ""}
	if len(texts) != len(want) {
		t.Fatalf("got %d tokens %v, want %d", len(texts), texts, len(want))
	}
	for i := range want {
		if texts[i] != want[i] {
			t.Fatalf("token %d = %q, want %q", i, texts[i], want[i])
		}
	}
	if kinds[0] != TokKeyword || kinds[1] != TokIdent || kinds[7] != TokStringLit ||
		kinds[8] != TokIntLit || kinds[9] != TokDoubleLit || kinds[10] != TokDoubleLit {
		t.Fatalf("kinds wrong: %v", kinds)
	}
}

func TestLexErrors(t *testing.T) {
	for _, src := range []string{`"unterminated`, "/* unterminated", `"bad \q escape"`, "@"} {
		if _, err := Lex(src); err == nil {
			t.Fatalf("Lex(%q) should fail", src)
		}
	}
}

const figure2Src = `
class Bar { }
class Foo {
	Bar bar;
	double[][][] a;
	static void main() {
		Foo foo = new Foo();
		foo.bar = new Bar();
		foo.a = new double[2][3][];
	}
}
`

func TestParseAndCheckFigure2(t *testing.T) {
	p := mustCheck(t, figure2Src)
	foo := p.Classes["Foo"]
	if foo == nil || len(foo.Fields) != 2 || len(foo.Methods) != 1 {
		t.Fatalf("Foo parsed wrong: %+v", foo)
	}
	if foo.Fields[1].Type.String() != "double[][][]" {
		t.Fatalf("a type = %s", foo.Fields[1].Type)
	}
	// Allocation sites: Foo, Bar, and two for new double[2][3][]
	// (outer double[][][], middle double[][]; innermost unsized).
	if p.NumAllocSites != 4 {
		t.Fatalf("NumAllocSites = %d, want 4", p.NumAllocSites)
	}
	if len(p.RemoteCalls) != 0 {
		t.Fatal("no remote calls expected")
	}
}

const figure3Src = `
remote class Foo {
	Object1 foo(Object1 a) { return a; }
	static void zoo() {
		Foo me = new Foo();
		Object1 t = new Object1();
		for (int i = 0; i < 100; i = i + 1) {
			t = me.foo(t);
		}
	}
}
class Object1 { }
`

func TestRemoteCallSites(t *testing.T) {
	p := mustCheck(t, figure3Src)
	if len(p.RemoteCalls) != 1 {
		t.Fatalf("remote calls = %d, want 1", len(p.RemoteCalls))
	}
	rc := p.RemoteCalls[0]
	if rc.Name != "foo" || !rc.Remote || rc.SiteID != 0 {
		t.Fatalf("remote call: %+v", rc)
	}
	if rc.Method.QualifiedName() != "Foo.foo" {
		t.Fatalf("resolved method %s", rc.Method.QualifiedName())
	}
}

func TestThisCallsAreLocal(t *testing.T) {
	p := mustCheck(t, `
remote class W {
	void a() { this.b(); b(); }
	void b() { }
	static void go() { W w = new W(); w.a(); }
}`)
	if len(p.RemoteCalls) != 1 {
		t.Fatalf("remote calls = %d, want only w.a()", len(p.RemoteCalls))
	}
}

func TestConstructorsAndInheritance(t *testing.T) {
	p := mustCheck(t, `
class LinkedList {
	LinkedList Next;
	LinkedList(LinkedList n) { this.Next = n; }
}
class Base { int data; }
class Derived1 extends Base { }
class Derived2 extends Base { Derived1 p; }
remote class Work {
	void foo(Base b) { }
	void go() {
		Base b1 = new Derived1();
		Base b2 = new Derived2();
		LinkedList head = null;
		for (int i = 0; i < 100; i = i + 1) {
			head = new LinkedList(head);
		}
	}
}`)
	d1 := p.Classes["Derived1"]
	if d1.Super != p.Classes["Base"] {
		t.Fatal("super not resolved")
	}
	if d1.FieldByName("data") == nil {
		t.Fatal("inherited field not found")
	}
	ll := p.Classes["LinkedList"]
	if ll.Methods[0].IsCtor != true {
		t.Fatal("constructor not detected")
	}
}

func TestStaticsAndBuiltins(t *testing.T) {
	p := mustCheck(t, `
class Page { String body; }
remote class Server {
	static Page cache;
	Page get_page(String url) {
		int h = url.hashCode();
		int l = url.length();
		if (h % 2 == 0) { return cache; }
		Page pg = new Page();
		pg.body = "hello";
		Server.cache = pg;
		return pg;
	}
}`)
	sv := p.Classes["Server"]
	if !sv.Remote || sv.FieldByName("cache") == nil || !sv.FieldByName("cache").Static {
		t.Fatal("static field wrong")
	}
}

func TestArraysAndLength(t *testing.T) {
	mustCheck(t, `
remote class A {
	double sum(double[][] m) {
		double s = 0.0;
		for (int i = 0; i < m.length; i = i + 1) {
			for (int j = 0; j < m[i].length; j = j + 1) {
				s = s + m[i][j];
			}
		}
		return s;
	}
}`)

	mustCheck(t, `
class B {
	static void go() {
		int[] a = new int[10];
		a[0] = 5;
		int x = a[0] + a.length;
		double[][] m = new double[4][4];
		m[1][2] = 3.5;
		double d = m[1][2];
	}
}`)
}

func TestCheckerErrors(t *testing.T) {
	cases := []struct{ src, frag string }{
		{`class A { int x; int x; }`, "duplicate field"},
		{`class A { } class A { }`, "duplicate class"},
		{`class A extends B { }`, "unknown class B"},
		{`class A extends B { } class B extends A { }`, "inheritance cycle"},
		{`class A { void f() { y = 1; } }`, "undefined: y"},
		{`class A { void f() { int x = "s"; } }`, "cannot assign"},
		{`class A { void f() { if (1) { } } }`, "must be boolean"},
		{`class A { int f() { return; } }`, "must return"},
		{`class A { void f() { return 3; } }`, "void method"},
		{`class A { void f() { int x = 1; int x = 2; } }`, "redeclared"},
		{`class A { void f(B b) { } }`, "unknown type B"},
		{`class A { static void f() { this.g(); } void g() { } }`, "this in static"},
		{`class A { void f() { g(1); } void g() { } }`, "takes 0 arguments"},
		{`class A { int y; void f() { y.z = 1; } }`, "field access on non-object"},
		{`class A { void f() { int[] a = new int[2]; a["s"] = 1; } }`, "array index must be int"},
		{`class A { void f() { 3; } }`, "must be a call or assignment"},
		{`class A { void f() { boolean b = 1 && true; } }`, "logical op"},
		{`class A { void f() { int x = 1 % 2.0; } }`, "needs int operands"},
		{`class A { void f() { String s = "a"; int n = s.nope(); } }`, "String has no method"},
	}
	for _, tc := range cases {
		wantErr(t, tc.src, tc.frag)
	}
}

func TestParserErrors(t *testing.T) {
	cases := []string{
		`class`,
		`class A {`,
		`class A { int }`,
		`class A { void f( }`,
		`class A { void f() { if x } }`,
		`class A { void f() { new int(); } }`,
		`class A { void f() { int[] a = new int[]; } }`,
		`class A { void f() { int[][] a = new int[][3]; } }`,
	}
	for _, src := range cases {
		f, err := Parse(src)
		if err == nil {
			_, err = Check(f)
		}
		if err == nil {
			t.Fatalf("Parse/Check(%q) should fail", src)
		}
	}
}

func TestTypeAlgebra(t *testing.T) {
	a := &ArrayType{Elem: DoubleType}
	b := &ArrayType{Elem: DoubleType}
	if !TypeEq(a, b) {
		t.Fatal("structural array equality")
	}
	if TypeEq(a, &ArrayType{Elem: IntType}) {
		t.Fatal("distinct arrays equal")
	}
	if !Assignable(DoubleType, IntType) {
		t.Fatal("int should widen to double")
	}
	if Assignable(IntType, DoubleType) {
		t.Fatal("double must not narrow to int")
	}
	if !Assignable(a, NullType) || Assignable(IntType, NullType) {
		t.Fatal("null assignability")
	}
	cd := &ClassDecl{Name: "A"}
	ce := &ClassDecl{Name: "B", Super: cd}
	if !Assignable(&ClassType{Decl: cd}, &ClassType{Decl: ce}) {
		t.Fatal("subclass widening")
	}
	if Assignable(&ClassType{Decl: ce}, &ClassType{Decl: cd}) {
		t.Fatal("downcast allowed")
	}
	if !IsRef(a) || IsRef(IntType) {
		t.Fatal("IsRef")
	}
}

func TestIgnoredReturnDetectableFromAST(t *testing.T) {
	p := mustCheck(t, `
remote class F {
	int f() { return 1; }
	static void go() {
		F me = new F();
		me.f();
		int x = me.f();
	}
}`)
	if len(p.RemoteCalls) != 2 {
		t.Fatalf("remote calls = %d", len(p.RemoteCalls))
	}
}

func TestIncrementDecrementDesugar(t *testing.T) {
	p := mustCheck(t, `
class A {
	int f;
	static int go() {
		int s = 0;
		for (int i = 0; i < 10; i++) {
			s += i;
		}
		int j = 10;
		while (j > 0) { j--; }
		s -= 5;
		A a = new A();
		a.f++;
		int[] arr = new int[3];
		arr[1]++;
		return s + j + a.f + arr[1];
	}
}`)
	if p.Classes["A"] == nil {
		t.Fatal("class missing")
	}
	// Postfix ++ is a statement, not an expression.
	wantErr(t, `class A { static void f() { int x = 0; int y = x++ + 1; } }`, "")
}
