package lang

import (
	"strings"
	"unicode"
)

// Lex splits src into tokens, skipping // and /* */ comments.
func Lex(src string) ([]Token, error) {
	l := &lexer{src: src, line: 1, col: 1}
	var toks []Token
	for {
		t, err := l.next()
		if err != nil {
			return nil, err
		}
		toks = append(toks, t)
		if t.Kind == TokEOF {
			return toks, nil
		}
	}
}

type lexer struct {
	src       string
	off       int
	line, col int
}

func (l *lexer) pos() Pos { return Pos{Line: l.line, Col: l.col} }

func (l *lexer) peek() byte {
	if l.off >= len(l.src) {
		return 0
	}
	return l.src[l.off]
}

func (l *lexer) peek2() byte {
	if l.off+1 >= len(l.src) {
		return 0
	}
	return l.src[l.off+1]
}

func (l *lexer) advance() byte {
	c := l.src[l.off]
	l.off++
	if c == '\n' {
		l.line++
		l.col = 1
	} else {
		l.col++
	}
	return c
}

func (l *lexer) skipSpaceAndComments() error {
	for l.off < len(l.src) {
		c := l.peek()
		switch {
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			l.advance()
		case c == '/' && l.peek2() == '/':
			for l.off < len(l.src) && l.peek() != '\n' {
				l.advance()
			}
		case c == '/' && l.peek2() == '*':
			start := l.pos()
			l.advance()
			l.advance()
			for {
				if l.off >= len(l.src) {
					return errf(start, "unterminated block comment")
				}
				if l.peek() == '*' && l.peek2() == '/' {
					l.advance()
					l.advance()
					break
				}
				l.advance()
			}
		default:
			return nil
		}
	}
	return nil
}

func isIdentStart(c byte) bool {
	return c == '_' || unicode.IsLetter(rune(c))
}

func isIdentPart(c byte) bool {
	return c == '_' || unicode.IsLetter(rune(c)) || unicode.IsDigit(rune(c))
}

func (l *lexer) next() (Token, error) {
	if err := l.skipSpaceAndComments(); err != nil {
		return Token{}, err
	}
	pos := l.pos()
	if l.off >= len(l.src) {
		return Token{Kind: TokEOF, Pos: pos}, nil
	}
	c := l.peek()
	switch {
	case isIdentStart(c):
		start := l.off
		for l.off < len(l.src) && isIdentPart(l.peek()) {
			l.advance()
		}
		text := l.src[start:l.off]
		kind := TokIdent
		if keywords[text] {
			kind = TokKeyword
		}
		return Token{Kind: kind, Text: text, Pos: pos}, nil

	case unicode.IsDigit(rune(c)):
		start := l.off
		for l.off < len(l.src) && unicode.IsDigit(rune(l.peek())) {
			l.advance()
		}
		kind := TokIntLit
		if l.peek() == '.' && unicode.IsDigit(rune(l.peek2())) {
			kind = TokDoubleLit
			l.advance()
			for l.off < len(l.src) && unicode.IsDigit(rune(l.peek())) {
				l.advance()
			}
		}
		if l.peek() == 'e' || l.peek() == 'E' {
			kind = TokDoubleLit
			l.advance()
			if l.peek() == '+' || l.peek() == '-' {
				l.advance()
			}
			if !unicode.IsDigit(rune(l.peek())) {
				return Token{}, errf(l.pos(), "malformed exponent")
			}
			for l.off < len(l.src) && unicode.IsDigit(rune(l.peek())) {
				l.advance()
			}
		}
		return Token{Kind: kind, Text: l.src[start:l.off], Pos: pos}, nil

	case c == '"':
		l.advance()
		var b strings.Builder
		for {
			if l.off >= len(l.src) || l.peek() == '\n' {
				return Token{}, errf(pos, "unterminated string literal")
			}
			ch := l.advance()
			if ch == '"' {
				break
			}
			if ch == '\\' {
				if l.off >= len(l.src) {
					return Token{}, errf(pos, "unterminated escape")
				}
				esc := l.advance()
				switch esc {
				case 'n':
					b.WriteByte('\n')
				case 't':
					b.WriteByte('\t')
				case '"':
					b.WriteByte('"')
				case '\\':
					b.WriteByte('\\')
				default:
					return Token{}, errf(pos, "bad escape \\%c", esc)
				}
				continue
			}
			b.WriteByte(ch)
		}
		return Token{Kind: TokStringLit, Text: b.String(), Pos: pos}, nil

	case strings.IndexByte("(){}[];,.", c) >= 0:
		l.advance()
		return Token{Kind: TokPunct, Text: string(c), Pos: pos}, nil

	default:
		// Operators, longest match first.
		for _, op := range []string{"==", "!=", "<=", ">=", "&&", "||",
			"++", "--", "+=", "-=",
			"=", "<", ">", "+", "-", "*", "/", "%", "!"} {
			if strings.HasPrefix(l.src[l.off:], op) {
				for range op {
					l.advance()
				}
				return Token{Kind: TokOp, Text: op, Pos: pos}, nil
			}
		}
		return Token{}, errf(pos, "unexpected character %q", string(c))
	}
}
