package lang

import "strconv"

// Parse lexes and parses a MiniJP compilation unit.
func Parse(src string) (*File, error) {
	toks, err := Lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	f := &File{}
	for !p.atEOF() {
		c, err := p.classDecl()
		if err != nil {
			return nil, err
		}
		f.Classes = append(f.Classes, c)
	}
	return f, nil
}

type parser struct {
	toks []Token
	i    int
}

func (p *parser) cur() Token     { return p.toks[p.i] }
func (p *parser) at(k int) Token { return p.toks[min(p.i+k, len(p.toks)-1)] }
func (p *parser) atEOF() bool    { return p.cur().Kind == TokEOF }
func (p *parser) advance() Token {
	t := p.cur()
	if p.i < len(p.toks)-1 {
		p.i++
	}
	return t
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func (p *parser) is(kind TokKind, text string) bool {
	t := p.cur()
	return t.Kind == kind && t.Text == text
}

func (p *parser) accept(kind TokKind, text string) bool {
	if p.is(kind, text) {
		p.advance()
		return true
	}
	return false
}

func (p *parser) expect(kind TokKind, text string) (Token, error) {
	if p.is(kind, text) {
		return p.advance(), nil
	}
	return Token{}, errf(p.cur().Pos, "expected %q, found %s", text, p.cur())
}

func (p *parser) expectIdent() (Token, error) {
	if p.cur().Kind == TokIdent {
		return p.advance(), nil
	}
	return Token{}, errf(p.cur().Pos, "expected identifier, found %s", p.cur())
}

// typeNameStarts reports whether the current token can begin a type.
func (p *parser) typeNameStarts() bool {
	t := p.cur()
	if t.Kind == TokIdent {
		return true
	}
	if t.Kind == TokKeyword {
		switch t.Text {
		case "int", "double", "boolean", "String", "void":
			return true
		}
	}
	return false
}

// typeExpr parses `name ([])*`.
func (p *parser) typeExpr() (TypeExpr, error) {
	t := p.cur()
	if !p.typeNameStarts() {
		return TypeExpr{}, errf(t.Pos, "expected type, found %s", t)
	}
	p.advance()
	te := TypeExpr{Pos: t.Pos, Name: t.Text}
	for p.is(TokPunct, "[") && p.at(1).Kind == TokPunct && p.at(1).Text == "]" {
		p.advance()
		p.advance()
		te.Dims++
	}
	return te, nil
}

func (p *parser) classDecl() (*ClassDecl, error) {
	start := p.cur().Pos
	remote := p.accept(TokKeyword, "remote")
	if _, err := p.expect(TokKeyword, "class"); err != nil {
		return nil, err
	}
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	c := &ClassDecl{Pos: start, Name: name.Text, Remote: remote}
	if p.accept(TokKeyword, "extends") {
		sup, err := p.expectIdent()
		if err != nil {
			return nil, err
		}
		c.Extends = sup.Text
	}
	if _, err := p.expect(TokPunct, "{"); err != nil {
		return nil, err
	}
	for !p.accept(TokPunct, "}") {
		if p.atEOF() {
			return nil, errf(c.Pos, "unterminated class %s", c.Name)
		}
		if err := p.member(c); err != nil {
			return nil, err
		}
	}
	return c, nil
}

// member parses a field, method or constructor into c.
func (p *parser) member(c *ClassDecl) error {
	pos := p.cur().Pos
	static := p.accept(TokKeyword, "static")

	// Constructor: ClassName (
	if p.cur().Kind == TokIdent && p.cur().Text == c.Name &&
		p.at(1).Kind == TokPunct && p.at(1).Text == "(" {
		name := p.advance()
		m := &MethodDecl{Pos: pos, Name: name.Text, Static: static, IsCtor: true,
			RetX: TypeExpr{Pos: pos, Name: "void"}, Class: c}
		if static {
			return errf(pos, "constructor cannot be static")
		}
		if err := p.methodRest(m); err != nil {
			return err
		}
		c.Methods = append(c.Methods, m)
		return nil
	}

	te, err := p.typeExpr()
	if err != nil {
		return err
	}
	name, err := p.expectIdent()
	if err != nil {
		return err
	}
	if p.is(TokPunct, "(") {
		m := &MethodDecl{Pos: pos, Name: name.Text, Static: static, RetX: te, Class: c}
		if err := p.methodRest(m); err != nil {
			return err
		}
		c.Methods = append(c.Methods, m)
		return nil
	}
	if _, err := p.expect(TokPunct, ";"); err != nil {
		return err
	}
	c.Fields = append(c.Fields, &FieldDecl{Pos: pos, Name: name.Text, Static: static, TypeX: te, Owner: c})
	return nil
}

func (p *parser) methodRest(m *MethodDecl) error {
	if _, err := p.expect(TokPunct, "("); err != nil {
		return err
	}
	for !p.accept(TokPunct, ")") {
		if len(m.Params) > 0 {
			if _, err := p.expect(TokPunct, ","); err != nil {
				return err
			}
		}
		te, err := p.typeExpr()
		if err != nil {
			return err
		}
		name, err := p.expectIdent()
		if err != nil {
			return err
		}
		m.Params = append(m.Params, &Param{Pos: name.Pos, Name: name.Text, TypeX: te})
	}
	// Abstract/empty bodies are written `{ }`; a bare `;` declares a
	// body-less method (remote interface style).
	if p.accept(TokPunct, ";") {
		return nil
	}
	body, err := p.block()
	if err != nil {
		return err
	}
	m.Body = body
	return nil
}

func (p *parser) block() (*Block, error) {
	start, err := p.expect(TokPunct, "{")
	if err != nil {
		return nil, err
	}
	b := &Block{Pos: start.Pos}
	for !p.accept(TokPunct, "}") {
		if p.atEOF() {
			return nil, errf(start.Pos, "unterminated block")
		}
		s, err := p.stmt()
		if err != nil {
			return nil, err
		}
		b.Stmts = append(b.Stmts, s)
	}
	return b, nil
}

// startsVarDecl disambiguates `T x ...` declarations from expressions
// at statement start.
func (p *parser) startsVarDecl() bool {
	t := p.cur()
	if t.Kind == TokKeyword {
		switch t.Text {
		case "int", "double", "boolean", "String":
			return true
		}
		return false
	}
	if t.Kind != TokIdent {
		return false
	}
	// IDENT IDENT -> declaration with class type.
	if p.at(1).Kind == TokIdent {
		return true
	}
	// IDENT [ ] -> array-typed declaration. IDENT [ expr -> index expr.
	j := 1
	for p.at(j).Kind == TokPunct && p.at(j).Text == "[" &&
		p.at(j+1).Kind == TokPunct && p.at(j+1).Text == "]" {
		j += 2
	}
	return j > 1 && p.at(j).Kind == TokIdent
}

func (p *parser) stmt() (Stmt, error) {
	pos := p.cur().Pos
	switch {
	case p.is(TokPunct, "{"):
		return p.block()
	case p.is(TokKeyword, "if"):
		p.advance()
		if _, err := p.expect(TokPunct, "("); err != nil {
			return nil, err
		}
		cond, err := p.expr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokPunct, ")"); err != nil {
			return nil, err
		}
		then, err := p.stmt()
		if err != nil {
			return nil, err
		}
		s := &If{Pos: pos, Cond: cond, Then: then}
		if p.accept(TokKeyword, "else") {
			s.Else, err = p.stmt()
			if err != nil {
				return nil, err
			}
		}
		return s, nil
	case p.is(TokKeyword, "while"):
		p.advance()
		if _, err := p.expect(TokPunct, "("); err != nil {
			return nil, err
		}
		cond, err := p.expr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokPunct, ")"); err != nil {
			return nil, err
		}
		body, err := p.stmt()
		if err != nil {
			return nil, err
		}
		return &While{Pos: pos, Cond: cond, Body: body}, nil
	case p.is(TokKeyword, "for"):
		return p.forStmt()
	case p.is(TokKeyword, "return"):
		p.advance()
		s := &Return{Pos: pos}
		if !p.is(TokPunct, ";") {
			v, err := p.expr()
			if err != nil {
				return nil, err
			}
			s.Value = v
		}
		if _, err := p.expect(TokPunct, ";"); err != nil {
			return nil, err
		}
		return s, nil
	case p.startsVarDecl():
		s, err := p.varDecl()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokPunct, ";"); err != nil {
			return nil, err
		}
		return s, nil
	default:
		x, err := p.expr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokPunct, ";"); err != nil {
			return nil, err
		}
		return &ExprStmt{Pos: pos, X: x}, nil
	}
}

func (p *parser) varDecl() (*VarDecl, error) {
	pos := p.cur().Pos
	te, err := p.typeExpr()
	if err != nil {
		return nil, err
	}
	name, err := p.expectIdent()
	if err != nil {
		return nil, err
	}
	d := &VarDecl{Pos: pos, Name: name.Text, TypeX: te}
	if p.accept(TokOp, "=") {
		d.Init, err = p.expr()
		if err != nil {
			return nil, err
		}
	}
	return d, nil
}

func (p *parser) forStmt() (Stmt, error) {
	pos := p.advance().Pos // "for"
	if _, err := p.expect(TokPunct, "("); err != nil {
		return nil, err
	}
	s := &For{Pos: pos}
	if !p.is(TokPunct, ";") {
		if p.startsVarDecl() {
			d, err := p.varDecl()
			if err != nil {
				return nil, err
			}
			s.Init = d
		} else {
			x, err := p.expr()
			if err != nil {
				return nil, err
			}
			s.Init = &ExprStmt{Pos: pos, X: x}
		}
	}
	if _, err := p.expect(TokPunct, ";"); err != nil {
		return nil, err
	}
	if !p.is(TokPunct, ";") {
		c, err := p.expr()
		if err != nil {
			return nil, err
		}
		s.Cond = c
	}
	if _, err := p.expect(TokPunct, ";"); err != nil {
		return nil, err
	}
	if !p.is(TokPunct, ")") {
		x, err := p.expr()
		if err != nil {
			return nil, err
		}
		s.Post = x
	}
	if _, err := p.expect(TokPunct, ")"); err != nil {
		return nil, err
	}
	body, err := p.stmt()
	if err != nil {
		return nil, err
	}
	s.Body = body
	return s, nil
}

// --- expressions, precedence climbing --------------------------------

func (p *parser) expr() (Expr, error) { return p.assignExpr() }

func (p *parser) assignExpr() (Expr, error) {
	lhs, err := p.orExpr()
	if err != nil {
		return nil, err
	}
	switch {
	case p.is(TokOp, "="):
		pos := p.advance().Pos
		rhs, err := p.assignExpr()
		if err != nil {
			return nil, err
		}
		a := &Assign{LHS: lhs, RHS: rhs}
		a.Pos = pos
		return a, nil
	case p.is(TokOp, "++"), p.is(TokOp, "--"):
		// Postfix increment/decrement, desugared to `x = x ± 1` (the
		// value of the expression is the updated one; MiniJP only
		// allows these as statements, which the checker enforces by
		// accepting Assign in statement position).
		op := p.advance()
		binOp := "+"
		if op.Text == "--" {
			binOp = "-"
		}
		one := &IntLit{Value: 1}
		one.Pos = op.Pos
		b := &Binary{Op: binOp, L: lhs, R: one}
		b.Pos = op.Pos
		a := &Assign{LHS: lhs, RHS: b}
		a.Pos = op.Pos
		return a, nil
	case p.is(TokOp, "+="), p.is(TokOp, "-="):
		op := p.advance()
		rhs, err := p.assignExpr()
		if err != nil {
			return nil, err
		}
		b := &Binary{Op: op.Text[:1], L: lhs, R: rhs}
		b.Pos = op.Pos
		a := &Assign{LHS: lhs, RHS: b}
		a.Pos = op.Pos
		return a, nil
	}
	return lhs, nil
}

func (p *parser) binaryLevel(ops []string, next func() (Expr, error)) (Expr, error) {
	l, err := next()
	if err != nil {
		return nil, err
	}
	for {
		matched := false
		for _, op := range ops {
			if p.is(TokOp, op) {
				pos := p.advance().Pos
				r, err := next()
				if err != nil {
					return nil, err
				}
				b := &Binary{Op: op, L: l, R: r}
				b.Pos = pos
				l = b
				matched = true
				break
			}
		}
		if !matched {
			return l, nil
		}
	}
}

func (p *parser) orExpr() (Expr, error) {
	return p.binaryLevel([]string{"||"}, p.andExpr)
}

func (p *parser) andExpr() (Expr, error) {
	return p.binaryLevel([]string{"&&"}, p.eqExpr)
}

func (p *parser) eqExpr() (Expr, error) {
	return p.binaryLevel([]string{"==", "!="}, p.relExpr)
}

func (p *parser) relExpr() (Expr, error) {
	return p.binaryLevel([]string{"<=", ">=", "<", ">"}, p.addExpr)
}

func (p *parser) addExpr() (Expr, error) {
	return p.binaryLevel([]string{"+", "-"}, p.mulExpr)
}

func (p *parser) mulExpr() (Expr, error) {
	return p.binaryLevel([]string{"*", "/", "%"}, p.unaryExpr)
}

func (p *parser) unaryExpr() (Expr, error) {
	if p.is(TokOp, "-") || p.is(TokOp, "!") {
		op := p.advance()
		x, err := p.unaryExpr()
		if err != nil {
			return nil, err
		}
		u := &Unary{Op: op.Text, X: x}
		u.Pos = op.Pos
		return u, nil
	}
	return p.postfixExpr()
}

func (p *parser) postfixExpr() (Expr, error) {
	x, err := p.primaryExpr()
	if err != nil {
		return nil, err
	}
	for {
		switch {
		case p.is(TokPunct, "."):
			p.advance()
			name, err := p.expectIdent()
			if err != nil {
				return nil, err
			}
			if p.is(TokPunct, "(") {
				args, err := p.args()
				if err != nil {
					return nil, err
				}
				c := &Call{Recv: x, Name: name.Text, Args: args}
				c.Pos = name.Pos
				x = c
			} else {
				f := &FieldAccess{X: x, Name: name.Text}
				f.Pos = name.Pos
				x = f
			}
		case p.is(TokPunct, "["):
			pos := p.advance().Pos
			i, err := p.expr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(TokPunct, "]"); err != nil {
				return nil, err
			}
			ix := &Index{X: x, I: i}
			ix.Pos = pos
			x = ix
		default:
			return x, nil
		}
	}
}

func (p *parser) args() ([]Expr, error) {
	if _, err := p.expect(TokPunct, "("); err != nil {
		return nil, err
	}
	var args []Expr
	for !p.accept(TokPunct, ")") {
		if len(args) > 0 {
			if _, err := p.expect(TokPunct, ","); err != nil {
				return nil, err
			}
		}
		a, err := p.expr()
		if err != nil {
			return nil, err
		}
		args = append(args, a)
	}
	return args, nil
}

func (p *parser) primaryExpr() (Expr, error) {
	t := p.cur()
	switch {
	case t.Kind == TokIntLit:
		p.advance()
		v, err := strconv.ParseInt(t.Text, 10, 64)
		if err != nil {
			return nil, errf(t.Pos, "bad int literal %s", t.Text)
		}
		e := &IntLit{Value: v}
		e.Pos = t.Pos
		return e, nil
	case t.Kind == TokDoubleLit:
		p.advance()
		v, err := strconv.ParseFloat(t.Text, 64)
		if err != nil {
			return nil, errf(t.Pos, "bad double literal %s", t.Text)
		}
		e := &DoubleLit{Value: v}
		e.Pos = t.Pos
		return e, nil
	case t.Kind == TokStringLit:
		p.advance()
		e := &StringLit{Value: t.Text}
		e.Pos = t.Pos
		return e, nil
	case p.is(TokKeyword, "true"), p.is(TokKeyword, "false"):
		p.advance()
		e := &BoolLit{Value: t.Text == "true"}
		e.Pos = t.Pos
		return e, nil
	case p.is(TokKeyword, "null"):
		p.advance()
		e := &NullLit{}
		e.Pos = t.Pos
		return e, nil
	case p.is(TokKeyword, "this"):
		p.advance()
		e := &This{}
		e.Pos = t.Pos
		return e, nil
	case p.is(TokKeyword, "new"):
		return p.newExpr()
	case p.is(TokPunct, "("):
		p.advance()
		x, err := p.expr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokPunct, ")"); err != nil {
			return nil, err
		}
		return x, nil
	case t.Kind == TokIdent:
		p.advance()
		if p.is(TokPunct, "(") {
			args, err := p.args()
			if err != nil {
				return nil, err
			}
			c := &Call{Name: t.Text, Args: args}
			c.Pos = t.Pos
			return c, nil
		}
		e := &Ident{Name: t.Text}
		e.Pos = t.Pos
		return e, nil
	default:
		return nil, errf(t.Pos, "unexpected token %s", t)
	}
}

func (p *parser) newExpr() (Expr, error) {
	pos := p.advance().Pos // "new"
	t := p.cur()
	if !p.typeNameStarts() || t.Text == "void" {
		return nil, errf(t.Pos, "expected type after new")
	}
	p.advance()

	// new C(args)
	if p.is(TokPunct, "(") {
		if t.Kind != TokIdent {
			return nil, errf(t.Pos, "cannot construct primitive %s", t.Text)
		}
		args, err := p.args()
		if err != nil {
			return nil, err
		}
		e := &New{ClassName: t.Text, Args: args}
		e.Pos = pos
		return e, nil
	}

	// new T[len]...[]...
	e := &NewArray{ElemX: TypeExpr{Pos: t.Pos, Name: t.Text}}
	e.Pos = pos
	if !p.is(TokPunct, "[") {
		return nil, errf(p.cur().Pos, "expected ( or [ after new %s", t.Text)
	}
	for p.is(TokPunct, "[") {
		p.advance()
		if p.accept(TokPunct, "]") {
			// Unsized trailing dimension.
			e.Dims++
			continue
		}
		if len(e.Lens) < e.Dims {
			return nil, errf(p.cur().Pos, "sized dimension after unsized one")
		}
		l, err := p.expr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokPunct, "]"); err != nil {
			return nil, err
		}
		e.Lens = append(e.Lens, l)
		e.Dims++
	}
	return e, nil
}
