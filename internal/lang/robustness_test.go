package lang

import (
	"math/rand"
	"strings"
	"testing"
)

// TestParserNeverPanics: random token soup assembled from the
// language's own vocabulary must produce errors, never panics.
func TestParserNeverPanics(t *testing.T) {
	vocab := []string{
		"class", "remote", "static", "extends", "new", "if", "else",
		"while", "for", "return", "true", "false", "null", "this",
		"int", "double", "boolean", "String", "void",
		"{", "}", "(", ")", "[", "]", ";", ",", ".",
		"=", "==", "!=", "<", "<=", "+", "-", "*", "/", "%", "&&", "||", "!",
		"x", "y", "Foo", "main", "0", "1", "2.5", `"s"`,
	}
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 2000; trial++ {
		n := rng.Intn(40)
		var b strings.Builder
		for i := 0; i < n; i++ {
			b.WriteString(vocab[rng.Intn(len(vocab))])
			b.WriteByte(' ')
		}
		src := b.String()
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("panic on %q: %v", src, r)
				}
			}()
			if f, err := Parse(src); err == nil {
				_, _ = Check(f) // must not panic either
			}
		}()
	}
}

// TestCheckerNeverPanicsOnMutations: take a valid program and corrupt
// single tokens; Parse/Check must fail cleanly.
func TestCheckerNeverPanicsOnMutations(t *testing.T) {
	base := `
class Node { int v; Node next; Node(Node n) { this.next = n; } }
remote class F {
	Node id(Node x) { return x; }
	static void main() {
		F f = new F();
		Node h = null;
		for (int i = 0; i < 3; i = i + 1) { h = new Node(h); }
		Node g = f.id(h);
		Node use = g.next;
	}
}`
	words := strings.Fields(base)
	rng := rand.New(rand.NewSource(11))
	repl := []string{"", "}", "(", "int", "null", "zzz", "=", "class"}
	for trial := 0; trial < 500; trial++ {
		mut := append([]string(nil), words...)
		mut[rng.Intn(len(mut))] = repl[rng.Intn(len(repl))]
		src := strings.Join(mut, " ")
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Fatalf("panic on mutated source: %v\n%s", r, src)
				}
			}()
			if f, err := Parse(src); err == nil {
				_, _ = Check(f)
			}
		}()
	}
}
