// Package lang implements MiniJP, a small Java-like source language
// with JavaParty's `remote class` marker. It is the input language of
// the optimizing RMI compiler: classes, fields, (static) methods,
// constructors, arrays, loops and calls — exactly the features the
// paper's heap analysis consumes (allocation sites, field assignments,
// calls, remote calls).
package lang

import "fmt"

// Pos is a source position.
type Pos struct {
	Line, Col int
}

func (p Pos) String() string { return fmt.Sprintf("%d:%d", p.Line, p.Col) }

// TokKind enumerates token kinds.
type TokKind int

const (
	TokEOF TokKind = iota
	TokIdent
	TokIntLit
	TokDoubleLit
	TokStringLit
	TokPunct   // one of ( ) { } [ ] ; , .
	TokOp      // operators: = == != < <= > >= + - * / % && || !
	TokKeyword // reserved words
)

// Token is one lexical token.
type Token struct {
	Kind TokKind
	Text string
	Pos  Pos
}

func (t Token) String() string {
	if t.Kind == TokEOF {
		return "end of file"
	}
	return fmt.Sprintf("%q", t.Text)
}

var keywords = map[string]bool{
	"class": true, "extends": true, "remote": true, "static": true,
	"new": true, "if": true, "else": true, "while": true, "for": true,
	"return": true, "true": true, "false": true, "null": true,
	"this": true, "int": true, "double": true, "boolean": true,
	"String": true, "void": true,
}

// Error is a source-located compile error.
type Error struct {
	Pos Pos
	Msg string
}

func (e *Error) Error() string { return fmt.Sprintf("%s: %s", e.Pos, e.Msg) }

func errf(pos Pos, format string, args ...interface{}) *Error {
	return &Error{Pos: pos, Msg: fmt.Sprintf(format, args...)}
}
