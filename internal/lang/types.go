package lang

// Type is a MiniJP static type.
type Type interface {
	String() string
	isType()
}

// PrimKind enumerates the primitive types.
type PrimKind int

const (
	PInt PrimKind = iota
	PDouble
	PBoolean
	PString
	PVoid
	PNull // the type of the null literal
)

// PrimType is a primitive type.
type PrimType struct{ Kind PrimKind }

func (p *PrimType) isType() {}
func (p *PrimType) String() string {
	switch p.Kind {
	case PInt:
		return "int"
	case PDouble:
		return "double"
	case PBoolean:
		return "boolean"
	case PString:
		return "String"
	case PVoid:
		return "void"
	default:
		return "null"
	}
}

// Singleton primitive types.
var (
	IntType     = &PrimType{PInt}
	DoubleType  = &PrimType{PDouble}
	BooleanType = &PrimType{PBoolean}
	StringType  = &PrimType{PString}
	VoidType    = &PrimType{PVoid}
	NullType    = &PrimType{PNull}
)

// ClassType is a reference to a declared class.
type ClassType struct{ Decl *ClassDecl }

func (c *ClassType) isType()        {}
func (c *ClassType) String() string { return c.Decl.Name }

// ArrayType is T[].
type ArrayType struct{ Elem Type }

func (a *ArrayType) isType()        {}
func (a *ArrayType) String() string { return a.Elem.String() + "[]" }

// TypeEq reports structural type equality.
func TypeEq(a, b Type) bool {
	switch at := a.(type) {
	case *PrimType:
		bt, ok := b.(*PrimType)
		return ok && at.Kind == bt.Kind
	case *ClassType:
		bt, ok := b.(*ClassType)
		return ok && at.Decl == bt.Decl
	case *ArrayType:
		bt, ok := b.(*ArrayType)
		return ok && TypeEq(at.Elem, bt.Elem)
	}
	return false
}

// IsRef reports whether t is a reference type (class or array).
func IsRef(t Type) bool {
	switch t.(type) {
	case *ClassType, *ArrayType:
		return true
	}
	return false
}

// Assignable reports whether a value of type src may be assigned to a
// location of type dst (equality, null to references, or subclass
// widening).
func Assignable(dst, src Type) bool {
	if TypeEq(dst, src) {
		return true
	}
	if p, ok := src.(*PrimType); ok && p.Kind == PNull {
		return IsRef(dst)
	}
	sc, okS := src.(*ClassType)
	dc, okD := dst.(*ClassType)
	if okS && okD {
		return sc.Decl.IsSubclassOf(dc.Decl)
	}
	// int widens to double, Java-style.
	sp, okSP := src.(*PrimType)
	dp, okDP := dst.(*PrimType)
	if okSP && okDP && sp.Kind == PInt && dp.Kind == PDouble {
		return true
	}
	return false
}

// IsNumeric reports whether t is int or double.
func IsNumeric(t Type) bool {
	p, ok := t.(*PrimType)
	return ok && (p.Kind == PInt || p.Kind == PDouble)
}
