// Package metrics provides the lock-free latency instruments behind
// the RMI runtime's observability layer: log2-bucketed histograms with
// quantile derivation (p50/p95/p99), labeled families, gauges, and a
// Prometheus text exposition (`/metrics` in internal/obs).
//
// Everything on the record path is a single atomic add — no locks, no
// allocation — so histograms can sit on the RMI hot path when tracing
// is enabled without perturbing what they measure.
package metrics

import (
	"math"
	"math/bits"
	"sync/atomic"
)

// NumBuckets is the bucket count of a Histogram. Bucket i counts
// observations in [2^i, 2^(i+1)) nanoseconds (bucket 0 absorbs values
// ≤ 1 ns); 44 buckets reach ~4.8 hours, far past any call phase.
const NumBuckets = 44

// Histogram is a lock-free log2-bucketed latency histogram. The zero
// value is ready to use; all methods are safe for concurrent use. A
// Histogram must not be copied after first use.
type Histogram struct {
	buckets [NumBuckets]atomic.Uint64
	sum     atomic.Int64
}

// bucketOf maps a value to its log2 bucket index.
func bucketOf(v int64) int {
	if v <= 1 {
		return 0
	}
	b := bits.Len64(uint64(v)) - 1
	if b >= NumBuckets {
		b = NumBuckets - 1
	}
	return b
}

// BucketUpper returns the exclusive upper bound of bucket i in
// nanoseconds (the Prometheus `le` value of the bucket).
func BucketUpper(i int) int64 {
	if i >= 63 {
		return math.MaxInt64
	}
	return int64(1) << (i + 1)
}

// Observe records one value (nanoseconds). Negative values clamp to
// zero rather than corrupting the distribution.
func (h *Histogram) Observe(v int64) {
	if v < 0 {
		v = 0
	}
	h.buckets[bucketOf(v)].Add(1)
	h.sum.Add(v)
}

// Count returns the total number of observations.
func (h *Histogram) Count() uint64 {
	var n uint64
	for i := range h.buckets {
		n += h.buckets[i].Load()
	}
	return n
}

// Sum returns the running total of observed values in nanoseconds.
func (h *Histogram) Sum() int64 { return h.sum.Load() }

// HistSnapshot is a consistent-enough copy of a histogram for quantile
// math and exposition (counts are loaded bucket by bucket; a snapshot
// taken during concurrent recording may be mid-update by a few counts,
// which is fine for monitoring).
type HistSnapshot struct {
	Buckets [NumBuckets]uint64
	Sum     int64
	Total   uint64
}

// Snapshot copies the current bucket counts.
func (h *Histogram) Snapshot() HistSnapshot {
	var s HistSnapshot
	for i := range h.buckets {
		c := h.buckets[i].Load()
		s.Buckets[i] = c
		s.Total += c
	}
	s.Sum = h.sum.Load()
	return s
}

// Quantile estimates the q-quantile (q in [0,1]) in nanoseconds by
// linear interpolation inside the covering bucket. It returns 0 for an
// empty histogram.
func (s HistSnapshot) Quantile(q float64) float64 {
	if s.Total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(s.Total)
	var cum float64
	for i, c := range s.Buckets {
		if c == 0 {
			continue
		}
		next := cum + float64(c)
		if rank <= next {
			lo := float64(int64(1) << i)
			if i == 0 {
				lo = 0
			}
			hi := float64(BucketUpper(i))
			frac := (rank - cum) / float64(c)
			return lo + frac*(hi-lo)
		}
		cum = next
	}
	return float64(BucketUpper(NumBuckets - 1))
}

// Merge returns the element-wise sum of two snapshots. Because buckets
// are fixed log2 ranges shared by every histogram, merging is exact:
// recording a value stream into one histogram and recording a split of
// the same stream into two histograms then merging yield identical
// snapshots (same buckets, sum, total — hence identical quantiles).
// This is the basis of cluster-wide aggregation: nodes ship snapshots
// and any collector folds them without loss.
func (s HistSnapshot) Merge(o HistSnapshot) HistSnapshot {
	for i := range s.Buckets {
		s.Buckets[i] += o.Buckets[i]
	}
	s.Sum += o.Sum
	s.Total += o.Total
	return s
}

// Quantile is Snapshot().Quantile for one-off reads; take an explicit
// Snapshot to derive several quantiles consistently.
func (h *Histogram) Quantile(q float64) float64 { return h.Snapshot().Quantile(q) }

// Mean returns the mean observation in nanoseconds (0 when empty).
func (s HistSnapshot) Mean() float64 {
	if s.Total == 0 {
		return 0
	}
	return float64(s.Sum) / float64(s.Total)
}
