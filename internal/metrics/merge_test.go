package metrics

import (
	"math/rand"
	"testing"
)

// randSnapshot builds a snapshot with small bucket counts, the regime
// where off-by-one merge bugs would be visible in quantiles.
func randSnapshot(rng *rand.Rand) HistSnapshot {
	var s HistSnapshot
	populated := rng.Intn(8)
	for i := 0; i < populated; i++ {
		b := rng.Intn(NumBuckets)
		c := uint64(rng.Intn(5))
		s.Buckets[b] += c
		s.Total += c
		// A representative value inside the bucket keeps Sum plausible.
		s.Sum += int64(c) * (BucketUpper(b) / 2)
	}
	return s
}

func snapshotsEqual(a, b HistSnapshot) bool {
	if a.Sum != b.Sum || a.Total != b.Total {
		return false
	}
	for i := range a.Buckets {
		if a.Buckets[i] != b.Buckets[i] {
			return false
		}
	}
	return true
}

func TestMergeCommutative(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 200; trial++ {
		a, b := randSnapshot(rng), randSnapshot(rng)
		if !snapshotsEqual(a.Merge(b), b.Merge(a)) {
			t.Fatalf("trial %d: a.Merge(b) != b.Merge(a)\na=%+v\nb=%+v", trial, a, b)
		}
	}
}

func TestMergeAssociative(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 200; trial++ {
		a, b, c := randSnapshot(rng), randSnapshot(rng), randSnapshot(rng)
		if !snapshotsEqual(a.Merge(b).Merge(c), a.Merge(b.Merge(c))) {
			t.Fatalf("trial %d: (a+b)+c != a+(b+c)", trial)
		}
	}
}

func TestMergeIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	var zero HistSnapshot
	for trial := 0; trial < 50; trial++ {
		a := randSnapshot(rng)
		if !snapshotsEqual(a.Merge(zero), a) {
			t.Fatalf("trial %d: a.Merge(zero) != a", trial)
		}
	}
}

func TestMergeDoesNotMutateReceiver(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	a, b := randSnapshot(rng), randSnapshot(rng)
	aCopy, bCopy := a, b
	_ = a.Merge(b)
	if !snapshotsEqual(a, aCopy) || !snapshotsEqual(b, bCopy) {
		t.Fatal("Merge mutated one of its operands")
	}
}

// TestMergeEqualsSingleHistogram is the core exactness property: a
// value stream split across N histograms and merged is byte-identical
// to the same stream recorded into one histogram — counts, sums, and
// therefore every quantile agree exactly, not approximately.
func TestMergeEqualsSingleHistogram(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 50; trial++ {
		var whole Histogram
		parts := make([]Histogram, 1+rng.Intn(4))
		n := 1 + rng.Intn(500)
		for i := 0; i < n; i++ {
			// Spread values across the full bucket range, including the
			// clamp-to-zero and top-bucket edges.
			v := int64(0)
			switch rng.Intn(4) {
			case 0:
				v = int64(rng.Intn(3)) - 1 // -1, 0, 1: the clamp edge
			case 1:
				v = rng.Int63n(1 << 20)
			case 2:
				v = rng.Int63n(1 << 40)
			case 3:
				v = rng.Int63() // up to the top bucket
			}
			whole.Observe(v)
			parts[rng.Intn(len(parts))].Observe(v)
		}
		var merged HistSnapshot
		for i := range parts {
			merged = merged.Merge(parts[i].Snapshot())
		}
		want := whole.Snapshot()
		if !snapshotsEqual(merged, want) {
			t.Fatalf("trial %d: merged parts != whole\nmerged=%+v\nwhole=%+v", trial, merged, want)
		}
		for _, q := range []float64{0, 0.5, 0.95, 0.99, 1} {
			if got, want := merged.Quantile(q), want.Quantile(q); got != want {
				t.Fatalf("trial %d: Quantile(%g) merged=%g whole=%g", trial, q, got, want)
			}
		}
	}
}

// FuzzMergeSmallVectors drives Merge with adversarial small bucket
// vectors: the fuzzer controls bucket placement directly (not via
// Observe), so degenerate shapes — single-bucket spikes, top-bucket
// mass, empty operands — are all reachable.
func FuzzMergeSmallVectors(f *testing.F) {
	f.Add(uint8(0), uint8(1), uint8(2), uint8(3), uint8(4), uint8(5))
	f.Add(uint8(43), uint8(43), uint8(0), uint8(0), uint8(7), uint8(9))
	f.Fuzz(func(t *testing.T, b0, c0, b1, c1, b2, c2 uint8) {
		mk := func(bucket, count uint8) HistSnapshot {
			var s HistSnapshot
			b := int(bucket) % NumBuckets
			c := uint64(count)
			s.Buckets[b] = c
			s.Total = c
			s.Sum = int64(c) * (BucketUpper(b) / 2)
			return s
		}
		a, b, c := mk(b0, c0), mk(b1, c1), mk(b2, c2)
		if !snapshotsEqual(a.Merge(b), b.Merge(a)) {
			t.Fatal("not commutative")
		}
		if !snapshotsEqual(a.Merge(b).Merge(c), a.Merge(b.Merge(c))) {
			t.Fatal("not associative")
		}
		m := a.Merge(b).Merge(c)
		if m.Total != a.Total+b.Total+c.Total {
			t.Fatalf("total %d != %d", m.Total, a.Total+b.Total+c.Total)
		}
		if m.Sum != a.Sum+b.Sum+c.Sum {
			t.Fatalf("sum %d != %d", m.Sum, a.Sum+b.Sum+c.Sum)
		}
		if m.Total > 0 {
			// Quantiles of a merge stay inside the value range the
			// populated buckets span.
			hi := float64(0)
			for i := NumBuckets - 1; i >= 0; i-- {
				if m.Buckets[i] > 0 {
					hi = float64(BucketUpper(i))
					break
				}
			}
			for _, q := range []float64{0, 0.5, 0.99, 1} {
				if v := m.Quantile(q); v < 0 || v > hi {
					t.Fatalf("Quantile(%g)=%g outside [0,%g]", q, v, hi)
				}
			}
		}
	})
}
