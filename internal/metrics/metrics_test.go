package metrics

import (
	"math"
	"strings"
	"sync"
	"testing"
)

func TestBucketOf(t *testing.T) {
	cases := []struct {
		v    int64
		want int
	}{
		{-5, 0}, {0, 0}, {1, 0}, {2, 1}, {3, 1}, {4, 2}, {1023, 9}, {1024, 10},
		{math.MaxInt64, NumBuckets - 1},
	}
	for _, c := range cases {
		if got := bucketOf(c.v); got != c.want {
			t.Errorf("bucketOf(%d) = %d, want %d", c.v, got, c.want)
		}
	}
}

func TestHistogramQuantiles(t *testing.T) {
	var h Histogram
	// 1000 observations uniform in [0, 1000).
	for i := int64(0); i < 1000; i++ {
		h.Observe(i)
	}
	s := h.Snapshot()
	if s.Total != 1000 {
		t.Fatalf("count = %d, want 1000", s.Total)
	}
	p50 := s.Quantile(0.50)
	// Log2 buckets are coarse: p50 of uniform [0,1000) must land in
	// [256, 1024) (the buckets covering the true median 500).
	if p50 < 256 || p50 > 1024 {
		t.Errorf("p50 = %g, want within [256, 1024)", p50)
	}
	if p99 := s.Quantile(0.99); p99 < p50 {
		t.Errorf("p99 %g < p50 %g", p99, p50)
	}
	if mean := s.Mean(); mean < 400 || mean > 600 {
		t.Errorf("mean = %g, want ~499.5", mean)
	}
	if q := (HistSnapshot{}).Quantile(0.5); q != 0 {
		t.Errorf("empty quantile = %g, want 0", q)
	}
}

func TestHistogramConcurrent(t *testing.T) {
	var h Histogram
	var wg sync.WaitGroup
	const workers, per = 8, 10000
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Observe(int64(w*1000 + i))
			}
		}(w)
	}
	wg.Wait()
	if got := h.Count(); got != workers*per {
		t.Fatalf("count = %d, want %d", got, workers*per)
	}
}

func TestRegistryPrometheus(t *testing.T) {
	r := NewRegistry()
	fam := r.Family("cormi_phase_latency_ns", "per-phase call latency")
	fam.Series(`site="a",phase="serialize"`).Observe(100)
	fam.Series(`site="a",phase="serialize"`).Observe(3000)
	fam.Series(`site="b",phase="execute"`).Observe(7)
	r.RegisterGauge("cormi_pool_outstanding", "buffers out", func() float64 { return 3 })

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE cormi_phase_latency_ns histogram",
		`cormi_phase_latency_ns_bucket{site="a",phase="serialize",le="+Inf"} 2`,
		`cormi_phase_latency_ns_sum{site="a",phase="serialize"} 3100`,
		`cormi_phase_latency_ns_count{site="b",phase="execute"} 1`,
		"# TYPE cormi_pool_outstanding gauge",
		"cormi_pool_outstanding 3",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
	// Cumulative buckets must be monotonic: the le="128" bucket of the
	// 100+3000 series holds 1, le="4096" holds 2.
	if !strings.Contains(out, `site="a",phase="serialize",le="128"} 1`) {
		t.Errorf("missing cumulative bucket le=128:\n%s", out)
	}
	if !strings.Contains(out, `site="a",phase="serialize",le="4096"} 2`) {
		t.Errorf("missing cumulative bucket le=4096:\n%s", out)
	}
}

func TestFamilySeriesReuse(t *testing.T) {
	r := NewRegistry()
	f := r.Family("f", "")
	if f.Series("x") != f.Series("x") {
		t.Fatal("Series not stable for same labels")
	}
	if r.Family("f", "") != f {
		t.Fatal("Family not stable for same name")
	}
}

func TestRegistryCounterVec(t *testing.T) {
	r := NewRegistry()
	r.RegisterCounterVec("cormi_site_calls", "per-site call count", func() []LabeledValue {
		return []LabeledValue{
			{Labels: `site="Work.go.1"`, Value: 12},
			{Labels: `site="Work.go.2"`, Value: 0},
			{Value: 5}, // label-free sample renders bare
		}
	})

	var b strings.Builder
	if err := r.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# HELP cormi_site_calls per-site call count",
		"# TYPE cormi_site_calls counter",
		`cormi_site_calls{site="Work.go.1"} 12`,
		`cormi_site_calls{site="Work.go.2"} 0`,
		"cormi_site_calls 5",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}
}
