package metrics

import (
	"fmt"
	"io"
	"sort"
	"sync"
)

// Family is a named set of histogram series distinguished by a
// pre-rendered Prometheus label string (e.g.
// `site="Foo.send.1",phase="serialize"`). Series creation takes the
// family lock; recording into an existing series is lock-free.
type Family struct {
	Name string
	Help string

	mu     sync.RWMutex
	series map[string]*Histogram
}

// Series returns the histogram for the given label string, creating it
// on first use.
func (f *Family) Series(labels string) *Histogram {
	f.mu.RLock()
	h, ok := f.series[labels]
	f.mu.RUnlock()
	if ok {
		return h
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if h, ok = f.series[labels]; ok {
		return h
	}
	h = &Histogram{}
	f.series[labels] = h
	return h
}

// each calls fn for every series in label order.
func (f *Family) each(fn func(labels string, h *Histogram)) {
	f.mu.RLock()
	keys := make([]string, 0, len(f.series))
	for k := range f.series {
		keys = append(keys, k)
	}
	f.mu.RUnlock()
	sort.Strings(keys)
	for _, k := range keys {
		f.mu.RLock()
		h := f.series[k]
		f.mu.RUnlock()
		fn(k, h)
	}
}

// gauge is a registered callback metric.
type gauge struct {
	name, help string
	fn         func() float64
}

// LabeledValue is one sample of a callback counter vector: a
// pre-rendered Prometheus label string (e.g. `site="Work.go.1"`) plus
// its current value.
type LabeledValue struct {
	Labels string
	Value  float64
}

// counterVec is a registered callback metric whose collect function
// produces a set of labeled series at exposition time.
type counterVec struct {
	name, help string
	collect    func() []LabeledValue
}

// Registry holds histogram families, gauges and counter vectors and
// renders them in Prometheus text exposition format.
type Registry struct {
	mu     sync.RWMutex
	fams   map[string]*Family
	order  []string
	gauges []gauge
	vecs   []counterVec
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{fams: make(map[string]*Family)}
}

// Family returns the named histogram family, creating it on first use.
func (r *Registry) Family(name, help string) *Family {
	r.mu.RLock()
	f, ok := r.fams[name]
	r.mu.RUnlock()
	if ok {
		return f
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok = r.fams[name]; ok {
		return f
	}
	f = &Family{Name: name, Help: help, series: make(map[string]*Histogram)}
	r.fams[name] = f
	r.order = append(r.order, name)
	return f
}

// RegisterGauge registers a callback gauge evaluated at exposition
// time (pool sizes, ring occupancy, ...).
func (r *Registry) RegisterGauge(name, help string, fn func() float64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.gauges = append(r.gauges, gauge{name: name, help: help, fn: fn})
}

// RegisterCounterVec registers a callback counter vector: collect is
// invoked at exposition time and every returned sample is rendered as
// one labeled series of the named family (this is how the per-call-
// site counters appear on /metrics, one series per site).
func (r *Registry) RegisterCounterVec(name, help string, collect func() []LabeledValue) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.vecs = append(r.vecs, counterVec{name: name, help: help, collect: collect})
}

// WritePrometheus renders every gauge, counter vector and histogram family in
// Prometheus text exposition format (version 0.0.4). Histogram buckets
// are cumulative with an explicit +Inf bucket; empty buckets below the
// highest populated one are emitted so scrape targets see a stable
// series set.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.RLock()
	gauges := append([]gauge(nil), r.gauges...)
	vecs := append([]counterVec(nil), r.vecs...)
	order := append([]string(nil), r.order...)
	r.mu.RUnlock()

	for _, g := range gauges {
		if g.help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", g.name, g.help); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s gauge\n%s %g\n", g.name, g.name, g.fn()); err != nil {
			return err
		}
	}
	for _, v := range vecs {
		if v.help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", v.name, v.help); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s counter\n", v.name); err != nil {
			return err
		}
		for _, s := range v.collect() {
			var err error
			if s.Labels == "" {
				_, err = fmt.Fprintf(w, "%s %g\n", v.name, s.Value)
			} else {
				_, err = fmt.Fprintf(w, "%s{%s} %g\n", v.name, s.Labels, s.Value)
			}
			if err != nil {
				return err
			}
		}
	}
	for _, name := range order {
		r.mu.RLock()
		f := r.fams[name]
		r.mu.RUnlock()
		if f == nil {
			continue
		}
		if f.Help != "" {
			if _, err := fmt.Fprintf(w, "# HELP %s %s\n", f.Name, f.Help); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s histogram\n", f.Name); err != nil {
			return err
		}
		var werr error
		f.each(func(labels string, h *Histogram) {
			if werr != nil {
				return
			}
			werr = writeHistogram(w, f.Name, labels, h.Snapshot())
		})
		if werr != nil {
			return werr
		}
	}
	return nil
}

// writeHistogram emits one series as cumulative le-buckets + sum +
// count. The label string is pre-rendered; `le` is appended to it.
func writeHistogram(w io.Writer, name, labels string, s HistSnapshot) error {
	top := 0
	for i, c := range s.Buckets {
		if c > 0 {
			top = i
		}
	}
	sep := ""
	if labels != "" {
		sep = ","
	}
	var cum uint64
	for i := 0; i <= top; i++ {
		cum += s.Buckets[i]
		if _, err := fmt.Fprintf(w, "%s_bucket{%s%sle=\"%d\"} %d\n",
			name, labels, sep, BucketUpper(i), cum); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "%s_bucket{%s%sle=\"+Inf\"} %d\n", name, labels, sep, s.Total); err != nil {
		return err
	}
	if labels != "" {
		labels = "{" + labels + "}"
	}
	if _, err := fmt.Fprintf(w, "%s_sum%s %d\n", name, labels, s.Sum); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_count%s %d\n", name, labels, s.Total)
	return err
}
