// Package model implements the runtime object model of the RMI system:
// class descriptors, heap objects with identity semantics, and tagged
// values. It plays the role of the Java object heap in the paper's
// Manta-JavaParty runtime: serializers introspect class descriptors
// (baseline "class" mode), cycle tables key on object identity, and the
// reuse optimization overwrites objects in place.
package model

import "fmt"

// ClassKind discriminates the five layouts an Object can have.
type ClassKind uint8

const (
	// KObject is a regular object with named fields.
	KObject ClassKind = iota
	// KDoubleArray is a double[] with a []float64 payload.
	KDoubleArray
	// KIntArray is an int[] with an []int64 payload.
	KIntArray
	// KByteArray is a byte[] with a []byte payload.
	KByteArray
	// KRefArray is a T[] whose elements are object references.
	KRefArray
)

func (k ClassKind) String() string {
	switch k {
	case KObject:
		return "object"
	case KDoubleArray:
		return "double[]"
	case KIntArray:
		return "int[]"
	case KByteArray:
		return "byte[]"
	case KRefArray:
		return "ref[]"
	default:
		return fmt.Sprintf("ClassKind(%d)", uint8(k))
	}
}

// FieldKind is the static type of a field or value.
type FieldKind uint8

const (
	FInt FieldKind = iota
	FDouble
	FBool
	FString
	FRef
)

func (k FieldKind) String() string {
	switch k {
	case FInt:
		return "int"
	case FDouble:
		return "double"
	case FBool:
		return "boolean"
	case FString:
		return "String"
	case FRef:
		return "ref"
	default:
		return fmt.Sprintf("FieldKind(%d)", uint8(k))
	}
}

// Field describes one declared field of a class.
type Field struct {
	Name string
	Kind FieldKind
	// Class is the static type of the field when Kind == FRef. It may
	// be nil for untyped references (java.lang.Object-like fields).
	Class *Class
}

// Class is a runtime class descriptor. The wire protocol identifies a
// class by its ID; the baseline "class"-mode serializers send the ID for
// every transferred object, which is exactly the per-object type
// information the call-site-specific optimization removes.
type Class struct {
	ID    int32
	Name  string
	Kind  ClassKind
	Super *Class
	// Fields are the fields declared by this class itself (not the
	// inherited ones); use AllFields for the full flattened layout.
	Fields []Field
	// Elem is the element class for KRefArray classes.
	Elem *Class

	all []Field // cached flattened layout, super fields first
}

// AllFields returns the flattened field layout: inherited fields first,
// then this class's own fields, mirroring a Java object layout.
func (c *Class) AllFields() []Field {
	if c.all != nil {
		return c.all
	}
	var all []Field
	if c.Super != nil {
		all = append(all, c.Super.AllFields()...)
	}
	all = append(all, c.Fields...)
	if all == nil {
		all = []Field{}
	}
	c.all = all
	return all
}

// FieldIndex returns the index of the named field in the flattened
// layout, or -1 if the class has no such field.
func (c *Class) FieldIndex(name string) int {
	for i, f := range c.AllFields() {
		if f.Name == name {
			return i
		}
	}
	return -1
}

// IsArray reports whether the class describes an array layout.
func (c *Class) IsArray() bool { return c.Kind != KObject }

// IsSubclassOf reports whether c is t or a (transitive) subclass of t.
func (c *Class) IsSubclassOf(t *Class) bool {
	for x := c; x != nil; x = x.Super {
		if x == t {
			return true
		}
	}
	return false
}

func (c *Class) String() string {
	if c == nil {
		return "<nil class>"
	}
	return c.Name
}
