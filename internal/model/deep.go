package model

// DeepClone returns a structure-preserving deep copy of the object
// graph rooted at o: shared subobjects stay shared, cycles stay cycles.
// The RMI runtime uses it to implement the paper's local-call
// semantics: "if the remote object is located on the same machine, the
// parameter and return value objects are cloned" so that parameter
// passing semantics do not depend on object placement.
//
// allocated, if non-nil, is invoked once per object created.
func DeepClone(o *Object, allocated func(*Object)) *Object {
	if o == nil {
		return nil
	}
	seen := make(map[*Object]*Object)
	return deepClone(o, seen, allocated)
}

func deepClone(o *Object, seen map[*Object]*Object, allocated func(*Object)) *Object {
	if o == nil {
		return nil
	}
	if c, ok := seen[o]; ok {
		return c
	}
	var c *Object
	switch o.Class.Kind {
	case KObject:
		c = &Object{Class: o.Class, Fields: make([]Value, len(o.Fields))}
		seen[o] = c
		copy(c.Fields, o.Fields)
		for i := range c.Fields {
			if c.Fields[i].Kind == FRef && c.Fields[i].O != nil {
				c.Fields[i].O = deepClone(c.Fields[i].O, seen, allocated)
			}
		}
	case KDoubleArray:
		c = &Object{Class: o.Class, Doubles: append([]float64(nil), o.Doubles...)}
		seen[o] = c
	case KIntArray:
		c = &Object{Class: o.Class, Ints: append([]int64(nil), o.Ints...)}
		seen[o] = c
	case KByteArray:
		c = &Object{Class: o.Class, Bytes: append([]byte(nil), o.Bytes...)}
		seen[o] = c
	case KRefArray:
		c = &Object{Class: o.Class, Refs: make([]*Object, len(o.Refs))}
		seen[o] = c
		for i, e := range o.Refs {
			c.Refs[i] = deepClone(e, seen, allocated)
		}
	}
	if allocated != nil {
		allocated(c)
	}
	return c
}

// CloneValue deep-clones reference values and passes primitives and
// strings through unchanged.
func CloneValue(v Value, allocated func(*Object)) Value {
	if v.Kind == FRef && v.O != nil {
		v.O = DeepClone(v.O, allocated)
	}
	return v
}

// CloneValues deep-clones a value slice with a single shared seen-map,
// so aliasing between arguments is preserved (the paper's Figure 8
// case: the same object passed twice must arrive as one shared copy).
func CloneValues(vs []Value, allocated func(*Object)) []Value {
	out := make([]Value, len(vs))
	seen := make(map[*Object]*Object)
	for i, v := range vs {
		if v.Kind == FRef && v.O != nil {
			v.O = deepClone(v.O, seen, allocated)
		}
		out[i] = v
	}
	return out
}

// DeepEqual reports structural equality of two object graphs. Cyclic
// and shared structure is compared by correspondence: the i-th distinct
// object encountered on one side must pair with the i-th on the other.
func DeepEqual(a, b *Object) bool {
	return deepEqual(a, b, make(map[*Object]*Object))
}

func deepEqual(a, b *Object, pairs map[*Object]*Object) bool {
	if a == nil || b == nil {
		return a == b
	}
	if p, ok := pairs[a]; ok {
		return p == b
	}
	if a.Class.Name != b.Class.Name {
		return false
	}
	pairs[a] = b
	switch a.Class.Kind {
	case KObject:
		if len(a.Fields) != len(b.Fields) {
			return false
		}
		for i := range a.Fields {
			if !deepEqualValue(a.Fields[i], b.Fields[i], pairs) {
				return false
			}
		}
	case KDoubleArray:
		if len(a.Doubles) != len(b.Doubles) {
			return false
		}
		for i := range a.Doubles {
			if a.Doubles[i] != b.Doubles[i] {
				return false
			}
		}
	case KIntArray:
		if len(a.Ints) != len(b.Ints) {
			return false
		}
		for i := range a.Ints {
			if a.Ints[i] != b.Ints[i] {
				return false
			}
		}
	case KByteArray:
		if len(a.Bytes) != len(b.Bytes) {
			return false
		}
		for i := range a.Bytes {
			if a.Bytes[i] != b.Bytes[i] {
				return false
			}
		}
	case KRefArray:
		if len(a.Refs) != len(b.Refs) {
			return false
		}
		for i := range a.Refs {
			if !deepEqual(a.Refs[i], b.Refs[i], pairs) {
				return false
			}
		}
	}
	return true
}

func deepEqualValue(a, b Value, pairs map[*Object]*Object) bool {
	if a.Kind != b.Kind {
		return false
	}
	if a.Kind == FRef {
		return deepEqual(a.O, b.O, pairs)
	}
	return a.Equal(b)
}

// DeepEqualValue is DeepEqual lifted to values.
func DeepEqualValue(a, b Value) bool {
	return deepEqualValue(a, b, make(map[*Object]*Object))
}

// GraphSize returns the number of distinct objects reachable from o
// (including o itself), and their total SizeBytes.
func GraphSize(o *Object) (objects int, bytes int64) {
	seen := make(map[*Object]bool)
	var walk func(*Object)
	walk = func(x *Object) {
		if x == nil || seen[x] {
			return
		}
		seen[x] = true
		objects++
		bytes += x.SizeBytes()
		switch x.Class.Kind {
		case KObject:
			for _, f := range x.Fields {
				if f.Kind == FRef {
					walk(f.O)
				}
			}
		case KRefArray:
			for _, e := range x.Refs {
				walk(e)
			}
		}
	}
	walk(o)
	return objects, bytes
}

// HasCycle reports whether the object graph rooted at o contains a
// reference cycle (used by tests to validate the static cycle analysis:
// if the compiler says "acyclic", the runtime graph must have no
// cycle).
func HasCycle(o *Object) bool {
	const (
		white = 0
		grey  = 1
		black = 2
	)
	color := make(map[*Object]int)
	var visit func(*Object) bool
	visit = func(x *Object) bool {
		if x == nil {
			return false
		}
		switch color[x] {
		case grey:
			return true
		case black:
			return false
		}
		color[x] = grey
		switch x.Class.Kind {
		case KObject:
			for _, f := range x.Fields {
				if f.Kind == FRef && visit(f.O) {
					return true
				}
			}
		case KRefArray:
			for _, e := range x.Refs {
				if visit(e) {
					return true
				}
			}
		}
		color[x] = black
		return false
	}
	return visit(o)
}
