package model

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// graphWorld builds a registry with classes rich enough to generate
// arbitrary object graphs: a node with two ref fields, every primitive
// field kind, and arrays.
type graphWorld struct {
	reg  *Registry
	node *Class
}

func newGraphWorld() *graphWorld {
	reg := NewRegistry()
	node := &Class{Name: "GNode", Kind: KObject}
	node.Fields = []Field{
		{Name: "i", Kind: FInt},
		{Name: "d", Kind: FDouble},
		{Name: "b", Kind: FBool},
		{Name: "s", Kind: FString},
		{Name: "l", Kind: FRef, Class: node},
		{Name: "r", Kind: FRef, Class: node},
	}
	reg.mustDefine(node)
	return &graphWorld{reg: reg, node: node}
}

// randomGraph builds a graph of n nodes with random primitive payloads
// and random l/r edges (including back edges: cycles and sharing).
func (w *graphWorld) randomGraph(rng *rand.Rand, n int) *Object {
	if n <= 0 {
		return nil
	}
	nodes := make([]*Object, n)
	for i := range nodes {
		o := New(w.node)
		o.Set("i", Int(rng.Int63n(1000)))
		o.Set("d", Double(rng.Float64()))
		o.Set("b", Bool(rng.Intn(2) == 0))
		o.Set("s", Str(string(rune('a'+rng.Intn(26)))))
		nodes[i] = o
	}
	for i, o := range nodes {
		// Edges to any node (earlier ones create sharing/cycles).
		if rng.Intn(4) != 0 {
			o.Set("l", Ref(nodes[rng.Intn(n)]))
		}
		if rng.Intn(4) != 0 {
			o.Set("r", Ref(nodes[rng.Intn(n)]))
		}
		_ = i
	}
	return nodes[0]
}

func TestDeepClonePropertyRandomGraphs(t *testing.T) {
	w := newGraphWorld()
	f := func(seed int64, size uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(size%30) + 1
		g := w.randomGraph(rng, n)
		c := DeepClone(g, nil)
		if !DeepEqual(g, c) {
			return false
		}
		// Structure is preserved: same reachable size, same cyclicity.
		gn, gb := GraphSize(g)
		cn, cb := GraphSize(c)
		if gn != cn || gb != cb {
			return false
		}
		if HasCycle(g) != HasCycle(c) {
			return false
		}
		// Disjointness: mutating the clone leaves the original alone.
		c.Set("i", Int(-999))
		return g.Get("i").I != -999
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestDeepEqualIsEquivalenceOnRandomGraphs(t *testing.T) {
	w := newGraphWorld()
	f := func(seed int64, size uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		n := int(size%20) + 1
		g := w.randomGraph(rng, n)
		// Reflexive and symmetric with a clone.
		c := DeepClone(g, nil)
		return DeepEqual(g, g) && DeepEqual(g, c) && DeepEqual(c, g)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestCloneValuePassthrough(t *testing.T) {
	if CloneValue(Int(5), nil).I != 5 {
		t.Fatal("primitive clone")
	}
	if !CloneValue(Null(), nil).IsNull() {
		t.Fatal("null clone")
	}
	w := newGraphWorld()
	o := New(w.node)
	var count int
	v := CloneValue(Ref(o), func(*Object) { count++ })
	if v.O == o || count != 1 {
		t.Fatal("ref clone")
	}
}

func TestStringRenderings(t *testing.T) {
	w := newGraphWorld()
	o := New(w.node)
	o.Set("i", Int(7))
	s := o.String()
	if s == "" || s == "null" {
		t.Fatalf("Object.String = %q", s)
	}
	var nilObj *Object
	if nilObj.String() != "null" {
		t.Fatal("nil object string")
	}
	if Int(3).String() != "3" || Str("x").String() != `"x"` ||
		Bool(true).String() != "true" || Null().String() != "null" {
		t.Fatal("value strings")
	}
	if Double(2.5).String() != "2.5" {
		t.Fatalf("double string %s", Double(2.5).String())
	}
	if Ref(o).String() == "" {
		t.Fatal("ref string")
	}
	for _, k := range []ClassKind{KObject, KDoubleArray, KIntArray, KByteArray, KRefArray, ClassKind(99)} {
		if k.String() == "" {
			t.Fatalf("ClassKind(%d) has no name", k)
		}
	}
	for _, k := range []FieldKind{FInt, FDouble, FBool, FString, FRef, FieldKind(99)} {
		if k.String() == "" {
			t.Fatalf("FieldKind(%d) has no name", k)
		}
	}
	var nilClass *Class
	if nilClass.String() != "<nil class>" {
		t.Fatal("nil class string")
	}
}

func TestArrayGraphOps(t *testing.T) {
	reg := NewRegistry()
	leaf := reg.MustDefine("Leaf", nil, Field{Name: "x", Kind: FInt})
	arr := NewArray(reg.ArrayOf(leaf), 3)
	shared := New(leaf)
	arr.Refs[0] = shared
	arr.Refs[1] = shared
	c := DeepClone(arr, nil)
	if c.Refs[0] != c.Refs[1] || c.Refs[0] == shared {
		t.Fatal("array sharing clone")
	}
	if !DeepEqual(arr, c) {
		t.Fatal("array DeepEqual")
	}
	if HasCycle(arr) {
		t.Fatal("array misflagged cyclic")
	}
	// Array containing itself is a cycle.
	selfArr := NewArray(reg.ArrayOf(leaf), 1)
	outer := NewArray(reg.ArrayOf(reg.ArrayOf(leaf)), 1)
	_ = selfArr
	outer2 := NewArray(outer.Class, 1)
	outer2.Refs[0] = outer2
	if !HasCycle(outer2) {
		t.Fatal("self-containing array not cyclic")
	}
	n, _ := GraphSize(arr)
	if n != 2 { // array + shared leaf (nil slot ignored)
		t.Fatalf("GraphSize = %d", n)
	}

	// Primitive arrays: clones copy payloads.
	ia := NewArray(reg.IntArray(), 2)
	ia.Ints[1] = 9
	ba := NewArray(reg.ByteArray(), 2)
	ba.Bytes[0] = 0xFF
	ci := DeepClone(ia, nil)
	cb := DeepClone(ba, nil)
	ci.Ints[1] = 0
	cb.Bytes[0] = 0
	if ia.Ints[1] != 9 || ba.Bytes[0] != 0xFF {
		t.Fatal("primitive array clone aliases")
	}
	if !DeepEqual(ia, DeepClone(ia, nil)) || !DeepEqual(ba, DeepClone(ba, nil)) {
		t.Fatal("primitive array DeepEqual")
	}
	if DeepEqual(ia, NewArray(reg.IntArray(), 3)) {
		t.Fatal("length mismatch equal")
	}
}

func TestNewArrayPanicsOnObjectClass(t *testing.T) {
	reg := NewRegistry()
	leaf := reg.MustDefine("Leaf", nil)
	defer func() {
		if recover() == nil {
			t.Fatal("NewArray on object class should panic")
		}
	}()
	NewArray(leaf, 3)
}

func TestGetSetUnknownFieldPanics(t *testing.T) {
	reg := NewRegistry()
	leaf := reg.MustDefine("Leaf", nil, Field{Name: "x", Kind: FInt})
	o := New(leaf)
	for _, f := range []func(){
		func() { o.Get("nope") },
		func() { o.Set("nope", Int(1)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("unknown field access should panic")
				}
			}()
			f()
		}()
	}
}
