package model

import (
	"testing"
)

func newTestRegistry(t testing.TB) (*Registry, *Class, *Class) {
	t.Helper()
	reg := NewRegistry()
	bar := reg.MustDefine("Bar", nil, Field{Name: "x", Kind: FInt})
	foo := reg.MustDefine("Foo", nil,
		Field{Name: "bar", Kind: FRef, Class: bar},
		Field{Name: "d", Kind: FDouble},
		Field{Name: "name", Kind: FString},
	)
	return reg, foo, bar
}

func TestRegistryDefineAndLookup(t *testing.T) {
	reg, foo, bar := newTestRegistry(t)
	if c, ok := reg.ByName("Foo"); !ok || c != foo {
		t.Fatalf("ByName(Foo) = %v, %v", c, ok)
	}
	if c, ok := reg.ByID(foo.ID); !ok || c != foo {
		t.Fatalf("ByID(%d) = %v, %v", foo.ID, c, ok)
	}
	if foo.ID == bar.ID {
		t.Fatalf("classes share ID %d", foo.ID)
	}
	if _, err := reg.Define("Foo", nil); err == nil {
		t.Fatal("duplicate Define(Foo) should fail")
	}
}

func TestRegistryBuiltinsAndArrayOf(t *testing.T) {
	reg := NewRegistry()
	da := reg.DoubleArray()
	if da.Kind != KDoubleArray {
		t.Fatalf("double[] kind = %v", da.Kind)
	}
	dda := reg.ArrayOf(da)
	if dda.Name != "double[][]" || dda.Kind != KRefArray || dda.Elem != da {
		t.Fatalf("ArrayOf(double[]) = %+v", dda)
	}
	if again := reg.ArrayOf(da); again != dda {
		t.Fatal("ArrayOf not idempotent")
	}
	if reg.IntArray().Kind != KIntArray || reg.ByteArray().Kind != KByteArray {
		t.Fatal("builtin array kinds wrong")
	}
}

func TestClassInheritanceLayout(t *testing.T) {
	reg := NewRegistry()
	base := reg.MustDefine("Base", nil, Field{Name: "a", Kind: FInt})
	der := reg.MustDefine("Derived", base, Field{Name: "b", Kind: FDouble})
	all := der.AllFields()
	if len(all) != 2 || all[0].Name != "a" || all[1].Name != "b" {
		t.Fatalf("flattened layout = %v", all)
	}
	if der.FieldIndex("a") != 0 || der.FieldIndex("b") != 1 || der.FieldIndex("zz") != -1 {
		t.Fatal("FieldIndex wrong")
	}
	if !der.IsSubclassOf(base) || base.IsSubclassOf(der) {
		t.Fatal("IsSubclassOf wrong")
	}
	o := New(der)
	if len(o.Fields) != 2 || o.Fields[0].Kind != FInt || o.Fields[1].Kind != FDouble {
		t.Fatalf("zeroed instance = %v", o)
	}
}

func TestObjectGetSet(t *testing.T) {
	_, foo, bar := newTestRegistry(t)
	o := New(foo)
	b := New(bar)
	b.Set("x", Int(7))
	o.Set("bar", Ref(b))
	o.Set("d", Double(3.5))
	o.Set("name", Str("hi"))
	if o.GetRef("bar") != b || o.Get("d").D != 3.5 || o.Get("name").S != "hi" {
		t.Fatalf("round trip failed: %v", o)
	}
	if b.Get("x").I != 7 {
		t.Fatal("int field lost")
	}
}

func TestArrays(t *testing.T) {
	reg := NewRegistry()
	da := NewArray(reg.DoubleArray(), 4)
	da.Doubles[3] = 9.25
	if da.Len() != 4 {
		t.Fatalf("Len = %d", da.Len())
	}
	dda := NewArray(reg.ArrayOf(reg.DoubleArray()), 2)
	dda.Refs[0] = da
	if dda.Refs[0].Doubles[3] != 9.25 {
		t.Fatal("nested array access failed")
	}
	ia := NewArray(reg.IntArray(), 3)
	ba := NewArray(reg.ByteArray(), 5)
	if ia.SizeBytes() != 16+24 || ba.SizeBytes() != 16+5 {
		t.Fatalf("SizeBytes: %d %d", ia.SizeBytes(), ba.SizeBytes())
	}
}

func TestValues(t *testing.T) {
	if !Bool(true).AsBool() || Bool(false).AsBool() {
		t.Fatal("bool round trip")
	}
	if !Null().IsNull() {
		t.Fatal("Null not null")
	}
	if Int(3).Equal(Int(4)) || !Int(3).Equal(Int(3)) {
		t.Fatal("int Equal")
	}
	if Int(3).Equal(Double(3)) {
		t.Fatal("kind mismatch should be unequal")
	}
	if ZeroOf(FString).S != "" || ZeroOf(FRef).O != nil {
		t.Fatal("ZeroOf")
	}
}

func buildList(reg *Registry, n int) *Object {
	node := reg.MustByName("Node")
	var head *Object
	for i := 0; i < n; i++ {
		x := New(node)
		x.Set("v", Int(int64(i)))
		x.Set("next", Ref(head))
		head = x
	}
	return head
}

func listRegistry() *Registry {
	reg := NewRegistry()
	node := &Class{Name: "Node", Kind: KObject}
	node.Fields = []Field{
		{Name: "v", Kind: FInt},
		{Name: "next", Kind: FRef, Class: node},
	}
	reg.mustDefine(node)
	return reg
}

func TestDeepCloneList(t *testing.T) {
	reg := listRegistry()
	head := buildList(reg, 50)
	var count int
	c := DeepClone(head, func(*Object) { count++ })
	if count != 50 {
		t.Fatalf("allocated %d objects, want 50", count)
	}
	if !DeepEqual(head, c) {
		t.Fatal("clone not deep-equal")
	}
	// Mutation of the clone must not leak back.
	c.Set("v", Int(-1))
	if head.Get("v").I == -1 {
		t.Fatal("clone aliases original")
	}
}

func TestDeepCloneSharingAndCycles(t *testing.T) {
	reg := listRegistry()
	node := reg.MustByName("Node")
	a := New(node)
	b := New(node)
	a.Set("next", Ref(b))
	b.Set("next", Ref(a)) // cycle
	c := DeepClone(a, nil)
	if c.GetRef("next").GetRef("next") != c {
		t.Fatal("cycle not preserved in clone")
	}
	if !HasCycle(c) || !HasCycle(a) {
		t.Fatal("HasCycle missed cycle")
	}

	// Shared diamond: two fields pointing to the same object must stay
	// shared after cloning.
	reg2 := NewRegistry()
	leaf := reg2.MustDefine("Leaf", nil, Field{Name: "x", Kind: FInt})
	pair := reg2.MustDefine("Pair", nil,
		Field{Name: "l", Kind: FRef, Class: leaf},
		Field{Name: "r", Kind: FRef, Class: leaf},
	)
	shared := New(leaf)
	p := New(pair)
	p.Set("l", Ref(shared))
	p.Set("r", Ref(shared))
	pc := DeepClone(p, nil)
	if pc.GetRef("l") != pc.GetRef("r") {
		t.Fatal("sharing lost in clone")
	}
	if HasCycle(p) {
		t.Fatal("diamond is not a cycle")
	}
}

func TestCloneValuesPreservesAliasingAcrossArgs(t *testing.T) {
	reg := listRegistry()
	node := reg.MustByName("Node")
	b := New(node)
	vs := CloneValues([]Value{Ref(b), Ref(b), Int(5)}, nil)
	if vs[0].O != vs[1].O {
		t.Fatal("aliasing across arguments lost (Figure 8 semantics)")
	}
	if vs[0].O == b {
		t.Fatal("arguments were not cloned")
	}
	if vs[2].I != 5 {
		t.Fatal("primitive arg corrupted")
	}
}

func TestDeepEqualDistinguishes(t *testing.T) {
	reg := listRegistry()
	a := buildList(reg, 5)
	b := buildList(reg, 5)
	if !DeepEqual(a, b) {
		t.Fatal("equal lists not DeepEqual")
	}
	b.Set("v", Int(99))
	if DeepEqual(a, b) {
		t.Fatal("different lists DeepEqual")
	}
	c := buildList(reg, 6)
	if DeepEqual(a, c) {
		t.Fatal("different lengths DeepEqual")
	}
	// Cyclic vs acyclic with same local shape.
	node := reg.MustByName("Node")
	x := New(node)
	x.Set("next", Ref(x))
	y := New(node)
	z := New(node)
	y.Set("next", Ref(z))
	if DeepEqual(x, y) {
		t.Fatal("cycle vs chain DeepEqual")
	}
	x2 := New(node)
	x2.Set("next", Ref(x2))
	if !DeepEqual(x, x2) {
		t.Fatal("isomorphic cycles not DeepEqual")
	}
}

func TestGraphSize(t *testing.T) {
	reg := listRegistry()
	head := buildList(reg, 10)
	n, bytes := GraphSize(head)
	if n != 10 {
		t.Fatalf("GraphSize objects = %d", n)
	}
	if want := int64(10 * (16 + 16)); bytes != want {
		t.Fatalf("GraphSize bytes = %d, want %d", bytes, want)
	}
	// Shared nodes counted once.
	node := reg.MustByName("Node")
	a := New(node)
	a.Set("next", Ref(a))
	if n, _ := GraphSize(a); n != 1 {
		t.Fatalf("self-loop GraphSize = %d", n)
	}
}

func TestNewPanicsOnWrongKind(t *testing.T) {
	reg := NewRegistry()
	defer func() {
		if recover() == nil {
			t.Fatal("New on array class should panic")
		}
	}()
	New(reg.DoubleArray())
}
