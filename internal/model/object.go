package model

import (
	"fmt"
	"strings"
)

// Object is a heap object with identity semantics (compared by
// pointer). Exactly one payload is populated, selected by Class.Kind.
type Object struct {
	Class   *Class
	Fields  []Value   // KObject: one slot per flattened field
	Doubles []float64 // KDoubleArray
	Ints    []int64   // KIntArray
	Bytes   []byte    // KByteArray
	Refs    []*Object // KRefArray
}

// New allocates a zeroed instance of a KObject class.
func New(c *Class) *Object {
	if c.Kind != KObject {
		panic("model.New: " + c.Name + " is not an object class")
	}
	fields := c.AllFields()
	o := &Object{Class: c, Fields: make([]Value, len(fields))}
	for i, f := range fields {
		o.Fields[i] = ZeroOf(f.Kind)
	}
	return o
}

// NewArray allocates an array object of length n for an array class.
func NewArray(c *Class, n int) *Object {
	o := &Object{Class: c}
	switch c.Kind {
	case KDoubleArray:
		o.Doubles = make([]float64, n)
	case KIntArray:
		o.Ints = make([]int64, n)
	case KByteArray:
		o.Bytes = make([]byte, n)
	case KRefArray:
		o.Refs = make([]*Object, n)
	default:
		panic("model.NewArray: " + c.Name + " is not an array class")
	}
	return o
}

// Len returns the array length, or the field count for plain objects.
func (o *Object) Len() int {
	switch o.Class.Kind {
	case KDoubleArray:
		return len(o.Doubles)
	case KIntArray:
		return len(o.Ints)
	case KByteArray:
		return len(o.Bytes)
	case KRefArray:
		return len(o.Refs)
	default:
		return len(o.Fields)
	}
}

// SizeBytes estimates the heap footprint of this single object (header
// plus payload), used for the "new (MBytes)" statistics of Tables 4, 6
// and 8.
func (o *Object) SizeBytes() int64 {
	const header = 16
	switch o.Class.Kind {
	case KDoubleArray:
		return header + int64(8*len(o.Doubles))
	case KIntArray:
		return header + int64(8*len(o.Ints))
	case KByteArray:
		return header + int64(len(o.Bytes))
	case KRefArray:
		return header + int64(8*len(o.Refs))
	default:
		n := header + int64(8*len(o.Fields))
		for i := range o.Fields {
			if o.Fields[i].Kind == FString {
				n += int64(len(o.Fields[i].S))
			}
		}
		return n
	}
}

// Get returns the value of the named field.
func (o *Object) Get(name string) Value {
	i := o.Class.FieldIndex(name)
	if i < 0 {
		panic(fmt.Sprintf("model: class %s has no field %q", o.Class.Name, name))
	}
	return o.Fields[i]
}

// Set assigns the named field.
func (o *Object) Set(name string, v Value) {
	i := o.Class.FieldIndex(name)
	if i < 0 {
		panic(fmt.Sprintf("model: class %s has no field %q", o.Class.Name, name))
	}
	o.Fields[i] = v
}

// GetRef returns the named reference field's target (may be nil).
func (o *Object) GetRef(name string) *Object { return o.Get(name).O }

// String renders a shallow, single-line description of the object.
func (o *Object) String() string {
	if o == nil {
		return "null"
	}
	var b strings.Builder
	b.WriteString(o.Class.Name)
	switch o.Class.Kind {
	case KObject:
		b.WriteByte('{')
		for i, f := range o.Class.AllFields() {
			if i > 0 {
				b.WriteString(", ")
			}
			fmt.Fprintf(&b, "%s=%s", f.Name, o.Fields[i])
		}
		b.WriteByte('}')
	default:
		fmt.Fprintf(&b, "[len=%d]", o.Len())
	}
	return b.String()
}
