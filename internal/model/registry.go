package model

import (
	"fmt"
	"sort"
	"sync"
)

// Registry assigns wire IDs to classes and resolves them during
// deserialization. Both sides of an RMI connection must register the
// same classes in the same order (the paper's compiler guarantees this
// by construction; our runtime checks names on lookup).
type Registry struct {
	mu     sync.RWMutex
	byID   map[int32]*Class
	byName map[string]*Class
	next   int32
}

// NewRegistry returns an empty registry with the built-in array classes
// for double[], int[] and byte[] pre-registered.
func NewRegistry() *Registry {
	r := &Registry{
		byID:   make(map[int32]*Class),
		byName: make(map[string]*Class),
		next:   1,
	}
	r.mustDefine(&Class{Name: "double[]", Kind: KDoubleArray})
	r.mustDefine(&Class{Name: "int[]", Kind: KIntArray})
	r.mustDefine(&Class{Name: "byte[]", Kind: KByteArray})
	return r
}

func (r *Registry) mustDefine(c *Class) *Class {
	c2, err := r.add(c)
	if err != nil {
		panic(err)
	}
	return c2
}

func (r *Registry) add(c *Class) (*Class, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.byName[c.Name]; ok {
		return nil, fmt.Errorf("model: class %q already registered", c.Name)
	}
	c.ID = r.next
	r.next++
	r.byID[c.ID] = c
	r.byName[c.Name] = c
	return c, nil
}

// Define registers a new object class.
func (r *Registry) Define(name string, super *Class, fields ...Field) (*Class, error) {
	return r.add(&Class{Name: name, Kind: KObject, Super: super, Fields: fields})
}

// MustDefine is Define but panics on duplicate registration; intended
// for program start-up.
func (r *Registry) MustDefine(name string, super *Class, fields ...Field) *Class {
	c, err := r.Define(name, super, fields...)
	if err != nil {
		panic(err)
	}
	return c
}

// DoubleArray returns the built-in double[] class.
func (r *Registry) DoubleArray() *Class { return r.MustByName("double[]") }

// IntArray returns the built-in int[] class.
func (r *Registry) IntArray() *Class { return r.MustByName("int[]") }

// ByteArray returns the built-in byte[] class.
func (r *Registry) ByteArray() *Class { return r.MustByName("byte[]") }

// ArrayOf returns (registering on first use) the reference-array class
// whose elements are elem, e.g. ArrayOf(double[]) is double[][].
func (r *Registry) ArrayOf(elem *Class) *Class {
	name := elem.Name + "[]"
	r.mu.RLock()
	c, ok := r.byName[name]
	r.mu.RUnlock()
	if ok {
		return c
	}
	c, err := r.add(&Class{Name: name, Kind: KRefArray, Elem: elem})
	if err != nil {
		// Lost a race: someone else registered it between the RLock
		// and the add; fetch theirs.
		return r.MustByName(name)
	}
	return c
}

// ByID resolves a wire class ID.
func (r *Registry) ByID(id int32) (*Class, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	c, ok := r.byID[id]
	return c, ok
}

// ByName resolves a class name.
func (r *Registry) ByName(name string) (*Class, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	c, ok := r.byName[name]
	return c, ok
}

// MustByName resolves a class name and panics if it is unknown.
func (r *Registry) MustByName(name string) *Class {
	c, ok := r.ByName(name)
	if !ok {
		panic("model: unknown class " + name)
	}
	return c
}

// Names returns all registered class names, sorted.
func (r *Registry) Names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	names := make([]string, 0, len(r.byName))
	for n := range r.byName {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
