package model

import (
	"fmt"
	"strconv"
)

// Value is a tagged runtime value: a primitive, a string, or an object
// reference (possibly null). Values are passed as RMI arguments and
// returned as RMI results.
type Value struct {
	Kind FieldKind
	I    int64
	D    float64
	S    string
	O    *Object // nil means null for Kind == FRef
}

// Int returns an int value.
func Int(i int64) Value { return Value{Kind: FInt, I: i} }

// Double returns a double value.
func Double(d float64) Value { return Value{Kind: FDouble, D: d} }

// Bool returns a boolean value.
func Bool(b bool) Value {
	v := Value{Kind: FBool}
	if b {
		v.I = 1
	}
	return v
}

// Str returns a String value.
func Str(s string) Value { return Value{Kind: FString, S: s} }

// Ref returns an object reference value; Ref(nil) is null.
func Ref(o *Object) Value { return Value{Kind: FRef, O: o} }

// Null is the null reference.
func Null() Value { return Value{Kind: FRef} }

// AsBool interprets the value as a boolean.
func (v Value) AsBool() bool { return v.I != 0 }

// IsNull reports whether the value is a null reference.
func (v Value) IsNull() bool { return v.Kind == FRef && v.O == nil }

// ZeroOf returns the zero value for a field kind (0, 0.0, false, "",
// null).
func ZeroOf(k FieldKind) Value {
	return Value{Kind: k}
}

func (v Value) String() string {
	switch v.Kind {
	case FInt:
		return strconv.FormatInt(v.I, 10)
	case FDouble:
		return strconv.FormatFloat(v.D, 'g', -1, 64)
	case FBool:
		return strconv.FormatBool(v.I != 0)
	case FString:
		return strconv.Quote(v.S)
	case FRef:
		if v.O == nil {
			return "null"
		}
		return fmt.Sprintf("%s@%p", v.O.Class.Name, v.O)
	default:
		return "<invalid>"
	}
}

// Equal reports shallow equality: primitives by value, references by
// identity. Use DeepEqual for structural comparison of object graphs.
func (v Value) Equal(w Value) bool {
	if v.Kind != w.Kind {
		return false
	}
	switch v.Kind {
	case FInt, FBool:
		return v.I == w.I
	case FDouble:
		return v.D == w.D
	case FString:
		return v.S == w.S
	case FRef:
		return v.O == w.O
	}
	return false
}
