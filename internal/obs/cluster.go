package obs

// Cluster-wide tail-latency aggregation (DESIGN.md §14).
//
// Every obs server exposes its node's attribution state at /snapshot —
// a versioned, self-contained document whose log2 histograms merge
// exactly. /cluster is the fold: it pulls peer snapshots (the
// configured Options.Peers, or a ?peers=a,b,c override), merges them
// with trace.MergeAttributions, and serves the derived per-site
// quantiles and blame table. Any node can aggregate; there is no
// coordinator role, only the pull.

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"time"

	"cormi/internal/trace"
)

// SnapshotVersion is the /snapshot document version. A collector must
// reject snapshots with a different version rather than merge
// incompatible histograms.
const SnapshotVersion = 1

// NodeSnapshot is one node's attribution state: the /snapshot wire
// document.
type NodeSnapshot struct {
	Version        int                     `json:"version"`
	Node           string                  `json:"node"`
	CapturedWallNS int64                   `json:"captured_wall_ns"`
	Sites          []trace.SiteAttribution `json:"sites"`
}

// ClusterSite is one site's cluster-wide row: merged call count,
// latency quantiles from the merged histogram, and the blame table
// with its dominant phase. This is what rmitop renders.
type ClusterSite struct {
	Site          string             `json:"site"`
	Calls         uint64             `json:"calls"`
	MeanNS        float64            `json:"mean_ns"`
	P50NS         int64              `json:"p50_ns"`
	P95NS         int64              `json:"p95_ns"`
	P99NS         int64              `json:"p99_ns"`
	TopBlame      string             `json:"top_blame,omitempty"`
	TopBlameShare float64            `json:"top_blame_share,omitempty"`
	Blame         []trace.BlamePhase `json:"blame,omitempty"`
	Exemplars     int64              `json:"exemplars"`
}

// ClusterView is the /cluster document: the merged view over the local
// node and every reachable peer. Unreachable or version-skewed peers
// are reported in Errors and excluded from the merge rather than
// failing the whole view.
type ClusterView struct {
	Version        int           `json:"version"`
	CapturedWallNS int64         `json:"captured_wall_ns"`
	Nodes          []string      `json:"nodes"`
	Errors         []string      `json:"errors,omitempty"`
	Sites          []ClusterSite `json:"sites"`
}

// localSnapshot builds this node's /snapshot document. Nil-tracer safe:
// a metrics-only node contributes its name and no sites.
func localSnapshot(opts Options) NodeSnapshot {
	node := opts.NodeName
	if node == "" {
		node = "local"
	}
	sites := opts.Tracer.Attribution()
	if sites == nil {
		sites = []trace.SiteAttribution{}
	}
	return NodeSnapshot{
		Version:        SnapshotVersion,
		Node:           node,
		CapturedWallNS: trace.Now(),
		Sites:          sites,
	}
}

// peerSnapshotURL accepts "host:port" or a full URL and returns the
// peer's /snapshot endpoint.
func peerSnapshotURL(peer string) string {
	if !strings.Contains(peer, "://") {
		peer = "http://" + peer
	}
	return strings.TrimRight(peer, "/") + "/snapshot"
}

// fetchSnapshot pulls and decodes one peer's /snapshot.
func fetchSnapshot(client *http.Client, peer string) (NodeSnapshot, error) {
	var ns NodeSnapshot
	resp, err := client.Get(peerSnapshotURL(peer))
	if err != nil {
		return ns, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return ns, fmt.Errorf("status %d", resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(&ns); err != nil {
		return ns, fmt.Errorf("decode snapshot: %w", err)
	}
	if ns.Version != SnapshotVersion {
		return ns, fmt.Errorf("snapshot version %d, want %d", ns.Version, SnapshotVersion)
	}
	return ns, nil
}

// peerFetchLimit bounds the concurrent peer fetches one aggregation
// request fans out (both /cluster and /traces/<id> merges): enough to
// hide per-peer latency on realistic cluster sizes, bounded so a
// request listing hundreds of peers cannot stampede the network.
const peerFetchLimit = 8

// forEachPeer runs fetch(i, peer) for every peer concurrently, at most
// peerFetchLimit in flight, and returns when all are done. Results are
// slotted by index, so callers keep deterministic peer ordering.
func forEachPeer(peers []string, fetch func(i int, peer string)) {
	sem := make(chan struct{}, peerFetchLimit)
	var wg sync.WaitGroup
	for i, p := range peers {
		wg.Add(1)
		sem <- struct{}{}
		go func(i int, p string) {
			defer wg.Done()
			defer func() { <-sem }()
			fetch(i, p)
		}(i, p)
	}
	wg.Wait()
}

// buildClusterView merges the local snapshot with every peer's. Peers
// must not include the serving node itself (its state is the local
// contribution; listing it would double-count). Peers are fetched
// concurrently (bounded by peerFetchLimit) — one slow or dead peer
// costs its own timeout, not the sum of everyone's — while the
// document keeps the deterministic request order: nodes and errors
// appear in the order the peers were listed.
func buildClusterView(opts Options, peers []string) ClusterView {
	local := localSnapshot(opts)
	v := ClusterView{
		Version:        SnapshotVersion,
		CapturedWallNS: local.CapturedWallNS,
		Nodes:          []string{local.Node},
	}
	client := &http.Client{Timeout: 2 * time.Second}
	snaps := make([]NodeSnapshot, len(peers))
	errs := make([]error, len(peers))
	forEachPeer(peers, func(i int, p string) {
		snaps[i], errs[i] = fetchSnapshot(client, p)
	})
	groups := [][]trace.SiteAttribution{local.Sites}
	for i, p := range peers {
		if errs[i] != nil {
			v.Errors = append(v.Errors, fmt.Sprintf("%s: %v", p, errs[i]))
			continue
		}
		name := snaps[i].Node
		if name == "" || name == "local" {
			name = p
		}
		v.Nodes = append(v.Nodes, name)
		groups = append(groups, snaps[i].Sites)
	}
	v.Sites = clusterSites(trace.MergeAttributions(groups...))
	return v
}

// clusterSites derives the rendered per-site rows from a merged
// attribution snapshot: quantiles interpolate within the merged log2
// buckets, the blame table carries over, and TopBlame picks the
// dominant phase by accumulated self time.
func clusterSites(merged []trace.SiteAttribution) []ClusterSite {
	out := make([]ClusterSite, 0, len(merged))
	for i := range merged {
		sa := &merged[i]
		cs := ClusterSite{
			Site:      sa.Site,
			Calls:     sa.Calls,
			Blame:     sa.Blame,
			Exemplars: sa.Exemplars,
		}
		if sa.Total.Total > 0 {
			cs.MeanNS = float64(sa.Total.Sum) / float64(sa.Total.Total)
			cs.P50NS = int64(sa.Total.Quantile(0.50))
			cs.P95NS = int64(sa.Total.Quantile(0.95))
			cs.P99NS = int64(sa.Total.Quantile(0.99))
		}
		cs.TopBlame, cs.TopBlameShare = sa.TopBlame()
		out = append(out, cs)
	}
	return out
}

// splitPeers parses a ?peers=a,b,c override.
func splitPeers(s string) []string {
	var out []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}
