// Package obs is the RMI runtime's live introspection surface: an
// HTTP server exposing Prometheus-text metrics (/metrics), per-call-
// site runtime counters (/callsites, also labeled on /metrics), the
// flight recorder as Chrome-trace JSON (/trace, loadable in Perfetto),
// phase latency quantiles as JSON (/trace/stats), build provenance
// (/buildinfo), the standard Go profiler endpoints (/debug/pprof/),
// and a liveness probe (/healthz).
//
// The server is strictly a reader: it snapshots counters, histograms
// and the span ring on each request and never touches the RMI hot
// path. It runs on its own mux so mounting it cannot collide with an
// application's default mux.
package obs

import (
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"reflect"
	"runtime"
	"runtime/debug"
	"strings"
	"time"

	"cormi/internal/metrics"
	"cormi/internal/serial"
	"cormi/internal/stats"
	"cormi/internal/trace"
	"cormi/internal/wire"
)

// Options selects what the server exposes. Any field may be nil; the
// corresponding metrics are simply absent.
type Options struct {
	// Tracer supplies /trace, /trace/stats and the per-phase latency
	// histograms on /metrics.
	Tracer *trace.Tracer
	// Counters supplies the cormi_* counter gauges on /metrics.
	Counters *stats.Counters
	// Registry receives the gauges and is rendered by /metrics. When
	// nil, the tracer's registry is used (so phase histograms and
	// gauges share one exposition); a private registry is created if
	// there is no tracer either.
	Registry *metrics.Registry
	// SiteStats supplies the per-call-site counters for /callsites and
	// the labeled cormi_site_* series on /metrics (typically
	// Cluster.SiteStats, or an aggregation across clusters).
	SiteStats func() []stats.SiteStat
	// Links supplies the per-link negotiation state for /links and the
	// labeled cormi_link_* series on /metrics (typically
	// Cluster.LinkStats, or an aggregation across clusters). Only links
	// that have completed their HELLO exchange appear.
	Links func() []stats.LinkStat
	// NodeName identifies this node in /snapshot and /cluster documents
	// ("local" when empty).
	NodeName string
	// Peers lists the other nodes' obs addresses ("host:port" or full
	// URL) that /cluster pulls /snapshot from by default; a request's
	// ?peers=a,b,c query overrides the list. Must not include this
	// node's own address (the local state is always merged in).
	Peers []string
	// Overload supplies the backlog levels exposed as the
	// cormi_pending_calls / cormi_promise_table / cormi_promise_parked /
	// cormi_batch_queue_depth gauges (typically Cluster.Overload, or an
	// aggregation across clusters).
	Overload func() stats.OverloadStats
}

// Server is a running introspection endpoint.
type Server struct {
	reg *metrics.Registry
	mux *http.ServeMux

	ln  net.Listener
	srv *http.Server
}

// NewServer builds the handler without binding a socket — use Serve
// for the common bind-and-go path, or mount Handler() yourself.
func NewServer(opts Options) *Server {
	reg := opts.Registry
	if reg == nil && opts.Tracer != nil {
		reg = opts.Tracer.Registry()
	}
	if reg == nil {
		reg = metrics.NewRegistry()
	}
	s := &Server{reg: reg, mux: http.NewServeMux()}

	if opts.Counters != nil {
		registerCounterGauges(reg, opts.Counters)
		registerRobustnessGauges(reg, opts.Counters)
	}
	registerPoolGauges(reg)
	registerCtxGauges(reg)
	if opts.Tracer != nil {
		registerTracerGauges(reg, opts.Tracer)
	}
	if opts.SiteStats != nil {
		registerSiteVecs(reg, opts.SiteStats)
	}
	if opts.Links != nil {
		registerLinkVecs(reg, opts.Links)
	}
	if opts.Overload != nil {
		registerOverloadGauges(reg, opts.Overload)
	}

	s.mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	s.mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = s.reg.WritePrometheus(w)
	})
	s.mux.HandleFunc("/trace", func(w http.ResponseWriter, r *http.Request) {
		if opts.Tracer == nil {
			http.Error(w, "tracing off: no tracer attached", http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		_ = trace.WriteChrome(w, opts.Tracer.Recent(), "live")
	})
	s.mux.HandleFunc("/trace/stats", func(w http.ResponseWriter, r *http.Request) {
		if opts.Tracer == nil {
			http.Error(w, "tracing off: no tracer attached", http.StatusNotFound)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		st := opts.Tracer.PhaseStats()
		if st == nil {
			st = []trace.PhaseStat{}
		}
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(st)
	})
	s.mux.HandleFunc("/callsites", func(w http.ResponseWriter, r *http.Request) {
		if opts.SiteStats == nil {
			http.Error(w, "no call-site stats source attached", http.StatusNotFound)
			return
		}
		ss := opts.SiteStats()
		if ss == nil {
			ss = []stats.SiteStat{}
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(ss)
	})
	s.mux.HandleFunc("/links", func(w http.ResponseWriter, r *http.Request) {
		if opts.Links == nil {
			http.Error(w, "no link stats source attached", http.StatusNotFound)
			return
		}
		ls := opts.Links()
		if ls == nil {
			ls = []stats.LinkStat{}
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(ls)
	})
	s.mux.HandleFunc("/slow", func(w http.ResponseWriter, r *http.Request) {
		if opts.Tracer == nil {
			http.Error(w, "tracing off: no tracer attached", http.StatusNotFound)
			return
		}
		exs := opts.Tracer.Slow()
		if exs == nil {
			exs = []trace.Exemplar{}
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(exs)
	})
	s.mux.HandleFunc("/slow/trace", func(w http.ResponseWriter, r *http.Request) {
		if opts.Tracer == nil {
			http.Error(w, "tracing off: no tracer attached", http.StatusNotFound)
			return
		}
		var spans []trace.SpanRecord
		for _, ex := range opts.Tracer.Slow() {
			spans = append(spans, ex.Spans...)
		}
		w.Header().Set("Content-Type", "application/json")
		_ = trace.WriteChrome(w, spans, "slow")
	})
	registerTraceHandlers(s.mux, opts)
	s.mux.HandleFunc("/snapshot", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(localSnapshot(opts))
	})
	s.mux.HandleFunc("/cluster", func(w http.ResponseWriter, r *http.Request) {
		peers := opts.Peers
		if q := r.URL.Query().Get("peers"); q != "" {
			peers = splitPeers(q)
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(buildClusterView(opts, peers))
	})
	s.mux.HandleFunc("/buildinfo", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(readBuildInfo())
	})
	s.mux.HandleFunc("/debug/pprof/", pprof.Index)
	s.mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	s.mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	s.mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	s.mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return s
}

// Handler returns the server's mux for embedding.
func (s *Server) Handler() http.Handler { return s.mux }

// Serve binds addr (e.g. ":9090" or "127.0.0.1:0") and serves the
// introspection endpoints in a background goroutine until Close.
func Serve(addr string, opts Options) (*Server, error) {
	s := NewServer(opts)
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s.ln = ln
	s.srv = &http.Server{Handler: s.mux, ReadHeaderTimeout: 5 * time.Second}
	go func() { _ = s.srv.Serve(ln) }()
	return s, nil
}

// Addr returns the bound address (useful with ":0").
func (s *Server) Addr() string {
	if s.ln == nil {
		return ""
	}
	return s.ln.Addr().String()
}

// Close stops the listener.
func (s *Server) Close() error {
	if s.srv == nil {
		return nil
	}
	return s.srv.Close()
}

// registerCounterGauges walks stats.Counters with reflection and
// registers one gauge per counter field, named
// cormi_counter_<snake_case_field>. Walking the struct (instead of a
// hand-written list) means a counter added to stats shows up on
// /metrics automatically — the same completeness property the stats
// package's reflection tests enforce for Snapshot.
func registerCounterGauges(reg *metrics.Registry, c *stats.Counters) {
	cv := reflect.ValueOf(c).Elem()
	ct := cv.Type()
	for i := 0; i < ct.NumField(); i++ {
		f := cv.Field(i)
		load := f.Addr().MethodByName("Load")
		if !load.IsValid() {
			continue
		}
		name := "cormi_counter_" + snakeCase(ct.Field(i).Name)
		reg.RegisterGauge(name, "runtime counter "+ct.Field(i).Name,
			func() float64 { return float64(load.Call(nil)[0].Int()) })
	}
}

// registerPoolGauges exposes the wire frame pool's outstanding-buffer
// balance, the leak witness for the buffer ownership protocol.
func registerPoolGauges(reg *metrics.Registry) {
	reg.RegisterGauge("cormi_wire_buf_gets_total", "lifetime wire.GetBuf calls",
		func() float64 { return float64(wire.Stats().Gets) })
	reg.RegisterGauge("cormi_wire_buf_puts_total", "lifetime wire.PutBuf calls",
		func() float64 { return float64(wire.Stats().Puts) })
	reg.RegisterGauge("cormi_wire_buf_outstanding", "frame-pool buffers currently owned by callers (gets - puts)",
		func() float64 { return float64(wire.Stats().Outstanding) })
}

// registerRobustnessGauges exposes the wire-robustness counters under
// the stable names the hardening design documents — aliases of the
// reflective cormi_counter_* series, kept explicit so dashboards and
// the version-skew runbook do not depend on field spelling.
func registerRobustnessGauges(reg *metrics.Registry, c *stats.Counters) {
	reg.RegisterGauge("cormi_wire_malformed_total", "CRC-valid frames rejected as malformed (hostile or version-skewed)",
		func() float64 { return float64(c.MalformedFrames.Load()) })
	reg.RegisterGauge("cormi_plan_fallback_total", "objects demoted from planned to class-level encoding by link negotiation",
		func() float64 { return float64(c.PlanFallbacks.Load()) })
}

// registerCtxGauges exposes the serializer's read-context pool balance
// — the leak witness proving every decode, including every rejected
// malformed frame, released its pooled context.
func registerCtxGauges(reg *metrics.Registry) {
	reg.RegisterGauge("cormi_serial_readctx_gets_total", "lifetime pooled read-context acquisitions",
		func() float64 { return float64(serial.ReadCtxStats().Gets) })
	reg.RegisterGauge("cormi_serial_readctx_puts_total", "lifetime pooled read-context releases",
		func() float64 { return float64(serial.ReadCtxStats().Puts) })
	reg.RegisterGauge("cormi_serial_readctx_outstanding", "pooled read contexts currently in use (gets - puts)",
		func() float64 { return float64(serial.ReadCtxStats().Outstanding) })
}

// registerLinkVecs exposes per-link negotiation state as labeled
// series: the negotiated protocol version, the demoted-class count and
// the running fallback total for every link that has completed its
// HELLO exchange.
func registerLinkVecs(reg *metrics.Registry, links func() []stats.LinkStat) {
	collect := func(value func(stats.LinkStat) float64) func() []metrics.LabeledValue {
		return func() []metrics.LabeledValue {
			ls := links()
			out := make([]metrics.LabeledValue, 0, len(ls))
			for _, l := range ls {
				out = append(out, metrics.LabeledValue{
					Labels: fmt.Sprintf("from=%q,to=%q", fmt.Sprint(l.From), fmt.Sprint(l.To)),
					Value:  value(l),
				})
			}
			return out
		}
	}
	reg.RegisterCounterVec("cormi_link_negotiated_version", "wire protocol version negotiated by the link's HELLO exchange",
		collect(func(l stats.LinkStat) float64 { return float64(l.Version) }))
	reg.RegisterCounterVec("cormi_link_demoted_classes", "classes demoted to class-level encoding on the link",
		collect(func(l stats.LinkStat) float64 { return float64(l.DemotedClasses) }))
	reg.RegisterCounterVec("cormi_link_plan_fallbacks", "objects written through the demoted encoding on the link",
		collect(func(l stats.LinkStat) float64 { return float64(l.Fallbacks) }))
	reg.RegisterCounterVec("cormi_link_caps", "capability bits negotiated by the link's HELLO exchange",
		collect(func(l stats.LinkStat) float64 { return float64(l.Caps) }))
	reg.RegisterCounterVec("cormi_link_batched_frames", "logical frames coalesced into batch containers on the link",
		collect(func(l stats.LinkStat) float64 { return float64(l.BatchedFrames) }))
	reg.RegisterCounterVec("cormi_link_batch_flushes", "batch containers the link put on the wire",
		collect(func(l stats.LinkStat) float64 { return float64(l.BatchFlushes) }))
}

// registerSiteVecs exposes the per-call-site counters as labeled
// counter vectors — one cormi_site_* family per SiteStat counter
// field, one series per site. Walking SiteStat with reflection keeps
// the family set complete as counters are added, mirroring
// registerCounterGauges.
func registerSiteVecs(reg *metrics.Registry, sites func() []stats.SiteStat) {
	st := reflect.TypeOf(stats.SiteStat{})
	for i := 0; i < st.NumField(); i++ {
		f := st.Field(i)
		if f.Type.Kind() != reflect.Int64 {
			continue
		}
		idx := i
		reg.RegisterCounterVec("cormi_site_"+snakeCase(f.Name), "per-call-site counter "+f.Name,
			func() []metrics.LabeledValue {
				ss := sites()
				out := make([]metrics.LabeledValue, 0, len(ss))
				for _, s := range ss {
					out = append(out, metrics.LabeledValue{
						Labels: fmt.Sprintf("site=%q", s.Site),
						Value:  float64(reflect.ValueOf(s).Field(idx).Int()),
					})
				}
				return out
			})
	}
}

// buildInfo is the /buildinfo JSON shape: enough provenance to match
// a running server to a source revision.
type buildInfo struct {
	GoVersion   string `json:"go_version"`
	Module      string `json:"module"`
	Version     string `json:"version"`
	VCSRevision string `json:"vcs_revision,omitempty"`
	VCSTime     string `json:"vcs_time,omitempty"`
	VCSModified bool   `json:"vcs_modified,omitempty"`
}

func readBuildInfo() buildInfo {
	bi := buildInfo{GoVersion: runtime.Version()}
	info, ok := debug.ReadBuildInfo()
	if !ok {
		return bi
	}
	bi.Module = info.Main.Path
	bi.Version = info.Main.Version
	for _, s := range info.Settings {
		switch s.Key {
		case "vcs.revision":
			bi.VCSRevision = s.Value
		case "vcs.time":
			bi.VCSTime = s.Value
		case "vcs.modified":
			bi.VCSModified = s.Value == "true"
		}
	}
	return bi
}

func registerTracerGauges(reg *metrics.Registry, tr *trace.Tracer) {
	reg.RegisterGauge("cormi_trace_spans_started_total", "trace spans opened",
		func() float64 { return float64(tr.SpansStarted()) })
	reg.RegisterGauge("cormi_trace_failures_total", "failed spans closed",
		func() float64 { return float64(tr.Failures()) })
	reg.RegisterGauge("cormi_trace_exemplars_total", "slow-call exemplars captured past the adaptive p99 threshold",
		func() float64 { return float64(tr.Exemplars()) })
	reg.RegisterGauge("cormi_trace_store_retained", "sampled traces currently retained by the bounded trace store",
		func() float64 { r, _, _ := tr.TraceStoreStats(); return float64(r) })
	reg.RegisterGauge("cormi_trace_store_evicted_total", "sampled traces evicted by the store's FIFO cap",
		func() float64 { _, e, _ := tr.TraceStoreStats(); return float64(e) })
	reg.RegisterGauge("cormi_trace_store_dropped_spans_total", "spans dropped by the per-trace span cap",
		func() float64 { _, _, d := tr.TraceStoreStats(); return float64(d) })
	registerBlameVecs(reg, tr)
}

// registerBlameVecs exposes the per-(site, phase) blame counters: how
// many spans each phase dominated and its accumulated self time — the
// always-on attribution the cluster blame table is built from.
func registerBlameVecs(reg *metrics.Registry, tr *trace.Tracer) {
	collect := func(value func(trace.BlamePhase) float64) func() []metrics.LabeledValue {
		return func() []metrics.LabeledValue {
			var out []metrics.LabeledValue
			for _, sa := range tr.Attribution() {
				for _, b := range sa.Blame {
					out = append(out, metrics.LabeledValue{
						Labels: fmt.Sprintf("site=%q,phase=%q", sa.Site, b.Phase),
						Value:  value(b),
					})
				}
			}
			return out
		}
	}
	reg.RegisterCounterVec("cormi_blame_wins_total", "spans whose critical path this phase dominated",
		collect(func(b trace.BlamePhase) float64 { return float64(b.Wins) }))
	reg.RegisterCounterVec("cormi_blame_self_ns_total", "accumulated blamable self time in the phase",
		collect(func(b trace.BlamePhase) float64 { return float64(b.SelfNS) }))
}

// registerOverloadGauges walks stats.OverloadStats with reflection and
// registers one gauge per backlog level, named cormi_<snake_case_field>
// (cormi_pending_calls, cormi_promise_table, cormi_promise_parked,
// cormi_batch_queue_depth). As with registerCounterGauges, a field
// added to the struct shows up on /metrics automatically.
func registerOverloadGauges(reg *metrics.Registry, overload func() stats.OverloadStats) {
	ot := reflect.TypeOf(stats.OverloadStats{})
	for i := 0; i < ot.NumField(); i++ {
		f := ot.Field(i)
		if f.Type.Kind() != reflect.Int64 {
			continue
		}
		idx := i
		reg.RegisterGauge("cormi_"+snakeCase(f.Name), "backlog level "+f.Name,
			func() float64 { return float64(reflect.ValueOf(overload()).Field(idx).Int()) })
	}
}

// snakeCase converts a Go exported field name to snake_case, starting
// a new word only after a lowercase rune so acronym runs stay whole
// (RemoteRPCs → remote_rpcs, DupSuppressed → dup_suppressed).
func snakeCase(s string) string {
	var b strings.Builder
	prevLower := false
	for _, r := range s {
		if r >= 'A' && r <= 'Z' {
			if prevLower {
				b.WriteByte('_')
			}
			b.WriteRune(r - 'A' + 'a')
			prevLower = false
		} else {
			b.WriteRune(r)
			prevLower = r >= 'a' && r <= 'z'
		}
	}
	return b.String()
}
