package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"reflect"
	"strings"
	"testing"
	"time"

	"cormi/internal/model"
	"cormi/internal/rmi"
	"cormi/internal/serial"
	"cormi/internal/stats"
	"cormi/internal/trace"
)

func get(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body)
}

// startTracedCluster runs one traced RMI so every endpoint has data.
func startTracedCluster(t *testing.T) (*rmi.Cluster, *trace.Tracer) {
	t.Helper()
	tr := trace.New(trace.Config{RingSize: 64})
	c := rmi.New(2, rmi.WithTracer(tr))
	t.Cleanup(c.Close)
	ref := c.Node(1).Export(&rmi.Service{
		Name: "Echo",
		Methods: map[string]rmi.Method{
			"echo": func(call *rmi.Call, args []model.Value) []model.Value {
				return []model.Value{args[0]}
			},
		},
	})
	cs := c.MustNewCallSite(rmi.LevelSite, rmi.SiteSpec{
		Name: "obs.echo.1", Method: "echo",
		ArgPlans: []*serial.Plan{serial.PrimitivePlan("obs.echo.1", model.FInt)},
		RetPlans: []*serial.Plan{serial.PrimitivePlan("obs.echo.1", model.FInt)},
	})
	if _, err := cs.Invoke(c.Node(0), ref, []model.Value{model.Int(5)}); err != nil {
		t.Fatal(err)
	}
	return c, tr
}

func TestServeEndpoints(t *testing.T) {
	c, tr := startTracedCluster(t)
	s, err := Serve("127.0.0.1:0", Options{Tracer: tr, Counters: c.Counters})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	base := "http://" + s.Addr()

	code, body := get(t, base+"/healthz")
	if code != http.StatusOK || !strings.Contains(body, "ok") {
		t.Fatalf("/healthz = %d %q", code, body)
	}

	code, body = get(t, base+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics status %d", code)
	}
	for _, want := range []string{
		"cormi_counter_remote_rpcs 1",
		"cormi_counter_messages",
		"cormi_counter_retries",
		"cormi_counter_timeouts",
		"cormi_counter_dup_suppressed",
		"cormi_counter_corrupt_dropped",
		"cormi_counter_stale_replies",
		"cormi_wire_buf_outstanding",
		"cormi_trace_spans_started_total 2",
		"cormi_phase_latency_ns_bucket",
		`site="obs.echo.1",phase="execute"`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}

	code, body = get(t, base+"/trace")
	if code != http.StatusOK {
		t.Fatalf("/trace status %d", code)
	}
	var chromeDoc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal([]byte(body), &chromeDoc); err != nil {
		t.Fatalf("/trace is not Chrome-trace JSON: %v", err)
	}
	if len(chromeDoc.TraceEvents) == 0 {
		t.Fatal("/trace has no events after a traced call")
	}

	code, body = get(t, base+"/trace/stats")
	if code != http.StatusOK {
		t.Fatalf("/trace/stats status %d", code)
	}
	var phases []trace.PhaseStat
	if err := json.Unmarshal([]byte(body), &phases); err != nil {
		t.Fatalf("/trace/stats is not JSON: %v", err)
	}
	var sawExec bool
	for _, p := range phases {
		if p.Phase == "execute" && p.Site == "obs.echo.1" && p.P99NS > 0 {
			sawExec = true
		}
	}
	if !sawExec {
		t.Error("/trace/stats missing execute quantiles")
	}

	code, body = get(t, base+"/debug/pprof/cmdline")
	if code != http.StatusOK || body == "" {
		t.Fatalf("/debug/pprof/cmdline = %d", code)
	}
}

func TestServeWithoutTracer(t *testing.T) {
	var c stats.Counters
	c.RemoteRPCs.Add(3)
	s, err := Serve("127.0.0.1:0", Options{Counters: &c})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	base := "http://" + s.Addr()

	code, body := get(t, base+"/metrics")
	if code != http.StatusOK || !strings.Contains(body, "cormi_counter_remote_rpcs 3") {
		t.Fatalf("/metrics without tracer = %d %q", code, body)
	}
	if code, _ := get(t, base+"/trace"); code != http.StatusNotFound {
		t.Fatalf("/trace without tracer = %d, want 404", code)
	}
}

func TestSnakeCase(t *testing.T) {
	for in, want := range map[string]string{
		"RemoteRPCs":     "remote_rpcs",
		"LocalRPCs":      "local_rpcs",
		"WireBytes":      "wire_bytes",
		"DupSuppressed":  "dup_suppressed",
		"AcksOnly":       "acks_only",
		"TypeOps":        "type_ops",
		"CorruptDropped": "corrupt_dropped",
	} {
		if got := snakeCase(in); got != want {
			t.Errorf("snakeCase(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestCounterGaugesCoverEveryField(t *testing.T) {
	// The reflective gauge registration must expose every Counters
	// field; pair with the stats completeness tests, this keeps the
	// whole pipeline (counter → snapshot → /metrics) closed under
	// field additions.
	var c stats.Counters
	s, err := Serve("127.0.0.1:0", Options{Counters: &c})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	_, body := get(t, "http://"+s.Addr()+"/metrics")
	for _, name := range []string{
		"remote_rpcs", "local_rpcs", "messages", "wire_bytes", "type_bytes",
		"type_ops", "serializer_calls", "inlined_writes", "introspect_ops",
		"cycle_tables", "cycle_lookups", "alloc_objects", "alloc_bytes",
		"reused_objs", "reused_bytes", "acks_only", "retries", "timeouts",
		"dup_suppressed", "corrupt_dropped", "stale_replies",
	} {
		if !strings.Contains(body, "cormi_counter_"+name) {
			t.Errorf("/metrics missing cormi_counter_%s", name)
		}
	}
}

func TestCallsitesEndpoint(t *testing.T) {
	c, tr := startTracedCluster(t)
	s, err := Serve("127.0.0.1:0", Options{Tracer: tr, Counters: c.Counters, SiteStats: c.SiteStats})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	base := "http://" + s.Addr()

	code, body := get(t, base+"/callsites")
	if code != http.StatusOK {
		t.Fatalf("/callsites status %d", code)
	}
	var sites []stats.SiteStat
	if err := json.Unmarshal([]byte(body), &sites); err != nil {
		t.Fatalf("/callsites is not JSON: %v\n%s", err, body)
	}
	if len(sites) != 1 || sites[0].Site != "obs.echo.1" {
		t.Fatalf("/callsites = %+v, want one obs.echo.1 entry", sites)
	}
	if sites[0].Calls != 1 || sites[0].WireBytes <= 0 {
		t.Errorf("live counters not served: %+v", sites[0])
	}
	if !strings.Contains(body, `"wire_bytes"`) {
		t.Errorf("/callsites keys not snake_case: %s", body)
	}

	// The same counters appear as labeled series on /metrics, one
	// cormi_site_* family per SiteStat counter field.
	_, mbody := get(t, base+"/metrics")
	for _, want := range []string{
		`cormi_site_calls{site="obs.echo.1"} 1`,
		`cormi_site_wire_bytes{site="obs.echo.1"}`,
		`cormi_site_reuse_hits{site="obs.echo.1"}`,
		`cormi_site_claim_violations{site="obs.echo.1"} 0`,
	} {
		if !strings.Contains(mbody, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}

func TestCallsitesWithoutSource(t *testing.T) {
	var c stats.Counters
	s, err := Serve("127.0.0.1:0", Options{Counters: &c})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	if code, _ := get(t, "http://"+s.Addr()+"/callsites"); code != http.StatusNotFound {
		t.Fatalf("/callsites without source = %d, want 404", code)
	}
}

func TestBuildinfoEndpoint(t *testing.T) {
	var c stats.Counters
	s, err := Serve("127.0.0.1:0", Options{Counters: &c})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })

	code, body := get(t, "http://"+s.Addr()+"/buildinfo")
	if code != http.StatusOK {
		t.Fatalf("/buildinfo status %d", code)
	}
	var bi struct {
		GoVersion string `json:"go_version"`
		Module    string `json:"module"`
	}
	if err := json.Unmarshal([]byte(body), &bi); err != nil {
		t.Fatalf("/buildinfo is not JSON: %v\n%s", err, body)
	}
	if bi.GoVersion == "" {
		t.Error("/buildinfo missing go_version")
	}
	if bi.Module != "cormi" {
		t.Errorf("/buildinfo module = %q, want cormi", bi.Module)
	}
}

// startTracedNode builds one independent "node" for cluster-view tests:
// its own 2-node RMI cluster, tracer, and obs server named name. Every
// node registers the same call site, so their attribution rows merge.
func startTracedNode(t *testing.T, name string, tcfg trace.Config) (*rmi.Cluster, *trace.Tracer, *Server) {
	t.Helper()
	tr := trace.New(tcfg)
	c := rmi.New(2, rmi.WithTracer(tr))
	t.Cleanup(c.Close)
	s, err := Serve("127.0.0.1:0", Options{
		Tracer: tr, Counters: c.Counters, NodeName: name, Overload: c.Overload,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return c, tr, s
}

// invokeEcho runs count traced echo calls on the node's cluster, with
// the callee sleeping delay per call.
func invokeEcho(t *testing.T, c *rmi.Cluster, count int, delay time.Duration) {
	t.Helper()
	ref := c.Node(1).Export(&rmi.Service{
		Name: "Echo",
		Methods: map[string]rmi.Method{
			"echo": func(call *rmi.Call, args []model.Value) []model.Value {
				if delay > 0 {
					time.Sleep(delay)
				}
				return []model.Value{args[0]}
			},
		},
	})
	cs := c.MustNewCallSite(rmi.LevelSite, rmi.SiteSpec{
		Name: "obs.echo.1", Method: "echo",
		ArgPlans: []*serial.Plan{serial.PrimitivePlan("obs.echo.1", model.FInt)},
		RetPlans: []*serial.Plan{serial.PrimitivePlan("obs.echo.1", model.FInt)},
	})
	for i := 0; i < count; i++ {
		if _, err := cs.Invoke(c.Node(0), ref, []model.Value{model.Int(int64(i))}); err != nil {
			t.Fatal(err)
		}
	}
}

func TestSnapshotEndpoint(t *testing.T) {
	c, _, s := startTracedNode(t, "n0", trace.Config{RingSize: 64})
	invokeEcho(t, c, 3, 0)

	code, body := get(t, "http://"+s.Addr()+"/snapshot")
	if code != http.StatusOK {
		t.Fatalf("/snapshot status %d", code)
	}
	var ns NodeSnapshot
	if err := json.Unmarshal([]byte(body), &ns); err != nil {
		t.Fatalf("/snapshot is not JSON: %v\n%s", err, body)
	}
	if ns.Version != SnapshotVersion {
		t.Errorf("snapshot version = %d, want %d", ns.Version, SnapshotVersion)
	}
	if ns.Node != "n0" {
		t.Errorf("snapshot node = %q, want n0", ns.Node)
	}
	if ns.CapturedWallNS == 0 {
		t.Error("snapshot missing captured_wall_ns")
	}
	var site *trace.SiteAttribution
	for i := range ns.Sites {
		if ns.Sites[i].Site == "obs.echo.1" {
			site = &ns.Sites[i]
		}
	}
	if site == nil {
		t.Fatalf("/snapshot missing obs.echo.1: %s", body)
	}
	if site.Calls != 3 {
		t.Errorf("site calls = %d, want 3", site.Calls)
	}
	if len(site.Blame) == 0 {
		t.Error("site snapshot has no blame rows")
	}
}

func TestClusterEndpointMergesPeers(t *testing.T) {
	// Three independent nodes, each with its own obs server and the
	// same call site; one node aggregates the other two over HTTP.
	c0, _, s0 := startTracedNode(t, "n0", trace.Config{RingSize: 64})
	c1, _, s1 := startTracedNode(t, "n1", trace.Config{RingSize: 64})
	c2, _, s2 := startTracedNode(t, "n2", trace.Config{RingSize: 64})
	invokeEcho(t, c0, 2, 0)
	invokeEcho(t, c1, 3, 0)
	invokeEcho(t, c2, 5, 0)

	url := "http://" + s0.Addr() + "/cluster?peers=" + s1.Addr() + "," + s2.Addr()
	code, body := get(t, url)
	if code != http.StatusOK {
		t.Fatalf("/cluster status %d", code)
	}
	var cv ClusterView
	if err := json.Unmarshal([]byte(body), &cv); err != nil {
		t.Fatalf("/cluster is not JSON: %v\n%s", err, body)
	}
	if cv.Version != SnapshotVersion {
		t.Errorf("cluster version = %d, want %d", cv.Version, SnapshotVersion)
	}
	if len(cv.Nodes) != 3 {
		t.Errorf("cluster nodes = %v, want 3 entries", cv.Nodes)
	}
	if len(cv.Errors) != 0 {
		t.Errorf("cluster errors = %v, want none", cv.Errors)
	}
	var row *ClusterSite
	for i := range cv.Sites {
		if cv.Sites[i].Site == "obs.echo.1" {
			row = &cv.Sites[i]
		}
	}
	if row == nil {
		t.Fatalf("/cluster missing obs.echo.1: %s", body)
	}
	if row.Calls != 10 {
		t.Errorf("merged calls = %d, want 10 (2+3+5)", row.Calls)
	}
	if row.P50NS <= 0 || row.P50NS > row.P95NS || row.P95NS > row.P99NS {
		t.Errorf("quantiles not monotone: p50=%d p95=%d p99=%d", row.P50NS, row.P95NS, row.P99NS)
	}
	if row.TopBlame == "" || row.TopBlameShare <= 0 {
		t.Errorf("merged row has no top blame: %+v", row)
	}

	// An unreachable peer degrades to an error entry, not a failure.
	code, body = get(t, "http://"+s0.Addr()+"/cluster?peers=127.0.0.1:1")
	if code != http.StatusOK {
		t.Fatalf("/cluster with dead peer status %d", code)
	}
	if err := json.Unmarshal([]byte(body), &cv); err != nil {
		t.Fatal(err)
	}
	if len(cv.Errors) != 1 {
		t.Errorf("dead peer not reported: errors = %v", cv.Errors)
	}
	if len(cv.Nodes) != 1 {
		t.Errorf("dead peer merged anyway: nodes = %v", cv.Nodes)
	}
}

func TestSlowEndpointsServeExemplars(t *testing.T) {
	// Warmup 1 arms the adaptive threshold after the first call; the
	// huge refresh keeps it armed at that fast-call estimate, so a
	// 5ms call must exceed it and be captured.
	c, tr, s := startTracedNode(t, "n0", trace.Config{
		RingSize: 64, ExemplarWarmup: 1, ExemplarRefresh: 1 << 40, ExemplarMinNS: 1,
	})
	invokeEcho(t, c, 2, 0)
	invokeEcho(t, c, 1, 5*time.Millisecond)
	if tr.Exemplars() == 0 {
		t.Fatal("5ms call past a µs-scale threshold captured no exemplar")
	}
	base := "http://" + s.Addr()

	code, body := get(t, base+"/slow")
	if code != http.StatusOK {
		t.Fatalf("/slow status %d", code)
	}
	var exs []trace.Exemplar
	if err := json.Unmarshal([]byte(body), &exs); err != nil {
		t.Fatalf("/slow is not JSON: %v\n%s", err, body)
	}
	if len(exs) == 0 {
		t.Fatal("/slow empty after a captured exemplar")
	}
	ex := exs[0] // newest first: the slow call
	if ex.Site != "obs.echo.1" || ex.Blame != "execute" {
		t.Errorf("exemplar = site %q blame %q, want obs.echo.1/execute", ex.Site, ex.Blame)
	}
	if ex.TotalNS < int64(4*time.Millisecond) {
		t.Errorf("exemplar total %dns, want >= 4ms", ex.TotalNS)
	}
	if ex.ThresholdNS <= 0 || ex.TotalNS <= ex.ThresholdNS {
		t.Errorf("exemplar does not exceed its threshold: total=%d thr=%d", ex.TotalNS, ex.ThresholdNS)
	}
	if len(ex.Caller) == 0 || len(ex.Callee) == 0 {
		t.Errorf("exemplar span tree incomplete: caller=%d callee=%d phases", len(ex.Caller), len(ex.Callee))
	}

	// The same exemplars render as a Perfetto-loadable trace.
	code, body = get(t, base+"/slow/trace")
	if code != http.StatusOK {
		t.Fatalf("/slow/trace status %d", code)
	}
	var doc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal([]byte(body), &doc); err != nil {
		t.Fatalf("/slow/trace is not Chrome-trace JSON: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("/slow/trace has no events")
	}
	if !strings.Contains(body, "execute") {
		t.Error("/slow/trace missing the slow execute phase")
	}

	// The capture total is also a gauge.
	_, mbody := get(t, base+"/metrics")
	if !strings.Contains(mbody, "cormi_trace_exemplars_total") {
		t.Error("/metrics missing cormi_trace_exemplars_total")
	}
}

func TestSlowWithoutTracer(t *testing.T) {
	var c stats.Counters
	s, err := Serve("127.0.0.1:0", Options{Counters: &c})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	if code, _ := get(t, "http://"+s.Addr()+"/slow"); code != http.StatusNotFound {
		t.Fatalf("/slow without tracer = %d, want 404", code)
	}
	// /snapshot stays up (versioned protocol; a metrics-only node just
	// contributes no sites), so /cluster never chokes on a mixed fleet.
	code, body := get(t, "http://"+s.Addr()+"/snapshot")
	if code != http.StatusOK {
		t.Fatalf("/snapshot without tracer = %d, want 200", code)
	}
	var ns NodeSnapshot
	if err := json.Unmarshal([]byte(body), &ns); err != nil {
		t.Fatal(err)
	}
	if ns.Version != SnapshotVersion || len(ns.Sites) != 0 {
		t.Errorf("tracerless snapshot = %+v", ns)
	}
}

func TestOverloadGaugesCoverEveryField(t *testing.T) {
	// Mirror of TestCounterGaugesCoverEveryField for the backlog levels:
	// every OverloadStats field must surface as a cormi_* gauge with its
	// live value, automatically as fields are added.
	var o stats.OverloadStats
	ov := reflect.ValueOf(&o).Elem()
	for i := 0; i < ov.NumField(); i++ {
		ov.Field(i).SetInt(int64(9100 + i*7))
	}
	s, err := Serve("127.0.0.1:0", Options{Overload: func() stats.OverloadStats { return o }})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	_, body := get(t, "http://"+s.Addr()+"/metrics")
	ot := ov.Type()
	for i := 0; i < ot.NumField(); i++ {
		want := fmt.Sprintf("cormi_%s %d", snakeCase(ot.Field(i).Name), 9100+i*7)
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing overload gauge %q", want)
		}
	}
}

func TestBlameVecsOnMetrics(t *testing.T) {
	c, _, s := startTracedNode(t, "n0", trace.Config{RingSize: 64})
	invokeEcho(t, c, 1, time.Millisecond)
	_, body := get(t, "http://"+s.Addr()+"/metrics")
	for _, want := range []string{
		`cormi_blame_wins_total{site="obs.echo.1",phase="execute"} 1`,
		`cormi_blame_self_ns_total{site="obs.echo.1",phase="execute"}`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}
