package obs

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"

	"cormi/internal/model"
	"cormi/internal/rmi"
	"cormi/internal/serial"
	"cormi/internal/stats"
	"cormi/internal/trace"
)

func get(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body)
}

// startTracedCluster runs one traced RMI so every endpoint has data.
func startTracedCluster(t *testing.T) (*rmi.Cluster, *trace.Tracer) {
	t.Helper()
	tr := trace.New(trace.Config{RingSize: 64})
	c := rmi.New(2, rmi.WithTracer(tr))
	t.Cleanup(c.Close)
	ref := c.Node(1).Export(&rmi.Service{
		Name: "Echo",
		Methods: map[string]rmi.Method{
			"echo": func(call *rmi.Call, args []model.Value) []model.Value {
				return []model.Value{args[0]}
			},
		},
	})
	cs := c.MustNewCallSite(rmi.LevelSite, rmi.SiteSpec{
		Name: "obs.echo.1", Method: "echo",
		ArgPlans: []*serial.Plan{serial.PrimitivePlan("obs.echo.1", model.FInt)},
		RetPlans: []*serial.Plan{serial.PrimitivePlan("obs.echo.1", model.FInt)},
	})
	if _, err := cs.Invoke(c.Node(0), ref, []model.Value{model.Int(5)}); err != nil {
		t.Fatal(err)
	}
	return c, tr
}

func TestServeEndpoints(t *testing.T) {
	c, tr := startTracedCluster(t)
	s, err := Serve("127.0.0.1:0", Options{Tracer: tr, Counters: c.Counters})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	base := "http://" + s.Addr()

	code, body := get(t, base+"/healthz")
	if code != http.StatusOK || !strings.Contains(body, "ok") {
		t.Fatalf("/healthz = %d %q", code, body)
	}

	code, body = get(t, base+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("/metrics status %d", code)
	}
	for _, want := range []string{
		"cormi_counter_remote_rpcs 1",
		"cormi_counter_messages",
		"cormi_counter_retries",
		"cormi_counter_timeouts",
		"cormi_counter_dup_suppressed",
		"cormi_counter_corrupt_dropped",
		"cormi_counter_stale_replies",
		"cormi_wire_buf_outstanding",
		"cormi_trace_spans_started_total 2",
		"cormi_phase_latency_ns_bucket",
		`site="obs.echo.1",phase="execute"`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}

	code, body = get(t, base+"/trace")
	if code != http.StatusOK {
		t.Fatalf("/trace status %d", code)
	}
	var chromeDoc struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal([]byte(body), &chromeDoc); err != nil {
		t.Fatalf("/trace is not Chrome-trace JSON: %v", err)
	}
	if len(chromeDoc.TraceEvents) == 0 {
		t.Fatal("/trace has no events after a traced call")
	}

	code, body = get(t, base+"/trace/stats")
	if code != http.StatusOK {
		t.Fatalf("/trace/stats status %d", code)
	}
	var phases []trace.PhaseStat
	if err := json.Unmarshal([]byte(body), &phases); err != nil {
		t.Fatalf("/trace/stats is not JSON: %v", err)
	}
	var sawExec bool
	for _, p := range phases {
		if p.Phase == "execute" && p.Site == "obs.echo.1" && p.P99NS > 0 {
			sawExec = true
		}
	}
	if !sawExec {
		t.Error("/trace/stats missing execute quantiles")
	}

	code, body = get(t, base+"/debug/pprof/cmdline")
	if code != http.StatusOK || body == "" {
		t.Fatalf("/debug/pprof/cmdline = %d", code)
	}
}

func TestServeWithoutTracer(t *testing.T) {
	var c stats.Counters
	c.RemoteRPCs.Add(3)
	s, err := Serve("127.0.0.1:0", Options{Counters: &c})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	base := "http://" + s.Addr()

	code, body := get(t, base+"/metrics")
	if code != http.StatusOK || !strings.Contains(body, "cormi_counter_remote_rpcs 3") {
		t.Fatalf("/metrics without tracer = %d %q", code, body)
	}
	if code, _ := get(t, base+"/trace"); code != http.StatusNotFound {
		t.Fatalf("/trace without tracer = %d, want 404", code)
	}
}

func TestSnakeCase(t *testing.T) {
	for in, want := range map[string]string{
		"RemoteRPCs":     "remote_rpcs",
		"LocalRPCs":      "local_rpcs",
		"WireBytes":      "wire_bytes",
		"DupSuppressed":  "dup_suppressed",
		"AcksOnly":       "acks_only",
		"TypeOps":        "type_ops",
		"CorruptDropped": "corrupt_dropped",
	} {
		if got := snakeCase(in); got != want {
			t.Errorf("snakeCase(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestCounterGaugesCoverEveryField(t *testing.T) {
	// The reflective gauge registration must expose every Counters
	// field; pair with the stats completeness tests, this keeps the
	// whole pipeline (counter → snapshot → /metrics) closed under
	// field additions.
	var c stats.Counters
	s, err := Serve("127.0.0.1:0", Options{Counters: &c})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	_, body := get(t, "http://"+s.Addr()+"/metrics")
	for _, name := range []string{
		"remote_rpcs", "local_rpcs", "messages", "wire_bytes", "type_bytes",
		"type_ops", "serializer_calls", "inlined_writes", "introspect_ops",
		"cycle_tables", "cycle_lookups", "alloc_objects", "alloc_bytes",
		"reused_objs", "reused_bytes", "acks_only", "retries", "timeouts",
		"dup_suppressed", "corrupt_dropped", "stale_replies",
	} {
		if !strings.Contains(body, "cormi_counter_"+name) {
			t.Errorf("/metrics missing cormi_counter_%s", name)
		}
	}
}

func TestCallsitesEndpoint(t *testing.T) {
	c, tr := startTracedCluster(t)
	s, err := Serve("127.0.0.1:0", Options{Tracer: tr, Counters: c.Counters, SiteStats: c.SiteStats})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	base := "http://" + s.Addr()

	code, body := get(t, base+"/callsites")
	if code != http.StatusOK {
		t.Fatalf("/callsites status %d", code)
	}
	var sites []stats.SiteStat
	if err := json.Unmarshal([]byte(body), &sites); err != nil {
		t.Fatalf("/callsites is not JSON: %v\n%s", err, body)
	}
	if len(sites) != 1 || sites[0].Site != "obs.echo.1" {
		t.Fatalf("/callsites = %+v, want one obs.echo.1 entry", sites)
	}
	if sites[0].Calls != 1 || sites[0].WireBytes <= 0 {
		t.Errorf("live counters not served: %+v", sites[0])
	}
	if !strings.Contains(body, `"wire_bytes"`) {
		t.Errorf("/callsites keys not snake_case: %s", body)
	}

	// The same counters appear as labeled series on /metrics, one
	// cormi_site_* family per SiteStat counter field.
	_, mbody := get(t, base+"/metrics")
	for _, want := range []string{
		`cormi_site_calls{site="obs.echo.1"} 1`,
		`cormi_site_wire_bytes{site="obs.echo.1"}`,
		`cormi_site_reuse_hits{site="obs.echo.1"}`,
		`cormi_site_claim_violations{site="obs.echo.1"} 0`,
	} {
		if !strings.Contains(mbody, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}

func TestCallsitesWithoutSource(t *testing.T) {
	var c stats.Counters
	s, err := Serve("127.0.0.1:0", Options{Counters: &c})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	if code, _ := get(t, "http://"+s.Addr()+"/callsites"); code != http.StatusNotFound {
		t.Fatalf("/callsites without source = %d, want 404", code)
	}
}

func TestBuildinfoEndpoint(t *testing.T) {
	var c stats.Counters
	s, err := Serve("127.0.0.1:0", Options{Counters: &c})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })

	code, body := get(t, "http://"+s.Addr()+"/buildinfo")
	if code != http.StatusOK {
		t.Fatalf("/buildinfo status %d", code)
	}
	var bi struct {
		GoVersion string `json:"go_version"`
		Module    string `json:"module"`
	}
	if err := json.Unmarshal([]byte(body), &bi); err != nil {
		t.Fatalf("/buildinfo is not JSON: %v\n%s", err, body)
	}
	if bi.GoVersion == "" {
		t.Error("/buildinfo missing go_version")
	}
	if bi.Module != "cormi" {
		t.Errorf("/buildinfo module = %q, want cormi", bi.Module)
	}
}
