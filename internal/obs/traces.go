package obs

// Distributed-trace endpoints (DESIGN.md §15).
//
// Every node retains the spans of head-sampled traces in its tracer's
// bounded per-trace store. /traces lists what this node holds;
// /traces/<id> serves one trace's local spans — and, with ?peers=a,b,c
// (or the configured Options.Peers), pulls the same trace from every
// peer, aligns the hop clocks from the transit stamp pairs, and serves
// the reconstructed cross-node call tree with its end-to-end critical
// path. ?format=chrome renders the merged tree as one Perfetto dump
// with a track group per node. Same pull model as /snapshot → /cluster:
// any node can aggregate, there is no coordinator.

import (
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"time"

	"cormi/internal/trace"
)

// TracesVersion is the /traces and /traces/<id> document version. A
// collector must reject documents with a different version rather than
// merge spans whose field semantics may have changed.
const TracesVersion = 1

// TraceList is the /traces document: the traces this node retains.
type TraceList struct {
	Version int                  `json:"version"`
	Node    string               `json:"node"`
	Traces  []trace.TraceSummary `json:"traces"`
}

// TraceDoc is the single-node /traces/<id> document: one trace's spans
// as retained by one node, timestamps on that node's clock.
type TraceDoc struct {
	Version int                `json:"version"`
	Node    string             `json:"node"`
	TraceID uint64             `json:"trace_id"`
	Spans   []trace.SpanRecord `json:"spans"`
}

// TraceView is the merged /traces/<id>?peers=... document: the
// reconstructed cross-node tree plus the per-node contributions and
// any peers that could not be reached (reported, not fatal — their
// spans simply become orphan subtrees or missing leaves).
type TraceView struct {
	Version int         `json:"version"`
	Nodes   []string    `json:"nodes"`
	Errors  []string    `json:"errors,omitempty"`
	Tree    *trace.Tree `json:"tree"`
}

func nodeName(opts Options) string {
	if opts.NodeName != "" {
		return opts.NodeName
	}
	return "local"
}

// registerTraceHandlers mounts /traces and /traces/<id> on the mux.
func registerTraceHandlers(mux *http.ServeMux, opts Options) {
	mux.HandleFunc("/traces", func(w http.ResponseWriter, r *http.Request) {
		if opts.Tracer == nil {
			http.Error(w, "tracing off: no tracer attached", http.StatusNotFound)
			return
		}
		ts := opts.Tracer.Traces()
		if ts == nil {
			ts = []trace.TraceSummary{}
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(TraceList{Version: TracesVersion, Node: nodeName(opts), Traces: ts})
	})
	mux.HandleFunc("/traces/", func(w http.ResponseWriter, r *http.Request) {
		if opts.Tracer == nil {
			http.Error(w, "tracing off: no tracer attached", http.StatusNotFound)
			return
		}
		idStr := strings.TrimPrefix(r.URL.Path, "/traces/")
		id, err := parseTraceID(idStr)
		if err != nil {
			http.Error(w, fmt.Sprintf("bad trace id %q: %v", idStr, err), http.StatusBadRequest)
			return
		}
		q := r.URL.Query()
		peers := opts.Peers
		if qp := q.Get("peers"); qp != "" {
			peers = splitPeers(qp)
		}
		if q.Get("local") == "1" || (len(peers) == 0 && q.Get("merge") != "1") {
			// Single-node document: this node's retained spans, verbatim.
			// This is also what the aggregating node pulls from peers.
			spans := opts.Tracer.TraceSpans(id)
			if spans == nil {
				spans = []trace.SpanRecord{}
			}
			w.Header().Set("Content-Type", "application/json")
			enc := json.NewEncoder(w)
			enc.SetIndent("", "  ")
			_ = enc.Encode(TraceDoc{Version: TracesVersion, Node: nodeName(opts), TraceID: id, Spans: spans})
			return
		}
		view := buildTraceView(opts, id, peers)
		if q.Get("format") == "chrome" {
			w.Header().Set("Content-Type", "application/json")
			_ = trace.WriteChromeMerged(w, view.Tree)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(view)
	})
}

// parseTraceID accepts a decimal or 0x-prefixed hex trace ID.
func parseTraceID(s string) (uint64, error) {
	if rest, ok := strings.CutPrefix(s, "0x"); ok {
		return strconv.ParseUint(rest, 16, 64)
	}
	return strconv.ParseUint(s, 10, 64)
}

// peerTraceURL returns a peer's single-node document URL for one trace.
func peerTraceURL(peer string, id uint64) string {
	if !strings.Contains(peer, "://") {
		peer = "http://" + peer
	}
	return strings.TrimRight(peer, "/") + "/traces/" + strconv.FormatUint(id, 10) + "?local=1"
}

// fetchTraceDoc pulls one peer's spans for the trace.
func fetchTraceDoc(client *http.Client, peer string, id uint64) (TraceDoc, error) {
	var doc TraceDoc
	resp, err := client.Get(peerTraceURL(peer, id))
	if err != nil {
		return doc, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return doc, fmt.Errorf("status %d", resp.StatusCode)
	}
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		return doc, fmt.Errorf("decode trace doc: %w", err)
	}
	if doc.Version != TracesVersion {
		return doc, fmt.Errorf("trace doc version %d, want %d", doc.Version, TracesVersion)
	}
	return doc, nil
}

// buildTraceView assembles the cross-node tree: the local contribution
// plus every reachable peer's, fetched concurrently (bounded, same
// fan-out limit as /cluster) with deterministic node/error ordering.
func buildTraceView(opts Options, id uint64, peers []string) TraceView {
	local := nodeName(opts)
	v := TraceView{Version: TracesVersion, Nodes: []string{local}}
	contrib := []trace.NodeSpans{{Node: local, Spans: opts.Tracer.TraceSpans(id)}}

	client := &http.Client{Timeout: 2 * time.Second}
	docs := make([]TraceDoc, len(peers))
	errs := make([]error, len(peers))
	forEachPeer(peers, func(i int, p string) {
		docs[i], errs[i] = fetchTraceDoc(client, p, id)
	})
	for i, p := range peers {
		if errs[i] != nil {
			v.Errors = append(v.Errors, fmt.Sprintf("%s: %v", p, errs[i]))
			continue
		}
		name := docs[i].Node
		if name == "" || name == "local" {
			name = p
		}
		v.Nodes = append(v.Nodes, name)
		contrib = append(contrib, trace.NodeSpans{Node: name, Spans: docs[i].Spans})
	}
	v.Tree = trace.BuildTree(id, contrib)
	return v
}
