//go:build race

// Package race reports whether the race detector is compiled in, so
// allocation-budget tests can skip themselves: race instrumentation
// allocates on paths that are allocation free in a normal build.
package race

// Enabled is true when the build has -race instrumentation.
const Enabled = true
