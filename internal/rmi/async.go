package rmi

import (
	"fmt"
	"sync"

	"cormi/internal/model"
	"cormi/internal/serial"
	"cormi/internal/trace"
	"cormi/internal/wire"
)

// Asynchronous invocation: futures, one-way calls and promise
// pipelining on top of the same (from, seq) call identity, pending
// table and pooled reply channels the synchronous path uses.
//
// InvokeAsync issues the call and returns a pooled Future immediately;
// the round trip overlaps whatever the caller does next, and the
// deadline/retry policy is enforced when the caller finally waits.
// InvokeOneWay goes further and skips the reply entirely. Promise
// pipelining closes the loop: an unresolved Future can be passed as an
// argument to a dependent call on the same node, which ships only a
// (from, seq) handle — the callee splices the producer's result from
// its promise table, so a depth-N dependent chain costs one caller
// round trip instead of N.
//
// Every optional feature is capability-gated per link (wire.Cap*,
// negotiated at HELLO time): a peer that does not speak pipelining
// gets the resolve-then-send fallback, a peer without one-way support
// gets a synchronous call whose result is discarded. Callers never
// need to know — the demotion is counted (PipelineFallbacks) but
// semantically invisible.

// Future is one in-flight asynchronous invocation. Exactly one
// goroutine drives it (Wait, Err, or the driver Done starts); any
// number may select on Done and read the outcome afterwards. Futures
// are pooled — call Release when done with one, after which it must
// not be touched.
type Future struct {
	pc pendingCall
	c  *Cluster

	resolve sync.Once
	drive   sync.Once

	mu       sync.Mutex
	resolved bool
	driving  bool
	vals     []model.Value
	err      error
	done     chan struct{}

	// promised records that the call was sent with callFlagPromised on
	// a pipelining-capable link: its (from, seq) is a valid promise
	// handle for a dependent call to the same node.
	promised bool
}

// Wait blocks until the call completes and returns its results. The
// call's deadline/retry policy is enforced here — retransmits and
// timeouts are driven by the waiting goroutine. Safe to call more than
// once; later calls return the memoized outcome.
func (f *Future) Wait() ([]model.Value, error) {
	f.resolve.Do(f.doResolve)
	<-f.done
	return f.vals, f.err
}

// Err waits for completion and returns the call's error, discarding
// results.
func (f *Future) Err() error {
	_, err := f.Wait()
	return err
}

// Done returns a channel closed when the call completes. Because
// resolution is caller-driven, Done starts a driver goroutine on first
// use if nobody is waiting yet; select-heavy callers pay one goroutine,
// plain Wait callers pay none.
func (f *Future) Done() <-chan struct{} {
	f.drive.Do(func() {
		f.mu.Lock()
		started := f.resolved
		if !started {
			f.driving = true
		}
		f.mu.Unlock()
		if !started {
			go f.resolve.Do(f.doResolve)
		}
	})
	return f.done
}

func (f *Future) doResolve() {
	f.mu.Lock()
	if f.resolved {
		f.mu.Unlock()
		return
	}
	f.mu.Unlock()
	vals, err := f.pc.await()
	f.complete(vals, err)
}

func (f *Future) complete(vals []model.Value, err error) {
	f.mu.Lock()
	if !f.resolved {
		f.vals, f.err = vals, err
		f.resolved = true
		close(f.done)
	}
	f.mu.Unlock()
}

// Release returns the future to the cluster's pool. Call it when no
// goroutine will touch the future again. Releasing a future that was
// never waited on abandons the call: the pending slot and reply
// channel are reclaimed (the callee still executes — the call was
// already on the wire).
func (f *Future) Release() {
	f.mu.Lock()
	resolved, driving := f.resolved, f.driving
	f.mu.Unlock()
	if !resolved {
		if driving {
			// A Done-started driver owns the pending call; dropping the
			// future to the GC is safer than pooling under its feet.
			return
		}
		f.resolve.Do(func() {
			if f.pc.ch != nil {
				f.pc.n.abandonCall(f.pc.seq, f.pc.ch)
				f.pc.ch = nil
			}
			f.pc.sp.Fail("abandoned")
			f.pc.sp.End()
			f.complete(nil, fmt.Errorf("rmi: %s: future released before Wait", f.pc.cs.Name))
		})
	}
	c := f.c
	f.pc = pendingCall{}
	f.vals, f.err, f.c = nil, nil, nil
	c.futPool.Put(f)
}

// newFuture draws a recycled Future and re-arms it.
func (c *Cluster) newFuture() *Future {
	var f *Future
	if v := c.futPool.Get(); v != nil {
		f = v.(*Future)
	} else {
		f = &Future{}
	}
	f.resolve = sync.Once{}
	f.drive = sync.Once{}
	f.resolved = false
	f.driving = false
	f.promised = false
	f.done = make(chan struct{})
	f.c = c
	return f
}

// immediateFuture returns an already-completed future (local calls,
// send failures, fallback paths).
func (c *Cluster) immediateFuture(vals []model.Value, err error) *Future {
	f := c.newFuture()
	f.complete(vals, err)
	return f
}

// PromiseArg pipelines one argument: position Arg of the new call is
// return value Ret of the (not necessarily resolved) earlier call fut.
type PromiseArg struct {
	Arg int
	Fut *Future
	Ret int
}

// AsyncOpts selects the asynchronous variations of one InvokeAsync.
type AsyncOpts struct {
	// Promised publishes the call's outcome in the callee's promise
	// table so a later pipelined call can reference it.
	Promised bool
	// Promises pipelines argument positions from earlier promised
	// futures targeting the same node.
	Promises []PromiseArg
	// Policy overrides the cluster call policy for this call.
	Policy *CallPolicy
	// Trace, when non-zero, makes the call a child of an existing
	// sampled trace (e.g. Call.TraceContext from inside a method).
	// When zero and the call pipelines promises, the trace context of
	// the first promised future is inherited automatically, so a
	// pipelined chain shares its root's trace; otherwise the call is a
	// root candidate and head sampling decides.
	Trace wire.TraceContext
}

// InvokeAsync issues the call without waiting for its reply and
// returns a Future for the outcome. Node-local calls execute inline
// and return an already-completed future, preserving placement
// transparency. See AsyncOpts for promise pipelining.
func (cs *CallSite) InvokeAsync(n *Node, ref Ref, args []model.Value, opts AsyncOpts) *Future {
	c := n.cluster
	c.Counters.AsyncCalls.Add(1)
	pol := c.policy
	if opts.Policy != nil {
		pol = *opts.Policy
	}

	if ref.Node == n.ID {
		// Local call: resolve any pipelined arguments first (their
		// producers may be remote), then clone-invoke inline.
		if len(opts.Promises) > 0 {
			var err error
			args, err = spliceResolved(args, opts.Promises)
			if err != nil {
				return c.immediateFuture(nil, err)
			}
		}
		vals, err := cs.invokeLocal(n, ref, args)
		return c.immediateFuture(vals, err)
	}

	l := n.linkTo(ref.Node)
	pipeOK := l != nil && l.caps&wire.CapPipelining != 0

	var ex callExtras
	ex.tctx = opts.Trace
	if ex.tctx.TraceID == 0 {
		// Inherit the trace of the first pipelined producer: the chain's
		// later calls are causally downstream of it even though they are
		// issued before it resolves. pc.tctx is written before the
		// producer's future is returned and never mutated, so this read
		// does not race its resolution.
		for _, p := range opts.Promises {
			if p.Fut != nil && p.Fut.pc.tctx.TraceID != 0 {
				ex.tctx = p.Fut.pc.tctx
				break
			}
		}
	}
	if opts.Promised && pipeOK {
		ex.promised = true
	}
	if len(opts.Promises) > 0 {
		handles, ok := promiseHandles(n, ref, args, opts.Promises, pipeOK)
		if ok {
			ex.handles = handles
		} else {
			// Capability or eligibility fallback: wait for the producer
			// futures here and ship plain values. Slower (the chain
			// round-trips) but semantically identical.
			c.Counters.PipelineFallbacks.Add(1)
			var err error
			args, err = spliceResolved(args, opts.Promises)
			if err != nil {
				return c.immediateFuture(nil, err)
			}
		}
	}

	f := c.newFuture()
	if err := cs.startRemote(&f.pc, n, ref, args, pol, ex); err != nil {
		f.complete(nil, err)
		return f
	}
	if ex.promised {
		c.Counters.PromisedCalls.Add(1)
		f.promised = true
	}
	if f.pc.sp != nil {
		f.pc.issued = trace.Now()
	}
	return f
}

// promiseHandles validates the pipelined arguments and builds their
// wire handles. All-or-nothing: one ineligible promise demotes the
// whole call to the resolve-then-send fallback (mixing spliced and
// parked positions would complicate the callee for no win).
func promiseHandles(n *Node, ref Ref, args []model.Value, ps []PromiseArg, pipeOK bool) ([]serial.PromiseHandle, bool) {
	if !pipeOK || len(ps) > serial.MaxPromiseHandles {
		return nil, false
	}
	handles := make([]serial.PromiseHandle, 0, len(ps))
	seen := make(map[int]bool, len(ps))
	for _, p := range ps {
		fut := p.Fut
		if fut == nil || p.Arg < 0 || p.Arg >= len(args) || seen[p.Arg] {
			return nil, false
		}
		// Eligible producers: issued by this caller, to this callee,
		// with the promised flag on the wire — the callee's table is
		// keyed (from, seq), so anything else cannot resolve there.
		if !fut.promised || fut.pc.n != n || fut.pc.ref.Node != ref.Node {
			return nil, false
		}
		if p.Ret < 0 || p.Ret >= serial.MaxPromiseHandles {
			return nil, false
		}
		seen[p.Arg] = true
		handles = append(handles, serial.PromiseHandle{Arg: int32(p.Arg), Seq: fut.pc.seq, Ret: int32(p.Ret)})
	}
	return handles, true
}

// spliceResolved waits out the producer futures and substitutes their
// results into a private copy of args (the fallback path).
func spliceResolved(args []model.Value, ps []PromiseArg) ([]model.Value, error) {
	out := make([]model.Value, len(args))
	copy(out, args)
	for _, p := range ps {
		if p.Fut == nil || p.Arg < 0 || p.Arg >= len(out) {
			return nil, fmt.Errorf("rmi: invalid promise argument %d", p.Arg)
		}
		vals, err := p.Fut.Wait()
		if err != nil {
			return nil, fmt.Errorf("rmi: promised argument %d failed: %w", p.Arg, err)
		}
		if p.Ret < 0 || p.Ret >= len(vals) {
			return nil, fmt.Errorf("rmi: promised argument %d: no return value %d", p.Arg, p.Ret)
		}
		out[p.Arg] = vals[p.Ret]
	}
	return out, nil
}

// InvokeOneWay fires the call and forgets it: no reply frame, no
// result, at-most-once delivery. Callee-side failures are counted
// (OneWayErrors) and dumped to the flight recorder, never returned.
// The error reported here covers only the local send path. On links
// whose peer did not negotiate one-way support the call demotes to a
// synchronous invocation whose result is discarded.
func (cs *CallSite) InvokeOneWay(n *Node, ref Ref, args []model.Value) error {
	c := n.cluster
	c.Counters.OneWayCalls.Add(1)
	if ref.Node == n.ID {
		// Local fire-and-forget keeps fire-and-forget error semantics:
		// the failure is recorded, not returned.
		if _, err := cs.invokeLocal(n, ref, args); err != nil {
			c.Counters.OneWayErrors.Add(1)
			n.tracer.DumpFailure("oneway-error")
		}
		return nil
	}
	l := n.linkTo(ref.Node)
	if l == nil || l.caps&wire.CapOneWay == 0 {
		// Peer does not speak one-way: demote to a discarded synchronous
		// call (costs the round trip, keeps the semantics).
		if _, err := cs.invokeRemote(n, ref, args, c.policy); err != nil {
			c.Counters.OneWayErrors.Add(1)
			n.tracer.DumpFailure("oneway-error")
		}
		return nil
	}
	var pc pendingCall
	return cs.startRemote(&pc, n, ref, args, c.policy, callExtras{oneWay: true})
}
