package rmi

import (
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"cormi/internal/model"
	"cormi/internal/race"
	"cormi/internal/serial"
	"cormi/internal/transport"
	"cormi/internal/wire"
)

func TestInvokeAsyncBasic(t *testing.T) {
	e := newEnv(t, 2)
	var execs atomic.Int64
	ref := e.c.Node(1).Export(countingService(&execs))
	cs := bumpSite(t, e.c)

	f := cs.InvokeAsync(e.c.Node(0), ref, []model.Value{model.Int(41)}, AsyncOpts{})
	vals, err := f.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if vals[0].I != 42 {
		t.Fatalf("got %d, want 42", vals[0].I)
	}
	// Wait memoizes: a second Wait returns the same outcome.
	again, err := f.Wait()
	if err != nil || again[0].I != 42 {
		t.Fatalf("second Wait: vals=%v err=%v", again, err)
	}
	f.Release()
	if e.c.Counters.AsyncCalls.Load() != 1 {
		t.Errorf("AsyncCalls = %d, want 1", e.c.Counters.AsyncCalls.Load())
	}
	if execs.Load() != 1 {
		t.Errorf("executed %d times, want 1", execs.Load())
	}
}

func TestInvokeAsyncLocalIsImmediate(t *testing.T) {
	e := newEnv(t, 2)
	var execs atomic.Int64
	ref := e.c.Node(0).Export(countingService(&execs))
	cs := bumpSite(t, e.c)
	f := cs.InvokeAsync(e.c.Node(0), ref, []model.Value{model.Int(1)}, AsyncOpts{})
	select {
	case <-f.Done():
	default:
		t.Fatal("local async call not immediately resolved")
	}
	vals, err := f.Wait()
	if err != nil || vals[0].I != 2 {
		t.Fatalf("local async: vals=%v err=%v", vals, err)
	}
	f.Release()
}

func TestFutureDoneStartsDriver(t *testing.T) {
	e := newEnv(t, 2)
	var execs atomic.Int64
	ref := e.c.Node(1).Export(countingService(&execs))
	cs := bumpSite(t, e.c)
	f := cs.InvokeAsync(e.c.Node(0), ref, []model.Value{model.Int(9)}, AsyncOpts{})
	// Nobody calls Wait: Done's driver goroutine must complete the call.
	select {
	case <-f.Done():
	case <-time.After(5 * time.Second):
		t.Fatal("Done channel never closed")
	}
	if vals, err := f.Wait(); err != nil || vals[0].I != 10 {
		t.Fatalf("after Done: vals=%v err=%v", vals, err)
	}
	f.Release()
}

func TestFutureReleaseWithoutWaitAbandons(t *testing.T) {
	e := newEnv(t, 2)
	var execs atomic.Int64
	ref := e.c.Node(1).Export(countingService(&execs))
	cs := bumpSite(t, e.c)
	for i := 0; i < 20; i++ {
		f := cs.InvokeAsync(e.c.Node(0), ref, []model.Value{model.Int(int64(i))}, AsyncOpts{})
		f.Release()
	}
	// The abandoned calls still execute (they were on the wire); the
	// runtime stays healthy and a fresh call still works.
	vals, err := cs.Invoke(e.c.Node(0), ref, []model.Value{model.Int(1)})
	if err != nil || vals[0].I != 2 {
		t.Fatalf("after abandons: vals=%v err=%v", vals, err)
	}
}

// pipelineEnv exports a gated producer/consumer pair for deterministic
// park-path tests: "slow" blocks on the gate before returning its
// argument + 1, "bump" returns its argument + 1 immediately.
func pipelineEnv(t *testing.T, c *Cluster, gate chan struct{}, execs *atomic.Int64) Ref {
	t.Helper()
	return c.Node(1).Export(&Service{
		Name: "Pipe",
		Methods: map[string]Method{
			"slow": func(call *Call, args []model.Value) []model.Value {
				<-gate
				execs.Add(1)
				return []model.Value{model.Int(args[0].I + 1)}
			},
			"bump": func(call *Call, args []model.Value) []model.Value {
				execs.Add(1)
				return []model.Value{model.Int(args[0].I + 1)}
			},
		},
	})
}

func pipeSite(t *testing.T, c *Cluster, method string) *CallSite {
	t.Helper()
	name := "t.pipe." + method
	return c.MustNewCallSite(LevelSite, SiteSpec{
		Name: name, Method: method,
		ArgPlans: []*serial.Plan{intPlan(name)},
		RetPlans: []*serial.Plan{intPlan(name)},
	})
}

func TestPromisePipelineParksAndResolves(t *testing.T) {
	e := newEnv(t, 2)
	gate := make(chan struct{})
	var execs atomic.Int64
	ref := pipelineEnv(t, e.c, gate, &execs)
	slow := pipeSite(t, e.c, "slow")
	bump := pipeSite(t, e.c, "bump")

	// The producer blocks at the callee until the gate opens, so the
	// dependent call must arrive first and park on the promise.
	f1 := slow.InvokeAsync(e.c.Node(0), ref, []model.Value{model.Int(10)}, AsyncOpts{Promised: true})
	f2 := bump.InvokeAsync(e.c.Node(0), ref, []model.Value{{}}, AsyncOpts{
		Promises: []PromiseArg{{Arg: 0, Fut: f1}},
	})
	deadline := time.Now().Add(5 * time.Second)
	for e.c.Counters.PromiseParks.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("dependent call never parked on the unresolved promise")
		}
		time.Sleep(time.Millisecond)
	}
	close(gate)
	vals, err := f2.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if vals[0].I != 12 {
		t.Fatalf("pipelined chain returned %d, want 12", vals[0].I)
	}
	if _, err := f1.Wait(); err != nil {
		t.Fatalf("producer future: %v", err)
	}
	f1.Release()
	f2.Release()
	if e.c.Counters.PipelinedCalls.Load() != 1 {
		t.Errorf("PipelinedCalls = %d, want 1", e.c.Counters.PipelinedCalls.Load())
	}
	if e.c.Counters.PromisedCalls.Load() != 1 {
		t.Errorf("PromisedCalls = %d, want 1", e.c.Counters.PromisedCalls.Load())
	}
}

func TestPipelineFallbackWithoutCapability(t *testing.T) {
	// The callee's pipelining capability is masked: the same program
	// must still compute the right answer via resolve-then-send, and
	// count the demotions.
	e := newEnv(t, 2, WithoutCaps(1, wire.CapPipelining))
	var execs atomic.Int64
	ref := e.c.Node(1).Export(countingService(&execs))
	cs := bumpSite(t, e.c)

	f1 := cs.InvokeAsync(e.c.Node(0), ref, []model.Value{model.Int(1)}, AsyncOpts{Promised: true})
	f2 := cs.InvokeAsync(e.c.Node(0), ref, []model.Value{{}}, AsyncOpts{
		Promises: []PromiseArg{{Arg: 0, Fut: f1}},
	})
	vals, err := f2.Wait()
	if err != nil || vals[0].I != 3 {
		t.Fatalf("fallback chain: vals=%v err=%v", vals, err)
	}
	f1.Release()
	f2.Release()
	if e.c.Counters.PipelineFallbacks.Load() == 0 {
		t.Error("no PipelineFallbacks counted on a non-pipelining link")
	}
	if e.c.Counters.PipelinedCalls.Load() != 0 {
		t.Errorf("PipelinedCalls = %d on a non-pipelining link", e.c.Counters.PipelinedCalls.Load())
	}
}

func TestOneWaySkipsReply(t *testing.T) {
	e := newEnv(t, 2)
	var execs atomic.Int64
	ref := e.c.Node(1).Export(countingService(&execs))
	cs := bumpSite(t, e.c)

	frames := e.c.Counters.NetFrames.Load()
	if err := cs.InvokeOneWay(e.c.Node(0), ref, []model.Value{model.Int(1)}); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for execs.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("one-way call never executed")
		}
		time.Sleep(time.Millisecond)
	}
	// Give a mistaken reply time to hit the wire, then check none did.
	time.Sleep(10 * time.Millisecond)
	if d := e.c.Counters.NetFrames.Load() - frames; d != 1 {
		t.Errorf("one-way call cost %d frames, want 1 (no reply)", d)
	}
	if e.c.Counters.OneWayCalls.Load() != 1 {
		t.Errorf("OneWayCalls = %d, want 1", e.c.Counters.OneWayCalls.Load())
	}
}

func TestOneWayErrorIsCountedNotReturned(t *testing.T) {
	e := newEnv(t, 2)
	ref := e.c.Node(1).Export(&Service{Name: "Bomb", Methods: map[string]Method{
		"boom": func(call *Call, args []model.Value) []model.Value { panic("oneway kaboom") },
	}})
	cs := e.c.MustNewCallSite(LevelSite, SiteSpec{
		Name: "t.owboom", Method: "boom", NumRet: 0, IgnoreRet: true,
	})
	if err := cs.InvokeOneWay(e.c.Node(0), ref, nil); err != nil {
		t.Fatalf("one-way returned callee error: %v", err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for e.c.Counters.OneWayErrors.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("callee panic never surfaced in OneWayErrors")
		}
		time.Sleep(time.Millisecond)
	}
}

func TestOneWayDemotesWithoutCapability(t *testing.T) {
	e := newEnv(t, 2, WithoutCaps(1, wire.CapOneWay))
	var execs atomic.Int64
	ref := e.c.Node(1).Export(countingService(&execs))
	cs := bumpSite(t, e.c)
	if err := cs.InvokeOneWay(e.c.Node(0), ref, []model.Value{model.Int(1)}); err != nil {
		t.Fatal(err)
	}
	// Demoted to a discarded synchronous call: execution has already
	// happened by the time InvokeOneWay returns.
	if execs.Load() != 1 {
		t.Fatalf("executed %d times, want 1", execs.Load())
	}
}

func TestOneWayOverPartitionStaysSilent(t *testing.T) {
	e := newEnv(t, 2, WithFaults(transport.FaultConfig{Seed: 11}))
	var execs atomic.Int64
	ref := e.c.Node(1).Export(countingService(&execs))
	cs := bumpSite(t, e.c)

	fn := e.c.Network().(*transport.FaultyNetwork)
	fn.Partition(0, 1)
	// Fire-and-forget across a partition: no error, no execution, no
	// retransmission — at-most-once means the loss is silent.
	if err := cs.InvokeOneWay(e.c.Node(0), ref, []model.Value{model.Int(1)}); err != nil {
		t.Fatalf("one-way across partition returned %v", err)
	}
	time.Sleep(20 * time.Millisecond)
	if execs.Load() != 0 {
		t.Fatal("one-way call executed across a partition")
	}
	// After healing, the node is still healthy.
	fn.Heal(0, 1)
	vals, err := cs.Invoke(e.c.Node(0), ref, []model.Value{model.Int(1)})
	if err != nil || vals[0].I != 2 {
		t.Fatalf("after heal: vals=%v err=%v", vals, err)
	}
}

func TestPipelinedChainUnderFaults(t *testing.T) {
	// Drop + duplicate both the producer and dependent call frames (and
	// their replies): a dropped producer must be retransmitted by its
	// own waiter and unpark the dependent; a duplicated one must be
	// absorbed by dedup without re-splicing the promise. Every link of
	// every chain still executes exactly once.
	e := newEnv(t, 2,
		WithFaults(transport.FaultConfig{
			Seed:       13,
			FaultRates: transport.FaultRates{Drop: 0.2, Dup: 0.2},
		}),
		WithCallPolicy(CallPolicy{Timeout: 25 * time.Millisecond, Retries: 20, Backoff: time.Millisecond}),
	)
	var execs atomic.Int64
	ref := e.c.Node(1).Export(countingService(&execs))
	cs := bumpSite(t, e.c)

	const depth, chains = 5, 10
	for it := 0; it < chains; it++ {
		futs := make([]*Future, depth)
		futs[0] = cs.InvokeAsync(e.c.Node(0), ref, []model.Value{model.Int(int64(it))}, AsyncOpts{Promised: true})
		for d := 1; d < depth; d++ {
			futs[d] = cs.InvokeAsync(e.c.Node(0), ref, []model.Value{{}}, AsyncOpts{
				Promised: d < depth-1,
				Promises: []PromiseArg{{Arg: 0, Fut: futs[d-1]}},
			})
		}
		// Drive every future: under loss, the retransmit of a dropped
		// producer frame comes from that producer's own waiter.
		for d := 0; d < depth; d++ {
			vals, err := futs[d].Wait()
			if err != nil {
				t.Fatalf("chain %d link %d: %v", it, d, err)
			}
			if want := int64(it + d + 1); vals[0].I != want {
				t.Fatalf("chain %d link %d: got %d, want %d", it, d, vals[0].I, want)
			}
		}
		for _, f := range futs {
			f.Release()
		}
	}
	if got := execs.Load(); got != chains*depth {
		t.Fatalf("method executed %d times, want exactly %d", got, chains*depth)
	}
	if e.c.Counters.Retries.Load() == 0 {
		t.Error("20%% drop produced no retries; faults not exercised")
	}
}

func TestAbandonedTimeoutsDoNotLeakBuffers(t *testing.T) {
	// Regression: a reply racing in exactly as its caller abandons the
	// timed-out call used to strand the pooled reply channel (and the
	// reply payload) forever. Hammer the race window — server latency
	// straddling the call deadline — and require the frame pool's
	// get/put balance to return to its baseline at quiescence.
	e := newEnv(t, 2)
	delay := make(chan time.Duration, 256)
	ref := e.c.Node(1).Export(&Service{Name: "Laggy", Methods: map[string]Method{
		"lag": func(call *Call, args []model.Value) []model.Value {
			time.Sleep(<-delay)
			return []model.Value{args[0]}
		},
	}})
	name := "t.lag.1"
	cs := e.c.MustNewCallSite(LevelSite, SiteSpec{
		Name: name, Method: "lag",
		ArgPlans: []*serial.Plan{intPlan(name)},
		RetPlans: []*serial.Plan{intPlan(name)},
	})

	before := wire.Stats().Outstanding
	pol := CallPolicy{Timeout: 2 * time.Millisecond}
	const calls = 120
	for i := 0; i < calls; i++ {
		// Latencies straddle the 2ms deadline so some replies arrive
		// just as the caller gives up.
		delay <- time.Duration(i%5) * time.Millisecond
		_, err := cs.InvokeWithPolicy(e.c.Node(0), ref, []model.Value{model.Int(int64(i))}, pol)
		if err != nil && !errors.Is(err, ErrTimeout) {
			t.Fatalf("call %d: %v", i, err)
		}
	}
	// Quiescence: the last late replies need their server sleeps to
	// expire and the frames to be drained as stale.
	deadline := time.Now().Add(5 * time.Second)
	for wire.Stats().Outstanding > before {
		if time.Now().After(deadline) {
			t.Fatalf("frame pool leak: outstanding %d > baseline %d after quiescence",
				wire.Stats().Outstanding, before)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestBatchingCoalescesAndStaysCorrect(t *testing.T) {
	e := newEnv(t, 2, WithBatching(BatchConfig{}))
	var execs atomic.Int64
	ref := e.c.Node(1).Export(countingService(&execs))
	cs := bumpSite(t, e.c)

	frames := e.c.Counters.NetFrames.Load()
	const depth = 8
	futs := make([]*Future, depth)
	futs[0] = cs.InvokeAsync(e.c.Node(0), ref, []model.Value{model.Int(0)}, AsyncOpts{Promised: true})
	for d := 1; d < depth; d++ {
		futs[d] = cs.InvokeAsync(e.c.Node(0), ref, []model.Value{{}}, AsyncOpts{
			Promised: d < depth-1,
			Promises: []PromiseArg{{Arg: 0, Fut: futs[d-1]}},
		})
	}
	vals, err := futs[depth-1].Wait()
	if err != nil || vals[0].I != depth {
		t.Fatalf("batched chain: vals=%v err=%v", vals, err)
	}
	for _, f := range futs {
		f.Release()
	}
	e.c.FlushBatches()
	if d := e.c.Counters.NetFrames.Load() - frames; d >= 2*depth {
		t.Errorf("batching sent %d physical frames for %d calls; coalescing inert", d, depth)
	}
	batched, flushes := e.c.BatchStats()
	if batched == 0 || flushes == 0 {
		t.Errorf("batch counters inert: batched=%d flushes=%d", batched, flushes)
	}
	if execs.Load() != depth {
		t.Errorf("executed %d times, want %d", execs.Load(), depth)
	}
}

// TestAsyncSteadyStateAllocs bounds the per-call allocation overhead of
// the future layer: one pooled Future re-arm (its done channel) on top
// of the synchronous path's budget.
func TestAsyncSteadyStateAllocs(t *testing.T) {
	if race.Enabled {
		t.Skip("race instrumentation allocates on otherwise allocation-free paths")
	}
	e := newEnv(t, 2)
	var execs atomic.Int64
	ref := e.c.Node(1).Export(countingService(&execs))
	cs := bumpSite(t, e.c)
	caller := e.c.Node(0)
	argv := []model.Value{model.Int(7)}
	invoke := func() {
		f := cs.InvokeAsync(caller, ref, argv, AsyncOpts{})
		if _, err := f.Wait(); err != nil {
			t.Fatal(err)
		}
		f.Release()
	}
	for i := 0; i < 50; i++ {
		invoke()
	}
	avg := testing.AllocsPerRun(300, invoke)
	t.Logf("async: %.2f allocs per invocation", avg)
	if avg > 12 {
		t.Fatalf("async path allocates %.2f per call, budget 12", avg)
	}
}
