package rmi

import (
	"testing"

	"cormi/internal/model"
	"cormi/internal/serial"
)

// Tests for the optimization audit layer: per-call-site counters
// (Cluster.SiteStats) and the sampled runtime claim checker
// (WithClaimCheck).

func TestSiteStatsCounting(t *testing.T) {
	e := newEnv(t, 2)
	ref := e.c.Node(1).Export(e.sumService())
	cs := e.c.MustNewCallSite(LevelSiteReuseCycle, SiteSpec{
		Name: "t.sum.1", Method: "sum",
		ArgPlans: []*serial.Plan{e.listPlan("t.sum.1", false, true)},
		RetPlans: []*serial.Plan{intPlan("t.sum.1")},
	})
	for i := 0; i < 2; i++ {
		if _, err := cs.Invoke(e.c.Node(0), ref, []model.Value{model.Ref(e.makeList(5))}); err != nil {
			t.Fatal(err)
		}
	}
	localRef := e.c.Node(0).Export(e.sumService())
	if _, err := cs.Invoke(e.c.Node(0), localRef, []model.Value{model.Ref(e.makeList(5))}); err != nil {
		t.Fatal(err)
	}

	ss := e.c.SiteStats()
	if len(ss) != 1 {
		t.Fatalf("SiteStats returned %d entries, want 1", len(ss))
	}
	s := ss[0]
	if s.Site != "t.sum.1" {
		t.Errorf("site name = %q", s.Site)
	}
	if s.Calls != 3 || s.LocalCalls != 1 {
		t.Errorf("calls = %d (local %d), want 3 (1)", s.Calls, s.LocalCalls)
	}
	if s.WireBytes <= 0 {
		t.Errorf("wire bytes = %d, want > 0", s.WireBytes)
	}
	// The second remote call overwrites the first call's cached
	// argument graphs on the callee.
	if s.ReuseHits < 1 {
		t.Errorf("reuse hits = %d, want >= 1", s.ReuseHits)
	}
	if s.ReuseMisses < 1 {
		t.Errorf("reuse misses = %d, want >= 1", s.ReuseMisses)
	}
	// One elided argument table per call (the ret plan is primitive).
	if s.CycleTablesAvoided != 3 {
		t.Errorf("cycle tables avoided = %d, want 3", s.CycleTablesAvoided)
	}
	// Audit mode is off: no checks, no violations.
	if s.ClaimChecks != 0 || s.ClaimViolations != 0 {
		t.Errorf("claim counters = %d/%d, want 0/0", s.ClaimChecks, s.ClaimViolations)
	}
}

func TestClaimCheckCleanRun(t *testing.T) {
	e := newEnv(t, 2, WithClaimCheck(ClaimCheckPolicy{Every: 1}))
	ref := e.c.Node(1).Export(e.sumService())
	cs := e.c.MustNewCallSite(LevelSiteReuseCycle, SiteSpec{
		Name: "t.sum.1", Method: "sum",
		ArgPlans: []*serial.Plan{e.listPlan("t.sum.1", false, true)},
		RetPlans: []*serial.Plan{intPlan("t.sum.1")},
	})
	for i := 0; i < 5; i++ {
		rets, err := cs.Invoke(e.c.Node(0), ref, []model.Value{model.Ref(e.makeList(4))})
		if err != nil {
			t.Fatal(err)
		}
		if rets[0].I != 6 {
			t.Fatalf("sum = %d, want 6", rets[0].I)
		}
	}
	snap := e.c.Counters.Snapshot()
	if snap.ClaimChecks == 0 {
		t.Error("claim checker sampled no calls at Every=1")
	}
	if snap.ClaimViolations != 0 {
		t.Errorf("claim violations = %d on honest claims", snap.ClaimViolations)
	}
	if s := e.c.SiteStats()[0]; s.ClaimChecks == 0 || s.ClaimViolations != 0 {
		t.Errorf("site claim counters = %d/%d, want >0/0", s.ClaimChecks, s.ClaimViolations)
	}
}

// cyclicPair builds a two-node reference cycle a -> b -> a.
func (e *testEnv) cyclicPair() *model.Object {
	a := model.New(e.node)
	b := model.New(e.node)
	a.Set("v", model.Int(1))
	b.Set("v", model.Int(2))
	a.Set("next", model.Ref(b))
	b.Set("next", model.Ref(a))
	return a
}

// TestClaimCheckCatchesViolationRemote feeds a genuinely cyclic graph
// to a call site whose plans claim acyclicity. Without the audit-mode
// fallback the writer would never terminate; with it, the violation is
// counted and the message falls back to the cycle table, so the call
// still completes with identity preserved in both directions.
func TestClaimCheckCatchesViolationRemote(t *testing.T) {
	e := newEnv(t, 2, WithClaimCheck(ClaimCheckPolicy{Every: 1}))
	ref := e.c.Node(1).Export(e.sumService())
	cs := e.c.MustNewCallSite(LevelSiteCycle, SiteSpec{
		Name: "t.mut.1", Method: "mutate",
		ArgPlans: []*serial.Plan{e.listPlan("t.mut.1", false, false)},
		RetPlans: []*serial.Plan{e.listPlan("t.mut.1r", false, false)},
	})
	rets, err := cs.Invoke(e.c.Node(0), ref, []model.Value{model.Ref(e.cyclicPair())})
	if err != nil {
		t.Fatal(err)
	}
	r := rets[0].O
	if r.Get("v").I != -1 {
		t.Errorf("mutate lost: v = %d", r.Get("v").I)
	}
	if r.GetRef("next").GetRef("next") != r {
		t.Error("cycle identity lost through the fallback round trip")
	}
	snap := e.c.Counters.Snapshot()
	// Both directions serialize the cyclic graph: the caller's argument
	// write and the callee's reply write each refute the claim.
	if snap.ClaimViolations < 2 {
		t.Errorf("claim violations = %d, want >= 2", snap.ClaimViolations)
	}
	if s := e.c.SiteStats()[0]; s.ClaimViolations != snap.ClaimViolations {
		t.Errorf("site violations = %d, global = %d", s.ClaimViolations, snap.ClaimViolations)
	}
}

// TestClaimCheckCatchesViolationLocal exercises the same lie on the
// node-local cloning path.
func TestClaimCheckCatchesViolationLocal(t *testing.T) {
	e := newEnv(t, 1, WithClaimCheck(ClaimCheckPolicy{Every: 1}))
	ref := e.c.Node(0).Export(e.sumService())
	cs := e.c.MustNewCallSite(LevelSiteCycle, SiteSpec{
		Name: "t.mut.1", Method: "mutate",
		ArgPlans: []*serial.Plan{e.listPlan("t.mut.1", false, false)},
		RetPlans: []*serial.Plan{e.listPlan("t.mut.1r", false, false)},
	})
	rets, err := cs.Invoke(e.c.Node(0), ref, []model.Value{model.Ref(e.cyclicPair())})
	if err != nil {
		t.Fatal(err)
	}
	r := rets[0].O
	if r.GetRef("next").GetRef("next") != r {
		t.Error("cycle identity lost through the local clone fallback")
	}
	if snap := e.c.Counters.Snapshot(); snap.ClaimViolations < 2 {
		t.Errorf("claim violations = %d, want >= 2 (args + rets)", snap.ClaimViolations)
	}
}

// TestClaimCheckSampling checks the 1-in-N counter sample: with
// Every=4 and 8 calls, exactly 2 caller-side audits fire (the callee
// draws from the same cluster-wide counter, so the total is exact).
func TestClaimCheckSampling(t *testing.T) {
	e := newEnv(t, 2, WithClaimCheck(ClaimCheckPolicy{Every: 4}))
	ref := e.c.Node(1).Export(e.sumService())
	cs := e.c.MustNewCallSite(LevelSiteCycle, SiteSpec{
		Name: "t.sum.1", Method: "sum",
		ArgPlans: []*serial.Plan{e.listPlan("t.sum.1", false, false)},
		RetPlans: []*serial.Plan{intPlan("t.sum.1")},
	})
	for i := 0; i < 8; i++ {
		if _, err := cs.Invoke(e.c.Node(0), ref, []model.Value{model.Ref(e.makeList(3))}); err != nil {
			t.Fatal(err)
		}
	}
	// 8 calls tick the counter twice each (caller + callee): 16 ticks
	// at Every=4 is exactly 4 audited decisions.
	if snap := e.c.Counters.Snapshot(); snap.ClaimChecks != 4 {
		t.Errorf("claim checks = %d, want 4", snap.ClaimChecks)
	}
}
