package rmi

import (
	"sync"

	"cormi/internal/model"
)

// BarrierMethod is the method name exported by NewBarrierService.
const BarrierMethod = "await"

// NewBarrierService returns a remotely invokable barrier for the given
// number of parties: "await" blocks until all parties have arrived,
// then releases everyone. LU uses it exactly as the paper describes
// ("updates are flushed to machine 0 and a barrier is entered").
//
// Virtual time: every party's reply is floored (Call.WaitUntil) at the
// latest virtual arrival of its generation, so all waiters leave the
// barrier at the same virtual instant without being charged CPU time.
func NewBarrierService(parties int) *Service {
	var mu sync.Mutex
	cond := sync.NewCond(&mu)
	gen := 0
	type genState struct {
		release int64 // latest virtual arrival
		arrived int
		pending int // parties that still need to read release
	}
	states := map[int]*genState{}
	return &Service{
		Name: "Barrier",
		Methods: map[string]Method{
			BarrierMethod: func(call *Call, args []model.Value) []model.Value {
				mu.Lock()
				defer mu.Unlock()
				g := gen
				st := states[g]
				if st == nil {
					st = &genState{}
					states[g] = st
				}
				if call.Start() > st.release {
					st.release = call.Start()
				}
				st.arrived++
				st.pending++
				if st.arrived == parties {
					gen++
					cond.Broadcast()
				} else {
					for g == gen {
						cond.Wait()
					}
				}
				// Every party leaves at the latest arrival: a
				// condition wait, not CPU time.
				call.WaitUntil(st.release)
				st.pending--
				if st.pending == 0 {
					delete(states, g)
				}
				return nil
			},
		},
	}
}
