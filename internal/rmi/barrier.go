package rmi

import (
	"sync"

	"cormi/internal/model"
)

// BarrierMethod is the method name exported by NewBarrierService.
const BarrierMethod = "await"

// NewBarrierService returns a remotely invokable barrier for the given
// number of parties: "await" blocks until all parties have arrived,
// then releases everyone. LU uses it exactly as the paper describes
// ("updates are flushed to machine 0 and a barrier is entered").
//
// Virtual time: every party's reply is floored (Call.WaitUntil) at the
// latest virtual arrival of its generation, so all waiters leave the
// barrier at the same virtual instant without being charged CPU time.
//
// An early party also waits on cluster shutdown: if the cluster closes
// before the generation completes (a peer timed out across a lossy
// link, the run was abandoned), the waiter panics — surfaced to its
// caller as a remote exception — instead of blocking forever on
// parties that will never arrive.
func NewBarrierService(parties int) *Service {
	var mu sync.Mutex
	gen := 0
	type genState struct {
		release int64 // latest virtual arrival
		arrived int
		pending int           // parties that still need to read release
		done    chan struct{} // closed when the generation releases
	}
	states := map[int]*genState{}
	return &Service{
		Name: "Barrier",
		Methods: map[string]Method{
			BarrierMethod: func(call *Call, args []model.Value) []model.Value {
				mu.Lock()
				g := gen
				st := states[g]
				if st == nil {
					st = &genState{done: make(chan struct{})}
					states[g] = st
				}
				if call.Start() > st.release {
					st.release = call.Start()
				}
				st.arrived++
				st.pending++
				if st.arrived == parties {
					gen++
					close(st.done)
				}
				mu.Unlock()

				select {
				case <-st.done:
				case <-call.Node.Cluster().Done():
					mu.Lock()
					st.pending--
					mu.Unlock()
					panic("barrier: cluster closed before all parties arrived")
				}

				mu.Lock()
				defer mu.Unlock()
				// Every party leaves at the latest arrival: a condition
				// wait, not CPU time. release is final once done closed.
				call.WaitUntil(st.release)
				st.pending--
				if st.pending == 0 {
					delete(states, g)
				}
				return nil
			},
		},
	}
}
