package rmi

import (
	"encoding/binary"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"cormi/internal/trace"
	"cormi/internal/transport"
	"cormi/internal/wire"
)

// Per-link outbound frame batching.
//
// Small RMI frames — chained-workload calls, bare acknowledgments —
// pay a full physical frame each. The batcher coalesces them: small
// outbound frames to the same peer accumulate in one msgBatch
// container and flush as a single physical frame when the container
// reaches its byte/count budget or the flush window elapses. Each
// sub-frame keeps its own CRC seal and its own virtual/wall send
// timestamps (wire.AppendBatchEntry), so the receiver's causal
// timeline and per-call tracing are identical to unbatched delivery;
// only the physical frame count changes. Batching is opt-in
// (WithBatching) and per-link capability gated: a peer whose HELLO
// does not advertise wire.CapBatching receives plain frames.
//
// Ownership: enqueue copies the sealed sub-frame into the pooled
// container and immediately returns the caller's buffer to the wire
// pool — the Send-takes-ownership contract holds whether a frame is
// batched or sent directly.

// BatchConfig tunes the per-link batcher. Zero fields take defaults.
type BatchConfig struct {
	// FlushEvery is the maximum time a frame waits in the container
	// before a wall-clock flush (default 100µs).
	FlushEvery time.Duration
	// MaxBytes flushes the container when it reaches this size
	// (default 4096).
	MaxBytes int
	// MaxFrames flushes the container when it holds this many
	// sub-frames (default 16).
	MaxFrames int
	// SmallFrameMax is the largest frame eligible for batching; bigger
	// frames bypass the batcher entirely (default 512).
	SmallFrameMax int
}

func (cfg BatchConfig) withDefaults() BatchConfig {
	if cfg.FlushEvery <= 0 {
		cfg.FlushEvery = 100 * time.Microsecond
	}
	if cfg.MaxBytes <= 0 {
		cfg.MaxBytes = 4096
	}
	if cfg.MaxFrames <= 0 {
		cfg.MaxFrames = 16
	}
	if cfg.MaxFrames > wire.MaxBatchEntries {
		cfg.MaxFrames = wire.MaxBatchEntries
	}
	if cfg.SmallFrameMax <= 0 {
		cfg.SmallFrameMax = 512
	}
	return cfg
}

// WithBatching enables per-link coalescing of small outbound frames
// under the given configuration (zero fields take defaults). Batching
// trades up to cfg.FlushEvery of added latency per small frame for a
// sub-1 physical frames-per-operation wire profile under heavy small-
// call traffic.
func WithBatching(cfg BatchConfig) Option {
	return func(o *clusterOpts) {
		c := cfg.withDefaults()
		o.batch = &c
	}
}

// linkBatcher coalesces one node's small outbound frames to one peer.
type linkBatcher struct {
	n   *Node
	to  int
	cfg BatchConfig
	// site is the tracer pseudo-site ("link.<from>-><to>") flush spans
	// are recorded under, rendered once at construction so the flush
	// path never formats.
	site string

	mu      sync.Mutex
	pending *wire.Message // container under construction; nil when empty
	count   int
	timer   *time.Timer
	stopped bool
	// oldestWall is the wall-clock enqueue time of the pending
	// container's first frame (set only when tracing): the flush span's
	// batch_wait phase measures from it.
	oldestWall int64

	// flushes/batched feed the per-link gauges on /links.
	flushes atomic.Int64
	batched atomic.Int64
}

func newLinkBatcher(n *Node, to int, cfg BatchConfig) *linkBatcher {
	return &linkBatcher{n: n, to: to, cfg: cfg, site: fmt.Sprintf("link.%d->%d", n.ID, to)}
}

// batcherFor routes one outbound frame: the batcher for the peer when
// batching is on, the frame is small enough, and the link negotiated
// wire.CapBatching — nil (send directly) otherwise.
func (n *Node) batcherFor(to, size int) *linkBatcher {
	if n.batchers == nil || to < 0 || to >= len(n.batchers) {
		return nil
	}
	b := n.batchers[to]
	if b == nil || size > b.cfg.SmallFrameMax {
		return nil
	}
	l := n.linkTo(to)
	if l == nil || l.caps&wire.CapBatching == 0 {
		return nil
	}
	return b
}

// send puts one sealed frame on the wire, through the link's batcher
// when the frame qualifies. This is the single choke point every
// outbound frame passes (calls, replies, dedup-cache resends), so
// stats.NetFrames counts physical frames exactly.
func (n *Node) send(pkt transport.Packet) error {
	if b := n.batcherFor(pkt.To, len(pkt.Payload)); b != nil {
		return b.enqueue(pkt)
	}
	n.cluster.Counters.NetFrames.Add(1)
	return n.ep.Send(pkt)
}

// enqueue appends one sealed frame to the pending container, flushing
// on budget. It consumes pkt.Payload (Send-takes-ownership).
func (b *linkBatcher) enqueue(pkt transport.Packet) error {
	b.mu.Lock()
	if b.stopped {
		b.mu.Unlock()
		// Cluster is closing; hand the frame to the transport directly
		// (it reports closure and owns the buffer either way).
		b.n.cluster.Counters.NetFrames.Add(1)
		return b.n.ep.Send(pkt)
	}
	if b.pending == nil {
		b.pending = wire.Get()
		b.pending.AppendByte(msgBatch)
		b.pending.AppendInt32(0) // entry count, patched at flush
		if b.n.tracer != nil {
			b.oldestWall = trace.Now()
		}
		if b.timer == nil {
			b.timer = time.AfterFunc(b.cfg.FlushEvery, b.flush)
		} else {
			b.timer.Reset(b.cfg.FlushEvery)
		}
	}
	wire.AppendBatchEntry(b.pending, pkt.TS, pkt.Wall, pkt.Payload)
	wire.PutBuf(pkt.Payload)
	b.count++
	b.batched.Add(1)
	b.n.cluster.Counters.BatchedFrames.Add(1)
	var err error
	if b.count >= b.cfg.MaxFrames || b.pending.Len() >= b.cfg.MaxBytes {
		err = b.flushLocked()
	}
	b.mu.Unlock()
	return err
}

// flush sends the pending container, if any (timer callback and
// Cluster.FlushBatches entry point).
func (b *linkBatcher) flush() {
	b.mu.Lock()
	_ = b.flushLocked()
	b.mu.Unlock()
}

func (b *linkBatcher) flushLocked() error {
	if b.pending == nil {
		return nil
	}
	m := b.pending
	count := b.count
	b.pending = nil
	b.count = 0
	if b.timer != nil {
		b.timer.Stop()
	}
	binary.LittleEndian.PutUint32(m.Bytes()[1:5], uint32(count))
	m.SealFrame()
	frame := m.Detach()
	c := b.n.cluster
	c.Counters.NetFrames.Add(1)
	c.Counters.BatchFlushes.Add(1)
	b.flushes.Add(1)
	pkt := transport.Packet{To: b.to, TS: b.n.Clock.Now(), Payload: frame}
	if b.n.tracer != nil {
		pkt.Wall = trace.Now()
		// One flush span per container on the link's pseudo-site: its
		// batch_wait phase is how long the oldest coalesced frame sat in
		// the container, the latency cost batching trades for frames.
		b.n.tracer.RecordFlush(b.site, b.n.ID, b.to, count, b.oldestWall)
	}
	return b.n.ep.Send(pkt)
}

// stopBatchers halts every batcher timer and drops pending containers
// (cluster shutdown: the invocations they carried fail with
// ErrClusterClosed regardless).
func (n *Node) stopBatchers() {
	for _, b := range n.batchers {
		if b == nil {
			continue
		}
		b.mu.Lock()
		b.stopped = true
		if b.timer != nil {
			b.timer.Stop()
		}
		if b.pending != nil {
			b.pending.Release()
			b.pending = nil
			b.count = 0
		}
		b.mu.Unlock()
	}
}

// BatchStats sums the cluster's batching activity (for tests and the
// bench harness): logical frames coalesced and containers flushed.
func (c *Cluster) BatchStats() (batched, flushes int64) {
	return c.Counters.BatchedFrames.Load(), c.Counters.BatchFlushes.Load()
}
