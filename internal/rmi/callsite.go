package rmi

import (
	"errors"
	"fmt"
	"runtime/debug"
	"time"

	"cormi/internal/model"
	"cormi/internal/serial"
	"cormi/internal/simtime"
	"cormi/internal/stats"
	"cormi/internal/trace"
	"cormi/internal/transport"
	"cormi/internal/wire"
)

// CallSite is the per-call-site stub of §3.1: it owns the argument and
// return-value serialization plans the compiler generated for exactly
// this textual call, the configuration (which optimizations are
// active), and the reuse caches. In "class" mode the plans are unused
// and serialization is fully dynamic, which reproduces the baseline.
type CallSite struct {
	ID     int32
	Name   string // e.g. "Work.go.1"
	Method string // callee method name

	cfg      serial.Config
	argPlans []*serial.Plan
	retPlans []*serial.Plan
	numRet   int
	// ignoreRet marks call sites whose return value is unused; with
	// site mode the callee sends a bare acknowledgment (§3.1).
	ignoreRet bool

	// Reuse caches are per node: the callee-side argument cache lives
	// on whichever node serves the call, the caller-side return cache
	// on whichever node issued it (the paper's static temp_arr is
	// per-JVM state).
	argCaches []serial.ReuseCache
	retCaches []serial.ReuseCache

	// argScratch/retScratch mark the value slices themselves as
	// recyclable through the reuse caches. That is sound only when
	// EVERY value is a reference covered by a §3.3 escape proof: such a
	// slice only points at graphs that are overwritten in place on the
	// next invocation anyway, so recycling it adds no observable
	// mutation. A primitive value, by contrast, is a plain result the
	// caller may legitimately retain — one primitive plan disables
	// slice recycling for the whole site.
	argScratch bool
	retScratch bool

	// statShards accumulates this site's runtime counters, one shard
	// per node. They are always on — each call does a handful of atomic
	// adds and no allocations — and are served (summed) by the obs
	// /callsites endpoint through Cluster.SiteStats. Sharding by the
	// acting node keeps the atomics uncontended (a SiteCounters block
	// is exactly one cache line) and keeps the writes off the cache
	// lines holding the read-only plan data above.
	statShards []stats.SiteCounters

	// argTablesElided/retTablesElided count the reference values per
	// message that §3.2 lets the writer serialize without allocating a
	// cycle table; each successful serialization adds them to the
	// CycleTablesAvoided counter.
	argTablesElided int64
	retTablesElided int64
}

// SiteSpec describes a call site to register.
type SiteSpec struct {
	Name      string
	Method    string
	ArgPlans  []*serial.Plan // one per argument (site mode)
	RetPlans  []*serial.Plan // one per return value (site mode)
	NumRet    int            // return value count (class mode needs it too)
	IgnoreRet bool           // return value unused at this call site
}

// NewCallSite registers a call site on the cluster under the given
// optimization level. Registration order must match across processes.
func (c *Cluster) NewCallSite(level OptLevel, spec SiteSpec) (*CallSite, error) {
	cfg := level.Config()
	scfg := serial.Config{CycleElim: cfg.CycleElim, Reuse: cfg.Reuse}
	if cfg.Site {
		scfg.Mode = serial.ModeSite
		for _, p := range spec.ArgPlans {
			if err := p.Validate(); err != nil {
				return nil, err
			}
		}
		for _, p := range spec.RetPlans {
			if err := p.Validate(); err != nil {
				return nil, err
			}
		}
	} else {
		scfg.Mode = serial.ModeClass
	}
	numRet := spec.NumRet
	if numRet == 0 && len(spec.RetPlans) > 0 {
		numRet = len(spec.RetPlans)
	}
	cs := &CallSite{
		Name:       spec.Name,
		Method:     spec.Method,
		cfg:        scfg,
		argPlans:   spec.ArgPlans,
		retPlans:   spec.RetPlans,
		numRet:     numRet,
		ignoreRet:  spec.IgnoreRet,
		argCaches:  make([]serial.ReuseCache, c.Size()),
		retCaches:  make([]serial.ReuseCache, c.Size()),
		statShards: make([]stats.SiteCounters, c.Size()),
	}
	if scfg.Mode == serial.ModeSite && scfg.Reuse {
		cs.argScratch = refPlansReusable(spec.ArgPlans)
		cs.retScratch = refPlansReusable(spec.RetPlans)
	}
	if scfg.Mode == serial.ModeSite && scfg.CycleElim {
		cs.argTablesElided = tablesElided(spec.ArgPlans)
		cs.retTablesElided = tablesElided(spec.RetPlans)
	}
	c.siteMu.Lock()
	cs.ID = int32(len(c.sites))
	c.sites = append(c.sites, cs)
	c.siteMu.Unlock()
	return cs, nil
}

// MustNewCallSite is NewCallSite panicking on invalid plans.
func (c *Cluster) MustNewCallSite(level OptLevel, spec SiteSpec) *CallSite {
	cs, err := c.NewCallSite(level, spec)
	if err != nil {
		panic(err)
	}
	return cs
}

// Config exposes the site's serializer configuration (for tests).
func (cs *CallSite) Config() serial.Config { return cs.cfg }

// Stats sums the per-node counter shards into one live snapshot.
func (cs *CallSite) Stats() stats.SiteStat {
	out := stats.SiteStat{Site: cs.Name}
	for i := range cs.statShards {
		out = out.Add(cs.statShards[i].Snapshot(cs.Name))
	}
	return out
}

// tablesElided counts the reference plans proven acyclic by §3.2 —
// each one is a cycle-table allocation the writer skips per message.
func tablesElided(plans []*serial.Plan) int64 {
	var n int64
	for _, p := range plans {
		if p != nil && p.Kind == model.FRef && !p.NeedCycle {
			n++
		}
	}
	return n
}

// claimViolated records one refuted compile-time claim: per-site and
// global counters plus a flight-recorder dump, so the evidence around
// the mis-prediction is preserved (nil tracer = no-op).
func (cs *CallSite) claimViolated(c *Cluster, st *stats.SiteCounters) {
	st.ClaimViolations.Add(1)
	c.Counters.ClaimViolations.Add(1)
	c.tracer.DumpFailure("claim-violation")
}

// writeChecked is WriteValues with the audit-mode §3.2 re-verification
// in front: on sampled calls at a cycle-eliding site the value graphs
// are walked first, and a repeated object — the static analysis
// mis-predicted the runtime heap — falls back to serializing WITH the
// cycle table. The fallback is wire-compatible (readers accept handle
// markers unconditionally), so a refuted claim becomes a counted,
// dumped event instead of silent corruption or a non-terminating
// writer.
// lp is the link's negotiated plan table (nil for local calls and
// homogeneous links); it rides the serializer config so fingerprint-
// mismatched classes take the class-level encoding.
func (cs *CallSite) writeChecked(c *Cluster, st *stats.SiteCounters, m *wire.Message, vals []model.Value, plans []*serial.Plan, audit bool, lp *serial.LinkPlans) (simtime.OpCount, error) {
	cfg := cs.cfg
	cfg.Link = lp
	if audit && cfg.Mode == serial.ModeSite && cfg.CycleElim {
		if v := serial.CheckAcyclic(vals, plans); v != nil {
			cs.claimViolated(c, st)
			cfg.CycleElim = false
			return serial.WriteValues(m, vals, plans, cfg, c.Counters)
		}
	}
	return serial.WriteValues(m, vals, plans, cfg, c.Counters)
}

// takeDonors draws the donor graphs for one deserialization from a
// reuse cache, counting the hit or miss, and — on audited calls —
// validates donor shapes against the plans first: a donor whose class
// differs from the plan's prediction refutes the §3.3 claim and is
// nil'ed so the reader allocates fresh objects instead.
func (cs *CallSite) takeDonors(c *Cluster, st *stats.SiteCounters, cache *serial.ReuseCache, plans []*serial.Plan, audit bool) ([]*model.Object, []model.Value) {
	cached, scratch := cache.Take()
	if cached == nil {
		st.ReuseMisses.Add(1)
	} else {
		st.ReuseHits.Add(1)
		if audit {
			for range serial.CheckReuseShape(cached, plans) {
				cs.claimViolated(c, st)
			}
		}
	}
	return cached, scratch
}

// refPlansReusable reports whether every plan is a reference carrying
// the escape-analysis reuse proof — the precondition for recycling the
// value slice itself (see CallSite.argScratch).
func refPlansReusable(plans []*serial.Plan) bool {
	for _, p := range plans {
		if p.Kind != model.FRef || !p.Reusable {
			return false
		}
	}
	return true
}

// Message type tags.
const (
	msgCall  = 0
	msgReply = 1
	// msgBatch is a coalesced container of sealed call/reply sub-frames
	// (see batch.go and wire.AppendBatchEntry).
	msgBatch = 2
)

// Call header flags (byte following the msgCall tag).
const (
	// callFlagRetryable marks a call whose policy may retransmit it;
	// only these calls need a cached reply for duplicate suppression on
	// a fault-free interconnect.
	callFlagRetryable = 1 << 0
	// callFlagTraced marks a call whose invoker opened a trace span.
	// The callee mirrors it with a callee-side span, and both call and
	// reply packets carry wall-clock timestamps so each transit leg is
	// measured end to end.
	callFlagTraced = 1 << 1
	// callFlagOneWay marks a fire-and-forget call: the callee executes
	// it but sends no reply of any kind (errors are recorded callee-side
	// in OneWayErrors and the flight recorder). Sent only on links that
	// negotiated wire.CapOneWay.
	callFlagOneWay = 1 << 2
	// callFlagPromised marks a call whose result the caller may
	// reference from a later pipelined call: the callee publishes the
	// outcome in its promise table (keyed by this call's (from, seq))
	// in addition to replying normally.
	callFlagPromised = 1 << 3
	// callFlagPipelined marks a call carrying a promise section: some
	// argument positions are named by the (from, seq) of an earlier
	// promised call instead of being serialized, and the callee splices
	// them from its promise table. Sent only on links that negotiated
	// wire.CapPipelining.
	callFlagPipelined = 1 << 4
	// callFlagTraceCtx marks a call carrying a distributed-trace context
	// (wire.TraceContext, between the argument count and the promise
	// section): the call belongs to a sampled trace and the callee's
	// span joins the cross-node call tree. Sent only on links that
	// negotiated wire.CapTracing — a link to a peer without the bit
	// drops the context (the call still runs untraced downstream)
	// instead of sending a frame the peer would reject.
	callFlagTraceCtx = 1 << 5
)

// Reply flags.
const (
	replyAck    = 0
	replyValues = 1
	replyError  = 2
	// replyMalformed reports that the callee's hardened decoder
	// rejected the call frame (wire.ErrMalformedFrame). Distinct from
	// replyError so the caller can surface the typed sentinel: a remote
	// exception is the application's problem, a malformed frame is a
	// protocol/security event.
	replyMalformed = 3
)

// Invoke performs the RMI from caller node n on the object ref under
// the cluster's default call policy. Node-local calls deep-clone
// arguments and results instead of going over the wire (Figure 1's
// cloning rule).
func (cs *CallSite) Invoke(n *Node, ref Ref, args []model.Value) ([]model.Value, error) {
	return cs.InvokeWithPolicy(n, ref, args, n.cluster.policy)
}

// InvokeWithPolicy is Invoke with a per-call deadline/retry policy
// overriding the cluster default.
func (cs *CallSite) InvokeWithPolicy(n *Node, ref Ref, args []model.Value, pol CallPolicy) ([]model.Value, error) {
	if ref.Node == n.ID {
		return cs.invokeLocal(n, ref, args)
	}
	return cs.invokeRemote(n, ref, args, pol)
}

// InvokeFrom issues a nested synchronous call from inside a running
// method, inheriting the enclosing invocation's distributed-trace
// context: when the enclosing call was sampled, the nested call's span
// joins the same cross-node tree one hop down. Semantically identical
// to call.Node-based Invoke otherwise.
func (cs *CallSite) InvokeFrom(call *Call, ref Ref, args []model.Value) ([]model.Value, error) {
	n := call.Node
	if ref.Node == n.ID {
		return cs.invokeLocal(n, ref, args)
	}
	var pc pendingCall
	if err := cs.startRemote(&pc, n, ref, args, n.cluster.policy, callExtras{tctx: call.tctx}); err != nil {
		return nil, err
	}
	return pc.await()
}

// invokeLocal handles the case where the remote object happens to live
// on the invoking machine: "the parameter and return value objects are
// cloned. This ensures that the same parameter passing semantics are
// observed regardless of the location of the called object" (§1). The
// cloning runs through the same (optimized) serializers as a remote
// call minus the network, so call-site specialization, cycle
// elimination and reuse all apply to local RPCs too — which is what
// lets the webserver reach zero allocations with reuse enabled.
func (cs *CallSite) invokeLocal(n *Node, ref Ref, args []model.Value) ([]model.Value, error) {
	c := n.cluster
	c.Counters.LocalRPCs.Add(1)
	st := &cs.statShards[n.ID]
	st.Calls.Add(1)
	st.LocalCalls.Add(1)
	audit := c.auditCall()
	if audit {
		st.ClaimChecks.Add(1)
		c.Counters.ClaimChecks.Add(1)
	}
	svc, ok := n.lookup(ref.Obj)
	if !ok {
		return nil, fmt.Errorf("rmi: no object %d on node %d", ref.Obj, n.ID)
	}
	method, ok := svc.Methods[cs.Method]
	if !ok {
		return nil, fmt.Errorf("rmi: %s has no method %q", svc.Name, cs.Method)
	}

	clonedArgs, argRoots, err := cs.cloneThroughSerializer(n, args, cs.argPlans, &cs.argCaches[n.ID], cs.argScratch, audit)
	if err != nil {
		return nil, err
	}
	if cs.argTablesElided != 0 {
		st.CycleTablesAvoided.Add(cs.argTablesElided)
	}
	// Same panic semantics as the remote path: a panicking method
	// becomes an error carrying the stack, regardless of placement.
	var rets []model.Value
	err = func() (err error) {
		defer func() {
			if r := recover(); r != nil {
				err = fmt.Errorf("rmi: method panicked on node %d: %v\n%s", n.ID, r, debug.Stack())
			}
		}()
		rets = method(&Call{Node: n, From: n.ID, Site: cs}, clonedArgs)
		return nil
	}()
	// As on the remote path, the argument graphs go back into the
	// cache only once the method is done with them.
	if cs.cfg.Reuse {
		var scratch []model.Value
		if cs.argScratch {
			scratch = clonedArgs
		}
		cs.argCaches[n.ID].Put(argRoots, scratch)
	}
	if err != nil {
		return nil, err
	}
	if cs.ignoreRet && cs.cfg.Mode == serial.ModeSite {
		// §3.1 applies to local calls too: a call site that ignores
		// the return value skips the result-cloning step.
		return nil, nil
	}
	cloned, retRoots, err := cs.cloneThroughSerializer(n, rets, cs.retPlans, &cs.retCaches[n.ID], cs.retScratch, audit)
	if err != nil {
		return nil, err
	}
	if cs.retTablesElided != 0 {
		st.CycleTablesAvoided.Add(cs.retTablesElided)
	}
	if cs.cfg.Reuse {
		var scratch []model.Value
		if cs.retScratch {
			scratch = cloned
		}
		cs.retCaches[n.ID].Put(retRoots, scratch)
	}
	return cloned, nil
}

// cloneThroughSerializer deep-copies vals by a serialize/deserialize
// round trip on node n, honoring the call site's plans and drawing
// donor graphs from cache; the caller is responsible for putting the
// returned roots back once the values are dead. The round trip runs
// through one pooled message: written forward, rewound, read back.
func (cs *CallSite) cloneThroughSerializer(n *Node, vals []model.Value, plans []*serial.Plan, cache *serial.ReuseCache, useScratch, audit bool) ([]model.Value, []*model.Object, error) {
	c := n.cluster
	if len(vals) == 0 {
		return vals, nil, nil
	}
	st := &cs.statShards[n.ID]
	m := wire.Get()
	wops, err := cs.writeChecked(c, st, m, vals, plans, audit, nil)
	if err != nil {
		m.Release()
		return nil, nil, err
	}
	var cached []*model.Object
	var scratch []model.Value
	if cs.cfg.Reuse {
		cached, scratch = cs.takeDonors(c, st, cache, plans, audit)
		if !useScratch {
			scratch = nil
		}
	}
	m.Rewind()
	out, roots, rops, err := serial.ReadValuesScratch(m, c.Registry, len(vals), plans, cs.cfg, cached, scratch, c.Counters)
	m.Release()
	if err != nil {
		return nil, nil, err
	}
	wops.Add(rops)
	n.Clock.Advance(c.Cost.CostNS(wops))
	return out, roots, nil
}

// invokeRemote is the synchronous remote path: issue the call, then
// block for its reply. The pendingCall lives on this goroutine's stack
// — the asynchronous path (async.go) runs the same startRemote/await
// pair with the pendingCall embedded in a pooled Future instead.
func (cs *CallSite) invokeRemote(n *Node, ref Ref, args []model.Value, pol CallPolicy) ([]model.Value, error) {
	var pc pendingCall
	if err := cs.startRemote(&pc, n, ref, args, pol, callExtras{}); err != nil {
		return nil, err
	}
	return pc.await()
}

// callExtras carries the asynchronous-call variations through
// startRemote; the zero value is a plain synchronous call.
type callExtras struct {
	// oneWay suppresses the reply entirely (fire and forget).
	oneWay bool
	// promised asks the callee to publish this call's outcome in its
	// promise table for later pipelined calls to reference.
	promised bool
	// handles names argument positions to splice from the callee's
	// promise table instead of serializing (promise pipelining).
	handles []serial.PromiseHandle
	// tctx, when non-zero, makes the call a child of an existing
	// sampled trace: {TraceID, Parent: the parent span's ID, Hop: the
	// depth this caller span records}. Zero-valued, the call is a trace
	// root candidate and head sampling decides.
	tctx wire.TraceContext
}

// pendingCall is one issued remote invocation between its send and the
// consumption of its reply. The synchronous path keeps it on the
// stack; Future embeds it by value. Everything await needs lives here,
// so issuing and waiting can happen on different goroutines.
type pendingCall struct {
	cs       *CallSite
	n        *Node
	ref      Ref
	pol      CallPolicy
	seq      int64
	ch       chan reply
	master   []byte // sealed frame copy for retransmits (nil when single-attempt)
	wireLen  int64
	sp       *trace.Span
	audit    bool
	oneWay   bool
	attempts int
	attempt  int
	// tctx is the call's trace inheritance handle ({TraceID, Parent:
	// this caller span's ID, Hop: this span's depth}; zero when
	// unsampled): a later pipelined call naming this call's future as a
	// promise inherits its trace through it.
	tctx wire.TraceContext
	// issued is the wall-clock time InvokeAsync returned the future
	// (zero on the synchronous path); await reports the blocked portion
	// of the round trip as PhaseFutureWait from it.
	issued int64
}

func (pc *pendingCall) siteStats() *stats.SiteCounters { return &pc.cs.statShards[pc.n.ID] }

// startRemote marshals, seals and sends the call's first attempt and
// registers the pending reply slot. On return (nil error) the call is
// on the wire; pc.await collects the outcome. ex selects the
// asynchronous variations; the caller is responsible for only setting
// promised/pipelined extras on links that negotiated the capability.
func (cs *CallSite) startRemote(pc *pendingCall, n *Node, ref Ref, args []model.Value, pol CallPolicy, ex callExtras) error {
	c := n.cluster
	c.Counters.RemoteRPCs.Add(1)
	st := &cs.statShards[n.ID]
	st.Calls.Add(1)
	audit := c.auditCall()
	if audit {
		st.ClaimChecks.Add(1)
		c.Counters.ClaimChecks.Add(1)
	}

	attempts := pol.attempts()
	if ex.oneWay {
		// No reply ever arms a retry timer, so a one-way call is sent
		// exactly once; on a lossy network it is at-most-once by
		// construction (see policy.go).
		attempts = 1
	}
	seq := n.seq.Add(1)
	// First use of the link performs the HELLO fingerprint exchange;
	// afterwards this is a bounds check plus a sync.Once fast path.
	var lp *serial.LinkPlans
	var linkCaps uint32
	if l := n.linkTo(ref.Node); l != nil {
		lp = l.lp
		linkCaps = l.caps
	}
	// With tracing off this is the observability layer's entire cost on
	// the caller: StartCaller on a nil tracer returns a nil span whose
	// methods are no-ops.
	sp := n.tracer.StartCaller(cs.Name, cs.Method, n.ID, ref.Node, seq)
	if ex.oneWay {
		sp.SetOneWay()
	}
	// Distributed-trace identity: an inherited context (nested call,
	// pipelined successor) continues its trace; a root call asks the
	// head sampler. The unsampled path costs one atomic tick at roots
	// and nothing anywhere else.
	tctx := ex.tctx
	var wireCtx wire.TraceContext
	if sp != nil {
		if tctx.TraceID == 0 {
			tctx.TraceID = n.tracer.SampleTrace()
		}
		if tctx.TraceID != 0 {
			spanID := n.tracer.NextSpanID()
			sp.SetTraceIdentity(tctx.TraceID, spanID, tctx.Parent, tctx.Hop)
			pc.tctx = wire.TraceContext{TraceID: tctx.TraceID, Parent: spanID, Hop: tctx.Hop}
			// The on-wire context parents the callee's span under this
			// caller span, one hop deeper. Per-link demotion: a peer
			// without CapTracing — or a chain past the hop cap — gets
			// the frame without the context; the call still runs, the
			// trace just ends at this link.
			if linkCaps&wire.CapTracing != 0 && tctx.Hop < wire.MaxTraceHops {
				wireCtx = wire.TraceContext{TraceID: tctx.TraceID, Parent: spanID, Hop: tctx.Hop + 1}
			}
		}
	}
	sp.BeginPhase(trace.PhaseSerialize)
	m := wire.Get()
	m.AppendByte(msgCall)
	var flags byte
	if attempts > 1 {
		flags |= callFlagRetryable
	}
	if sp != nil {
		flags |= callFlagTraced
	}
	if ex.oneWay {
		flags |= callFlagOneWay
	}
	if ex.promised {
		flags |= callFlagPromised
	}
	if len(ex.handles) > 0 {
		flags |= callFlagPipelined
	}
	if wireCtx.TraceID != 0 {
		flags |= callFlagTraceCtx
	}
	m.AppendByte(flags)
	m.AppendInt32(cs.ID)
	m.AppendInt64(ref.Obj)
	m.AppendInt64(seq)
	m.AppendInt32(int32(len(args)))
	if wireCtx.TraceID != 0 {
		// The trace context rides between the argument count and the
		// promise section (see wire.AppendTraceContext for the layout).
		wire.AppendTraceContext(m, wireCtx)
	}
	wargs, wplans := args, cs.argPlans
	if len(ex.handles) > 0 {
		// The promise section rides between the argument count and the
		// argument bytes; promised positions are named, not serialized.
		serial.WritePromises(m, ex.handles)
		wargs, wplans = pipelineSubset(args, cs.argPlans, ex.handles)
	}
	ops, err := cs.writeChecked(c, st, m, wargs, wplans, audit, lp)
	if err != nil {
		m.Release()
		sp.Fail("marshal: " + err.Error())
		sp.End()
		return err
	}
	if cs.argTablesElided != 0 {
		st.CycleTablesAvoided.Add(cs.argTablesElided)
	}
	n.Clock.Advance(c.Cost.CostNS(ops))

	// The frame is marshaled and sealed once; retransmits resend the
	// same bytes under the same sequence number, which is what lets the
	// callee recognize and deduplicate them. The transport owns every
	// buffer it is handed, so a retryable call keeps a private master
	// copy to clone retransmits from; the common single-attempt call
	// skips the copy.
	wireLen := int64(m.Len())
	sealed := m.SealFrame()
	var master []byte
	if attempts > 1 {
		master = append([]byte(nil), sealed...)
	}
	frame := m.Detach()
	sp.EndPhase(trace.PhaseSerialize)

	pc.cs, pc.n, pc.ref, pc.pol = cs, n, ref, pol
	pc.seq, pc.master, pc.wireLen = seq, master, wireLen
	pc.sp, pc.audit, pc.oneWay = sp, audit, ex.oneWay
	pc.attempts, pc.attempt = attempts, 1
	pc.issued = 0

	if !ex.oneWay {
		pc.ch = n.getReplyCh()
		n.pendMu.Lock()
		n.pending[seq] = pc.ch
		n.pendMu.Unlock()
	}
	if err := pc.sendAttempt(frame); err != nil {
		if pc.ch != nil {
			n.abandonCall(seq, pc.ch)
			pc.ch = nil
		}
		sp.Fail("send: " + err.Error())
		sp.End()
		return fmt.Errorf("rmi: send: %w", err)
	}
	if ex.oneWay {
		// Fire and forget: the span closes at wire handoff; there is no
		// reply leg to measure.
		sp.End()
		return nil
	}
	// The wait phase spans the whole round trip as the caller
	// experiences it, retransmits and backoff included.
	sp.BeginPhase(trace.PhaseWaitReply)
	return nil
}

// sendAttempt puts one sealed attempt on the wire, consuming frame.
func (pc *pendingCall) sendAttempt(frame []byte) error {
	n := pc.n
	c := n.cluster
	c.Counters.Messages.Add(1)
	c.Counters.WireBytes.Add(pc.wireLen)
	pc.siteStats().WireBytes.Add(pc.wireLen)
	pkt := transport.Packet{To: pc.ref.Node, TS: n.Clock.Now(), Payload: frame}
	if pc.sp != nil {
		pkt.Wall = trace.Now()
	}
	pc.sp.BeginPhase(trace.PhaseSend)
	err := n.send(pkt)
	pc.sp.EndPhase(trace.PhaseSend)
	return err
}

// pipelineSubset filters out the promised argument positions, leaving
// the values (and, in site mode, their matching plans) that actually
// serialize. handles are validated by the async layer: in-range,
// strictly covered by args, no duplicates.
func pipelineSubset(args []model.Value, plans []*serial.Plan, handles []serial.PromiseHandle) ([]model.Value, []*serial.Plan) {
	var mask uint64
	var over map[int]bool
	for _, h := range handles {
		if h.Arg < 64 {
			mask |= 1 << uint(h.Arg)
		} else {
			if over == nil {
				over = make(map[int]bool)
			}
			over[int(h.Arg)] = true
		}
	}
	promisedAt := func(i int) bool {
		if i < 64 {
			return mask&(1<<uint(i)) != 0
		}
		return over[i]
	}
	outArgs := make([]model.Value, 0, len(args)-len(handles))
	var outPlans []*serial.Plan
	if plans != nil {
		outPlans = make([]*serial.Plan, 0, len(plans)-len(handles))
	}
	for i, v := range args {
		if promisedAt(i) {
			continue
		}
		outArgs = append(outArgs, v)
		if plans != nil && i < len(plans) {
			outPlans = append(outPlans, plans[i])
		}
	}
	return outArgs, outPlans
}

// await blocks for the call's reply, driving retransmits and deadline
// enforcement, then decodes the outcome. It may run on a different
// goroutine than startRemote (Future.Wait); everything it touches
// lives in pc.
func (pc *pendingCall) await() ([]model.Value, error) {
	cs, n, pol, sp, ch := pc.cs, pc.n, pc.pol, pc.sp, pc.ch
	c := n.cluster
	st := pc.siteStats()
	var waitStart int64
	if pc.issued != 0 && sp != nil {
		waitStart = trace.Now()
	}

	var rep reply
	for {
		if pol.Timeout <= 0 {
			// No deadline: wait for the reply or cluster shutdown —
			// never block unconditionally.
			select {
			case rep = <-ch:
			case <-c.done:
				n.abandonCall(pc.seq, ch)
				pc.ch = nil
				sp.Fail("cluster closed")
				sp.End()
				return nil, fmt.Errorf("rmi: %s: %w", cs.Name, ErrClusterClosed)
			}
		} else {
			timer := time.NewTimer(pol.Timeout)
			select {
			case rep = <-ch:
				timer.Stop()
			case <-c.done:
				timer.Stop()
				n.abandonCall(pc.seq, ch)
				pc.ch = nil
				sp.Fail("cluster closed")
				sp.End()
				return nil, fmt.Errorf("rmi: %s: %w", cs.Name, ErrClusterClosed)
			case <-timer.C:
				if pc.attempt < pc.attempts {
					if d := pol.nextBackoff(pc.attempt); d > 0 {
						select {
						case <-time.After(d):
						case <-c.done:
							n.abandonCall(pc.seq, ch)
							pc.ch = nil
							sp.Fail("cluster closed")
							sp.End()
							return nil, fmt.Errorf("rmi: %s: %w", cs.Name, ErrClusterClosed)
						}
					}
					c.Counters.Retries.Add(1)
					sp.AddRetry()
					f := wire.GetBuf(len(pc.master))
					copy(f, pc.master)
					pc.attempt++
					if err := pc.sendAttempt(f); err != nil {
						n.abandonCall(pc.seq, ch)
						pc.ch = nil
						sp.Fail("send: " + err.Error())
						sp.End()
						return nil, fmt.Errorf("rmi: send: %w", err)
					}
					continue
				}
				c.Counters.Timeouts.Add(1)
				n.abandonCall(pc.seq, ch)
				pc.ch = nil
				sp.EndPhase(trace.PhaseWaitReply)
				// Close the span before dumping: the flight recorder must
				// already hold the failing call when the dump is written.
				if pr, ok := c.net.(transport.PartitionReporter); ok &&
					(pr.Partitioned(n.ID, pc.ref.Node) || pr.Partitioned(pc.ref.Node, n.ID)) {
					sp.Fail("partitioned")
					sp.End()
					n.tracer.DumpFailure("partitioned")
					return nil, fmt.Errorf("rmi: %s to node %d: %w", cs.Name, pc.ref.Node, ErrPartitioned)
				}
				sp.Fail("timeout")
				sp.End()
				n.tracer.DumpFailure("timeout")
				return nil, fmt.Errorf("rmi: %s to node %d after %d attempts of %v: %w",
					cs.Name, pc.ref.Node, pc.attempts, pol.Timeout, ErrTimeout)
			}
		}
		break
	}
	// The reply landed, which means the receive loop removed the
	// pending entry before sending: the channel is empty and no further
	// send can occur — recycle it.
	n.putReplyCh(ch)
	pc.ch = nil
	sp.EndPhase(trace.PhaseWaitReply)
	if waitStart != 0 {
		// Asynchronous call: record how long the caller was actually
		// blocked in Wait, as opposed to overlapping its own work.
		sp.SetPhase(trace.PhaseFutureWait, waitStart, trace.Now()-waitStart)
	}
	if sp != nil && rep.sentWall != 0 {
		sp.SetPhase(trace.PhaseReplyTransit, rep.sentWall, rep.recvWall-rep.sentWall)
	}
	if rep.err != nil {
		wire.PutBuf(rep.buf)
		sp.Fail(rep.err.Error())
		sp.End()
		return nil, rep.err
	}
	n.Clock.Sync(rep.arrival)
	n.Clock.Advance(c.Cost.DispatchNS)

	switch rep.flag {
	case replyAck:
		wire.PutBuf(rep.buf)
		sp.End()
		return nil, nil
	case replyError:
		rm := wire.GetReader(rep.payload)
		msg := rm.ReadString()
		rm.ReleaseReader()
		wire.PutBuf(rep.buf)
		sp.Fail("remote error: " + msg)
		sp.End()
		return nil, fmt.Errorf("rmi: remote error from %s: %s", cs.Name, msg)
	case replyMalformed:
		// The callee's hardened decoder rejected our frame. Surface the
		// typed sentinel — retrying the same bytes cannot help.
		rm := wire.GetReader(rep.payload)
		msg := rm.ReadString()
		rm.ReleaseReader()
		wire.PutBuf(rep.buf)
		sp.Fail("rejected as malformed: " + msg)
		sp.End()
		return nil, fmt.Errorf("rmi: %s: callee rejected frame (%s): %w", cs.Name, msg, ErrMalformedFrame)
	case replyValues:
		sp.BeginPhase(trace.PhaseReplyDeserialize)
		rm := wire.GetReader(rep.payload)
		nvals := int(rm.ReadInt32())
		var cached []*model.Object
		var scratch []model.Value
		if cs.cfg.Reuse {
			cached, scratch = cs.takeDonors(c, st, &cs.retCaches[n.ID], cs.retPlans, pc.audit)
			if !cs.retScratch {
				scratch = nil
			}
		}
		vals, roots, ops, err := serial.ReadValuesScratch(rm, c.Registry, nvals, cs.retPlans, cs.cfg, cached, scratch, c.Counters)
		rm.ReleaseReader()
		wire.PutBuf(rep.buf)
		sp.EndPhase(trace.PhaseReplyDeserialize)
		if err != nil {
			if errors.Is(err, wire.ErrMalformedFrame) {
				// A CRC-valid but undecodable reply: count it against
				// the link it arrived on, same as the callee side does.
				n.noteMalformed(pc.ref.Node)
			}
			sp.Fail("unmarshal reply: " + err.Error())
			sp.End()
			return nil, err
		}
		n.Clock.Advance(c.Cost.CostNS(ops))
		if cs.cfg.Reuse {
			var scratch []model.Value
			if cs.retScratch {
				scratch = vals
			}
			cs.retCaches[n.ID].Put(roots, scratch)
		}
		sp.End()
		return vals, nil
	default:
		wire.PutBuf(rep.buf)
		sp.Fail(fmt.Sprintf("bad reply flag %d", rep.flag))
		sp.End()
		return nil, fmt.Errorf("rmi: bad reply flag %d", rep.flag)
	}
}
