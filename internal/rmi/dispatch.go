package rmi

import (
	"fmt"
	"runtime/debug"
	"sync"

	"cormi/internal/model"
	"cormi/internal/serial"
	"cormi/internal/transport"
	"cormi/internal/wire"
)

// recvLoop drains the node's network endpoint. Every frame is checksum
// verified first — corrupted frames are dropped and recovered by the
// sender's retransmit, never deserialized. Incoming calls are then
// deserialized here — under the node's receive lock, reproducing the
// paper's "only one thread can drain the network" rule — and the user
// method runs in a fresh goroutine. Replies are routed to the pending
// invocation.
func (n *Node) recvLoop(wg *sync.WaitGroup) {
	defer wg.Done()
	for {
		p, ok := n.ep.Recv()
		if !ok {
			return
		}
		payload, err := wire.Unseal(p.Payload)
		if err != nil {
			n.cluster.Counters.CorruptDropped.Add(1)
			continue
		}
		p.Payload = payload
		m := wire.FromBytes(p.Payload)
		switch t := m.ReadU8(); t {
		case msgCall:
			n.recvMu.Lock()
			n.handleCall(p, m)
			n.recvMu.Unlock()
		case msgReply:
			seq := m.ReadInt64()
			flag := m.ReadU8()
			if m.Err() != nil {
				n.cluster.Counters.CorruptDropped.Add(1)
				continue
			}
			arrival := p.TS + n.cluster.Cost.MessageNS(len(p.Payload))
			payload := p.Payload[1+8+1:]
			n.pendMu.Lock()
			ch, ok := n.pending[seq]
			if ok {
				delete(n.pending, seq)
			}
			n.pendMu.Unlock()
			if ok {
				ch <- reply{flag: flag, payload: payload, arrival: arrival}
			} else {
				// Duplicate or post-timeout reply; the call is gone.
				n.cluster.Counters.StaleReplies.Add(1)
			}
		}
	}
}

// handleCall deserializes one incoming call and launches the method.
// It runs under the node receive lock on the node's communication
// processor (the paper's GM poll thread).
func (n *Node) handleCall(p transport.Packet, m *wire.Message) {
	c := n.cluster

	// Message flight time + receiver upcall; the communication
	// processor handles dispatch and unmarshaling contention free, so
	// the invocation's timeline is purely causal.
	arrival := p.TS + c.Cost.MessageNS(len(p.Payload))
	start := arrival + c.Cost.DispatchNS

	siteID := m.ReadInt32()
	objID := m.ReadInt64()
	seq := m.ReadInt64()
	nargs := int(m.ReadInt32())
	if m.Err() != nil {
		n.sendError(p.From, seq, start, fmt.Sprintf("bad call header: %v", m.Err()))
		return
	}

	// Redelivery check before anything touches user state or the §3.3
	// reuse caches: a retransmitted or duplicated call must not
	// deserialize its arguments (that would clobber in-use donor
	// graphs) and must not re-execute the user method.
	key := dedupKey{from: p.From, seq: seq}
	if e, fresh := n.dedupAdmit(key); !fresh {
		c.Counters.DupSuppressed.Add(1)
		if e != nil {
			// The call already completed: answer from the reply cache.
			c.Counters.Messages.Add(1)
			c.Counters.WireBytes.Add(int64(len(e.payload) - wire.ChecksumSize))
			_ = n.ep.Send(transport.Packet{To: p.From, TS: e.ts, Payload: e.payload})
		}
		return
	}

	cs, ok := c.site(siteID)
	if !ok {
		n.sendError(p.From, seq, start, fmt.Sprintf("unknown call site %d", siteID))
		return
	}
	svc, ok := n.lookup(objID)
	if !ok {
		n.sendError(p.From, seq, start, fmt.Sprintf("no object %d on node %d", objID, n.ID))
		return
	}
	method, ok := svc.Methods[cs.Method]
	if !ok {
		n.sendError(p.From, seq, start, fmt.Sprintf("%s has no method %q", svc.Name, cs.Method))
		return
	}

	// The unmarshaler: take the cached argument graphs (Figure 13's
	// temp_arr guard), deserialize — overwriting them in place when
	// shapes match — and hand the copies to the user code. A
	// deserialization error becomes a remote-exception reply, not a
	// dead receive loop.
	var cached []*model.Object
	if cs.cfg.Reuse {
		cached = cs.argCaches[n.ID].Take()
	}
	args, roots, ops, err := serial.ReadValues(m, c.Registry, nargs, cs.argPlans, cs.cfg, cached, c.Counters)
	if err != nil {
		n.sendError(p.From, seq, start, fmt.Sprintf("unmarshal: %v", err))
		return
	}
	start += c.Cost.CostNS(ops)

	// "a new thread is created to invoke the user's code" (Figure 1).
	go n.runMethod(cs, method, p.From, seq, start, args, roots)
}

// runMethod executes the user method, returns the cached argument
// graphs to the call site, and ships the reply (or a bare ack when the
// call site ignores the return value). A panic in user code is
// converted into a remote-exception reply carrying the callee's stack.
func (n *Node) runMethod(cs *CallSite, method Method, from int, seq, start int64, args []model.Value, roots []*model.Object) {
	c := n.cluster
	call := &Call{Node: n, From: from, Site: cs, start: start}
	var rets []model.Value
	err := func() (err error) {
		defer func() {
			if r := recover(); r != nil {
				err = fmt.Errorf("method panicked on node %d: %v\n%s", n.ID, r, debug.Stack())
			}
		}()
		rets = method(call, args)
		return nil
	}()
	// Escape analysis proved the argument graphs dead after the call;
	// stash them for the next invocation of this site.
	if cs.cfg.Reuse {
		cs.argCaches[n.ID].Put(roots)
	}
	// The reply leaves no earlier than the invocation's own progress
	// (start + the CPU time the method reported) and no earlier than
	// the communication processor's current time; marshaling advances
	// the latter.
	done := call.start + call.computed
	if err != nil {
		n.sendError(from, seq, done, err.Error())
		return
	}

	m := wire.NewMessage(64)
	m.AppendByte(msgReply)
	m.AppendInt64(seq)
	var marshalNS int64
	if cs.ignoreRet && cs.cfg.Mode == serial.ModeSite {
		// §3.1: the return value is ignored at this call site — send a
		// small acknowledgment instead of serializing it.
		m.AppendByte(replyAck)
		c.Counters.AcksOnly.Add(1)
	} else {
		m.AppendByte(replyValues)
		m.AppendInt32(int32(len(rets)))
		ops, werr := serial.WriteValues(m, rets, cs.retPlans, cs.cfg, c.Counters)
		if werr != nil {
			n.sendError(from, seq, done, fmt.Sprintf("marshal return: %v", werr))
			return
		}
		marshalNS = c.Cost.CostNS(ops)
	}
	n.sendReply(from, seq, done+marshalNS, m)
}

// sendReply seals and ships a reply frame, and records it in the dedup
// cache so a retransmitted call is answered without re-execution.
func (n *Node) sendReply(to int, seq, ts int64, m *wire.Message) {
	c := n.cluster
	c.Counters.Messages.Add(1)
	c.Counters.WireBytes.Add(int64(m.Len()))
	sealed := wire.Seal(m.Bytes())
	n.dedupComplete(dedupKey{from: to, seq: seq}, sealed, ts)
	_ = n.ep.Send(transport.Packet{To: to, TS: ts, Payload: sealed})
}

func (n *Node) sendError(to int, seq, floor int64, msg string) {
	m := wire.NewMessage(32)
	m.AppendByte(msgReply)
	m.AppendInt64(seq)
	m.AppendByte(replyError)
	m.AppendString(msg)
	n.sendReply(to, seq, floor, m)
}
