package rmi

import (
	"errors"
	"fmt"
	"runtime/debug"
	"sync"

	"cormi/internal/model"
	"cormi/internal/serial"
	"cormi/internal/trace"
	"cormi/internal/transport"
	"cormi/internal/wire"
)

// recvLoop drains the node's network endpoint. Every frame is checksum
// verified first — corrupted frames are dropped and recovered by the
// sender's retransmit, never deserialized. Incoming calls are then
// deserialized here — under the node's receive lock, reproducing the
// paper's "only one thread can drain the network" rule — and the user
// method runs in a fresh goroutine. Replies are routed to the pending
// invocation.
//
// Frame ownership (DESIGN.md §8): the loop owns every received
// payload. Call frames are fully deserialized inside handleCall (views
// into the frame are copied into user objects there), so the frame is
// recycled as soon as handleCall returns; reply frames travel onward
// inside the reply struct and are recycled by the invoker. Frames that
// turn out corrupt, stale or unroutable are recycled here.
func (n *Node) recvLoop(wg *sync.WaitGroup) {
	defer wg.Done()
	// One reusable reader wraps each frame in turn; it never owns them.
	rd := wire.GetReader(nil)
	defer rd.ReleaseReader()
	for {
		p, ok := n.ep.Recv()
		if !ok {
			return
		}
		frame := p.Payload
		payload, err := wire.Unseal(frame)
		if err != nil {
			n.cluster.Counters.CorruptDropped.Add(1)
			wire.PutBuf(frame)
			continue
		}
		p.Payload = payload
		rd.ResetTo(payload)
		switch t := rd.ReadU8(); t {
		case msgCall:
			n.recvMu.Lock()
			n.handleCall(p, rd)
			n.recvMu.Unlock()
			wire.PutBuf(frame)
		case msgReply:
			seq := rd.ReadInt64()
			flag := rd.ReadU8()
			if rd.Err() != nil {
				n.cluster.Counters.CorruptDropped.Add(1)
				wire.PutBuf(frame)
				continue
			}
			arrival := p.TS + n.cluster.Cost.MessageNS(len(p.Payload))
			body := payload[1+8+1:]
			n.pendMu.Lock()
			ch, ok := n.pending[seq]
			if ok {
				delete(n.pending, seq)
			}
			n.pendMu.Unlock()
			if ok {
				ch <- reply{
					flag: flag, payload: body, buf: frame, arrival: arrival,
					sentWall: p.Wall, recvWall: p.RecvWall,
				}
			} else {
				// Duplicate or post-timeout reply; the call is gone.
				n.cluster.Counters.StaleReplies.Add(1)
				wire.PutBuf(frame)
			}
		default:
			// CRC-valid frame with an unknown message tag: the sender is
			// speaking a different protocol (or lying). Not a transport
			// fault, so it counts as malformed, not corrupt.
			n.noteMalformed(p.From)
			wire.PutBuf(frame)
		}
	}
}

// handleCall deserializes one incoming call and launches the method.
// It runs under the node receive lock on the node's communication
// processor (the paper's GM poll thread).
func (n *Node) handleCall(p transport.Packet, m *wire.Message) {
	c := n.cluster

	// Message flight time + receiver upcall; the communication
	// processor handles dispatch and unmarshaling contention free, so
	// the invocation's timeline is purely causal.
	arrival := p.TS + c.Cost.MessageNS(len(p.Payload))
	start := arrival + c.Cost.DispatchNS

	flags := m.ReadU8()
	siteID := m.ReadInt32()
	objID := m.ReadInt64()
	seq := m.ReadInt64()
	nargs := int(m.ReadInt32())
	// track decides whether this call needs dedup bookkeeping: the
	// caller may retransmit it, or the interconnect itself can
	// duplicate packets. On a fault-free non-retrying hot path a
	// duplicate is impossible, so the map insert, entry and reply-copy
	// costs are skipped entirely.
	track := flags&callFlagRetryable != 0 || c.faulty
	// traced mirrors the caller's span with a callee-side one; header
	// and lookup errors reply before a span exists (nil span = no-op).
	traced := c.tracer != nil && flags&callFlagTraced != 0
	if m.Err() != nil {
		// The header itself is undecodable — nothing in this frame
		// (including seq) can be trusted, so no dedup entry exists yet
		// and the reply is best-effort.
		n.noteMalformed(p.From)
		n.sendMalformed(p.From, seq, start, fmt.Sprintf("bad call header: %v", m.Err()), nil)
		return
	}

	// Redelivery check before anything touches user state or the §3.3
	// reuse caches: a retransmitted or duplicated call must not
	// deserialize its arguments (that would clobber in-use donor
	// graphs) and must not re-execute the user method.
	if track {
		key := dedupKey{from: p.From, seq: seq}
		if e, fresh := n.dedupAdmit(key); !fresh {
			c.Counters.DupSuppressed.Add(1)
			if e != nil {
				// The call already completed: answer from the reply
				// cache with a fresh copy (the transport consumes the
				// buffer it is handed; the cache keeps its own).
				c.Counters.Messages.Add(1)
				c.Counters.WireBytes.Add(int64(len(e.payload) - wire.ChecksumSize))
				cp := wire.GetBuf(len(e.payload))
				copy(cp, e.payload)
				_ = n.ep.Send(transport.Packet{To: p.From, TS: e.ts, Payload: cp})
			}
			return
		}
	}

	var lookupStart int64
	if traced {
		lookupStart = trace.Now()
	}
	cs, ok := c.site(siteID)
	if !ok {
		n.sendError(p.From, seq, start, fmt.Sprintf("unknown call site %d", siteID), track, nil)
		return
	}
	svc, ok := n.lookup(objID)
	if !ok {
		n.sendError(p.From, seq, start, fmt.Sprintf("no object %d on node %d", objID, n.ID), track, nil)
		return
	}
	method, ok := svc.Methods[cs.Method]
	if !ok {
		n.sendError(p.From, seq, start, fmt.Sprintf("%s has no method %q", svc.Name, cs.Method), track, nil)
		return
	}

	var sp *trace.Span
	if traced {
		// The span starts at the packet's receive timestamp so the
		// transit and plan-lookup phases measured before it existed still
		// fall inside it.
		sp = c.tracer.StartCallee(cs.Name, cs.Method, p.From, n.ID, seq, p.RecvWall)
		sp.SetPhase(trace.PhasePlanLookup, lookupStart, trace.Now()-lookupStart)
		if p.Wall != 0 {
			sp.SetPhase(trace.PhaseTransit, p.Wall, p.RecvWall-p.Wall)
		}
		sp.SetVirtualTransit(arrival - p.TS)
	}

	// The unmarshaler: take the cached argument graphs (Figure 13's
	// temp_arr guard), deserialize — overwriting them in place when
	// shapes match — and hand the copies to the user code. A
	// deserialization error becomes a remote-exception reply, not a
	// dead receive loop.
	// The callee samples its own audit decision: it guards the donor
	// shapes consumed here and the reply serialization in runMethod.
	st := &cs.statShards[n.ID]
	audit := c.auditCall()
	if audit {
		st.ClaimChecks.Add(1)
		c.Counters.ClaimChecks.Add(1)
	}
	var cached []*model.Object
	var scratch []model.Value
	if cs.cfg.Reuse {
		cached, scratch = cs.takeDonors(c, st, &cs.argCaches[n.ID], cs.argPlans, audit)
		if !cs.argScratch {
			scratch = nil
		}
	}
	sp.BeginPhase(trace.PhaseDeserialize)
	args, roots, ops, err := serial.ReadValuesScratch(m, c.Registry, nargs, cs.argPlans, cs.cfg, cached, scratch, c.Counters)
	sp.EndPhase(trace.PhaseDeserialize)
	if err != nil {
		if errors.Is(err, wire.ErrMalformedFrame) {
			// Hostile or version-skewed payload, rejected by the
			// hardened decoder. Withdraw the in-flight dedup entry: its
			// (from, seq) key came from the same untrusted frame, and
			// leaving it cached would let a forged frame swallow an
			// honest retransmit stream.
			n.noteMalformed(p.From)
			if track {
				n.dedupAbort(dedupKey{from: p.From, seq: seq})
			}
			n.sendMalformed(p.From, seq, start, fmt.Sprintf("unmarshal: %v", err), sp)
			return
		}
		n.sendError(p.From, seq, start, fmt.Sprintf("unmarshal: %v", err), track, sp)
		return
	}
	start += c.Cost.CostNS(ops)

	// "a new thread is created to invoke the user's code" (Figure 1).
	sp.BeginPhase(trace.PhaseDispatch)
	go n.runMethod(cs, method, p.From, seq, start, args, roots, track, audit, sp)
}

// runMethod executes the user method, returns the cached argument
// graphs to the call site, and ships the reply (or a bare ack when the
// call site ignores the return value). A panic in user code is
// converted into a remote-exception reply carrying the callee's stack.
func (n *Node) runMethod(cs *CallSite, method Method, from int, seq, start int64, args []model.Value, roots []*model.Object, track, audit bool, sp *trace.Span) {
	c := n.cluster
	sp.EndPhase(trace.PhaseDispatch)
	call := &Call{Node: n, From: from, Site: cs, start: start}
	var rets []model.Value
	sp.BeginPhase(trace.PhaseExecute)
	err := func() (err error) {
		defer func() {
			if r := recover(); r != nil {
				err = fmt.Errorf("method panicked on node %d: %v\n%s", n.ID, r, debug.Stack())
			}
		}()
		rets = method(call, args)
		return nil
	}()
	sp.EndPhase(trace.PhaseExecute)
	// Escape analysis proved the argument graphs dead after the call;
	// stash them (and, when every reference is covered by the proof,
	// the argument slice itself) for the next invocation of this site.
	if cs.cfg.Reuse {
		var scratch []model.Value
		if cs.argScratch {
			scratch = args
		}
		cs.argCaches[n.ID].Put(roots, scratch)
	}
	// The reply leaves no earlier than the invocation's own progress
	// (start + the CPU time the method reported) and no earlier than
	// the communication processor's current time; marshaling advances
	// the latter.
	done := call.start + call.computed
	if err != nil {
		// A panic is one of the flight recorder's auto-dump triggers;
		// sendError closes the span first, so the dump includes it.
		n.sendError(from, seq, done, err.Error(), track, sp)
		c.tracer.DumpFailure("panic")
		return
	}

	sp.BeginPhase(trace.PhaseReplySerialize)
	st := &cs.statShards[n.ID]
	m := wire.Get()
	m.AppendByte(msgReply)
	m.AppendInt64(seq)
	var marshalNS int64
	if cs.ignoreRet && cs.cfg.Mode == serial.ModeSite {
		// §3.1: the return value is ignored at this call site — send a
		// small acknowledgment instead of serializing it.
		m.AppendByte(replyAck)
		c.Counters.AcksOnly.Add(1)
	} else {
		m.AppendByte(replyValues)
		m.AppendInt32(int32(len(rets)))
		var lp *serial.LinkPlans
		if l := n.linkTo(from); l != nil {
			lp = l.lp
		}
		ops, werr := cs.writeChecked(c, st, m, rets, cs.retPlans, audit, lp)
		if werr != nil {
			m.Release()
			n.sendError(from, seq, done, fmt.Sprintf("marshal return: %v", werr), track, sp)
			return
		}
		if cs.retTablesElided != 0 {
			st.CycleTablesAvoided.Add(cs.retTablesElided)
		}
		marshalNS = c.Cost.CostNS(ops)
	}
	st.WireBytes.Add(int64(m.Len()))
	n.sendReply(from, seq, done+marshalNS, m, track, sp)
}

// sendReply seals the reply in place and ships the frame, recording a
// private copy in the dedup cache (tracked calls only) so a
// retransmitted call is answered without re-execution. It consumes m,
// and closes the callee span (when one exists) after the reply is on
// the wire: every sp handed in must have PhaseReplySerialize begun.
func (n *Node) sendReply(to int, seq, ts int64, m *wire.Message, track bool, sp *trace.Span) {
	c := n.cluster
	c.Counters.Messages.Add(1)
	c.Counters.WireBytes.Add(int64(m.Len()))
	m.SealFrame()
	sp.EndPhase(trace.PhaseReplySerialize)
	frame := m.Detach()
	if track {
		cp := wire.GetBuf(len(frame))
		copy(cp, frame)
		n.dedupComplete(dedupKey{from: to, seq: seq}, cp, ts)
	}
	pkt := transport.Packet{To: to, TS: ts, Payload: frame}
	if sp != nil {
		pkt.Wall = trace.Now()
	}
	_ = n.ep.Send(pkt)
	sp.End()
}

func (n *Node) sendError(to int, seq, floor int64, msg string, track bool, sp *trace.Span) {
	sp.Fail(msg)
	sp.BeginPhase(trace.PhaseReplySerialize)
	m := wire.Get()
	m.AppendByte(msgReply)
	m.AppendInt64(seq)
	m.AppendByte(replyError)
	m.AppendString(msg)
	n.sendReply(to, seq, floor, m, track, sp)
}

// sendMalformed answers a call whose frame the decoder rejected. The
// reply carries the replyMalformed flag so the caller surfaces a typed
// ErrMalformedFrame instead of a generic remote exception, and it is
// never tracked: the dedup cache must hold nothing keyed by fields of
// an untrusted frame.
func (n *Node) sendMalformed(to int, seq, floor int64, msg string, sp *trace.Span) {
	sp.Fail(msg)
	sp.BeginPhase(trace.PhaseReplySerialize)
	m := wire.Get()
	m.AppendByte(msgReply)
	m.AppendInt64(seq)
	m.AppendByte(replyMalformed)
	m.AppendString(msg)
	n.sendReply(to, seq, floor, m, false, sp)
}
