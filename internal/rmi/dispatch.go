package rmi

import (
	"errors"
	"fmt"
	"runtime/debug"
	"sync"

	"cormi/internal/model"
	"cormi/internal/serial"
	"cormi/internal/trace"
	"cormi/internal/transport"
	"cormi/internal/wire"
)

// recvLoop drains the node's network endpoint. Every frame is checksum
// verified first — corrupted frames are dropped and recovered by the
// sender's retransmit, never deserialized. Incoming calls are then
// deserialized here — under the node's receive lock, reproducing the
// paper's "only one thread can drain the network" rule — and the user
// method runs in a fresh goroutine. Replies are routed to the pending
// invocation. Batch containers are unpacked and each sub-frame takes
// the same two paths.
//
// Frame ownership (DESIGN.md §8): the loop owns every received
// payload. Call frames are fully deserialized inside handleCall (views
// into the frame are copied into user objects there), so the frame is
// recycled as soon as handleCall returns; reply frames travel onward
// inside the reply struct and are recycled by the invoker. Replies
// extracted from a batch container are copied into a fresh pooled
// buffer first — they outlive the container. Frames that turn out
// corrupt, stale or unroutable are recycled here.
func (n *Node) recvLoop(wg *sync.WaitGroup) {
	defer wg.Done()
	// One reusable reader wraps each frame in turn; it never owns them.
	rd := wire.GetReader(nil)
	defer rd.ReleaseReader()
	for {
		p, ok := n.ep.Recv()
		if !ok {
			return
		}
		frame := p.Payload
		payload, err := wire.Unseal(frame)
		if err != nil {
			n.cluster.Counters.CorruptDropped.Add(1)
			wire.PutBuf(frame)
			continue
		}
		p.Payload = payload
		rd.ResetTo(payload)
		switch t := rd.ReadU8(); t {
		case msgCall:
			n.recvMu.Lock()
			n.handleCall(p, rd)
			n.recvMu.Unlock()
			wire.PutBuf(frame)
		case msgReply:
			n.routeReply(p, rd, frame)
		case msgBatch:
			n.handleBatch(p, rd, frame)
		default:
			// CRC-valid frame with an unknown message tag: the sender is
			// speaking a different protocol (or lying). Not a transport
			// fault, so it counts as malformed, not corrupt.
			n.noteMalformed(p.From)
			wire.PutBuf(frame)
		}
	}
}

// routeReply hands one reply frame to its pending invocation. The
// channel send happens under pendMu, *before* the entry's removal is
// visible to anyone else: abandonCall relies on "entry absent ⇒ reply
// already in the channel" to recycle reply channels without leaking a
// raced-in frame. It consumes frame.
func (n *Node) routeReply(p transport.Packet, rd *wire.Message, frame []byte) {
	seq := rd.ReadInt64()
	flag := rd.ReadU8()
	if rd.Err() != nil {
		n.cluster.Counters.CorruptDropped.Add(1)
		wire.PutBuf(frame)
		return
	}
	arrival := p.TS + n.cluster.Cost.MessageNS(len(p.Payload))
	body := p.Payload[1+8+1:]
	n.pendMu.Lock()
	ch, ok := n.pending[seq]
	if ok {
		delete(n.pending, seq)
		// Buffered channel of one, sole reply for this entry: the send
		// cannot block while holding the lock.
		ch <- reply{
			flag: flag, payload: body, buf: frame, arrival: arrival,
			sentWall: p.Wall, recvWall: p.RecvWall,
		}
	}
	n.pendMu.Unlock()
	if !ok {
		// Duplicate or post-timeout reply; the call is gone.
		n.cluster.Counters.StaleReplies.Add(1)
		wire.PutBuf(frame)
	}
}

// handleBatch unpacks a coalesced container: each entry is an
// independently sealed call or reply frame carrying its own original
// send timestamps. The outer CRC already passed, so an undecodable
// entry or broken inner seal is a malformed container, not line noise.
// It consumes frame.
func (n *Node) handleBatch(p transport.Packet, rd *wire.Message, frame []byte) {
	count := int(rd.ReadInt32())
	if err := rd.Err(); err != nil {
		n.noteMalformed(p.From)
		wire.PutBuf(frame)
		return
	}
	if err := wire.CheckBatchCount(rd, count); err != nil {
		n.noteMalformed(p.From)
		wire.PutBuf(frame)
		return
	}
	// The sub-frames need their own reader; rd keeps walking the
	// container.
	sub := wire.GetReader(nil)
	for i := 0; i < count; i++ {
		e, err := wire.ReadBatchEntry(rd)
		if err != nil {
			n.noteMalformed(p.From)
			break
		}
		inner, err := wire.Unseal(e.Frame)
		if err != nil {
			n.noteMalformed(p.From)
			continue
		}
		// The sub-packet carries the entry's original send timestamps;
		// the receive stamp is the container's (they arrived together).
		sp := transport.Packet{
			From: p.From, To: p.To,
			TS: e.TS, Wall: e.Wall, RecvWall: p.RecvWall,
			Payload: inner,
		}
		sub.ResetTo(inner)
		switch t := sub.ReadU8(); t {
		case msgCall:
			n.recvMu.Lock()
			n.handleCall(sp, sub)
			n.recvMu.Unlock()
		case msgReply:
			// Reply payloads outlive this container (the invoker recycles
			// them after deserializing); give the reply its own buffer.
			cp := wire.GetBuf(len(inner))
			copy(cp, inner)
			sp.Payload = cp
			sub.ResetTo(cp)
			sub.ReadU8()
			n.routeReply(sp, sub, cp)
		default:
			n.noteMalformed(p.From)
		}
	}
	sub.ReleaseReader()
	wire.PutBuf(frame)
}

// execCtx is the callee-side invocation context threaded from
// handleCall into the method-running goroutine.
type execCtx struct {
	from  int
	seq   int64
	start int64 // virtual start time (arrival + dispatch + unmarshal)
	track bool  // dedup bookkeeping needed
	audit bool  // claim-checking sampled on
	// oneWay suppresses the reply; failures are counted and dumped.
	oneWay bool
	// promised publishes the outcome in the promise table before (and
	// regardless of) the reply.
	promised bool
	// tctx is the invocation's trace inheritance handle ({TraceID,
	// Parent: the callee span's ID, Hop: this hop's depth}; zero when
	// the call arrived unsampled), handed to the method through Call so
	// nested calls stay in the tree.
	tctx wire.TraceContext
	// reuse returns the argument graphs to the site's §3.3 caches after
	// the method runs; the pipelined path disables it (spliced arguments
	// are not cache donors).
	reuse bool
}

// handleCall deserializes one incoming call and launches the method.
// It runs under the node receive lock on the node's communication
// processor (the paper's GM poll thread).
func (n *Node) handleCall(p transport.Packet, m *wire.Message) {
	c := n.cluster

	// Message flight time + receiver upcall; the communication
	// processor handles dispatch and unmarshaling contention free, so
	// the invocation's timeline is purely causal.
	arrival := p.TS + c.Cost.MessageNS(len(p.Payload))
	start := arrival + c.Cost.DispatchNS

	flags := m.ReadU8()
	siteID := m.ReadInt32()
	objID := m.ReadInt64()
	seq := m.ReadInt64()
	nargs := int(m.ReadInt32())
	// track decides whether this call needs dedup bookkeeping: the
	// caller may retransmit it, or the interconnect itself can
	// duplicate packets. On a fault-free non-retrying hot path a
	// duplicate is impossible, so the map insert, entry and reply-copy
	// costs are skipped entirely.
	track := flags&callFlagRetryable != 0 || c.faulty
	// traced mirrors the caller's span with a callee-side one; header
	// and lookup errors reply before a span exists (nil span = no-op).
	traced := n.tracer != nil && flags&callFlagTraced != 0
	oneWay := flags&callFlagOneWay != 0
	promised := flags&callFlagPromised != 0
	pipelined := flags&callFlagPipelined != 0
	// The optional trace context follows the argument count. It is read
	// before the header error check: a hostile context fails the message
	// and takes the same malformed path as a broken header.
	var tctx wire.TraceContext
	if flags&callFlagTraceCtx != 0 {
		tctx, _ = wire.ReadTraceContext(m)
	}
	if m.Err() != nil {
		// The header itself is undecodable — nothing in this frame
		// (including seq and the flags) can be trusted, so no dedup
		// entry exists yet and the reply is best-effort.
		n.noteMalformed(p.From)
		n.sendMalformed(p.From, seq, start, fmt.Sprintf("bad call header: %v", m.Err()), nil)
		return
	}

	// Redelivery check before anything touches user state or the §3.3
	// reuse caches: a retransmitted or duplicated call must not
	// deserialize its arguments (that would clobber in-use donor
	// graphs) and must not re-execute the user method.
	if track {
		key := dedupKey{from: p.From, seq: seq}
		if e, fresh := n.dedupAdmit(key); !fresh {
			c.Counters.DupSuppressed.Add(1)
			if e != nil && e.payload != nil {
				// The call already completed: answer from the reply
				// cache with a fresh copy (the transport consumes the
				// buffer it is handed; the cache keeps its own). One-way
				// calls complete with a nil payload — the duplicate is
				// suppressed but nothing is sent.
				c.Counters.Messages.Add(1)
				c.Counters.WireBytes.Add(int64(len(e.payload) - wire.ChecksumSize))
				cp := wire.GetBuf(len(e.payload))
				copy(cp, e.payload)
				_ = n.send(transport.Packet{To: p.From, TS: e.ts, Payload: cp})
			}
			return
		}
	}

	ec := execCtx{
		from: p.From, seq: seq, track: track,
		oneWay: oneWay, promised: promised, reuse: !pipelined,
	}

	var lookupStart int64
	if traced {
		lookupStart = trace.Now()
	}
	cs, ok := c.site(siteID)
	if !ok {
		n.rejectCall(ec, start, fmt.Sprintf("unknown call site %d", siteID), nil, false)
		return
	}
	svc, ok := n.lookup(objID)
	if !ok {
		n.rejectCall(ec, start, fmt.Sprintf("no object %d on node %d", objID, n.ID), nil, false)
		return
	}
	method, ok := svc.Methods[cs.Method]
	if !ok {
		n.rejectCall(ec, start, fmt.Sprintf("%s has no method %q", svc.Name, cs.Method), nil, false)
		return
	}

	var sp *trace.Span
	if traced {
		// The span starts at the packet's receive timestamp so the
		// transit and plan-lookup phases measured before it existed still
		// fall inside it.
		sp = n.tracer.StartCallee(cs.Name, cs.Method, p.From, n.ID, seq, p.RecvWall)
		if oneWay {
			sp.SetOneWay()
		}
		sp.SetPhase(trace.PhasePlanLookup, lookupStart, trace.Now()-lookupStart)
		if p.Wall != 0 {
			sp.SetPhase(trace.PhaseTransit, p.Wall, p.RecvWall-p.Wall)
		}
		sp.SetVirtualTransit(arrival - p.TS)
		if tctx.TraceID != 0 {
			// Join the caller's sampled trace: this callee span hangs
			// under the caller span named by the wire context, and
			// everything the method does (via Call.TraceContext) hangs
			// under this span at the same hop depth.
			calleeSpan := n.tracer.NextSpanID()
			sp.SetTraceIdentity(tctx.TraceID, calleeSpan, tctx.Parent, tctx.Hop)
			ec.tctx = wire.TraceContext{TraceID: tctx.TraceID, Parent: calleeSpan, Hop: tctx.Hop}
		}
	}

	// The promise section rides between the argument count and the
	// argument bytes. Its hardened decoder bounds the handle count and
	// argument positions before anything dereferences them.
	var handles []serial.PromiseHandle
	if pipelined {
		var perr error
		handles, perr = serial.ReadPromises(m, nargs)
		if perr != nil {
			n.noteMalformed(p.From)
			if track {
				n.dedupAbort(dedupKey{from: p.From, seq: seq})
			}
			n.rejectCall(ec, start, fmt.Sprintf("promise section: %v", perr), sp, true)
			return
		}
	}

	// The unmarshaler: take the cached argument graphs (Figure 13's
	// temp_arr guard), deserialize — overwriting them in place when
	// shapes match — and hand the copies to the user code. A
	// deserialization error becomes a remote-exception reply, not a
	// dead receive loop.
	// The callee samples its own audit decision: it guards the donor
	// shapes consumed here and the reply serialization in runMethod.
	st := &cs.statShards[n.ID]
	ec.audit = c.auditCall()
	if ec.audit {
		st.ClaimChecks.Add(1)
		c.Counters.ClaimChecks.Add(1)
	}
	// A pipelined call's argument slice mixes wire values with promise
	// splices, so it reads with reuse off: no donors taken, nothing put
	// back (ec.reuse is already false).
	rcfg := cs.cfg
	nwire := nargs
	rplans := cs.argPlans
	if pipelined {
		rcfg.Reuse = false
		nwire = nargs - len(handles)
		rplans = subsetPlans(cs.argPlans, nargs, handles)
	}
	var cached []*model.Object
	var scratch []model.Value
	if rcfg.Reuse {
		cached, scratch = cs.takeDonors(c, st, &cs.argCaches[n.ID], cs.argPlans, ec.audit)
		if !cs.argScratch {
			scratch = nil
		}
	}
	sp.BeginPhase(trace.PhaseDeserialize)
	args, roots, ops, err := serial.ReadValuesScratch(m, c.Registry, nwire, rplans, rcfg, cached, scratch, c.Counters)
	sp.EndPhase(trace.PhaseDeserialize)
	if err != nil {
		if errors.Is(err, wire.ErrMalformedFrame) {
			// Hostile or version-skewed payload, rejected by the
			// hardened decoder. Withdraw the in-flight dedup entry: its
			// (from, seq) key came from the same untrusted frame, and
			// leaving it cached would let a forged frame swallow an
			// honest retransmit stream.
			n.noteMalformed(p.From)
			if track {
				n.dedupAbort(dedupKey{from: p.From, seq: seq})
			}
			n.rejectCall(ec, start, fmt.Sprintf("unmarshal: %v", err), sp, true)
			return
		}
		n.rejectCall(ec, start, fmt.Sprintf("unmarshal: %v", err), sp, false)
		return
	}
	ec.start = start + c.Cost.CostNS(ops)

	// "a new thread is created to invoke the user's code" (Figure 1).
	sp.BeginPhase(trace.PhaseDispatch)
	if pipelined {
		// Spread the wire values over the full argument slice, leaving
		// the promised positions for runPipelined to splice.
		full := make([]model.Value, nargs)
		at := promisedAt(handles)
		idx := 0
		for i := range full {
			if !at(i) {
				full[i] = args[idx]
				idx++
			}
		}
		go n.runPipelined(cs, method, ec, full, handles, sp)
		return
	}
	go n.runMethod(cs, method, ec, args, roots, sp)
}

// rejectCall answers a call that failed before the method could run,
// honoring the call's mode: promised calls publish the failure so
// pipelined dependents unblock, one-way calls record it without
// replying, and malformed frames get the typed replyMalformed flag.
func (n *Node) rejectCall(ec execCtx, floor int64, msg string, sp *trace.Span, malformed bool) {
	c := n.cluster
	if ec.promised {
		n.promiseFail(dedupKey{from: ec.from, seq: ec.seq}, msg, floor)
	}
	if ec.oneWay {
		c.Counters.OneWayErrors.Add(1)
		sp.Fail(msg)
		sp.End()
		n.tracer.DumpFailure("oneway-error")
		return
	}
	if malformed {
		n.sendMalformed(ec.from, ec.seq, floor, msg, sp)
		return
	}
	n.sendError(ec.from, ec.seq, floor, msg, ec.track, sp)
}

// promisedAt builds a position-membership test over the (already
// validated) promise handles.
func promisedAt(handles []serial.PromiseHandle) func(int) bool {
	var mask uint64
	var over map[int]bool
	for _, h := range handles {
		if h.Arg < 64 {
			mask |= 1 << uint(h.Arg)
		} else {
			if over == nil {
				over = make(map[int]bool)
			}
			over[int(h.Arg)] = true
		}
	}
	return func(i int) bool {
		if i < 64 {
			return mask&(1<<uint(i)) != 0
		}
		return over[i]
	}
}

// subsetPlans drops the promised positions from a site-mode plan list
// (nil in class mode stays nil).
func subsetPlans(plans []*serial.Plan, nargs int, handles []serial.PromiseHandle) []*serial.Plan {
	if plans == nil {
		return nil
	}
	at := promisedAt(handles)
	out := make([]*serial.Plan, 0, len(plans)-len(handles))
	for i := 0; i < len(plans) && i < nargs; i++ {
		if !at(i) {
			out = append(out, plans[i])
		}
	}
	return out
}

// runMethod executes the user method on the plain path. It runs in its
// own goroutine ("a new thread is created to invoke the user's code").
func (n *Node) runMethod(cs *CallSite, method Method, ec execCtx, args []model.Value, roots []*model.Object, sp *trace.Span) {
	sp.EndPhase(trace.PhaseDispatch)
	n.executeAndReply(cs, method, ec, args, roots, sp)
}

// runPipelined resolves the call's promise handles against the node's
// promise table — parking until the producers finish when the call
// raced ahead of them — splices the results into the argument slice,
// and then executes like any other call. The caller's round trip never
// covered the producers: that is the point of pipelining.
func (n *Node) runPipelined(cs *CallSite, method Method, ec execCtx, args []model.Value, handles []serial.PromiseHandle, sp *trace.Span) {
	c := n.cluster
	c.Counters.PipelinedCalls.Add(1)
	sp.EndPhase(trace.PhaseDispatch)
	for _, h := range handles {
		key := dedupKey{from: ec.from, seq: h.Seq}
		e := n.promiseGet(key)
		n.promMu.Lock()
		done := e.done
		ready := e.ready
		n.promMu.Unlock()
		if !done {
			// The pipelined call overtook its producer; park until the
			// producer publishes (or the cluster shuts down).
			// promiseParked tracks the currently parked executors — an
			// overload signal (cormi_promise_parked) for admission control.
			c.Counters.PromiseParks.Add(1)
			c.promiseParked.Add(1)
			sp.BeginPhase(trace.PhasePromiseWait)
			select {
			case <-ready:
			case <-c.done:
				c.promiseParked.Add(-1)
				sp.EndPhase(trace.PhasePromiseWait)
				ec.promisedReject(n, fmt.Sprintf("promise (from %d, seq %d): %v", ec.from, h.Seq, ErrClusterClosed), sp)
				return
			}
			c.promiseParked.Add(-1)
			sp.EndPhase(trace.PhasePromiseWait)
		}
		n.promMu.Lock()
		errMsg, vals, ts := e.err, e.vals, e.ts
		n.promMu.Unlock()
		if errMsg != "" {
			ec.promisedReject(n, fmt.Sprintf("promised argument %d failed: %s", h.Arg, errMsg), sp)
			return
		}
		if int(h.Ret) >= len(vals) {
			ec.promisedReject(n, fmt.Sprintf("promised argument %d: producer returned %d values, handle wants %d", h.Arg, len(vals), h.Ret), sp)
			return
		}
		// Clone out of the table: the entry may feed several consumers,
		// and the method is free to mutate its arguments.
		args[h.Arg] = model.CloneValue(vals[int(h.Ret)], nil)
		// The spliced value exists only once the producer finished;
		// the dependent call cannot start before that.
		if ts > ec.start {
			ec.start = ts
		}
	}
	n.executeAndReply(cs, method, ec, args, nil, sp)
}

// promisedReject is rejectCall for failures inside the method-running
// goroutine (after dispatch).
func (ec execCtx) promisedReject(n *Node, msg string, sp *trace.Span) {
	n.rejectCall(ec, ec.start, msg, sp, false)
}

// executeAndReply runs the user method, returns the cached argument
// graphs to the call site, publishes promised outcomes, and ships the
// reply — or suppresses it for one-way calls. A panic in user code is
// converted into a remote-exception reply carrying the callee's stack.
func (n *Node) executeAndReply(cs *CallSite, method Method, ec execCtx, args []model.Value, roots []*model.Object, sp *trace.Span) {
	c := n.cluster
	call := &Call{Node: n, From: ec.from, Site: cs, start: ec.start, tctx: ec.tctx}
	var rets []model.Value
	sp.BeginPhase(trace.PhaseExecute)
	err := func() (err error) {
		defer func() {
			if r := recover(); r != nil {
				err = fmt.Errorf("method panicked on node %d: %v\n%s", n.ID, r, debug.Stack())
			}
		}()
		rets = method(call, args)
		return nil
	}()
	sp.EndPhase(trace.PhaseExecute)
	// Escape analysis proved the argument graphs dead after the call;
	// stash them (and, when every reference is covered by the proof,
	// the argument slice itself) for the next invocation of this site.
	if ec.reuse && cs.cfg.Reuse {
		var scratch []model.Value
		if cs.argScratch {
			scratch = args
		}
		cs.argCaches[n.ID].Put(roots, scratch)
	}
	// The reply leaves no earlier than the invocation's own progress
	// (start + the CPU time the method reported) and no earlier than
	// the communication processor's current time; marshaling advances
	// the latter.
	done := call.start + call.computed
	key := dedupKey{from: ec.from, seq: ec.seq}
	if err != nil {
		if ec.promised {
			n.promiseFail(key, err.Error(), done)
		}
		if ec.oneWay {
			// Fire-and-forget failure: no caller is listening, so the
			// error surfaces through the counter and the flight recorder.
			c.Counters.OneWayErrors.Add(1)
			if ec.track {
				n.dedupComplete(key, nil, done)
			}
			sp.Fail(err.Error())
			sp.End()
			n.tracer.DumpFailure("oneway-error")
			return
		}
		// A panic is one of the flight recorder's auto-dump triggers;
		// sendError closes the span first, so the dump includes it.
		n.sendError(ec.from, ec.seq, done, err.Error(), ec.track, sp)
		c.tracer.DumpFailure("panic")
		return
	}
	if ec.promised {
		// Publish before replying: a pipelined dependent may already be
		// parked on this entry, and the caller's own Wait comes later.
		n.promiseFulfill(key, rets, done)
	}
	if ec.oneWay {
		// No reply frame at all — the entire reply path (serialize,
		// seal, send, caller-side decode) is skipped. Tracked calls
		// still mark the dedup entry done (nil payload) so duplicate
		// deliveries stay suppressed without a cached reply.
		if ec.track {
			n.dedupComplete(key, nil, done)
		}
		sp.End()
		return
	}

	sp.BeginPhase(trace.PhaseReplySerialize)
	st := &cs.statShards[n.ID]
	m := wire.Get()
	m.AppendByte(msgReply)
	m.AppendInt64(ec.seq)
	var marshalNS int64
	if cs.ignoreRet && cs.cfg.Mode == serial.ModeSite {
		// §3.1: the return value is ignored at this call site — send a
		// small acknowledgment instead of serializing it.
		m.AppendByte(replyAck)
		c.Counters.AcksOnly.Add(1)
	} else {
		m.AppendByte(replyValues)
		m.AppendInt32(int32(len(rets)))
		var lp *serial.LinkPlans
		if l := n.linkTo(ec.from); l != nil {
			lp = l.lp
		}
		ops, werr := cs.writeChecked(c, st, m, rets, cs.retPlans, ec.audit, lp)
		if werr != nil {
			m.Release()
			n.sendError(ec.from, ec.seq, done, fmt.Sprintf("marshal return: %v", werr), ec.track, sp)
			return
		}
		if cs.retTablesElided != 0 {
			st.CycleTablesAvoided.Add(cs.retTablesElided)
		}
		marshalNS = c.Cost.CostNS(ops)
	}
	st.WireBytes.Add(int64(m.Len()))
	n.sendReply(ec.from, ec.seq, done+marshalNS, m, ec.track, sp)
}

// sendReply seals the reply in place and ships the frame, recording a
// private copy in the dedup cache (tracked calls only) so a
// retransmitted call is answered without re-execution. It consumes m,
// and closes the callee span (when one exists) after the reply is on
// the wire: every sp handed in must have PhaseReplySerialize begun.
func (n *Node) sendReply(to int, seq, ts int64, m *wire.Message, track bool, sp *trace.Span) {
	c := n.cluster
	c.Counters.Messages.Add(1)
	c.Counters.WireBytes.Add(int64(m.Len()))
	m.SealFrame()
	sp.EndPhase(trace.PhaseReplySerialize)
	frame := m.Detach()
	if track {
		cp := wire.GetBuf(len(frame))
		copy(cp, frame)
		n.dedupComplete(dedupKey{from: to, seq: seq}, cp, ts)
	}
	pkt := transport.Packet{To: to, TS: ts, Payload: frame}
	if sp != nil {
		pkt.Wall = trace.Now()
	}
	_ = n.send(pkt)
	sp.End()
}

func (n *Node) sendError(to int, seq, floor int64, msg string, track bool, sp *trace.Span) {
	sp.Fail(msg)
	sp.BeginPhase(trace.PhaseReplySerialize)
	m := wire.Get()
	m.AppendByte(msgReply)
	m.AppendInt64(seq)
	m.AppendByte(replyError)
	m.AppendString(msg)
	n.sendReply(to, seq, floor, m, track, sp)
}

// sendMalformed answers a call whose frame the decoder rejected. The
// reply carries the replyMalformed flag so the caller surfaces a typed
// ErrMalformedFrame instead of a generic remote exception, and it is
// never tracked: the dedup cache must hold nothing keyed by fields of
// an untrusted frame.
func (n *Node) sendMalformed(to int, seq, floor int64, msg string, sp *trace.Span) {
	sp.Fail(msg)
	sp.BeginPhase(trace.PhaseReplySerialize)
	m := wire.Get()
	m.AppendByte(msgReply)
	m.AppendInt64(seq)
	m.AppendByte(replyMalformed)
	m.AppendString(msg)
	n.sendReply(to, seq, floor, m, false, sp)
}
