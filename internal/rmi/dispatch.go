package rmi

import (
	"fmt"
	"sync"

	"cormi/internal/model"
	"cormi/internal/serial"
	"cormi/internal/transport"
	"cormi/internal/wire"
)

// recvLoop drains the node's network endpoint. Incoming calls are
// deserialized here — under the node's receive lock, reproducing the
// paper's "only one thread can drain the network" rule — and then the
// user method runs in a fresh goroutine. Replies are routed to the
// pending invocation.
func (n *Node) recvLoop(wg *sync.WaitGroup) {
	defer wg.Done()
	for {
		p, ok := n.ep.Recv()
		if !ok {
			return
		}
		m := wire.FromBytes(p.Payload)
		switch t := m.ReadU8(); t {
		case msgCall:
			n.recvMu.Lock()
			n.handleCall(p, m)
			n.recvMu.Unlock()
		case msgReply:
			seq := m.ReadInt64()
			arrival := p.TS + n.cluster.Cost.MessageNS(len(p.Payload))
			flag := m.ReadU8()
			payload := p.Payload[1+8+1:]
			n.pendMu.Lock()
			ch, ok := n.pending[seq]
			if ok {
				delete(n.pending, seq)
			}
			n.pendMu.Unlock()
			if ok {
				ch <- reply{flag: flag, payload: payload, arrival: arrival}
			}
		}
	}
}

// handleCall deserializes one incoming call and launches the method.
// It runs under the node receive lock on the node's communication
// processor (the paper's GM poll thread).
func (n *Node) handleCall(p transport.Packet, m *wire.Message) {
	c := n.cluster

	// Message flight time + receiver upcall; the communication
	// processor handles dispatch and unmarshaling contention free, so
	// the invocation's timeline is purely causal.
	arrival := p.TS + c.Cost.MessageNS(len(p.Payload))
	start := arrival + c.Cost.DispatchNS

	siteID := m.ReadInt32()
	objID := m.ReadInt64()
	seq := m.ReadInt64()
	nargs := int(m.ReadInt32())
	if m.Err() != nil {
		n.sendError(p.From, seq, start, fmt.Sprintf("bad call header: %v", m.Err()))
		return
	}
	cs, ok := c.site(siteID)
	if !ok {
		n.sendError(p.From, seq, start, fmt.Sprintf("unknown call site %d", siteID))
		return
	}
	svc, ok := n.lookup(objID)
	if !ok {
		n.sendError(p.From, seq, start, fmt.Sprintf("no object %d on node %d", objID, n.ID))
		return
	}
	method, ok := svc.Methods[cs.Method]
	if !ok {
		n.sendError(p.From, seq, start, fmt.Sprintf("%s has no method %q", svc.Name, cs.Method))
		return
	}

	// The unmarshaler: take the cached argument graphs (Figure 13's
	// temp_arr guard), deserialize — overwriting them in place when
	// shapes match — and hand the copies to the user code.
	var cached []*model.Object
	if cs.cfg.Reuse {
		cached = cs.argCaches[n.ID].Take()
	}
	args, roots, ops, err := serial.ReadValues(m, c.Registry, nargs, cs.argPlans, cs.cfg, cached, c.Counters)
	if err != nil {
		n.sendError(p.From, seq, start, fmt.Sprintf("unmarshal: %v", err))
		return
	}
	start += c.Cost.CostNS(ops)

	// "a new thread is created to invoke the user's code" (Figure 1).
	go n.runMethod(cs, method, p.From, seq, start, args, roots)
}

// runMethod executes the user method, returns the cached argument
// graphs to the call site, and ships the reply (or a bare ack when the
// call site ignores the return value).
func (n *Node) runMethod(cs *CallSite, method Method, from int, seq, start int64, args []model.Value, roots []*model.Object) {
	c := n.cluster
	call := &Call{Node: n, From: from, Site: cs, start: start}
	var rets []model.Value
	err := func() (err error) {
		defer func() {
			if r := recover(); r != nil {
				err = fmt.Errorf("method panicked: %v", r)
			}
		}()
		rets = method(call, args)
		return nil
	}()
	// Escape analysis proved the argument graphs dead after the call;
	// stash them for the next invocation of this site.
	if cs.cfg.Reuse {
		cs.argCaches[n.ID].Put(roots)
	}
	// The reply leaves no earlier than the invocation's own progress
	// (start + the CPU time the method reported) and no earlier than
	// the communication processor's current time; marshaling advances
	// the latter.
	done := call.start + call.computed
	if err != nil {
		n.sendError(from, seq, done, err.Error())
		return
	}

	m := wire.NewMessage(64)
	m.AppendByte(msgReply)
	m.AppendInt64(seq)
	var marshalNS int64
	if cs.ignoreRet && cs.cfg.Mode == serial.ModeSite {
		// §3.1: the return value is ignored at this call site — send a
		// small acknowledgment instead of serializing it.
		m.AppendByte(replyAck)
		c.Counters.AcksOnly.Add(1)
	} else {
		m.AppendByte(replyValues)
		m.AppendInt32(int32(len(rets)))
		ops, werr := serial.WriteValues(m, rets, cs.retPlans, cs.cfg, c.Counters)
		if werr != nil {
			n.sendError(from, seq, done, fmt.Sprintf("marshal return: %v", werr))
			return
		}
		marshalNS = c.Cost.CostNS(ops)
	}
	ts := done + marshalNS
	c.Counters.Messages.Add(1)
	c.Counters.WireBytes.Add(int64(m.Len()))
	_ = n.ep.Send(transport.Packet{To: from, TS: ts, Payload: m.Bytes()})
}

func (n *Node) sendError(to int, seq, floor int64, msg string) {
	m := wire.NewMessage(32)
	m.AppendByte(msgReply)
	m.AppendInt64(seq)
	m.AppendByte(replyError)
	m.AppendString(msg)
	n.cluster.Counters.Messages.Add(1)
	n.cluster.Counters.WireBytes.Add(int64(m.Len()))
	_ = n.ep.Send(transport.Packet{To: to, TS: floor, Payload: m.Bytes()})
}
