package rmi

import (
	"testing"
	"time"

	"cormi/internal/model"
	"cormi/internal/serial"
	"cormi/internal/trace"
	"cormi/internal/wire"
)

// dtraceSetup builds a traced 2-node cluster serving echo(x)=x+1 with
// node 0 head-sampling every root call.
func dtraceSetup(t *testing.T, opts ...Option) (*Cluster, *trace.Tracer, *CallSite, Ref) {
	t.Helper()
	tr := trace.New(trace.Config{RingSize: 256, SampleEvery: 1})
	c := New(2, append([]Option{WithTracer(tr)}, opts...)...)
	t.Cleanup(c.Close)
	const site = "DT.echo.1"
	cs, err := c.NewCallSite(LevelSite, SiteSpec{
		Name: site, Method: "echo",
		ArgPlans: []*serial.Plan{serial.PrimitivePlan(site, model.FInt)},
		RetPlans: []*serial.Plan{serial.PrimitivePlan(site, model.FInt)},
		NumRet:   1,
	})
	if err != nil {
		t.Fatal(err)
	}
	ref := c.Node(1).Export(&Service{Name: "DT", Methods: map[string]Method{
		"echo": func(call *Call, args []model.Value) []model.Value {
			return []model.Value{model.Int(args[0].I + 1)}
		},
	}})
	return c, tr, cs, ref
}

// TestTraceContextPropagatesSyncCall proves one sampled synchronous
// call yields a two-span trace: a hop-0 caller root and a hop-1 callee
// child linked by parent ID.
func TestTraceContextPropagatesSyncCall(t *testing.T) {
	c, tr, cs, ref := dtraceSetup(t)
	if _, err := cs.Invoke(c.Node(0), ref, []model.Value{model.Int(1)}); err != nil {
		t.Fatal(err)
	}
	traces := tr.Traces()
	if len(traces) != 1 {
		t.Fatalf("%d traces retained, want 1", len(traces))
	}
	spans := tr.TraceSpans(traces[0].TraceID)
	if len(spans) != 2 {
		t.Fatalf("%d spans, want caller + callee", len(spans))
	}
	var caller, callee *trace.SpanRecord
	for i := range spans {
		switch spans[i].Kind {
		case trace.KindCaller:
			caller = &spans[i]
		case trace.KindCallee:
			callee = &spans[i]
		}
	}
	if caller == nil || callee == nil {
		t.Fatalf("missing a half: %+v", spans)
	}
	if caller.Hop != 0 || caller.ParentID != 0 {
		t.Errorf("caller hop=%d parent=%d, want root (0, 0)", caller.Hop, caller.ParentID)
	}
	if callee.TraceID != caller.TraceID {
		t.Errorf("callee trace %#x, caller trace %#x", callee.TraceID, caller.TraceID)
	}
	if callee.ParentID != caller.SpanID {
		t.Errorf("callee parent %#x, want the caller span %#x", callee.ParentID, caller.SpanID)
	}
	if callee.Hop != 1 {
		t.Errorf("callee hop %d, want 1", callee.Hop)
	}
	if traces[0].Root == "" {
		t.Error("trace summary has no root site")
	}
}

// TestTraceContextCapDemotion proves per-link capability demotion: a
// peer whose HELLO does not advertise CapTracing receives no trace
// context — the caller's root span still records and samples, the
// callee executes correctly but contributes no span to the trace.
func TestTraceContextCapDemotion(t *testing.T) {
	c, tr, cs, ref := dtraceSetup(t, WithoutCaps(1, wire.CapTracing))
	vals, err := cs.Invoke(c.Node(0), ref, []model.Value{model.Int(41)})
	if err != nil {
		t.Fatal(err)
	}
	if vals[0].I != 42 {
		t.Fatalf("echo over demoted link = %d, want 42", vals[0].I)
	}
	traces := tr.Traces()
	if len(traces) != 1 {
		t.Fatalf("%d traces retained, want the caller's root alone", len(traces))
	}
	spans := tr.TraceSpans(traces[0].TraceID)
	if len(spans) != 1 || spans[0].Kind != trace.KindCaller {
		t.Fatalf("demoted link leaked callee spans into the trace: %+v", spans)
	}
}

// TestTraceContextPipelinedChainOneTrace proves promise pipelining
// inherits the producer's trace: a dependent chain of futures becomes
// one trace whose caller spans link through their promise producers.
func TestTraceContextPipelinedChainOneTrace(t *testing.T) {
	c, tr, cs, ref := dtraceSetup(t)
	const depth = 4
	futs := make([]*Future, depth)
	futs[0] = cs.InvokeAsync(c.Node(0), ref, []model.Value{model.Int(0)}, AsyncOpts{Promised: true})
	for d := 1; d < depth; d++ {
		futs[d] = cs.InvokeAsync(c.Node(0), ref, []model.Value{{}}, AsyncOpts{
			Promised: d < depth-1,
			Promises: []PromiseArg{{Arg: 0, Fut: futs[d-1]}},
		})
	}
	for d := 0; d < depth; d++ {
		if _, err := futs[d].Wait(); err != nil {
			t.Fatalf("link %d: %v", d, err)
		}
	}
	for _, f := range futs {
		f.Release()
	}
	traces := tr.Traces()
	if len(traces) != 1 {
		t.Fatalf("%d traces retained, want the whole chain in 1", len(traces))
	}
	spans := tr.TraceSpans(traces[0].TraceID)
	if len(spans) != 2*depth {
		t.Fatalf("%d spans, want %d (caller+callee per link)", len(spans), 2*depth)
	}
	roots := 0
	for i := range spans {
		if spans[i].Kind == trace.KindCaller && spans[i].ParentID == 0 {
			roots++
		}
		if spans[i].Hop > 1 {
			t.Errorf("span hop %d on a single-link topology", spans[i].Hop)
		}
	}
	if roots != 1 {
		t.Errorf("%d root caller spans, want 1 (later links inherit the first)", roots)
	}
}

// TestTraceContextOneWayLeaf proves one-way calls carry the context:
// the callee half lands in the trace as a leaf even though no reply
// ever flows back.
func TestTraceContextOneWayLeaf(t *testing.T) {
	c, tr, cs, ref := dtraceSetup(t)
	if err := cs.InvokeOneWay(c.Node(0), ref, []model.Value{model.Int(7)}); err != nil {
		t.Fatal(err)
	}
	// One-way execution is fire-and-forget; poll until the callee span
	// lands in the store.
	var callee *trace.SpanRecord
	deadline := time.Now().Add(5 * time.Second)
	for callee == nil {
		if time.Now().After(deadline) {
			t.Fatal("one-way callee span never reached the trace store")
		}
		for _, ts := range tr.Traces() {
			spans := tr.TraceSpans(ts.TraceID)
			for i := range spans {
				if spans[i].Kind == trace.KindCallee {
					callee = &spans[i]
				}
			}
		}
		if callee == nil {
			time.Sleep(time.Millisecond)
		}
	}
	if !callee.OneWay || callee.Hop != 1 {
		t.Errorf("one-way callee oneway=%v hop=%d, want true and 1", callee.OneWay, callee.Hop)
	}
}
