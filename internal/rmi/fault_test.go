package rmi

import (
	"errors"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"cormi/internal/model"
	"cormi/internal/serial"
	"cormi/internal/transport"
)

// countingService returns arg+1 and counts how many times the method
// body actually ran — the exactly-once witness under retransmission.
func countingService(execs *atomic.Int64) *Service {
	return &Service{
		Name: "Counter",
		Methods: map[string]Method{
			"bump": func(call *Call, args []model.Value) []model.Value {
				execs.Add(1)
				return []model.Value{model.Int(args[0].I + 1)}
			},
		},
	}
}

func bumpSite(t *testing.T, c *Cluster) *CallSite {
	t.Helper()
	return c.MustNewCallSite(LevelSite, SiteSpec{
		Name: "t.bump.1", Method: "bump",
		ArgPlans: []*serial.Plan{intPlan("t.bump.1")},
		RetPlans: []*serial.Plan{intPlan("t.bump.1")},
	})
}

func TestLostReplyReturnsErrTimeout(t *testing.T) {
	// Every reply 1→0 is dropped; the calls themselves arrive. The
	// caller must surface ErrTimeout once its retry budget is spent —
	// not hang — and the callee-side dedup must keep the method body at
	// one execution despite every retransmit being delivered.
	e := newEnv(t, 2, WithFaults(transport.FaultConfig{
		Seed:  1,
		Pairs: map[[2]int]transport.FaultRates{{1, 0}: {Drop: 1}},
	}))
	var execs atomic.Int64
	ref := e.c.Node(1).Export(countingService(&execs))
	cs := bumpSite(t, e.c)

	pol := CallPolicy{Timeout: 20 * time.Millisecond, Retries: 3, Backoff: time.Millisecond}
	start := time.Now()
	_, err := cs.InvokeWithPolicy(e.c.Node(0), ref, []model.Value{model.Int(7)}, pol)
	elapsed := time.Since(start)
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("err = %v, want ErrTimeout", err)
	}
	// 4 attempts × 20ms plus backoffs; generous bound to absorb CI jitter.
	if elapsed > 2*time.Second {
		t.Fatalf("timed out only after %v; deadline not enforced", elapsed)
	}
	if got := execs.Load(); got != 1 {
		t.Fatalf("method executed %d times, want 1 (retransmits must dedup)", got)
	}
	if e.c.Counters.Retries.Load() != 3 || e.c.Counters.Timeouts.Load() != 1 {
		t.Errorf("retries=%d timeouts=%d, want 3 and 1",
			e.c.Counters.Retries.Load(), e.c.Counters.Timeouts.Load())
	}
	if e.c.Counters.DupSuppressed.Load() == 0 {
		t.Error("no duplicates suppressed; dedup cache not consulted")
	}
}

func TestPartitionReturnsErrPartitioned(t *testing.T) {
	e := newEnv(t, 2, WithFaults(transport.FaultConfig{Seed: 2}))
	var execs atomic.Int64
	ref := e.c.Node(1).Export(countingService(&execs))
	cs := bumpSite(t, e.c)

	fn := e.c.Network().(*transport.FaultyNetwork)
	fn.Partition(0, 1)
	pol := CallPolicy{Timeout: 10 * time.Millisecond, Retries: 1}
	_, err := cs.InvokeWithPolicy(e.c.Node(0), ref, []model.Value{model.Int(1)}, pol)
	if !errors.Is(err, ErrPartitioned) {
		t.Fatalf("err = %v, want ErrPartitioned", err)
	}
	if execs.Load() != 0 {
		t.Fatalf("method ran across a partition")
	}

	// After healing, the same call site works again.
	fn.Heal(0, 1)
	rets, err := cs.InvokeWithPolicy(e.c.Node(0), ref, []model.Value{model.Int(1)}, pol)
	if err != nil || rets[0].I != 2 {
		t.Fatalf("after heal: rets=%v err=%v", rets, err)
	}
}

func TestRetriesRecoverExactlyOnce(t *testing.T) {
	// A lossy, duplicating link in both directions: every call must
	// still return the right answer, and the method body must run
	// exactly once per logical call.
	e := newEnv(t, 2,
		WithFaults(transport.FaultConfig{
			Seed:       3,
			FaultRates: transport.FaultRates{Drop: 0.25, Dup: 0.25},
		}),
		WithCallPolicy(CallPolicy{Timeout: 25 * time.Millisecond, Retries: 20, Backoff: time.Millisecond}),
	)
	var execs atomic.Int64
	ref := e.c.Node(1).Export(countingService(&execs))
	cs := bumpSite(t, e.c)

	const calls = 40
	for i := 0; i < calls; i++ {
		rets, err := cs.Invoke(e.c.Node(0), ref, []model.Value{model.Int(int64(i))})
		if err != nil {
			t.Fatalf("call %d: %v", i, err)
		}
		if rets[0].I != int64(i)+1 {
			t.Fatalf("call %d returned %d, want %d", i, rets[0].I, i+1)
		}
	}
	if got := execs.Load(); got != calls {
		t.Fatalf("method executed %d times for %d calls", got, calls)
	}
	if e.c.Counters.Retries.Load() == 0 {
		t.Error("25%% drop produced no retries; faults not exercised")
	}
	// Duplicated calls are suppressed by dedup; duplicated replies land
	// as stale. At these rates at least one of each family must occur.
	if e.c.Counters.DupSuppressed.Load()+e.c.Counters.StaleReplies.Load() == 0 {
		t.Error("25%% duplication produced no suppressed duplicates")
	}
}

func TestRemotePanicBecomesRemoteException(t *testing.T) {
	e := newEnv(t, 2)
	svc := &Service{Name: "Bomb", Methods: map[string]Method{
		"boom": func(call *Call, args []model.Value) []model.Value {
			panic("kaboom")
		},
	}}
	ref := e.c.Node(1).Export(svc)
	cs := e.c.MustNewCallSite(LevelSite, SiteSpec{
		Name: "t.boom.1", Method: "boom", NumRet: 0, IgnoreRet: true,
	})
	_, err := cs.Invoke(e.c.Node(0), ref, nil)
	if err == nil {
		t.Fatal("panicking method returned nil error")
	}
	if !strings.Contains(err.Error(), "kaboom") {
		t.Errorf("error %q does not carry the panic value", err)
	}
	if !strings.Contains(err.Error(), "goroutine") {
		t.Errorf("error %q does not carry the callee stack", err)
	}
	// The callee survives: the same service keeps answering.
	if _, err := cs.Invoke(e.c.Node(0), ref, nil); err == nil ||
		!strings.Contains(err.Error(), "kaboom") {
		t.Fatalf("second call after panic: %v", err)
	}
}

func TestLocalPanicAlsoRecovered(t *testing.T) {
	e := newEnv(t, 1)
	svc := &Service{Name: "Bomb", Methods: map[string]Method{
		"boom": func(call *Call, args []model.Value) []model.Value {
			panic("local kaboom")
		},
	}}
	ref := e.c.Node(0).Export(svc)
	cs := e.c.MustNewCallSite(LevelSite, SiteSpec{
		Name: "t.boom.2", Method: "boom", NumRet: 0, IgnoreRet: true,
	})
	_, err := cs.Invoke(e.c.Node(0), ref, nil)
	if err == nil || !strings.Contains(err.Error(), "local kaboom") {
		t.Fatalf("local panic: err = %v", err)
	}
}

func TestCorruptFramesDroppedAndRecovered(t *testing.T) {
	e := newEnv(t, 2,
		WithFaults(transport.FaultConfig{
			Seed:       4,
			FaultRates: transport.FaultRates{Corrupt: 0.3},
		}),
		WithCallPolicy(CallPolicy{Timeout: 25 * time.Millisecond, Retries: 20, Backoff: time.Millisecond}),
	)
	var execs atomic.Int64
	ref := e.c.Node(1).Export(countingService(&execs))
	cs := bumpSite(t, e.c)
	const calls = 30
	for i := 0; i < calls; i++ {
		rets, err := cs.Invoke(e.c.Node(0), ref, []model.Value{model.Int(int64(i))})
		if err != nil {
			t.Fatalf("call %d: %v", i, err)
		}
		if rets[0].I != int64(i)+1 {
			t.Fatalf("call %d returned %d, want %d", i, rets[0].I, i+1)
		}
	}
	if execs.Load() != calls {
		t.Fatalf("method executed %d times for %d calls", execs.Load(), calls)
	}
	if e.c.Counters.CorruptDropped.Load() == 0 {
		t.Error("30%% corruption produced no checksum drops")
	}
}

func TestDedupCacheEviction(t *testing.T) {
	// A tiny dedup cache must still serve a full run correctly: old
	// entries are evicted FIFO, fresh calls keep flowing.
	e := newEnv(t, 2, WithDedupCap(4))
	var execs atomic.Int64
	ref := e.c.Node(1).Export(countingService(&execs))
	cs := bumpSite(t, e.c)
	for i := 0; i < 64; i++ {
		if _, err := cs.Invoke(e.c.Node(0), ref, []model.Value{model.Int(int64(i))}); err != nil {
			t.Fatal(err)
		}
	}
	if execs.Load() != 64 {
		t.Fatalf("executed %d, want 64", execs.Load())
	}
	n1 := e.c.Node(1)
	n1.dedupMu.Lock()
	size := len(n1.dedup)
	n1.dedupMu.Unlock()
	if size > 4 {
		t.Fatalf("dedup cache holds %d entries, cap is 4", size)
	}
}

func TestCloseFailsPendingWithPolicy(t *testing.T) {
	// A caller inside its retry loop must be unblocked by Close with
	// ErrClusterClosed, not left to burn through its full retry budget.
	e := newEnv(t, 2, WithFaults(transport.FaultConfig{
		Seed:  5,
		Pairs: map[[2]int]transport.FaultRates{{1, 0}: {Drop: 1}},
	}))
	var execs atomic.Int64
	ref := e.c.Node(1).Export(countingService(&execs))
	cs := bumpSite(t, e.c)

	errc := make(chan error, 1)
	go func() {
		pol := CallPolicy{Timeout: 50 * time.Millisecond, Retries: 1000}
		_, err := cs.InvokeWithPolicy(e.c.Node(0), ref, []model.Value{model.Int(1)}, pol)
		errc <- err
	}()
	time.Sleep(20 * time.Millisecond) // let the call get in flight
	e.c.Close()
	select {
	case err := <-errc:
		if !errors.Is(err, ErrClusterClosed) {
			t.Fatalf("err = %v, want ErrClusterClosed", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Close did not unblock the retrying caller")
	}
}

// TestBackoffSaturates: with no MaxBackoff set, the exponential
// doubling must saturate rather than grow into multi-minute sleeps or
// overflow the shift into a negative duration (which would skip the
// sleep entirely). This is what keeps a deep retry budget bounded.
func TestBackoffSaturates(t *testing.T) {
	pol := CallPolicy{Timeout: 10 * time.Millisecond, Retries: 64, Backoff: time.Millisecond}
	var total time.Duration
	for retry := 1; retry <= pol.Retries; retry++ {
		d := pol.nextBackoff(retry)
		if d <= 0 {
			t.Fatalf("nextBackoff(%d) = %v, want positive", retry, d)
		}
		if d > maxUncappedBackoff {
			t.Fatalf("nextBackoff(%d) = %v, exceeds saturation %v", retry, d, maxUncappedBackoff)
		}
		total += d
	}
	if limit := time.Duration(pol.Retries) * maxUncappedBackoff; total > limit {
		t.Fatalf("total backoff %v exceeds %v", total, limit)
	}
	capped := CallPolicy{Backoff: time.Millisecond, MaxBackoff: 8 * time.Millisecond}
	if d := capped.nextBackoff(40); d != 8*time.Millisecond {
		t.Fatalf("capped nextBackoff(40) = %v, want 8ms", d)
	}
}
