package rmi

import (
	"sort"
	"sync"
	"sync/atomic"

	"cormi/internal/serial"
	"cormi/internal/stats"
	"cormi/internal/wire"
)

// Link-level version negotiation.
//
// Every directed link performs a HELLO fingerprint exchange before its
// first payload frame: each side states its wire protocol version and
// one fingerprint per class (serial.ClassFingerprint of the layout its
// compiled plans assume). Classes whose fingerprints disagree are
// demoted to the self-describing class-level encoding for the life of
// the link (serial.Negotiate), so a mixed-version cluster keeps
// serving correct traffic at class-mode cost instead of failing or —
// far worse — silently mis-decoding planned frames.
//
// The exchange is lazy (first use of the link) because applications
// register classes and compile sites after the cluster is built, and
// it runs over the control plane rather than the lossy data plane:
// in-process the two HELLOs are handed across directly, while the TCP
// transport additionally stamps each connection with a version
// preamble (wire.Preamble). The HELLO bytes still round-trip through
// wire.EncodeHello/DecodeHello so the hardened handshake decoder is on
// the real path; an undecodable HELLO degrades the link to all-classes
// demoted rather than trusting an unverifiable peer.

// skewSalt perturbs fingerprints under WithPlanSkew, simulating a peer
// whose plans were compiled from a different program version.
const skewSalt = 0x9e3779b97f4a7c15

// nodeLink is one directed link's negotiated wire state, initialized
// at most once on first use.
type nodeLink struct {
	once sync.Once
	// lp is the negotiated plan table; nil when every fingerprint
	// agreed (the homogeneous fast path — writers pay one nil check).
	lp *serial.LinkPlans
	// version is the link's negotiated protocol version,
	// min(local, remote); peerPlans is the peer's plan generation.
	version   int32
	peerPlans int32
	// caps is the link's negotiated capability set: the intersection of
	// both HELLOs' advertised bits (wire.Cap*). Optional features —
	// promise pipelining, one-way calls, frame batching — are used on
	// this link only when the corresponding bit survived negotiation.
	caps uint32
	// malformedDumped latches the one flight-recorder dump this link
	// records on its first malformed frame.
	malformedDumped atomic.Bool
	ready           atomic.Bool
}

// linkTo returns the negotiated link state for the peer, performing
// the HELLO exchange on first use. After initialization the call is a
// bounds check plus sync.Once fast path. Out-of-range peers (hostile
// From fields) return nil.
func (n *Node) linkTo(peer int) *nodeLink {
	if peer < 0 || peer >= len(n.links) {
		return nil
	}
	l := &n.links[peer]
	l.once.Do(func() {
		n.cluster.negotiateLink(n.ID, peer, l)
		l.ready.Store(true)
	})
	return l
}

// helloBytes builds the encoded HELLO frame node would send: protocol
// version, plan generation, and the fingerprint of every registered
// class, with WithPlanSkew salts applied.
func (c *Cluster) helloBytes(node int) []byte {
	c.fpOnce.Do(func() { c.fps = serial.RegistryFingerprints(c.Registry) })
	fps := c.fps
	h := &wire.Hello{Version: wire.ProtocolVersion, PlanVersion: 1, Node: int32(node), Caps: wire.LocalCaps &^ c.capsMask[node]}
	skewClasses, skewed := c.skew[node]
	var skewSet map[string]bool
	if skewed {
		h.PlanVersion = 2
		if len(skewClasses) > 0 {
			skewSet = make(map[string]bool, len(skewClasses))
			for _, name := range skewClasses {
				skewSet[name] = true
			}
		}
	}
	names := make([]string, 0, len(fps))
	for name := range fps {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		fp := fps[name]
		if skewed && (skewSet == nil || skewSet[name]) {
			fp ^= skewSalt
		}
		h.Entries = append(h.Entries, wire.HelloEntry{Name: name, FP: fp})
	}
	return wire.EncodeHello(h)
}

// negotiateLink performs the HELLO exchange for the link local→peer
// and fills l. Both HELLOs pass through the hardened DecodeHello; a
// HELLO that fails to decode demotes every class rather than trusting
// the peer's plans.
func (c *Cluster) negotiateLink(local, peer int, l *nodeLink) {
	localHello, lerr := wire.DecodeHello(c.helloBytes(local))
	peerHello, perr := wire.DecodeHello(c.helloBytes(peer))
	if lerr != nil || perr != nil {
		// An unverifiable peer gets no optional features either: caps
		// stay zero, so pipelining, one-way and batching all demote to
		// their synchronous fallbacks on this link.
		l.version = wire.ProtocolVersion
		l.lp = serial.DemoteAll(c.Registry)
		return
	}
	l.version = localHello.Version
	if peerHello.Version < l.version {
		l.version = peerHello.Version
	}
	l.peerPlans = peerHello.PlanVersion
	l.caps = localHello.Caps & peerHello.Caps
	l.lp = serial.Negotiate(c.Registry, fpMap(localHello), fpMap(peerHello))
}

func fpMap(h *wire.Hello) map[string]uint64 {
	m := make(map[string]uint64, len(h.Entries))
	for _, e := range h.Entries {
		m[e.Name] = e.FP
	}
	return m
}

// noteMalformed records a malformed frame received from peer: the
// cluster-wide counter, and a one-shot flight-recorder dump per link
// so the first hostile frame leaves forensics without letting an
// attacker flood the recorder.
func (n *Node) noteMalformed(from int) {
	c := n.cluster
	c.Counters.MalformedFrames.Add(1)
	if l := n.linkTo(from); l != nil && l.malformedDumped.CompareAndSwap(false, true) {
		n.tracer.DumpFailure("malformed-frame")
	}
}

// LinkStats snapshots every negotiated link in the cluster (links that
// have never carried traffic are omitted). Surfaced on /links and in
// the rmibench negotiation report.
func (c *Cluster) LinkStats() []stats.LinkStat {
	var out []stats.LinkStat
	for _, n := range c.nodes {
		for peer := range n.links {
			l := &n.links[peer]
			if !l.ready.Load() {
				continue
			}
			ls := stats.LinkStat{
				From:           n.ID,
				To:             peer,
				Version:        l.version,
				PeerPlans:      l.peerPlans,
				DemotedClasses: l.lp.DemotedCount(),
				Fallbacks:      l.lp.Fallbacks(),
				Caps:           l.caps,
			}
			if n.batchers != nil && n.batchers[peer] != nil {
				b := n.batchers[peer]
				ls.BatchedFrames = b.batched.Load()
				ls.BatchFlushes = b.flushes.Load()
			}
			out = append(out, ls)
		}
	}
	return out
}
