package rmi

import (
	"testing"
	"time"

	"cormi/internal/model"
	"cormi/internal/serial"
	"cormi/internal/transport"
	"cormi/internal/wire"
)

// TestHomogeneousNegotiation: identical registries must negotiate to a
// nil plan table (the one-nil-check hot path) and count zero fallbacks.
func TestHomogeneousNegotiation(t *testing.T) {
	e := newEnv(t, 2)
	ref := e.c.Node(1).Export(e.sumService())
	cs := e.c.MustNewCallSite(LevelSite, SiteSpec{
		Name: "t.sum.1", Method: "sum",
		ArgPlans: []*serial.Plan{e.listPlan("t.sum.1", true, false)},
		RetPlans: []*serial.Plan{intPlan("t.sum.1")},
	})
	if _, err := cs.Invoke(e.c.Node(0), ref, []model.Value{model.Ref(e.makeList(5))}); err != nil {
		t.Fatal(err)
	}
	l := e.c.Node(0).linkTo(1)
	if l == nil || !l.ready.Load() {
		t.Fatal("link 0->1 not negotiated after a call")
	}
	if l.lp != nil {
		t.Fatalf("homogeneous link negotiated %d demotions", l.lp.DemotedCount())
	}
	if l.version != wire.ProtocolVersion {
		t.Fatalf("negotiated version %d", l.version)
	}
	if fb := e.c.Counters.PlanFallbacks.Load(); fb != 0 {
		t.Fatalf("homogeneous cluster counted %d fallbacks", fb)
	}
}

// TestSkewedClusterDemotesAndStaysCorrect: with node 1 skewed, site
// calls still return correct results, fallbacks are counted, and
// LinkStats reports the demotions.
func TestSkewedClusterDemotesAndStaysCorrect(t *testing.T) {
	e := newEnv(t, 2, WithPlanSkew(1))
	ref := e.c.Node(1).Export(e.sumService())
	cs := e.c.MustNewCallSite(LevelSite, SiteSpec{
		Name: "t.sum.1", Method: "sum",
		ArgPlans: []*serial.Plan{e.listPlan("t.sum.1", true, false)},
		RetPlans: []*serial.Plan{intPlan("t.sum.1")},
	})
	for i := 0; i < 4; i++ {
		rets, err := cs.Invoke(e.c.Node(0), ref, []model.Value{model.Ref(e.makeList(10))})
		if err != nil {
			t.Fatal(err)
		}
		if rets[0].I != 45 {
			t.Fatalf("sum over skewed link = %d, want 45", rets[0].I)
		}
	}
	if fb := e.c.Counters.PlanFallbacks.Load(); fb == 0 {
		t.Fatal("skewed link counted no plan fallbacks")
	}
	ls := e.c.LinkStats()
	if len(ls) == 0 {
		t.Fatal("no negotiated links reported")
	}
	var saw bool
	for _, l := range ls {
		if l.From == 0 && l.To == 1 {
			saw = true
			if l.DemotedClasses == 0 {
				t.Error("link 0->1 reports no demoted classes")
			}
			if l.Fallbacks == 0 {
				t.Error("link 0->1 reports no fallbacks")
			}
			if l.PeerPlans != 2 {
				t.Errorf("peer plan generation %d, want 2 (skewed)", l.PeerPlans)
			}
		}
	}
	if !saw {
		t.Fatalf("link 0->1 missing from %+v", ls)
	}
}

// TestMalformedCallFrameRejectedTyped injects a crafted call frame with
// a valid header but hostile arguments, and checks the full rejection
// pipeline: typed counter incremented, the dedup cache holds nothing
// for the forged key — an honest retransmit stream under the same
// (from, seq) must not be swallowed — and the link keeps serving.
func TestMalformedCallFrameRejectedTyped(t *testing.T) {
	e := newEnv(t, 2)
	ref := e.c.Node(1).Export(e.sumService())
	cs := e.c.MustNewCallSite(LevelSite, SiteSpec{
		Name: "t.sum.1", Method: "sum",
		ArgPlans: []*serial.Plan{e.listPlan("t.sum.1", true, false)},
		RetPlans: []*serial.Plan{intPlan("t.sum.1")},
	})
	// A warm-up call negotiates the link and proves the site works.
	if _, err := cs.Invoke(e.c.Node(0), ref, []model.Value{model.Ref(e.makeList(3))}); err != nil {
		t.Fatal(err)
	}

	// Craft the hostile frame: valid msgCall header addressed to the
	// real site and object, one argument, then a bad reference marker.
	const forgedSeq = 999_999
	m := wire.Get()
	m.AppendByte(msgCall)
	m.AppendByte(callFlagRetryable)
	m.AppendInt32(cs.ID)
	m.AppendInt64(ref.Obj)
	m.AppendInt64(forgedSeq)
	m.AppendInt32(1)
	m.AppendByte(77) // no such reference marker
	m.SealFrame()
	if err := e.c.Network().Endpoint(0).Send(transport.Packet{To: 1, Payload: m.Detach()}); err != nil {
		t.Fatal(err)
	}

	deadline := time.Now().Add(2 * time.Second)
	for e.c.Counters.MalformedFrames.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("malformed frame never counted")
		}
		time.Sleep(time.Millisecond)
	}

	// The forged key must not linger in the callee's dedup cache. Poll:
	// the entry is admitted before unmarshal and withdrawn on rejection.
	callee := e.c.Node(1)
	held := true
	for deadline = time.Now().Add(2 * time.Second); time.Now().Before(deadline); {
		callee.dedupMu.Lock()
		_, held = callee.dedup[dedupKey{from: 0, seq: forgedSeq}]
		callee.dedupMu.Unlock()
		if !held {
			break
		}
		time.Sleep(time.Millisecond)
	}
	if held {
		t.Fatal("dedup cache retained an entry keyed by a malformed frame")
	}

	// The link still serves honest traffic afterwards.
	rets, err := cs.Invoke(e.c.Node(0), ref, []model.Value{model.Ref(e.makeList(3))})
	if err != nil {
		t.Fatalf("honest call after malformed frame: %v", err)
	}
	if rets[0].I != 3 {
		t.Fatalf("sum = %d, want 3", rets[0].I)
	}
}

// TestUnknownMessageTagCountsMalformed: a CRC-valid frame with an
// unknown tag is a protocol violation, not transport corruption.
func TestUnknownMessageTagCountsMalformed(t *testing.T) {
	e := newEnv(t, 2)
	m := wire.Get()
	m.AppendByte(0xEE)
	m.SealFrame()
	if err := e.c.Network().Endpoint(0).Send(transport.Packet{To: 1, Payload: m.Detach()}); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(2 * time.Second)
	for e.c.Counters.MalformedFrames.Load() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("unknown-tag frame never counted as malformed")
		}
		time.Sleep(time.Millisecond)
	}
	if got := e.c.Counters.CorruptDropped.Load(); got != 0 {
		t.Fatalf("unknown tag miscounted as corruption (%d)", got)
	}
}

func TestNoteMalformedOutOfRangePeer(t *testing.T) {
	e := newEnv(t, 2)
	// A hostile From field outside the cluster must not panic and must
	// still count.
	e.c.Node(0).noteMalformed(99)
	e.c.Node(0).noteMalformed(-3)
	if got := e.c.Counters.MalformedFrames.Load(); got != 2 {
		t.Fatalf("MalformedFrames = %d, want 2", got)
	}
}
