package rmi

import (
	"sync/atomic"
	"testing"
	"time"

	"cormi/internal/model"
	"cormi/internal/stats"
)

// waitOverload polls Cluster.Overload until cond accepts the snapshot
// (these are live levels fed by background goroutines).
func waitOverload(t *testing.T, c *Cluster, what string, cond func(stats.OverloadStats) bool) stats.OverloadStats {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		o := c.Overload()
		if cond(o) {
			return o
		}
		if time.Now().After(deadline) {
			t.Fatalf("overload condition %q never held; last %s", what, o)
		}
		time.Sleep(time.Millisecond)
	}
}

func TestOverloadTracksParkedExecutorsAndPendingCalls(t *testing.T) {
	e := newEnv(t, 2)
	if o := e.c.Overload(); o != (stats.OverloadStats{}) {
		t.Fatalf("idle cluster overload = %s, want zero", o)
	}

	gate := make(chan struct{})
	var execs atomic.Int64
	ref := pipelineEnv(t, e.c, gate, &execs)
	slow := pipeSite(t, e.c, "slow")
	bump := pipeSite(t, e.c, "bump")

	// The producer blocks at the callee, so the dependent call parks:
	// while it does, the caller has pending replies outstanding, the
	// promise table holds the producer's entry, and one executor is
	// parked.
	f1 := slow.InvokeAsync(e.c.Node(0), ref, []model.Value{model.Int(1)}, AsyncOpts{Promised: true})
	f2 := bump.InvokeAsync(e.c.Node(0), ref, []model.Value{{}}, AsyncOpts{
		Promises: []PromiseArg{{Arg: 0, Fut: f1}},
	})
	o := waitOverload(t, e.c, "parked executor", func(o stats.OverloadStats) bool {
		return o.PromiseParked == 1
	})
	if o.PendingCalls < 1 {
		t.Errorf("PendingCalls = %d while two calls are in flight", o.PendingCalls)
	}
	if o.PromiseTable < 1 {
		t.Errorf("PromiseTable = %d while a promised call is in flight", o.PromiseTable)
	}

	close(gate)
	if _, err := f2.Wait(); err != nil {
		t.Fatal(err)
	}
	if _, err := f1.Wait(); err != nil {
		t.Fatal(err)
	}
	f1.Release()
	f2.Release()
	// Levels drain back: no executor stays parked, no reply stays owed.
	waitOverload(t, e.c, "drained", func(o stats.OverloadStats) bool {
		return o.PromiseParked == 0 && o.PendingCalls == 0
	})
}

func TestOverloadTracksBatchQueueDepth(t *testing.T) {
	// A flush window effectively infinite keeps the container pending
	// until FlushBatches, so the depth reading is deterministic.
	e := newEnv(t, 2, WithBatching(BatchConfig{FlushEvery: time.Hour}))
	var execs atomic.Int64
	ref := e.c.Node(1).Export(countingService(&execs))
	cs := bumpSite(t, e.c)

	if err := cs.InvokeOneWay(e.c.Node(0), ref, []model.Value{model.Int(1)}); err != nil {
		t.Fatal(err)
	}
	o := waitOverload(t, e.c, "queued frame", func(o stats.OverloadStats) bool {
		return o.BatchQueueDepth >= 1
	})
	_ = o
	e.c.FlushBatches()
	waitOverload(t, e.c, "flushed", func(o stats.OverloadStats) bool {
		return o.BatchQueueDepth == 0
	})
}
