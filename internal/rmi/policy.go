package rmi

import (
	"errors"
	"time"

	"cormi/internal/wire"
)

// Sentinel errors for the failure paths a remote call can take. Wrap
// checks should use errors.Is.
var (
	// ErrTimeout is returned when a call's deadline (and retry budget)
	// expires without a reply.
	ErrTimeout = errors.New("rmi: call timed out")
	// ErrPartitioned is returned instead of ErrTimeout when the network
	// reports the callee unreachable (transport.PartitionReporter).
	ErrPartitioned = errors.New("rmi: destination partitioned")
	// ErrClusterClosed is returned for calls pending or issued across
	// Cluster.Close.
	ErrClusterClosed = errors.New("rmi: cluster closed")
	// ErrMalformedFrame is wire.ErrMalformedFrame re-exported at the
	// RMI layer: a CRC-valid frame whose content violated the protocol
	// (hostile or version-skewed input). Distinct from the transport
	// faults above — retrying the same bytes cannot succeed.
	ErrMalformedFrame = wire.ErrMalformedFrame
)

// CallPolicy bounds one remote invocation in real (wall-clock) time:
// each attempt waits at most Timeout for a reply; on expiry the call is
// retransmitted — under the same sequence number, so the callee's dedup
// cache absorbs redeliveries without re-executing the user method — up
// to Retries times, sleeping Backoff (doubling, capped at MaxBackoff)
// before each retransmit.
//
// The zero policy preserves the paper's semantics on a reliable
// interconnect: wait for the reply indefinitely (but never across
// Cluster.Close).
//
// Asynchronous variants interact with the policy as follows:
//
//   - Futures (InvokeAsync): the policy is enforced by whoever drives
//     the future — the deadline clock effectively starts at Wait (or at
//     the driver goroutine Done starts), and retransmits are sent from
//     the waiting goroutine. An issued-but-never-waited future times
//     nothing out; Release reclaims its resources.
//   - One-way calls (InvokeOneWay): exactly one send, always. There is
//     no reply to arm a retry timer from, so Timeout and Retries are
//     ignored and delivery is at-most-once on a lossy network. Callers
//     needing acknowledgment should use a future instead.
//   - Pipelined calls: retried like any other call; redeliveries of
//     both the producer and the dependent call are absorbed by the
//     callee's (from, seq) dedup cache, and the promise table keeps the
//     first published outcome, so retransmits cannot double-splice.
type CallPolicy struct {
	// Timeout is the per-attempt reply deadline; 0 means wait forever.
	Timeout time.Duration
	// Retries is the number of retransmissions after the first attempt.
	Retries int
	// Backoff is the sleep before the first retransmit; it doubles per
	// attempt.
	Backoff time.Duration
	// MaxBackoff caps the doubling. 0 means no explicit cap; the
	// doubling still saturates at maxUncappedBackoff so a deep retry
	// budget can never turn into a multi-minute (or, after shift
	// overflow, negative) sleep.
	MaxBackoff time.Duration
}

// maxUncappedBackoff bounds exponential backoff when MaxBackoff is
// unset. Without it a policy like {Backoff: 1ms, Retries: 64} sleeps
// ~9 minutes by retry 20 and overflows the shift entirely by retry 64.
const maxUncappedBackoff = time.Second

// attempts returns the total send budget.
func (p CallPolicy) attempts() int {
	if p.Timeout <= 0 || p.Retries < 0 {
		return 1
	}
	return 1 + p.Retries
}

// nextBackoff returns the sleep before the given retransmit (1-based)
// under exponential growth.
func (p CallPolicy) nextBackoff(retry int) time.Duration {
	if p.Backoff <= 0 {
		return 0
	}
	max := p.MaxBackoff
	if max <= 0 {
		max = maxUncappedBackoff
	}
	// Double up to the cap without ever overflowing the shift.
	d := p.Backoff
	for i := 1; i < retry && d < max; i++ {
		d <<= 1
	}
	if d > max {
		d = max
	}
	return d
}
