package rmi

import (
	"cormi/internal/model"
)

// Per-node promise table for pipelined calls.
//
// A pipelined call names one of its arguments by promise handle — the
// (from, seq) identity of an earlier call whose result has not come
// back to the caller yet — instead of by value. The callee resolves
// the handle against this table: when the named call has already
// executed here, the recorded results splice straight into the
// argument slot; when it is still running, the pipelined call parks on
// the entry's ready channel until the producer fulfills it. Either
// way the caller never waited for the intermediate result, so a
// depth-N dependent chain costs one caller round trip instead of N.
//
// The table is keyed by the same (from, seq) identity as the dedup
// cache, so a handle can only name a call issued by the same caller —
// a hostile peer cannot splice another node's results into its own
// arguments. Entries are bounded (Cluster.promiseCap) with FIFO
// eviction that prefers completed entries; evicting a still-pending
// entry fails any calls parked on it rather than leaving them parked
// forever.

// promiseEntry is one call's recorded outcome (or the rendezvous for
// calls arriving before the outcome exists).
type promiseEntry struct {
	done bool
	vals []model.Value // deep-cloned results; valid when done && err == ""
	err  string        // non-empty when the producing call failed
	ts   int64         // virtual time the producing call completed
	// ready is closed when the entry transitions to done. Created
	// lazily by the first pipelined call that arrives early.
	ready chan struct{}
}

// promiseGet returns the entry for key, creating a pending entry (with
// a ready channel to park on) if none exists yet — the pipelined call
// raced ahead of its producer.
func (n *Node) promiseGet(key dedupKey) *promiseEntry {
	n.promMu.Lock()
	e := n.promises[key]
	if e == nil {
		e = &promiseEntry{ready: make(chan struct{})}
		n.promiseInsertLocked(key, e)
	}
	n.promMu.Unlock()
	return e
}

// promiseFulfill records the successful outcome of call key so later
// (or parked) pipelined calls can splice its results. vals are
// deep-cloned at publication: the producer's reply buffer and arg
// caches recycle independently of how long the promise lives.
func (n *Node) promiseFulfill(key dedupKey, vals []model.Value, ts int64) {
	n.promiseComplete(key, model.CloneValues(vals, nil), "", ts)
}

// promiseFail records that call key failed; parked pipelined calls
// propagate the error instead of executing with a garbage argument.
func (n *Node) promiseFail(key dedupKey, msg string, ts int64) {
	n.promiseComplete(key, nil, msg, ts)
}

func (n *Node) promiseComplete(key dedupKey, vals []model.Value, errMsg string, ts int64) {
	n.promMu.Lock()
	e := n.promises[key]
	if e == nil {
		e = &promiseEntry{}
		n.promiseInsertLocked(key, e)
	}
	if e.done {
		// Duplicate completion (retransmitted producer absorbed by the
		// dedup cache re-announcing): first outcome wins.
		n.promMu.Unlock()
		return
	}
	e.done = true
	e.vals = vals
	e.err = errMsg
	e.ts = ts
	ready := e.ready
	n.promMu.Unlock()
	if ready != nil {
		close(ready)
	}
}

// promiseInsertLocked adds a new entry, evicting FIFO at capacity.
// Completed entries evict first (their consumers have had their
// chance); when every older entry is still pending, the oldest pending
// entry is failed so its parked calls error out instead of waiting on
// an entry the table no longer tracks.
func (n *Node) promiseInsertLocked(key dedupKey, e *promiseEntry) {
	cap := n.cluster.promiseCap
	for cap > 0 && len(n.promises) >= cap && len(n.promQ) > 0 {
		victimIdx := -1
		for i, k := range n.promQ {
			if v := n.promises[k]; v == nil {
				// Stale queue slot from a prior eviction scan.
				victimIdx = i
				break
			} else if v.done {
				victimIdx = i
				break
			}
		}
		if victimIdx < 0 {
			victimIdx = 0
		}
		k := n.promQ[victimIdx]
		n.promQ = append(n.promQ[:victimIdx], n.promQ[victimIdx+1:]...)
		v := n.promises[k]
		delete(n.promises, k)
		if v != nil && !v.done {
			v.done = true
			v.err = "promise evicted"
			if v.ready != nil {
				close(v.ready)
			}
		}
	}
	if n.promises == nil {
		n.promises = make(map[dedupKey]*promiseEntry)
	}
	n.promises[key] = e
	n.promQ = append(n.promQ, key)
}

// failPromises fails every still-pending entry (cluster shutdown), so
// pipelined calls parked on a producer that will never run unblock
// with an error instead of leaking their handler goroutines.
func (n *Node) failPromises() {
	n.promMu.Lock()
	var toClose []chan struct{}
	for _, e := range n.promises {
		if !e.done {
			e.done = true
			e.err = ErrClusterClosed.Error()
			if e.ready != nil {
				toClose = append(toClose, e.ready)
			}
		}
	}
	n.promMu.Unlock()
	for _, ch := range toClose {
		close(ch)
	}
}
