// Package rmi is the remote-method-invocation runtime: a cluster of
// nodes connected by a transport, remote object references, and
// per-call-site stubs. It reimplements the JavaParty/Manta runtime
// behavior the paper relies on:
//
//   - a generated marshaler serializes arguments and sends them to the
//     callee, where an unmarshaler reconstitutes copies and invokes the
//     user code in a fresh thread (Figure 1);
//   - node-local calls deep-clone arguments and results so parameter
//     passing semantics do not depend on object placement;
//   - one receiver drains a node's network at a time (the paper's
//     unmarshaler lock);
//   - callee-side argument caches and caller-side return-value caches
//     implement the object-reuse optimization with the take/put guard
//     of Figure 13.
//
// Virtual time: every node has a simtime.Clock; marshaling,
// unmarshaling, allocation and message flight advance the clocks
// through the cluster's cost model, so Cluster.MaxTime is the virtual
// makespan that the benchmark tables report.
package rmi

import (
	"fmt"
	"sync"
	"sync/atomic"

	"cormi/internal/model"
	"cormi/internal/simtime"
	"cormi/internal/stats"
	"cormi/internal/trace"
	"cormi/internal/transport"
	"cormi/internal/wire"
)

// OptLevel names the five optimization configurations evaluated in the
// paper's tables.
type OptLevel int

const (
	// LevelClass is per-class serialization (the baseline).
	LevelClass OptLevel = iota
	// LevelSite enables call-site-specific serializers (§3.1).
	LevelSite
	// LevelSiteCycle adds static cycle-detection elimination (§3.2).
	LevelSiteCycle
	// LevelSiteReuse adds argument/return-value reuse (§3.3).
	LevelSiteReuse
	// LevelSiteReuseCycle enables all optimizations.
	LevelSiteReuseCycle
)

// AllLevels lists the configurations in table order.
var AllLevels = []OptLevel{LevelClass, LevelSite, LevelSiteCycle, LevelSiteReuse, LevelSiteReuseCycle}

func (l OptLevel) String() string {
	switch l {
	case LevelClass:
		return "class"
	case LevelSite:
		return "site"
	case LevelSiteCycle:
		return "site + cycle"
	case LevelSiteReuse:
		return "site + reuse"
	case LevelSiteReuseCycle:
		return "site + reuse + cycle"
	default:
		return fmt.Sprintf("OptLevel(%d)", int(l))
	}
}

// Config returns the serializer configuration for this level.
func (l OptLevel) Config() Config {
	switch l {
	case LevelClass:
		return Config{}
	case LevelSite:
		return Config{Site: true}
	case LevelSiteCycle:
		return Config{Site: true, CycleElim: true}
	case LevelSiteReuse:
		return Config{Site: true, Reuse: true}
	default:
		return Config{Site: true, CycleElim: true, Reuse: true}
	}
}

// Config mirrors serial.Config at the RMI layer.
type Config struct {
	Site      bool
	CycleElim bool
	Reuse     bool
}

// Ref identifies an exported remote object.
type Ref struct {
	Node int
	Obj  int64
}

// Method is the implementation of one remotely invokable method. It
// receives deserialized argument copies and returns the values to ship
// back. Methods run in their own goroutine (the paper's "new thread is
// created to invoke the user's code").
type Method func(call *Call, args []model.Value) []model.Value

// Service is a remotely invokable object: a named method table.
type Service struct {
	Name    string
	Methods map[string]Method
}

// Call carries per-invocation context into a Method.
type Call struct {
	// Node is the node executing the method; use it for nested RMIs.
	Node *Node
	// From is the id of the invoking node.
	From int
	// Site is the call site that produced this invocation.
	Site *CallSite

	// start is the invocation's virtual start time (arrival +
	// dispatch + unmarshal) and computed the CPU/wait time the method
	// reported; together they floor the reply timestamp.
	start    int64
	computed int64

	// tctx is the invocation's distributed-trace inheritance handle
	// (zero when the call was not sampled): the trace ID, this callee
	// span's ID as the parent for descendants, and this hop's depth.
	// Nested calls issued through InvokeFrom (or an AsyncOpts.Trace
	// carrying it) join the caller's cross-node call tree.
	tctx wire.TraceContext
}

// Compute advances the executing node's virtual clock by ns
// nanoseconds, modeling the method's own CPU work.
func (c *Call) Compute(ns int64) {
	c.Node.Clock.Advance(ns)
	c.computed += ns
}

// Start returns the invocation's virtual start time.
func (c *Call) Start() int64 { return c.start }

// TraceContext returns the invocation's distributed-trace context —
// zero when the call was not sampled. Methods issuing nested RMIs
// through a bare CallSite.Invoke break the trace at this hop; use
// InvokeFrom (or pass the context via AsyncOpts.Trace) to keep the
// cross-node call tree connected.
func (c *Call) TraceContext() wire.TraceContext { return c.tctx }

// WaitUntil raises the invocation's completion floor to ts without
// charging CPU time — condition waits (e.g. a barrier's release) delay
// the reply but burn no cycles.
func (c *Call) WaitUntil(ts int64) {
	if d := ts - (c.start + c.computed); d > 0 {
		c.computed += d
	}
}

// Cluster is a set of nodes sharing a transport, a class registry, a
// cost model and a statistics block.
type Cluster struct {
	Registry *model.Registry
	Counters *stats.Counters
	Cost     simtime.CostModel

	net   transport.Network
	owns  bool // whether Close should close the network
	nodes []*Node

	policy   CallPolicy
	dedupCap int
	// faulty records that the interconnect can duplicate packets on its
	// own. With a fault-free network and a non-retrying call policy,
	// duplicate call delivery is impossible, so the callee skips dedup
	// bookkeeping entirely on that hot path.
	faulty bool

	// tracer is the observability layer (nil = tracing off, the
	// default). With a tracer attached, every remote invocation opens
	// pooled caller/callee spans keyed by (from, seq) and the flight
	// recorder auto-dumps on timeouts, partitions and panics. Disabled
	// tracing costs one nil check per call and zero allocations.
	tracer *trace.Tracer

	// claimEvery > 0 enables audit mode: every claimEvery-th
	// invocation (cluster-wide, counted by claimTick) re-verifies the
	// compile-time claims the optimizer acted on. Zero — the default —
	// costs one predictable branch per call.
	claimEvery int64
	claimTick  atomic.Int64

	// skew maps node ID → class names whose plan fingerprints that node
	// advertises with a version-skew salt (empty slice = all classes).
	// Test/chaos-harness knob (WithPlanSkew) simulating a mixed-version
	// cluster: the skewed node's HELLO disagrees with its peers', so
	// links to and from it negotiate those classes down to the
	// class-level encoding. nil in production-shaped clusters.
	skew map[int][]string

	// capsMask maps node ID → capability bits stripped from that node's
	// HELLO advertisement (WithoutCaps). Test knob simulating a peer
	// that does not speak an optional protocol feature; links touching
	// the node negotiate the feature away.
	capsMask map[int]uint32

	// batch, when non-nil, enables the per-link outbound frame batcher
	// (WithBatching) with the given flush window and budgets.
	batch *BatchConfig

	// promiseCap bounds each node's promise table (default 1024).
	promiseCap int

	// promiseParked tracks the executor goroutines currently parked on
	// an unresolved promise (level, not a monotone total — see
	// stats.OverloadStats.PromiseParked).
	promiseParked atomic.Int64

	// futPool recycles Future structs across asynchronous invocations.
	futPool sync.Pool

	// fpOnce guards the one registry fingerprint pass shared by every
	// link negotiation: model.Class.AllFields caches lazily, so the
	// flattening must not race when several links negotiate at once.
	fpOnce sync.Once
	fps    map[string]uint64

	siteMu sync.RWMutex
	sites  []*CallSite

	closed atomic.Bool
	done   chan struct{} // closed by Close; unblocks pending invokers
	wg     sync.WaitGroup
}

// Option configures a cluster.
type Option func(*clusterOpts)

type clusterOpts struct {
	net        transport.Network
	owns       bool
	cost       simtime.CostModel
	registry   *model.Registry
	depth      int
	policy     CallPolicy
	faults     *transport.FaultConfig
	dedupCap   int
	tracer     *trace.Tracer
	claimEvery int64
	skew       map[int][]string
	capsMask   map[int]uint32
	batch       *BatchConfig
	promiseCap  int
	nodeTracers map[int]*trace.Tracer
}

// WithNetwork runs the cluster over an externally created network
// (e.g. TCP); the cluster still closes it on Close.
func WithNetwork(n transport.Network) Option {
	return func(o *clusterOpts) { o.net = n; o.owns = true }
}

// WithCostModel overrides the default calibrated cost model.
func WithCostModel(m simtime.CostModel) Option {
	return func(o *clusterOpts) { o.cost = m }
}

// WithRegistry shares a class registry with the caller.
func WithRegistry(r *model.Registry) Option {
	return func(o *clusterOpts) { o.registry = r }
}

// WithCallPolicy sets the cluster-wide default deadline/retry policy
// for remote invocations (per-call overrides via InvokeWithPolicy).
func WithCallPolicy(p CallPolicy) Option {
	return func(o *clusterOpts) { o.policy = p }
}

// WithFaults wraps the cluster's network — the default channel network
// or one supplied via WithNetwork — in a transport.FaultyNetwork with
// the given seeded fault configuration (chaos mode).
func WithFaults(cfg transport.FaultConfig) Option {
	return func(o *clusterOpts) { o.faults = &cfg }
}

// WithDedupCap bounds the per-node reply cache used to absorb
// retransmitted calls (default 4096 entries).
func WithDedupCap(n int) Option {
	return func(o *clusterOpts) { o.dedupCap = n }
}

// WithTracer attaches an observability tracer: per-call spans, phase
// latency histograms and the flight recorder (internal/trace). A nil
// tracer leaves tracing off. Tracers are cluster-agnostic and may be
// shared across clusters; call sites are keyed by name.
func WithTracer(t *trace.Tracer) Option {
	return func(o *clusterOpts) { o.tracer = t }
}

// WithNodeTracer gives one node its own tracer, overriding the
// cluster-wide WithTracer default for spans that node records (caller
// spans of calls it issues, callee spans of calls it serves). An
// in-process cluster standing in for N machines uses this to give each
// "machine" its own flight recorder and trace store, so the /traces
// cross-node reconstruction exercises genuinely separate stores.
func WithNodeTracer(node int, t *trace.Tracer) Option {
	return func(o *clusterOpts) {
		if o.nodeTracers == nil {
			o.nodeTracers = make(map[int]*trace.Tracer)
		}
		o.nodeTracers[node] = t
	}
}

// ClaimCheckPolicy configures the audit-mode claim checker. On every
// Every-th invocation, cluster-wide, the runtime re-verifies the
// compile-time claims the optimizer acted on: the §3.2 acyclicity
// claim before serializing without a cycle table (a refuted claim
// falls back to the table, wire-compatibly) and the §3.3 donor-shape
// claim before overwriting a cached graph (a mismatched donor is
// dropped so the reader allocates fresh). Each refutation increments
// the ClaimViolations counters and triggers a flight-recorder dump.
// Every <= 0 disables checking (the default); Every == 1 audits every
// call. Sampling is a deterministic counter, not an RNG, so runs are
// reproducible.
type ClaimCheckPolicy struct {
	Every int64
}

// WithClaimCheck enables sampled runtime verification of compile-time
// optimizer claims (audit mode, off by default).
func WithClaimCheck(p ClaimCheckPolicy) Option {
	return func(o *clusterOpts) { o.claimEvery = p.Every }
}

// WithPlanSkew makes node advertise version-skewed plan fingerprints
// for the named classes (all classes when none are named), simulating
// a cluster whose nodes were compiled from different program versions.
// Links touching the skewed node negotiate the affected classes down
// to the universal class-level encoding at HELLO time, so traffic
// keeps flowing correctly — at class-mode cost — instead of
// mis-decoding. This is the chaos harness's version-skew knob.
func WithPlanSkew(node int, classes ...string) Option {
	return func(o *clusterOpts) {
		if o.skew == nil {
			o.skew = make(map[int][]string)
		}
		o.skew[node] = classes
	}
}

// WithoutCaps strips capability bits from node's HELLO advertisement,
// simulating a peer that does not implement an optional protocol
// feature (promise pipelining, one-way calls, frame batching). Links
// touching the node negotiate the masked features away and callers
// fall back to the synchronous resolve-then-send path — the chaos
// harness's capability-demotion knob.
func WithoutCaps(node int, caps uint32) Option {
	return func(o *clusterOpts) {
		if o.capsMask == nil {
			o.capsMask = make(map[int]uint32)
		}
		o.capsMask[node] |= caps
	}
}

// WithPromiseCap bounds each node's promise table — the per-link store
// a callee keeps so pipelined calls can reference the results of
// earlier promised calls (default 1024 entries).
func WithPromiseCap(n int) Option {
	return func(o *clusterOpts) { o.promiseCap = n }
}

// New creates a cluster of n nodes (default: in-process channel
// network) and starts their receive loops.
func New(n int, opts ...Option) *Cluster {
	o := clusterOpts{cost: simtime.DefaultCostModel(), depth: 1024, dedupCap: 4096, promiseCap: 1024}
	for _, f := range opts {
		f(&o)
	}
	if o.net == nil {
		o.net = transport.NewChannelNetwork(n, o.depth)
		o.owns = true
	}
	if o.faults != nil {
		o.net = transport.NewFaultyNetwork(o.net, *o.faults)
	}
	if o.registry == nil {
		o.registry = model.NewRegistry()
	}
	_, faulty := o.net.(*transport.FaultyNetwork)
	c := &Cluster{
		Registry:   o.registry,
		Counters:   &stats.Counters{},
		Cost:       o.cost,
		net:        o.net,
		owns:       o.owns,
		policy:     o.policy,
		dedupCap:   o.dedupCap,
		faulty:     faulty,
		tracer:     o.tracer,
		claimEvery: o.claimEvery,
		skew:       o.skew,
		capsMask:   o.capsMask,
		batch:      o.batch,
		promiseCap: o.promiseCap,
		done:       make(chan struct{}),
	}
	c.nodes = make([]*Node, n)
	for i := 0; i < n; i++ {
		c.nodes[i] = newNode(c, i)
		if t, ok := o.nodeTracers[i]; ok {
			c.nodes[i].tracer = t
		}
	}
	for _, nd := range c.nodes {
		c.wg.Add(1)
		go nd.recvLoop(&c.wg)
	}
	return c
}

// Size returns the node count.
func (c *Cluster) Size() int { return len(c.nodes) }

// Node returns node i.
func (c *Cluster) Node(i int) *Node { return c.nodes[i] }

// Network returns the cluster's interconnect. Callers running in chaos
// mode can type-assert it to *transport.FaultyNetwork to partition and
// heal links or read fault statistics.
func (c *Cluster) Network() transport.Network { return c.net }

// CallPolicy returns the cluster-wide default invocation policy.
func (c *Cluster) CallPolicy() CallPolicy { return c.policy }

// Tracer returns the attached observability tracer (nil when tracing
// is off).
func (c *Cluster) Tracer() *trace.Tracer { return c.tracer }

// Done is closed when the cluster shuts down. Long-blocking service
// methods (barriers, queues) select on it so Close can never leave a
// method goroutine — or a local caller — waiting forever.
func (c *Cluster) Done() <-chan struct{} { return c.done }

// Close shuts the cluster down. Every pending invocation fails with
// ErrClusterClosed: the done channel unblocks callers waiting on
// replies, the network close stops the receive loops, and failPending
// mops up entries whose reply will now never arrive.
func (c *Cluster) Close() {
	if !c.closed.CompareAndSwap(false, true) {
		return
	}
	close(c.done)
	// Stop the batchers first: their flush timers must not fire into a
	// closing network, and coalesced frames still pending are dropped
	// (their invocations fail with ErrClusterClosed below anyway).
	for _, n := range c.nodes {
		n.stopBatchers()
	}
	c.net.Close()
	c.wg.Wait()
	for _, n := range c.nodes {
		n.failPending()
		n.failPromises()
	}
}

// FlushBatches synchronously flushes every node's pending outbound
// batch containers. Deterministic tests (and drains at a workload
// boundary) use it instead of waiting out the flush window.
func (c *Cluster) FlushBatches() {
	for _, n := range c.nodes {
		for _, b := range n.batchers {
			if b != nil {
				b.flush()
			}
		}
	}
}

// MaxTime returns the virtual makespan: the maximum node clock.
func (c *Cluster) MaxTime() int64 {
	var max int64
	for _, n := range c.nodes {
		if t := n.Clock.Now(); t > max {
			max = t
		}
	}
	return max
}

// ResetClocks zeroes all node clocks (between benchmark phases).
func (c *Cluster) ResetClocks() {
	for _, n := range c.nodes {
		n.Clock.Reset()
	}
}

// auditCall decides whether this invocation is claim-checked: a
// 1-in-claimEvery counter sample — deterministic, no RNG on the hot
// path, and a single predictable branch when auditing is off.
func (c *Cluster) auditCall() bool {
	if c.claimEvery <= 0 {
		return false
	}
	return c.claimTick.Add(1)%c.claimEvery == 0
}

// SiteStats snapshots the per-call-site runtime counters of every
// registered site, in registration (site-ID) order. This is what the
// obs /callsites endpoint serves.
func (c *Cluster) SiteStats() []stats.SiteStat {
	c.siteMu.RLock()
	defer c.siteMu.RUnlock()
	out := make([]stats.SiteStat, 0, len(c.sites))
	for _, cs := range c.sites {
		out = append(out, cs.Stats())
	}
	return out
}

// Overload snapshots the cluster's backlog levels — pending-call
// table, promise table occupancy, parked executors, and batch queue
// depth — the overload signals the obs server exposes as gauges and
// admission control will consume. Each table is read under its own
// short-lived lock; the snapshot is consistent per table, not across
// tables, which is all a monitoring signal needs.
func (c *Cluster) Overload() stats.OverloadStats {
	var o stats.OverloadStats
	for _, n := range c.nodes {
		n.pendMu.Lock()
		o.PendingCalls += int64(len(n.pending))
		n.pendMu.Unlock()
		n.promMu.Lock()
		o.PromiseTable += int64(len(n.promises))
		n.promMu.Unlock()
		for _, b := range n.batchers {
			if b == nil {
				continue
			}
			b.mu.Lock()
			o.BatchQueueDepth += int64(b.count)
			b.mu.Unlock()
		}
	}
	o.PromiseParked = c.promiseParked.Load()
	return o
}

func (c *Cluster) site(id int32) (*CallSite, bool) {
	c.siteMu.RLock()
	defer c.siteMu.RUnlock()
	if id < 0 || int(id) >= len(c.sites) {
		return nil, false
	}
	return c.sites[id], true
}

// Node is one machine of the cluster.
type Node struct {
	ID int
	// Clock is the node's CPU clock: application compute, caller-side
	// marshaling and unmarshaling, local-call cloning. Incoming-call
	// serialization is handled by the node's communication processor
	// (the GM poll thread / NIC of the paper's testbed) contention
	// free: its cost rides the reply timestamp — on the requester's
	// critical path — without delaying this node's own computation.
	// This makes the virtual timeline a pure causal critical path,
	// independent of Go scheduler interleavings (deterministic).
	Clock   simtime.Clock
	cluster *Cluster
	ep      transport.Endpoint

	objMu   sync.RWMutex
	objects map[int64]*Service
	nextObj int64

	pendMu  sync.Mutex
	pending map[int64]chan reply
	seq     atomic.Int64
	// chPool recycles the buffered reply channels of completed
	// invocations (channels are pointer-shaped, so pooling them
	// allocates nothing). A channel re-enters the pool only when it is
	// provably empty — see abandonCall.
	chPool sync.Pool

	// The callee-side dedup/reply cache: retransmitted calls (same
	// caller, same sequence number) must not re-execute user methods or
	// touch the §3.3 reuse caches. An in-flight entry swallows the
	// duplicate; a completed entry answers it from the cached reply.
	dedupMu sync.Mutex
	dedup   map[dedupKey]*dedupEntry
	dedupQ  []dedupKey // FIFO eviction order

	// recvMu is the paper's per-node unmarshaler lock: only one thread
	// drains the network and deserializes at a time.
	recvMu sync.Mutex

	// links holds the lazily negotiated per-peer wire state, one slot
	// per cluster node (see negotiate.go). Each slot initializes at
	// most once, on the first frame exchanged with that peer.
	links []nodeLink

	// The callee-side promise table (promise pipelining): results of
	// promised calls, keyed by the same (from, seq) call id the dedup
	// cache uses, consumed by later pipelined calls from the same
	// caller. See promise.go.
	promMu   sync.Mutex
	promises map[dedupKey]*promiseEntry
	promQ    []dedupKey

	// batchers holds the per-peer outbound frame coalescers, one slot
	// per cluster node; nil slots (and a nil slice, when batching is
	// off) send directly. See batch.go.
	batchers []*linkBatcher

	// tracer records this node's spans: the cluster tracer by default,
	// or a per-node override (WithNodeTracer). nil = tracing off.
	tracer *trace.Tracer
}

// dedupKey identifies one call attempt stream: sequence numbers are
// allocated per caller node.
type dedupKey struct {
	from int
	seq  int64
}

// dedupEntry tracks one call through execution. Until done, the reply
// fields are unset and duplicates are dropped (the original execution
// will answer); after done, duplicates are answered from the cache.
type dedupEntry struct {
	done    bool
	payload []byte // sealed reply frame
	ts      int64  // virtual send timestamp of the reply
}

type reply struct {
	flag byte
	// payload is the reply body (header stripped); buf is the full
	// pooled frame backing it, which the invoker returns with
	// wire.PutBuf once the values are deserialized.
	payload []byte
	buf     []byte
	arrival int64
	// sentWall/recvWall are the reply packet's wall-clock transit
	// timestamps (zero when the reply was untraced); the invoker's span
	// derives PhaseReplyTransit from them.
	sentWall, recvWall int64
	err                error
}

func newNode(c *Cluster, id int) *Node {
	n := &Node{
		ID:      id,
		cluster: c,
		ep:      c.net.Endpoint(id),
		objects: make(map[int64]*Service),
		pending: make(map[int64]chan reply),
		dedup:   make(map[dedupKey]*dedupEntry),
		links:   make([]nodeLink, len(c.nodes)),
		tracer:  c.tracer,
	}
	if c.batch != nil {
		n.batchers = make([]*linkBatcher, len(c.nodes))
		for peer := range n.batchers {
			if peer != id {
				n.batchers[peer] = newLinkBatcher(n, peer, *c.batch)
			}
		}
	}
	return n
}

// Cluster returns the owning cluster.
func (n *Node) Cluster() *Cluster { return n.cluster }

// Tracer returns the tracer recording this node's spans (the cluster
// tracer unless overridden by WithNodeTracer; nil when tracing is off).
func (n *Node) Tracer() *trace.Tracer { return n.tracer }

// Export publishes a service on this node and returns its remote
// reference. Export order must match across processes in distributed
// (TCP) deployments, exactly like rmic-generated registries.
func (n *Node) Export(svc *Service) Ref {
	n.objMu.Lock()
	defer n.objMu.Unlock()
	id := n.nextObj
	n.nextObj++
	n.objects[id] = svc
	return Ref{Node: n.ID, Obj: id}
}

func (n *Node) lookup(obj int64) (*Service, bool) {
	n.objMu.RLock()
	defer n.objMu.RUnlock()
	s, ok := n.objects[obj]
	return s, ok
}

// getReplyCh returns a recycled (empty) reply channel or makes one.
func (n *Node) getReplyCh() chan reply {
	if v := n.chPool.Get(); v != nil {
		return v.(chan reply)
	}
	return make(chan reply, 1)
}

// putReplyCh recycles a reply channel the caller has proven empty.
func (n *Node) putReplyCh(ch chan reply) { n.chPool.Put(ch) }

// abandonCall cleans up after an invocation that will not consume its
// reply (send failure, timeout, shutdown). The invariant making
// channel recycling safe is that a reply is sent only by whoever
// removes the pending entry — and the send happens *under pendMu,
// before the removal is visible* (see routeReply and failPending). So:
//
//   - if the entry is still pending, abandonCall removes it, no reply
//     can ever land, and the channel is empty — recycle it;
//   - if someone else already removed it, their buffered send
//     completed before they released the lock we just held, so the
//     reply is guaranteed to be in the channel: consume it (frame back
//     to the pool) and recycle the channel.
//
// Either way the channel re-enters the pool and the reply frame, if
// one raced in, re-enters the wire pool — nothing is abandoned to the
// GC no matter how the timeout races the reply.
func (n *Node) abandonCall(seq int64, ch chan reply) {
	n.pendMu.Lock()
	_, present := n.pending[seq]
	if present {
		delete(n.pending, seq)
	}
	n.pendMu.Unlock()
	if !present {
		rep := <-ch
		wire.PutBuf(rep.buf)
	}
	n.putReplyCh(ch)
}

func (n *Node) failPending() {
	n.pendMu.Lock()
	defer n.pendMu.Unlock()
	for seq, ch := range n.pending {
		ch <- reply{err: ErrClusterClosed}
		delete(n.pending, seq)
	}
}

// dedupAdmit decides the fate of an incoming call attempt. It returns
// (nil, true) for a fresh call (an in-flight entry is recorded),
// (entry, false) for a duplicate of a completed call (answer from
// cache), and (nil, false) for a duplicate of an in-flight call (drop;
// the original execution will answer).
func (n *Node) dedupAdmit(key dedupKey) (*dedupEntry, bool) {
	n.dedupMu.Lock()
	defer n.dedupMu.Unlock()
	if e, ok := n.dedup[key]; ok {
		if e.done {
			return e, false
		}
		return nil, false
	}
	if limit := n.cluster.dedupCap; limit > 0 && len(n.dedupQ) >= limit {
		// Evict the oldest completed entry; skip in-flight ones (their
		// reply is still owed) unless everything is in flight. The
		// cache owns its reply copies, so eviction recycles the frame.
		evicted := false
		for i, k := range n.dedupQ {
			if e := n.dedup[k]; e.done {
				wire.PutBuf(e.payload)
				delete(n.dedup, k)
				n.dedupQ = append(n.dedupQ[:i], n.dedupQ[i+1:]...)
				evicted = true
				break
			}
		}
		if !evicted {
			delete(n.dedup, n.dedupQ[0])
			n.dedupQ = n.dedupQ[1:]
		}
	}
	n.dedup[key] = &dedupEntry{}
	n.dedupQ = append(n.dedupQ, key)
	return nil, true
}

// dedupComplete stores the call's sealed reply — a private copy the
// cache now owns — so later retransmits are answered without
// re-executing the method. If the entry was evicted (or the call was
// never tracked), the copy goes straight back to the frame pool.
func (n *Node) dedupComplete(key dedupKey, payload []byte, ts int64) {
	n.dedupMu.Lock()
	if e, ok := n.dedup[key]; ok {
		e.done = true
		e.payload = payload
		e.ts = ts
		n.dedupMu.Unlock()
		return
	}
	n.dedupMu.Unlock()
	wire.PutBuf(payload)
}

// dedupAbort withdraws an in-flight dedup entry whose call turned out
// to be undecodable. A malformed frame must never poison the cache: if
// its (from, seq) pair collides with a legitimate retransmit stream —
// trivial for a frame forger — a cached entry would swallow the honest
// retry forever. Aborting leaves the cache exactly as if the frame had
// failed its checksum. Entries that already completed are kept: the
// call executed, so its reply cache is legitimate.
func (n *Node) dedupAbort(key dedupKey) {
	n.dedupMu.Lock()
	defer n.dedupMu.Unlock()
	e, ok := n.dedup[key]
	if !ok || e.done {
		return
	}
	delete(n.dedup, key)
	for i, k := range n.dedupQ {
		if k == key {
			n.dedupQ = append(n.dedupQ[:i], n.dedupQ[i+1:]...)
			break
		}
	}
}
