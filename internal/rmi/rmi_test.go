package rmi

import (
	"fmt"
	"sync"
	"testing"

	"cormi/internal/model"
	"cormi/internal/serial"
	"cormi/internal/transport"
)

// testEnv bundles a cluster with a Node class and its list plan.
type testEnv struct {
	c    *Cluster
	node *model.Class
}

func newEnv(t testing.TB, nodes int, opts ...Option) *testEnv {
	t.Helper()
	c := New(nodes, opts...)
	t.Cleanup(c.Close)
	node := c.Registry.MustDefine("Node", nil, model.Field{Name: "v", Kind: model.FInt})
	node.Fields = append(node.Fields, model.Field{Name: "next", Kind: model.FRef, Class: node})
	return &testEnv{c: c, node: node}
}

func (e *testEnv) listPlan(site string, needCycle, reusable bool) *serial.Plan {
	np := &serial.NodePlan{Class: e.node}
	np.Steps = []serial.Step{
		{Op: serial.OpInt, Field: 0, FieldName: "v"},
		{Op: serial.OpRef, Field: 1, FieldName: "next", Target: np},
	}
	return &serial.Plan{Site: site, Kind: model.FRef, Root: np, NeedCycle: needCycle, Reusable: reusable}
}

func (e *testEnv) makeList(n int) *model.Object {
	var head *model.Object
	for i := n - 1; i >= 0; i-- {
		x := model.New(e.node)
		x.Set("v", model.Int(int64(i)))
		x.Set("next", model.Ref(head))
		head = x
	}
	return head
}

// sumService sums the v fields of a list and can also mutate the head.
func (e *testEnv) sumService() *Service {
	return &Service{
		Name: "Summer",
		Methods: map[string]Method{
			"sum": func(call *Call, args []model.Value) []model.Value {
				var s int64
				for o := args[0].O; o != nil; o = o.GetRef("next") {
					s += o.Get("v").I
				}
				return []model.Value{model.Int(s)}
			},
			"mutate": func(call *Call, args []model.Value) []model.Value {
				args[0].O.Set("v", model.Int(-1))
				return []model.Value{args[0]}
			},
		},
	}
}

func intPlan(site string) *serial.Plan { return serial.PrimitivePlan(site, model.FInt) }

func TestRemoteInvokeEcho(t *testing.T) {
	e := newEnv(t, 2)
	ref := e.c.Node(1).Export(e.sumService())
	cs := e.c.MustNewCallSite(LevelSite, SiteSpec{
		Name: "t.sum.1", Method: "sum",
		ArgPlans: []*serial.Plan{e.listPlan("t.sum.1", true, false)},
		RetPlans: []*serial.Plan{intPlan("t.sum.1")},
	})
	rets, err := cs.Invoke(e.c.Node(0), ref, []model.Value{model.Ref(e.makeList(10))})
	if err != nil {
		t.Fatal(err)
	}
	if rets[0].I != 45 {
		t.Fatalf("sum = %d, want 45", rets[0].I)
	}
	s := e.c.Counters.Snapshot()
	if s.RemoteRPCs != 1 || s.LocalRPCs != 0 {
		t.Fatalf("rpc counters: %+v", s)
	}
	if s.Messages != 2 {
		t.Fatalf("messages = %d, want 2 (call+reply)", s.Messages)
	}
}

func TestClassModeInvoke(t *testing.T) {
	e := newEnv(t, 2)
	ref := e.c.Node(1).Export(e.sumService())
	cs := e.c.MustNewCallSite(LevelClass, SiteSpec{
		Name: "t.sum.1", Method: "sum", NumRet: 1,
	})
	rets, err := cs.Invoke(e.c.Node(0), ref, []model.Value{model.Ref(e.makeList(4))})
	if err != nil {
		t.Fatal(err)
	}
	if rets[0].I != 6 {
		t.Fatalf("sum = %d", rets[0].I)
	}
	if e.c.Counters.Snapshot().SerializerCalls == 0 {
		t.Fatal("class mode should count dynamic serializer calls")
	}
}

func TestRemoteCallDeepCopies(t *testing.T) {
	e := newEnv(t, 2)
	ref := e.c.Node(1).Export(e.sumService())
	cs := e.c.MustNewCallSite(LevelSite, SiteSpec{
		Name: "t.mut.1", Method: "mutate",
		ArgPlans: []*serial.Plan{e.listPlan("t.mut.1", true, false)},
		RetPlans: []*serial.Plan{e.listPlan("t.mut.1r", true, false)},
	})
	head := e.makeList(3)
	rets, err := cs.Invoke(e.c.Node(0), ref, []model.Value{model.Ref(head)})
	if err != nil {
		t.Fatal(err)
	}
	if head.Get("v").I != 0 {
		t.Fatal("callee mutation leaked into the caller's object")
	}
	if rets[0].O.Get("v").I != -1 {
		t.Fatal("returned object does not carry the mutation")
	}
	if rets[0].O == head {
		t.Fatal("return value aliases the argument")
	}
}

func TestLocalCallClones(t *testing.T) {
	e := newEnv(t, 2)
	n0 := e.c.Node(0)
	ref := n0.Export(e.sumService())
	cs := e.c.MustNewCallSite(LevelSite, SiteSpec{
		Name: "t.mut.1", Method: "mutate",
		ArgPlans: []*serial.Plan{e.listPlan("t.mut.1", true, false)},
		RetPlans: []*serial.Plan{e.listPlan("t.mut.1r", true, false)},
	})
	head := e.makeList(3)
	rets, err := cs.Invoke(n0, ref, []model.Value{model.Ref(head)})
	if err != nil {
		t.Fatal(err)
	}
	if head.Get("v").I != 0 {
		t.Fatal("local call mutation leaked (cloning semantics violated)")
	}
	if rets[0].O.Get("v").I != -1 || rets[0].O == head {
		t.Fatal("local call return not a fresh clone")
	}
	s := e.c.Counters.Snapshot()
	if s.LocalRPCs != 1 || s.RemoteRPCs != 0 || s.Messages != 0 {
		t.Fatalf("local call counters: %+v", s)
	}
	if s.AllocObjects == 0 {
		t.Fatal("local cloning should count allocations")
	}
}

func TestIgnoreReturnSendsAck(t *testing.T) {
	e := newEnv(t, 2)
	ref := e.c.Node(1).Export(e.sumService())
	cs := e.c.MustNewCallSite(LevelSite, SiteSpec{
		Name: "t.sum.ack", Method: "sum", IgnoreRet: true,
		ArgPlans: []*serial.Plan{e.listPlan("t.sum.ack", true, false)},
	})
	rets, err := cs.Invoke(e.c.Node(0), ref, []model.Value{model.Ref(e.makeList(2))})
	if err != nil {
		t.Fatal(err)
	}
	if rets != nil {
		t.Fatal("ignored return produced values")
	}
	if e.c.Counters.Snapshot().AcksOnly != 1 {
		t.Fatal("AcksOnly not counted")
	}

	// The baseline serializes the return value even when unused.
	e.c.Counters.Reset()
	csBase := e.c.MustNewCallSite(LevelClass, SiteSpec{
		Name: "t.sum.ack0", Method: "sum", IgnoreRet: true, NumRet: 1,
	})
	if _, err := csBase.Invoke(e.c.Node(0), ref, []model.Value{model.Ref(e.makeList(2))}); err != nil {
		t.Fatal(err)
	}
	if e.c.Counters.Snapshot().AcksOnly != 0 {
		t.Fatal("class mode should not collapse returns to acks")
	}
}

func TestArgumentReuseAcrossInvocations(t *testing.T) {
	e := newEnv(t, 2)
	var mu sync.Mutex
	var seen []*model.Object
	svc := &Service{Name: "Rec", Methods: map[string]Method{
		"take": func(call *Call, args []model.Value) []model.Value {
			mu.Lock()
			seen = append(seen, args[0].O)
			mu.Unlock()
			return nil
		},
	}}
	ref := e.c.Node(1).Export(svc)
	cs := e.c.MustNewCallSite(LevelSiteReuseCycle, SiteSpec{
		Name: "t.take.1", Method: "take", IgnoreRet: true,
		ArgPlans: []*serial.Plan{e.listPlan("t.take.1", true, true)},
	})
	n0 := e.c.Node(0)
	for i := 0; i < 3; i++ {
		if _, err := cs.Invoke(n0, ref, []model.Value{model.Ref(e.makeList(10))}); err != nil {
			t.Fatal(err)
		}
	}
	if len(seen) != 3 {
		t.Fatalf("saw %d calls", len(seen))
	}
	if seen[0] != seen[1] || seen[1] != seen[2] {
		t.Fatal("argument graph not reused across invocations")
	}
	s := e.c.Counters.Snapshot()
	if s.AllocObjects != 10 || s.ReusedObjs != 20 {
		t.Fatalf("reuse stats: alloc=%d reused=%d", s.AllocObjects, s.ReusedObjs)
	}
}

func TestReturnValueReuseAtCaller(t *testing.T) {
	e := newEnv(t, 2)
	svc := &Service{Name: "Maker", Methods: map[string]Method{
		"make": func(call *Call, args []model.Value) []model.Value {
			head := e.makeList(int(args[0].I))
			return []model.Value{model.Ref(head)}
		},
	}}
	ref := e.c.Node(1).Export(svc)
	cs := e.c.MustNewCallSite(LevelSiteReuseCycle, SiteSpec{
		Name: "t.make.1", Method: "make",
		ArgPlans: []*serial.Plan{intPlan("t.make.1")},
		RetPlans: []*serial.Plan{e.listPlan("t.make.1r", true, true)},
	})
	n0 := e.c.Node(0)
	r1, err := cs.Invoke(n0, ref, []model.Value{model.Int(5)})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := cs.Invoke(n0, ref, []model.Value{model.Int(5)})
	if err != nil {
		t.Fatal(err)
	}
	if r1[0].O != r2[0].O {
		t.Fatal("return graph not reused at the caller")
	}
}

func TestNestedRMI(t *testing.T) {
	e := newEnv(t, 2)
	echo := &Service{Name: "Echo", Methods: map[string]Method{
		"id": func(call *Call, args []model.Value) []model.Value { return args },
	}}
	refEcho := e.c.Node(0).Export(echo)
	csEcho := e.c.MustNewCallSite(LevelSite, SiteSpec{
		Name: "t.id.1", Method: "id",
		ArgPlans: []*serial.Plan{intPlan("a")},
		RetPlans: []*serial.Plan{intPlan("r")},
	})
	relay := &Service{Name: "Relay", Methods: map[string]Method{
		"relay": func(call *Call, args []model.Value) []model.Value {
			rets, err := csEcho.Invoke(call.Node, refEcho, args)
			if err != nil {
				panic(err)
			}
			return rets
		},
	}}
	refRelay := e.c.Node(1).Export(relay)
	csRelay := e.c.MustNewCallSite(LevelSite, SiteSpec{
		Name: "t.relay.1", Method: "relay",
		ArgPlans: []*serial.Plan{intPlan("a")},
		RetPlans: []*serial.Plan{intPlan("r")},
	})
	rets, err := csRelay.Invoke(e.c.Node(0), refRelay, []model.Value{model.Int(7)})
	if err != nil {
		t.Fatal(err)
	}
	if rets[0].I != 7 {
		t.Fatalf("nested RMI returned %v", rets[0])
	}
	if e.c.Counters.Snapshot().RemoteRPCs != 2 {
		t.Fatal("nested call should count two remote RPCs")
	}
}

func TestConcurrentInvocations(t *testing.T) {
	e := newEnv(t, 2)
	svc := &Service{Name: "Adder", Methods: map[string]Method{
		"inc": func(call *Call, args []model.Value) []model.Value {
			return []model.Value{model.Int(args[0].I + 1)}
		},
	}}
	ref := e.c.Node(1).Export(svc)
	cs := e.c.MustNewCallSite(LevelSiteReuseCycle, SiteSpec{
		Name: "t.inc.1", Method: "inc",
		ArgPlans: []*serial.Plan{intPlan("a")},
		RetPlans: []*serial.Plan{intPlan("r")},
	})
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				rets, err := cs.Invoke(e.c.Node(0), ref, []model.Value{model.Int(int64(i))})
				if err != nil {
					errs <- err
					return
				}
				if rets[0].I != int64(i)+1 {
					errs <- fmt.Errorf("got %d want %d", rets[0].I, i+1)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if got := e.c.Counters.Snapshot().RemoteRPCs; got != 400 {
		t.Fatalf("RemoteRPCs = %d", got)
	}
}

func TestErrors(t *testing.T) {
	e := newEnv(t, 2)
	svc := &Service{Name: "Bad", Methods: map[string]Method{
		"boom": func(call *Call, args []model.Value) []model.Value {
			panic("kaboom")
		},
	}}
	ref := e.c.Node(1).Export(svc)

	// Panicking method surfaces as an error, not a hang.
	cs := e.c.MustNewCallSite(LevelSite, SiteSpec{
		Name: "t.boom.1", Method: "boom", IgnoreRet: true,
	})
	if _, err := cs.Invoke(e.c.Node(0), ref, nil); err == nil {
		t.Fatal("panic did not surface")
	}

	// Unknown method.
	cs2 := e.c.MustNewCallSite(LevelSite, SiteSpec{Name: "t.x", Method: "nope", IgnoreRet: true})
	if _, err := cs2.Invoke(e.c.Node(0), ref, nil); err == nil {
		t.Fatal("unknown method accepted")
	}

	// Unknown object.
	if _, err := cs2.Invoke(e.c.Node(0), Ref{Node: 1, Obj: 999}, nil); err == nil {
		t.Fatal("unknown object accepted")
	}

	// Invalid plan rejected at registration.
	badPlan := &serial.Plan{Site: "b", Kind: model.FRef,
		Root: &serial.NodePlan{Class: e.node, Steps: []serial.Step{{Op: serial.OpInt, Field: 99}}}}
	if _, err := e.c.NewCallSite(LevelSite, SiteSpec{Name: "b", Method: "m", ArgPlans: []*serial.Plan{badPlan}}); err == nil {
		t.Fatal("invalid plan accepted")
	}
}

func TestVirtualClockCausality(t *testing.T) {
	e := newEnv(t, 2)
	svc := &Service{Name: "W", Methods: map[string]Method{
		"work": func(call *Call, args []model.Value) []model.Value {
			call.Compute(1_000_000) // 1 ms of virtual CPU work
			return nil
		},
	}}
	ref := e.c.Node(1).Export(svc)
	cs := e.c.MustNewCallSite(LevelSite, SiteSpec{Name: "t.w", Method: "work", IgnoreRet: true})
	if _, err := cs.Invoke(e.c.Node(0), ref, nil); err != nil {
		t.Fatal(err)
	}
	cost := e.c.Cost
	minRT := 2*cost.NetLatencyNS + 1_000_000
	if got := e.c.Node(0).Clock.Now(); got < minRT {
		t.Fatalf("caller clock %d < minimum causal round trip %d", got, minRT)
	}
	if e.c.MaxTime() < minRT {
		t.Fatal("makespan below causal minimum")
	}
	e.c.ResetClocks()
	if e.c.MaxTime() != 0 {
		t.Fatal("ResetClocks failed")
	}
}

func TestSiteFasterThanClassVirtually(t *testing.T) {
	// The headline claim, end to end: sending a 100-node list is
	// virtually faster with call-site serializers than with class
	// serializers, and faster again with reuse.
	times := map[OptLevel]int64{}
	for _, level := range AllLevels {
		e := newEnv(t, 2)
		ref := e.c.Node(1).Export(e.sumService())
		cs := e.c.MustNewCallSite(level, SiteSpec{
			Name: "t.sum.1", Method: "sum", IgnoreRet: true,
			ArgPlans: []*serial.Plan{e.listPlan("t.sum.1", true, true)},
		})
		head := e.makeList(100)
		for i := 0; i < 10; i++ {
			if _, err := cs.Invoke(e.c.Node(0), ref, []model.Value{model.Ref(head)}); err != nil {
				t.Fatal(err)
			}
		}
		times[level] = e.c.MaxTime()
	}
	if !(times[LevelSite] < times[LevelClass]) {
		t.Fatalf("site (%d) not faster than class (%d)", times[LevelSite], times[LevelClass])
	}
	if !(times[LevelSiteReuse] < times[LevelSite]) {
		t.Fatalf("site+reuse (%d) not faster than site (%d)", times[LevelSiteReuse], times[LevelSite])
	}
	// The list may contain cycles, so cycle elimination cannot help.
	if times[LevelSiteCycle] < times[LevelSite]*99/100 {
		t.Fatalf("cycle elimination changed a cyclic-flagged workload: %d vs %d",
			times[LevelSiteCycle], times[LevelSite])
	}
}

func TestBarrier(t *testing.T) {
	e := newEnv(t, 3)
	refBar := e.c.Node(0).Export(NewBarrierService(3))
	cs := e.c.MustNewCallSite(LevelSite, SiteSpec{Name: "t.bar", Method: BarrierMethod, IgnoreRet: true})
	var order []int
	var mu sync.Mutex
	var wg sync.WaitGroup
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if _, err := cs.Invoke(e.c.Node(i), refBar, nil); err != nil {
				t.Errorf("barrier: %v", err)
				return
			}
			mu.Lock()
			order = append(order, i)
			mu.Unlock()
		}(i)
	}
	wg.Wait()
	if len(order) != 3 {
		t.Fatalf("barrier released %d parties", len(order))
	}
	// Reusable barrier: a second round must also complete.
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, _ = cs.Invoke(e.c.Node(i), refBar, nil)
		}(i)
	}
	wg.Wait()
}

func TestClusterOverTCP(t *testing.T) {
	nw, err := transport.NewTCPNetworkLocal(2)
	if err != nil {
		t.Fatal(err)
	}
	e := newEnv(t, 2, WithNetwork(nw))
	ref := e.c.Node(1).Export(e.sumService())
	cs := e.c.MustNewCallSite(LevelSiteReuseCycle, SiteSpec{
		Name: "t.sum.tcp", Method: "sum",
		ArgPlans: []*serial.Plan{e.listPlan("t.sum.tcp", true, true)},
		RetPlans: []*serial.Plan{intPlan("r")},
	})
	for i := 0; i < 5; i++ {
		rets, err := cs.Invoke(e.c.Node(0), ref, []model.Value{model.Ref(e.makeList(20))})
		if err != nil {
			t.Fatal(err)
		}
		if rets[0].I != 190 {
			t.Fatalf("sum over TCP = %d", rets[0].I)
		}
	}
}

func TestOptLevelStrings(t *testing.T) {
	want := map[OptLevel]string{
		LevelClass:          "class",
		LevelSite:           "site",
		LevelSiteCycle:      "site + cycle",
		LevelSiteReuse:      "site + reuse",
		LevelSiteReuseCycle: "site + reuse + cycle",
	}
	for l, s := range want {
		if l.String() != s {
			t.Fatalf("%d.String() = %q", l, l.String())
		}
	}
	cfg := LevelSiteReuseCycle.Config()
	if !cfg.Site || !cfg.CycleElim || !cfg.Reuse {
		t.Fatal("LevelSiteReuseCycle config wrong")
	}
	if LevelClass.Config() != (Config{}) {
		t.Fatal("LevelClass config wrong")
	}
}
